file(REMOVE_RECURSE
  "CMakeFiles/polynomial_sweep.dir/polynomial_sweep.cpp.o"
  "CMakeFiles/polynomial_sweep.dir/polynomial_sweep.cpp.o.d"
  "polynomial_sweep"
  "polynomial_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polynomial_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
