# Empty dependencies file for polynomial_sweep.
# This may be replaced when dependencies are built.
