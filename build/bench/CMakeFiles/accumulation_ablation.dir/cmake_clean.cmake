file(REMOVE_RECURSE
  "CMakeFiles/accumulation_ablation.dir/accumulation_ablation.cpp.o"
  "CMakeFiles/accumulation_ablation.dir/accumulation_ablation.cpp.o.d"
  "accumulation_ablation"
  "accumulation_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accumulation_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
