# Empty dependencies file for accumulation_ablation.
# This may be replaced when dependencies are built.
