# Empty dependencies file for assignment_mode_ablation.
# This may be replaced when dependencies are built.
