file(REMOVE_RECURSE
  "CMakeFiles/assignment_mode_ablation.dir/assignment_mode_ablation.cpp.o"
  "CMakeFiles/assignment_mode_ablation.dir/assignment_mode_ablation.cpp.o.d"
  "assignment_mode_ablation"
  "assignment_mode_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assignment_mode_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
