file(REMOVE_RECURSE
  "CMakeFiles/p2p_scenarios.dir/p2p_scenarios.cpp.o"
  "CMakeFiles/p2p_scenarios.dir/p2p_scenarios.cpp.o.d"
  "p2p_scenarios"
  "p2p_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
