# Empty compiler generated dependencies file for p2p_scenarios.
# This may be replaced when dependencies are built.
