# Empty dependencies file for kd_sweep.
# This may be replaced when dependencies are built.
