file(REMOVE_RECURSE
  "CMakeFiles/kd_sweep.dir/kd_sweep.cpp.o"
  "CMakeFiles/kd_sweep.dir/kd_sweep.cpp.o.d"
  "kd_sweep"
  "kd_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kd_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
