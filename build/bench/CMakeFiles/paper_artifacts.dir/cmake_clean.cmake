file(REMOVE_RECURSE
  "CMakeFiles/paper_artifacts.dir/paper_artifacts.cpp.o"
  "CMakeFiles/paper_artifacts.dir/paper_artifacts.cpp.o.d"
  "paper_artifacts"
  "paper_artifacts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_artifacts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
