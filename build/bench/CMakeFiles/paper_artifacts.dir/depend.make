# Empty dependencies file for paper_artifacts.
# This may be replaced when dependencies are built.
