# Empty compiler generated dependencies file for incremental_enumeration.
# This may be replaced when dependencies are built.
