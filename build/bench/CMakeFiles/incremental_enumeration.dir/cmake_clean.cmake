file(REMOVE_RECURSE
  "CMakeFiles/incremental_enumeration.dir/incremental_enumeration.cpp.o"
  "CMakeFiles/incremental_enumeration.dir/incremental_enumeration.cpp.o.d"
  "incremental_enumeration"
  "incremental_enumeration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_enumeration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
