# Empty dependencies file for feasibility_ablation.
# This may be replaced when dependencies are built.
