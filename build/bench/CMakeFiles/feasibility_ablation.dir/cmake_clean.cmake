file(REMOVE_RECURSE
  "CMakeFiles/feasibility_ablation.dir/feasibility_ablation.cpp.o"
  "CMakeFiles/feasibility_ablation.dir/feasibility_ablation.cpp.o.d"
  "feasibility_ablation"
  "feasibility_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feasibility_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
