# Empty compiler generated dependencies file for alpha_sweep.
# This may be replaced when dependencies are built.
