file(REMOVE_RECURSE
  "CMakeFiles/alpha_sweep.dir/alpha_sweep.cpp.o"
  "CMakeFiles/alpha_sweep.dir/alpha_sweep.cpp.o.d"
  "alpha_sweep"
  "alpha_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alpha_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
