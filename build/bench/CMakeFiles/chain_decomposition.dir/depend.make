# Empty dependencies file for chain_decomposition.
# This may be replaced when dependencies are built.
