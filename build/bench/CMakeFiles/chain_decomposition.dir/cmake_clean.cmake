file(REMOVE_RECURSE
  "CMakeFiles/chain_decomposition.dir/chain_decomposition.cpp.o"
  "CMakeFiles/chain_decomposition.dir/chain_decomposition.cpp.o.d"
  "chain_decomposition"
  "chain_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
