# Empty compiler generated dependencies file for hybrid_estimator.
# This may be replaced when dependencies are built.
