file(REMOVE_RECURSE
  "CMakeFiles/hybrid_estimator.dir/hybrid_estimator.cpp.o"
  "CMakeFiles/hybrid_estimator.dir/hybrid_estimator.cpp.o.d"
  "hybrid_estimator"
  "hybrid_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
