# Empty dependencies file for scaling_naive_vs_bottleneck.
# This may be replaced when dependencies are built.
