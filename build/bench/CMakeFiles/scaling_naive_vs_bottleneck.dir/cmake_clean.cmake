file(REMOVE_RECURSE
  "CMakeFiles/scaling_naive_vs_bottleneck.dir/scaling_naive_vs_bottleneck.cpp.o"
  "CMakeFiles/scaling_naive_vs_bottleneck.dir/scaling_naive_vs_bottleneck.cpp.o.d"
  "scaling_naive_vs_bottleneck"
  "scaling_naive_vs_bottleneck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_naive_vs_bottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
