# Empty dependencies file for montecarlo_convergence.
# This may be replaced when dependencies are built.
