file(REMOVE_RECURSE
  "CMakeFiles/montecarlo_convergence.dir/montecarlo_convergence.cpp.o"
  "CMakeFiles/montecarlo_convergence.dir/montecarlo_convergence.cpp.o.d"
  "montecarlo_convergence"
  "montecarlo_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/montecarlo_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
