# Empty compiler generated dependencies file for maxflow_algorithms.
# This may be replaced when dependencies are built.
