file(REMOVE_RECURSE
  "CMakeFiles/maxflow_algorithms.dir/maxflow_algorithms.cpp.o"
  "CMakeFiles/maxflow_algorithms.dir/maxflow_algorithms.cpp.o.d"
  "maxflow_algorithms"
  "maxflow_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxflow_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
