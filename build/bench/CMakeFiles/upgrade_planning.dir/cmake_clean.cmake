file(REMOVE_RECURSE
  "CMakeFiles/upgrade_planning.dir/upgrade_planning.cpp.o"
  "CMakeFiles/upgrade_planning.dir/upgrade_planning.cpp.o.d"
  "upgrade_planning"
  "upgrade_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upgrade_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
