# Empty dependencies file for upgrade_planning.
# This may be replaced when dependencies are built.
