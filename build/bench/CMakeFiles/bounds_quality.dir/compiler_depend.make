# Empty compiler generated dependencies file for bounds_quality.
# This may be replaced when dependencies are built.
