file(REMOVE_RECURSE
  "CMakeFiles/bounds_quality.dir/bounds_quality.cpp.o"
  "CMakeFiles/bounds_quality.dir/bounds_quality.cpp.o.d"
  "bounds_quality"
  "bounds_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounds_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
