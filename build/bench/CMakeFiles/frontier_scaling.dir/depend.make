# Empty dependencies file for frontier_scaling.
# This may be replaced when dependencies are built.
