file(REMOVE_RECURSE
  "CMakeFiles/frontier_scaling.dir/frontier_scaling.cpp.o"
  "CMakeFiles/frontier_scaling.dir/frontier_scaling.cpp.o.d"
  "frontier_scaling"
  "frontier_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontier_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
