file(REMOVE_RECURSE
  "CMakeFiles/dynamics_validation.dir/dynamics_validation.cpp.o"
  "CMakeFiles/dynamics_validation.dir/dynamics_validation.cpp.o.d"
  "dynamics_validation"
  "dynamics_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamics_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
