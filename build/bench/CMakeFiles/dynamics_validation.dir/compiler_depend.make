# Empty compiler generated dependencies file for dynamics_validation.
# This may be replaced when dependencies are built.
