# Empty dependencies file for streamrel_cuts.
# This may be replaced when dependencies are built.
