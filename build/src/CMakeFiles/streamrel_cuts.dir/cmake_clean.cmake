file(REMOVE_RECURSE
  "CMakeFiles/streamrel_cuts.dir/cuts/bottleneck.cpp.o"
  "CMakeFiles/streamrel_cuts.dir/cuts/bottleneck.cpp.o.d"
  "CMakeFiles/streamrel_cuts.dir/cuts/chain_search.cpp.o"
  "CMakeFiles/streamrel_cuts.dir/cuts/chain_search.cpp.o.d"
  "CMakeFiles/streamrel_cuts.dir/cuts/cut_enumeration.cpp.o"
  "CMakeFiles/streamrel_cuts.dir/cuts/cut_enumeration.cpp.o.d"
  "CMakeFiles/streamrel_cuts.dir/cuts/partition_search.cpp.o"
  "CMakeFiles/streamrel_cuts.dir/cuts/partition_search.cpp.o.d"
  "libstreamrel_cuts.a"
  "libstreamrel_cuts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamrel_cuts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
