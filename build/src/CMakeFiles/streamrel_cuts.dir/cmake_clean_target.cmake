file(REMOVE_RECURSE
  "libstreamrel_cuts.a"
)
