
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cuts/bottleneck.cpp" "src/CMakeFiles/streamrel_cuts.dir/cuts/bottleneck.cpp.o" "gcc" "src/CMakeFiles/streamrel_cuts.dir/cuts/bottleneck.cpp.o.d"
  "/root/repo/src/cuts/chain_search.cpp" "src/CMakeFiles/streamrel_cuts.dir/cuts/chain_search.cpp.o" "gcc" "src/CMakeFiles/streamrel_cuts.dir/cuts/chain_search.cpp.o.d"
  "/root/repo/src/cuts/cut_enumeration.cpp" "src/CMakeFiles/streamrel_cuts.dir/cuts/cut_enumeration.cpp.o" "gcc" "src/CMakeFiles/streamrel_cuts.dir/cuts/cut_enumeration.cpp.o.d"
  "/root/repo/src/cuts/partition_search.cpp" "src/CMakeFiles/streamrel_cuts.dir/cuts/partition_search.cpp.o" "gcc" "src/CMakeFiles/streamrel_cuts.dir/cuts/partition_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/streamrel_maxflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamrel_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamrel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
