# Empty compiler generated dependencies file for streamrel_sim.
# This may be replaced when dependencies are built.
