file(REMOVE_RECURSE
  "CMakeFiles/streamrel_sim.dir/sim/availability_sim.cpp.o"
  "CMakeFiles/streamrel_sim.dir/sim/availability_sim.cpp.o.d"
  "CMakeFiles/streamrel_sim.dir/sim/link_dynamics.cpp.o"
  "CMakeFiles/streamrel_sim.dir/sim/link_dynamics.cpp.o.d"
  "libstreamrel_sim.a"
  "libstreamrel_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamrel_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
