file(REMOVE_RECURSE
  "libstreamrel_sim.a"
)
