file(REMOVE_RECURSE
  "CMakeFiles/streamrel_maxflow.dir/maxflow/config_residual.cpp.o"
  "CMakeFiles/streamrel_maxflow.dir/maxflow/config_residual.cpp.o.d"
  "CMakeFiles/streamrel_maxflow.dir/maxflow/dinic.cpp.o"
  "CMakeFiles/streamrel_maxflow.dir/maxflow/dinic.cpp.o.d"
  "CMakeFiles/streamrel_maxflow.dir/maxflow/edmonds_karp.cpp.o"
  "CMakeFiles/streamrel_maxflow.dir/maxflow/edmonds_karp.cpp.o.d"
  "CMakeFiles/streamrel_maxflow.dir/maxflow/incremental_dinic.cpp.o"
  "CMakeFiles/streamrel_maxflow.dir/maxflow/incremental_dinic.cpp.o.d"
  "CMakeFiles/streamrel_maxflow.dir/maxflow/maxflow.cpp.o"
  "CMakeFiles/streamrel_maxflow.dir/maxflow/maxflow.cpp.o.d"
  "CMakeFiles/streamrel_maxflow.dir/maxflow/push_relabel.cpp.o"
  "CMakeFiles/streamrel_maxflow.dir/maxflow/push_relabel.cpp.o.d"
  "CMakeFiles/streamrel_maxflow.dir/maxflow/residual_graph.cpp.o"
  "CMakeFiles/streamrel_maxflow.dir/maxflow/residual_graph.cpp.o.d"
  "libstreamrel_maxflow.a"
  "libstreamrel_maxflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamrel_maxflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
