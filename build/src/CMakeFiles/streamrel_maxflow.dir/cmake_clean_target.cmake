file(REMOVE_RECURSE
  "libstreamrel_maxflow.a"
)
