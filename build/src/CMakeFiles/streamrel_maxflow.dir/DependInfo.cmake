
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/maxflow/config_residual.cpp" "src/CMakeFiles/streamrel_maxflow.dir/maxflow/config_residual.cpp.o" "gcc" "src/CMakeFiles/streamrel_maxflow.dir/maxflow/config_residual.cpp.o.d"
  "/root/repo/src/maxflow/dinic.cpp" "src/CMakeFiles/streamrel_maxflow.dir/maxflow/dinic.cpp.o" "gcc" "src/CMakeFiles/streamrel_maxflow.dir/maxflow/dinic.cpp.o.d"
  "/root/repo/src/maxflow/edmonds_karp.cpp" "src/CMakeFiles/streamrel_maxflow.dir/maxflow/edmonds_karp.cpp.o" "gcc" "src/CMakeFiles/streamrel_maxflow.dir/maxflow/edmonds_karp.cpp.o.d"
  "/root/repo/src/maxflow/incremental_dinic.cpp" "src/CMakeFiles/streamrel_maxflow.dir/maxflow/incremental_dinic.cpp.o" "gcc" "src/CMakeFiles/streamrel_maxflow.dir/maxflow/incremental_dinic.cpp.o.d"
  "/root/repo/src/maxflow/maxflow.cpp" "src/CMakeFiles/streamrel_maxflow.dir/maxflow/maxflow.cpp.o" "gcc" "src/CMakeFiles/streamrel_maxflow.dir/maxflow/maxflow.cpp.o.d"
  "/root/repo/src/maxflow/push_relabel.cpp" "src/CMakeFiles/streamrel_maxflow.dir/maxflow/push_relabel.cpp.o" "gcc" "src/CMakeFiles/streamrel_maxflow.dir/maxflow/push_relabel.cpp.o.d"
  "/root/repo/src/maxflow/residual_graph.cpp" "src/CMakeFiles/streamrel_maxflow.dir/maxflow/residual_graph.cpp.o" "gcc" "src/CMakeFiles/streamrel_maxflow.dir/maxflow/residual_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/streamrel_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamrel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
