# Empty compiler generated dependencies file for streamrel_maxflow.
# This may be replaced when dependencies are built.
