# Empty compiler generated dependencies file for streamrel_reliability.
# This may be replaced when dependencies are built.
