file(REMOVE_RECURSE
  "libstreamrel_reliability.a"
)
