file(REMOVE_RECURSE
  "CMakeFiles/streamrel_reliability.dir/reliability/bounds.cpp.o"
  "CMakeFiles/streamrel_reliability.dir/reliability/bounds.cpp.o.d"
  "CMakeFiles/streamrel_reliability.dir/reliability/factoring.cpp.o"
  "CMakeFiles/streamrel_reliability.dir/reliability/factoring.cpp.o.d"
  "CMakeFiles/streamrel_reliability.dir/reliability/frontier.cpp.o"
  "CMakeFiles/streamrel_reliability.dir/reliability/frontier.cpp.o.d"
  "CMakeFiles/streamrel_reliability.dir/reliability/monte_carlo.cpp.o"
  "CMakeFiles/streamrel_reliability.dir/reliability/monte_carlo.cpp.o.d"
  "CMakeFiles/streamrel_reliability.dir/reliability/multicast.cpp.o"
  "CMakeFiles/streamrel_reliability.dir/reliability/multicast.cpp.o.d"
  "CMakeFiles/streamrel_reliability.dir/reliability/naive.cpp.o"
  "CMakeFiles/streamrel_reliability.dir/reliability/naive.cpp.o.d"
  "CMakeFiles/streamrel_reliability.dir/reliability/node_failures.cpp.o"
  "CMakeFiles/streamrel_reliability.dir/reliability/node_failures.cpp.o.d"
  "CMakeFiles/streamrel_reliability.dir/reliability/polynomial.cpp.o"
  "CMakeFiles/streamrel_reliability.dir/reliability/polynomial.cpp.o.d"
  "CMakeFiles/streamrel_reliability.dir/reliability/reductions.cpp.o"
  "CMakeFiles/streamrel_reliability.dir/reliability/reductions.cpp.o.d"
  "CMakeFiles/streamrel_reliability.dir/reliability/throughput.cpp.o"
  "CMakeFiles/streamrel_reliability.dir/reliability/throughput.cpp.o.d"
  "libstreamrel_reliability.a"
  "libstreamrel_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamrel_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
