
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reliability/bounds.cpp" "src/CMakeFiles/streamrel_reliability.dir/reliability/bounds.cpp.o" "gcc" "src/CMakeFiles/streamrel_reliability.dir/reliability/bounds.cpp.o.d"
  "/root/repo/src/reliability/factoring.cpp" "src/CMakeFiles/streamrel_reliability.dir/reliability/factoring.cpp.o" "gcc" "src/CMakeFiles/streamrel_reliability.dir/reliability/factoring.cpp.o.d"
  "/root/repo/src/reliability/frontier.cpp" "src/CMakeFiles/streamrel_reliability.dir/reliability/frontier.cpp.o" "gcc" "src/CMakeFiles/streamrel_reliability.dir/reliability/frontier.cpp.o.d"
  "/root/repo/src/reliability/monte_carlo.cpp" "src/CMakeFiles/streamrel_reliability.dir/reliability/monte_carlo.cpp.o" "gcc" "src/CMakeFiles/streamrel_reliability.dir/reliability/monte_carlo.cpp.o.d"
  "/root/repo/src/reliability/multicast.cpp" "src/CMakeFiles/streamrel_reliability.dir/reliability/multicast.cpp.o" "gcc" "src/CMakeFiles/streamrel_reliability.dir/reliability/multicast.cpp.o.d"
  "/root/repo/src/reliability/naive.cpp" "src/CMakeFiles/streamrel_reliability.dir/reliability/naive.cpp.o" "gcc" "src/CMakeFiles/streamrel_reliability.dir/reliability/naive.cpp.o.d"
  "/root/repo/src/reliability/node_failures.cpp" "src/CMakeFiles/streamrel_reliability.dir/reliability/node_failures.cpp.o" "gcc" "src/CMakeFiles/streamrel_reliability.dir/reliability/node_failures.cpp.o.d"
  "/root/repo/src/reliability/polynomial.cpp" "src/CMakeFiles/streamrel_reliability.dir/reliability/polynomial.cpp.o" "gcc" "src/CMakeFiles/streamrel_reliability.dir/reliability/polynomial.cpp.o.d"
  "/root/repo/src/reliability/reductions.cpp" "src/CMakeFiles/streamrel_reliability.dir/reliability/reductions.cpp.o" "gcc" "src/CMakeFiles/streamrel_reliability.dir/reliability/reductions.cpp.o.d"
  "/root/repo/src/reliability/throughput.cpp" "src/CMakeFiles/streamrel_reliability.dir/reliability/throughput.cpp.o" "gcc" "src/CMakeFiles/streamrel_reliability.dir/reliability/throughput.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/streamrel_cuts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamrel_maxflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamrel_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamrel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
