# Empty compiler generated dependencies file for streamrel_graph.
# This may be replaced when dependencies are built.
