file(REMOVE_RECURSE
  "CMakeFiles/streamrel_graph.dir/graph/dot_export.cpp.o"
  "CMakeFiles/streamrel_graph.dir/graph/dot_export.cpp.o.d"
  "CMakeFiles/streamrel_graph.dir/graph/flow_network.cpp.o"
  "CMakeFiles/streamrel_graph.dir/graph/flow_network.cpp.o.d"
  "CMakeFiles/streamrel_graph.dir/graph/generators.cpp.o"
  "CMakeFiles/streamrel_graph.dir/graph/generators.cpp.o.d"
  "CMakeFiles/streamrel_graph.dir/graph/graph_algos.cpp.o"
  "CMakeFiles/streamrel_graph.dir/graph/graph_algos.cpp.o.d"
  "CMakeFiles/streamrel_graph.dir/graph/io.cpp.o"
  "CMakeFiles/streamrel_graph.dir/graph/io.cpp.o.d"
  "CMakeFiles/streamrel_graph.dir/graph/subgraph.cpp.o"
  "CMakeFiles/streamrel_graph.dir/graph/subgraph.cpp.o.d"
  "libstreamrel_graph.a"
  "libstreamrel_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamrel_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
