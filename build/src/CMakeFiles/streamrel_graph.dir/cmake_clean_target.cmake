file(REMOVE_RECURSE
  "libstreamrel_graph.a"
)
