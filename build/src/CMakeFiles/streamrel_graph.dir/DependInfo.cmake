
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/dot_export.cpp" "src/CMakeFiles/streamrel_graph.dir/graph/dot_export.cpp.o" "gcc" "src/CMakeFiles/streamrel_graph.dir/graph/dot_export.cpp.o.d"
  "/root/repo/src/graph/flow_network.cpp" "src/CMakeFiles/streamrel_graph.dir/graph/flow_network.cpp.o" "gcc" "src/CMakeFiles/streamrel_graph.dir/graph/flow_network.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/streamrel_graph.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/streamrel_graph.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph_algos.cpp" "src/CMakeFiles/streamrel_graph.dir/graph/graph_algos.cpp.o" "gcc" "src/CMakeFiles/streamrel_graph.dir/graph/graph_algos.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/streamrel_graph.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/streamrel_graph.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/subgraph.cpp" "src/CMakeFiles/streamrel_graph.dir/graph/subgraph.cpp.o" "gcc" "src/CMakeFiles/streamrel_graph.dir/graph/subgraph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/streamrel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
