# Empty dependencies file for streamrel_p2p.
# This may be replaced when dependencies are built.
