file(REMOVE_RECURSE
  "CMakeFiles/streamrel_p2p.dir/p2p/churn.cpp.o"
  "CMakeFiles/streamrel_p2p.dir/p2p/churn.cpp.o.d"
  "CMakeFiles/streamrel_p2p.dir/p2p/mesh_builder.cpp.o"
  "CMakeFiles/streamrel_p2p.dir/p2p/mesh_builder.cpp.o.d"
  "CMakeFiles/streamrel_p2p.dir/p2p/optimizer.cpp.o"
  "CMakeFiles/streamrel_p2p.dir/p2p/optimizer.cpp.o.d"
  "CMakeFiles/streamrel_p2p.dir/p2p/overlay.cpp.o"
  "CMakeFiles/streamrel_p2p.dir/p2p/overlay.cpp.o.d"
  "CMakeFiles/streamrel_p2p.dir/p2p/scenario.cpp.o"
  "CMakeFiles/streamrel_p2p.dir/p2p/scenario.cpp.o.d"
  "CMakeFiles/streamrel_p2p.dir/p2p/tree_builder.cpp.o"
  "CMakeFiles/streamrel_p2p.dir/p2p/tree_builder.cpp.o.d"
  "libstreamrel_p2p.a"
  "libstreamrel_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamrel_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
