file(REMOVE_RECURSE
  "libstreamrel_p2p.a"
)
