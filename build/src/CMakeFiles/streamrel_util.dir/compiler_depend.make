# Empty compiler generated dependencies file for streamrel_util.
# This may be replaced when dependencies are built.
