file(REMOVE_RECURSE
  "CMakeFiles/streamrel_util.dir/util/bitops.cpp.o"
  "CMakeFiles/streamrel_util.dir/util/bitops.cpp.o.d"
  "CMakeFiles/streamrel_util.dir/util/cli.cpp.o"
  "CMakeFiles/streamrel_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/streamrel_util.dir/util/config_prob.cpp.o"
  "CMakeFiles/streamrel_util.dir/util/config_prob.cpp.o.d"
  "CMakeFiles/streamrel_util.dir/util/prng.cpp.o"
  "CMakeFiles/streamrel_util.dir/util/prng.cpp.o.d"
  "CMakeFiles/streamrel_util.dir/util/stats.cpp.o"
  "CMakeFiles/streamrel_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/streamrel_util.dir/util/table.cpp.o"
  "CMakeFiles/streamrel_util.dir/util/table.cpp.o.d"
  "libstreamrel_util.a"
  "libstreamrel_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamrel_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
