file(REMOVE_RECURSE
  "libstreamrel_util.a"
)
