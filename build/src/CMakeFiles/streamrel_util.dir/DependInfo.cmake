
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/bitops.cpp" "src/CMakeFiles/streamrel_util.dir/util/bitops.cpp.o" "gcc" "src/CMakeFiles/streamrel_util.dir/util/bitops.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/streamrel_util.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/streamrel_util.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/config_prob.cpp" "src/CMakeFiles/streamrel_util.dir/util/config_prob.cpp.o" "gcc" "src/CMakeFiles/streamrel_util.dir/util/config_prob.cpp.o.d"
  "/root/repo/src/util/prng.cpp" "src/CMakeFiles/streamrel_util.dir/util/prng.cpp.o" "gcc" "src/CMakeFiles/streamrel_util.dir/util/prng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/streamrel_util.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/streamrel_util.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/streamrel_util.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/streamrel_util.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
