file(REMOVE_RECURSE
  "libstreamrel_core.a"
)
