file(REMOVE_RECURSE
  "CMakeFiles/streamrel_core.dir/core/accumulate.cpp.o"
  "CMakeFiles/streamrel_core.dir/core/accumulate.cpp.o.d"
  "CMakeFiles/streamrel_core.dir/core/assignments.cpp.o"
  "CMakeFiles/streamrel_core.dir/core/assignments.cpp.o.d"
  "CMakeFiles/streamrel_core.dir/core/bottleneck_algorithm.cpp.o"
  "CMakeFiles/streamrel_core.dir/core/bottleneck_algorithm.cpp.o.d"
  "CMakeFiles/streamrel_core.dir/core/chain.cpp.o"
  "CMakeFiles/streamrel_core.dir/core/chain.cpp.o.d"
  "CMakeFiles/streamrel_core.dir/core/hybrid_mc.cpp.o"
  "CMakeFiles/streamrel_core.dir/core/hybrid_mc.cpp.o.d"
  "CMakeFiles/streamrel_core.dir/core/importance.cpp.o"
  "CMakeFiles/streamrel_core.dir/core/importance.cpp.o.d"
  "CMakeFiles/streamrel_core.dir/core/polynomial_decomposition.cpp.o"
  "CMakeFiles/streamrel_core.dir/core/polynomial_decomposition.cpp.o.d"
  "CMakeFiles/streamrel_core.dir/core/reliability_facade.cpp.o"
  "CMakeFiles/streamrel_core.dir/core/reliability_facade.cpp.o.d"
  "CMakeFiles/streamrel_core.dir/core/shared_risk.cpp.o"
  "CMakeFiles/streamrel_core.dir/core/shared_risk.cpp.o.d"
  "CMakeFiles/streamrel_core.dir/core/side_array.cpp.o"
  "CMakeFiles/streamrel_core.dir/core/side_array.cpp.o.d"
  "libstreamrel_core.a"
  "libstreamrel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamrel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
