# Empty compiler generated dependencies file for streamrel_core.
# This may be replaced when dependencies are built.
