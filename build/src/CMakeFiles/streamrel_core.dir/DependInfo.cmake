
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accumulate.cpp" "src/CMakeFiles/streamrel_core.dir/core/accumulate.cpp.o" "gcc" "src/CMakeFiles/streamrel_core.dir/core/accumulate.cpp.o.d"
  "/root/repo/src/core/assignments.cpp" "src/CMakeFiles/streamrel_core.dir/core/assignments.cpp.o" "gcc" "src/CMakeFiles/streamrel_core.dir/core/assignments.cpp.o.d"
  "/root/repo/src/core/bottleneck_algorithm.cpp" "src/CMakeFiles/streamrel_core.dir/core/bottleneck_algorithm.cpp.o" "gcc" "src/CMakeFiles/streamrel_core.dir/core/bottleneck_algorithm.cpp.o.d"
  "/root/repo/src/core/chain.cpp" "src/CMakeFiles/streamrel_core.dir/core/chain.cpp.o" "gcc" "src/CMakeFiles/streamrel_core.dir/core/chain.cpp.o.d"
  "/root/repo/src/core/hybrid_mc.cpp" "src/CMakeFiles/streamrel_core.dir/core/hybrid_mc.cpp.o" "gcc" "src/CMakeFiles/streamrel_core.dir/core/hybrid_mc.cpp.o.d"
  "/root/repo/src/core/importance.cpp" "src/CMakeFiles/streamrel_core.dir/core/importance.cpp.o" "gcc" "src/CMakeFiles/streamrel_core.dir/core/importance.cpp.o.d"
  "/root/repo/src/core/polynomial_decomposition.cpp" "src/CMakeFiles/streamrel_core.dir/core/polynomial_decomposition.cpp.o" "gcc" "src/CMakeFiles/streamrel_core.dir/core/polynomial_decomposition.cpp.o.d"
  "/root/repo/src/core/reliability_facade.cpp" "src/CMakeFiles/streamrel_core.dir/core/reliability_facade.cpp.o" "gcc" "src/CMakeFiles/streamrel_core.dir/core/reliability_facade.cpp.o.d"
  "/root/repo/src/core/shared_risk.cpp" "src/CMakeFiles/streamrel_core.dir/core/shared_risk.cpp.o" "gcc" "src/CMakeFiles/streamrel_core.dir/core/shared_risk.cpp.o.d"
  "/root/repo/src/core/side_array.cpp" "src/CMakeFiles/streamrel_core.dir/core/side_array.cpp.o" "gcc" "src/CMakeFiles/streamrel_core.dir/core/side_array.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/streamrel_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamrel_cuts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamrel_maxflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamrel_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamrel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
