file(REMOVE_RECURSE
  "CMakeFiles/reliability_cli.dir/reliability_cli.cpp.o"
  "CMakeFiles/reliability_cli.dir/reliability_cli.cpp.o.d"
  "reliability_cli"
  "reliability_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
