# Empty compiler generated dependencies file for reliability_cli.
# This may be replaced when dependencies are built.
