file(REMOVE_RECURSE
  "CMakeFiles/bridge_overlay.dir/bridge_overlay.cpp.o"
  "CMakeFiles/bridge_overlay.dir/bridge_overlay.cpp.o.d"
  "bridge_overlay"
  "bridge_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bridge_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
