# Empty dependencies file for bridge_overlay.
# This may be replaced when dependencies are built.
