file(REMOVE_RECURSE
  "CMakeFiles/srlg_audit.dir/srlg_audit.cpp.o"
  "CMakeFiles/srlg_audit.dir/srlg_audit.cpp.o.d"
  "srlg_audit"
  "srlg_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srlg_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
