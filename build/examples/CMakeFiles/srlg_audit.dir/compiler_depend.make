# Empty compiler generated dependencies file for srlg_audit.
# This may be replaced when dependencies are built.
