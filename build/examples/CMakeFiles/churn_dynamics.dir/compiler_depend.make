# Empty compiler generated dependencies file for churn_dynamics.
# This may be replaced when dependencies are built.
