file(REMOVE_RECURSE
  "CMakeFiles/churn_dynamics.dir/churn_dynamics.cpp.o"
  "CMakeFiles/churn_dynamics.dir/churn_dynamics.cpp.o.d"
  "churn_dynamics"
  "churn_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
