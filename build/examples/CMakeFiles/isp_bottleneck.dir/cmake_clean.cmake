file(REMOVE_RECURSE
  "CMakeFiles/isp_bottleneck.dir/isp_bottleneck.cpp.o"
  "CMakeFiles/isp_bottleneck.dir/isp_bottleneck.cpp.o.d"
  "isp_bottleneck"
  "isp_bottleneck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_bottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
