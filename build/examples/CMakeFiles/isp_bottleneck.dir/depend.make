# Empty dependencies file for isp_bottleneck.
# This may be replaced when dependencies are built.
