file(REMOVE_RECURSE
  "CMakeFiles/splitstream_reliability.dir/splitstream_reliability.cpp.o"
  "CMakeFiles/splitstream_reliability.dir/splitstream_reliability.cpp.o.d"
  "splitstream_reliability"
  "splitstream_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitstream_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
