# Empty dependencies file for splitstream_reliability.
# This may be replaced when dependencies are built.
