# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bridge_overlay "/root/repo/build/examples/bridge_overlay" "--dot=/root/repo/build/examples/bridge.dot")
set_tests_properties(example_bridge_overlay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_splitstream "/root/repo/build/examples/splitstream_reliability")
set_tests_properties(example_splitstream PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_isp_bottleneck "/root/repo/build/examples/isp_bottleneck")
set_tests_properties(example_isp_bottleneck PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_srlg_audit "/root/repo/build/examples/srlg_audit")
set_tests_properties(example_srlg_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_churn_dynamics "/root/repo/build/examples/churn_dynamics" "--horizon=5000")
set_tests_properties(example_churn_dynamics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli "/root/repo/build/examples/reliability_cli" "/root/repo/examples/data/two_cluster.net" "--bounds" "--importance")
set_tests_properties(example_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_montecarlo "/root/repo/build/examples/reliability_cli" "/root/repo/examples/data/two_cluster.net" "--method" "montecarlo" "--samples" "5000")
set_tests_properties(example_cli_montecarlo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
