# Empty dependencies file for test_facade.
# This may be replaced when dependencies are built.
