file(REMOVE_RECURSE
  "CMakeFiles/test_facade.dir/test_facade.cpp.o"
  "CMakeFiles/test_facade.dir/test_facade.cpp.o.d"
  "test_facade"
  "test_facade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_facade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
