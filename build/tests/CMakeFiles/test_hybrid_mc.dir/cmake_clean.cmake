file(REMOVE_RECURSE
  "CMakeFiles/test_hybrid_mc.dir/test_hybrid_mc.cpp.o"
  "CMakeFiles/test_hybrid_mc.dir/test_hybrid_mc.cpp.o.d"
  "test_hybrid_mc"
  "test_hybrid_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hybrid_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
