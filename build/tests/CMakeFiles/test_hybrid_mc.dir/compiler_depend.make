# Empty compiler generated dependencies file for test_hybrid_mc.
# This may be replaced when dependencies are built.
