# Empty dependencies file for test_side_array.
# This may be replaced when dependencies are built.
