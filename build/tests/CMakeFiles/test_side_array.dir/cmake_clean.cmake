file(REMOVE_RECURSE
  "CMakeFiles/test_side_array.dir/test_side_array.cpp.o"
  "CMakeFiles/test_side_array.dir/test_side_array.cpp.o.d"
  "test_side_array"
  "test_side_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_side_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
