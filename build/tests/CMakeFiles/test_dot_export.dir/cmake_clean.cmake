file(REMOVE_RECURSE
  "CMakeFiles/test_dot_export.dir/test_dot_export.cpp.o"
  "CMakeFiles/test_dot_export.dir/test_dot_export.cpp.o.d"
  "test_dot_export"
  "test_dot_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dot_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
