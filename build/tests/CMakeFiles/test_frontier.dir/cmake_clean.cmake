file(REMOVE_RECURSE
  "CMakeFiles/test_frontier.dir/test_frontier.cpp.o"
  "CMakeFiles/test_frontier.dir/test_frontier.cpp.o.d"
  "test_frontier"
  "test_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
