file(REMOVE_RECURSE
  "CMakeFiles/test_paper_examples.dir/test_paper_examples.cpp.o"
  "CMakeFiles/test_paper_examples.dir/test_paper_examples.cpp.o.d"
  "test_paper_examples"
  "test_paper_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
