file(REMOVE_RECURSE
  "CMakeFiles/test_prng.dir/test_prng.cpp.o"
  "CMakeFiles/test_prng.dir/test_prng.cpp.o.d"
  "test_prng"
  "test_prng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
