# Empty compiler generated dependencies file for test_monte_carlo.
# This may be replaced when dependencies are built.
