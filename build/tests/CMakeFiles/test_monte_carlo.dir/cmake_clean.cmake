file(REMOVE_RECURSE
  "CMakeFiles/test_monte_carlo.dir/test_monte_carlo.cpp.o"
  "CMakeFiles/test_monte_carlo.dir/test_monte_carlo.cpp.o.d"
  "test_monte_carlo"
  "test_monte_carlo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_monte_carlo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
