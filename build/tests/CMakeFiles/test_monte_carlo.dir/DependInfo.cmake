
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_monte_carlo.cpp" "tests/CMakeFiles/test_monte_carlo.dir/test_monte_carlo.cpp.o" "gcc" "tests/CMakeFiles/test_monte_carlo.dir/test_monte_carlo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/streamrel_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamrel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamrel_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamrel_cuts.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamrel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamrel_maxflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamrel_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/streamrel_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
