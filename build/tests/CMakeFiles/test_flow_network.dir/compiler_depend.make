# Empty compiler generated dependencies file for test_flow_network.
# This may be replaced when dependencies are built.
