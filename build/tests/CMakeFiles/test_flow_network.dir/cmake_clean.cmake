file(REMOVE_RECURSE
  "CMakeFiles/test_flow_network.dir/test_flow_network.cpp.o"
  "CMakeFiles/test_flow_network.dir/test_flow_network.cpp.o.d"
  "test_flow_network"
  "test_flow_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flow_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
