file(REMOVE_RECURSE
  "CMakeFiles/test_polynomial_decomposition.dir/test_polynomial_decomposition.cpp.o"
  "CMakeFiles/test_polynomial_decomposition.dir/test_polynomial_decomposition.cpp.o.d"
  "test_polynomial_decomposition"
  "test_polynomial_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_polynomial_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
