# Empty compiler generated dependencies file for test_polynomial_decomposition.
# This may be replaced when dependencies are built.
