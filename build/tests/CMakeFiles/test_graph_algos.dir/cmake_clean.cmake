file(REMOVE_RECURSE
  "CMakeFiles/test_graph_algos.dir/test_graph_algos.cpp.o"
  "CMakeFiles/test_graph_algos.dir/test_graph_algos.cpp.o.d"
  "test_graph_algos"
  "test_graph_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
