# Empty dependencies file for test_graph_algos.
# This may be replaced when dependencies are built.
