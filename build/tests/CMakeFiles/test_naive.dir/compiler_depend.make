# Empty compiler generated dependencies file for test_naive.
# This may be replaced when dependencies are built.
