file(REMOVE_RECURSE
  "CMakeFiles/test_naive.dir/test_naive.cpp.o"
  "CMakeFiles/test_naive.dir/test_naive.cpp.o.d"
  "test_naive"
  "test_naive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_naive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
