# Empty dependencies file for test_bottleneck_algorithm.
# This may be replaced when dependencies are built.
