file(REMOVE_RECURSE
  "CMakeFiles/test_bottleneck_algorithm.dir/test_bottleneck_algorithm.cpp.o"
  "CMakeFiles/test_bottleneck_algorithm.dir/test_bottleneck_algorithm.cpp.o.d"
  "test_bottleneck_algorithm"
  "test_bottleneck_algorithm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bottleneck_algorithm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
