file(REMOVE_RECURSE
  "CMakeFiles/test_importance.dir/test_importance.cpp.o"
  "CMakeFiles/test_importance.dir/test_importance.cpp.o.d"
  "test_importance"
  "test_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
