# Empty dependencies file for test_importance.
# This may be replaced when dependencies are built.
