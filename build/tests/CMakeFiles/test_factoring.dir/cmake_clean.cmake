file(REMOVE_RECURSE
  "CMakeFiles/test_factoring.dir/test_factoring.cpp.o"
  "CMakeFiles/test_factoring.dir/test_factoring.cpp.o.d"
  "test_factoring"
  "test_factoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_factoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
