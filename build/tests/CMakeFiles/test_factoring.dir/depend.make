# Empty dependencies file for test_factoring.
# This may be replaced when dependencies are built.
