file(REMOVE_RECURSE
  "CMakeFiles/test_node_failures.dir/test_node_failures.cpp.o"
  "CMakeFiles/test_node_failures.dir/test_node_failures.cpp.o.d"
  "test_node_failures"
  "test_node_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
