# Empty dependencies file for test_node_failures.
# This may be replaced when dependencies are built.
