file(REMOVE_RECURSE
  "CMakeFiles/test_accumulate.dir/test_accumulate.cpp.o"
  "CMakeFiles/test_accumulate.dir/test_accumulate.cpp.o.d"
  "test_accumulate"
  "test_accumulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accumulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
