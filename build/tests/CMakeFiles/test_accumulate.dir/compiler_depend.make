# Empty compiler generated dependencies file for test_accumulate.
# This may be replaced when dependencies are built.
