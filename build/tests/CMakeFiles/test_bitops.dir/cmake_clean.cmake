file(REMOVE_RECURSE
  "CMakeFiles/test_bitops.dir/test_bitops.cpp.o"
  "CMakeFiles/test_bitops.dir/test_bitops.cpp.o.d"
  "test_bitops"
  "test_bitops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
