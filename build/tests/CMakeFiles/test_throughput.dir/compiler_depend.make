# Empty compiler generated dependencies file for test_throughput.
# This may be replaced when dependencies are built.
