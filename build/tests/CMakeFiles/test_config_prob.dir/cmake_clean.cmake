file(REMOVE_RECURSE
  "CMakeFiles/test_config_prob.dir/test_config_prob.cpp.o"
  "CMakeFiles/test_config_prob.dir/test_config_prob.cpp.o.d"
  "test_config_prob"
  "test_config_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_config_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
