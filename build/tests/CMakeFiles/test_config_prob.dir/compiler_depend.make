# Empty compiler generated dependencies file for test_config_prob.
# This may be replaced when dependencies are built.
