file(REMOVE_RECURSE
  "CMakeFiles/test_assignments.dir/test_assignments.cpp.o"
  "CMakeFiles/test_assignments.dir/test_assignments.cpp.o.d"
  "test_assignments"
  "test_assignments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assignments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
