# Empty dependencies file for test_assignments.
# This may be replaced when dependencies are built.
