file(REMOVE_RECURSE
  "CMakeFiles/test_shared_risk.dir/test_shared_risk.cpp.o"
  "CMakeFiles/test_shared_risk.dir/test_shared_risk.cpp.o.d"
  "test_shared_risk"
  "test_shared_risk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shared_risk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
