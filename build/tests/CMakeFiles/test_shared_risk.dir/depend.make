# Empty dependencies file for test_shared_risk.
# This may be replaced when dependencies are built.
