file(REMOVE_RECURSE
  "CMakeFiles/test_cuts.dir/test_cuts.cpp.o"
  "CMakeFiles/test_cuts.dir/test_cuts.cpp.o.d"
  "test_cuts"
  "test_cuts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cuts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
