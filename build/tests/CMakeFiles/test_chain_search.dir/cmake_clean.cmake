file(REMOVE_RECURSE
  "CMakeFiles/test_chain_search.dir/test_chain_search.cpp.o"
  "CMakeFiles/test_chain_search.dir/test_chain_search.cpp.o.d"
  "test_chain_search"
  "test_chain_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chain_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
