# Empty compiler generated dependencies file for test_chain_search.
# This may be replaced when dependencies are built.
