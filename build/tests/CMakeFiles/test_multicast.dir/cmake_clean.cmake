file(REMOVE_RECURSE
  "CMakeFiles/test_multicast.dir/test_multicast.cpp.o"
  "CMakeFiles/test_multicast.dir/test_multicast.cpp.o.d"
  "test_multicast"
  "test_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
