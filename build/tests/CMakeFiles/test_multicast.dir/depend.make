# Empty dependencies file for test_multicast.
# This may be replaced when dependencies are built.
