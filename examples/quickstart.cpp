// Quickstart: build a small streaming network, describe the demand, and
// compute its exact delivery reliability. The solver finds a bottleneck
// partition automatically and falls back to the exact baselines when the
// topology has none worth exploiting.

#include <iostream>

#include "streamrel/streamrel.hpp"

int main() {
  using namespace streamrel;

  // A media server (0) pushes a 2-sub-stream video to a subscriber (5).
  // Two relay clusters are joined by two cross-cluster links — the
  // bottleneck. Each link carries `capacity` unit sub-streams and fails
  // independently with the given probability.
  FlowNetwork net(6);
  net.add_undirected_edge(0, 1, 2, 0.05);  // server <-> relay a
  net.add_undirected_edge(0, 2, 2, 0.05);  // server <-> relay b
  net.add_undirected_edge(1, 2, 1, 0.05);  // relay a <-> relay b
  net.add_undirected_edge(1, 3, 2, 0.10);  // cross-cluster link 1
  net.add_undirected_edge(2, 4, 2, 0.10);  // cross-cluster link 2
  net.add_undirected_edge(3, 4, 1, 0.05);  // relay c <-> relay d
  net.add_undirected_edge(3, 5, 2, 0.05);  // relay c <-> subscriber
  net.add_undirected_edge(4, 5, 2, 0.05);  // relay d <-> subscriber

  const FlowDemand demand{/*source=*/0, /*sink=*/5, /*rate=*/2};

  const SolveReport report = compute_reliability(net, demand);
  std::cout << "network: " << net.summary() << "\n"
            << "demand: " << demand.rate << " sub-streams from node "
            << demand.source << " to node " << demand.sink << "\n"
            << "reliability = " << report.result.reliability << "\n";

  if (report.partition) {
    std::cout << "solved by the bottleneck decomposition: k = "
              << report.partition->stats.k << " bottleneck links, sides "
              << report.partition->stats.edges_s << "|"
              << report.partition->stats.edges_t << " links (alpha = "
              << report.partition->stats.alpha << ")\n";
  }

  // Cross-check with the exhaustive baseline (feasible at this size).
  std::cout << "naive 2^|E| check = "
            << reliability_naive(net, demand).reliability << "\n";

  // How much does each cross-cluster link matter? Degrade link 3.
  net.set_failure_prob(3, 0.5);
  std::cout << "with cross-link 1 at 50% failure: "
            << compute_reliability(net, demand).result.reliability << "\n";
  return 0;
}
