// Churn dynamics study: beyond the snapshot probability, how does the
// stream FEEL to the subscriber? Simulate a striped overlay under peer
// churn and report availability, interruption frequency, and outage
// durations — then confirm the time-average availability matches the
// analytic reliability at the same parameters.

#include <iostream>

#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/table.hpp"

int main(int argc, char** argv) {
  using namespace streamrel;
  const CliArgs args(argc, argv);
  const int peers = static_cast<int>(args.get_int("peers", 6));
  const double horizon = args.get_double("horizon", 50'000.0);

  std::cout << "Churn dynamics for a 2-striped overlay of " << peers
            << " peers (delivery of both sub-streams to the last peer; "
               "simulated horizon "
            << horizon << " min)\n\n";

  TextTable table({"mean session (min)", "analytic R", "sim availability",
                   "interruptions/hour", "mean outage (min)"});
  for (double session : {20.0, 60.0, 180.0}) {
    Overlay overlay(peers);
    StripedTreesOptions stripes;
    stripes.stripes = 2;
    add_striped_trees(overlay, stripes);
    ChurnModel churn;
    churn.mean_session_minutes = session;
    churn.window_minutes = 5.0;
    churn.base_link_loss = 0.01;
    apply_delta_in_place(overlay.net(),
                        churn_delta(overlay.net(), overlay.server(), churn));
    const FlowDemand demand = overlay.demand_to(overlay.peer(peers - 1), 2);

    const double analytic =
        compute_reliability(overlay.net(), demand).result.reliability;
    SimulationOptions sim;
    sim.duration = horizon;
    // Down spells model re-join/repair: 5 minutes on average.
    const SimulationReport report = simulate_availability(
        overlay.net(), demand, dynamics_from_probabilities(overlay.net(), 5.0),
        sim);
    table.new_row()
        .add_cell(session, 4)
        .add_cell(analytic, 5)
        .add_cell(report.availability, 5)
        .add_cell(static_cast<double>(report.interruptions) /
                      (horizon / 60.0),
                  4)
        .add_cell(report.mean_outage, 4);
  }
  table.print(std::cout);
  std::cout << "\nReading the table: the static model predicts the "
               "availability level; the simulation adds the operator-facing "
               "texture — how often playback breaks and for how long. "
               "Longer peer sessions improve all three.\n";
  return 0;
}
