// Shared-risk audit: the operator's view of a two-ISP deployment.
// Both peering links look independent on the overlay map, but they run
// through the same physical conduit — how much reliability is that
// correlation silently costing, and which links should be fixed first?

#include <iostream>

#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/table.hpp"

int main(int argc, char** argv) {
  using namespace streamrel;
  const CliArgs args(argc, argv);
  const double conduit_risk = args.get_double("conduit-risk", 0.1);

  TwoIspParams params;
  params.peers_per_isp = 6;
  params.peering_links = 2;
  params.peering_failure = 0.08;
  params.internal_failure = 0.04;
  params.seed = 2024;
  const GeneratedNetwork g = make_two_isp_scenario(params);
  const FlowDemand demand{g.source, g.sink, 2};

  // The two peering links are the crossing edges of the planted split.
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  std::cout << "Two-ISP overlay: " << g.net.summary() << ", peering links:";
  for (EdgeId id : partition.crossing_edges) std::cout << " e" << id;
  std::cout << "\nstream: " << demand.rate << " sub-streams, conduit failure "
            << format_double(conduit_risk, 3) << "\n\n";

  const double independent =
      compute_reliability(g.net, demand).result.reliability;
  const SharedRiskGroup conduit{partition.crossing_edges, conduit_risk};
  const double correlated =
      reliability_with_shared_risks(g.net, demand, {conduit}).reliability;
  // What a naive model would do: fold the conduit risk into each link
  // independently — same marginals, no correlation.
  GeneratedNetwork folded = g;
  for (EdgeId id : partition.crossing_edges) {
    const double p = folded.net.edge(id).failure_prob;
    folded.net.set_failure_prob(id,
                                1.0 - (1.0 - p) * (1.0 - conduit_risk));
  }
  const double folded_r =
      compute_reliability(folded.net, demand).result.reliability;

  TextTable model({"failure model", "R"});
  model.new_row().add_cell("independent links only (no conduit)")
      .add_cell(independent, 6);
  model.new_row()
      .add_cell("conduit risk folded per-link (WRONG: ignores correlation)")
      .add_cell(folded_r, 6);
  model.new_row().add_cell("shared-risk group (correct)")
      .add_cell(correlated, 6);
  model.print(std::cout);
  std::cout << "\nThe folded model overestimates reliability by "
            << format_double(folded_r - correlated, 4)
            << " — correlated peering failures cannot be averaged away.\n\n";

  std::cout << "Where to invest (Birnbaum ranking, top 5):\n";
  TextTable rank({"link", "endpoints", "crossing?", "birnbaum"});
  int shown = 0;
  for (const EdgeImportance& imp :
       ranked_by_birnbaum(edge_importance(g.net, demand))) {
    if (++shown > 5) break;
    const Edge& e = g.net.edge(imp.edge);
    const bool crossing =
        g.side_s[static_cast<std::size_t>(e.u)] !=
        g.side_s[static_cast<std::size_t>(e.v)];
    std::string endpoints = std::to_string(e.u);
    endpoints += "--";
    endpoints += std::to_string(e.v);
    rank.new_row()
        .add_cell(static_cast<std::int64_t>(imp.edge))
        .add_cell(endpoints)
        .add_cell(crossing ? "yes" : "no")
        .add_cell(imp.birnbaum, 5);
  }
  rank.print(std::cout);
  std::cout << "\nUnsurprisingly the peering links top the list: the "
               "bottleneck is where reliability is made or lost.\n";
  return 0;
}
