// SplitStream-style striped multicast: split the video into d unit-rate
// sub-streams, push each down its own tree, and quantify what striping
// buys (and costs) under churn — the exact question the paper's flow
// reliability answers that per-path availability cannot.

#include <iostream>

#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/table.hpp"

int main(int argc, char** argv) {
  using namespace streamrel;
  const CliArgs args(argc, argv);
  const int peers = static_cast<int>(args.get_int("peers", 7));
  const double session = args.get_double("mean-session", 45.0);

  std::cout << "SplitStream reliability study: " << peers
            << " peers, churn with mean session " << session
            << " min, 5-min delivery window\n\n";

  ChurnModel churn;
  churn.mean_session_minutes = session;
  churn.window_minutes = 5.0;
  churn.base_link_loss = 0.01;

  TextTable table({"stripes d", "links", "R(all d sub-streams)",
                   "R(>= 1 sub-stream)", "R(>= half)"});
  for (int stripes = 1; stripes <= 3; ++stripes) {
    Overlay overlay(peers);
    if (stripes == 1) {
      SingleTreeOptions opts;
      opts.stream_rate = 1;
      add_single_tree(overlay, opts);
    } else {
      StripedTreesOptions opts;
      opts.stripes = stripes;
      add_striped_trees(overlay, opts);
    }
    apply_delta_in_place(overlay.net(),
                        churn_delta(overlay.net(), overlay.server(), churn));
    const NodeId subscriber = overlay.peer(peers - 1);

    auto r_at = [&](Capacity rate) {
      return reliability_naive(overlay.net(),
                               overlay.demand_to(subscriber, rate))
          .reliability;
    };
    table.new_row()
        .add_cell(stripes)
        .add_cell(overlay.net().num_edges())
        .add_cell(r_at(stripes), 6)
        .add_cell(r_at(1), 6)
        .add_cell(r_at(std::max(1, (stripes + 1) / 2)), 6);
  }
  table.print(std::cout);
  std::cout
      << "\nReading the table: more stripes make SOME video far more "
         "likely (graceful degradation) while full-rate delivery gets "
         "harder — each stripe adds a failure point for the full stream. "
         "This is exactly the multi-tree trade-off SplitStream documents.\n";
  return 0;
}
