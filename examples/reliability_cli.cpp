// File-driven reliability tool: load a network description (see
// src/graph/io.hpp for the format), answer the reliability question with
// the chosen method, and optionally print bounds, per-link importance,
// and a Graphviz rendering.
//
//   reliability_cli network.net [--method auto|naive|factoring|bottleneck|
//                                 frontier|hybrid|montecarlo|connectivity]
//                               [--d <rate>] [--source N] [--sink N]
//                               [--samples N] [--deadline-ms T] [--threads N]
//                               [--json] [--bounds] [--importance]
//                               [--dot out.dot]
//
// --deadline-ms bounds the wall clock: on expiry the answer degrades to a
// status + reliability bounds instead of running on. --json emits the
// solve report (including the telemetry tree) as one JSON object.

#include <fstream>
#include <iostream>

#include "streamrel.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

using namespace streamrel;

namespace {

int run(const CliArgs& args) {
  if (args.positional().empty()) {
    std::cerr << "usage: reliability_cli <network-file> [--method ...] "
                 "[--d N] [--source N] [--sink N] [--samples N] "
                 "[--deadline-ms T] [--threads N] [--json] [--bounds] "
                 "[--importance] [--dot out.dot]\n";
    return 2;
  }
  NetworkFile file = read_network_from_file(args.positional().front());
  FlowDemand demand = file.demand.value_or(FlowDemand{0, 0, 1});
  demand.source = static_cast<NodeId>(args.get_int("source", demand.source));
  demand.sink = static_cast<NodeId>(args.get_int("sink", demand.sink));
  demand.rate = args.get_int("d", demand.rate);
  file.net.check_demand(demand);

  std::cout << "network: " << file.net.summary() << "\n"
            << "demand: " << demand.rate << " sub-stream(s) "
            << demand.source << " -> " << demand.sink << "\n";

  const std::string method = args.get("method", "auto");
  Stopwatch sw;
  if (method == "montecarlo") {
    MonteCarloOptions options;
    options.samples =
        static_cast<std::uint64_t>(args.get_int("samples", 100'000));
    const MonteCarloResult mc =
        reliability_monte_carlo(file.net, demand, options);
    std::cout << "estimate = " << format_double(mc.estimate, 8) << " +- "
              << format_double(mc.ci95_halfwidth, 4) << " (95% CI, "
              << mc.samples << " samples, "
              << format_double(sw.elapsed_ms(), 4) << " ms)\n";
  } else if (method == "connectivity") {
    const auto result = reliability_connectivity(file.net, demand);
    std::cout << "reliability = " << format_double(result.reliability, 10)
              << " (frontier DP, " << result.configurations() << " states, "
              << format_double(sw.elapsed_ms(), 4) << " ms)\n";
  } else {
    SolveOptions options;
    if (method == "naive") {
      options.method = Method::kNaive;
    } else if (method == "factoring") {
      options.method = Method::kFactoring;
    } else if (method == "bottleneck") {
      options.method = Method::kBottleneck;
    } else if (method == "frontier") {
      options.method = Method::kFrontier;
    } else if (method == "hybrid") {
      options.method = Method::kHybridMc;
      options.hybrid.samples_per_side =
          static_cast<std::uint64_t>(args.get_int("samples", 20'000));
    } else if (method != "auto") {
      std::cerr << "unknown --method '" << method << "'\n";
      return 2;
    }
    options.deadline_ms = args.get_double("deadline-ms", 0.0);
    options.max_threads = static_cast<int>(args.get_int("threads", 0));
    const SolveReport report = compute_reliability(file.net, demand, options);
    if (args.get_bool("json")) {
      std::cout << "{\"reliability\": "
                << format_double(report.result.reliability, 10)
                << ", \"status\": \"" << to_string(report.result.status)
                << "\", \"method\": \"" << to_string(report.method_used)
                << "\", \"engine\": \"" << report.engine
                << "\", \"links_reduced\": " << report.links_reduced
                << ", \"elapsed_ms\": " << format_double(sw.elapsed_ms(), 4);
      if (report.bounds) {
        std::cout << ", \"bounds\": {\"lower\": "
                  << format_double(report.bounds->lower, 10)
                  << ", \"upper\": "
                  << format_double(report.bounds->upper, 10) << "}";
      }
      std::cout << ", \"telemetry\": " << report.result.telemetry.to_json()
                << "}\n";
      return 0;
    }
    std::cout << "reliability = "
              << format_double(report.result.reliability, 10) << " ("
              << to_string(report.method_used) << ", "
              << format_double(sw.elapsed_ms(), 4) << " ms)\n";
    if (report.result.status != SolveStatus::kExact) {
      std::cout << "status: " << to_string(report.result.status);
      if (report.bounds) {
        std::cout << "; bounds [" << format_double(report.bounds->lower, 8)
                  << ", " << format_double(report.bounds->upper, 8) << "]";
      }
      std::cout << "\n";
    }
    if (report.partition) {
      std::cout << "bottleneck: k = " << report.partition->stats.k
                << ", sides " << report.partition->stats.edges_s << "|"
                << report.partition->stats.edges_t << " links\n";
    }
  }

  if (args.get_bool("bounds")) {
    const ReliabilityBounds bounds = reliability_bounds(file.net, demand);
    std::cout << "bounds: [" << format_double(bounds.lower, 8) << ", "
              << format_double(bounds.upper, 8) << "] from "
              << bounds.cuts_used << " cuts / " << bounds.routings_used
              << " routings\n";
  }

  if (args.get_bool("importance")) {
    std::cout << "\nper-link importance (Birnbaum ranking):\n";
    TextTable table({"link", "endpoints", "birnbaum", "risk_reduction"});
    for (const EdgeImportance& imp :
         ranked_by_birnbaum(edge_importance(file.net, demand))) {
      const Edge& e = file.net.edge(imp.edge);
      std::string endpoints = std::to_string(e.u);
      endpoints += e.directed() ? "->" : "--";
      endpoints += std::to_string(e.v);
      table.new_row()
          .add_cell(static_cast<std::int64_t>(imp.edge))
          .add_cell(endpoints)
          .add_cell(imp.birnbaum, 5)
          .add_cell(imp.risk_reduction, 5);
    }
    table.print(std::cout);
  }

  if (args.has("dot")) {
    DotOptions dot;
    dot.source = demand.source;
    dot.sink = demand.sink;
    std::ofstream(args.get("dot", "network.dot")) << to_dot(file.net, dot);
    std::cout << "wrote " << args.get("dot", "network.dot") << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(CliArgs(argc, argv));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
