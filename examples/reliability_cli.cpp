// File-driven reliability tool: load a network description (see
// src/graph/io.hpp for the format), answer the reliability question with
// the chosen method, and optionally print bounds, per-link importance,
// and a Graphviz rendering.
//
//   reliability_cli network.net [--method auto|naive|factoring|bottleneck|
//                                 frontier|hybrid|montecarlo|connectivity]
//                               [--d <rate>] [--source N] [--sink N]
//                               [--samples N] [--deadline-ms T] [--threads N]
//                               [--json] [--bounds] [--importance]
//                               [--dot out.dot] [--batch queries.json]
//                               [--replay events.json] [--cold]
//                               [--trace out.json] [--progress]
//
// --deadline-ms bounds the wall clock: on expiry the answer degrades to a
// status + reliability bounds instead of running on. --json emits the
// solve report (including the telemetry tree) as one JSON object.
//
// --trace records solver spans and writes a Chrome trace-event JSON file
// (load it in chrome://tracing or Perfetto, or feed it to trace_report).
// --progress prints a throttled visited/total + rate + ETA line to stderr
// while the sweep runs. See docs/OBSERVABILITY.md.
//
// --replay evaluates a timestamped churn event stream (see
// include/streamrel/sim/event_stream.hpp for the JSON format) into an
// R(t) series through one warm QuerySession absorbing NetworkDelta
// patches; --cold switches to recompiling from scratch per event (same
// series, for cross-checking). Output is one JSON line per event plus a
// summary with the worst event and the artifact survival rate.
//
// --batch runs many what-if queries through one QuerySession, so the
// exponential structural work is paid once and shared. The file holds
// {"queries": [...]} (or a bare array); each query may set "source",
// "sink", "d", "method", "deadline_ms" and "overrides":
// [{"edge": id, "p": prob}, ...] — per-query failure-probability
// substitutions. Output is one JSON report per query (JSON lines) plus a
// summary object with the cache hit/miss/eviction counters.

#include <fstream>
#include <iostream>
#include <iterator>
#include <map>

#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/stopwatch.hpp"
#include "streamrel/util/table.hpp"

using namespace streamrel;

namespace {

bool parse_method(const std::string& name, Method* out) {
  if (name == "auto") {
    *out = Method::kAuto;
  } else if (name == "naive") {
    *out = Method::kNaive;
  } else if (name == "factoring") {
    *out = Method::kFactoring;
  } else if (name == "bottleneck") {
    *out = Method::kBottleneck;
  } else if (name == "frontier") {
    *out = Method::kFrontier;
  } else if (name == "hybrid") {
    *out = Method::kHybridMc;
  } else {
    return false;
  }
  return true;
}

int run_batch(const NetworkFile& file, const FlowDemand& default_demand,
              const CliArgs& args) {
  std::ifstream in(args.get("batch", ""));
  if (!in) {
    std::cerr << "cannot open batch file '" << args.get("batch", "") << "'\n";
    return 2;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const JsonValue doc = parse_json(text);
  const JsonValue* list = doc.is_array() ? &doc : doc.find("queries");
  if (!list || !list->is_array()) {
    std::cerr << "batch file needs a top-level array or a \"queries\" key\n";
    return 2;
  }

  std::vector<WhatIfQuery> queries;
  queries.reserve(list->as_array().size());
  for (const JsonValue& entry : list->as_array()) {
    WhatIfQuery q;
    q.demand = default_demand;
    if (const JsonValue* v = entry.find("source")) {
      q.demand.source = static_cast<NodeId>(v->as_number());
    }
    if (const JsonValue* v = entry.find("sink")) {
      q.demand.sink = static_cast<NodeId>(v->as_number());
    }
    if (const JsonValue* v = entry.find("d")) {
      q.demand.rate = static_cast<Capacity>(v->as_number());
    }
    if (const JsonValue* v = entry.find("deadline_ms")) {
      q.deadline_ms = v->as_number();
    }
    if (const JsonValue* v = entry.find("method")) {
      if (!parse_method(v->as_string(), &q.method)) {
        std::cerr << "unknown method '" << v->as_string()
                  << "' in batch file\n";
        return 2;
      }
    }
    if (const JsonValue* v = entry.find("overrides")) {
      for (const JsonValue& o : v->as_array()) {
        const JsonValue* edge = o.find("edge");
        const JsonValue* p = o.find("p");
        if (!edge || !p) {
          std::cerr << "override needs \"edge\" and \"p\" members\n";
          return 2;
        }
        q.prob_overrides.push_back(ProbOverride{
            static_cast<EdgeId>(edge->as_number()), p->as_number()});
      }
    }
    queries.push_back(std::move(q));
  }

  QueryCacheOptions cache;
  if (const JsonValue* v = doc.find("max_mask_tables")) {
    cache.max_mask_tables = static_cast<std::size_t>(v->as_number());
  }
  QuerySession session(file.net, cache);
  BatchEvaluator evaluator(session);
  BatchOptions options;
  options.deadline_ms = args.get_double("deadline-ms", 0.0);
  options.max_threads = static_cast<int>(args.get_int("threads", 0));
  if (args.get_bool("progress")) {
    ProgressOptions popts;
    popts.label = "batch";
    options.progress = std::make_shared<ProgressReporter>(nullptr, popts);
  }

  Stopwatch sw;
  const BatchReport batch = evaluator.evaluate(queries, options);
  const double elapsed = sw.elapsed_ms();
  if (options.progress) options.progress->finish();

  for (std::size_t i = 0; i < batch.reports.size(); ++i) {
    const SolveReport& report = batch.reports[i];
    std::cout << "{\"query\": " << i << ", \"source\": "
              << queries[i].demand.source << ", \"sink\": "
              << queries[i].demand.sink << ", \"d\": "
              << queries[i].demand.rate << ", \"reliability\": "
              << format_double(report.result.reliability, 10)
              << ", \"status\": \"" << to_string(report.result.status)
              << "\", \"method\": \"" << to_string(report.method_used)
              << "\", \"engine\": \"" << report.engine << "\"";
    if (report.bounds) {
      std::cout << ", \"bounds\": {\"lower\": "
                << format_double(report.bounds->lower, 10) << ", \"upper\": "
                << format_double(report.bounds->upper, 10) << "}";
    }
    std::cout << "}\n";
  }
  // Engines that actually answered (post-kAuto resolution), by count.
  std::map<std::string, int> engines;
  for (const SolveReport& report : batch.reports) {
    engines[std::string(report.engine)]++;
  }
  std::cout << "{\"summary\": {\"api_version\": " << STREAMREL_API_VERSION
            << ", \"queries\": " << batch.reports.size()
            << ", \"exact\": " << batch.exact_count << ", \"cache_hits\": "
            << session.cache_hits() << ", \"cache_misses\": "
            << session.cache_misses() << ", \"cache_evictions\": "
            << session.cache_evictions() << ", \"elapsed_ms\": "
            << format_double(elapsed, 4) << ", \"engines\": {";
  bool first = true;
  for (const auto& [engine, count] : engines) {
    if (!first) std::cout << ", ";
    first = false;
    std::cout << "\"" << engine << "\": " << count;
  }
  std::cout << "}, \"telemetry\": " << batch.telemetry.to_json() << "}}\n";
  return 0;
}

int run_replay(const NetworkFile& file, const FlowDemand& demand,
               const CliArgs& args) {
  std::ifstream in(args.get("replay", ""));
  if (!in) {
    std::cerr << "cannot open event file '" << args.get("replay", "")
              << "'\n";
    return 2;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EventStream events = parse_event_stream(text);
  sort_event_stream(events);

  ReplayOptions options;
  options.use_session = !args.get_bool("cold");
  options.solve.deadline_ms = args.get_double("deadline-ms", 0.0);
  options.solve.max_threads = static_cast<int>(args.get_int("threads", 0));

  Stopwatch sw;
  const ReplayReport report = replay_churn(file.net, demand, events, options);
  const double elapsed = sw.elapsed_ms();

  std::cout << "{\"t\": 0, \"reliability\": "
            << format_double(report.initial_reliability, 10) << "}\n";
  for (const ReplayEventOutcome& out : report.series) {
    std::cout << "{\"t\": " << format_double(out.time, 6) << ", \"label\": \""
              << out.label << "\", \"class\": \"" << to_string(out.applied)
              << "\", \"reliability\": "
              << format_double(out.reliability, 10) << ", \"delta_r\": "
              << format_double(out.delta_r, 10) << ", \"cache\": {\"full\": "
              << out.entries_full << ", \"partial\": " << out.entries_partial
              << ", \"survived\": " << out.entries_survived << "}}\n";
  }
  std::cout << "{\"summary\": {\"mode\": \""
            << (options.use_session ? "warm" : "cold")
            << "\", \"events\": " << report.series.size()
            << ", \"final_reliability\": "
            << format_double(report.final_reliability, 10)
            << ", \"worst_event\": " << report.worst_event;
  if (report.worst_event >= 0) {
    std::cout << ", \"worst_label\": \""
              << report.series[static_cast<std::size_t>(report.worst_event)]
                     .label
              << "\"";
  }
  std::cout << ", \"artifact_survival_rate\": "
            << format_double(report.artifact_survival_rate, 6)
            << ", \"elapsed_ms\": " << format_double(elapsed, 4) << "}}\n";
  return 0;
}

int run(const CliArgs& args) {
  if (args.positional().empty()) {
    std::cerr << "usage: reliability_cli <network-file> [--method ...] "
                 "[--d N] [--source N] [--sink N] [--samples N] "
                 "[--deadline-ms T] [--threads N] [--json] [--bounds] "
                 "[--importance] [--dot out.dot] [--batch queries.json] "
                 "[--trace out.json] [--progress]\n";
    return 2;
  }
  NetworkFile file = read_network_from_file(args.positional().front());
  FlowDemand demand = file.demand.value_or(FlowDemand{0, 0, 1});
  demand.source = static_cast<NodeId>(args.get_int("source", demand.source));
  demand.sink = static_cast<NodeId>(args.get_int("sink", demand.sink));
  demand.rate = args.get_int("d", demand.rate);
  file.net.check_demand(demand);

  if (args.has("batch")) return run_batch(file, demand, args);
  if (args.has("replay")) return run_replay(file, demand, args);

  std::cout << "network: " << file.net.summary() << "\n"
            << "demand: " << demand.rate << " sub-stream(s) "
            << demand.source << " -> " << demand.sink << "\n";

  const std::string method = args.get("method", "auto");
  Stopwatch sw;
  if (method == "montecarlo") {
    MonteCarloOptions options;
    options.samples =
        static_cast<std::uint64_t>(args.get_int("samples", 100'000));
    const MonteCarloResult mc =
        reliability_monte_carlo(file.net, demand, options);
    std::cout << "estimate = " << format_double(mc.estimate, 8) << " +- "
              << format_double(mc.ci95_halfwidth, 4) << " (95% CI, "
              << mc.samples << " samples, "
              << format_double(sw.elapsed_ms(), 4) << " ms)\n";
  } else if (method == "connectivity") {
    const auto result = reliability_connectivity(file.net, demand);
    std::cout << "reliability = " << format_double(result.reliability, 10)
              << " (frontier DP, " << result.configurations() << " states, "
              << format_double(sw.elapsed_ms(), 4) << " ms)\n";
  } else {
    SolveOptions options;
    if (!parse_method(method, &options.method)) {
      std::cerr << "unknown --method '" << method << "'\n";
      return 2;
    }
    if (options.method == Method::kHybridMc) {
      options.hybrid.samples_per_side =
          static_cast<std::uint64_t>(args.get_int("samples", 20'000));
    }
    options.deadline_ms = args.get_double("deadline-ms", 0.0);
    options.max_threads = static_cast<int>(args.get_int("threads", 0));
    // --progress needs a caller-owned context to hang the reporter on;
    // replicate the deadline/thread handling compute_reliability would
    // have done with its internal one.
    ExecContext progress_ctx;
    std::shared_ptr<ProgressReporter> progress;
    if (args.get_bool("progress")) {
      if (options.deadline_ms > 0.0) {
        progress_ctx.set_deadline_ms(options.deadline_ms);
      }
      progress_ctx.max_threads = options.max_threads;
      progress = std::make_shared<ProgressReporter>();
      progress_ctx.progress = progress;
      options.context = &progress_ctx;
    }
    const SolveReport report = compute_reliability(file.net, demand, options);
    if (progress) progress->finish();
    if (args.get_bool("json")) {
      std::cout << "{\"api_version\": " << STREAMREL_API_VERSION
                << ", \"reliability\": "
                << format_double(report.result.reliability, 10)
                << ", \"status\": \"" << to_string(report.result.status)
                << "\", \"method\": \"" << to_string(report.method_used)
                << "\", \"engine\": \"" << report.engine
                << "\", \"links_reduced\": " << report.links_reduced
                << ", \"elapsed_ms\": " << format_double(sw.elapsed_ms(), 4);
      if (report.bounds) {
        std::cout << ", \"bounds\": {\"lower\": "
                  << format_double(report.bounds->lower, 10)
                  << ", \"upper\": "
                  << format_double(report.bounds->upper, 10) << "}";
      }
      std::cout << ", \"telemetry\": " << report.result.telemetry.to_json()
                << "}\n";
      return 0;
    }
    std::cout << "reliability = "
              << format_double(report.result.reliability, 10) << " ("
              << to_string(report.method_used) << ", "
              << format_double(sw.elapsed_ms(), 4) << " ms)\n";
    if (report.result.status != SolveStatus::kExact) {
      std::cout << "status: " << to_string(report.result.status);
      if (report.bounds) {
        std::cout << "; bounds [" << format_double(report.bounds->lower, 8)
                  << ", " << format_double(report.bounds->upper, 8) << "]";
      }
      std::cout << "\n";
    }
    if (report.partition) {
      std::cout << "bottleneck: k = " << report.partition->stats.k
                << ", sides " << report.partition->stats.edges_s << "|"
                << report.partition->stats.edges_t << " links\n";
    }
  }

  if (args.get_bool("bounds")) {
    const ReliabilityBounds bounds = reliability_bounds(file.net, demand);
    std::cout << "bounds: [" << format_double(bounds.lower, 8) << ", "
              << format_double(bounds.upper, 8) << "] from "
              << bounds.cuts_used << " cuts / " << bounds.routings_used
              << " routings\n";
  }

  if (args.get_bool("importance")) {
    std::cout << "\nper-link importance (Birnbaum ranking):\n";
    TextTable table({"link", "endpoints", "birnbaum", "risk_reduction"});
    for (const EdgeImportance& imp :
         ranked_by_birnbaum(edge_importance(file.net, demand))) {
      const Edge& e = file.net.edge(imp.edge);
      std::string endpoints = std::to_string(e.u);
      endpoints += e.directed() ? "->" : "--";
      endpoints += std::to_string(e.v);
      table.new_row()
          .add_cell(static_cast<std::int64_t>(imp.edge))
          .add_cell(endpoints)
          .add_cell(imp.birnbaum, 5)
          .add_cell(imp.risk_reduction, 5);
    }
    table.print(std::cout);
  }

  if (args.has("dot")) {
    DotOptions dot;
    dot.source = demand.source;
    dot.sink = demand.sink;
    std::ofstream(args.get("dot", "network.dot")) << to_dot(file.net, dot);
    std::cout << "wrote " << args.get("dot", "network.dot") << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv);
    const std::string trace_path = args.get("trace", "");
    if (!trace_path.empty()) Tracer::set_enabled(true);
    int code = run(args);
    if (!trace_path.empty()) {
      Tracer::set_enabled(false);
      if (Tracer::export_chrome_json_to_file(trace_path)) {
        std::cerr << "trace: " << Tracer::event_count() << " events -> "
                  << trace_path;
        if (Tracer::dropped_count() > 0) {
          std::cerr << " (" << Tracer::dropped_count()
                    << " dropped, ring full)";
        }
        std::cerr << "\n";
      } else {
        std::cerr << "trace: cannot write '" << trace_path << "'\n";
        if (code == 0) code = 1;
      }
    }
    return code;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
