// File-driven reliability tool: load a network description (see
// src/graph/io.hpp for the format), answer the reliability question with
// the chosen method, and optionally print bounds, per-link importance,
// and a Graphviz rendering.
//
//   reliability_cli network.net [--method auto|naive|factoring|bottleneck|
//                                 frontier|hybrid|montecarlo|connectivity]
//                               [--d <rate>] [--source N] [--sink N]
//                               [--samples N] [--deadline-ms T] [--threads N]
//                               [--json] [--bounds] [--importance]
//                               [--dot out.dot] [--batch queries.json]
//                               [--replay events.json] [--cold]
//                               [--trace out.json] [--progress]
//
// --deadline-ms bounds the wall clock: on expiry the answer degrades to a
// status + reliability bounds instead of running on. --json emits the
// solve report (including the telemetry tree) as one JSON object.
//
// --trace records solver spans and writes a Chrome trace-event JSON file
// (load it in chrome://tracing or Perfetto, or feed it to trace_report).
// --progress prints a throttled visited/total + rate + ETA line to stderr
// while the sweep runs. See docs/OBSERVABILITY.md.
//
// --replay evaluates a timestamped churn event stream (see
// include/streamrel/sim/event_stream.hpp for the JSON format) into an
// R(t) series through one warm QuerySession absorbing NetworkDelta
// patches; --cold switches to recompiling from scratch per event (same
// series, for cross-checking). Output is one JSON line per event plus a
// summary with the worst event and the artifact survival rate.
//
// --batch runs many what-if queries through one QuerySession, so the
// exponential structural work is paid once and shared. The file holds
// {"queries": [...]} (or a bare array); each query may set "source",
// "sink", "d", "method", "deadline_ms" and "overrides":
// [{"edge": id, "p": prob}, ...] — per-query failure-probability
// substitutions. Output is one JSON report per query (JSON lines) plus a
// summary object with the cache hit/miss/eviction counters.
//
// Both modes are in-process clients of the wire schema
// (include/streamrel/api/wire.hpp): the file becomes a request, a
// ReliabilityService executes it, and the response's legacy render is
// printed — the same bytes the daemon's clients see.

#include <fstream>
#include <iostream>
#include <iterator>

#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/stopwatch.hpp"
#include "streamrel/util/table.hpp"

using namespace streamrel;

namespace {

// Binds the network file (with the CLI's demand overrides already
// applied) as the service's "default/default" session.
WireRequest register_request(const NetworkFile& file,
                             const FlowDemand& demand,
                             std::optional<std::size_t> max_mask_tables) {
  WireRequest reg;
  reg.verb = WireVerb::kRegisterNetwork;
  reg.network_text = network_to_string(file.net);
  reg.query.source = demand.source;
  reg.query.sink = demand.sink;
  reg.query.rate = demand.rate;
  reg.max_mask_tables = max_mask_tables;
  return reg;
}

int run_batch(const NetworkFile& file, const FlowDemand& default_demand,
              const CliArgs& args) {
  std::ifstream in(args.get("batch", ""));
  if (!in) {
    std::cerr << "cannot open batch file '" << args.get("batch", "") << "'\n";
    return 2;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  WireRequest req;
  try {
    // Malformed JSON propagates as std::invalid_argument to main's
    // "error:" handler (exit 1), exactly like the pre-wire parser.
    req = parse_batch_file(text);
  } catch (const WireParseError& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  req.deadline_ms = args.get_double("deadline-ms", 0.0);
  req.max_threads = static_cast<int>(args.get_int("threads", 0));

  RequestHooks hooks;
  if (args.get_bool("progress")) {
    ProgressOptions popts;
    popts.label = "batch";
    hooks.progress = std::make_shared<ProgressReporter>(nullptr, popts);
  }

  ReliabilityService service;  // no workers: verbs execute inline
  const WireResponse reg =
      service.execute(register_request(file, default_demand,
                                       req.max_mask_tables));
  if (!reg.ok) {
    std::cerr << reg.error_message << "\n";
    return 2;
  }
  const WireResponse resp = service.execute(req, hooks);
  if (hooks.progress) hooks.progress->finish();
  if (!resp.ok) {
    std::cerr << resp.error_message << "\n";
    return 2;
  }
  for (const std::string& line : resp.legacy_lines) std::cout << line << "\n";
  std::cout << resp.legacy_summary << "\n";
  return 0;
}

int run_replay(const NetworkFile& file, const FlowDemand& demand,
               const CliArgs& args) {
  std::ifstream in(args.get("replay", ""));
  if (!in) {
    std::cerr << "cannot open event file '" << args.get("replay", "")
              << "'\n";
    return 2;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  WireRequest req;
  req.verb = WireVerb::kReplay;
  req.lane = WireLane::kBulk;
  req.events = parse_event_stream(text);
  req.cold = args.get_bool("cold");
  req.deadline_ms = args.get_double("deadline-ms", 0.0);
  req.max_threads = static_cast<int>(args.get_int("threads", 0));

  ReliabilityService service;
  const WireResponse reg =
      service.execute(register_request(file, demand, std::nullopt));
  if (!reg.ok) {
    std::cerr << reg.error_message << "\n";
    return 2;
  }
  const WireResponse resp = service.execute(req);
  if (!resp.ok) {
    std::cerr << resp.error_message << "\n";
    return 2;
  }
  for (const std::string& line : resp.legacy_lines) std::cout << line << "\n";
  std::cout << resp.legacy_summary << "\n";
  return 0;
}

int run(const CliArgs& args) {
  if (args.positional().empty()) {
    std::cerr << "usage: reliability_cli <network-file> [--method ...] "
                 "[--d N] [--source N] [--sink N] [--samples N] "
                 "[--deadline-ms T] [--threads N] [--json] [--bounds] "
                 "[--importance] [--dot out.dot] [--batch queries.json] "
                 "[--trace out.json] [--progress]\n";
    return 2;
  }
  NetworkFile file = read_network_from_file(args.positional().front());
  FlowDemand demand = file.demand.value_or(FlowDemand{0, 0, 1});
  demand.source = static_cast<NodeId>(args.get_int("source", demand.source));
  demand.sink = static_cast<NodeId>(args.get_int("sink", demand.sink));
  demand.rate = args.get_int("d", demand.rate);
  file.net.check_demand(demand);

  if (args.has("batch")) return run_batch(file, demand, args);
  if (args.has("replay")) return run_replay(file, demand, args);

  std::cout << "network: " << file.net.summary() << "\n"
            << "demand: " << demand.rate << " sub-stream(s) "
            << demand.source << " -> " << demand.sink << "\n";

  const std::string method = args.get("method", "auto");
  Stopwatch sw;
  if (method == "montecarlo") {
    MonteCarloOptions options;
    options.samples =
        static_cast<std::uint64_t>(args.get_int("samples", 100'000));
    const MonteCarloResult mc =
        reliability_monte_carlo(file.net, demand, options);
    std::cout << "estimate = " << format_double(mc.estimate, 8) << " +- "
              << format_double(mc.ci95_halfwidth, 4) << " (95% CI, "
              << mc.samples << " samples, "
              << format_double(sw.elapsed_ms(), 4) << " ms)\n";
  } else if (method == "connectivity") {
    const auto result = reliability_connectivity(file.net, demand);
    std::cout << "reliability = " << format_double(result.reliability, 10)
              << " (frontier DP, " << result.configurations() << " states, "
              << format_double(sw.elapsed_ms(), 4) << " ms)\n";
  } else {
    SolveOptions options;
    if (!parse_method_name(method, &options.method)) {
      std::cerr << "unknown --method '" << method << "'\n";
      return 2;
    }
    if (options.method == Method::kHybridMc) {
      options.hybrid.samples_per_side =
          static_cast<std::uint64_t>(args.get_int("samples", 20'000));
    }
    options.deadline_ms = args.get_double("deadline-ms", 0.0);
    options.max_threads = static_cast<int>(args.get_int("threads", 0));
    // --progress needs a caller-owned context to hang the reporter on;
    // replicate the deadline/thread handling compute_reliability would
    // have done with its internal one.
    ExecContext progress_ctx;
    std::shared_ptr<ProgressReporter> progress;
    if (args.get_bool("progress")) {
      if (options.deadline_ms > 0.0) {
        progress_ctx.set_deadline_ms(options.deadline_ms);
      }
      progress_ctx.max_threads = options.max_threads;
      progress = std::make_shared<ProgressReporter>();
      progress_ctx.progress = progress;
      options.context = &progress_ctx;
    }
    const SolveReport report = compute_reliability(file.net, demand, options);
    if (progress) progress->finish();
    if (args.get_bool("json")) {
      std::cout << "{\"api_version\": " << STREAMREL_API_VERSION
                << ", \"reliability\": "
                << format_double(report.result.reliability, 10)
                << ", \"status\": \"" << to_string(report.result.status)
                << "\", \"method\": \"" << to_string(report.method_used)
                << "\", \"engine\": \"" << report.engine
                << "\", \"links_reduced\": " << report.links_reduced
                << ", \"elapsed_ms\": " << format_double(sw.elapsed_ms(), 4);
      if (report.bounds) {
        std::cout << ", \"bounds\": {\"lower\": "
                  << format_double(report.bounds->lower, 10)
                  << ", \"upper\": "
                  << format_double(report.bounds->upper, 10) << "}";
      }
      std::cout << ", \"telemetry\": " << report.result.telemetry.to_json()
                << "}\n";
      return 0;
    }
    std::cout << "reliability = "
              << format_double(report.result.reliability, 10) << " ("
              << to_string(report.method_used) << ", "
              << format_double(sw.elapsed_ms(), 4) << " ms)\n";
    if (report.result.status != SolveStatus::kExact) {
      std::cout << "status: " << to_string(report.result.status);
      if (report.bounds) {
        std::cout << "; bounds [" << format_double(report.bounds->lower, 8)
                  << ", " << format_double(report.bounds->upper, 8) << "]";
      }
      std::cout << "\n";
    }
    if (report.partition) {
      std::cout << "bottleneck: k = " << report.partition->stats.k
                << ", sides " << report.partition->stats.edges_s << "|"
                << report.partition->stats.edges_t << " links\n";
    }
  }

  if (args.get_bool("bounds")) {
    const ReliabilityBounds bounds = reliability_bounds(file.net, demand);
    std::cout << "bounds: [" << format_double(bounds.lower, 8) << ", "
              << format_double(bounds.upper, 8) << "] from "
              << bounds.cuts_used << " cuts / " << bounds.routings_used
              << " routings\n";
  }

  if (args.get_bool("importance")) {
    std::cout << "\nper-link importance (Birnbaum ranking):\n";
    TextTable table({"link", "endpoints", "birnbaum", "risk_reduction"});
    for (const EdgeImportance& imp :
         ranked_by_birnbaum(edge_importance(file.net, demand))) {
      const Edge& e = file.net.edge(imp.edge);
      std::string endpoints = std::to_string(e.u);
      endpoints += e.directed() ? "->" : "--";
      endpoints += std::to_string(e.v);
      table.new_row()
          .add_cell(static_cast<std::int64_t>(imp.edge))
          .add_cell(endpoints)
          .add_cell(imp.birnbaum, 5)
          .add_cell(imp.risk_reduction, 5);
    }
    table.print(std::cout);
  }

  if (args.has("dot")) {
    DotOptions dot;
    dot.source = demand.source;
    dot.sink = demand.sink;
    std::ofstream(args.get("dot", "network.dot")) << to_dot(file.net, dot);
    std::cout << "wrote " << args.get("dot", "network.dot") << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv);
    const std::string trace_path = args.get("trace", "");
    if (!trace_path.empty()) Tracer::set_enabled(true);
    int code = run(args);
    if (!trace_path.empty()) {
      Tracer::set_enabled(false);
      if (Tracer::export_chrome_json_to_file(trace_path)) {
        std::cerr << "trace: " << Tracer::event_count() << " events -> "
                  << trace_path;
        if (Tracer::dropped_count() > 0) {
          std::cerr << " (" << Tracer::dropped_count()
                    << " dropped, ring full)";
        }
        std::cerr << "\n";
      } else {
        std::cerr << "trace: cannot write '" << trace_path << "'\n";
        if (code == 0) code = 1;
      }
    }
    return code;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
