// Two-ISP deployment study: the media server lives in one ISP, the
// subscriber in another, and all traffic squeezes through k peering
// links — the paper's bottleneck class in production clothes. Sweeps the
// peering count and the peering link quality, solving each instance with
// the automatic bottleneck decomposition.

#include <iostream>

#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/stopwatch.hpp"
#include "streamrel/util/table.hpp"

int main(int argc, char** argv) {
  using namespace streamrel;
  const CliArgs args(argc, argv);
  const Capacity d = args.get_int("d", 2);
  const int peers = static_cast<int>(args.get_int("peers-per-isp", 6));

  std::cout << "Two-ISP bottleneck study: " << peers
            << " peers per ISP, stream of " << d << " sub-streams\n\n";

  TextTable table({"peering links k", "p(peering)", "R", "method",
                   "alpha", "solve_ms"});
  for (int k = 1; k <= 4; ++k) {
    for (double p : {0.05, 0.2}) {
      TwoIspParams params;
      params.peers_per_isp = peers;
      params.peering_links = k;
      params.peering_capacity = d;
      params.peering_failure = p;
      params.internal_failure = 0.03;
      params.seed = 1000 + static_cast<std::uint64_t>(k);
      const GeneratedNetwork g = make_two_isp_scenario(params);

      Stopwatch sw;
      const SolveReport report =
          compute_reliability(g.net, {g.source, g.sink, d});
      const double ms = sw.elapsed_ms();
      table.new_row()
          .add_cell(k)
          .add_cell(p, 3)
          .add_cell(report.result.reliability, 6)
          .add_cell(report.method_used == Method::kBottleneck ? "bottleneck"
                    : report.method_used == Method::kNaive    ? "naive"
                                                              : "factoring")
          .add_cell(report.partition ? format_double(
                                           report.partition->stats.alpha, 3)
                                     : std::string("-"))
          .add_cell(ms, 4);
    }
  }
  table.print(std::cout);
  std::cout << "\nTakeaways: a single peering link caps reliability at "
               "(1 - p) regardless of intra-ISP redundancy; each extra "
               "peering link helps with diminishing returns, and lowering "
               "peering failure probability beats adding links once "
               "k >= d + 1.\n";
  return 0;
}
