// Bridged campus overlay (the paper's Fig.-2 situation): two campus
// networks connected by one uplink. Shows the bridge decomposition
// (Equation 1), what happens as the bridge quality degrades, and exports
// the topology as Graphviz DOT for inspection.

#include <fstream>
#include <iostream>

#include "streamrel/streamrel.hpp"
#include "streamrel/util/cli.hpp"
#include "streamrel/util/table.hpp"

int main(int argc, char** argv) {
  using namespace streamrel;
  const CliArgs args(argc, argv);

  const GeneratedNetwork g = make_fig2_bridge_graph(0.1);
  const FlowDemand demand{g.source, g.sink, 1};
  const EdgeId bridge = 8;

  std::cout << "Bridged campus overlay: " << g.net.summary() << "\n"
            << "stream: 1 sub-stream from node " << g.source << " to node "
            << g.sink << " across bridge e" << bridge << "\n\n";

  // Equation (1): r = r(G_s) * (1 - p(e*)) * r(G_t).
  TextTable table({"p(bridge)", "R (Eq. 1)", "R (decomposition)",
                   "R (naive)"});
  GeneratedNetwork sweep = g;
  const BottleneckPartition partition =
      partition_from_sides(sweep.net, sweep.source, sweep.sink, sweep.side_s);
  for (double p : {0.01, 0.05, 0.1, 0.2, 0.4, 0.8}) {
    sweep.net.set_failure_prob(bridge, p);
    table.new_row()
        .add_cell(p, 3)
        .add_cell(reliability_bridge_formula(sweep.net, demand, bridge), 8)
        .add_cell(
            reliability_bottleneck(sweep.net, demand, partition).reliability,
            8)
        .add_cell(reliability_naive(sweep.net, demand).reliability, 8);
  }
  table.print(std::cout);
  std::cout << "\nThe three columns agree: the bridge formula is the k = 1 "
               "special case of the decomposition.\n";

  // DOT export with the bridge highlighted.
  const std::string dot_path = args.get("dot", "bridge_overlay.dot");
  DotOptions dot;
  dot.source = g.source;
  dot.sink = g.sink;
  dot.side_s = g.side_s;
  dot.highlight = {bridge};
  std::ofstream(dot_path) << to_dot(g.net, dot);
  std::cout << "\ntopology written to " << dot_path
            << " (render with: dot -Tpng " << dot_path << ")\n";
  return 0;
}
