#pragma once
// Crash-safe per-tenant/network session store: atomic snapshots plus an
// append-only write-ahead delta journal.
//
// Layout of one store directory (one per tenant/network pair):
//
//   snapshot.bin   magic "SRELSNP1" | version | CRC-framed sections:
//                  meta (journal base sequence, default demand, cache
//                  budget), network (graph/serialize.hpp compiled
//                  payload), lineage (DeltaRecord chain at checkpoint
//                  time, diagnostic only).
//   wal.bin        magic "SRELWAL1" | version | flags, then records:
//                  20-byte header { payload length u32 | sequence u64 |
//                  payload crc32 u32 | header crc32 over the first 16
//                  bytes u32 } + serialized NetworkDelta.
//
// Durability protocol:
//   * checkpoint = write snapshot to a temp file, fsync, rename over
//     snapshot.bin, fsync the directory, then reset the WAL. The rename
//     is the commit point; a crash on either side leaves a loadable
//     store (the snapshot's base sequence makes stale WAL records —
//     possible when the crash lands between rename and WAL reset —
//     skippable, not corrupting).
//   * append = one write() of header + payload to the O_APPEND WAL fd,
//     then fdatasync (when StoreOptions::fsync). Sequences are assigned
//     monotonically and survive compaction.
//   * load = parse snapshot, rebuild the builder network, then replay
//     every WAL record with sequence > base through BOTH
//     CompiledNetwork::apply_delta (so the restored snapshot chain is
//     bitwise-identical to the pre-crash one) and apply_delta_in_place
//     on the builder (so builder and snapshot stay consistent for the
//     serving layer's warm-restore constructor).
//
// Failure discrimination on load: a record header that does not fit in
// the remaining bytes, or a payload shorter than its header promises,
// is a TORN TAIL — the expected shape of a crash mid-append — and is
// truncated away (when StoreOptions::repair), yielding kOk with fewer
// records. A checksum mismatch, bad magic, non-monotone sequence, or
// semantic replay failure is CORRUPTION and yields kCorrupt: the caller
// cold-starts; the loader itself never crashes on hostile bytes.

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "streamrel/graph/compiled.hpp"
#include "streamrel/graph/delta.hpp"
#include "streamrel/graph/flow_network.hpp"

namespace streamrel {

enum class StoreStatus {
  kOk,        ///< operation succeeded (load: possibly after tail repair)
  kNotFound,  ///< no snapshot in the directory — nothing to restore
  kCorrupt,   ///< checksum/format/replay violation — cold start required
  kIoError,   ///< the OS said no (permissions, disk full, ...)
};

std::string_view to_string(StoreStatus status) noexcept;

struct StoreOptions {
  /// WAL record count past which needs_compaction() turns true.
  std::size_t compact_threshold = 64;
  /// fsync/fdatasync after every durable write. Off is for tests and
  /// benches that accept losing the tail on power failure.
  bool fsync = true;
  /// Truncate a torn WAL tail in place during load(). Off = report the
  /// torn bytes but leave the file untouched (state_check's mode).
  bool repair = true;
};

/// Everything load() reconstructs: the builder network and compiled
/// snapshot are CONSISTENT (the snapshot is the replayed successor of
/// the persisted one; the builder replays the same deltas in place), so
/// a warm session can adopt both without recompiling.
struct RestoredSession {
  FlowNetwork net;
  std::shared_ptr<const CompiledNetwork> snapshot;
  FlowDemand default_demand;
  std::optional<std::size_t> max_mask_tables;  ///< explicit cache budget
  std::vector<DeltaRecord> lineage;  ///< checkpoint-time ancestry (diagnostic)
  std::uint64_t replayed_deltas = 0;
  std::uint64_t torn_bytes = 0;  ///< WAL tail bytes dropped (or found torn)
};

struct StoreStats {
  std::uint64_t wal_records = 0;    ///< records live in the WAL
  std::uint64_t last_seq = 0;       ///< highest sequence assigned
  std::uint64_t bytes_written = 0;  ///< durable bytes this store wrote
  std::uint64_t checkpoints = 0;
  std::uint64_t appends = 0;
};

/// One tenant/network store rooted at a directory. Not thread-safe:
/// callers serialize access per store (the registry holds one store per
/// session behind the session's own lock).
class SessionStore {
 public:
  explicit SessionStore(std::filesystem::path dir, StoreOptions options = {});
  ~SessionStore();

  SessionStore(const SessionStore&) = delete;
  SessionStore& operator=(const SessionStore&) = delete;

  /// Restores the session (snapshot + WAL replay). On kCorrupt/kIoError
  /// `error` (when non-null) receives a one-line diagnosis and `out` is
  /// untouched.
  StoreStatus load(RestoredSession& out, std::string* error = nullptr);

  /// Atomically replaces the snapshot with `snapshot` (+ demand and
  /// cache budget) and resets the WAL. The snapshot's arrays are stored
  /// bitwise; its DeltaJournal lineage rides along for diagnostics.
  StoreStatus checkpoint(const CompiledNetwork& snapshot,
                         const FlowDemand& demand,
                         std::optional<std::size_t> max_mask_tables,
                         std::string* error = nullptr);

  /// Appends one delta to the WAL (the write-ahead half: call after the
  /// in-memory apply succeeded, before acknowledging the client).
  StoreStatus append(const NetworkDelta& delta, std::string* error = nullptr);

  /// True once the WAL holds more than StoreOptions::compact_threshold
  /// records — the registry folds the WAL into a fresh checkpoint then.
  bool needs_compaction() const noexcept;

  const StoreStats& stats() const noexcept { return stats_; }
  const std::filesystem::path& dir() const noexcept { return dir_; }

 private:
  StoreStatus open_wal_for_append(std::string* error);
  void close_wal() noexcept;

  std::filesystem::path dir_;
  StoreOptions options_;
  StoreStats stats_;
  int wal_fd_ = -1;
};

/// Maps tenant/network names onto store directories under one root.
/// Names are percent-encoded per path component (anything outside
/// [A-Za-z0-9._-], plus a leading '.', becomes %XX), so arbitrary wire
/// identifiers can never escape the root or collide with dotfiles.
class StateDir {
 public:
  explicit StateDir(std::filesystem::path root) : root_(std::move(root)) {}

  const std::filesystem::path& root() const noexcept { return root_; }
  std::filesystem::path store_path(std::string_view tenant,
                                   std::string_view network_id) const;

  struct Entry {
    std::string tenant;
    std::string network_id;
    std::filesystem::path path;
  };
  /// All store directories under the root (sorted by tenant, network).
  /// Directories whose names fail to decode are skipped.
  std::vector<Entry> enumerate() const;

  static std::string encode_component(std::string_view name);
  static std::optional<std::string> decode_component(std::string_view enc);

 private:
  std::filesystem::path root_;
};

}  // namespace streamrel
