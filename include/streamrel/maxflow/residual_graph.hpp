#pragma once
// Arc-based residual graph shared by all max-flow algorithms.
//
// Arcs are stored flat; each arc knows the global index of its reverse.
// `cap` always holds the CURRENT residual capacity, so pushing x units
// along arc a is `a.cap -= x; reverse(a).cap += x`.
//
// An undirected network link of capacity c becomes the mutually-reverse
// arc pair (c, c) — the standard construction whose max-flow value equals
// the undirected max-flow. A directed link becomes the pair (c, 0).

#include <cstdint>
#include <vector>

#include "streamrel/graph/flow_network.hpp"

namespace streamrel {

struct ResidualArc {
  NodeId to = kInvalidNode;
  Capacity cap = 0;              ///< current residual capacity
  std::int32_t rev = -1;         ///< global index of the reverse arc
  EdgeId edge_id = kInvalidEdge; ///< originating network edge, if any
};

class ResidualGraph {
 public:
  explicit ResidualGraph(int num_nodes);

  NodeId add_node();
  int num_nodes() const noexcept { return num_nodes_; }
  int num_arcs() const noexcept { return static_cast<int>(arcs_.size()); }

  /// Adds the arc pair u->v (cap_uv) / v->u (cap_vu). Returns the global
  /// index of the forward arc; the reverse is at index + 1.
  std::int32_t add_arc_pair(NodeId u, NodeId v, Capacity cap_uv,
                            Capacity cap_vu, EdgeId edge_id = kInvalidEdge);

  /// Removes the most recently added arc pair (used for temporary arcs).
  /// Only valid while that pair is still the newest entry of both
  /// endpoints' adjacency lists, which holds for add/remove bracketing.
  void remove_last_arc_pair();

  const std::vector<std::int32_t>& out_arcs(NodeId n) const {
    return adj_[static_cast<std::size_t>(n)];
  }
  ResidualArc& arc(std::int32_t i) { return arcs_[static_cast<std::size_t>(i)]; }
  const ResidualArc& arc(std::int32_t i) const {
    return arcs_[static_cast<std::size_t>(i)];
  }

  /// Pushes `amount` along arc i (and pulls it back on the reverse).
  void push(std::int32_t i, Capacity amount) {
    arcs_[static_cast<std::size_t>(i)].cap -= amount;
    arcs_[static_cast<std::size_t>(arcs_[static_cast<std::size_t>(i)].rev)]
        .cap += amount;
  }

  /// Builds the residual graph of `net` restricted to the edges whose bit
  /// is set in `alive`. Requires net.fits_mask().
  static ResidualGraph from_network(const FlowNetwork& net, Mask alive);

  /// Residual graph with every edge alive (any network size).
  static ResidualGraph from_network_all(const FlowNetwork& net);

  /// Nodes reachable from `from` through arcs with positive residual
  /// capacity (the source side of a min cut after a max-flow run).
  std::vector<bool> residual_reachable(NodeId from) const;

 private:
  int num_nodes_ = 0;
  std::vector<ResidualArc> arcs_;
  std::vector<std::vector<std::int32_t>> adj_;
};

}  // namespace streamrel
