#pragma once
// Max-flow facade: algorithm selection, bounded (early-exit) flow, and
// min-cut extraction. The reliability algorithms only ever need the
// YES/NO question "does this configuration admit d sub-streams?", so all
// solvers support a `limit` at which they stop augmenting.

#include <memory>
#include <string_view>
#include <vector>

#include "streamrel/maxflow/residual_graph.hpp"

namespace streamrel {

inline constexpr Capacity kUnbounded = -1;

/// Abstract solver. Implementations keep reusable scratch buffers, so one
/// instance can cheaply solve many small problems of varying size.
class MaxFlowSolver {
 public:
  virtual ~MaxFlowSolver() = default;

  /// Computes a maximum s-t flow on `g` (mutating residual capacities),
  /// stopping early once the flow value reaches `limit` (kUnbounded for a
  /// true maximum). Returns the flow value achieved.
  virtual Capacity solve(ResidualGraph& g, NodeId s, NodeId t,
                         Capacity limit = kUnbounded) = 0;

  virtual std::string_view name() const noexcept = 0;
};

enum class MaxFlowAlgorithm {
  kDinic,
  kEdmondsKarp,
  kPushRelabel,
};

/// All algorithms, for parameterized tests and benches.
inline constexpr MaxFlowAlgorithm kAllMaxFlowAlgorithms[] = {
    MaxFlowAlgorithm::kDinic,
    MaxFlowAlgorithm::kEdmondsKarp,
    MaxFlowAlgorithm::kPushRelabel,
};

std::unique_ptr<MaxFlowSolver> make_solver(MaxFlowAlgorithm algorithm);
std::string_view algorithm_name(MaxFlowAlgorithm algorithm);

/// Max-flow value on the full network.
Capacity max_flow(const FlowNetwork& net, NodeId s, NodeId t,
                  MaxFlowAlgorithm algorithm = MaxFlowAlgorithm::kDinic,
                  Capacity limit = kUnbounded);

/// Max-flow value when only `alive` edges exist. Requires net.fits_mask().
Capacity max_flow_masked(const FlowNetwork& net, Mask alive, NodeId s,
                         NodeId t,
                         MaxFlowAlgorithm algorithm = MaxFlowAlgorithm::kDinic,
                         Capacity limit = kUnbounded);

/// True iff the configuration `alive` admits the demand (bounded flow,
/// early exit at demand.rate).
bool admits_demand(const FlowNetwork& net, Mask alive, const FlowDemand& demand,
                   MaxFlowAlgorithm algorithm = MaxFlowAlgorithm::kDinic);

/// Minimum-capacity s-t cut of the full network: runs an exact max-flow,
/// then returns the network edges crossing from the residual-reachable
/// source side. For undirected edges the edge is included when it crosses
/// the partition in either orientation.
struct MinCut {
  Capacity value = 0;
  std::vector<EdgeId> edges;
  std::vector<bool> source_side;  ///< per node
};
MinCut min_cut(const FlowNetwork& net, NodeId s, NodeId t,
               MaxFlowAlgorithm algorithm = MaxFlowAlgorithm::kDinic);

/// Minimum-CARDINALITY s-t cut: same, but every edge counts 1 (capacities
/// ignored). This is the natural search for a small bottleneck link set.
MinCut min_cardinality_cut(const FlowNetwork& net, NodeId s, NodeId t);

}  // namespace streamrel
