#pragma once
// Allocation-free re-evaluation of max-flow over many failure
// configurations of one network: the residual graph (including any extra
// super nodes/arcs a caller appends) is built once, and reset() restores
// pristine capacities with the chosen edges alive. Exhaustive reliability
// sweeps call reset + solve millions of times.

#include <vector>

#include "streamrel/maxflow/residual_graph.hpp"

namespace streamrel {

class ConfigResidual {
 public:
  struct SuperArc {
    std::int32_t arc;  ///< forward arc index in the residual graph
    Capacity cap_uv;   ///< pristine forward capacity (applied by reset)
    Capacity cap_vu;   ///< pristine reverse capacity
  };

  explicit ConfigResidual(const FlowNetwork& net);

  /// Appends an extra node (e.g. a super sink); survives resets.
  NodeId add_super_node() { return g_.add_node(); }

  /// Appends an extra arc pair whose capacities are restored to
  /// (cap_uv, cap_vu) by every reset.
  void add_super_arc(NodeId u, NodeId v, Capacity cap_uv, Capacity cap_vu);

  /// Overwrites one super arc pair's pristine capacities (applied at the
  /// next reset). `index` counts add_super_arc calls in order.
  void set_super_arc(std::size_t index, Capacity cap_uv, Capacity cap_vu);

  /// Restores all capacities; network edge i exists iff bit i of `alive`.
  void reset(Mask alive);

  /// Same with an arbitrary predicate (for networks beyond 63 edges).
  void reset_with(const std::vector<bool>& alive);

  ResidualGraph& graph() noexcept { return g_; }
  const FlowNetwork& network() const noexcept { return *net_; }

  /// Forward residual-arc index of network edge `id` (the reverse arc is
  /// at `arc(index).rev`). Lets incremental engines patch capacities of
  /// individual edges without a full reset.
  std::int32_t forward_arc(EdgeId id) const {
    return fwd_[static_cast<std::size_t>(id)];
  }

  std::size_t num_super_arcs() const noexcept { return super_arcs_.size(); }

  /// Pristine record of one super arc (index counts add_super_arc calls).
  const SuperArc& super_arc(std::size_t index) const {
    return super_arcs_[index];
  }

  /// Net flow a solver left on network edge `id` since the last reset
  /// (positive: u -> v). Only meaningful while the edge was alive.
  Capacity edge_net_flow(EdgeId id) const {
    const std::int32_t fi = fwd_[static_cast<std::size_t>(id)];
    return net_->edge(id).capacity - g_.arc(fi).cap;
  }

 private:
  const FlowNetwork* net_;
  ResidualGraph g_;
  std::vector<std::int32_t> fwd_;  ///< per network edge: forward arc index
  std::vector<SuperArc> super_arcs_;
};

}  // namespace streamrel
