#pragma once
// Allocation-free re-evaluation of max-flow over many failure
// configurations of one network: the residual graph (including any extra
// super nodes/arcs a caller appends) is built once, and reset() restores
// pristine capacities with the chosen edges alive. Exhaustive reliability
// sweeps call reset + solve millions of times.
//
// The per-edge attributes the hot loops need (capacity, orientation,
// endpoints) are gathered into flat columns at construction, so reset()
// walks three contiguous arrays instead of pointer-chasing Edge records —
// and the same class serves a whole FlowNetwork, a CompiledNetwork
// snapshot, or a zero-copy NetworkView of one side component (edge ids
// are then VIEW ids, matching the side failure masks bit for bit).

#include <vector>

#include "streamrel/graph/compiled.hpp"
#include "streamrel/maxflow/residual_graph.hpp"

namespace streamrel {

class ConfigResidual {
 public:
  struct SuperArc {
    std::int32_t arc;  ///< forward arc index in the residual graph
    Capacity cap_uv;   ///< pristine forward capacity (applied by reset)
    Capacity cap_vu;   ///< pristine reverse capacity
  };

  explicit ConfigResidual(const FlowNetwork& net);
  explicit ConfigResidual(const CompiledNetwork& net);
  /// Side-component form: arcs are laid out over VIEW node ids, and every
  /// edge-indexed call (reset masks, forward_arc, edge_net_flow) uses VIEW
  /// edge ids. Produces the same residual graph as constructing from the
  /// equivalent copied subnetwork.
  explicit ConfigResidual(const NetworkView& view);

  /// Appends an extra node (e.g. a super sink); survives resets.
  NodeId add_super_node() { return g_.add_node(); }

  /// Appends an extra arc pair whose capacities are restored to
  /// (cap_uv, cap_vu) by every reset.
  void add_super_arc(NodeId u, NodeId v, Capacity cap_uv, Capacity cap_vu);

  /// Overwrites one super arc pair's pristine capacities (applied at the
  /// next reset). `index` counts add_super_arc calls in order.
  void set_super_arc(std::size_t index, Capacity cap_uv, Capacity cap_vu);

  /// Restores all capacities; network edge i exists iff bit i of `alive`.
  void reset(Mask alive);

  /// Same with an arbitrary predicate (for networks beyond 63 edges).
  void reset_with(const std::vector<bool>& alive);

  ResidualGraph& graph() noexcept { return g_; }

  // --- flat per-edge columns (gathered once at construction) ----------

  int num_edges() const noexcept { return static_cast<int>(capacity_.size()); }
  bool valid_edge(EdgeId e) const noexcept {
    return e >= 0 && e < num_edges();
  }
  bool fits_mask() const noexcept { return num_edges() <= kMaxMaskBits; }

  Capacity edge_capacity(EdgeId id) const {
    return capacity_[static_cast<std::size_t>(id)];
  }
  bool edge_directed(EdgeId id) const {
    return directed_[static_cast<std::size_t>(id)] != 0;
  }
  NodeId edge_u(EdgeId id) const { return eu_[static_cast<std::size_t>(id)]; }
  NodeId edge_v(EdgeId id) const { return ev_[static_cast<std::size_t>(id)]; }

  /// Forward residual-arc index of network edge `id` (the reverse arc is
  /// at `arc(index).rev`). Lets incremental engines patch capacities of
  /// individual edges without a full reset.
  std::int32_t forward_arc(EdgeId id) const {
    return fwd_[static_cast<std::size_t>(id)];
  }

  std::size_t num_super_arcs() const noexcept { return super_arcs_.size(); }

  /// Pristine record of one super arc (index counts add_super_arc calls).
  const SuperArc& super_arc(std::size_t index) const {
    return super_arcs_[index];
  }

  /// Net flow a solver left on network edge `id` since the last reset
  /// (positive: u -> v). Only meaningful while the edge was alive.
  Capacity edge_net_flow(EdgeId id) const {
    const std::int32_t fi = fwd_[static_cast<std::size_t>(id)];
    return capacity_[static_cast<std::size_t>(id)] - g_.arc(fi).cap;
  }

 private:
  void add_edge_arc(NodeId u, NodeId v, Capacity cap, bool directed, EdgeId id);

  ResidualGraph g_;
  std::vector<Capacity> capacity_;      ///< per edge: pristine capacity
  std::vector<NodeId> eu_;              ///< per edge: tail / endpoint
  std::vector<NodeId> ev_;              ///< per edge: head / other endpoint
  std::vector<std::uint8_t> directed_;  ///< per edge: 1 iff directed
  std::vector<std::int32_t> fwd_;       ///< per edge: forward arc index
  std::vector<SuperArc> super_arcs_;
};

}  // namespace streamrel
