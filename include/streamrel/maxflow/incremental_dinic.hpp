#pragma once
// Incremental bounded max-flow under single-edge insertions and deletions.
//
// The exhaustive reliability algorithms visit all 2^|E| failure
// configurations; visiting them in Gray-code order changes exactly one
// edge per step, and this class repairs the existing flow instead of
// recomputing from scratch:
//
//  * enabling an edge restores its residual capacities and re-augments
//    s -> t (bounded by the demand);
//  * disabling an edge that carries f units first tries to REROUTE the f
//    units from the edge's flow-tail to its flow-head through the residual
//    graph; any irreparable remainder d is cancelled end-to-end by pushing
//    d units tail -> s and t -> head along reverse-flow residual arcs
//    (both succeed by flow decomposition once rerouting is exhausted),
//    after which s -> t is re-augmented.
//
// Two operating modes:
//
//  * OWNED — the legacy constructor: the engine builds its own residual
//    graph for (net, demand) with every edge alive. Used by the naive
//    Gray-code enumeration and the availability simulator.
//  * EXTERNAL — the engine drives a caller-owned ConfigResidual, which
//    may carry super nodes/arcs (the side-array problems of §III-C). In
//    this mode the engine additionally supports super-arc capacity
//    reconfiguration (`set_super_arc`), target changes (`set_target`),
//    and bulk lazy synchronisation to an arbitrary configuration mask
//    (`sync_to`) — all without rebuilding the graph.
//
// Invariant after every mutation: flow_value() == min(target, maxflow of
// the current configuration), so admits() answers the feasibility
// question exactly. (Exception: lowering the target below the current
// flow leaves flow_value() at the old, larger value — still a valid flow,
// and admits() remains exact.)

#include <cstdint>
#include <memory>
#include <vector>

#include "streamrel/maxflow/config_residual.hpp"
#include "streamrel/maxflow/dinic.hpp"
#include "streamrel/maxflow/residual_graph.hpp"

namespace streamrel {

class IncrementalMaxFlow {
 public:
  /// OWNED mode: builds a private residual graph with every edge alive.
  /// Requires a valid demand.
  IncrementalMaxFlow(const FlowNetwork& net, FlowDemand demand);

  /// EXTERNAL mode: drives `residual` (which must outlive the engine and
  /// must not be mutated by anyone else while the engine is attached).
  /// Resets it so exactly the edges in `initial_alive` exist — super arcs
  /// get their pristine capacities — then augments `s -> t` up to
  /// `target`. Requires residual.fits_mask().
  IncrementalMaxFlow(ConfigResidual& residual, NodeId s, NodeId t,
                     Capacity target, Mask initial_alive);

  /// Toggles one edge and repairs the flow. No-op if already in `alive`.
  void set_edge_alive(EdgeId id, bool alive);

  bool edge_alive(EdgeId id) const {
    return alive_[static_cast<std::size_t>(id)];
  }

  /// Current configuration as a mask (bit i set <=> edge i alive).
  /// Requires the network to fit a mask.
  Mask alive_mask() const noexcept { return alive_mask_; }

  /// Toggles every edge on which the current state differs from `config`
  /// (one repair per differing edge). The workhorse of lazily-synced
  /// Gray-code sweeps: engines that skipped steps catch up in
  /// popcount(alive_mask() ^ config) repairs.
  void sync_to(Mask config);

  /// EXTERNAL mode only: reconfigures super arc `index` (counting
  /// add_super_arc calls) to pristine capacities (cap_uv, cap_vu) and
  /// repairs the flow. Shrinking a capacity below the flow the arc
  /// carries drains the excess through the residual graph; growing one
  /// re-augments.
  void set_super_arc(std::size_t index, Capacity cap_uv, Capacity cap_vu);

  /// Changes the bound and re-augments if the new target is larger.
  /// Lowering the target does not withdraw existing flow.
  void set_target(Capacity target);

  Capacity target() const noexcept { return target_; }

  /// Current bounded flow value: min(target, max-flow of the alive
  /// configuration) (see the class comment for the lowered-target caveat).
  Capacity flow_value() const noexcept { return flow_; }

  /// True iff the alive configuration admits the target.
  bool admits() const noexcept { return flow_ >= target_; }

  /// Admitting certificate: the mask of network edges currently carrying
  /// nonzero net flow. The present flow (hence `admits() == true`) remains
  /// valid under ANY configuration that keeps these edges alive, no matter
  /// which other edges toggle. Requires a mask-sized network.
  Mask support_mask() const;

  /// Rejecting certificate, meaningful when `admits() == false`: the mask
  /// of network edges that cross the saturated source-side cut (endpoints
  /// split by residual reachability from s, counting only the orientation
  /// with pristine capacity). The max-flow stays below target under any
  /// configuration whose alive crossing edges are a subset of the current
  /// ones — i.e. as long as no DEAD crossing edge is revived. Requires a
  /// mask-sized network.
  Mask cut_mask() const;

  /// Number of Dinic invocations so far (comparable to one from-scratch
  /// bounded max-flow solve each).
  std::uint64_t solver_calls() const noexcept { return solver_calls_; }

  /// Number of single-edge toggles actually applied (no-ops excluded).
  std::uint64_t toggles() const noexcept { return toggles_; }

 private:
  Capacity augment(NodeId from, NodeId to, Capacity limit);
  void reaugment();
  /// Applies one toggle's capacity edits (and drain, for deletions that
  /// carried flow) WITHOUT the trailing re-augmentation. Callers batching
  /// several toggles invoke this per edge and reaugment() once at the end.
  void apply_toggle(EdgeId id, bool alive);
  /// Pushes `carried` units tail -> head through the residual graph with a
  /// temporary s <-> t value channel open (the deletion repair step).
  void drain(NodeId tail, NodeId head, Capacity carried);

  std::unique_ptr<ConfigResidual> owned_;  ///< OWNED mode storage
  ConfigResidual* cfg_;                    ///< the graph being driven
  NodeId s_;
  NodeId t_;
  Capacity target_;
  Capacity flow_ = 0;
  Mask alive_mask_ = 0;
  bool mask_valid_ = false;  ///< network fits a mask (alive_mask_ usable)
  std::vector<bool> alive_;
  DinicSolver dinic_;
  std::uint64_t solver_calls_ = 0;
  std::uint64_t toggles_ = 0;
};

}  // namespace streamrel
