#pragma once
// Dinic's algorithm: BFS level graph + blocking-flow DFS. O(V^2 E) in
// general, and the workhorse here because the reliability sweeps solve
// millions of tiny instances — scratch buffers are reused across calls.

#include "streamrel/maxflow/maxflow.hpp"

namespace streamrel {

class DinicSolver final : public MaxFlowSolver {
 public:
  Capacity solve(ResidualGraph& g, NodeId s, NodeId t,
                 Capacity limit = kUnbounded) override;
  std::string_view name() const noexcept override { return "dinic"; }

 private:
  bool build_levels(const ResidualGraph& g, NodeId s, NodeId t);
  Capacity blocking_dfs(ResidualGraph& g, NodeId n, NodeId t, Capacity cap);

  std::vector<int> level_;
  std::vector<std::size_t> iter_;
  std::vector<NodeId> queue_;
};

}  // namespace streamrel
