#pragma once
// Edmonds–Karp: shortest augmenting paths by BFS. O(V E^2); kept as a
// simple, independently-verifiable reference implementation that the
// property tests compare against Dinic and push–relabel.

#include "streamrel/maxflow/maxflow.hpp"

namespace streamrel {

class EdmondsKarpSolver final : public MaxFlowSolver {
 public:
  Capacity solve(ResidualGraph& g, NodeId s, NodeId t,
                 Capacity limit = kUnbounded) override;
  std::string_view name() const noexcept override { return "edmonds-karp"; }

 private:
  std::vector<std::int32_t> parent_arc_;
  std::vector<NodeId> queue_;
};

}  // namespace streamrel
