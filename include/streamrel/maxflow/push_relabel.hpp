#pragma once
// FIFO push–relabel with the gap heuristic, plus a second phase that
// converts the max preflow into a valid max flow (returning stranded
// excess to the source) so callers can extract min cuts from the residual
// graph exactly as they do after the augmenting-path solvers.
//
// Note: push–relabel computes the full maximum; the `limit` argument only
// caps the *reported* value, it does not terminate the algorithm early.

#include "streamrel/maxflow/maxflow.hpp"

namespace streamrel {

class PushRelabelSolver final : public MaxFlowSolver {
 public:
  Capacity solve(ResidualGraph& g, NodeId s, NodeId t,
                 Capacity limit = kUnbounded) override;
  std::string_view name() const noexcept override { return "push-relabel"; }

 private:
  void decompose_excess_back_to_source(ResidualGraph& g, NodeId s, NodeId t);

  std::vector<Capacity> excess_;
  std::vector<int> height_;
  std::vector<int> height_count_;
  std::vector<NodeId> fifo_;
};

}  // namespace streamrel
