#pragma once
// Canned scenarios: the paper's illustrative graphs as concrete,
// reusable networks (tests and the paper_artifacts bench build on them)
// plus parameterized deployment-style topologies.

#include "streamrel/graph/generators.hpp"
#include "streamrel/graph/flow_network.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {

/// Paper Fig. 2: two diamond-shaped clusters joined by a single bridge
/// link; the bridge is the LAST edge (id 8, the figure's red e9).
/// Demand: one sub-stream from s (node 0) to t (node 7).
/// All links undirected, capacity 1, failure probability `p`.
GeneratedNetwork make_fig2_bridge_graph(double p = 0.1);

/// Paper Fig. 4: a 9-link graph with two bottleneck links of capacity 2
/// that admits a flow of d = 2 and whose assignment set is
/// D = {(0,2), (1,1), (2,0)} (the paper lists the same three tuples in
/// the opposite order). Edge layout:
///   ids 0-4: source-side links  (0: s-x1 cap 1, 1: s-x1 cap 1,
///            2: s-x2 cap 1, 3: s-x2 cap 1, 4: x1-x2 cap 1)
///   ids 5-6: sink-side links    (5: y1-t cap 2, 6: y2-t cap 2)
///   ids 7-8: bottleneck links   (7: x1-y1 cap 2, 8: x2-y2 cap 2)
/// Nodes: s=0, x1=1, x2=2, y1=3, y2=4, t=5. side_s marks {s, x1, x2}.
/// The three Fig.-5 failure configurations of G_s are reproduced by
/// fig5_source_side_configs().
GeneratedNetwork make_fig4_graph(double p = 0.1);

/// The source-side alive-edge masks of Fig. 5 (over the Fig.-4 graph's
/// source-side subgraph, whose edges are ids 0-4 in source-side order):
/// (a) realizes {(1,1),(0,2)}, (b) realizes {(1,1)},
/// (c) realizes {(1,1),(2,0),(0,2)}.
struct Fig5Configs {
  Mask a;
  Mask b;
  Mask c;
};
Fig5Configs fig5_source_side_configs();

/// Two ISPs (clusters) joined by k peering links; the media server and
/// the subscriber sit in different ISPs. A named wrapper over
/// clustered_bottleneck with deployment-flavoured parameters.
struct TwoIspParams {
  int peers_per_isp = 5;       ///< nodes per cluster incl. server/subscriber
  int extra_links_per_isp = 3; ///< intra-ISP links beyond a spanning tree
  int peering_links = 2;       ///< k
  Capacity link_capacity = 2;
  Capacity peering_capacity = 2;
  double internal_failure = 0.05;
  double peering_failure = 0.1;
  std::uint64_t seed = 7;
};
GeneratedNetwork make_two_isp_scenario(const TwoIspParams& params);

}  // namespace streamrel
