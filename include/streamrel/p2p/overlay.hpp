#pragma once
// P2P streaming overlay model: a media server plus peers, with delivery
// links carrying unit-rate sub-streams. The overlay owns a FlowNetwork
// whose node 0 is the server; builders (tree_builder, mesh_builder) add
// delivery structure, churn models assign failure probabilities, and the
// reliability API answers "with what probability can subscriber X still
// receive all d sub-streams?".

#include <string>
#include <vector>

#include "streamrel/graph/flow_network.hpp"

namespace streamrel {

class Overlay {
 public:
  /// Creates a server (node 0) and `num_peers` peer nodes.
  explicit Overlay(int num_peers);

  FlowNetwork& net() noexcept { return net_; }
  const FlowNetwork& net() const noexcept { return net_; }

  NodeId server() const noexcept { return 0; }
  int num_peers() const noexcept { return num_peers_; }

  /// Peer index (0-based) to node id.
  NodeId peer(int index) const;

  /// Demand: deliver `sub_streams` unit sub-streams to `subscriber`.
  FlowDemand demand_to(NodeId subscriber, Capacity sub_streams) const;

  std::string summary() const;

 private:
  int num_peers_;
  FlowNetwork net_;
};

}  // namespace streamrel
