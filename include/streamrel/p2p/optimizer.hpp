#pragma once
// Reliability-aware overlay upgrades: given a set of candidate links the
// operator COULD provision (extra peering, backup relays), greedily pick
// the ones that raise delivery reliability the most per round — the
// planning question the exact reliability oracle makes answerable.

#include <vector>

#include "streamrel/core/reliability_facade.hpp"
#include "streamrel/graph/flow_network.hpp"

namespace streamrel {

struct UpgradeCandidate {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  Capacity capacity = 1;
  double failure_prob = 0.1;
  EdgeKind kind = EdgeKind::kUndirected;
};

struct UpgradePlan {
  std::vector<UpgradeCandidate> chosen;  ///< in selection order
  double reliability_before = 0.0;
  double reliability_after = 0.0;
  /// reliability after each selection (trajectory[i] = after i+1 links).
  std::vector<double> trajectory;
};

/// Greedy selection of up to `budget` candidates. Each round evaluates
/// every remaining candidate with the exact solver and commits the best
/// strict improvement; stops early when no candidate helps.
UpgradePlan plan_overlay_upgrade(const FlowNetwork& net,
                                 const FlowDemand& demand,
                                 std::vector<UpgradeCandidate> candidates,
                                 int budget,
                                 const SolveOptions& options = {});

/// Convenience: all node pairs absent from the network as candidates
/// with uniform attributes (O(n^2); meant for small overlays).
std::vector<UpgradeCandidate> all_missing_links(const FlowNetwork& net,
                                                Capacity capacity,
                                                double failure_prob);

}  // namespace streamrel
