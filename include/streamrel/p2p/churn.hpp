#pragma once
// Peer churn to link failure probabilities.
//
// The paper takes p(e) as given; in deployed systems it comes from peer
// session statistics. With exponentially distributed session lengths
// (mean M), the probability a peer departs during a delivery window W is
// 1 - exp(-W/M); an overlay link is down when either endpoint departed or
// the transport itself failed. No relevance between c and p is assumed,
// matching the paper.

#include "streamrel/graph/delta.hpp"
#include "streamrel/graph/flow_network.hpp"

namespace streamrel {

struct ChurnModel {
  double mean_session_minutes = 60.0;  ///< average peer lifetime M
  double window_minutes = 5.0;         ///< delivery window W of interest
  double base_link_loss = 0.01;        ///< transport failure floor
};

/// P(a peer departs within the window) = 1 - exp(-W/M).
double peer_departure_prob(const ChurnModel& model);

/// Failure probability of a link between two churning peers:
/// 1 - (1 - departure)^2 * (1 - base_link_loss). The server never churns;
/// pass `endpoints_churning` = 1 for server-to-peer links.
double link_failure_prob(const ChurnModel& model, int endpoints_churning = 2);

/// The churn model's probability overwrites as a probability-only
/// NetworkDelta against `net` (left untouched): links incident to
/// `server` count one churning endpoint, the rest two. Apply with
/// apply_delta_in_place, or feed it to QuerySession::apply_delta /
/// a ChurnEvent so every structural cache layer survives the edit.
NetworkDelta churn_delta(const FlowNetwork& net, NodeId server,
                         const ChurnModel& model);

}  // namespace streamrel
