#pragma once
// Tree-structured overlay builders (paper §II related work).
//
// Single-tree systems (ESM/SCRIBE style) push the full stream down one
// spanning tree: simple, but every interior link is a single point of
// failure for its subtree. Multiple-tree systems (SplitStream style)
// split the stream into `stripes` unit-rate sub-streams, each delivered
// down its own tree with rotated interior sets, so a failed peer or link
// costs at most one stripe per subtree — the fault-tolerance the paper's
// flow-reliability model quantifies.

#include "streamrel/p2p/overlay.hpp"

namespace streamrel {

struct SingleTreeOptions {
  int fanout = 2;               ///< children per interior peer
  Capacity stream_rate = 1;     ///< link capacity (carries the whole stream)
  double link_failure_prob = 0.1;
};

/// Adds a balanced `fanout`-ary delivery tree rooted at the server: peer
/// i's parent is peer (i-1)/fanout (the server for peer 0). Links are
/// directed parent -> child. Returns the added edge ids in peer order.
std::vector<EdgeId> add_single_tree(Overlay& overlay,
                                    const SingleTreeOptions& options);

struct StripedTreesOptions {
  int stripes = 2;   ///< number of sub-streams / trees
  int fanout = 2;
  double link_failure_prob = 0.1;
};

/// Adds `stripes` unit-capacity delivery trees. Stripe j permutes the
/// peer order by a rotation of j * num_peers / stripes before applying
/// the balanced-tree rule, so peers that are interior in one stripe tend
/// to be leaves in the others (SplitStream's design goal). Returns edge
/// ids per stripe.
std::vector<std::vector<EdgeId>> add_striped_trees(
    Overlay& overlay, const StripedTreesOptions& options);

}  // namespace streamrel
