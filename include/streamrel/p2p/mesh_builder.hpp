#pragma once
// Mesh overlay builder (Bullet / PRIME / CoolStreaming style): peers hold
// randomized neighbour sets and pull sub-streams over any of their links,
// so delivery paths are not fixed — exactly the situation where path-based
// availability analysis fails and the paper's flow-based reliability is
// the right notion.

#include "streamrel/p2p/overlay.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {

struct MeshOptions {
  int degree = 3;              ///< random neighbours per peer (approximate)
  int server_links = 2;        ///< peers fed directly by the server
  Capacity link_capacity = 1;  ///< sub-streams per link
  double link_failure_prob = 0.1;
  bool directed = false;       ///< push links vs symmetric exchange
};

/// Adds a random mesh: the server feeds `server_links` random peers, and
/// each peer links to `degree` random distinct other peers (duplicate
/// pairs are skipped, so realized degree may be slightly lower).
/// Returns the added edge ids.
std::vector<EdgeId> add_random_mesh(Overlay& overlay, Xoshiro256& rng,
                                    const MeshOptions& options);

}  // namespace streamrel
