#pragma once
// StreamRel — reliability calculation of P2P streaming systems with
// bottleneck links (reproduction of Fujita, IPDPSW 2017).
//
// THE installed, versioned public surface (STREAMREL_API_VERSION in
// streamrel/version.hpp): pulls in the whole public API. Individual
// headers under include/streamrel/ can be included selectively; see
// README.md for the architecture map. Headers living under src/ are
// implementation details and may change without an API-version bump.

#include "streamrel/version.hpp"                  // IWYU pragma: export

#include "streamrel/api/wire.hpp"                 // IWYU pragma: export
#include "streamrel/core/accumulate.hpp"          // IWYU pragma: export
#include "streamrel/core/batch_evaluator.hpp"     // IWYU pragma: export
#include "streamrel/core/assignments.hpp"         // IWYU pragma: export
#include "streamrel/core/bit_slabs.hpp"           // IWYU pragma: export
#include "streamrel/core/bottleneck_algorithm.hpp"// IWYU pragma: export
#include "streamrel/core/chain.hpp"               // IWYU pragma: export
#include "streamrel/core/engine.hpp"              // IWYU pragma: export
#include "streamrel/core/hybrid_mc.hpp"           // IWYU pragma: export
#include "streamrel/core/importance.hpp"          // IWYU pragma: export
#include "streamrel/core/polynomial_decomposition.hpp" // IWYU pragma: export
#include "streamrel/core/query_session.hpp"       // IWYU pragma: export
#include "streamrel/core/shared_risk.hpp"         // IWYU pragma: export
#include "streamrel/core/reliability_facade.hpp"  // IWYU pragma: export
#include "streamrel/core/side_array.hpp"          // IWYU pragma: export
#include "streamrel/cuts/bottleneck.hpp"          // IWYU pragma: export
#include "streamrel/cuts/chain_search.hpp"        // IWYU pragma: export
#include "streamrel/cuts/cut_enumeration.hpp"     // IWYU pragma: export
#include "streamrel/cuts/partition_search.hpp"    // IWYU pragma: export
#include "streamrel/graph/compiled.hpp"           // IWYU pragma: export
#include "streamrel/graph/delta.hpp"              // IWYU pragma: export
#include "streamrel/graph/dot_export.hpp"         // IWYU pragma: export
#include "streamrel/graph/flow_network.hpp"       // IWYU pragma: export
#include "streamrel/graph/generators.hpp"         // IWYU pragma: export
#include "streamrel/graph/graph_algos.hpp"        // IWYU pragma: export
#include "streamrel/graph/io.hpp"                 // IWYU pragma: export
#include "streamrel/graph/serialize.hpp"          // IWYU pragma: export
#include "streamrel/graph/subgraph.hpp"           // IWYU pragma: export
#include "streamrel/maxflow/edmonds_karp.hpp"     // IWYU pragma: export
#include "streamrel/maxflow/incremental_dinic.hpp"// IWYU pragma: export
#include "streamrel/maxflow/maxflow.hpp"          // IWYU pragma: export
#include "streamrel/maxflow/push_relabel.hpp"     // IWYU pragma: export
#include "streamrel/obs/flight_recorder.hpp"      // IWYU pragma: export
#include "streamrel/obs/metrics.hpp"              // IWYU pragma: export
#include "streamrel/obs/request_log.hpp"          // IWYU pragma: export
#include "streamrel/persist/store.hpp"            // IWYU pragma: export
#include "streamrel/p2p/churn.hpp"                // IWYU pragma: export
#include "streamrel/p2p/mesh_builder.hpp"         // IWYU pragma: export
#include "streamrel/p2p/optimizer.hpp"            // IWYU pragma: export
#include "streamrel/p2p/overlay.hpp"              // IWYU pragma: export
#include "streamrel/p2p/scenario.hpp"             // IWYU pragma: export
#include "streamrel/p2p/tree_builder.hpp"         // IWYU pragma: export
#include "streamrel/reliability/bounds.hpp"       // IWYU pragma: export
#include "streamrel/reliability/factoring.hpp"    // IWYU pragma: export
#include "streamrel/reliability/frontier.hpp"     // IWYU pragma: export
#include "streamrel/reliability/monte_carlo.hpp"  // IWYU pragma: export
#include "streamrel/reliability/multicast.hpp"    // IWYU pragma: export
#include "streamrel/reliability/naive.hpp"        // IWYU pragma: export
#include "streamrel/reliability/node_failures.hpp"// IWYU pragma: export
#include "streamrel/reliability/polynomial.hpp"   // IWYU pragma: export
#include "streamrel/reliability/reductions.hpp"   // IWYU pragma: export
#include "streamrel/reliability/throughput.hpp"   // IWYU pragma: export
#include "streamrel/server/scheduler.hpp"         // IWYU pragma: export
#include "streamrel/server/service.hpp"           // IWYU pragma: export
#include "streamrel/server/session_registry.hpp"  // IWYU pragma: export
#include "streamrel/server/transport.hpp"         // IWYU pragma: export
#include "streamrel/sim/availability_sim.hpp"     // IWYU pragma: export
#include "streamrel/sim/churn_replay.hpp"         // IWYU pragma: export
#include "streamrel/sim/event_stream.hpp"         // IWYU pragma: export
#include "streamrel/sim/link_dynamics.hpp"        // IWYU pragma: export
#include "streamrel/util/binio.hpp"               // IWYU pragma: export
#include "streamrel/util/exec_context.hpp"        // IWYU pragma: export
#include "streamrel/util/json.hpp"                // IWYU pragma: export
#include "streamrel/util/telemetry.hpp"           // IWYU pragma: export
#include "streamrel/util/trace.hpp"               // IWYU pragma: export
