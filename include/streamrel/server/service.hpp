#pragma once
// ReliabilityService — the verb layer of the daemon: parses wire
// requests, routes them to TenantSessions through the two-lane
// scheduler, and renders wire responses. Transport-agnostic: the TCP
// server, the --stdio mode and the in-process tests all drive the same
// handle_line()/execute() pair.
//
// Shedding semantics (the no-throw SolveStatus contract on the wire):
// when a compute verb's effective deadline (request "deadline_ms"
// tightened by the lane budget) is already blown by the estimated queue
// wait — or has expired by the time a worker picks the job up — the
// solve runs with a zero deadline, so the machinery returns a
// kDeadlineExpired result with reliability bounds attached. The client
// sees "ok": true with "status": "deadline_expired", "bounds" and
// "shed": true — never a disconnect, never a throw. "ok": false is
// reserved for protocol/usage errors (parse_error, bad_request,
// unsupported_version, unknown_verb, unknown_network, overloaded,
// internal); "overloaded" appears only when a lane queue is FULL and
// the job cannot even be admitted.

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "streamrel/api/wire.hpp"
#include "streamrel/obs/flight_recorder.hpp"
#include "streamrel/obs/metrics.hpp"
#include "streamrel/obs/request_log.hpp"
#include "streamrel/server/scheduler.hpp"
#include "streamrel/server/session_registry.hpp"

namespace streamrel {

struct ServiceOptions {
  QueryCacheOptions default_cache;
  /// Global memory cap: total mask-table entries across all sessions.
  std::size_t global_mask_tables = 256;
  /// Lane deadline budgets (0 = none): every request on the lane runs
  /// under min(request deadline, lane budget).
  double interactive_budget_ms = 0.0;
  double bulk_budget_ms = 0.0;
  SchedulerOptions scheduler;
  /// Start the worker pool. Off for in-process clients (the CLI executes
  /// verbs inline); the daemon turns it on.
  bool start_workers = false;
  /// Flight-recorder ring size (last N finished requests, always on;
  /// clamped to >= 1).
  std::size_t flight_capacity = FlightRecorder::kDefaultCapacity;
  /// Structured JSON request log: one line per finished request
  /// (--log-json in the daemon). Null disables with a single branch.
  std::ostream* request_log = nullptr;
  /// Durable session state root (--state-dir). Empty = in-memory only.
  /// When set, the constructor restores every loadable store (corrupt
  /// ones cold-start with a warning in boot_restore()), registrations
  /// and the shutdown verb checkpoint, and apply_delta journals.
  std::string state_dir;
  /// WAL records per session before an inline compaction checkpoint.
  std::size_t wal_compact_threshold = 64;
  /// fsync snapshots and fdatasync journal appends. Off trades crash
  /// durability for latency (tests/benches).
  bool state_fsync = true;
};

/// Per-request sinks, so concurrent tenants never interleave output:
/// progress goes to the request's own reporter (or nowhere), and trace
/// spans are captured per request when it asks for them.
struct RequestHooks {
  std::shared_ptr<ProgressReporter> progress;
};

class ReliabilityService {
 public:
  explicit ReliabilityService(const ServiceOptions& options = {});
  ~ReliabilityService();
  ReliabilityService(const ReliabilityService&) = delete;
  ReliabilityService& operator=(const ReliabilityService&) = delete;

  /// Executes one parsed request synchronously on the calling thread.
  WireResponse execute(const WireRequest& request,
                       const RequestHooks& hooks = {}) {
    return execute_impl(request, hooks, /*force_expired=*/false);
  }

  /// Parses and routes one request line. Control verbs run inline;
  /// compute verbs (solve/batch/replay) go through the scheduler when
  /// workers are running. `done` is called exactly once — possibly on a
  /// worker thread, possibly before this returns.
  void handle_line(std::string_view line,
                   std::function<void(WireResponse)> done,
                   const RequestHooks& hooks = {});

  /// Waits for all scheduled work to finish.
  void drain();

  bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_relaxed);
  }

  /// The stats verb's payload (also the daemon's periodic metrics line).
  std::string stats_json() const;

  /// Prometheus text-format exposition of every registered series; the
  /// `metrics` verb's text, the TCP transport's `GET /metrics` body and
  /// the daemon's --metrics-out payload. Refreshes the scrape-time
  /// gauges (scheduler lanes, session caches) first; never blocks
  /// request recording (snapshot-on-scrape under a shared lock).
  std::string metrics_text();

  /// The live registry, for instrumentation by embedders and tests.
  MetricsRegistry& metrics() noexcept { return metrics_; }
  const FlightRecorder& flight_recorder() const noexcept { return flight_; }

  std::uint64_t shed_count() const noexcept {
    return shed_total_.load(std::memory_order_relaxed);
  }

  /// What the constructor's restore-on-boot pass found under state_dir
  /// (empty report when persistence is off). The daemon logs the
  /// warnings; corrupt stores cold-start, they never crash the boot.
  const BootRestoreReport& boot_restore() const noexcept {
    return boot_restore_;
  }

  /// Builds the structured `overloaded` rejection for a request line
  /// refused by connection-level backpressure (transport in-flight cap),
  /// counting it per lane (streamrel_backpressure_rejects_total). The
  /// line is parsed only to echo its id/verb/lane; a line that does not
  /// even parse gets its parse error instead.
  WireResponse reject_overloaded(std::string_view line);

 private:
  WireResponse execute_impl(const WireRequest& request,
                            const RequestHooks& hooks, bool force_expired,
                            double queue_us = -1.0);
  WireResponse do_register(const WireRequest& request);
  WireResponse do_solve(const WireRequest& request, const RequestHooks& hooks,
                        bool force_expired, RequestRecord* record);
  WireResponse do_batch(const WireRequest& request, const RequestHooks& hooks,
                        bool force_expired);
  WireResponse do_replay(const WireRequest& request, const RequestHooks& hooks,
                         bool force_expired);
  WireResponse do_apply_delta(const WireRequest& request);
  WireResponse do_metrics(const WireRequest& request);
  WireResponse do_dump(const WireRequest& request);
  WireResponse do_persist(const WireRequest& request);
  WireResponse do_restore(const WireRequest& request);
  std::shared_ptr<TenantSession> find_session(const WireRequest& request,
                                              WireResponse* error) const;
  double lane_budget_ms(WireLane lane) const noexcept;

  /// Folds one solve's telemetry counters into engine-labeled series
  /// (the telemetry -> metrics bridge: no double bookkeeping in the
  /// engines themselves).
  void bridge_solve_telemetry(std::string_view engine,
                              const Telemetry& telemetry);
  /// Counter/histogram updates for one finished request.
  void note_request(const RequestRecord& record, double queue_us);
  /// Sets the scrape-time gauges (lanes, sessions, caches) from the
  /// scheduler and registry snapshots.
  void refresh_scrape_gauges();
  std::atomic<std::uint64_t>& lane_shed(WireLane lane) noexcept {
    return shed_lane_[static_cast<int>(lane)];
  }

  ServiceOptions options_;
  SessionRegistry registry_;
  BootRestoreReport boot_restore_;
  std::unique_ptr<RequestScheduler> scheduler_;  ///< null without workers
  MetricsRegistry metrics_;
  FlightRecorder flight_;
  RequestLogger logger_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> requests_total_{0};
  std::atomic<std::uint64_t> errors_total_{0};
  std::atomic<std::uint64_t> shed_total_{0};
  std::atomic<std::uint64_t> shed_lane_[2] = {};
  std::atomic<std::uint64_t> request_seq_{0};
};

}  // namespace streamrel
