#pragma once
// Transport layer of the reliability daemon: newline-delimited JSON
// over a stream. Two transports share the framing:
//
//   * serve_stream() — any istream/ostream pair (the CLI's --stdio
//     mode, the in-process tests);
//   * TcpServer — a POSIX TCP listener, one reader thread per
//     connection, responses written under a per-connection mutex (the
//     scheduler may complete them out of order; request ids
//     disambiguate).
//
// Graceful shutdown: install_signal_shutdown_pipe() routes
// SIGINT/SIGTERM into a self-pipe whose read end TcpServer polls next
// to the listening socket; on either signal (or a "shutdown" verb) the
// server stops accepting, closes read sides, drains scheduled work and
// joins its threads.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>

#include "streamrel/server/service.hpp"

namespace streamrel {

struct StreamServeResult {
  std::uint64_t lines = 0;      ///< non-empty request lines consumed
  std::uint64_t responses = 0;  ///< response lines written
  bool shutdown = false;        ///< a shutdown verb ended the stream
  /// Lines answered `overloaded` by the in-flight cap without entering
  /// the service (connection-level backpressure).
  std::uint64_t backpressure_rejects = 0;
};

/// Connection-level backpressure: both transports cap the number of
/// requests a single client may have in flight (submitted, response not
/// yet written). A line past the cap never enters the service — it is
/// answered immediately with a structured `overloaded` error carrying
/// the echoed id/verb, counted per lane in
/// streamrel_backpressure_rejects_total. This bounds the memory one
/// pipelining client can pin in the scheduler queues; it is independent
/// of (and cheaper than) the lane-queue admission limit.
struct StreamServeOptions {
  std::size_t max_inflight = 64;  ///< 0 = uncapped
};

/// Serves `in` line by line until EOF or a shutdown verb, writing one
/// response line per request to `out` (order of completion, not of
/// arrival). Drains scheduled work before returning.
StreamServeResult serve_stream(ReliabilityService& service, std::istream& in,
                               std::ostream& out,
                               const StreamServeOptions& options = {});

struct TcpServerOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; see TcpServer::port()
  /// Optional fd that becomes readable to request shutdown (see
  /// install_signal_shutdown_pipe); -1 = none.
  int shutdown_fd = -1;
  /// Per-connection in-flight request cap (see StreamServeOptions).
  std::size_t max_inflight = 64;  ///< 0 = uncapped
};

class TcpServer {
 public:
  /// Binds and listens; throws std::runtime_error on socket failure.
  TcpServer(ReliabilityService& service, const TcpServerOptions& options);
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The bound port (resolves option port 0).
  std::uint16_t port() const noexcept;

  /// Accept loop; returns after stop() or a shutdown signal/verb.
  void run();

  /// Stops accepting, closes connection read sides, joins and drains.
  /// Safe to call from another thread; idempotent.
  void stop();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Installs SIGINT/SIGTERM handlers that write one byte to a self-pipe;
/// returns the pipe's read fd (pass as TcpServerOptions::shutdown_fd).
/// Returns -1 on failure. Install once per process.
int install_signal_shutdown_pipe();

/// Same self-pipe pattern for SIGUSR1 (the flight-recorder dump
/// trigger): returns the read fd a watcher thread blocks on, one byte
/// per signal. SA_RESTART, so serving syscalls are never interrupted.
/// Returns -1 on failure. Install once per process.
int install_sigusr1_pipe();

}  // namespace streamrel
