#pragma once
// RequestScheduler — the daemon's admission and worker layer: a fixed
// thread pool fed by two lanes (interactive what-ifs vs. bulk sweeps)
// with deadline-sorted dispatch and queue-time estimation.
//
// The design follows the deadline-driven piece picker of streaming
// BitTorrent clients: work is ordered by absolute deadline (earliest
// first, no-deadline work last, FIFO within ties), the bulk lane is
// capped to a share of the pool so sweeps cannot starve point queries,
// and an EWMA of per-lane service time turns queue depth into an
// expected wait — the signal the service layer uses to shed requests
// whose deadline the queue alone would already blow.
//
// Shedding POLICY lives in the service layer (server/service.hpp); the
// scheduler only refuses work when a lane's queue is full (submit()
// returns false) and reports its estimates.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "streamrel/api/wire.hpp"
#include "streamrel/util/telemetry.hpp"

namespace streamrel {

struct SchedulerOptions {
  int workers = 4;     ///< pool size (clamped to >= 1)
  /// Bulk-lane cap divisor: at most max(1, workers / bulk_share) workers
  /// run bulk jobs at once.
  int bulk_share = 2;
  /// Per-lane queue bound; submit() refuses beyond it (back-pressure).
  std::size_t max_queue = 256;
  /// Smoothing factor of the per-lane service-time EWMA.
  double ewma_alpha = 0.2;
};

/// Point-in-time per-lane statistics for the stats verb and the bench.
struct LaneSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;   ///< refused at submit (queue full)
  std::size_t queued = 0;       ///< waiting now
  std::size_t running = 0;      ///< executing now
  double ewma_service_ms = 0.0;
  /// estimate_queue_ms at snapshot time: the expected wait the service
  /// layer sheds against (queued * ewma / effective workers).
  double queue_estimate_ms = 0.0;
  double queue_p50_ms = 0.0;    ///< time-in-queue percentiles
  double queue_p95_ms = 0.0;
  double queue_p99_ms = 0.0;
  double service_p50_ms = 0.0;  ///< execution-time percentiles
  double service_p95_ms = 0.0;
  double service_p99_ms = 0.0;
};

class RequestScheduler {
 public:
  using Job = std::function<void()>;

  explicit RequestScheduler(const SchedulerOptions& options = {});
  ~RequestScheduler();
  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  /// Enqueues a job; deadline_ms is the request's effective budget from
  /// now (0 = none, sorts last). Returns false — and runs nothing — when
  /// the lane's queue is full.
  bool submit(WireLane lane, double deadline_ms, Job job);

  /// Expected queue wait for NEW work on `lane` right now:
  /// queued * ewma_service / effective_workers. Zero until the first
  /// completion primes the EWMA.
  double estimate_queue_ms(WireLane lane) const;

  LaneSnapshot lane_snapshot(WireLane lane) const;

  /// Blocks until both queues are empty and no job is running.
  void drain();

  /// drain(), then stops and joins the workers. Idempotent; the
  /// destructor calls it.
  void stop();

  int workers() const noexcept { return workers_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    bool has_deadline = false;
    Clock::time_point deadline{};
    std::uint64_t seq = 0;
    Clock::time_point enqueued{};
    Job job;
  };

  struct Lane {
    std::vector<Entry> queue;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::size_t running = 0;
    double ewma_service_ms = 0.0;
    bool ewma_primed = false;
    LatencyHistogram queue_hist;
    LatencyHistogram service_hist;
  };

  void worker_loop();
  /// Picks the earliest-deadline entry among eligible lanes; returns
  /// false when nothing is runnable. Caller holds the lock.
  bool pick(Entry* out, WireLane* out_lane);
  std::size_t bulk_cap() const noexcept;
  Lane& lane_of(WireLane lane) { return lanes_[static_cast<int>(lane)]; }
  const Lane& lane_of(WireLane lane) const {
    return lanes_[static_cast<int>(lane)];
  }

  const int workers_;
  const int bulk_share_;
  const std::size_t max_queue_;
  const double ewma_alpha_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers wait here
  std::condition_variable drain_cv_;  ///< drain() waits here
  Lane lanes_[2];
  std::uint64_t next_seq_ = 0;
  std::size_t active_ = 0;  ///< jobs executing (both lanes)
  bool stopping_ = false;

  std::vector<std::thread> threads_;
};

}  // namespace streamrel
