#pragma once
// TenantSession + SessionRegistry — the daemon's tenancy layer: one
// QuerySession per registered (tenant, network_id) pair, hardened for
// concurrent use, with per-session mask-table budgets rebalanced under
// one global memory cap.
//
// QuerySession itself is single-threaded by design (the caches are
// mutable on the read path). TenantSession wraps one behind a
// shared_mutex and re-implements the solve() orchestration with split
// locking (it is a friend of QuerySession): cache preparation, fallback
// solves and delta application — everything that can mutate the network
// or the caches — run under the writer lock, while the expensive warm
// path (finish_prepared: gather probabilities + accumulate, which only
// READS the cached artifacts) runs under the reader lock, so a tenant's
// warm what-ifs proceed in parallel. Answers stay bitwise-identical to
// a plain QuerySession: the orchestration is the same code path in the
// same order, only the locking is new.

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "streamrel/core/batch_evaluator.hpp"
#include "streamrel/core/query_session.hpp"

namespace streamrel {

class TenantSession {
 public:
  TenantSession(FlowNetwork net, FlowDemand default_demand,
                const QueryCacheOptions& cache_options, bool explicit_budget);

  /// Same contract and bitwise-same answer as QuerySession::solve.
  /// `options.context` must be set (the service owns the per-request
  /// ExecContext); the delta hint handling matches QuerySession.
  SolveReport solve(const FlowDemand& demand, const SolveOptions& options,
                    std::span<const ProbOverride> overrides);

  /// Whole-batch evaluation under the writer lock (BatchEvaluator may
  /// touch every cache layer and run its own parallel accumulate).
  BatchReport batch(std::span<const WhatIfQuery> queries,
                    const BatchOptions& options);

  DeltaOutcome apply_delta(const NetworkDelta& delta);

  /// Copy of the current network, for read-only replay pipelines.
  FlowNetwork network_copy() const;
  FlowDemand default_demand() const;

  void set_cache_budget(std::size_t max_mask_tables);
  /// True when registration named an explicit max_mask_tables (the
  /// registry only rebalances implicit budgets).
  bool explicit_budget() const noexcept { return explicit_budget_; }

  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t cache_evictions = 0;
    /// Per-entry invalidation outcomes (cut-scoped delta application).
    std::uint64_t invalidations_full = 0;
    std::uint64_t invalidations_partial = 0;
    std::uint64_t invalidations_survived = 0;
    std::size_t mask_tables = 0;
    std::size_t mask_bytes = 0;  ///< resident slab bytes of cached tables
    std::size_t budget = 0;
  };
  Stats stats() const;

 private:
  mutable std::shared_mutex mu_;
  QuerySession session_;
  FlowDemand default_demand_;
  const bool explicit_budget_;
};

/// Registration outcome, echoed on the wire.
struct RegisterOutcome {
  bool replaced = false;        ///< an existing session was dropped
  std::size_t cache_budget = 0; ///< mask-table budget actually granted
  int nodes = 0;
  int edges = 0;
};

class SessionRegistry {
 public:
  /// `global_mask_tables` caps the SUM of all sessions' mask-table
  /// budgets: explicit per-session requests are clamped to it, implicit
  /// sessions split it evenly (>= 1 each).
  explicit SessionRegistry(QueryCacheOptions default_cache,
                           std::size_t global_mask_tables);

  /// Binds a network (replacing any session under the same key) and
  /// rebalances implicit budgets.
  RegisterOutcome register_network(const std::string& tenant,
                                   const std::string& network_id,
                                   FlowNetwork net, FlowDemand default_demand,
                                   std::optional<std::size_t> max_mask_tables);

  /// nullptr when the key was never registered.
  std::shared_ptr<TenantSession> find(const std::string& tenant,
                                      const std::string& network_id) const;

  std::size_t size() const;

  /// (tenant "/" network_id, session) pairs for the stats verb.
  std::vector<std::pair<std::string, std::shared_ptr<TenantSession>>>
  snapshot() const;

 private:
  void rebalance_locked();

  const QueryCacheOptions default_cache_;
  const std::size_t global_mask_tables_;
  mutable std::mutex mu_;
  std::map<std::pair<std::string, std::string>,
           std::shared_ptr<TenantSession>>
      sessions_;
  std::size_t implicit_count_ = 0;
};

}  // namespace streamrel
