#pragma once
// TenantSession + SessionRegistry — the daemon's tenancy layer: one
// QuerySession per registered (tenant, network_id) pair, hardened for
// concurrent use, with per-session mask-table budgets rebalanced under
// one global memory cap.
//
// QuerySession itself is single-threaded by design (the caches are
// mutable on the read path). TenantSession wraps one behind a
// shared_mutex and re-implements the solve() orchestration with split
// locking (it is a friend of QuerySession): cache preparation, fallback
// solves and delta application — everything that can mutate the network
// or the caches — run under the writer lock, while the expensive warm
// path (finish_prepared: gather probabilities + accumulate, which only
// READS the cached artifacts) runs under the reader lock, so a tenant's
// warm what-ifs proceed in parallel. Answers stay bitwise-identical to
// a plain QuerySession: the orchestration is the same code path in the
// same order, only the locking is new.
//
// Durability (optional, RegistryPersistOptions::state_dir): each session
// owns a persist::SessionStore. The store is only ever touched under the
// session's WRITER lock, which pins the critical ordering property for
// free: apply_delta journals the delta in the same critical section that
// applied it, so the WAL replays deltas in exactly the order the live
// session saw them — restored state is bitwise-identical to pre-crash
// state. Registration, the persist verb, WAL compaction and shutdown all
// checkpoint through the same path (atomic snapshot + journal reset).
// Journal failures degrade durability, never availability: the in-memory
// apply already succeeded, so the request is answered and the failure is
// counted (journal_errors).

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "streamrel/core/batch_evaluator.hpp"
#include "streamrel/core/query_session.hpp"
#include "streamrel/persist/store.hpp"

namespace streamrel {

class TenantSession {
 public:
  TenantSession(FlowNetwork net, FlowDemand default_demand,
                const QueryCacheOptions& cache_options, bool explicit_budget);

  /// Warm restore: adopts the persist layer's replay product — builder
  /// network AND compiled snapshot, already consistent — so the first
  /// query after a restart runs against the exact restored arrays
  /// without recompiling.
  TenantSession(RestoredSession restored,
                const QueryCacheOptions& cache_options, bool explicit_budget);

  /// Hands this session its durable store (nullptr detaches). The store
  /// is used only under the session's writer lock from here on.
  void attach_store(std::unique_ptr<SessionStore> store);
  bool durable() const;

  /// Checkpoint: atomic snapshot write + journal reset (see
  /// persist/store.hpp for the durability protocol).
  StoreStatus checkpoint_now(std::string* error = nullptr);

  /// Same contract and bitwise-same answer as QuerySession::solve.
  /// `options.context` must be set (the service owns the per-request
  /// ExecContext); the delta hint handling matches QuerySession.
  SolveReport solve(const FlowDemand& demand, const SolveOptions& options,
                    std::span<const ProbOverride> overrides);

  /// Whole-batch evaluation under the writer lock (BatchEvaluator may
  /// touch every cache layer and run its own parallel accumulate).
  BatchReport batch(std::span<const WhatIfQuery> queries,
                    const BatchOptions& options);

  /// Applies the delta and, when durable, journals it to the WAL in the
  /// SAME writer critical section (write-ahead of the acknowledgement,
  /// ordered exactly as applied). A full journal triggers compaction —
  /// an inline checkpoint — right there.
  DeltaOutcome apply_delta(const NetworkDelta& delta);

  /// Copy of the current network, for read-only replay pipelines.
  FlowNetwork network_copy() const;
  FlowDemand default_demand() const;

  void set_cache_budget(std::size_t max_mask_tables);
  /// True when registration named an explicit max_mask_tables (the
  /// registry only rebalances implicit budgets).
  bool explicit_budget() const noexcept { return explicit_budget_; }

  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t cache_evictions = 0;
    /// Per-entry invalidation outcomes (cut-scoped delta application).
    std::uint64_t invalidations_full = 0;
    std::uint64_t invalidations_partial = 0;
    std::uint64_t invalidations_survived = 0;
    std::size_t mask_tables = 0;
    std::size_t mask_bytes = 0;  ///< resident slab bytes of cached tables
    std::size_t budget = 0;
    // --- durability ---------------------------------------------------
    bool durable = false;     ///< a store is attached
    bool restored = false;    ///< this session was warm-restored from disk
    std::uint64_t wal_records = 0;     ///< current journal depth
    std::uint64_t checkpoints = 0;
    std::uint64_t wal_appends = 0;
    std::uint64_t state_bytes_written = 0;
    std::uint64_t journal_errors = 0;
    std::uint64_t replayed_deltas = 0;  ///< WAL records replayed at restore
  };
  Stats stats() const;

 private:
  /// Checkpoint body; caller holds the writer lock.
  StoreStatus checkpoint_locked(std::string* error);

  mutable std::shared_mutex mu_;
  QuerySession session_;
  FlowDemand default_demand_;
  const bool explicit_budget_;
  std::unique_ptr<SessionStore> store_;
  std::uint64_t journal_errors_ = 0;
  std::uint64_t replayed_deltas_ = 0;
  bool restored_ = false;
};

/// Registration outcome, echoed on the wire.
struct RegisterOutcome {
  bool replaced = false;        ///< an existing session was dropped
  std::size_t cache_budget = 0; ///< mask-table budget actually granted
  int nodes = 0;
  int edges = 0;
  bool persisted = false;       ///< a durable checkpoint was written
  std::string persist_error;    ///< non-empty: checkpoint failed (degraded)
};

/// Durability configuration for the registry. An empty state_dir turns
/// persistence off entirely (the PR-8 in-memory behavior).
struct RegistryPersistOptions {
  std::string state_dir;
  std::size_t wal_compact_threshold = 64;
  bool fsync = true;
};

/// restore_all() outcome: what came back, what was refused as corrupt.
struct BootRestoreReport {
  std::size_t restored = 0;
  std::size_t corrupt = 0;
  std::uint64_t replayed_deltas = 0;
  std::vector<std::string> warnings;  ///< one line per refused store
};

/// Single-session restore outcome (the `restore` verb).
struct RestoreOutcome {
  StoreStatus status = StoreStatus::kNotFound;
  std::string error;
  int nodes = 0;
  int edges = 0;
  std::uint64_t replayed_deltas = 0;
  std::size_t cache_budget = 0;
};

/// Aggregated durability counters for stats/metrics.
struct PersistTotals {
  bool enabled = false;
  std::uint64_t checkpoints = 0;
  std::uint64_t wal_appends = 0;
  std::uint64_t wal_records = 0;  ///< current depth summed over sessions
  std::uint64_t bytes_written = 0;
  std::uint64_t journal_errors = 0;
  std::uint64_t restores = 0;         ///< sessions restored (boot + verb)
  std::uint64_t corrupt = 0;          ///< stores refused as corrupt
  std::uint64_t replayed_deltas = 0;  ///< WAL records replayed on restores
};

class SessionRegistry {
 public:
  /// `global_mask_tables` caps the SUM of all sessions' mask-table
  /// budgets: explicit per-session requests are clamped to it, implicit
  /// sessions split it evenly (>= 1 each).
  explicit SessionRegistry(QueryCacheOptions default_cache,
                           std::size_t global_mask_tables,
                           RegistryPersistOptions persist = {});

  bool persistent() const noexcept { return !persist_.state_dir.empty(); }

  /// Binds a network (replacing any session under the same key) and
  /// rebalances implicit budgets. Under persistence the new session is
  /// checkpointed before this returns (RegisterOutcome::persisted).
  RegisterOutcome register_network(const std::string& tenant,
                                   const std::string& network_id,
                                   FlowNetwork net, FlowDemand default_demand,
                                   std::optional<std::size_t> max_mask_tables);

  /// Restores every loadable store under state_dir (boot path). Corrupt
  /// stores are skipped with a warning — a cold start, never a crash.
  BootRestoreReport restore_all();

  /// Reloads one session from its store, replacing any live session
  /// under the key (the `restore` verb). kNotFound when nothing durable
  /// exists for the key; kCorrupt details in RestoreOutcome::error.
  RestoreOutcome restore_session(const std::string& tenant,
                                 const std::string& network_id);

  /// Checkpoints one live session (the `persist` verb). kNotFound when
  /// the key has no live session or persistence is off.
  StoreStatus persist_session(const std::string& tenant,
                              const std::string& network_id,
                              std::string* error = nullptr);

  /// Checkpoints every live session (shutdown path); returns how many
  /// checkpoints failed.
  std::size_t checkpoint_all();

  PersistTotals persist_totals() const;

  /// nullptr when the key was never registered.
  std::shared_ptr<TenantSession> find(const std::string& tenant,
                                      const std::string& network_id) const;

  std::size_t size() const;

  /// (tenant "/" network_id, session) pairs for the stats verb.
  std::vector<std::pair<std::string, std::shared_ptr<TenantSession>>>
  snapshot() const;

 private:
  void rebalance_locked();
  StoreOptions store_options() const;
  std::unique_ptr<SessionStore> make_store(const std::string& tenant,
                                           const std::string& network_id) const;
  /// Inserts (or replaces) under the registry lock, maintaining the
  /// implicit-budget bookkeeping; returns whether a session was replaced.
  bool adopt_session(const std::string& tenant, const std::string& network_id,
                     std::shared_ptr<TenantSession> session,
                     bool explicit_budget);

  const QueryCacheOptions default_cache_;
  const std::size_t global_mask_tables_;
  const RegistryPersistOptions persist_;
  mutable std::mutex mu_;
  std::map<std::pair<std::string, std::string>,
           std::shared_ptr<TenantSession>>
      sessions_;
  std::size_t implicit_count_ = 0;
  std::uint64_t restores_ = 0;  ///< guarded by mu_
  std::uint64_t corrupt_ = 0;   ///< guarded by mu_
};

}  // namespace streamrel
