#pragma once
// The flow-network model from the paper: a P2P streaming system is a graph
// G = (V, E) where each link e carries up to c(e) unit-rate sub-streams and
// fails independently with probability p(e). A flow demand D = (s, t, d)
// asks for d unit sub-streams from source s to sink t.
//
// Links may be directed (an overlay push connection) or undirected (a
// symmetric peering link). An undirected link is ONE failing unit that can
// carry up to c(e) sub-streams in each direction.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "streamrel/util/bitops.hpp"

namespace streamrel {

class CompiledNetwork;

using NodeId = std::int32_t;
using EdgeId = std::int32_t;
using Capacity = std::int64_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

enum class EdgeKind : std::uint8_t {
  kDirected,
  kUndirected,
};

/// A link of the streaming system.
struct Edge {
  NodeId u = kInvalidNode;  ///< Tail for directed edges.
  NodeId v = kInvalidNode;  ///< Head for directed edges.
  Capacity capacity = 0;    ///< Max sub-streams carried (each direction if undirected).
  double failure_prob = 0;  ///< Independent failure probability, in [0, 1).
  EdgeKind kind = EdgeKind::kUndirected;

  bool directed() const noexcept { return kind == EdgeKind::kDirected; }

  /// The endpoint that is not `n`. Requires n == u or n == v.
  NodeId other(NodeId n) const noexcept { return n == u ? v : u; }
};

/// A stream-delivery request: `rate` unit sub-streams from source to sink.
struct FlowDemand {
  NodeId source = kInvalidNode;
  NodeId sink = kInvalidNode;
  Capacity rate = 1;
};

/// Mutable flow-network container. Node ids are dense [0, num_nodes).
/// Edge ids are dense [0, num_edges) in insertion order; failure
/// configurations index edges by these ids.
class FlowNetwork {
 public:
  FlowNetwork() = default;
  explicit FlowNetwork(int num_nodes);

  NodeId add_node();
  /// Adds `count` nodes, returning the id of the first.
  NodeId add_nodes(int count);

  /// Adds a link. Throws std::invalid_argument for out-of-range endpoints,
  /// self-loops, negative capacity, or failure probability outside [0, 1).
  EdgeId add_edge(NodeId u, NodeId v, Capacity capacity, double failure_prob,
                  EdgeKind kind);
  EdgeId add_directed_edge(NodeId u, NodeId v, Capacity capacity,
                           double failure_prob) {
    return add_edge(u, v, capacity, failure_prob, EdgeKind::kDirected);
  }
  EdgeId add_undirected_edge(NodeId u, NodeId v, Capacity capacity,
                             double failure_prob) {
    return add_edge(u, v, capacity, failure_prob, EdgeKind::kUndirected);
  }

  int num_nodes() const noexcept { return num_nodes_; }
  int num_edges() const noexcept { return static_cast<int>(edges_.size()); }

  const Edge& edge(EdgeId id) const { return edges_[static_cast<std::size_t>(id)]; }
  std::span<const Edge> edges() const noexcept { return edges_; }

  /// Replaces the failure probability of one edge (used by sweeps).
  void set_failure_prob(EdgeId id, double p);
  /// Replaces the capacity of one edge.
  void set_capacity(EdgeId id, Capacity c);

  bool valid_node(NodeId n) const noexcept { return n >= 0 && n < num_nodes_; }
  bool valid_edge(EdgeId e) const noexcept {
    return e >= 0 && e < num_edges();
  }

  /// Edge ids incident to `n` (direction-insensitive).
  const std::vector<EdgeId>& incident_edges(NodeId n) const {
    return incident_[static_cast<std::size_t>(n)];
  }

  /// True when every edge fits in one 64-bit failure mask.
  bool fits_mask() const noexcept { return num_edges() <= kMaxMaskBits; }
  /// Mask with one bit per edge. Throws if !fits_mask().
  Mask all_edges_mask() const;

  /// Per-edge failure probabilities, indexed by edge id.
  std::vector<double> failure_probs() const;

  /// Sum of capacities over a set of edge ids.
  Capacity total_capacity(const std::vector<EdgeId>& ids) const;

  /// Throws std::invalid_argument unless the demand endpoints are distinct
  /// valid nodes and the rate is positive.
  void check_demand(const FlowDemand& demand) const;

  /// Human-readable one-line summary ("12 nodes, 17 edges (undirected)").
  std::string summary() const;

  /// Freezes the current state into an immutable, shareable snapshot
  /// (CSR adjacency + structure-of-arrays columns; see graph/compiled.hpp).
  /// The snapshot does not track later edits to this builder.
  std::shared_ptr<const CompiledNetwork> compile() const;

 private:
  int num_nodes_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> incident_;
};

}  // namespace streamrel
