#pragma once
// Graphviz export, used by the examples to visualize networks and the
// bottleneck partitions the solver selects.

#include <string>
#include <vector>

#include "streamrel/graph/flow_network.hpp"

namespace streamrel {

struct DotOptions {
  NodeId source = kInvalidNode;       ///< drawn as a doublecircle
  NodeId sink = kInvalidNode;         ///< drawn as a doublecircle
  std::vector<bool> side_s;           ///< optional: source-side nodes shaded
  std::vector<EdgeId> highlight;      ///< edges drawn bold red (bottleneck)
  bool show_probabilities = true;
};

/// Renders the network in DOT syntax; edge labels show "c=<cap>" and,
/// optionally, "p=<prob>".
std::string to_dot(const FlowNetwork& net, const DotOptions& options = {});

}  // namespace streamrel
