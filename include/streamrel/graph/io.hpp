#pragma once
// Plain-text network interchange format, so topologies can be version
// controlled, shared, and fed to the CLI tools:
//
//   # comment — anywhere, to end of line
//   nodes <count>
//   edge <u> <v> <capacity> <failure_prob> [directed]
//   demand <source> <sink> <rate>          # optional, at most one
//
// Directives may appear in any order except that `nodes` must precede
// the first `edge`. Parsing is strict: malformed input throws
// std::invalid_argument naming the offending line.

#include <iosfwd>
#include <optional>
#include <string>

#include "streamrel/graph/flow_network.hpp"

namespace streamrel {

struct NetworkFile {
  FlowNetwork net;
  std::optional<FlowDemand> demand;
};

NetworkFile read_network(std::istream& in);
NetworkFile read_network_from_string(const std::string& text);
NetworkFile read_network_from_file(const std::string& path);

/// Serializes in the same format (stable round trip).
void write_network(std::ostream& out, const FlowNetwork& net,
                   const std::optional<FlowDemand>& demand = std::nullopt);
std::string network_to_string(
    const FlowNetwork& net,
    const std::optional<FlowDemand>& demand = std::nullopt);

}  // namespace streamrel
