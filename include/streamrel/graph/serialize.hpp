#pragma once
// Canonical binary forms for the graph layer's durable objects.
//
// Three objects cross the process-lifetime boundary: the compiled
// snapshot (CSR + SoA columns), the delta (the WAL's record payload),
// and the delta-record lineage (how a structure came to be). Each gets
// exactly one versioned encoding here; the persist layer composes them
// into files but never invents its own field layouts.
//
// Encoding contract:
//   * every payload starts with kGraphFormatVersion (u32) and is split
//     into CRC-framed sections (util/binio.hpp), so a flipped bit in
//     any array is detected before the array is adopted;
//   * doubles are stored as IEEE-754 bit patterns — deserialization of
//     serialize_compiled output reproduces every column BITWISE,
//     including the precomputed log(p) / log1p(-p) columns (they are
//     stored, not re-derived, precisely so no libm round-trip can
//     perturb them);
//   * structure identity is process-local and deliberately NOT encoded:
//     a deserialized snapshot carries a freshly minted structure id
//     with parent id 0. Persisted ancestry travels as the explicit
//     DeltaRecord lineage instead.
//
// All deserializers validate shapes and ranges (offsets monotone,
// endpoint/incident ids in range, probabilities in [0, 1), counts under
// sanity caps) and throw BinReadError on any violation — corrupt input
// is a recoverable condition for callers, never UB.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "streamrel/graph/compiled.hpp"
#include "streamrel/graph/delta.hpp"
#include "streamrel/graph/flow_network.hpp"

namespace streamrel {

/// Version stamped into every payload produced by this header. Bump on
/// any layout change; readers accept [1, kGraphFormatVersion].
inline constexpr std::uint32_t kGraphFormatVersion = 1;

// --- compiled snapshots ------------------------------------------------

/// Full snapshot: topology CSR, capacity column, and all three
/// probability columns, each in its own CRC-framed section.
std::string serialize_compiled(const CompiledNetwork& snapshot);

/// Inverse of serialize_compiled. The returned snapshot's arrays are
/// bitwise-identical to the serialized one's; its structure id is
/// freshly minted (see header comment). Throws BinReadError on corrupt
/// or out-of-range input.
std::shared_ptr<const CompiledNetwork> deserialize_compiled(
    std::string_view bytes);

/// Rebuilds a mutable builder that compiles back to this snapshot:
/// add_nodes + add_edge in edge-id order reproduces the builder the
/// snapshot was (or could have been) compiled from, so
/// builder_from_compiled(s).compile() is array-identical to `s` by the
/// documented apply_delta/compile invariant.
FlowNetwork builder_from_compiled(const CompiledNetwork& snapshot);

// --- deltas ------------------------------------------------------------

/// One NetworkDelta — the payload of a WAL record.
std::string serialize_delta(const NetworkDelta& delta);

/// Throws BinReadError on corrupt input. Id validity against a concrete
/// network is NOT checked here (the delta application path owns that);
/// only encoding-level sanity is.
NetworkDelta deserialize_delta(std::string_view bytes);

// --- lineage -----------------------------------------------------------

/// A DeltaRecord chain (DeltaJournal::chain order: most recent first).
std::string serialize_lineage(const std::vector<DeltaRecord>& lineage);

/// Throws BinReadError on corrupt input.
std::vector<DeltaRecord> deserialize_lineage(std::string_view bytes);

}  // namespace streamrel
