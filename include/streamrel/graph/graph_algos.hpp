#pragma once
// Elementary graph algorithms on FlowNetwork: reachability, connected
// components, and bridge detection (the paper's Fig.-2 special case of a
// bottleneck set of size one).

#include <vector>

#include "streamrel/graph/flow_network.hpp"

namespace streamrel {

/// Nodes reachable from `from` with every edge alive. With
/// `respect_direction`, directed edges are traversed u -> v only;
/// undirected edges are traversed both ways regardless.
std::vector<bool> reachable_nodes(const FlowNetwork& net, NodeId from,
                                  bool respect_direction = true);

/// Same, but only edges whose bit is set in `alive` exist. Requires
/// net.fits_mask().
std::vector<bool> reachable_nodes_masked(const FlowNetwork& net, NodeId from,
                                         Mask alive,
                                         bool respect_direction = true);

/// Direction-insensitive connected components. Returns the component id of
/// each node (ids are dense, 0-based, in order of first discovery).
struct Components {
  std::vector<int> id;  ///< per node
  int count = 0;
};
Components connected_components(const FlowNetwork& net);

/// Direction-insensitive connected components when only `alive` edges
/// exist. Requires net.fits_mask().
Components connected_components_masked(const FlowNetwork& net, Mask alive);

/// True if removing `removed` edges leaves no s -> t path.
bool removal_disconnects(const FlowNetwork& net, NodeId s, NodeId t,
                         const std::vector<EdgeId>& removed,
                         bool respect_direction = true);

/// All bridge edges in the direction-insensitive sense: edges whose removal
/// increases the number of connected components. Parallel edges are never
/// bridges. Runs Tarjan's low-link algorithm iteratively.
std::vector<EdgeId> find_bridges(const FlowNetwork& net);

}  // namespace streamrel
