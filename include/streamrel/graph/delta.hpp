#pragma once
// Network deltas — the edit language of a live swarm.
//
// A P2P overlay is never static: peers join and leave, link quality
// drifts, capacities get re-provisioned. A NetworkDelta captures one
// batch of such edits against a specific network state, classified by
// how much cached structure the edit can possibly disturb:
//
//   * kProbabilityOnly — only p(e) moved. Masks, assignment sets and
//     partitions are all probability-independent (§III-C), so EVERY
//     structural artifact survives; the successor snapshot shares the
//     whole Structure block (same structure id).
//   * kCapacityOnly — capacities moved but the graph shape did not.
//     The successor snapshot shares the Topology block (CSR arrays,
//     endpoints, kinds) and copies only the capacity column; cached
//     artifacts survive per-cut: a mask table is invalid only when its
//     side contains a touched edge, an assignment set only when the
//     cut itself was crossed.
//   * kTopology — edges or nodes appeared/disappeared. The successor
//     snapshot is built by patching the CSR arrays (compaction +
//     append), and structural caches for the old shape are dead.
//
// Identifier semantics: every id in a delta refers to the PRE-delta
// network, with one extension — edges added by the delta may reference
// nodes the same delta adds (ids num_nodes .. num_nodes+nodes_added-1).
// Removals may only name pre-existing nodes/edges. Removing a node
// removes every incident edge, including ones the delta just added.
// After application, surviving nodes/edges keep their relative order and
// are renumbered densely; additions append. The node_map / edge_map in
// the application results translate old ids to successor ids.
//
// The successor produced by apply_delta is BITWISE-IDENTICAL (structure
// arrays, CSR layout, probability columns) to rebuilding the edited
// network from scratch in the builder and calling compile() — delta
// recompilation is a cache, never an approximation.

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "streamrel/graph/flow_network.hpp"

namespace streamrel {

enum class DeltaClass {
  kProbabilityOnly,  ///< only failure probabilities moved
  kCapacityOnly,     ///< capacities moved, topology unchanged
  kTopology,         ///< edges/nodes added or removed
};

std::string_view to_string(DeltaClass c) noexcept;

/// One batch of edits against a specific network state. Build with the
/// fluent setters; apply with apply_delta (builder) or
/// CompiledNetwork::apply_delta (snapshot).
struct NetworkDelta {
  struct ProbEdit {
    EdgeId edge = kInvalidEdge;
    double failure_prob = 0.0;
  };
  struct CapacityEdit {
    EdgeId edge = kInvalidEdge;
    Capacity capacity = 0;
  };
  struct EdgeAdd {
    NodeId u = kInvalidNode;  ///< pre-delta id, or num_nodes+i for added node i
    NodeId v = kInvalidNode;
    Capacity capacity = 0;
    double failure_prob = 0.0;
    EdgeKind kind = EdgeKind::kUndirected;
  };

  std::vector<ProbEdit> prob_edits;
  std::vector<CapacityEdit> capacity_edits;
  std::vector<EdgeAdd> edge_adds;
  std::vector<EdgeId> edge_removes;  ///< pre-delta ids
  std::vector<NodeId> node_removes;  ///< pre-delta ids; incident edges go too
  int nodes_added = 0;

  NetworkDelta& set_failure_prob(EdgeId edge, double p) {
    prob_edits.push_back({edge, p});
    return *this;
  }
  NetworkDelta& set_capacity(EdgeId edge, Capacity c) {
    capacity_edits.push_back({edge, c});
    return *this;
  }
  NetworkDelta& add_edge(NodeId u, NodeId v, Capacity capacity,
                         double failure_prob,
                         EdgeKind kind = EdgeKind::kUndirected) {
    edge_adds.push_back({u, v, capacity, failure_prob, kind});
    return *this;
  }
  /// Returns the id the new node will have BEFORE compaction (old
  /// num_nodes + additions so far); pass `pre_delta_nodes` = the node
  /// count of the network the delta targets.
  NodeId add_node(int pre_delta_nodes) {
    return static_cast<NodeId>(pre_delta_nodes + nodes_added++);
  }
  NetworkDelta& remove_edge(EdgeId edge) {
    edge_removes.push_back(edge);
    return *this;
  }
  NetworkDelta& remove_node(NodeId node) {
    node_removes.push_back(node);
    return *this;
  }

  bool empty() const noexcept {
    return prob_edits.empty() && capacity_edits.empty() &&
           edge_adds.empty() && edge_removes.empty() &&
           node_removes.empty() && nodes_added == 0;
  }

  /// The strongest mutation class present (kTopology > kCapacityOnly >
  /// kProbabilityOnly). An empty delta classifies as kProbabilityOnly.
  DeltaClass classify() const noexcept {
    if (!edge_adds.empty() || !edge_removes.empty() ||
        !node_removes.empty() || nodes_added != 0) {
      return DeltaClass::kTopology;
    }
    if (!capacity_edits.empty()) return DeltaClass::kCapacityOnly;
    return DeltaClass::kProbabilityOnly;
  }
};

/// apply_delta(FlowNetwork) result: the edited builder plus the id
/// translations (old id -> new id, kInvalidNode/kInvalidEdge = removed).
struct DeltaApplication {
  FlowNetwork net;
  std::vector<NodeId> node_map;
  std::vector<EdgeId> edge_map;
  DeltaClass applied = DeltaClass::kProbabilityOnly;
};

/// Applies `delta` to a builder network, validating every edit (throws
/// std::invalid_argument on out-of-range ids, edits to removed entities,
/// duplicate removals, probabilities outside [0, 1), negative
/// capacities). The result's edge order is: surviving old edges in old-id
/// order, then added edges in add order — exactly the order a from-scratch
/// rebuild would produce, so compile() of the result is array-identical to
/// CompiledNetwork::apply_delta of the matching snapshot.
DeltaApplication apply_delta(const FlowNetwork& net,
                             const NetworkDelta& delta);

/// In-place convenience: probability/capacity deltas mutate `net`
/// directly; topology deltas rebuild and replace it. Returns the id maps.
DeltaApplication apply_delta_in_place(FlowNetwork& net,
                                      const NetworkDelta& delta);

/// One journal entry: how a compiled structure came to be. Snapshots
/// produced by CompiledNetwork::apply_delta record their parentage here,
/// so a serving layer can walk the ancestry of any structure id it holds
/// artifacts for and decide what survived.
struct DeltaRecord {
  std::uint64_t structure_id = 0;
  std::uint64_t parent_structure_id = 0;  ///< 0 = compiled from a builder
  DeltaClass delta_class = DeltaClass::kProbabilityOnly;
  int capacity_edits = 0;
  int edges_added = 0;
  int edges_removed = 0;
  int nodes_added = 0;
  int nodes_removed = 0;
};

/// Process-wide, bounded (FIFO-evicted) registry of delta records,
/// linking successor snapshots to their parents by structure id.
/// Thread-safe; lookups never block recording for long.
class DeltaJournal {
 public:
  static DeltaJournal& instance();

  void record(const DeltaRecord& record);
  std::optional<DeltaRecord> lookup(std::uint64_t structure_id) const;
  /// Ancestry of `structure_id`, most recent first, walking
  /// parent_structure_id links until a root (or an evicted record) is
  /// reached. Empty when the id was never recorded.
  std::vector<DeltaRecord> chain(std::uint64_t structure_id) const;
  std::size_t size() const;

 private:
  DeltaJournal() = default;
  struct Impl;
  Impl& impl() const;
};

/// Hint attached to a solve (SolveOptions::delta_hint) telling the
/// engine layer that the instance is a small perturbation of a
/// previously solved structure: `parent_structure_id` identifies the
/// warm structure, `touched_edges` (post-delta ids) what moved.
/// QuerySession::apply_delta produces one automatically; delta-aware
/// engines (Engine::delta_aware()) use it to route the query to
/// warm-artifact re-accumulation instead of a cold decomposition.
/// Purely advisory: answers never depend on the hint, only the work
/// performed does.
struct DeltaSolveHint {
  std::uint64_t parent_structure_id = 0;
  DeltaClass delta_class = DeltaClass::kTopology;
  std::vector<EdgeId> touched_edges;

  /// True when the whole decomposition can be reused and only the
  /// probability fold needs to rerun.
  bool accumulation_only() const noexcept {
    return delta_class == DeltaClass::kProbabilityOnly;
  }
  /// Small enough that cut-scoped artifact reuse is expected to win.
  bool small(std::size_t limit = 8) const noexcept {
    return delta_class != DeltaClass::kTopology &&
           touched_edges.size() <= limit;
  }
};

}  // namespace streamrel
