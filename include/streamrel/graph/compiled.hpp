#pragma once
// CompiledNetwork — the immutable, shareable snapshot the solvers run on.
//
// FlowNetwork stays the mutable builder: pointer-rich array-of-structs
// edges plus per-node adjacency vectors, convenient to grow and edit.
// compile() freezes it into a structure-of-arrays snapshot:
//
//   * CSR adjacency — one offsets array plus one packed incident-edge
//     array, in exactly the builder's per-node incidence order;
//   * SoA edge columns SPLIT BY MUTATION CLASS — structure (u, v, kind)
//     and capacities live in an inner `Structure` block shared by
//     shared_ptr, while the probability columns (p, log(p), log1p(-p))
//     live in the outer CompiledNetwork.
//
// The split is what makes the serving layer's invalidation rule cheap
// and principled: a probability edit calls with_failure_prob(), which
// copies only the three probability columns and re-points at the SAME
// Structure — so "probability edits keep every structural cache" is an
// identity check on structure_id(), not an epoch heuristic. Capacity or
// topology edits go back through the builder and compile() a new
// Structure with a fresh id.
//
// NetworkView is the zero-copy companion: a side component of the
// bottleneck decomposition (§III-C) as index-translation tables over one
// pinned snapshot — no node or edge is copied, unlike the historical
// `Subgraph`, which materialized each side as a full FlowNetwork. View
// edge ids are dense [0, num_edges) in original-edge-id order, the same
// compact numbering Subgraph used, so failure masks and side arrays are
// bit-for-bit unchanged.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "streamrel/graph/delta.hpp"
#include "streamrel/graph/flow_network.hpp"

namespace streamrel {

/// CompiledNetwork::apply_delta result: the successor snapshot plus the
/// id translations (old id -> successor id; kInvalidNode / kInvalidEdge
/// for removed entities — identity maps for non-topology deltas).
/// `touched_edges` lists, in SUCCESSOR edge ids, the surviving edges
/// whose capacity the delta changed (the cut-scoped invalidation key;
/// empty for probability-only deltas).
struct CompiledDelta {
  std::shared_ptr<const CompiledNetwork> snapshot;
  std::vector<NodeId> node_map;
  std::vector<EdgeId> edge_map;
  std::vector<EdgeId> touched_edges;
  DeltaClass applied = DeltaClass::kProbabilityOnly;
};

class CompiledNetwork {
 public:
  /// The pure-shape third of the snapshot: endpoints, kinds and the CSR
  /// adjacency — everything a topology edit (and only a topology edit)
  /// can disturb. Shared by shared_ptr across capacity overlays, so a
  /// capacity-only delta copies the capacity column and nothing else.
  struct Topology {
    int num_nodes = 0;
    std::vector<NodeId> u;            ///< per edge: tail (directed) / endpoint
    std::vector<NodeId> v;            ///< per edge: head / other endpoint
    std::vector<EdgeKind> kind;       ///< per edge
    std::vector<std::size_t> offsets; ///< CSR: num_nodes + 1 entries
    std::vector<EdgeId> incident;     ///< CSR: packed incident edge ids
  };

  /// The capacity/topology half of the snapshot, shared (never copied)
  /// across probability overlays. `id` is process-unique: two
  /// CompiledNetworks agree on topology and capacities iff their
  /// structure ids are equal. `parent_id` links a structure minted by
  /// apply_delta to the structure it patched (0 = compiled from a
  /// builder); the full ancestry lives in DeltaJournal.
  struct Structure {
    std::shared_ptr<const Topology> topology;
    std::vector<Capacity> capacity;   ///< per edge
    std::uint64_t id = 0;             ///< process-unique structure identity
    std::uint64_t parent_id = 0;      ///< structure this one was patched from
  };

  /// Freezes `net` into a snapshot. Edge and incidence order are
  /// preserved exactly, so every enumeration over the snapshot visits
  /// configurations in the same order as one over the builder.
  static std::shared_ptr<const CompiledNetwork> compile(
      const FlowNetwork& net);

  /// Reassembles a snapshot from previously extracted arrays — the
  /// deserialization entry point (graph/serialize.hpp). All columns are
  /// adopted verbatim (the caller vouches for their internal
  /// consistency; the deserializer validates shapes and ranges before
  /// calling this), so a persisted snapshot restores BITWISE, including
  /// the precomputed log columns. Structure identity is process-local
  /// and therefore NOT restored: a fresh structure id is minted and
  /// parent_id is 0 — the persisted lineage lives in the store's
  /// journal, not in the id counter. Throws std::invalid_argument when
  /// the column lengths disagree with the topology.
  static std::shared_ptr<const CompiledNetwork> from_parts(
      Topology topology, std::vector<Capacity> capacity,
      std::vector<double> failure_prob, std::vector<double> log_failure,
      std::vector<double> log_survival);

  /// Probability overlay: a new snapshot sharing THIS snapshot's
  /// Structure (same structure_id()), with edge `id` failing with
  /// probability `p`. Throws std::invalid_argument for a bad edge id or
  /// p outside [0, 1). Cost: one copy of the probability columns.
  std::shared_ptr<const CompiledNetwork> with_failure_prob(EdgeId id,
                                                           double p) const;

  /// Bulk probability overlay: a new snapshot sharing THIS snapshot's
  /// Structure with the whole probability column replaced (one entry per
  /// edge, each in [0, 1)). The fast path for "re-sync probabilities
  /// after an alias edit" — structural caches keyed on structure_id()
  /// remain valid by construction.
  std::shared_ptr<const CompiledNetwork> with_failure_probs(
      std::span<const double> probs) const;

  /// Successor snapshot under `delta` (see graph/delta.hpp for the edit
  /// and id semantics). Shares every block the delta does not touch:
  /// probability-only deltas share the whole Structure (same structure
  /// id); capacity-only deltas share the Topology block and mint a new
  /// structure id with parent_id linking back here; topology deltas
  /// patch the CSR arrays (compaction + append). The result is
  /// array-identical to rebuilding the edited network and compiling it
  /// from scratch. Structure-minting deltas are recorded in
  /// DeltaJournal. Throws std::invalid_argument on an invalid delta.
  CompiledDelta apply_delta(const NetworkDelta& delta) const;

  int num_nodes() const noexcept { return topology().num_nodes; }
  int num_edges() const noexcept {
    return static_cast<int>(topology().u.size());
  }

  bool valid_node(NodeId n) const noexcept {
    return n >= 0 && n < topology().num_nodes;
  }
  bool valid_edge(EdgeId e) const noexcept {
    return e >= 0 && e < num_edges();
  }

  NodeId edge_u(EdgeId e) const {
    return topology().u[static_cast<std::size_t>(e)];
  }
  NodeId edge_v(EdgeId e) const {
    return topology().v[static_cast<std::size_t>(e)];
  }
  EdgeKind edge_kind(EdgeId e) const {
    return topology().kind[static_cast<std::size_t>(e)];
  }
  bool edge_directed(EdgeId e) const {
    return edge_kind(e) == EdgeKind::kDirected;
  }
  Capacity edge_capacity(EdgeId e) const {
    return structure_->capacity[static_cast<std::size_t>(e)];
  }
  double failure_prob(EdgeId e) const {
    return failure_prob_[static_cast<std::size_t>(e)];
  }
  /// log(p(e)); -inf for p = 0 (callers on the sampling/scoring paths
  /// branch on p == 0 first).
  double log_failure(EdgeId e) const {
    return log_failure_[static_cast<std::size_t>(e)];
  }
  /// log1p(-p(e)) — the alive factor's log, precomputed once per snapshot
  /// so samplers and what-if scorers never re-derive it per configuration.
  double log_survival(EdgeId e) const {
    return log_survival_[static_cast<std::size_t>(e)];
  }

  /// Edge ids incident to `n` (direction-insensitive), CSR slice.
  std::span<const EdgeId> incident_edges(NodeId n) const {
    const Topology& topo = topology();
    const auto i = static_cast<std::size_t>(n);
    return {topo.incident.data() + topo.offsets[i],
            topo.offsets[i + 1] - topo.offsets[i]};
  }

  /// Per-edge failure probabilities, indexed by edge id (the whole
  /// column, no copy).
  std::span<const double> failure_probs() const noexcept {
    return failure_prob_;
  }

  bool fits_mask() const noexcept { return num_edges() <= kMaxMaskBits; }

  /// Topology + capacity identity (see Structure::id).
  std::uint64_t structure_id() const noexcept { return structure_->id; }
  /// Structure this snapshot was delta-patched from (0 = compiled root).
  std::uint64_t parent_structure_id() const noexcept {
    return structure_->parent_id;
  }

  const Structure& structure() const noexcept { return *structure_; }
  const Topology& topology() const noexcept { return *structure_->topology; }

 private:
  CompiledNetwork() = default;

  /// Mints a fresh process-unique Structure::id (shared by compile()
  /// and the delta paths in graph/delta.cpp).
  static std::uint64_t next_structure_id();

  std::shared_ptr<const Structure> structure_;
  std::vector<double> failure_prob_;
  std::vector<double> log_failure_;
  std::vector<double> log_survival_;
};

/// Zero-copy view of a node-induced side component of one snapshot:
/// index-translation tables only, with the snapshot pinned by shared_ptr.
/// View node/edge ids are dense and ordered by original id — identical
/// numbering to the historical Subgraph, so side failure masks are
/// unchanged bit for bit.
class NetworkView {
 public:
  NetworkView() = default;

  /// Whole-network view (identity translation).
  explicit NetworkView(std::shared_ptr<const CompiledNetwork> snapshot);

  /// View induced by the nodes with `in_side[n] == true`; keeps exactly
  /// the edges with both endpoints inside. `in_side.size()` must equal
  /// the snapshot's node count.
  NetworkView(std::shared_ptr<const CompiledNetwork> snapshot,
              const std::vector<bool>& in_side);

  int num_nodes() const noexcept { return static_cast<int>(node_map_.size()); }
  int num_edges() const noexcept { return static_cast<int>(edge_map_.size()); }
  bool fits_mask() const noexcept { return num_edges() <= kMaxMaskBits; }

  /// Endpoints / attributes of view edge `e`, endpoints in VIEW node ids.
  NodeId edge_u(EdgeId e) const {
    return node_to_view_[static_cast<std::size_t>(
        snapshot_->edge_u(original_edge(e)))];
  }
  NodeId edge_v(EdgeId e) const {
    return node_to_view_[static_cast<std::size_t>(
        snapshot_->edge_v(original_edge(e)))];
  }
  EdgeKind edge_kind(EdgeId e) const {
    return snapshot_->edge_kind(original_edge(e));
  }
  bool edge_directed(EdgeId e) const {
    return snapshot_->edge_directed(original_edge(e));
  }
  Capacity edge_capacity(EdgeId e) const {
    return snapshot_->edge_capacity(original_edge(e));
  }
  double failure_prob(EdgeId e) const {
    return snapshot_->failure_prob(original_edge(e));
  }

  /// Per-view-edge failure probabilities (gathered through the
  /// translation table — the only per-edge copy a view ever makes, and
  /// only when a caller asks for the compact vector).
  std::vector<double> failure_probs() const;

  // --- translation --------------------------------------------------

  NodeId original_node(NodeId view_node) const {
    return node_map_[static_cast<std::size_t>(view_node)];
  }
  EdgeId original_edge(EdgeId view_edge) const {
    return edge_map_[static_cast<std::size_t>(view_edge)];
  }
  /// kInvalidNode / kInvalidEdge when outside the view.
  NodeId view_node(NodeId original) const {
    return node_to_view_[static_cast<std::size_t>(original)];
  }
  EdgeId view_edge(EdgeId original) const {
    return edge_to_view_[static_cast<std::size_t>(original)];
  }

  const std::vector<NodeId>& node_map() const noexcept { return node_map_; }
  const std::vector<EdgeId>& edge_map() const noexcept { return edge_map_; }
  const std::vector<NodeId>& node_to_view() const noexcept {
    return node_to_view_;
  }
  const std::vector<EdgeId>& edge_to_view() const noexcept {
    return edge_to_view_;
  }

  /// Translates an alive-edge mask over the ORIGINAL network into view
  /// numbering (edges outside the view are dropped) and back.
  Mask project_mask(Mask original_alive) const;
  Mask lift_mask(Mask view_alive) const;

  const CompiledNetwork& snapshot() const noexcept { return *snapshot_; }
  const std::shared_ptr<const CompiledNetwork>& snapshot_ptr() const noexcept {
    return snapshot_;
  }

 private:
  std::shared_ptr<const CompiledNetwork> snapshot_;
  std::vector<NodeId> node_map_;     ///< view node id -> original node id
  std::vector<EdgeId> edge_map_;     ///< view edge id -> original edge id
  std::vector<NodeId> node_to_view_; ///< original node -> view id or invalid
  std::vector<EdgeId> edge_to_view_; ///< original edge -> view id or invalid
};

}  // namespace streamrel
