#pragma once
// Synthetic network generators. The paper's target graph class — P2P
// streaming overlays whose topology pinches through a constant number of
// bottleneck links — is produced by `clustered_bottleneck`; the simpler
// families feed unit tests and micro-benchmarks.

#include <vector>

#include "streamrel/graph/flow_network.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {

/// Closed integer range for random capacities.
struct CapacityRange {
  Capacity lo = 1;
  Capacity hi = 1;
};

/// Closed real range for random failure probabilities (hi < 1).
struct ProbRange {
  double lo = 0.05;
  double hi = 0.2;
};

/// A generated network together with its intended demand endpoints and,
/// when the generator knows one, a bottleneck side partition
/// (side_s[n] == true <=> node n lies on the source side).
struct GeneratedNetwork {
  FlowNetwork net;
  NodeId source = kInvalidNode;
  NodeId sink = kInvalidNode;
  std::vector<bool> side_s;  ///< empty when no planted partition exists
};

/// s - v1 - v2 - ... - t path with `length` edges.
GeneratedNetwork path_network(int length, Capacity cap, double p,
                              EdgeKind kind = EdgeKind::kUndirected);

/// Two nodes joined by `count` parallel links.
GeneratedNetwork parallel_links(int count, Capacity cap, double p,
                                EdgeKind kind = EdgeKind::kUndirected);

/// Circular ladder minus the closing rungs: 2 x `rungs` grid. Source is the
/// top-left node, sink the bottom-right.
GeneratedNetwork ladder_network(int rungs, Capacity cap, double p,
                                EdgeKind kind = EdgeKind::kUndirected);

/// `width` x `height` grid; source top-left, sink bottom-right.
GeneratedNetwork grid_network(int width, int height, Capacity cap, double p,
                              EdgeKind kind = EdgeKind::kUndirected);

/// Connected random network: a uniform random spanning tree plus
/// `extra_edges` distinct random non-tree links. Capacities and failure
/// probabilities are drawn uniformly from the ranges. Source/sink are the
/// two tree leaves farthest apart.
GeneratedNetwork random_connected(Xoshiro256& rng, int nodes, int extra_edges,
                                  CapacityRange caps, ProbRange probs,
                                  EdgeKind kind = EdgeKind::kUndirected);

/// Parameters for the paper's headline graph class.
struct ClusteredParams {
  int nodes_s = 6;        ///< nodes in the source-side cluster (incl. s)
  int nodes_t = 6;        ///< nodes in the sink-side cluster (incl. t)
  int extra_edges_s = 3;  ///< cluster-internal links beyond the spanning tree
  int extra_edges_t = 3;
  int bottleneck_links = 2;  ///< k: links crossing between the clusters
  CapacityRange cluster_caps{1, 3};
  CapacityRange bottleneck_caps{1, 3};
  ProbRange cluster_probs{0.05, 0.2};
  ProbRange bottleneck_probs{0.05, 0.2};
  EdgeKind kind = EdgeKind::kUndirected;
};

/// Two internally random-connected clusters joined by exactly
/// `bottleneck_links` crossing links; `side_s` records the planted
/// partition. The demand source sits in cluster S and the sink in cluster
/// T, each chosen away from the crossing endpoints when possible.
GeneratedNetwork clustered_bottleneck(Xoshiro256& rng,
                                      const ClusteredParams& params);

/// Uniformly random network for property tests: `nodes` nodes, `edges`
/// random distinct-endpoint links (parallel links allowed), connectivity
/// NOT guaranteed. Source/sink are nodes 0 and nodes-1.
GeneratedNetwork random_multigraph(Xoshiro256& rng, int nodes, int edges,
                                   CapacityRange caps, ProbRange probs,
                                   EdgeKind kind = EdgeKind::kUndirected);

/// Watts–Strogatz small world: a ring lattice where each node links to
/// its `k/2` clockwise neighbours, each link rewired to a random target
/// with probability `beta`. The classical model for unstructured P2P
/// neighbour tables. Requires even k with 0 < k < nodes.
GeneratedNetwork small_world(Xoshiro256& rng, int nodes, int k, double beta,
                             CapacityRange caps, ProbRange probs);

/// Barabási–Albert preferential attachment: nodes join one at a time and
/// connect `attach` links to existing nodes with probability proportional
/// to degree — produces hub-dominated overlays (the capacity-hot-spot
/// situation the paper's introduction warns about for mesh systems).
GeneratedNetwork preferential_attachment(Xoshiro256& rng, int nodes,
                                         int attach, CapacityRange caps,
                                         ProbRange probs);

}  // namespace streamrel
