#pragma once
// Induced subgraph extraction with id remapping. The bottleneck
// decomposition carves G into side components G_s and G_t; side algorithms
// run on compact subnetworks whose edge ids index the side failure masks,
// and the maps here translate results back to the original network.

#include <vector>

#include "streamrel/graph/flow_network.hpp"

namespace streamrel {

struct Subgraph {
  FlowNetwork net;                ///< The induced subnetwork.
  std::vector<NodeId> node_map;   ///< sub node id -> original node id.
  std::vector<EdgeId> edge_map;   ///< sub edge id -> original edge id.
  std::vector<NodeId> node_to_sub;  ///< original node -> sub id or kInvalidNode.
  std::vector<EdgeId> edge_to_sub;  ///< original edge -> sub id or kInvalidEdge.
};

/// Subgraph induced by the nodes with `in_side[n] == true`; keeps exactly
/// the edges with both endpoints inside. `in_side.size()` must equal
/// `net.num_nodes()`.
Subgraph induced_subgraph(const FlowNetwork& net,
                          const std::vector<bool>& in_side);

/// Translates an alive-edge mask over the ORIGINAL network into the
/// subgraph's edge numbering (edges outside the subgraph are dropped).
Mask project_mask(const Subgraph& sub, Mask original_alive);

/// Translates an alive-edge mask over the SUBGRAPH back into original
/// numbering.
Mask lift_mask(const Subgraph& sub, Mask sub_alive);

/// Replicated-source transform: adds a virtual super source wired to each
/// listed server with a perfect (p = 0) infinite-capacity feed link, so
/// multi-origin deployments ("any of these servers can push the stream")
/// reduce to the single-source model every algorithm here expects.
/// Returns the id of the new source node; `net` gains 1 node and
/// |servers| edges (appended last, so existing edge ids are unchanged).
NodeId merge_sources(FlowNetwork& net, const std::vector<NodeId>& servers);

}  // namespace streamrel
