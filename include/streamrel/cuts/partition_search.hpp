#pragma once
// Automatic bottleneck-partition selection.
//
// The paper assumes the bottleneck link set is given. For a usable
// library we also search for one: candidates come from bridges, the
// minimum-cardinality s-t cut, and (on mask-sized graphs) exhaustive
// minimal-cut-set enumeration; the winner minimizes the decomposition
// cost, which is dominated by 2^max(|E_s|, |E_t|) and secondarily by the
// assignment count governed by k.

#include <optional>

#include "streamrel/cuts/bottleneck.hpp"
#include "streamrel/cuts/cut_enumeration.hpp"
#include "streamrel/util/exec_context.hpp"

namespace streamrel {

struct PartitionSearchOptions {
  int max_k = 4;  ///< largest bottleneck cardinality considered
  /// Sides with more internal links than this are rejected (side arrays
  /// enumerate 2^edges configurations).
  int max_side_edges = 30;
  CutEnumerationOptions enumeration{};
};

struct PartitionChoice {
  BottleneckPartition partition;
  PartitionStats stats;
};

/// Best partition found, or std::nullopt when none satisfies the limits
/// (e.g. the graph has no small balanced cut). With a context, the cut
/// enumeration polls for deadline/cancellation between candidates and
/// raises ExecInterrupted on a stop.
std::optional<PartitionChoice> find_best_partition(
    const FlowNetwork& net, NodeId s, NodeId t,
    const PartitionSearchOptions& options = {},
    const ExecContext* ctx = nullptr);

/// All admissible candidate partitions, deduplicated and sorted best
/// first (smaller max side, then smaller k). Callers that may reject a
/// candidate for reasons the cost model cannot see (e.g. assignment-set
/// blow-up at a specific demand) walk this list.
std::vector<PartitionChoice> find_candidate_partitions(
    const FlowNetwork& net, NodeId s, NodeId t,
    const PartitionSearchOptions& options = {},
    const ExecContext* ctx = nullptr);

}  // namespace streamrel
