#pragma once
// Automatic discovery of a CHAIN of bottleneck cuts — the input the
// chain-decomposition extension needs. Long, thin delivery networks
// (relay cascades, CDNs, chained ISPs) pinch many times between source
// and sink; this search finds a sequence of disjoint small cuts ordered
// source to sink and converts it into the per-node layering
// reliability_chain consumes.

#include <optional>
#include <vector>

#include "streamrel/graph/flow_network.hpp"
#include "streamrel/util/exec_context.hpp"

namespace streamrel {

struct ChainSearchOptions {
  int max_cut_size = 3;     ///< only cuts with at most this many links
  int max_layer_edges = 16; ///< reject layers too big to enumerate
  int min_layers = 3;       ///< fewer layers: use the plain decomposition
};

struct ChainPlan {
  std::vector<int> layer;   ///< per node, for reliability_chain
  int num_layers = 0;
  std::vector<std::vector<EdgeId>> cuts;  ///< the boundary link sets
  int max_layer_edges = 0;  ///< links in the fattest layer
};

/// Greedy sweep: BFS-order the nodes from the source, then scan the
/// prefix boundary; every prefix whose crossing link set is small (and
/// disjoint from the previous accepted cut) becomes a boundary. Returns
/// std::nullopt if fewer than `min_layers` layers result or a layer
/// exceeds the edge budget. With a context, the boundary sweep polls for
/// deadline/cancellation and raises ExecInterrupted on a stop.
std::optional<ChainPlan> find_chain_plan(const FlowNetwork& net, NodeId s,
                                         NodeId t,
                                         const ChainSearchOptions& options = {},
                                         const ExecContext* ctx = nullptr);

}  // namespace streamrel
