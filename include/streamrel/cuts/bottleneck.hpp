#pragma once
// Bottleneck partitions (paper §III-A).
//
// The paper describes a bottleneck as a minimal edge set E* whose removal
// splits G into exactly two connected components. We represent the same
// object partition-first: a node bipartition (S, T) with s in S and t in
// T; the bottleneck links are precisely the edges crossing the
// bipartition. The two views coincide on the paper's graph class, and the
// partition view keeps the decomposition algebra exact even when a side
// is internally disconnected.

#include <optional>
#include <vector>

#include "streamrel/graph/flow_network.hpp"

namespace streamrel {

struct BottleneckPartition {
  std::vector<bool> side_s;           ///< per node; true = source side
  std::vector<EdgeId> crossing_edges; ///< every edge with endpoints on both sides

  int k() const noexcept { return static_cast<int>(crossing_edges.size()); }
};

/// Structural facts about a partition, used by validation, the automatic
/// search, and the experiment reports.
struct PartitionStats {
  int k = 0;        ///< number of crossing (bottleneck) links
  int edges_s = 0;  ///< links internal to the source side
  int edges_t = 0;  ///< links internal to the sink side
  double alpha = 0; ///< max(edges_s, edges_t) / |E|, the paper's alpha
  bool minimal = false;         ///< no proper subset of the crossing set disconnects
  bool two_components = false;  ///< removal leaves exactly two components
  Capacity crossing_capacity = 0;
};

/// Builds a partition from a side assignment; computes the crossing set.
/// Throws unless side_s has one entry per node, s is on the S side and t
/// on the T side.
BottleneckPartition partition_from_sides(const FlowNetwork& net, NodeId s,
                                         NodeId t, std::vector<bool> side_s);

/// Builds a partition from a disconnecting edge set (the paper's E*):
/// removes the edges, places the component of s on the S side and the
/// component of t on the T side, and assigns every other component to the
/// side currently holding fewer internal links (balance heuristic).
/// Returns std::nullopt when the removal does not disconnect s from t.
/// Note the resulting crossing set may be SMALLER than `cut_edges` when
/// some given edge ends up internal to one side.
std::optional<BottleneckPartition> partition_from_cut_edges(
    const FlowNetwork& net, NodeId s, NodeId t,
    const std::vector<EdgeId>& cut_edges);

PartitionStats analyze_partition(const FlowNetwork& net, NodeId s, NodeId t,
                                 const BottleneckPartition& partition);

/// Paper Definition (§III-A): `cut` is a minimal s-t disconnecting set —
/// removal disconnects s from t, but removal of every proper subset does
/// not. Direction-aware for directed graphs.
bool is_minimal_cutset(const FlowNetwork& net, NodeId s, NodeId t,
                       const std::vector<EdgeId>& cut);

}  // namespace streamrel
