#pragma once
// Enumeration of small minimal s-t cut sets — the candidate bottleneck
// link sets the decomposition algorithm can exploit.

#include <cstdint>
#include <vector>

#include "streamrel/graph/flow_network.hpp"

namespace streamrel {

struct CutEnumerationOptions {
  int max_size = 4;  ///< only cut sets with at most this many edges
  /// Abort knob: stop after examining this many candidate subsets.
  std::uint64_t max_subsets_examined = 5'000'000;
  /// Stop after collecting this many cut sets.
  std::size_t max_results = 10'000;
};

/// All minimal s-t disconnecting edge sets of cardinality <= max_size,
/// found by exhaustive subset search seeded with the min-cardinality cut
/// value (no subset smaller than the cut cardinality can disconnect).
/// Each result is sorted by edge id; results are ordered by size then
/// lexicographically.
std::vector<std::vector<EdgeId>> enumerate_minimal_cutsets(
    const FlowNetwork& net, NodeId s, NodeId t,
    const CutEnumerationOptions& options = {});

}  // namespace streamrel
