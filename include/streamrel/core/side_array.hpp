#pragma once
// Side arrays (paper §III-C, Fig. 3, Example 2).
//
// For one side component (G_s or G_t) the algorithm records, for every
// failure configuration of the side's links, which assignments in D the
// configuration realizes — a |D|-bit value per configuration. Assignment
// feasibility on a side is a bounded max-flow question on the side's
// subgraph extended with super terminals:
//
//   source side, assignment a:  S0 -> s (cap d); S0 -> x_i (cap -a_i) for
//   negative entries; x_i -> T1 (cap a_i) for positive entries; realized
//   iff maxflow(S0, T1) == d + sum of negative magnitudes.
//
//   sink side: mirror image (y_i supplies for positive entries, y_i
//   demands for negative ones, t -> T1 carries d).
//
// Two feasibility engines produce identical arrays:
//   * kPerAssignment — one bounded max-flow per (configuration,
//     assignment) pair, exactly the paper's procedure;
//   * kPolymatroid  — forward-only fast path: per configuration, compute
//     f(Q) = maxflow(anchor -> endpoints of Q) for the 2^k - 1 non-empty
//     subsets Q of bottleneck links; by Gale's theorem a >= 0 is
//     routable iff sum_{i in Q} a_i <= f(Q) for every Q, so all |D|
//     assignments are then decided with arithmetic only.

#include <cstdint>
#include <span>
#include <vector>

#include "streamrel/core/assignments.hpp"
#include "streamrel/core/bit_slabs.hpp"
#include "streamrel/graph/compiled.hpp"
#include "streamrel/maxflow/maxflow.hpp"
#include "streamrel/util/exec_context.hpp"
#include "streamrel/util/telemetry.hpp"

namespace streamrel {

/// One side of the decomposition as a zero-copy view over one compiled
/// snapshot: no node or edge is duplicated, only index-translation tables
/// are built, and the snapshot stays pinned for the problem's lifetime.
struct SideProblem {
  NetworkView view;          ///< side view (VIEW edge ids index masks)
  bool is_source_side = true;
  NodeId anchor = kInvalidNode;         ///< s or t, in VIEW node ids
  std::vector<NodeId> endpoints;        ///< per crossing edge: x_i / y_i, VIEW ids
};

/// Builds the side problem for the source side (s, x_i) or sink side
/// (t, y_i) of a partition over one compiled snapshot. Throws if the side
/// has more than 63 links.
SideProblem make_side_problem(std::shared_ptr<const CompiledNetwork> snapshot,
                              const FlowDemand& demand,
                              const BottleneckPartition& partition,
                              bool source_side);

/// Convenience overload compiling `net` on the spot (one snapshot per
/// call — callers building both sides should compile once and use the
/// snapshot overload).
SideProblem make_side_problem(const FlowNetwork& net, const FlowDemand& demand,
                              const BottleneckPartition& partition,
                              bool source_side);

enum class FeasibilityMethod {
  kPerAssignment,
  kPolymatroid,
  kAuto,  ///< polymatroid when legal (forward-only) and |D| > 2^k
};

/// How build_side_array walks the 2^|E_side| configurations.
enum class SideSweepStrategy {
  /// The paper's procedure: one from-scratch bounded max-flow per
  /// (configuration, assignment) pair — resp. per (configuration, subset)
  /// probe on the polymatroid path.
  kScratch,
  /// Gray-code walk with one persistent IncrementalMaxFlow engine per
  /// assignment (resp. per subset Q): adjacent configurations differ in a
  /// single link, so each step repairs the existing flow instead of
  /// re-solving. Engines synchronise lazily, and monotone pruning (see
  /// SideArrayOptions::monotone_pruning) answers most queries without
  /// touching a solver at all. Bitwise-identical output to kScratch.
  kGrayIncremental,
  /// Slab sweep: the Gray walk is cut into 64-rank slabs held in the
  /// BitSlabs transposed layout, and word-wide kernels decide whole
  /// lanes of configurations at once — certificate word-ANDs from a
  /// small per-assignment certificate bank, a 64-lane bit-parallel BFS
  /// when feasibility degenerates to connectivity (required flow 1), and
  /// a bit-sliced popcount of the anchor cut against the demand. Only
  /// the residue the kernels cannot decide consults a (lazily created)
  /// incremental engine, whose fresh certificate immediately re-runs
  /// word-wide. Certificates are intrinsic to this strategy, so it
  /// ignores SideArrayOptions::monotone_pruning. Per-assignment
  /// feasibility only; a polymatroid request delegates to
  /// kGrayIncremental. Bitwise-identical output to kScratch.
  kBitParallel,
  /// kBitParallel (per-assignment) for arrays of >= 1024 configurations,
  /// kGrayIncremental for polymatroid feasibility at that size, kScratch
  /// for tiny arrays (where engine setup dominates).
  kAuto,
};

struct SideArrayOptions {
  MaxFlowAlgorithm algorithm = MaxFlowAlgorithm::kDinic;  ///< scratch path;
                                                          ///< Gray engines
                                                          ///< always repair
                                                          ///< with Dinic
  FeasibilityMethod feasibility = FeasibilityMethod::kAuto;
  bool parallel = true;  ///< OpenMP over Gray-aligned configuration shards
  SideSweepStrategy sweep = SideSweepStrategy::kAuto;
  /// Gray path only: exploit monotonicity of feasibility in the alive-set.
  /// An assignment admitted by a subset of the current configuration is
  /// admitted now; one rejected by a superset is rejected now — either way
  /// the solver (and the engine sync) is skipped.
  bool monotone_pruning = true;
};

/// Cost counters for one build_side_array run: a thin view over a
/// Telemetry subtree (shards are merged in shard order, so the counters
/// are deterministic and independent of the OpenMP thread count).
struct SideArrayStats {
  Telemetry telemetry;

  /// Solver invocations (scratch solves plus incremental-repair augments).
  std::uint64_t maxflow_calls() const {
    return telemetry.counter_or(telemetry_keys::kMaxflowCalls);
  }
  /// Feasibility answers produced by monotonicity alone.
  std::uint64_t pruned_decisions() const {
    return telemetry.counter_or(telemetry_keys::kPrunedDecisions);
  }
  /// Single-link repairs applied by Gray engines.
  std::uint64_t engine_toggles() const {
    return telemetry.counter_or(telemetry_keys::kEngineToggles);
  }
  /// kBitParallel: per-lane decisions made by word-wide kernels
  /// (certificate AND + 64-lane BFS + bit-sliced cut popcount combined).
  std::uint64_t lanes_decided_wordwise() const {
    return telemetry.counter_or(telemetry_keys::kLanesWordwise);
  }
  /// kBitParallel: decisions that still consulted a scalar engine.
  std::uint64_t scalar_residue() const {
    return telemetry.counter_or(telemetry_keys::kScalarResidue);
  }
  /// Complete by construction: every counter this struct exposes —
  /// including the accessors above — is a view over `telemetry`, and the
  /// struct holds NO scalar members outside the telemetry tree, so
  /// merging the trees merges the whole state.
  void merge(const SideArrayStats& other) { telemetry.merge(other.telemetry); }
};

/// The paper's array: element m is the mask of assignments realized by
/// side failure configuration m. Size 2^|side edges|.
///
/// With a context, the sweep polls for deadline/cancellation every
/// ExecContext::kPollStride configurations and honors the thread cap; a
/// stop raises ExecInterrupted (after any parallel region has joined) —
/// callers above the engine layer never see it.
std::vector<Mask> build_side_array(const SideProblem& side,
                                   const AssignmentSet& assignments,
                                   Capacity demand_rate,
                                   const SideArrayOptions& options,
                                   SideArrayStats* stats,
                                   const ExecContext* ctx = nullptr);

/// Convenience overload keeping the historical signature: only the
/// max-flow call counter is reported.
std::vector<Mask> build_side_array(const SideProblem& side,
                                   const AssignmentSet& assignments,
                                   Capacity demand_rate,
                                   const SideArrayOptions& options = {},
                                   std::uint64_t* maxflow_calls = nullptr);

/// The same array in its rank-ordered resting form (see SlabMaskTable):
/// what BottleneckArtifacts carries and the slab fold consumes with unit
/// stride. Identical sweep, identical counters; only the output
/// permutation differs.
SlabMaskTable build_side_array_slab(const SideProblem& side,
                                    const AssignmentSet& assignments,
                                    Capacity demand_rate,
                                    const SideArrayOptions& options,
                                    SideArrayStats* stats,
                                    const ExecContext* ctx = nullptr);

/// A side array folded into a sparse probability distribution over
/// realized-assignment masks: bucket (m, P{configurations realizing
/// exactly the set m}). The accumulation step only needs this. The fold
/// streams the configurations in Gray-rank order, 64 at a time: each
/// slab's probabilities come from the vectorized lane-product kernel
/// (direct per-configuration products, no ratio chain, no drift) and
/// accumulate into a flat open-addressed bucket table. The per-lane IEEE
/// operation sequence is fixed — blend-select then multiply, edges
/// ascending — so the result is bitwise identical across the scalar and
/// AVX2 kernel paths and across all sweep strategies.
struct MaskDistribution {
  std::vector<std::pair<Mask, double>> buckets;
  double total = 0.0;  ///< sum of bucket probabilities (== 1 up to rounding)
};

MaskDistribution bucket_side_array(const SideProblem& side,
                                   const std::vector<Mask>& array);

/// Same fold under caller-supplied failure probabilities (one per side
/// link, indexed by side.view edge id) — the probability-only "what-if"
/// path: the cached mask array is reused, only the fold reruns.
MaskDistribution bucket_side_array(const SideProblem& side,
                                   const std::vector<Mask>& array,
                                   std::span<const double> failure_probs);

/// Slab-form folds: same buckets, same insertion order, same Kahan
/// total — bitwise identical to the config-indexed overloads — but the
/// mask reads are unit-stride and the per-configuration probabilities
/// come 64 at a time from the vectorized lane-product kernel.
MaskDistribution bucket_side_array(const SideProblem& side,
                                   const SlabMaskTable& table);
MaskDistribution bucket_side_array(const SideProblem& side,
                                   const SlabMaskTable& table,
                                   std::span<const double> failure_probs);

/// Point evaluator for single side configurations: which assignments does
/// ONE failure configuration realize? Used by the sampling-based hybrid
/// estimator, which cannot afford the full 2^|E_side| array. Reuses its
/// residual graph and solver across calls. The referenced side problem
/// and assignment set must outlive the evaluator.
class SideMaskEvaluator {
 public:
  SideMaskEvaluator(const SideProblem& side, const AssignmentSet& assignments,
                    Capacity demand_rate,
                    MaxFlowAlgorithm algorithm = MaxFlowAlgorithm::kDinic);
  ~SideMaskEvaluator();
  SideMaskEvaluator(SideMaskEvaluator&&) noexcept;
  SideMaskEvaluator& operator=(SideMaskEvaluator&&) = delete;

  /// Mask of assignments the given alive-link configuration realizes.
  Mask realized(Mask config);

  std::uint64_t maxflow_calls() const noexcept { return calls_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint64_t calls_ = 0;
};

}  // namespace streamrel
