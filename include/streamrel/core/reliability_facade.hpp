#pragma once
// One-call public API: picks a bottleneck partition automatically and
// falls back to the exact baselines when the graph has no exploitable
// bottleneck. Dispatch goes through the EngineRegistry (core/engine.hpp);
// every engine runs on an ExecContext, so a deadline or cancellation
// degrades the answer to a SolveStatus + reliability bounds instead of
// hanging or throwing.

#include <optional>
#include <string_view>

#include "streamrel/core/bottleneck_algorithm.hpp"
#include "streamrel/core/hybrid_mc.hpp"
#include "streamrel/cuts/partition_search.hpp"
#include "streamrel/graph/delta.hpp"
#include "streamrel/reliability/bounds.hpp"
#include "streamrel/reliability/factoring.hpp"
#include "streamrel/reliability/frontier.hpp"
#include "streamrel/reliability/naive.hpp"
#include "streamrel/util/exec_context.hpp"

namespace streamrel {

enum class Method {
  kAuto,        ///< bottleneck > frontier (rate-1) > naive > factoring
  kBottleneck,  ///< bottleneck decomposition (throws if no partition found)
  kNaive,
  kFactoring,
  kFrontier,   ///< frontier connectivity DP (rate-1, undirected only)
  kHybridMc,   ///< bottleneck/Monte-Carlo estimator (never auto-picked:
               ///< the estimate is unbiased but not exact)
};

std::string_view to_string(Method method) noexcept;

struct SolveOptions {
  Method method = Method::kAuto;
  /// kAuto preprocessing: apply series/parallel/prune reductions first
  /// for rate-1 undirected demands (exact; often collapses sparse
  /// overlays outright).
  bool use_reductions = true;
  /// Wall-clock budget in milliseconds (0 = none). On expiry the solve
  /// returns status kDeadlineExpired with reliability bounds attached.
  /// Ignored when `context` is set.
  double deadline_ms = 0.0;
  /// Cap on OpenMP threads (0 = library default). Telemetry counters do
  /// not depend on this value. Ignored when `context` is set.
  int max_threads = 0;
  /// Caller-owned execution context (non-owning, may be null): share one
  /// deadline or cancellation token across several solves; each solve's
  /// telemetry is merged into context->telemetry on return. When set it
  /// REPLACES deadline_ms / max_threads above.
  ExecContext* context = nullptr;
  /// Advisory delta hint (non-owning, may be null): the instance is a
  /// small perturbation of a previously solved structure. kAuto anchors
  /// its chain on a delta-aware engine (Engine::delta_aware()) when the
  /// hint is small; QuerySession attaches one automatically after
  /// apply_delta. Never changes any answer, only the work performed.
  const DeltaSolveHint* delta_hint = nullptr;
  PartitionSearchOptions partition_search{};
  BottleneckOptions bottleneck{};
  NaiveOptions naive{};
  FactoringOptions factoring{};
  FrontierOptions frontier{};
  HybridMonteCarloOptions hybrid{};
  BoundsOptions bounds{};
};

struct SolveReport {
  ReliabilityResult result;
  Method method_used = Method::kAuto;
  /// Name of the engine that produced the result ("reductions" when the
  /// rate-1 preprocessing solved the instance outright).
  std::string_view engine;
  /// The partition the decomposition ran on, when it did.
  std::optional<PartitionChoice> partition;
  /// Links removed by the rate-1 reduction preprocessing (0 = none ran).
  int links_reduced = 0;
  /// Cheap two-sided envelope, attached whenever result.status is not
  /// kExact: the best available answer after a deadline/budget stop.
  /// result.reliability then holds the engine's partial accumulation (a
  /// lower bound for the sweep engines, 0 for the decomposition).
  std::optional<ReliabilityBounds> bounds;

  bool exact() const noexcept { return result.status == SolveStatus::kExact; }
};

/// THE public solve entry point. Reliability of `net` with respect to
/// `demand` — exact unless a deadline/budget stop (status in the report)
/// or Method::kHybridMc. Runs on options.context when set; otherwise
/// builds an ExecContext from options.deadline_ms / options.max_threads.
///
/// Error contract: usage errors (bad demand, no engine for the method,
/// unmet structural preconditions of an explicitly requested method)
/// throw std::invalid_argument BEFORE any solving work; deadline, budget
/// and cancellation stops NEVER throw — they come back as
/// report.result.status != kExact with reliability bounds attached.
SolveReport compute_reliability(const FlowNetwork& net,
                                const FlowDemand& demand,
                                const SolveOptions& options = {});

}  // namespace streamrel
