#pragma once
// Sub-stream assignments to bottleneck links (paper §III-B).
//
// An assignment distributes the d unit sub-streams over the k bottleneck
// links: a k-tuple (a_1, ..., a_k) with sum a_i = d and a_i bounded by
// link capacity. The paper's model (kForwardOnly) uses non-negative a_i —
// every sub-stream crosses from the source side to the sink side. Our
// kSigned extension allows negative entries (net back-flow T -> S on that
// link, possible and sometimes necessary in directed graphs); by flow
// decomposition across the bipartition, signed assignments make the
// decomposition exact for every input.

#include <vector>

#include "streamrel/cuts/bottleneck.hpp"
#include "streamrel/graph/flow_network.hpp"
#include "streamrel/util/bitops.hpp"

namespace streamrel {

enum class AssignmentMode {
  kForwardOnly,  ///< the paper's model: a_i >= 0
  kSigned,       ///< net usage in [-c, +c]; exact for directed graphs
  kAuto,         ///< forward-only unless a crossing arc points T -> S
};

/// One assignment: net sub-streams each bottleneck link carries S -> T.
struct Assignment {
  std::vector<Capacity> usage;  ///< one entry per crossing edge

  /// Definition 1 support: the bottleneck links this assignment needs
  /// alive (non-zero usage), as a mask over crossing-edge positions.
  Mask support() const noexcept {
    Mask m = 0;
    for (std::size_t i = 0; i < usage.size(); ++i) {
      if (usage[i] != 0) m |= bit(static_cast<int>(i));
    }
    return m;
  }
};

/// The paper's set D, in lexicographically ascending order (matching the
/// listing of Example 1).
struct AssignmentSet {
  std::vector<Assignment> assignments;
  AssignmentMode mode = AssignmentMode::kForwardOnly;

  int size() const noexcept { return static_cast<int>(assignments.size()); }

  /// Assignments indexable by mask bits requires |D| <= 63.
  bool fits_mask() const noexcept { return size() <= kMaxMaskBits; }

  /// Mask over assignments supported by the alive bottleneck links
  /// `alive_bottleneck` (bit i = crossing edge i alive): assignment j is
  /// included iff support(j) is a subset of the alive set. This is the
  /// paper's D_{E''} classification (Example 5).
  Mask supported_by(Mask alive_bottleneck) const;
};

struct AssignmentOptions {
  AssignmentMode mode = AssignmentMode::kAuto;
  /// Enumeration guard: |D| beyond this throws (the algorithm needs one
  /// mask bit per assignment, and the paper assumes constant d and k).
  int max_assignments = kMaxMaskBits;
};

/// Enumerates D for demand rate d over the partition's crossing links.
/// Per-link bounds come from capacities and orientation: a directed
/// crossing arc can only carry usage in its own direction; an undirected
/// link carries up to its capacity either way (backward only in kSigned).
/// Throws std::invalid_argument if |D| would exceed max_assignments.
AssignmentSet enumerate_assignments(const FlowNetwork& net,
                                    const BottleneckPartition& partition,
                                    Capacity d,
                                    const AssignmentOptions& options = {});

/// The mode kAuto resolves to for this partition: kSigned iff some
/// directed crossing arc points T -> S (back-flow can then matter).
AssignmentMode resolve_assignment_mode(const FlowNetwork& net,
                                       const BottleneckPartition& partition,
                                       AssignmentMode requested);

}  // namespace streamrel
