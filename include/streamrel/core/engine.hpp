#pragma once
// The Engine interface + registry the facade dispatches through.
//
// Each reliability algorithm is wrapped as an Engine: a named, uniformly
// shaped solver that takes (network, demand, SolveOptions, ExecContext)
// and returns a SolveReport. The registry holds one engine per Method;
// compute_reliability resolves the requested method (or walks the kAuto
// fallback chain) against it instead of hard-coding a switch, so new
// algorithms plug in without touching the facade.
//
// Error taxonomy, uniform across engines:
//  * usage errors (bad demand, unmet structural preconditions, no usable
//    partition for an explicit kBottleneck) throw std::invalid_argument;
//  * deadline / cancellation / work-budget stops NEVER throw out of an
//    engine — they come back as SolveReport.result.status != kExact.

#include <memory>
#include <string_view>
#include <vector>

#include "streamrel/core/reliability_facade.hpp"

namespace streamrel {

class Engine {
 public:
  virtual ~Engine() = default;

  virtual std::string_view name() const noexcept = 0;
  virtual Method method() const noexcept = 0;

  /// Cheap structural precondition used by the kAuto chain (a true here
  /// does not guarantee solve() succeeds — e.g. the bottleneck engine
  /// may still find no worthwhile partition).
  virtual bool applicable(const FlowNetwork& net,
                          const FlowDemand& demand) const = 0;

  /// True when this engine's arithmetic can exploit a DeltaSolveHint
  /// (SolveOptions::delta_hint): its decomposition artifacts survive
  /// small capacity/probability deltas, so a warm serving layer can
  /// re-accumulate instead of re-deriving. The kAuto chain anchors on a
  /// delta-aware engine when a small-delta hint is present. Purely a
  /// routing property — answers never depend on it.
  virtual bool delta_aware() const noexcept { return false; }

  /// `ctx` may be null (no deadline, no cancellation, default threads).
  virtual SolveReport solve(const FlowNetwork& net, const FlowDemand& demand,
                            const SolveOptions& options,
                            const ExecContext* ctx) const = 0;
};

/// One engine per Method, seeded with the five built-ins (bottleneck,
/// naive, factoring, frontier, hybrid MC). Registering an engine for an
/// already-covered Method replaces the previous one.
class EngineRegistry {
 public:
  /// The process-wide registry the facade dispatches through.
  static EngineRegistry& instance();

  void register_engine(std::unique_ptr<Engine> engine);

  /// nullptr when no engine covers `method` (kAuto has no engine of its
  /// own — it is a policy over the others).
  const Engine* find(Method method) const noexcept;

  /// Throws std::invalid_argument when no engine covers `method`.
  const Engine& require(Method method) const;

  /// All registered engines, in registration order.
  std::vector<const Engine*> engines() const;

 private:
  EngineRegistry();
  std::vector<std::unique_ptr<Engine>> engines_;
};

}  // namespace streamrel
