#pragma once
// QuerySession — the stateful serving layer: many reliability queries
// against ONE overlay network, amortizing the exponential structural work
// across them.
//
// The side arrays (§III-C) record which assignments are feasible in each
// link-failure configuration — a property of topology and capacities
// only; link probabilities p(e) enter solely in the final accumulation
// step. A session therefore caches three layers of structural artifacts:
//
//   1. bottleneck decompositions, keyed by (s, t) + search options;
//   2. assignment sets, keyed by (cut, d);
//   3. side-array mask tables, keyed by (side subgraph, cut capacities,
//      d) — LRU-bounded, since one table is 2^|E_side| masks. Tables
//      rest in slab form (SlabMaskTable, Gray-rank order), the layout
//      the vectorized fold consumes with unit stride.
//
// A probability-only "what-if" query (perturbed p(e) after churn, same
// topology) then skips straight to the accumulation: two slab folds
// (64 configuration probabilities per lane-product kernel call) plus
// 2^k inclusion–exclusion terms, no max-flow.
//
// Invalidation is CUT-SCOPED, decided per edit class × artifact layer:
//
//   * probability edits flush nothing — they overlay the pinned snapshot
//     via with_failure_prob, which preserves the structure id, so "this
//     cache entry is still valid" is literally a structure-identity check;
//   * capacity edits (apply_delta / set_capacity) keep every partition
//     (candidate cuts are capacity-independent; their stats are cheaply
//     re-analyzed), keep assignment sets whose crossing was not touched,
//     and classify each mask-table entry by WHERE the touched edges fall:
//     a touch in the crossing drops the entry and its assignment set; a
//     touch confined to one side drops only that side's array — the other
//     side is SALVAGED and adopted verbatim on the next rebuild, skipping
//     half the exponential sweep;
//   * topology edits flush all three layers (the old shape is dead).
//
// The successor snapshot comes from CompiledNetwork::apply_delta — CSR
// patches sharing untouched blocks — and each capacity/probability delta
// leaves a DeltaSolveHint that subsequent solves forward to the engine
// layer. Telemetry splits invalidation outcomes into full / partial /
// survived per-entry counters.
//
// Results are bitwise-identical to a cold compute_reliability call on
// the same network — the session reuses the facade's arithmetic, it
// never approximates.
//
// Thread-safety: one session serves one thread at a time; concurrent
// READ access to the cached artifacts is safe and BatchEvaluator uses it
// to accumulate independent queries in parallel under the ExecContext
// thread policy.

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <tuple>
#include <vector>

#include "streamrel/core/bottleneck_algorithm.hpp"
#include "streamrel/core/reliability_facade.hpp"
#include "streamrel/cuts/partition_search.hpp"

namespace streamrel {

/// One probability override: this query sees `edge` failing with
/// probability `failure_prob` instead of the session network's value.
struct ProbOverride {
  EdgeId edge = kInvalidEdge;
  double failure_prob = 0.0;
};

struct QueryCacheOptions {
  /// LRU bound on cached mask-table entries (one entry holds both side
  /// arrays of one decomposition at one demand).
  std::size_t max_mask_tables = 64;
  /// Master switch; disabled sessions behave like the plain facade.
  bool enabled = true;
};

/// QuerySession::apply_delta result: what the delta did to the session's
/// network (id translations, as in DeltaApplication) and to its caches
/// (per-entry invalidation outcome).
struct DeltaOutcome {
  DeltaClass applied = DeltaClass::kProbabilityOnly;
  /// Old id -> new id; kInvalidNode / kInvalidEdge for removed entities.
  /// Identity maps for non-topology deltas.
  std::vector<NodeId> node_map;
  std::vector<EdgeId> edge_map;
  /// Mask-table entries dropped outright (crossing touched, both sides
  /// touched, or a topology flush).
  std::uint64_t entries_full = 0;
  /// Entries dropped with one side array salvaged for the next rebuild.
  std::uint64_t entries_partial = 0;
  /// Entries that remained valid (probability-only deltas).
  std::uint64_t entries_survived = 0;
  /// Partition entries kept (always all of them for non-topology deltas).
  std::uint64_t partitions_survived = 0;
  /// Assignment sets kept (crossing untouched).
  std::uint64_t assignments_survived = 0;
};

class QuerySession {
 public:
  /// The session owns its copy of the network; edit it through the
  /// session so the caches see every change.
  explicit QuerySession(FlowNetwork net, QueryCacheOptions cache = {});

  /// Warm restore: adopts a pre-compiled snapshot CONSISTENT with `net`
  /// (the persist layer's replay product — builder and snapshot replayed
  /// through the same deltas), skipping the lazy first compile so a
  /// restored session answers its first query against the exact restored
  /// arrays. Throws std::invalid_argument when net and snapshot disagree
  /// on node or edge count.
  QuerySession(FlowNetwork net,
               std::shared_ptr<const CompiledNetwork> warm_snapshot,
               QueryCacheOptions cache = {});

  const FlowNetwork& network() const noexcept { return net_; }

  /// The DOCUMENTED alias for editing the network outside the session's
  /// edit methods. After editing through it, call invalidate(scope) with
  /// the strongest edit class performed — a probability-only scope keeps
  /// every structural artifact (the session re-syncs its snapshot's
  /// probability columns in place).
  FlowNetwork& mutable_network() noexcept { return net_; }

  // --- edits -------------------------------------------------------

  /// Probability edit: structural caches SURVIVE (masks are
  /// probability-independent); only subsequent accumulations change.
  void set_failure_prob(EdgeId id, double p);
  /// Capacity edit: cut-scoped invalidation (equivalent to apply_delta
  /// with a single capacity edit).
  void set_capacity(EdgeId id, Capacity c);
  /// Topology edit: invalidates every structural cache layer.
  EdgeId add_edge(NodeId u, NodeId v, Capacity capacity, double failure_prob,
                  EdgeKind kind);

  /// Applies one edit batch to the session network and snapshot (via
  /// CompiledNetwork::apply_delta) and invalidates the caches CUT-SCOPED:
  /// see the header comment for the edit class × artifact layer matrix.
  /// Atomic: an invalid delta throws std::invalid_argument and leaves
  /// network and caches untouched. Subsequent solves carry a
  /// DeltaSolveHint describing the delta until the next edit.
  DeltaOutcome apply_delta(const NetworkDelta& delta);

  /// Explicit invalidation after editing through an alias
  /// (mutable_network()). `scope` is the strongest edit class performed:
  ///  * kProbabilityOnly — structural artifacts all SURVIVE; the pinned
  ///    snapshot's probability columns are re-synced from the network
  ///    (same structure id), so this is the documented fast path for
  ///    probability-overlay edits through an alias;
  ///  * kCapacityOnly / kTopology — the touched-edge set is unknown, so
  ///    the session flushes every structural layer (use apply_delta for
  ///    scoped invalidation).
  /// An alias edit that changed the edge count is treated as kTopology
  /// regardless of the declared scope.
  void invalidate(DeltaClass scope = DeltaClass::kTopology);

  // --- queries -----------------------------------------------------

  /// Same contract and bitwise-same answer as compute_reliability on
  /// network(), but served through the caches when the method resolves
  /// to the bottleneck decomposition.
  SolveReport solve(const FlowDemand& demand, const SolveOptions& options = {});

  /// What-if form: `overrides` replace failure probabilities for THIS
  /// query only; the session network is left untouched.
  SolveReport solve(const FlowDemand& demand, const SolveOptions& options,
                    std::span<const ProbOverride> overrides);

  // --- observability -----------------------------------------------

  /// Session-lifetime tree: query counters/timers at the root, cache
  /// hit/miss/evict counters under the "cache" child (one grandchild per
  /// layer), every query's solve telemetry merged in query order under
  /// "solves". Deterministic given the query sequence.
  const Telemetry& telemetry() const noexcept { return telemetry_; }

  std::uint64_t cache_hits() const;        ///< total across the three layers
  std::uint64_t cache_misses() const;      ///< total across the three layers
  std::uint64_t cache_evictions() const;   ///< mask-table LRU evictions
  std::uint64_t cache_invalidations() const;  ///< invalidation EVENTS
  /// Per-entry invalidation outcomes (see DeltaOutcome).
  std::uint64_t cache_invalidations_full() const;
  std::uint64_t cache_invalidations_partial() const;
  std::uint64_t cache_survived() const;

  // --- cache budget (daemon memory-cap rebalancing) ----------------

  /// Re-bounds the mask-table LRU, evicting (oldest first, counted as
  /// kCacheEvictions) until the cache fits. The session registry calls
  /// this when tenants join or leave the global memory cap.
  void set_cache_budget(std::size_t max_mask_tables);
  std::size_t cache_budget() const { return cache_options_.max_mask_tables; }
  std::size_t cached_mask_tables() const { return lru_.size(); }
  /// Resident bytes of the cached slab mask tables (the dominant cache
  /// memory), for budget-vs-usage gauges in the daemon's metrics.
  std::size_t cached_mask_bytes() const {
    std::size_t bytes = 0;
    for (const auto& [key, entry] : lru_) {
      bytes += (entry->artifacts.array_s.by_rank.size() +
                entry->artifacts.array_t.by_rank.size()) *
               sizeof(Mask);
    }
    return bytes;
  }

 private:
  friend class BatchEvaluator;
  friend class TenantSession;

  /// (s, t, candidate index, d, assignment mode, assignment cap): one
  /// cached decomposition instance.
  using ArtifactKey =
      std::tuple<NodeId, NodeId, int, Capacity, AssignmentMode, int>;
  using AssignmentKey = ArtifactKey;
  using PartitionKey = std::pair<NodeId, NodeId>;

  struct ArtifactEntry {
    PartitionChoice choice;
    BottleneckArtifacts artifacts;
    /// Structure identity of the snapshot the artifacts were built
    /// against; a hit is only served when it matches the session's
    /// current snapshot.
    std::uint64_t structure_id = 0;
  };
  struct PartitionEntry {
    PartitionSearchOptions options_used;
    std::vector<PartitionChoice> candidates;
  };
  using LruList =
      std::list<std::pair<ArtifactKey, std::shared_ptr<const ArtifactEntry>>>;

  /// A query after the structural (cache-served) phase: either pinned
  /// artifacts ready for the probability-only accumulation, an
  /// interrupted build, or "not on the bottleneck path" (facade
  /// fallback). BatchEvaluator prepares all queries serially, then
  /// accumulates the ready ones concurrently — the shared_ptr pins keep
  /// entries alive across LRU evictions.
  struct PreparedQuery {
    std::shared_ptr<const ArtifactEntry> entry;  ///< set when ready
    std::optional<PartitionChoice> partition;
    SolveStatus stop = SolveStatus::kExact;  ///< non-exact: interrupted
    bool bottleneck_path = false;
  };

  /// True when this query shape can be served from the caches without
  /// diverging from the facade's answer.
  bool cacheable(const FlowDemand& demand, const SolveOptions& options) const;

  const PartitionEntry& partition_candidates(const FlowDemand& demand,
                                             const SolveOptions& options,
                                             const ExecContext* ctx);

  /// Layers 2+3: cached assignments + mask tables for one candidate.
  /// Returns null when the build was interrupted (status in *stop); the
  /// unusable entry is not cached. Throws std::invalid_argument on
  /// assignment blow-up exactly like reliability_bottleneck.
  std::shared_ptr<const ArtifactEntry> artifact_entry(
      const FlowDemand& demand, int candidate_index,
      const PartitionChoice& choice, const SolveOptions& options,
      const ExecContext* ctx, SolveStatus* stop);

  /// The structural phase: cache lookups + any cold builds. Mutates the
  /// caches; call from one thread. Throws std::invalid_argument when an
  /// explicit kBottleneck request finds no usable partition.
  PreparedQuery prepare_cached(const FlowDemand& demand,
                               const SolveOptions& options, ExecContext& ctx);

  /// The probability-only phase: gather + override + accumulate. Does
  /// NOT touch session state — safe to run concurrently for distinct
  /// prepared queries. Never throws once overrides are validated.
  SolveReport finish_prepared(const PreparedQuery& prepared,
                              const SolveOptions& options,
                              std::span<const ProbOverride> overrides,
                              const ExecContext* ctx) const;

  /// Facade fallback with overrides applied to (and reverted from) the
  /// session network.
  SolveReport solve_fallback(const FlowDemand& demand,
                             const SolveOptions& options,
                             std::span<const ProbOverride> overrides,
                             ExecContext& ctx);

  /// Throws std::invalid_argument on an out-of-range edge or a
  /// probability outside [0, 1).
  void validate_overrides(std::span<const ProbOverride> overrides) const;

  /// reliability_bounds under the query's overridden probabilities (the
  /// network is edited and restored around the call).
  ReliabilityBounds bounds_with_overrides(
      const FlowDemand& demand, const BoundsOptions& options,
      std::span<const ProbOverride> overrides);

  BottleneckProbabilities gather_probs(
      const BottleneckPartition& partition,
      const BottleneckArtifacts& artifacts,
      std::span<const ProbOverride> overrides) const;

  /// A side array rescued from a partially invalidated entry, plus the
  /// crossing-edge list of the partition it belongs to (needed to decide
  /// whether a LATER delta kills the salvage before it is consumed).
  struct SalvagedSide {
    SideReuse reuse;
    std::vector<EdgeId> crossing_edges;
  };

  void bump_epoch();
  /// Cut-scoped invalidation for a capacity-only delta: classifies every
  /// cached mask entry by where `touched` falls (side s / side t /
  /// crossing), drops or salvages accordingly, keeps partitions (stats
  /// re-analyzed) and uncrossed assignment sets. Fills the entry counters
  /// of `out`.
  void invalidate_capacity_scoped(std::span<const EdgeId> touched,
                                  DeltaOutcome& out);
  Telemetry& layer_counters(std::string_view layer);

  /// The session's frozen snapshot, minted lazily on first use.
  /// Probability edits keep it (overlaying via with_failure_prob, which
  /// preserves the structure id); capacity/topology edits drop it so the
  /// next query compiles a fresh structure.
  const std::shared_ptr<const CompiledNetwork>& snapshot();

  FlowNetwork net_;
  std::shared_ptr<const CompiledNetwork> snapshot_;
  QueryCacheOptions cache_options_;
  Telemetry telemetry_;

  std::map<PartitionKey, PartitionEntry> partitions_;
  std::map<AssignmentKey, std::shared_ptr<const AssignmentSet>> assignments_;
  LruList lru_;
  std::map<ArtifactKey, LruList::iterator> mask_index_;
  /// Negative cache: candidates that failed structurally (assignment
  /// blow-up, oversized side) — deterministic per epoch, so the failed
  /// enumeration is never re-attempted on warm queries.
  std::set<ArtifactKey> failed_;
  /// Sides salvaged by cut-scoped invalidation, consumed (moved from) by
  /// the next rebuild of the same key. salvage_s_ holds reusable SOURCE
  /// sides, salvage_t_ reusable sink sides.
  std::map<ArtifactKey, SalvagedSide> salvage_s_;
  std::map<ArtifactKey, SalvagedSide> salvage_t_;
  /// Hint describing the latest delta; attached to solves (when the
  /// caller did not set options.delta_hint) until the next edit.
  std::optional<DeltaSolveHint> pending_hint_;
};

}  // namespace streamrel
