#pragma once
// Shared-risk link groups (SRLGs): correlated failures the independent
// per-link model cannot express. Deployed overlays have them everywhere —
// peering links through one physical conduit, sub-stream trees relayed by
// one NAT box, links of one ISP failing together during an outage.
//
// Model: group g fails independently with probability pi_g; a link is
// usable iff it survives its OWN failure draw AND every group containing
// it survives. Exact computation conditions on the 2^|G| group states
// (constant for constant |G|, in the spirit of the paper's bottleneck
// conditioning): links of failed groups are forced down by zeroing their
// capacity, and the conditional reliability is solved by the configured
// exact method.

#include <vector>

#include "streamrel/core/reliability_facade.hpp"

namespace streamrel {

struct SharedRiskGroup {
  std::vector<EdgeId> edges;
  double failure_prob = 0.0;  ///< in [0, 1)
};

struct SharedRiskResult {
  double reliability = 0.0;
  std::uint64_t group_states = 0;   ///< 2^|G| conditionings evaluated
  std::uint64_t maxflow_calls = 0;  ///< across all conditional solves
};

/// Exact reliability under independent link failures PLUS shared-risk
/// group failures. At most 20 groups (2^|G| conditionings).
SharedRiskResult reliability_with_shared_risks(
    const FlowNetwork& net, const FlowDemand& demand,
    const std::vector<SharedRiskGroup>& groups,
    const SolveOptions& options = {});

}  // namespace streamrel
