#pragma once
// Accumulation of side probabilities (paper §IV, Example 6, Table I).
//
// Given the two side distributions over realized-assignment masks and the
// set of assignments supported by an alive-bottleneck configuration E''
// (Definition 1), compute
//
//   r_{E''} = P( exists allowed assignment realized by BOTH sides )
//
// where the two sides are independent. Three algebraically equivalent
// strategies:
//
//   * kPaperInclusionExclusion — the paper's ACCUMULATION procedure
//     verbatim: for every non-empty subset X of allowed assignments,
//     p_X = P_s(realizes all of X) * P_t(realizes all of X), combined by
//     inclusion–exclusion. Cost 2^|D_{E''}| * buckets.
//   * kZetaTransform — complement counting: P(no common assignment) =
//     sum over source buckets of P_t(mask disjoint from it), where the
//     disjointness sums come from one subset-zeta transform of the sink
//     distribution. Cost 2^|D_{E''}| + buckets.
//   * kBucketProduct — direct double sum over distinct bucket pairs with
//     an intersection test. Cost |buckets_s| * |buckets_t|, no 2^|D|
//     factor, best when sides have few distinct masks.

#include "streamrel/core/side_array.hpp"
#include "streamrel/util/bitops.hpp"

namespace streamrel {

enum class AccumulationStrategy {
  kPaperInclusionExclusion,
  kZetaTransform,
  kBucketProduct,
  kAuto,  ///< zeta when |allowed| is small, bucket product otherwise
};

/// P(exists j in `allowed` with j realized by both sides).
/// `allowed` is a mask over assignment indices.
double joint_success_probability(const MaskDistribution& source_side,
                                 const MaskDistribution& sink_side,
                                 Mask allowed,
                                 AccumulationStrategy strategy =
                                     AccumulationStrategy::kAuto);

}  // namespace streamrel
