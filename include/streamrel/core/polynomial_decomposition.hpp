#pragma once
// Reliability POLYNOMIAL through the bottleneck decomposition: the
// coefficient counts N_j (number of admitting configurations with
// exactly j failed links) factor across the partition just like the
// probabilities do — side arrays are bucketed by (realized mask, failure
// count) and the inclusion-exclusion accumulation becomes a counting
// convolution. One decomposition run then answers R(p) for EVERY uniform
// failure probability p, on networks where the naive polynomial
// (2^|E| enumeration) is out of reach.

#include "streamrel/core/bottleneck_algorithm.hpp"
#include "streamrel/reliability/polynomial.hpp"

namespace streamrel {

/// Exact reliability polynomial of the network w.r.t. the demand,
/// computed over `partition`. Requirements match reliability_bottleneck
/// (sides <= 63 links, |D| <= 63). Probabilities stored in the network
/// are ignored — the polynomial is a function of topology, capacities,
/// and the demand only.
ReliabilityPolynomial polynomial_bottleneck(
    const FlowNetwork& net, const FlowDemand& demand,
    const BottleneckPartition& partition,
    const BottleneckOptions& options = {});

}  // namespace streamrel
