#pragma once
// Bit-parallel slab layout over side failure configurations.
//
// The side-array sweep (§III-C) and the probability fold both walk the
// 2^|E_side| configurations in Gray-code rank order. A SLAB is a block of
// 64 consecutive ranks, stored TRANSPOSED: one uint64_t per side edge
// whose bit L answers "is edge e alive in the configuration of rank
// base + L?". In this layout one word operation touches 64
// configurations at once — a certificate check becomes a handful of ANDs
// and a feasibility class like connectivity is decided by a 64-lane BFS.
//
// The fill is O(|E_side|) per slab, not O(64 |E_side|), thanks to a Gray
// identity: for a 64-aligned base, base + L splits XOR-disjointly into
// base | L, so
//
//   gray_code(base + L) == gray_code(base) ^ gray_code(L).
//
// gray_code(L) for L < 64 only occupies bits 0..5, so the lane pattern of
// edge e — bit L set iff bit e of gray_code(L) — is a CONSTANT word
// low_pattern(e) (zero for e >= 6), and the slab word of edge e is that
// pattern XOR-broadcast with bit e of gray_code(base):
//
//   word(e) = low_pattern(e) ^ (bit e of gray_code(base) ? ~0 : 0).
//
// SlabMaskTable is the matching rank-ordered resting form of a side
// array: by_rank[r] holds the realized-assignment mask of configuration
// gray_code(r), so the fold reads it with unit stride, slab by slab.

#include <cstdint>
#include <span>
#include <vector>

#include "streamrel/util/bitops.hpp"

namespace streamrel {

/// Transposed 64-configuration window over up to kMaxMaskBits side edges.
class BitSlabs {
 public:
  /// One lane word per edge; all words start at zero (no slab filled).
  explicit BitSlabs(int num_edges);

  /// Loads the slab of ranks [base_rank, base_rank + 64). Requires
  /// base_rank % 64 == 0 (throws otherwise). Callers working a partial
  /// slab (fewer than 64 ranks remain) mask the high lanes off
  /// themselves — the undecided-lane masks of the sweep already do.
  void fill(Mask base_rank);

  int num_edges() const noexcept { return static_cast<int>(words_.size()); }

  /// Lane word of edge e: bit L set iff e is alive at rank base + L.
  std::uint64_t word(int e) const {
    return words_[static_cast<std::size_t>(e)];
  }
  std::span<const std::uint64_t> words() const noexcept { return words_; }

  /// The constant lane pattern of edge e over gray_code(0..63) — exposed
  /// so tests can cross-check fill() against the per-lane definition.
  static std::uint64_t low_pattern(int e) noexcept;

 private:
  std::vector<std::uint64_t> words_;
};

/// A side array at rest, in Gray-code rank order: by_rank[r] is the mask
/// of assignments realized by configuration gray_code(r). Rank order is
/// what every consumer walks (sweeps, folds, slabs), so this is the form
/// QuerySession caches; at_config() serves point lookups through the
/// inverse Gray permutation.
struct SlabMaskTable {
  std::vector<Mask> by_rank;
  int num_links = 0;  ///< |E_side|: by_rank.size() == 2^num_links

  std::size_t size() const noexcept { return by_rank.size(); }
  bool empty() const noexcept { return by_rank.empty(); }
  void clear() noexcept {
    by_rank.clear();
    num_links = 0;
  }

  Mask at_rank(Mask rank) const {
    return by_rank[static_cast<std::size_t>(rank)];
  }
  /// Realized mask of a configuration-value lookup (the historical
  /// config-indexed array's operator[]).
  Mask at_config(Mask config) const {
    return by_rank[static_cast<std::size_t>(gray_rank(config))];
  }

  bool operator==(const SlabMaskTable& other) const = default;
};

/// Permutes a configuration-indexed side array (array[config]) into rank
/// order, and back. Both directions are exact inverses.
SlabMaskTable slab_form(const std::vector<Mask>& config_indexed,
                        int num_links);
std::vector<Mask> config_form(const SlabMaskTable& table);

/// Per-lane configuration probabilities of one slab: for each lane L,
/// the product over edges e of (bit L of words[e] ? 1 - probs[e] :
/// probs[e]), multiplied in ascending edge order. out must hold `lanes`
/// doubles. Dispatches to an AVX2 kernel at runtime when the CPU has it;
/// the portable variant below is the always-scalar reference, and both
/// perform the identical per-lane IEEE operation sequence, so results
/// are bitwise equal — the fold's summation order never depends on the
/// host CPU.
void lane_config_products(std::span<const std::uint64_t> words,
                          std::span<const double> probs, int lanes,
                          double* out);
void lane_config_products_portable(std::span<const std::uint64_t> words,
                                   std::span<const double> probs, int lanes,
                                   double* out);

/// True when lane_config_products resolved to the AVX2 kernel on this
/// host (introspection for benches and tests).
bool lane_kernel_avx2_active() noexcept;

}  // namespace streamrel
