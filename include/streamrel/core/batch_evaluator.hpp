#pragma once
// BatchEvaluator — evaluates a vector of what-if queries against one
// QuerySession in two phases:
//
//   1. PREPARE (serial): each query runs the structural phase through the
//      session caches — partition candidates, assignment sets, side-array
//      mask tables. Later queries hit what earlier ones built, so a batch
//      of probability-only what-ifs pays the exponential cost once.
//   2. ACCUMULATE (parallel): the prepared queries are probability-only
//      Gray-order folds over pinned artifacts — independent, read-only
//      work scheduled across the ExecContext thread policy. Entries stay
//      alive through shared_ptr pins even if the serving LRU evicts them
//      mid-batch.
//
// Queries that cannot be served from the caches (non-bottleneck methods,
// reduction-eligible shapes) fall back to the facade serially; their
// answers are still bitwise-identical to standalone compute_reliability
// calls.
//
// Error contract: invalid queries (bad demand, out-of-range override,
// explicit kBottleneck on a partition-free network) throw
// std::invalid_argument from the serial phases; deadline, budget and
// cancellation stops NEVER throw — they surface as per-query
// SolveStatus values with bounds attached, like the facade.

#include <span>
#include <vector>

#include "streamrel/core/query_session.hpp"

namespace streamrel {

/// One what-if query: a demand plus per-query probability overrides.
/// The session network itself is never modified.
struct WhatIfQuery {
  FlowDemand demand;
  /// Failure-probability substitutions visible to this query only.
  std::vector<ProbOverride> prob_overrides;
  /// Engine hint; kAuto resolves exactly like the facade.
  Method method = Method::kAuto;
  /// Per-query wall-clock budget in ms (0 = none); the effective deadline
  /// is the earlier of this and the whole-batch deadline.
  double deadline_ms = 0.0;
};

struct BatchOptions {
  /// Solve options shared by every query (method is taken from the query;
  /// context/deadline_ms/max_threads are ignored — see below).
  SolveOptions base{};
  /// Wall-clock budget for the whole batch in ms (0 = none). On expiry
  /// the remaining queries return kDeadlineExpired with bounds.
  double deadline_ms = 0.0;
  /// Thread cap for the accumulation phase (0 = library default).
  int max_threads = 0;
  /// Run phase 2 across threads; disable to force fully serial batches
  /// (results are bitwise-identical either way).
  bool parallel_accumulate = true;
  /// Optional progress/ETA sink, shared by every query's ExecContext (see
  /// ExecContext::progress). Null costs nothing.
  std::shared_ptr<ProgressReporter> progress;
};

struct BatchReport {
  /// One report per query, in query order.
  std::vector<SolveReport> reports;
  /// Batch counters (queries, fallback_solves) at the root plus every
  /// query's solve telemetry merged in query order — deterministic across
  /// thread counts given the query sequence.
  Telemetry telemetry;
  /// Number of reports with status kExact.
  int exact_count = 0;
};

class BatchEvaluator {
 public:
  /// The session must outlive the evaluator. Evaluation mutates the
  /// session caches; one batch runs at a time.
  explicit BatchEvaluator(QuerySession& session) : session_(&session) {}

  BatchReport evaluate(std::span<const WhatIfQuery> queries,
                       const BatchOptions& options = {});

 private:
  struct Slot;  ///< per-query state threaded between the phases

  QuerySession* session_;
};

}  // namespace streamrel
