#pragma once
// Per-link importance measures — "which link should the operator fix
// first?". Classical component-importance theory specialized to flow
// reliability:
//
//   Birnbaum importance  I_B(e) = R(e forced up) - R(e forced down)
//                                (= dR / d(1 - p(e)) by pivoting)
//   risk achievement     R(e forced up)   - R
//   risk reduction       R - R(e forced down)
//
// "Forced up" conditions on the link surviving (p(e) := 0); "forced
// down" zeroes its capacity, which removes it from every flow without
// renumbering edges. Computed exactly with the configured solver.

#include <vector>

#include "streamrel/core/reliability_facade.hpp"

namespace streamrel {

struct EdgeImportance {
  EdgeId edge = kInvalidEdge;
  double birnbaum = 0.0;
  double risk_achievement = 0.0;  ///< gain if the link became perfect
  double risk_reduction = 0.0;    ///< loss if the link disappeared
};

/// Importance of every link, computed with two conditioned reliability
/// evaluations per link. `ranked` sorts a copy by descending Birnbaum
/// importance.
std::vector<EdgeImportance> edge_importance(const FlowNetwork& net,
                                            const FlowDemand& demand,
                                            const SolveOptions& options = {});

std::vector<EdgeImportance> ranked_by_birnbaum(
    std::vector<EdgeImportance> importances);

}  // namespace streamrel
