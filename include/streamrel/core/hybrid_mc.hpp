#pragma once
// Hybrid bottleneck/Monte-Carlo estimator — a natural companion to the
// paper's algorithm for networks whose SIDES are too large for the
// 2^|E_side| sweeps: keep the bottleneck structure exact (assignments,
// supporting subsets, inclusion-exclusion over the 2^k bottleneck
// configurations) but estimate each side's realized-assignment-mask
// distribution by sampling side configurations instead of enumerating
// them.
//
// Because the two sides are sampled independently and the accumulation
// is bilinear in the two distributions, the estimator is unbiased:
// E[accumulate(D̂_s, D̂_t)] = accumulate(D_s, D_t) = R. Its variance
// decays as 1/samples, and — unlike plain network-wide Monte Carlo —
// the bottleneck links (often the reliability-critical part) contribute
// NO sampling noise at all.

#include <cstdint>

#include "streamrel/core/bottleneck_algorithm.hpp"

namespace streamrel {

struct HybridMonteCarloOptions {
  std::uint64_t samples_per_side = 20'000;
  std::uint64_t seed = 0xb0771e;
  AssignmentOptions assignments{};
  MaxFlowAlgorithm algorithm = MaxFlowAlgorithm::kDinic;
  AccumulationStrategy accumulation = AccumulationStrategy::kAuto;
};

struct HybridMonteCarloResult {
  double estimate = 0.0;
  /// kExact means the full requested sample size was drawn; on a context
  /// stop the estimate still uses every sample drawn so far (it remains
  /// unbiased, just with higher variance).
  SolveStatus status = SolveStatus::kExact;
  Telemetry telemetry;
  int num_assignments = 0;
  std::uint64_t samples_per_side = 0;  ///< requested per side

  bool exact() const noexcept { return status == SolveStatus::kExact; }
  std::uint64_t maxflow_calls() const {
    return telemetry.counter_or(telemetry_keys::kMaxflowCalls);
  }
  /// Samples actually drawn, summed over both sides.
  std::uint64_t samples() const {
    return telemetry.counter_or(telemetry_keys::kSamples);
  }
};

/// Unbiased reliability estimate over `partition`. Each side may have up
/// to 63 links (mask-representable) — which covers the whole range where
/// exact side sweeps (2^|E_side|) are infeasible but the bottleneck
/// structure is still worth exploiting.
HybridMonteCarloResult reliability_bottleneck_hybrid(
    const FlowNetwork& net, const FlowDemand& demand,
    const BottleneckPartition& partition,
    const HybridMonteCarloOptions& options = {},
    const ExecContext* ctx = nullptr);

}  // namespace streamrel
