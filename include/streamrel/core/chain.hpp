#pragma once
// Chain decomposition — the natural extension of the paper's two-component
// algorithm to a SEQUENCE of bottleneck cuts (the paper's future-work
// direction): the network is layered
//
//   s in L_0 | B_0 | L_1 | B_1 | ... | B_{m-1} | L_m contains t
//
// with every edge internal to a layer or crossing one boundary B_b.
// Each boundary gets its own assignment set D_b; a middle layer's failure
// configuration realizes a RELATION between incoming and outgoing
// assignments (which (a, a') pairs it can route); the overall reliability
// propagates a distribution over "reachable assignment subsets" left to
// right, filtering through each boundary's 2^{k_b} link configurations —
// transfer-matrix style — and finishes against the last layer's array.
// Exact, and exponential only in the largest layer.

#include <vector>

#include "streamrel/core/assignments.hpp"
#include "streamrel/reliability/types.hpp"

namespace streamrel {

struct ChainOptions {
  AssignmentOptions assignments{};
  MaxFlowAlgorithm algorithm = MaxFlowAlgorithm::kDinic;
};

/// Exact reliability of a layered network. `layer[n]` gives node n's
/// layer index in [0, num_layers); layers must be non-empty, the demand
/// source must sit in layer 0 and the sink in the last layer, and every
/// edge must be internal to a layer or join consecutive layers. Per
/// boundary, |D_b| and |D_{b-1}| * |D_b| must both fit in 63 bits.
ReliabilityResult reliability_chain(const FlowNetwork& net,
                                    const FlowDemand& demand,
                                    const std::vector<int>& layer,
                                    const ChainOptions& options = {},
                                    const ExecContext* ctx = nullptr);

/// Convenience: derives layers from a list of disjoint cut edge sets
/// ordered from the source side to the sink side. Returns the per-node
/// layer vector. Throws if the cuts do not induce a valid layering.
std::vector<int> layers_from_cuts(
    const FlowNetwork& net, NodeId s, NodeId t,
    const std::vector<std::vector<EdgeId>>& ordered_cuts);

}  // namespace streamrel
