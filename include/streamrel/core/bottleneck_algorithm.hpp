#pragma once
// The paper's algorithm, end to end (Fig. 6):
//
//   1. enumerate the assignment set D over the bottleneck links (§III-B);
//   2. build the two side arrays and fold them into mask distributions
//      (§III-C);
//   3. for every configuration E'' of alive bottleneck links, restrict D
//      to the assignments E'' supports (Definition 1), compute r_{E''}
//      by inclusion–exclusion (§IV), and combine: R = sum p_{E''} r_{E''}
//      (Equations 2–3).
//
// Runtime O(2^{alpha |E|} |V||E|) for constant d and k, versus the naive
// O(2^{|E|} |V||E|).

#include "streamrel/core/accumulate.hpp"
#include "streamrel/core/assignments.hpp"
#include "streamrel/core/side_array.hpp"
#include "streamrel/cuts/bottleneck.hpp"
#include "streamrel/reliability/throughput.hpp"
#include "streamrel/reliability/types.hpp"

namespace streamrel {

struct BottleneckOptions {
  AssignmentOptions assignments{};
  SideArrayOptions side{};
  AccumulationStrategy accumulation = AccumulationStrategy::kAuto;
};

struct BottleneckResult {
  double reliability = 0.0;
  SolveStatus status = SolveStatus::kExact;
  /// Work counters: totals at the root, per-side breakdowns under the
  /// "side_s" / "side_t" children. Deterministic across thread counts.
  Telemetry telemetry;
  int num_assignments = 0;  ///< |D|
  AssignmentMode mode_used = AssignmentMode::kForwardOnly;
  PartitionStats partition_stats;

  bool exact() const noexcept { return status == SolveStatus::kExact; }

  /// Side configurations enumerated.
  std::uint64_t configurations() const {
    return telemetry.counter_or(telemetry_keys::kConfigurations);
  }
  std::uint64_t maxflow_calls() const {
    return telemetry.counter_or(telemetry_keys::kMaxflowCalls);
  }
  /// Side-array feasibility answers obtained by monotonicity alone.
  std::uint64_t pruned_decisions() const {
    return telemetry.counter_or(telemetry_keys::kPrunedDecisions);
  }
  /// Single-link incremental repairs.
  std::uint64_t engine_toggles() const {
    return telemetry.counter_or(telemetry_keys::kEngineToggles);
  }

  operator ReliabilityResult() const {
    ReliabilityResult r;
    r.reliability = reliability;
    r.status = status;
    r.telemetry = telemetry;
    return r;
  }
};

/// Exact reliability via the bottleneck decomposition over `partition`.
/// Requires both sides to have <= 63 internal links and |D| <= 63; a
/// partition violating the 63-link ceiling on either side or the crossing
/// set yields status kMaskOverflow (never a shift past the mask width).
/// A context stop (deadline/cancel) observed inside the side sweeps or
/// the accumulation loop yields status != kExact with reliability 0.
/// `snapshot` (optional) supplies a pre-compiled view of `net` so
/// repeated calls share one frozen structure; it must match `net`'s
/// topology and capacities (probabilities are read from `net` itself).
BottleneckResult reliability_bottleneck(
    const FlowNetwork& net, const FlowDemand& demand,
    const BottleneckPartition& partition, const BottleneckOptions& options = {},
    const ExecContext* ctx = nullptr,
    std::shared_ptr<const CompiledNetwork> snapshot = nullptr);

/// The probability-independent half of the decomposition: the assignment
/// set, the two side problems, and the side mask arrays. Masks record
/// which assignments each failure configuration realizes — a property of
/// topology and capacities only (§III-C); link probabilities enter solely
/// in the accumulation below. QuerySession caches these across queries.
struct BottleneckArtifacts {
  AssignmentSet assignments;
  AssignmentMode mode_used = AssignmentMode::kForwardOnly;
  SideProblem side_s;
  SideProblem side_t;
  /// The side arrays in slab (Gray-rank-ordered) resting form — what the
  /// vectorized fold consumes with unit stride. at_config() recovers the
  /// paper's configuration-indexed view; config_form() materializes it.
  SlabMaskTable array_s;
  SlabMaskTable array_t;
  /// Construction-cost counters, laid out exactly as BottleneckResult
  /// reports them (root totals, "side_s"/"side_t" children).
  Telemetry telemetry;
  PartitionStats partition_stats;
  /// Non-exact when a context stop interrupted the side sweeps
  /// (kDeadlineExpired / kCancelled) or the partition needs more than
  /// kMaxMaskBits links in one failure mask (kMaskOverflow); the arrays
  /// are then unusable and must not be cached.
  SolveStatus status = SolveStatus::kExact;

  bool usable() const noexcept { return status == SolveStatus::kExact; }
};

/// One salvaged side of a previously built decomposition: the side
/// problem, its mask table in slab form, and its construction-counter
/// subtree. Passing one to build_bottleneck_artifacts skips that side's
/// exponential sweep entirely and adopts the cached table verbatim —
/// valid ONLY when the side's topology and internal capacities are
/// unchanged and the assignment set is the same (side arrays depend on
/// nothing else; see §III-C). QuerySession proves this via its
/// edge→(cut, side) index before offering a salvage.
struct SideReuse {
  SideProblem side;
  SlabMaskTable array;
  Telemetry telemetry;  ///< the side's "side_s"/"side_t" counter subtree
};

/// Builds the artifacts (the exponential part of the algorithm). Throws
/// std::invalid_argument for usage errors exactly like
/// reliability_bottleneck; a context stop returns status != kExact, and a
/// partition whose side or crossing link count exceeds kMaxMaskBits
/// returns status kMaskOverflow before any enumeration starts.
/// `reuse_assignments` (may be null) skips the enumeration with a cached
/// set — it must come from the same (partition, d, options.assignments).
/// `snapshot` (may be null) pins a pre-compiled view of `net`; when null
/// the network is compiled on the spot. `reuse_s` / `reuse_t` (may be
/// null) adopt a salvaged side instead of re-sweeping it; the build MOVES
/// from the reuse objects, leaving them empty. Because side arrays are
/// deterministic in their inputs, the result is bitwise-identical to a
/// build without reuse.
BottleneckArtifacts build_bottleneck_artifacts(
    const FlowNetwork& net, const FlowDemand& demand,
    const BottleneckPartition& partition, const BottleneckOptions& options = {},
    const ExecContext* ctx = nullptr,
    const AssignmentSet* reuse_assignments = nullptr,
    std::shared_ptr<const CompiledNetwork> snapshot = nullptr,
    SideReuse* reuse_s = nullptr, SideReuse* reuse_t = nullptr);

/// Per-link failure probabilities arranged the way the accumulation
/// consumes them: by side-subgraph edge id and by crossing-edge position.
struct BottleneckProbabilities {
  std::vector<double> side_s;    ///< indexed by artifacts.side_s.view edge ids
  std::vector<double> side_t;    ///< indexed by artifacts.side_t.view edge ids
  std::vector<double> crossing;  ///< indexed by crossing-edge position
};

/// Reads the current probabilities of `net` through the artifact edge
/// maps. What-if callers perturb the returned vectors before
/// accumulating; the network itself stays untouched.
BottleneckProbabilities gather_bottleneck_probabilities(
    const FlowNetwork& net, const BottleneckPartition& partition,
    const BottleneckArtifacts& artifacts);

/// The probability-only tail (Equations 2-3): folds the cached mask
/// arrays into per-side distributions under `probs` and accumulates over
/// the alive-bottleneck configurations. Identical arithmetic to the
/// matching reliability_bottleneck call, so results are bitwise equal.
/// Requires artifacts.usable().
BottleneckResult accumulate_bottleneck(const BottleneckArtifacts& artifacts,
                                       const BottleneckProbabilities& probs,
                                       AccumulationStrategy accumulation =
                                           AccumulationStrategy::kAuto,
                                       const ExecContext* ctx = nullptr);

/// Deliverable-throughput distribution via the decomposition: one
/// bottleneck run per level v = 1..demand.rate (P(>= v) is the
/// reliability of demand v). Same requirements as reliability_bottleneck
/// at every level; levels whose assignment sets would explode propagate
/// the exception.
ThroughputDistribution throughput_bottleneck(
    const FlowNetwork& net, const FlowDemand& demand,
    const BottleneckPartition& partition,
    const BottleneckOptions& options = {});

/// The paper's Equation (1) for a single bridge link e*: the reliability
/// of a bridged graph is r(G_s) * (1 - p(e*)) * r(G_t), with the side
/// reliabilities computed by naive enumeration against demands
/// (s, x, d) and (y, t, d). Provided for the Fig.-2 reproduction and as
/// an independently-coded cross-check of the k = 1 decomposition.
double reliability_bridge_formula(const FlowNetwork& net,
                                  const FlowDemand& demand, EdgeId bridge);

}  // namespace streamrel
