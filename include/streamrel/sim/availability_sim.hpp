#pragma once
// Discrete-event availability simulation: play the links' up/down renewal
// processes forward in time and measure how often — and for how long —
// the network can actually deliver the stream. Feasibility is maintained
// by IncrementalMaxFlow (one flow repair per link transition), so a
// million-transition run costs seconds.
//
// Where the static model answers "what fraction of random snapshots
// deliver d sub-streams?", the simulator answers the operator questions
// the snapshot cannot: how OFTEN is playback interrupted, and how long do
// outages last. By stationarity the measured availability converges to
// the analytic reliability at matching parameters (bench E24 shows it).

#include <cstdint>
#include <vector>

#include "streamrel/graph/flow_network.hpp"
#include "streamrel/sim/link_dynamics.hpp"

namespace streamrel {

struct SimulationOptions {
  double warmup = 500.0;       ///< time discarded before measuring
  double duration = 20'000.0;  ///< measured time span
  std::uint64_t seed = 0x51712;
};

struct SimulationReport {
  double availability = 0.0;      ///< feasible-time fraction
  std::uint64_t transitions = 0;  ///< link state changes in the window
  std::uint64_t interruptions = 0;  ///< feasible -> infeasible crossings
  double mean_outage = 0.0;       ///< average infeasible spell length
  double mean_uptime_spell = 0.0; ///< average feasible spell length
};

/// Simulates the network under per-link dynamics (one entry per link).
SimulationReport simulate_availability(const FlowNetwork& net,
                                       const FlowDemand& demand,
                                       const std::vector<LinkDynamics>& links,
                                       const SimulationOptions& options = {});

}  // namespace streamrel
