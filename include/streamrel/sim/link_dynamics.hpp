#pragma once
// Temporal link model: each link alternates between UP and DOWN periods
// with exponentially distributed durations (an alternating renewal
// process — the standard availability model for repairable components).
// Its stationary unavailability mean_down / (mean_up + mean_down) is
// exactly the failure probability p(e) the paper's static snapshot model
// consumes, which is what lets the simulator validate the analytic
// reliability against time averages.

#include <stdexcept>
#include <vector>

#include "streamrel/graph/flow_network.hpp"

namespace streamrel {

struct LinkDynamics {
  double mean_uptime = 55.0;   ///< expected UP duration (any time unit)
  double mean_downtime = 5.0;  ///< expected DOWN duration

  /// Stationary probability of finding the link DOWN.
  double unavailability() const {
    if (mean_uptime <= 0.0 || mean_downtime < 0.0) {
      throw std::invalid_argument("bad link dynamics");
    }
    return mean_downtime / (mean_uptime + mean_downtime);
  }
};

/// Dynamics whose stationary unavailability equals each link's static
/// failure probability, with the given mean repair (down) time.
std::vector<LinkDynamics> dynamics_from_probabilities(
    const FlowNetwork& net, double mean_downtime = 5.0);

}  // namespace streamrel
