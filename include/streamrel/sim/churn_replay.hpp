#pragma once
// Churn replay — R(t) of an overlay under a timestamped event stream.
//
// Where availability_sim.hpp plays random link renewals forward and
// MEASURES delivery, replay evaluates the exact snapshot reliability of
// the paper's model after every recorded edit: feed it the network at
// t=0 plus an EventStream and it returns the reliability series R(t)
// with per-event attribution (which event moved R, and by how much).
//
// The warm path drives a QuerySession: every event becomes a
// NetworkDelta through QuerySession::apply_delta, so probability events
// re-accumulate over cached side arrays, capacity events invalidate
// cut-scoped (salvaging untouched sides), and only topology events pay
// a full recompile. The cold path (use_session = false) rebuilds and
// re-solves from scratch after every event — the baseline the E28 bench
// compares against. Both paths produce BITWISE-identical series; warm
// is purely a caching strategy.

#include <cstdint>
#include <string>
#include <vector>

#include "streamrel/core/query_session.hpp"
#include "streamrel/sim/event_stream.hpp"

namespace streamrel {

struct ReplayOptions {
  /// Solve configuration used for every evaluation (method, budgets...).
  SolveOptions solve{};
  /// Cache configuration of the warm path's QuerySession.
  QueryCacheOptions cache{};
  /// false = cold baseline: fresh compute_reliability per event, no
  /// session, no artifact reuse.
  bool use_session = true;
};

/// One evaluated event: what it did to the network, the caches and R.
struct ReplayEventOutcome {
  double time = 0.0;
  std::string label;
  DeltaClass applied = DeltaClass::kProbabilityOnly;
  double reliability = 0.0;  ///< R after this event
  double delta_r = 0.0;      ///< reliability - previous reliability
  /// Cache outcome of the event's invalidation (see DeltaOutcome); all
  /// zero on the cold path.
  std::uint64_t entries_full = 0;
  std::uint64_t entries_partial = 0;
  std::uint64_t entries_survived = 0;
  /// Fraction of cached mask entries that survived this event, counting
  /// a salvaged side as half: (survived + partial/2) / touched entries.
  /// 1.0 when the cache held nothing to lose.
  double survival = 1.0;
};

struct ReplayReport {
  double initial_reliability = 0.0;  ///< R before any event
  std::vector<ReplayEventOutcome> series;  ///< R(t), one entry per event
  double final_reliability = 0.0;
  /// Index into `series` of the most damaging event (most negative
  /// delta_r); -1 when no event lowered R.
  int worst_event = -1;
  /// Mean per-event survival over events that found a warm cache —
  /// the artifact reuse rate of the whole replay. 0 on the cold path.
  double artifact_survival_rate = 0.0;
  /// Session telemetry (warm path): cache counters, per-query solve
  /// telemetry, invalidation split.
  Telemetry telemetry;
};

/// Replays `events` (already ordered; call sort_event_stream first if
/// not) against `net`, evaluating reliability for `demand` before the
/// first event and after every event. Demand endpoints are translated
/// through topology events' node maps; an event that removes an
/// endpoint throws std::invalid_argument naming the event. Event ids
/// follow the EventStream contract (each delta targets the state its
/// predecessors produced).
ReplayReport replay_churn(const FlowNetwork& net, const FlowDemand& demand,
                          const EventStream& events,
                          const ReplayOptions& options = {});

}  // namespace streamrel
