#pragma once
// Timestamped churn event streams — the input language of the replay
// pipeline (sim/churn_replay.hpp).
//
// A ChurnEvent is one NetworkDelta stamped with the time it takes
// effect: a peer joining (node + edge adds), leaving (node removal),
// a link degrading (probability edit) or being re-provisioned (capacity
// edit). Identifier semantics follow NetworkDelta exactly: the ids in
// event k refer to the network state AFTER events 0..k-1 were applied —
// each delta targets its own pre-delta network, so a replay needs no id
// translation and a stream can be produced incrementally by any process
// that watches the live overlay.
//
// Streams come from three places:
//   * hand-written or exported JSON (parse_event_stream; the format is
//     documented there and an example ships in examples/data/);
//   * the seeded generator random_churn_events, which synthesizes
//     reproducible degrade/re-provision/leave/join mixes for benches
//     and tests;
//   * p2p/churn.hpp's churn_delta, for the paper's session-statistics
//     probability overwrites as a single probability-only event.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "streamrel/graph/delta.hpp"
#include "streamrel/graph/flow_network.hpp"
#include "streamrel/util/json.hpp"

namespace streamrel {

/// One timestamped edit batch against the evolving network.
struct ChurnEvent {
  double time = 0.0;   ///< when the delta takes effect (any time unit)
  std::string label;   ///< free-form attribution tag ("peer 7 left")
  NetworkDelta delta;
};

using EventStream = std::vector<ChurnEvent>;

/// Stable-sorts a stream by time (events at equal times keep their
/// relative order — they were authored against that application order).
void sort_event_stream(EventStream& events);

/// Parses a JSON event stream document:
///
///   { "events": [
///       { "time": 0.5, "label": "link 3 degrades",
///         "set_failure_prob": [ {"edge": 3, "p": 0.25} ] },
///       { "time": 1.0, "set_capacity": [ {"edge": 2, "c": 1} ] },
///       { "time": 2.0, "label": "peer 5 leaves",
///         "remove_node": [5] },
///       { "time": 3.0, "label": "peer joins",
///         "add_nodes": 1,
///         "add_edge": [ {"u": 0, "v": 9, "c": 2, "p": 0.05,
///                        "directed": false} ] } ] }
///
/// Every event key except "time" is optional; "directed" defaults to
/// false; edge/node ids refer to the network state after the preceding
/// events (see the header comment). The result is returned in document
/// order WITHOUT sorting — call sort_event_stream if the document is
/// unordered. Throws std::invalid_argument on malformed input.
EventStream parse_event_stream(std::string_view json_text);

/// The delta key language shared by event streams and the wire protocol
/// (api/wire.hpp): reads the six edit keys ("set_failure_prob",
/// "set_capacity", "add_nodes", "add_edge", "remove_edge",
/// "remove_node") from one JSON object, ignoring any other members.
/// Throws std::invalid_argument on malformed edits.
NetworkDelta parse_delta_json(const JsonValue& obj);

/// One event object ("time" required, "label" optional, plus the delta
/// keys) — the element grammar of parse_event_stream, exposed so other
/// protocols can embed events.
ChurnEvent parse_churn_event(const JsonValue& obj);

/// Options for the seeded stream generator. The class mix is a discrete
/// distribution over event kinds; weights need not sum to one.
struct ChurnEventOptions {
  int events = 64;                  ///< stream length
  double mean_interarrival = 1.0;   ///< exponential inter-event gaps
  double weight_degrade = 0.70;     ///< probability edit on a random link
  double weight_capacity = 0.25;    ///< capacity bump on a random link
  double weight_leave = 0.025;      ///< random non-server node removal
  double weight_join = 0.025;       ///< node add wired to two random nodes
  double degrade_max_prob = 0.35;   ///< degraded p drawn from (0, max]
  Capacity join_capacity = 1;       ///< capacity of a joining peer's links
  /// Additional node that leave events never remove (the demand sink,
  /// typically); the server is always protected.
  NodeId protect_node = kInvalidNode;
  std::uint64_t seed = 0x0E28;
};

/// Synthesizes a reproducible churn stream against `net`. The generator
/// tracks the evolving network internally so every emitted delta is
/// valid against the state its predecessors produce; `server` (and the
/// last two remaining nodes) are never removed, so a stream can always
/// be replayed against demands anchored at the server. Throws
/// std::invalid_argument on empty networks or non-positive options.
EventStream random_churn_events(const FlowNetwork& net, NodeId server,
                                const ChurnEventOptions& options = {});

}  // namespace streamrel
