#pragma once
// The versioned wire schema — ONE request/response language shared by
// every JSON entry point: the reliability service daemon
// (tools/streamrel_serve, server/), the CLI's --batch and --replay modes
// (which are just stdin/stdout clients of the same protocol), and the CI
// validator (tools/wire_check).
//
// Framing is newline-delimited JSON: one request object per line, one
// response object per line. Requests carry an explicit schema version
// ("v": kWireSchemaVersion) and an opaque "id" echoed verbatim in the
// response, so clients can pipeline requests and match answers out of
// order (scheduled verbs may complete in any order).
//
// Request envelope (members beyond the verb's payload are optional):
//
//   {"v": 1, "id": 7, "verb": "solve", "tenant": "alpha",
//    "network_id": "default", "lane": "interactive",
//    "deadline_ms": 50, "max_threads": 0,
//    "telemetry": false, "trace": false, ...payload...}
//
// Verbs and payloads:
//   register_network  "network" (.net text, graph/io format), optional
//                     default demand ("source"/"sink"/"d") and
//                     "max_mask_tables" (per-session cache budget)
//   solve             "source"/"sink"/"d" (defaults from registration),
//                     "method", "overrides": [{"edge", "p"}, ...]
//   batch             "queries": [solve-payload objects, each may add a
//                     per-query "deadline_ms"]
//   apply_delta       the NetworkDelta key language of sim/event_stream
//                     ("set_failure_prob"/"set_capacity"/"add_nodes"/
//                     "add_edge"/"remove_edge"/"remove_node")
//   replay            "events": [churn event objects], "cold": bool
//   stats             none
//   metrics           none (result: Prometheus text + series count)
//   dump              optional "path" (file prefix for the flight-
//                     recorder bundle; records also returned inline)
//   persist           none (checkpoint the session's durable store now;
//                     requires the daemon to run with --state-dir)
//   restore           none (reload the session from its durable store,
//                     replacing the live one)
//   shutdown          none (under --state-dir, checkpoints every
//                     session before draining)
//
// Response envelope:
//
//   {"v": 1, "id": 7, "verb": "solve", "ok": true, "result": {...}}
//   {"v": 1, "id": 7, "verb": "solve", "ok": false,
//    "error": {"code": "bad_request", "message": "..."}}
//
// Error contract mirrors the library's: protocol and usage errors
// (parse_error, bad_request, unsupported_version, unknown_verb,
// unknown_network, overloaded, state_corrupt, internal) are
// "ok": false; a deadline or
// budget stop is NOT an error — it is an "ok": true result whose
// "status" is the SolveStatus string with reliability bounds attached,
// exactly like the in-process no-throw contract.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "streamrel/core/batch_evaluator.hpp"
#include "streamrel/core/reliability_facade.hpp"
#include "streamrel/sim/churn_replay.hpp"
#include "streamrel/sim/event_stream.hpp"
#include "streamrel/util/json.hpp"

namespace streamrel {

/// Bumped on every incompatible change to the request/response grammar
/// (independent of STREAMREL_API_VERSION, which tracks the C++ surface).
inline constexpr int kWireSchemaVersion = 1;

enum class WireVerb {
  kRegisterNetwork,  ///< bind a network (+ default demand) to tenant ids
  kSolve,            ///< one what-if query against a registered session
  kBatch,            ///< many what-if queries through one BatchEvaluator
  kApplyDelta,       ///< churn edit batch, cut-scoped cache invalidation
  kReplay,           ///< R(t) of an inline event stream (read-only)
  kStats,            ///< live telemetry / lane / session metrics
  kMetrics,          ///< Prometheus text-format exposition scrape
  kDump,             ///< flight-recorder dump (last N request records)
  kPersist,          ///< checkpoint the session's durable store now
  kRestore,          ///< reload the session from its durable store
  kShutdown,         ///< stop serving after in-flight work drains
};

std::string_view to_string(WireVerb verb) noexcept;
bool parse_wire_verb(std::string_view name, WireVerb* out) noexcept;

/// Scheduler lane. Interactive what-ifs share the whole worker pool;
/// bulk work (batch/replay, the default lane for those verbs) is capped
/// to a share of it so sweeps cannot starve point queries.
enum class WireLane {
  kInteractive,
  kBulk,
};

std::string_view to_string(WireLane lane) noexcept;

/// Shared --method / "method" vocabulary (auto, naive, factoring,
/// bottleneck, frontier, hybrid). Returns false on an unknown name.
bool parse_method_name(std::string_view name, Method* out) noexcept;

/// One solve payload. Unset demand members fall back to the demand the
/// network was registered with (the CLI registers the file's demand).
struct WireQuery {
  std::optional<NodeId> source;
  std::optional<NodeId> sink;
  std::optional<Capacity> rate;
  Method method = Method::kAuto;
  double deadline_ms = 0.0;  ///< per-query budget inside a batch (0 = none)
  std::vector<ProbOverride> overrides;
};

struct WireRequest {
  int version = kWireSchemaVersion;
  /// The "id" member as rendered JSON (number, string or "null"),
  /// echoed verbatim in the response.
  std::string id_json = "null";
  WireVerb verb = WireVerb::kStats;
  std::string tenant = "default";
  std::string network_id = "default";
  /// Defaults per verb: batch/replay land in kBulk unless the request
  /// names a lane, everything else in kInteractive.
  WireLane lane = WireLane::kInteractive;
  double deadline_ms = 0.0;  ///< request budget; lane budgets also apply
  int max_threads = 0;
  bool want_telemetry = false;  ///< attach the telemetry tree to results
  bool want_trace = false;      ///< attach a per-request span summary
  // register_network
  std::string network_text;  ///< graph/io .net text
  std::optional<std::size_t> max_mask_tables;
  // solve (also the default demand of register_network)
  WireQuery query;
  // batch
  std::vector<WireQuery> queries;
  // apply_delta
  NetworkDelta delta;
  // replay
  EventStream events;
  bool cold = false;
  // dump
  std::string dump_path;  ///< file prefix for the bundle ("" = inline only)
};

struct WireResponse {
  std::string id_json = "null";
  std::string verb;  ///< empty when the request line never parsed
  bool ok = true;
  std::string error_code;     ///< set when !ok
  std::string error_message;  ///< set when !ok
  std::string result_json = "{}";  ///< rendered object, set when ok
  /// CLI compatibility payload: the exact per-query / per-event JSON
  /// lines and summary line the pre-daemon --batch/--replay modes
  /// printed, byte-for-byte. Not part of the wire envelope.
  std::vector<std::string> legacy_lines;
  std::string legacy_summary;
};

/// Protocol-level parse/validation failure. `code()` is the wire error
/// code ("parse_error", "bad_request", "unsupported_version",
/// "unknown_verb"); id_json()/verb() carry whatever of the envelope was
/// readable, for error responses that still echo the request id.
class WireParseError : public std::invalid_argument {
 public:
  WireParseError(std::string code, const std::string& message,
                 std::string id_json = "null", std::string verb = {})
      : std::invalid_argument(message),
        code_(std::move(code)),
        id_json_(std::move(id_json)),
        verb_(std::move(verb)) {}

  const std::string& code() const noexcept { return code_; }
  const std::string& id_json() const noexcept { return id_json_; }
  const std::string& verb() const noexcept { return verb_; }

 private:
  std::string code_;
  std::string id_json_;
  std::string verb_;
};

/// Parses one request line. Throws WireParseError on anything the
/// protocol rejects; never returns a half-valid request.
WireRequest parse_wire_request(std::string_view line);

/// Parses one solve payload object (the element grammar of "queries").
/// Throws WireParseError with the documented messages on an unknown
/// method or a malformed override.
WireQuery parse_wire_query(const JsonValue& obj);

std::string serialize_wire_request(const WireRequest& request);
std::string serialize_wire_response(const WireResponse& response);

WireResponse make_wire_error(std::string id_json, std::string_view verb,
                             std::string_view code, std::string_view message);

/// The legacy CLI batch-file grammar ({"queries": [...]} or a bare
/// array, optional "max_mask_tables") as a kBatch request. Throws
/// WireParseError carrying the EXACT error strings the pre-daemon CLI
/// printed ("batch file needs a top-level array or a \"queries\" key",
/// ...); malformed JSON propagates as std::invalid_argument like before.
WireRequest parse_batch_file(std::string_view text);

// --- shared result renderers -------------------------------------------
// One implementation of every JSON line both the CLI and the daemon
// emit, so the two can never drift. All lines come WITHOUT a trailing
// newline; numbers use util/table.hpp's format_double with the
// historical precisions.

std::string render_batch_query_line(std::size_t index,
                                    const FlowDemand& demand,
                                    const SolveReport& report);
std::string render_batch_summary(const BatchReport& batch,
                                 std::uint64_t cache_hits,
                                 std::uint64_t cache_misses,
                                 std::uint64_t cache_evictions,
                                 double elapsed_ms);
std::string render_replay_initial_line(double reliability);
std::string render_replay_event_line(const ReplayEventOutcome& outcome);
std::string render_replay_summary(const ReplayReport& report, bool warm,
                                  double elapsed_ms);
/// Solve result object for the wire ("reliability"/"status"/"method"/
/// "engine"/"links_reduced"/"elapsed_ms" + optional bounds/telemetry).
/// `extra_members` is spliced in as pre-rendered members (", \"k\": v").
std::string render_solve_result(const SolveReport& report, double elapsed_ms,
                                bool include_telemetry,
                                std::string_view extra_members = {});

/// Inserts `key`: `value_json` before the closing brace of a rendered
/// object ("{}" handled). value_json must be valid rendered JSON.
void append_json_member(std::string& object_json, std::string_view key,
                        std::string_view value_json);

/// RFC 8259 string literal (quotes included).
std::string json_quote(std::string_view s);

}  // namespace streamrel
