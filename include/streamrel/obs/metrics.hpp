#pragma once

/// Production metrics for the reliability daemon: a lock-light registry
/// of monotonic counters, gauges, and fixed-bucket histograms with
/// Prometheus text-format exposition.
///
/// Design contract (mirrors the serving hot path's needs):
///  * Handle acquisition (counter()/gauge()/histogram()) takes a shared
///    lock on the hit path and an exclusive lock only to create a new
///    series. Callers on hot paths should acquire handles once and keep
///    the reference — series are node-stable for the registry's
///    lifetime and never deallocated before it.
///  * All recording operations (inc/set/observe) are std::atomic with
///    relaxed ordering: no locks, no allocation, safe from any thread,
///    including OpenMP shards inside a solve.
///  * render_prometheus() snapshots under the shared lock — scrapes
///    never block writers, and writers never block scrapes. A scrape
///    is a consistent-enough read: each value is an atomic load, and
///    histogram counts may trail their buckets by in-flight
///    observations (bounded skew, standard for Prometheus clients;
///    the renderer clamps so `_count` >= the `+Inf` bucket).
///
/// Naming follows Prometheus conventions: counters end in `_total`,
/// histogram series expose `_bucket{le=...}` (cumulative, closing with
/// `le="+Inf"`), `_sum`, and `_count`. Label keys render in sorted
/// order; label values are escaped per the text-format spec.

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace streamrel {

/// A sorted, deduplicated label set. Construction sorts by key so the
/// same logical labels always map to the same series regardless of the
/// order the call site lists them in.
class MetricLabels {
 public:
  MetricLabels() = default;
  MetricLabels(
      std::initializer_list<std::pair<std::string, std::string>> items);

  void set(std::string key, std::string value);

  const std::vector<std::pair<std::string, std::string>>& items() const {
    return items_;
  }
  bool empty() const { return items_.empty(); }

  /// Canonical rendered form, `{k1="v1",k2="v2"}` with escaping, or ""
  /// when empty. Doubles as the series key inside a family.
  std::string render() const;

 private:
  std::vector<std::pair<std::string, std::string>> items_;
};

/// Monotonic counter. set_at_least() exists for bridged sources that
/// already maintain their own monotonic count (session caches,
/// scheduler totals): it advances the exposed value without double
/// bookkeeping and never moves it backwards.
class MetricCounter {
 public:
  void inc(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void set_at_least(std::uint64_t floor_value) {
    std::uint64_t seen = value_.load(std::memory_order_relaxed);
    while (seen < floor_value &&
           !value_.compare_exchange_weak(seen, floor_value,
                                         std::memory_order_relaxed)) {
    }
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class MetricGauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket upper bounds are fixed per family at
/// registration; observe() is a branch-light scan (bucket counts are
/// small and bounds are sorted) plus three relaxed atomic updates.
class MetricHistogram {
 public:
  explicit MetricHistogram(const std::vector<double>* bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return *bounds_; }
  std::uint64_t bucket_value(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

 private:
  const std::vector<double>* bounds_;  ///< owned by the family
  /// bounds_->size() + 1 non-cumulative cells; the last is the
  /// overflow (+Inf) cell. Rendered cumulatively.
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  /// Double sum maintained by CAS loop (fetch_add on atomic<double>
  /// is C++20 but not universally lock-free; the loop is).
  std::atomic<double> sum_{0.0};
};

/// Default latency buckets (milliseconds): sub-ms resolution for cache
/// hits through multi-second bulk solves.
const std::vector<double>& default_latency_buckets_ms();

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. `help` is recorded on first registration of the
  /// family; later calls may pass "" (mismatched kinds for an existing
  /// family name throw std::invalid_argument).
  MetricCounter& counter(std::string_view name, std::string_view help,
                         const MetricLabels& labels = {});
  MetricGauge& gauge(std::string_view name, std::string_view help,
                     const MetricLabels& labels = {});
  MetricHistogram& histogram(std::string_view name, std::string_view help,
                             const std::vector<double>& bounds_upper,
                             const MetricLabels& labels = {});

  /// Prometheus text format (version 0.0.4): # HELP / # TYPE headers,
  /// families in name order, series in label order.
  std::string render_prometheus() const;

  /// Number of exposed time series (histograms count one per series:
  /// buckets/sum/count are views of the same series).
  std::size_t series_count() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series;
  struct Family;

  Series& find_or_create(std::string_view name, std::string_view help,
                         Kind kind, const std::vector<double>* bounds,
                         const MetricLabels& labels);

  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<Family>> families_;  ///< name-sorted
};

/// Content-Type value Prometheus scrapers expect for the text format.
inline constexpr const char* kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

}  // namespace streamrel
