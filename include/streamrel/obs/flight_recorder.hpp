#pragma once

/// Always-on flight recorder: a bounded ring of the last N finished
/// request records plus any TraceCapture spans the request produced,
/// dumpable at any moment (SIGUSR1 or the `dump` admin verb) as a
/// JSONL + Chrome-trace bundle — post-mortems without reproduction.
///
/// Recording cost is one mutex acquisition and a couple of moves per
/// request (the spans vector is moved in, never copied); the ring never
/// allocates after the first lap at a given span volume.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "streamrel/obs/request_log.hpp"
#include "streamrel/util/trace.hpp"

namespace streamrel {

struct FlightEntry {
  RequestRecord record;
  std::vector<TraceEvent> spans;  ///< empty unless the request traced
  std::uint64_t dropped_spans = 0;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  static constexpr std::size_t kDefaultCapacity = 256;

  void record(RequestRecord record, std::vector<TraceEvent> spans = {},
              std::uint64_t dropped_spans = 0);

  /// Oldest-first copy of the ring.
  std::vector<FlightEntry> snapshot() const;

  std::size_t capacity() const { return capacity_; }
  std::uint64_t total_recorded() const;

  /// One RequestRecord JSON object per line, oldest first (the request
  /// log format, so one set of tooling reads both).
  std::string dump_jsonl() const;

  /// Chrome trace-event JSON: every retained span, with `pid` set to
  /// the owning request's seq so each request renders as its own
  /// process track in Perfetto.
  std::string dump_chrome_trace() const;

  /// Writes `<prefix>.jsonl` and `<prefix>.trace.json`. Returns false
  /// (without throwing) when either file cannot be written.
  bool dump_to_files(const std::string& prefix) const;

 private:
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<FlightEntry> ring_;  ///< grows to capacity_, then wraps
  std::size_t next_ = 0;           ///< ring_ slot for the next record
  std::uint64_t total_ = 0;
};

}  // namespace streamrel
