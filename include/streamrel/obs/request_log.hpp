#pragma once

/// Structured JSON request logging for the daemon: one self-contained
/// JSON object per request, one line each, machine-greppable. The same
/// record type feeds the flight recorder's ring.

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>

namespace streamrel {

/// Everything the daemon knows about one finished request. Times are
/// microseconds (the log is for tail analysis; ms would quantize cache
/// hits to zero).
struct RequestRecord {
  std::uint64_t seq = 0;   ///< process-wide request ordinal
  std::uint64_t unix_ms = 0;  ///< wall-clock completion time
  std::string id_json;     ///< client request id, pre-rendered JSON ("" = none)
  std::string tenant;
  std::string network_id;
  std::string verb;
  std::string lane;
  std::string engine;  ///< post-kAuto engine for solves, "" otherwise
  std::string status;  ///< SolveStatus for solves, "" otherwise
  std::string error_code;  ///< wire error code, "" on success
  bool ok = true;
  bool shed = false;
  double queue_us = 0.0;  ///< admit -> pickup
  double solve_us = 0.0;  ///< pickup -> response rendered

  /// One-line JSON object (no trailing newline), keys in fixed order.
  std::string to_json() const;
};

/// Serialized line-at-a-time writer. Thread-safe; a null sink disables
/// logging with a single branch per request.
class RequestLogger {
 public:
  explicit RequestLogger(std::ostream* sink = nullptr) : sink_(sink) {}

  bool enabled() const { return sink_ != nullptr; }
  void log(const RequestRecord& record);

 private:
  std::ostream* sink_;
  std::mutex mu_;
};

}  // namespace streamrel
