#pragma once
// Structured telemetry tree: named counters and timers, nestable into
// children, mergeable across OpenMP shards. Every engine reports its work
// through one of these instead of ad-hoc result fields, so the facade can
// compare engines on equal footing and the CLI can emit the whole tree as
// JSON.
//
// Determinism contract: counters depend only on the instance and the
// options, never on thread count or scheduling (shard geometry is fixed,
// shard-local counters are merged in shard order). Timers measure wall
// clock and are exempt.

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace streamrel {

/// Canonical counter names shared by the engines. Using the constants
/// (rather than string literals at each site) keeps the per-engine trees
/// comparable.
namespace telemetry_keys {
inline constexpr std::string_view kConfigurations = "configurations";
inline constexpr std::string_view kMaxflowCalls = "maxflow_calls";
inline constexpr std::string_view kPrunedDecisions = "pruned_decisions";
inline constexpr std::string_view kEngineToggles = "engine_toggles";
inline constexpr std::string_view kStatesVisited = "states_visited";
inline constexpr std::string_view kSamples = "samples";
inline constexpr std::string_view kCandidates = "candidates";
inline constexpr std::string_view kLinksReduced = "links_reduced";
inline constexpr std::string_view kAssignments = "assignments";
// Bit-parallel side-array sweep (SideSweepStrategy::kBitParallel):
// per-lane feasibility decisions made by word-wide kernels vs the scalar
// residue that still consulted an incremental engine. The kLanes*
// breakdown partitions kLanesWordwise by kernel.
inline constexpr std::string_view kLanesWordwise = "lanes_decided_wordwise";
inline constexpr std::string_view kLanesCertificate = "lanes_certificate";
inline constexpr std::string_view kLanesConnectivity = "lanes_connectivity";
inline constexpr std::string_view kLanesPopcount = "lanes_popcount";
inline constexpr std::string_view kScalarResidue = "scalar_residue";
// QuerySession / BatchEvaluator serving-layer counters.
inline constexpr std::string_view kQueries = "queries";
inline constexpr std::string_view kFallbackSolves = "fallback_solves";
inline constexpr std::string_view kCacheHits = "cache_hits";
inline constexpr std::string_view kCacheMisses = "cache_misses";
inline constexpr std::string_view kCacheEvictions = "cache_evictions";
inline constexpr std::string_view kCacheInvalidations = "cache_invalidations";
// Cut-scoped invalidation outcome, counted per cached decomposition
// entry at each invalidation event: dropped outright / dropped with one
// side array salvaged for reuse / kept valid.
inline constexpr std::string_view kCacheInvalidationsFull =
    "cache_invalidations_full";
inline constexpr std::string_view kCacheInvalidationsPartial =
    "cache_invalidations_partial";
inline constexpr std::string_view kCacheSurvived = "cache_survived";
// Side arrays adopted from salvage instead of re-swept on rebuild.
inline constexpr std::string_view kSideRepairs = "side_repairs";
}  // namespace telemetry_keys

/// Mergeable latency histogram with geometric buckets (quarter-powers of
/// two over microseconds) plus exact count/sum/min/max. Percentiles use
/// the nearest-rank rule and return the lower bound of the bucket the
/// ranked sample landed in — fully deterministic, and merging is
/// associative and commutative (bucket counts just add), so shard-local
/// histograms can be combined in any grouping with identical results.
class LatencyHistogram {
 public:
  /// Bucket 0 holds non-positive (and non-finite) samples; bucket i >= 1
  /// covers [2^((i-1)/4), 2^(i/4)) microseconds.
  static constexpr std::size_t kBuckets = 256;

  static std::size_t bucket_index(double ms) noexcept;
  /// The value percentile_ms reports for a sample in this bucket (its
  /// lower bound, in ms; 0 for bucket 0).
  static double bucket_value_ms(std::size_t index) noexcept;

  void record_ms(double ms) noexcept;
  void merge(const LatencyHistogram& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double sum_ms() const noexcept { return sum_ms_; }
  double min_ms() const noexcept { return count_ ? min_ms_ : 0.0; }
  double max_ms() const noexcept { return count_ ? max_ms_ : 0.0; }

  /// Nearest-rank percentile, `p` in [0, 100]; 0 on an empty histogram.
  double percentile_ms(double p) const noexcept;

  bool operator==(const LatencyHistogram& other) const noexcept {
    return buckets_ == other.buckets_ && count_ == other.count_;
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ms_ = 0.0;
  double min_ms_ = 0.0;
  double max_ms_ = 0.0;
};

class Telemetry {
 public:
  using Counter = std::uint64_t;
  using CounterMap = std::map<std::string, Counter, std::less<>>;
  using TimerMap = std::map<std::string, double, std::less<>>;
  using HistogramMap = std::map<std::string, LatencyHistogram, std::less<>>;
  using ChildMap = std::map<std::string, Telemetry, std::less<>>;

  /// Mutable reference to a counter, created at 0 on first use.
  Counter& counter(std::string_view name);
  /// Read-only lookup; `fallback` when the counter was never touched.
  Counter counter_or(std::string_view name, Counter fallback = 0) const;
  void add(std::string_view name, Counter delta) { counter(name) += delta; }

  /// Mutable reference to a wall-clock timer in milliseconds.
  double& timer_ms(std::string_view name);
  double timer_ms_or(std::string_view name, double fallback = 0.0) const;

  /// Mutable latency histogram, created empty on first use. Histograms
  /// render in JSON as "<name>_hist" objects with count and p50/p95/p99.
  LatencyHistogram& histogram(std::string_view name);
  /// nullptr when absent.
  const LatencyHistogram* find_histogram(std::string_view name) const;

  /// Mutable child subtree, created empty on first use.
  Telemetry& child(std::string_view name);
  /// nullptr when absent.
  const Telemetry* find_child(std::string_view name) const;

  /// Element-wise sum: counters and timers add, histograms combine,
  /// children merge recursively. The SEQUENTIAL aggregation primitive
  /// (per-query trees merged in query order, nested phases of one
  /// thread).
  void merge(const Telemetry& other);

  /// Aggregation across trees recorded CONCURRENTLY (OpenMP shards,
  /// parallel batch queries): counters still add and histograms still
  /// combine, but timers take the MAX — concurrent wall-clock intervals
  /// overlap, so summing them would overstate elapsed time. Sites that
  /// also want the summed CPU view record an explicit "*_cpu" timer
  /// before merging (see build_side_array).
  void merge_parallel(const Telemetry& other);

  bool empty() const noexcept {
    return counters_.empty() && timers_.empty() && histograms_.empty() &&
           children_.empty();
  }

  const CounterMap& counters() const noexcept { return counters_; }
  const TimerMap& timers_ms() const noexcept { return timers_; }
  const HistogramMap& histograms() const noexcept { return histograms_; }
  const ChildMap& children() const noexcept { return children_; }

  /// Recursive equality over counters only (timers are wall-clock and
  /// excluded) — the determinism predicate the tests assert.
  bool counters_equal(const Telemetry& other) const;

  /// Deterministic JSON rendering (std::map iteration order). Timers are
  /// emitted with a "_ms" suffix (non-finite values as null), histograms
  /// as "_hist" objects; children nest as objects. Keys are escaped per
  /// RFC 8259, so the output always parses with util/json.
  std::string to_json() const;

 private:
  void append_json(std::string& out) const;

  CounterMap counters_;
  TimerMap timers_;
  HistogramMap histograms_;
  ChildMap children_;
};

/// RAII wall-clock timer: adds the elapsed milliseconds to
/// `telemetry.timer_ms(name)` on destruction.
class ScopedTimer {
 public:
  ScopedTimer(Telemetry& telemetry, std::string_view name);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* slot_;
  std::uint64_t start_ns_;
};

}  // namespace streamrel
