#pragma once
// Structured telemetry tree: named counters and timers, nestable into
// children, mergeable across OpenMP shards. Every engine reports its work
// through one of these instead of ad-hoc result fields, so the facade can
// compare engines on equal footing and the CLI can emit the whole tree as
// JSON.
//
// Determinism contract: counters depend only on the instance and the
// options, never on thread count or scheduling (shard geometry is fixed,
// shard-local counters are merged in shard order). Timers measure wall
// clock and are exempt.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace streamrel {

/// Canonical counter names shared by the engines. Using the constants
/// (rather than string literals at each site) keeps the per-engine trees
/// comparable.
namespace telemetry_keys {
inline constexpr std::string_view kConfigurations = "configurations";
inline constexpr std::string_view kMaxflowCalls = "maxflow_calls";
inline constexpr std::string_view kPrunedDecisions = "pruned_decisions";
inline constexpr std::string_view kEngineToggles = "engine_toggles";
inline constexpr std::string_view kStatesVisited = "states_visited";
inline constexpr std::string_view kSamples = "samples";
inline constexpr std::string_view kCandidates = "candidates";
inline constexpr std::string_view kLinksReduced = "links_reduced";
inline constexpr std::string_view kAssignments = "assignments";
// QuerySession / BatchEvaluator serving-layer counters.
inline constexpr std::string_view kQueries = "queries";
inline constexpr std::string_view kFallbackSolves = "fallback_solves";
inline constexpr std::string_view kCacheHits = "cache_hits";
inline constexpr std::string_view kCacheMisses = "cache_misses";
inline constexpr std::string_view kCacheEvictions = "cache_evictions";
inline constexpr std::string_view kCacheInvalidations = "cache_invalidations";
}  // namespace telemetry_keys

class Telemetry {
 public:
  using Counter = std::uint64_t;
  using CounterMap = std::map<std::string, Counter, std::less<>>;
  using TimerMap = std::map<std::string, double, std::less<>>;
  using ChildMap = std::map<std::string, Telemetry, std::less<>>;

  /// Mutable reference to a counter, created at 0 on first use.
  Counter& counter(std::string_view name);
  /// Read-only lookup; `fallback` when the counter was never touched.
  Counter counter_or(std::string_view name, Counter fallback = 0) const;
  void add(std::string_view name, Counter delta) { counter(name) += delta; }

  /// Mutable reference to a wall-clock timer in milliseconds.
  double& timer_ms(std::string_view name);
  double timer_ms_or(std::string_view name, double fallback = 0.0) const;

  /// Mutable child subtree, created empty on first use.
  Telemetry& child(std::string_view name);
  /// nullptr when absent.
  const Telemetry* find_child(std::string_view name) const;

  /// Element-wise sum: counters and timers add, children merge
  /// recursively. The shard-aggregation primitive.
  void merge(const Telemetry& other);

  bool empty() const noexcept {
    return counters_.empty() && timers_.empty() && children_.empty();
  }

  const CounterMap& counters() const noexcept { return counters_; }
  const TimerMap& timers_ms() const noexcept { return timers_; }
  const ChildMap& children() const noexcept { return children_; }

  /// Recursive equality over counters only (timers are wall-clock and
  /// excluded) — the determinism predicate the tests assert.
  bool counters_equal(const Telemetry& other) const;

  /// Deterministic JSON rendering (std::map iteration order). Timers are
  /// emitted with a "_ms" suffix; children nest as objects.
  std::string to_json() const;

 private:
  void append_json(std::string& out) const;

  CounterMap counters_;
  TimerMap timers_;
  ChildMap children_;
};

/// RAII wall-clock timer: adds the elapsed milliseconds to
/// `telemetry.timer_ms(name)` on destruction.
class ScopedTimer {
 public:
  ScopedTimer(Telemetry& telemetry, std::string_view name);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* slot_;
  std::uint64_t start_ns_;
};

}  // namespace streamrel
