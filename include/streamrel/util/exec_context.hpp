#pragma once
// ExecContext — the execution substrate every solver runs on: a deadline
// plus cooperative cancellation token (polled at configuration-sweep
// granularity), the root of the structured telemetry tree, and a thread
// policy knob. Engines receive a (possibly null) pointer; a null context
// means "no deadline, no cancellation, default threads" and costs nothing
// on the hot paths.
//
// Copies of an ExecContext share the cancellation token (a request_cancel
// on any copy stops them all) but own their telemetry.

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

#include "streamrel/util/telemetry.hpp"
#include "streamrel/util/trace.hpp"

namespace streamrel {

/// Outcome classification of a solve. Engines never throw on budget or
/// deadline exhaustion; they return the status so callers (notably
/// Method::kAuto) can fall back or degrade to bounds.
enum class SolveStatus {
  kExact,            ///< ran to completion; the value is exact (or, for
                     ///< sampling engines, the full requested sample size)
  kDeadlineExpired,  ///< stopped by the ExecContext deadline
  kBudgetExhausted,  ///< stopped by the engine's own work budget
  kCancelled,        ///< stopped by an explicit request_cancel()
  kMaskOverflow,     ///< an enumeration would need more than kMaxMaskBits
                     ///< links in one failure mask; pick another method
};

std::string_view to_string(SolveStatus status) noexcept;

/// Internal control-flow signal: a cooperative stop (deadline, cancel,
/// budget) observed deep inside a sweep. Thrown only OUTSIDE OpenMP
/// parallel regions; every public entry point catches it and converts it
/// into a SolveStatus — it never escapes the library API.
struct ExecInterrupted {
  SolveStatus status;
};

class ExecContext {
 public:
  /// Sweeps poll should_stop() every kPollStride configurations — cheap
  /// enough to be invisible, frequent enough to honor a deadline within
  /// milliseconds.
  static constexpr std::uint64_t kPollStride = 1024;

  ExecContext() = default;

  static ExecContext with_deadline_ms(double ms) {
    ExecContext ctx;
    ctx.set_deadline_ms(ms);
    return ctx;
  }

  /// Sets the deadline `ms` milliseconds from now (clamped at 0).
  void set_deadline_ms(double ms) {
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double, std::milli>(
                                       ms > 0.0 ? ms : 0.0));
    has_deadline_ = true;
  }

  /// Derives the effective deadline from a per-request budget and the
  /// serving lane's budget: the tighter of the two positive values wins;
  /// both non-positive leaves the context deadline-free. The daemon
  /// (server/service) calls this once per scheduled request.
  void apply_deadline_budgets(double request_ms, double lane_budget_ms) {
    double effective = 0.0;
    if (request_ms > 0.0) effective = request_ms;
    if (lane_budget_ms > 0.0 &&
        (effective <= 0.0 || lane_budget_ms < effective)) {
      effective = lane_budget_ms;
    }
    if (effective > 0.0) set_deadline_ms(effective);
  }

  bool has_deadline() const noexcept { return has_deadline_; }

  /// Milliseconds until the deadline (negative when expired); +inf when
  /// no deadline is set.
  double remaining_ms() const {
    if (!has_deadline_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(deadline_ - Clock::now())
        .count();
  }

  /// Thread-safe; shared with every copy of this context.
  void request_cancel() noexcept {
    cancel_->store(true, std::memory_order_relaxed);
  }
  bool cancel_requested() const noexcept {
    return cancel_->load(std::memory_order_relaxed);
  }

  /// The cooperative stop predicate. Reads an atomic always and the clock
  /// only when a deadline is set.
  bool should_stop() const {
    if (cancel_requested()) return true;
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// Why should_stop() is true (kExact when it is not). Cancellation wins
  /// over the deadline when both hold.
  SolveStatus stop_status() const {
    if (cancel_requested()) return SolveStatus::kCancelled;
    if (has_deadline_ && Clock::now() >= deadline_) {
      return SolveStatus::kDeadlineExpired;
    }
    return SolveStatus::kExact;
  }

  /// Throws ExecInterrupted when should_stop(). Must only be called
  /// outside OpenMP parallel regions.
  void check() const {
    const SolveStatus status = stop_status();
    if (status != SolveStatus::kExact) throw ExecInterrupted{status};
  }

  /// Thread-policy knob: cap on OpenMP threads (0 = library default) used
  /// by the parallel sweeps. Shard geometry is fixed per instance, so
  /// telemetry counters do not depend on this value.
  int max_threads = 0;

  /// The cap resolved against the OpenMP runtime (always >= 1; 1 when
  /// compiled without OpenMP).
  int resolved_threads() const noexcept;

  /// Root of the telemetry tree for everything executed under this
  /// context. Engines merge their per-solve trees in here.
  Telemetry telemetry;

  /// Optional progress/ETA sink, shared with every copy of this context
  /// (like the cancellation token). Engines feed it visited counts from
  /// the same kPollStride poll sites that honor the deadline; null costs
  /// one pointer check per poll.
  std::shared_ptr<ProgressReporter> progress;

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::shared_ptr<std::atomic<bool>> cancel_ =
      std::make_shared<std::atomic<bool>>(false);
};

/// Helper for the sweeps: resolves a nullable context's thread cap.
int exec_resolved_threads(const ExecContext* ctx) noexcept;

/// Helper for the sweeps: the progress reporter of a nullable context
/// (nullptr when absent), for constructing a ProgressMarker per loop.
inline ProgressReporter* exec_progress(const ExecContext* ctx) noexcept {
  return ctx ? ctx->progress.get() : nullptr;
}

}  // namespace streamrel
