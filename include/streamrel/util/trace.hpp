#pragma once
// Low-overhead span tracing + progress reporting for the solvers.
//
// Tracing is process-global and OFF by default. When disabled it costs
// one relaxed atomic load per span site — nothing measurable on the
// sweep benches (see docs/OBSERVABILITY.md for the measured numbers).
// When enabled, every TraceSpan records a complete event (name, category,
// wall-clock interval, thread, optional args) into a per-thread ring
// buffer; Tracer::export_chrome_json() renders all buffers as a Chrome
// trace-event document that chrome://tracing and Perfetto load directly.
//
// Span discipline for hot paths: a span per configuration (or per
// max-flow call) would dominate the work it measures. Hot loops must
// either create spans at shard granularity or go through the
// STREAMREL_TRACE_SAMPLED_SPAN macro, which records one span every
// kTraceSampleStride calls — CI grep-guards this (see .github/workflows).
//
// ProgressReporter is the user-facing companion: engines feed it
// visited-configuration counts from their existing ExecContext poll
// sites (every ExecContext::kPollStride configurations), and it renders
// a throttled "visited/total, rate, ETA" line. It is thread-safe; the
// sweeps hammer add() from OpenMP shards.
//
// Lifecycle contract: enable/disable/clear/export are coordination
// points — call them while no solve is in flight. Recording itself is
// lock-free per thread.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace streamrel {

class TraceCapture;

namespace trace_detail {
extern std::atomic<bool> g_enabled;
/// The thread's active per-request capture (see TraceCapture); non-null
/// diverts this thread's spans away from the global rings.
extern thread_local TraceCapture* t_capture;
}  // namespace trace_detail

/// The hot-path guard: one relaxed load plus one thread-local read.
inline bool trace_enabled() noexcept {
  return trace_detail::g_enabled.load(std::memory_order_relaxed) ||
         trace_detail::t_capture != nullptr;
}

/// One completed span. `category` must point at a string literal (it is
/// stored unowned); `args` holds a pre-rendered JSON object BODY
/// ("\"k\": 1, \"s\": \"x\"") or is empty.
struct TraceEvent {
  std::string name;
  const char* category = "";
  std::uint64_t start_ns = 0;  ///< since the tracer epoch
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;       ///< tracer-assigned dense thread id
  std::string args;
};

/// Per-request span capture for multi-tenant serving: while one is bound
/// (RAII, nestable — the innermost wins), the CURRENT THREAD's spans are
/// recorded into this object instead of the process-global rings, so
/// concurrent requests never interleave trace output. Spans opened by
/// OTHER threads (OpenMP shards spawned inside the request) still go to
/// the global rings — a capture summarizes the request's own thread.
/// Not thread-safe itself: bind, run, read, destroy on one thread.
class TraceCapture {
 public:
  /// Events retained per capture; later events are dropped (counted).
  static constexpr std::size_t kMaxEvents = 4096;

  TraceCapture();
  ~TraceCapture();
  TraceCapture(const TraceCapture&) = delete;
  TraceCapture& operator=(const TraceCapture&) = delete;

  /// Called by Tracer::record on the bound thread.
  void push(TraceEvent event);

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::uint64_t dropped() const noexcept { return dropped_; }

  /// Rendered summary for the wire: {"events": N, "dropped": D,
  /// "spans": {"<name>": {"count": c, "total_us": t}, ...}} with span
  /// names in lexicographic order.
  std::string summary_json() const;

 private:
  TraceCapture* prev_ = nullptr;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

/// Process-global trace collector. All members are static: the tracer is
/// a singleton by construction, like the engine registry.
class Tracer {
 public:
  /// Events kept per thread; older events are overwritten ring-wise and
  /// counted as dropped.
  static constexpr std::size_t kRingCapacity = 1 << 15;

  /// Enabling (re)starts the epoch the exported timestamps count from.
  /// Enable/disable/clear/export must not race a running solve.
  static void set_enabled(bool on);
  static void clear();  ///< drops all recorded events, keeps enablement

  /// Records a completed span; called by ~TraceSpan, rarely directly.
  static void record(TraceEvent event);

  static std::uint64_t event_count();    ///< retained events, all threads
  static std::uint64_t dropped_count();  ///< ring overwrites since clear

  /// Nanoseconds since the tracer epoch (monotonic).
  static std::uint64_t now_ns();

  /// The whole buffer as one Chrome trace-event JSON document
  /// ({"traceEvents": [...], ...}; Perfetto-loadable). Deterministic
  /// thread order (dense tids), chronological within a thread's ring.
  static std::string export_chrome_json();

  /// export_chrome_json() to a file; false on I/O failure.
  static bool export_chrome_json_to_file(const std::string& path);
};

/// RAII span guard. The two-phase form supports conditional activation:
///
///   TraceSpan span("accumulate", "engine");       // active iff enabled
///   TraceSpan lazy; if (rare) lazy.begin("x");    // caller-guarded
///
/// args are attached with arg() before destruction; all arg() overloads
/// are no-ops on an inactive span.
class TraceSpan {
 public:
  TraceSpan() = default;
  explicit TraceSpan(std::string_view name, const char* category = "solve") {
    if (trace_enabled()) begin(name, category);
  }
  ~TraceSpan() {
    if (active_) finish();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  /// Moving transfers ownership of the open span (the source becomes
  /// inactive); assignment finishes the destination's span first.
  TraceSpan(TraceSpan&& other) noexcept
      : name_(std::move(other.name_)),
        args_(std::move(other.args_)),
        category_(other.category_),
        start_ns_(other.start_ns_),
        active_(other.active_) {
    other.active_ = false;
  }
  TraceSpan& operator=(TraceSpan&& other) noexcept {
    if (this != &other) {
      if (active_) finish();
      name_ = std::move(other.name_);
      args_ = std::move(other.args_);
      category_ = other.category_;
      start_ns_ = other.start_ns_;
      active_ = other.active_;
      other.active_ = false;
    }
    return *this;
  }

  /// Starts the span unconditionally (caller already checked
  /// trace_enabled()); restartable only after the previous span ended.
  void begin(std::string_view name, const char* category = "solve");

  bool active() const noexcept { return active_; }

  TraceSpan& arg(std::string_view key, std::string_view value);
  // Without this overload a string literal would pick the bool one:
  // const char* -> bool is a standard conversion and beats the
  // user-defined conversion to string_view.
  TraceSpan& arg(std::string_view key, const char* value) {
    return arg(key, std::string_view(value));
  }
  TraceSpan& arg(std::string_view key, std::uint64_t value);
  TraceSpan& arg(std::string_view key, std::int64_t value);
  TraceSpan& arg(std::string_view key, int value) {
    return arg(key, static_cast<std::int64_t>(value));
  }
  TraceSpan& arg(std::string_view key, double value);
  TraceSpan& arg(std::string_view key, bool value);

 private:
  void finish();

  std::string name_;
  std::string args_;
  const char* category_ = "";
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

/// Hot-loop sampling stride: sites inside per-configuration loops record
/// one span every this many calls (power of two).
inline constexpr std::uint64_t kTraceSampleStride = 4096;

/// The ONLY sanctioned way to put a span inside a per-call hot loop:
/// declares `var` inactive and starts it for 1 call in kTraceSampleStride
/// when tracing is on. Single relaxed load + mask test per call.
#define STREAMREL_TRACE_SAMPLED_SPAN(var, counter, name, category)          \
  streamrel::TraceSpan var;                                                 \
  if (streamrel::trace_enabled() &&                                         \
      ((counter) & (streamrel::kTraceSampleStride - 1)) == 0) {             \
    var.begin((name), (category));                                          \
  }

/// Throttled progress/ETA line for long sweeps. Engines grow the
/// denominator with add_total() before sweeping and feed visited counts
/// with add() from their poll sites; the reporter prints at most one
/// line per `interval_ms` (carriage-return overwrite) and a final line
/// from finish(). All counters are atomics — add() is called from inside
/// OpenMP shards.
struct ProgressOptions {
  double interval_ms = 200.0;  ///< minimum time between printed lines
  std::string label = "sweep";
};

class ProgressReporter {
 public:
  using Options = ProgressOptions;

  /// `out` defaults to std::cerr; tests pass an ostringstream.
  explicit ProgressReporter(std::ostream* out = nullptr, Options options = {});
  ~ProgressReporter();
  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// Grows the expected-work denominator (0 total = rate-only display).
  void add_total(std::uint64_t n) noexcept;
  /// Reports n more units done; may print (throttled, one thread elected).
  void add(std::uint64_t n);
  /// Prints the final line (with a newline) once; idempotent.
  void finish();

  std::uint64_t visited() const noexcept;
  std::uint64_t total() const noexcept;

  struct Snapshot {
    std::uint64_t visited = 0;
    std::uint64_t total = 0;
    double elapsed_s = 0.0;
    double rate_per_s = 0.0;  ///< visited / elapsed
    double eta_s = 0.0;       ///< remaining / rate; 0 when unknowable
  };
  Snapshot snapshot() const;

  /// The line finish()/add() print, for tests: "label: 512/1024 (50.0%)
  /// 1.2e+04 cfg/s ETA 0.04s".
  std::string render_line() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Per-loop helper bridging a sweep's poll sites to the context's
/// reporter: marker.at(i) reports the delta since the previous mark.
/// Costs one null check when no reporter is attached.
class ProgressMarker {
 public:
  explicit ProgressMarker(ProgressReporter* reporter) noexcept
      : reporter_(reporter) {}

  void at(std::uint64_t position) {
    if (reporter_ && position > mark_) {
      reporter_->add(position - mark_);
      mark_ = position;
    }
  }

 private:
  ProgressReporter* reporter_;
  std::uint64_t mark_ = 0;
};

}  // namespace streamrel
