#pragma once
// Wall-clock stopwatch for the bench harnesses (header-only).

#include <chrono>

namespace streamrel {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace streamrel
