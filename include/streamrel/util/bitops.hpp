#pragma once
// Bit-level utilities shared by the exact (exhaustive) reliability
// algorithms. Failure configurations over a set of up to 63 links are
// represented as 64-bit masks: bit i set means link i is ALIVE.

#include <bit>
#include <cstdint>
#include <vector>

namespace streamrel {

/// A set of edges (or assignments, or bottleneck links) as a bitmask.
/// Bit i set <=> element i present.
using Mask = std::uint64_t;

/// Largest element count representable by a Mask with a usable "all" mask.
inline constexpr int kMaxMaskBits = 63;

/// Mask with the lowest `n` bits set. Requires 0 <= n <= 63.
constexpr Mask full_mask(int n) noexcept { return (Mask{1} << n) - 1; }

/// Number of set bits.
constexpr int popcount(Mask m) noexcept { return std::popcount(m); }

/// True if bit i is set.
constexpr bool test_bit(Mask m, int i) noexcept { return (m >> i) & 1ULL; }

/// Mask with only bit i set.
constexpr Mask bit(int i) noexcept { return Mask{1} << i; }

/// Index of the lowest set bit. Requires m != 0.
constexpr int lowest_bit(Mask m) noexcept { return std::countr_zero(m); }

/// Indices of the set bits, ascending.
std::vector<int> bits_of(Mask m);

/// Builds a mask from element indices.
Mask mask_of(const std::vector<int>& indices);

/// The i-th value of the binary-reflected Gray code.
constexpr Mask gray_code(Mask i) noexcept { return i ^ (i >> 1); }

/// Index of the bit that flips between gray_code(i) and gray_code(i+1):
/// the number of trailing ones of i... equivalently countr_zero(i+1).
constexpr int gray_flip_bit(Mask i) noexcept {
  return std::countr_zero(i + 1);
}

/// Inverse of gray_code: the rank i with gray_code(i) == g. Each fold
/// XORs the running prefix parity down one more power-of-two stride, so
/// bit j of the result ends up as the XOR of bits j.. of g.
constexpr Mask gray_rank(Mask g) noexcept {
  g ^= g >> 1;
  g ^= g >> 2;
  g ^= g >> 4;
  g ^= g >> 8;
  g ^= g >> 16;
  g ^= g >> 32;
  return g;
}

/// Iterates all submasks of `superset` (including 0 and superset itself)
/// in decreasing numeric order of the submask bits. Usage:
///   for (SubmaskRange r(sup); !r.done(); r.next()) use(r.value());
class SubmaskRange {
 public:
  explicit SubmaskRange(Mask superset) noexcept
      : superset_(superset), current_(superset), done_(false) {}

  bool done() const noexcept { return done_; }
  Mask value() const noexcept { return current_; }

  void next() noexcept {
    if (current_ == 0) {
      done_ = true;
    } else {
      current_ = (current_ - 1) & superset_;
    }
  }

 private:
  Mask superset_;
  Mask current_;
  bool done_;
};

/// Iterates all k-element subsets of {0..n-1} as masks, in colex order
/// (Gosper's hack). Yields nothing if k > n; yields {0} once if k == 0.
class CombinationRange {
 public:
  CombinationRange(int n, int k) noexcept;

  bool done() const noexcept { return done_; }
  Mask value() const noexcept { return current_; }
  void next() noexcept;

 private:
  Mask limit_;    // first mask >= 2^n, i.e. out of range
  Mask current_;
  bool done_;
};

}  // namespace streamrel
