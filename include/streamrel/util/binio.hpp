#pragma once
// Binary encoding primitives for the persist layer: explicit
// little-endian scalars, length-prefixed vectors, CRC32C-checked
// sections, and a magic+version file header.
//
// Everything durable in streamrel (snapshots, WAL records) is built
// from these three shapes:
//
//   * scalars — fixed-width little-endian integers; doubles travel as
//     their IEEE-754 bit pattern (u64), so a probability column is
//     restored BITWISE, never re-parsed through decimal text;
//   * sections — tag(u32) | length(u64) | crc32(u32) | payload. The
//     CRC covers the payload only; the reader verifies it before the
//     payload is interpreted, so every single-bit flip inside a store
//     file surfaces as BinReadError, never as garbage arrays;
//   * file headers — 8-byte magic + format version (u32), rejecting
//     foreign files and future formats up front.
//
// BinaryReader is a bounds-checked cursor over caller-owned bytes: any
// underrun, CRC mismatch, or over-limit count throws BinReadError
// (a std::runtime_error). The persist layer catches it at the store
// boundary and maps it to its corrupt-state status — the decoder
// itself never crashes on hostile input.

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace streamrel {

/// CRC-32 (ISO-HDLC polynomial, the zlib one), table-driven.
/// Chainable: pass the previous result as `seed` to extend a checksum
/// over discontiguous buffers.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

/// Malformed or truncated binary input. Deliberately distinct from
/// std::invalid_argument (which the wire layer maps to bad_request):
/// corrupt durable state is an environment problem, not a caller bug.
class BinReadError : public std::runtime_error {
 public:
  explicit BinReadError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only little-endian encoder over an owned byte buffer.
class BinaryWriter {
 public:
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u32(std::uint32_t v) { scalar(v); }
  void u64(std::uint64_t v) { scalar(v); }
  void i32(std::int32_t v) { scalar(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { scalar(static_cast<std::uint64_t>(v)); }
  /// IEEE-754 bit pattern as u64 — bitwise round trip, including every
  /// -0.0 / subnormal / infinity a probability column may legally hold.
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  /// u64 length prefix + raw bytes.
  void str(std::string_view s) {
    u64(s.size());
    raw(s.data(), s.size());
  }
  void raw(const void* data, std::size_t size) {
    out_.append(static_cast<const char*>(data), size);
  }

  const std::string& bytes() const noexcept { return out_; }
  std::string take() && { return std::move(out_); }
  std::size_t size() const noexcept { return out_.size(); }

 private:
  template <typename T>
  void scalar(T v) {
    char buf[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    }
    out_.append(buf, sizeof(T));
  }

  std::string out_;
};

/// Bounds-checked little-endian decoder over caller-owned bytes (the
/// view must outlive the reader). Every accessor throws BinReadError on
/// underrun; nothing is ever read past the end.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    need(1, "u8");
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint32_t u32() { return scalar<std::uint32_t>("u32"); }
  std::uint64_t u64() { return scalar<std::uint64_t>("u64"); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  /// Counterpart of BinaryWriter::str. `max_size` guards against a
  /// corrupted length prefix allocating gigabytes before the CRC check
  /// would have caught it.
  std::string str(std::size_t max_size = 1u << 20) {
    const std::uint64_t n = u64();
    if (n > max_size) throw BinReadError("string length exceeds limit");
    need(static_cast<std::size_t>(n), "string payload");
    std::string out(bytes_.substr(pos_, static_cast<std::size_t>(n)));
    pos_ += static_cast<std::size_t>(n);
    return out;
  }
  std::string_view view(std::size_t size) {
    need(size, "raw view");
    const std::string_view out = bytes_.substr(pos_, size);
    pos_ += size;
    return out;
  }

  std::size_t pos() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  bool at_end() const noexcept { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t n, const char* what) const {
    if (remaining() < n) {
      throw BinReadError(std::string("truncated input reading ") + what);
    }
  }
  template <typename T>
  T scalar(const char* what) {
    need(sizeof(T), what);
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

// --- section framing ---------------------------------------------------

/// tag(u32) | payload length(u64) | crc32(payload)(u32) | payload.
void write_section(BinaryWriter& out, std::uint32_t tag,
                   std::string_view payload);

/// Reads the next section, verifying the tag and the payload CRC.
/// The returned view aliases the reader's underlying buffer.
std::string_view read_section(BinaryReader& in, std::uint32_t expected_tag);

// --- file headers ------------------------------------------------------

/// 8 magic bytes + format version (u32).
void write_file_header(BinaryWriter& out, const char (&magic)[9],
                       std::uint32_t version);

/// Verifies the magic and that the version is in [1, max_version];
/// returns the version. Throws BinReadError otherwise.
std::uint32_t read_file_header(BinaryReader& in, const char (&magic)[9],
                               std::uint32_t max_version);

}  // namespace streamrel
