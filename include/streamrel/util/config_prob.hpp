#pragma once
// Probability of a link-failure configuration.
//
// A configuration over n links is a Mask whose bit i says link i is alive;
// its probability is  prod_{alive i} (1 - p_i) * prod_{dead i} p_i.
// Exhaustive algorithms query this for up to 2^n masks; computing each
// product from scratch costs O(n) and, worse, chaining 2^n multiplications
// incrementally accumulates rounding error. ConfigProbTable instead
// precomputes meet-in-the-middle half-products (two tables of size
// 2^(n/2)), so each query is one multiplication of two exactly-rounded
// half products.

#include <cstdint>
#include <vector>

#include "streamrel/util/bitops.hpp"

namespace streamrel {

class ConfigProbTable {
 public:
  /// `failure_probs[i]` is p(link i), each in [0, 1). Requires
  /// failure_probs.size() <= kMaxMaskBits.
  explicit ConfigProbTable(const std::vector<double>& failure_probs);

  /// Probability that exactly the links in `alive` are up and the rest
  /// are down. Bits >= size() must be zero.
  double prob(Mask alive) const noexcept {
    if (!direct_.empty()) {
      // Beyond ~2^20-entry half tables the memory is not worth it: such
      // link counts are only queried sparsely, never enumerated.
      double product = 1.0;
      for (std::size_t i = 0; i < direct_.size(); ++i) {
        product *= test_bit(alive, static_cast<int>(i)) ? (1.0 - direct_[i])
                                                        : direct_[i];
      }
      return product;
    }
    return low_[static_cast<std::size_t>(alive & low_mask_)] *
           high_[static_cast<std::size_t>(alive >> low_bits_)];
  }

  int size() const noexcept { return num_links_; }

 private:
  int num_links_ = 0;
  int low_bits_ = 0;
  Mask low_mask_ = 0;
  std::vector<double> low_;   // 2^low_bits_ half products
  std::vector<double> high_;  // 2^(n - low_bits_) half products
  std::vector<double> direct_;  // fallback for very large link counts
};

/// One-off configuration probability (O(n)); convenient in tests and in
/// non-exhaustive algorithms.
double config_probability(const std::vector<double>& failure_probs,
                          Mask alive) noexcept;

}  // namespace streamrel
