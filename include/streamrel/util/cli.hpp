#pragma once
// Minimal command-line flag parser for the example and bench binaries.
// Supports --name=value, --name value, and boolean --name forms.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace streamrel {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  /// Arguments that were not --flags, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace streamrel
