#pragma once
// Deterministic pseudo-random number generation for workload synthesis and
// Monte Carlo estimation.
//
// We ship our own generator (xoshiro256++ seeded via SplitMix64) instead of
// <random> engines so that streams are reproducible across standard-library
// implementations; every experiment in EXPERIMENTS.md quotes its seed.

#include <array>
#include <cstdint>

namespace streamrel {

/// xoshiro256++ 1.0 by Blackman & Vigna (public domain reference algorithm).
/// 256-bit state, period 2^256 - 1, passes BigCrush.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64,
  /// which guarantees a non-zero, well-mixed state for any seed value.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Next 64 uniformly distributed bits.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). bound == 0 is undefined.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t uniform_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) noexcept;

  /// True with probability p (p outside [0,1] clamps).
  bool bernoulli(double p) noexcept;

  /// Jump function: advances the state by 2^128 steps, used to derive
  /// non-overlapping per-thread substreams from one master seed.
  void jump() noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
};

/// SplitMix64 step; exposed because it is also a convenient 64-bit hash for
/// deriving independent seeds from (seed, index) pairs.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless mixing of two 64-bit values into one seed.
std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) noexcept;

}  // namespace streamrel
