#pragma once
// Plain-text result tables for benches and examples, mirroring the
// rows/series a paper evaluation would print, plus CSV escape hatch.

#include <iosfwd>
#include <string>
#include <vector>

namespace streamrel {

/// Column-aligned text table. Cells are strings; numeric convenience
/// overloads format with sensible defaults.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Starts a new row; subsequent add_cell calls fill it left to right.
  TextTable& new_row();
  TextTable& add_cell(std::string value);
  TextTable& add_cell(const char* value);
  TextTable& add_cell(double value, int precision = 6);
  TextTable& add_cell(std::int64_t value);
  TextTable& add_cell(std::uint64_t value);
  TextTable& add_cell(int value);

  /// Renders with a header rule and right-aligned numeric-looking cells.
  void print(std::ostream& os) const;
  std::string to_string() const;

  /// Comma-separated form (no alignment), one line per row.
  void print_csv(std::ostream& os) const;

  std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `precision` significant-ish digits (%.*g).
std::string format_double(double value, int precision = 6);

}  // namespace streamrel
