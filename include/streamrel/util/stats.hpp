#pragma once
// Numerical helpers: compensated summation, online moments, confidence
// intervals for Monte Carlo estimates, and least-squares fitting used by
// the scaling benchmarks to estimate empirical exponents.

#include <cstdint>
#include <vector>

namespace streamrel {

/// Kahan–Neumaier compensated summation. Exhaustive reliability algorithms
/// sum up to 2^63 tiny products; naive summation loses digits.
class KahanSum {
 public:
  void add(double x) noexcept;
  double value() const noexcept { return sum_ + compensation_; }
  void reset() noexcept { sum_ = 0.0; compensation_ = 0.0; }

  /// Merges another accumulator (used to combine per-thread partials).
  void merge(const KahanSum& other) noexcept;

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Welford online mean/variance.
class OnlineStats {
 public:
  void add(double x) noexcept;
  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Two-sided normal-approximation confidence half-width for a Bernoulli
/// proportion estimated from `successes` out of `samples`.
/// `z` defaults to the 95% quantile.
double proportion_ci_halfwidth(std::uint64_t successes, std::uint64_t samples,
                               double z = 1.959963984540054);

/// Wilson score interval for a Bernoulli proportion; better behaved than
/// the normal approximation at the extremes (reliability near 0 or 1).
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  bool contains(double x) const noexcept { return lo <= x && x <= hi; }
};
Interval wilson_interval(std::uint64_t successes, std::uint64_t samples,
                         double z = 1.959963984540054);

/// Least-squares line fit y = slope*x + intercept. Requires >= 2 points.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};
LineFit fit_line(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace streamrel
