#pragma once
// Minimal JSON value + recursive-descent parser — just enough for the
// CLI's batch-query files and test fixtures. Objects preserve insertion
// order (batch files are human-written; diagnostics read better in the
// author's order). Writing stays where it always was: the emitters build
// strings directly (Telemetry::to_json and friends).

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace streamrel {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(double n) : kind_(Kind::kNumber), number_(n) {}
  explicit JsonValue(std::string s)
      : kind_(Kind::kString), string_(std::move(s)) {}
  explicit JsonValue(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}
  explicit JsonValue(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  /// Typed accessors; each throws std::invalid_argument on a kind
  /// mismatch (batch files are user input — a clear message beats UB).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const noexcept;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else
/// after the value). Throws std::invalid_argument with a byte offset on
/// malformed input. Supports the full RFC 8259 grammar except \uXXXX
/// escapes for code points outside ASCII are passed through as-is.
JsonValue parse_json(std::string_view text);

}  // namespace streamrel
