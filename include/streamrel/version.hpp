#pragma once
// Public API versioning. STREAMREL_API_VERSION is a single monotonically
// increasing integer bumped on every breaking change to the installed
// surface (the headers under include/streamrel/). The dotted library
// version tracks the CMake project version.

#define STREAMREL_VERSION_MAJOR 1
#define STREAMREL_VERSION_MINOR 2
#define STREAMREL_VERSION_PATCH 0

/// Breaking-change counter of the installed header surface.
#define STREAMREL_API_VERSION 3

namespace streamrel {

/// The API version the library was built against, for runtime checks
/// against the headers a client compiled with.
constexpr int api_version() noexcept { return STREAMREL_API_VERSION; }

}  // namespace streamrel
