#pragma once
// Public API versioning. STREAMREL_API_VERSION is a single monotonically
// increasing integer bumped on every breaking change to the installed
// surface (the headers under include/streamrel/). The dotted library
// version tracks the CMake project version.

#define STREAMREL_VERSION_MAJOR 1
#define STREAMREL_VERSION_MINOR 2
#define STREAMREL_VERSION_PATCH 0

/// Breaking-change counter of the installed header surface.
/// v4: removed the deprecated src/streamrel.hpp shim and the deprecated
/// compute_reliability(net, demand, options, ctx) overload; the maxflow
/// reference solvers (edmonds_karp.hpp, push_relabel.hpp) moved into the
/// installed tree; FlowNetwork::compile() / CompiledNetwork / NetworkView
/// joined the public graph API.
/// v5: removed the deprecated apply_churn(net, server, model) shim (use
/// churn_delta + apply_delta_in_place); the versioned wire schema
/// (api/wire.hpp) and the serving daemon (server/*.hpp) joined the
/// public surface.
/// v6: durable sessions — the binary serializers (graph/serialize.hpp,
/// util/binio.hpp) and the crash-safe session store (persist/store.hpp)
/// joined the public surface; the wire schema gained the persist and
/// restore verbs and the state_corrupt error code; ServiceOptions
/// gained state_dir/wal_compact_threshold/state_fsync and the stream
/// transports a per-connection in-flight cap (StreamServeOptions /
/// TcpServerOptions::max_inflight).
#define STREAMREL_API_VERSION 6

namespace streamrel {

/// The API version the library was built against, for runtime checks
/// against the headers a client compiled with.
constexpr int api_version() noexcept { return STREAMREL_API_VERSION; }

}  // namespace streamrel
