#pragma once
// Monte Carlo reliability estimation: sample failure configurations from
// the product distribution and count the admitting fraction. The only
// method here that scales past exponential exact algorithms; ships with
// normal and Wilson confidence intervals so the benches can report
// estimate quality against the exact oracles.

#include <cstdint>

#include "streamrel/graph/flow_network.hpp"
#include "streamrel/maxflow/maxflow.hpp"
#include "streamrel/util/stats.hpp"

namespace streamrel {

struct MonteCarloOptions {
  std::uint64_t samples = 100'000;
  std::uint64_t seed = 0x5eed;
  MaxFlowAlgorithm algorithm = MaxFlowAlgorithm::kDinic;
};

struct MonteCarloResult {
  double estimate = 0.0;
  std::uint64_t successes = 0;
  std::uint64_t samples = 0;
  double ci95_halfwidth = 0.0;  ///< normal approximation
  Interval wilson95;
};

/// Unbiased reliability estimate; works on networks of any size.
MonteCarloResult reliability_monte_carlo(const FlowNetwork& net,
                                         const FlowDemand& demand,
                                         const MonteCarloOptions& options = {});

}  // namespace streamrel
