#pragma once
// Multicast (one-to-many) reliability: the probability that EVERY
// subscriber in a group can receive the stream.
//
// Semantics: a configuration succeeds when each subscriber individually
// admits d sub-streams from the source (max-flow >= d per subscriber).
// Because the stream is the same content, a link forwards it once to all
// downstream peers, so per-subscriber feasibility is the standard
// availability notion for overlay multicast; it is an upper bound on the
// stricter "simultaneous independent flows" semantics, which overlay
// systems do not need.

#include <vector>

#include "streamrel/graph/flow_network.hpp"
#include "streamrel/maxflow/maxflow.hpp"
#include "streamrel/reliability/monte_carlo.hpp"
#include "streamrel/reliability/types.hpp"

namespace streamrel {

struct MulticastDemand {
  NodeId source = kInvalidNode;
  std::vector<NodeId> subscribers;
  Capacity rate = 1;
};

struct MulticastOptions {
  MaxFlowAlgorithm algorithm = MaxFlowAlgorithm::kDinic;
};

/// Exact: exhaustive enumeration with one bounded max-flow per
/// (configuration, subscriber), short-circuiting at the first subscriber
/// a configuration fails. Requires net.fits_mask().
ReliabilityResult multicast_reliability(const FlowNetwork& net,
                                        const MulticastDemand& demand,
                                        const MulticastOptions& options = {});

/// Monte Carlo variant for larger overlays.
MonteCarloResult multicast_reliability_monte_carlo(
    const FlowNetwork& net, const MulticastDemand& demand,
    const MonteCarloOptions& options = {});

/// Quorum variant: P(at least `quorum` of the subscribers can receive
/// the stream) — the SLA question ("99% of viewers keep watching") that
/// all-or-nothing multicast reliability cannot answer. quorum = all
/// subscribers reduces to multicast_reliability; quorum = 1 is the
/// anycast probability. Requires net.fits_mask().
ReliabilityResult quorum_reliability(const FlowNetwork& net,
                                     const MulticastDemand& demand,
                                     int quorum,
                                     const MulticastOptions& options = {});

}  // namespace streamrel
