#pragma once
// Peer (node) failures reduced to link failures by node splitting.
//
// P2P churn kills peers, not wires. The classical reduction replaces each
// unreliable node v by v_in -> v_out connected by an internal directed
// edge whose failure probability is the peer's and whose capacity bounds
// the peer's relay throughput; incoming links attach to v_in, outgoing
// links to v_out. The transform is exact for DIRECTED networks; an
// undirected link would need its two traversal directions to attach at
// different split nodes while failing as one unit, which this edge model
// cannot express, so undirected inputs are rejected.

#include <vector>

#include "streamrel/graph/flow_network.hpp"

namespace streamrel {

struct NodeReliability {
  double failure_prob = 0.0;  ///< peer failure probability, in [0, 1)
  Capacity relay_capacity = kNoRelayLimit;  ///< max sub-streams through the peer

  static constexpr Capacity kNoRelayLimit = -1;
};

struct SplitNetwork {
  FlowNetwork net;
  FlowDemand demand;                ///< rewritten onto the split nodes
  std::vector<EdgeId> node_edge;    ///< per original node: its internal edge
  std::vector<EdgeId> edge_map;     ///< per original edge: its new id
  std::vector<NodeId> in_node;      ///< per original node: v_in
  std::vector<NodeId> out_node;     ///< per original node: v_out
};

/// Splits every node of a directed network. `nodes[v]` describes peer v;
/// the demand is rewritten so the source's and sink's own failure
/// probabilities participate (enter at source's v_in, leave at sink's
/// v_out). Internal edges get capacity = relay limit, or the node's
/// incident capacity sum when unlimited. Throws on undirected edges.
SplitNetwork split_unreliable_nodes(const FlowNetwork& net,
                                    const FlowDemand& demand,
                                    const std::vector<NodeReliability>& nodes);

}  // namespace streamrel
