#pragma once
// Reliability-preserving reductions for RATE-1 (connectivity) demands —
// the classical preprocessing that collapses series chains and parallel
// bundles before any exponential work:
//
//   parallel:  links e1, e2 between the same pair  ->  one link with
//              p' = p1 * p2                (both must fail)
//   series:    a degree-2 interior node v (not s or t) joining e1, e2 ->
//              one link with p' = 1 - (1-p1)(1-p2)   (both must work)
//
// Applied to a fixpoint, sparse overlays often shrink to a handful of
// links; pure series-parallel networks collapse to a SINGLE link whose
// survival probability IS the reliability. Rate-1 only: with d > 1 the
// capacity structure breaks both rules. Undirected networks only.

#include <vector>

#include "streamrel/graph/flow_network.hpp"

namespace streamrel {

struct ReducedNetwork {
  FlowNetwork net;     ///< the shrunken network (dangling parts pruned)
  NodeId source = kInvalidNode;
  NodeId sink = kInvalidNode;
  int series_steps = 0;
  int parallel_steps = 0;
  int pruned_links = 0;  ///< dangling / irrelevant links removed

  /// True when the network collapsed to one s-t link; then
  /// 1 - net.edge(0).failure_prob is the exact reliability.
  bool fully_reduced() const {
    return net.num_edges() == 1 && net.num_nodes() == 2;
  }
};

/// Applies prune/series/parallel reductions to a fixpoint. Capacity-0
/// links are dropped up front (they can never carry the sub-stream);
/// degree-1 interior nodes (dead ends) are pruned. Throws on directed
/// links. The reduction preserves the rate-1 reliability exactly.
ReducedNetwork reduce_for_connectivity(const FlowNetwork& net, NodeId s,
                                       NodeId t);

}  // namespace streamrel
