#pragma once
// The naive exact algorithm (paper Fig. 1): enumerate all 2^|E| failure
// configurations, test each with a (bounded) max-flow computation, and sum
// the probabilities of the admitting ones. O(2^|E|) * maxflow — the
// baseline the bottleneck decomposition is measured against.
//
// Three execution strategies:
//   * kFromScratch     — reset + solve per configuration;
//   * kGrayIncremental — visit configurations in Gray-code order and let
//                        IncrementalMaxFlow repair one edge per step;
//   * kParallel        — OpenMP over contiguous mask ranges (from-scratch
//                        evaluation, deterministic merge).

#include "streamrel/graph/flow_network.hpp"
#include "streamrel/reliability/types.hpp"

namespace streamrel {

enum class NaiveStrategy {
  kFromScratch,
  kGrayIncremental,
  kParallel,
};

struct NaiveOptions {
  NaiveStrategy strategy = NaiveStrategy::kFromScratch;
  MaxFlowAlgorithm algorithm = MaxFlowAlgorithm::kDinic;
};

/// Exact reliability by exhaustive enumeration. Requires net.fits_mask().
/// With a context, the sweep polls for deadline/cancellation every
/// ExecContext::kPollStride configurations and honors the thread cap; on
/// a stop the result carries the stop status and `reliability` holds the
/// probability mass accumulated so far (a valid LOWER bound on R).
ReliabilityResult reliability_naive(const FlowNetwork& net,
                                    const FlowDemand& demand,
                                    const NaiveOptions& options = {},
                                    const ExecContext* ctx = nullptr);

}  // namespace streamrel
