#pragma once
// Reliability polynomial for networks whose links share one failure
// probability p: counting, per failure count j, the configurations that
// admit the demand yields
//
//   R(p) = sum_j  N_j * p^j * (1-p)^(|E|-j)
//
// so one exhaustive pass answers every p — the p-sweep benches and churn
// studies evaluate the polynomial instead of re-enumerating.

#include <cstdint>
#include <vector>

#include "streamrel/graph/flow_network.hpp"
#include "streamrel/maxflow/maxflow.hpp"

namespace streamrel {

class ReliabilityPolynomial {
 public:
  ReliabilityPolynomial(int num_edges,
                        std::vector<std::uint64_t> admitting_by_failures);

  /// N_j: number of admitting configurations with exactly j failed links.
  const std::vector<std::uint64_t>& counts() const noexcept {
    return counts_;
  }
  int num_edges() const noexcept { return num_edges_; }

  /// R(p) for a uniform link failure probability p in [0, 1).
  double evaluate(double p) const;

 private:
  int num_edges_;
  std::vector<std::uint64_t> counts_;  ///< indexed by failure count j
};

struct PolynomialOptions {
  MaxFlowAlgorithm algorithm = MaxFlowAlgorithm::kDinic;
};

/// Builds the polynomial by exhaustive enumeration (capacities and the
/// demand matter; the per-edge failure probabilities in `net` are
/// ignored). Requires net.fits_mask().
ReliabilityPolynomial reliability_polynomial(
    const FlowNetwork& net, const FlowDemand& demand,
    const PolynomialOptions& options = {});

}  // namespace streamrel
