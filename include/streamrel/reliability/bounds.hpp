#pragma once
// Cheap two-sided reliability bounds, in the Esary–Proschan spirit but
// capacity-aware:
//
//  * UPPER bound — for every s-t cut C, a feasible configuration must
//    keep at least d units of surviving capacity across C, so
//    R <= P(surviving capacity of C >= d). Evaluated exactly per cut
//    (the cut is small) and minimized over a family of minimal cuts.
//
//  * LOWER bound — extract edge-disjoint "delivery routings": subgraphs
//    that each alone carry d units (supports of successive max-flows on
//    the shrinking network). If any routing fully survives, the demand
//    is met; the routings are edge-disjoint, hence independent, so
//    R >= 1 - prod_i (1 - prod_{e in routing_i} (1 - p(e))).
//
// Both bounds are polynomial-time — useful as sanity envelopes around
// estimates and as quick feasibility filters before exact computation.

#include <vector>

#include "streamrel/graph/flow_network.hpp"
#include "streamrel/maxflow/maxflow.hpp"

namespace streamrel {

struct BoundsOptions {
  int max_cut_size = 8;         ///< cuts bigger than this are skipped
  std::size_t max_cuts = 64;    ///< cap on the cut family size
  int max_routings = 16;        ///< cap on extracted disjoint routings
  MaxFlowAlgorithm algorithm = MaxFlowAlgorithm::kDinic;
};

struct ReliabilityBounds {
  double lower = 0.0;
  double upper = 1.0;
  int cuts_used = 0;
  int routings_used = 0;

  bool contains(double r) const noexcept {
    return lower - 1e-12 <= r && r <= upper + 1e-12;
  }
};

ReliabilityBounds reliability_bounds(const FlowNetwork& net,
                                     const FlowDemand& demand,
                                     const BoundsOptions& options = {});

}  // namespace streamrel
