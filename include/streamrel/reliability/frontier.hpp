#pragma once
// Exact two-terminal CONNECTIVITY reliability by frontier-based dynamic
// programming (the technique behind BDD/ZDD "simpath" methods): process
// links in a fixed order while tracking, for the vertices still touching
// unprocessed links, only the partition into connected blocks. The state
// count depends on the network's pathwidth rather than its size, so
// path-, ladder-, tree- and grid-like overlays with HUNDREDS of links are
// exact — far beyond the 2^|E| enumeration limit.
//
// Scope: demand rate 1 on undirected networks (rate-1 feasibility is
// exactly s-t connectivity when usable links have capacity >= 1;
// capacity-0 links are treated as absent). For d > 1 or directed
// networks use the flow-based algorithms.

#include <cstdint>

#include "streamrel/graph/flow_network.hpp"
#include "streamrel/reliability/types.hpp"

namespace streamrel {

struct FrontierOptions {
  /// Stop (result status kBudgetExhausted) when the live state set
  /// exceeds this bound — the ordering heuristic found no small frontier.
  std::size_t max_states = 2'000'000;
};

/// Exact P(s and t connected by surviving links). Requires
/// demand.rate == 1 and an all-undirected network.
/// `configurations` in the result counts DP states visited. On a state
/// budget or context stop the result carries the status and the success
/// mass folded so far (a valid LOWER bound on R).
ReliabilityResult reliability_connectivity(const FlowNetwork& net,
                                           const FlowDemand& demand,
                                           const FrontierOptions& options = {},
                                           const ExecContext* ctx = nullptr);

}  // namespace streamrel
