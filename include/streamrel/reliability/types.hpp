#pragma once
// Shared result/option types for the exact reliability algorithms.

#include <cstdint>

#include "streamrel/maxflow/maxflow.hpp"
#include "streamrel/util/exec_context.hpp"
#include "streamrel/util/telemetry.hpp"

namespace streamrel {

/// Result of a reliability computation. The work counters the benches
/// report live in the structured `telemetry` tree; the named accessors
/// below are views over it (kept for the common counters every engine
/// shares).
struct ReliabilityResult {
  double reliability = 0.0;
  /// kExact unless the computation was stopped by a deadline,
  /// cancellation, or the engine's own work budget — in which case
  /// `reliability` is NOT the exact value (see each engine's contract).
  SolveStatus status = SolveStatus::kExact;
  Telemetry telemetry;

  bool exact() const noexcept { return status == SolveStatus::kExact; }

  /// Failure configurations visited (recursion-tree nodes for factoring,
  /// DP steps for the frontier method).
  std::uint64_t configurations() const {
    return telemetry.counter_or(telemetry_keys::kConfigurations);
  }
  /// Feasibility subproblems solved.
  std::uint64_t maxflow_calls() const {
    return telemetry.counter_or(telemetry_keys::kMaxflowCalls);
  }
};

}  // namespace streamrel
