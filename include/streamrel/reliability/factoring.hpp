#pragma once
// Exact reliability by the factoring (conditioning) method with max-flow
// pruning — a much stronger exact baseline than exhaustive enumeration,
// and the second independent oracle the property tests compare the
// bottleneck decomposition against.
//
//   R(G) = (1 - p(e)) * R(G | e up) + p(e) * R(G | e down)
//
// with two classic prunes at every node of the recursion tree:
//   * if even the optimistic graph (undecided edges treated as up) cannot
//     route d, the subtree contributes 0;
//   * if the pessimistic graph (undecided edges treated as down) already
//     routes d, the subtree contributes its full conditional mass, 1.
// The branching edge is chosen among undecided edges that carry flow in
// the optimistic max-flow, which is what makes the prunes fire.

#include "streamrel/graph/flow_network.hpp"
#include "streamrel/reliability/types.hpp"

namespace streamrel {

struct FactoringOptions {
  MaxFlowAlgorithm algorithm = MaxFlowAlgorithm::kDinic;
  /// Safety valve for pathological instances: stop (result status
  /// kBudgetExhausted) after this many recursion-tree nodes.
  std::uint64_t max_tree_nodes = 500'000'000ULL;
};

/// Exact reliability; works on networks of any size that the recursion
/// can handle (no 63-edge mask limit). On budget exhaustion or a context
/// stop the result carries the corresponding status and reliability 0
/// (the partial recursion value is not a meaningful bound).
ReliabilityResult reliability_factoring(const FlowNetwork& net,
                                        const FlowDemand& demand,
                                        const FactoringOptions& options = {},
                                        const ExecContext* ctx = nullptr);

}  // namespace streamrel
