#pragma once
// Beyond YES/NO feasibility: the DISTRIBUTION of deliverable throughput.
// For a stream of d sub-streams, P(deliverable >= v) for each v = 1..d
// quantifies graceful degradation — the very property multiple-tree
// systems buy (paper §II) — and its sum is the expected number of
// sub-streams the subscriber receives.

#include <vector>

#include "streamrel/graph/flow_network.hpp"
#include "streamrel/maxflow/maxflow.hpp"
#include "streamrel/reliability/types.hpp"

namespace streamrel {

struct ThroughputDistribution {
  /// at_least[v-1] = P(max deliverable sub-streams >= v), v = 1..rate.
  /// Non-increasing in v; at_least[rate-1] is the classical reliability.
  std::vector<double> at_least;

  /// E[min(max-flow, rate)] = sum_v P(>= v).
  double expected_rate() const;

  /// P(exactly v sub-streams deliverable), v = 0..rate.
  std::vector<double> exactly() const;
};

struct ThroughputOptions {
  MaxFlowAlgorithm algorithm = MaxFlowAlgorithm::kDinic;
};

/// Exact distribution by exhaustive enumeration (one bounded max-flow per
/// configuration, recording the achieved value). Requires net.fits_mask().
/// demand.rate is the full stream rate d.
ThroughputDistribution throughput_distribution(
    const FlowNetwork& net, const FlowDemand& demand,
    const ThroughputOptions& options = {});

}  // namespace streamrel
