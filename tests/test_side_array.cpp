#include "streamrel/core/side_array.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "streamrel/graph/generators.hpp"
#include "streamrel/p2p/scenario.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

struct Fig4Fixture {
  GeneratedNetwork g = make_fig4_graph();
  BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  FlowDemand demand{g.source, g.sink, 2};
  AssignmentSet assignments = enumerate_assignments(
      g.net, partition, 2, {AssignmentMode::kForwardOnly});
};

TEST(SideProblem, Fig4Shapes) {
  Fig4Fixture fx;
  const SideProblem side_s =
      make_side_problem(fx.g.net, fx.demand, fx.partition, true);
  EXPECT_TRUE(side_s.is_source_side);
  EXPECT_EQ(side_s.view.num_nodes(), 3);  // s, x1, x2
  EXPECT_EQ(side_s.view.num_edges(), 5);
  ASSERT_EQ(side_s.endpoints.size(), 2u);
  // Endpoint of edge 7 is x1 (original node 1), of edge 8 is x2 (node 2).
  EXPECT_EQ(side_s.view.original_node(side_s.endpoints[0]), 1);
  EXPECT_EQ(side_s.view.original_node(side_s.endpoints[1]), 2);

  const SideProblem side_t =
      make_side_problem(fx.g.net, fx.demand, fx.partition, false);
  EXPECT_FALSE(side_t.is_source_side);
  EXPECT_EQ(side_t.view.num_edges(), 2);
  EXPECT_EQ(side_t.view.original_node(side_t.anchor), 5);
}

TEST(SideArray, Fig4AssignmentSetIsThePaperTriple) {
  Fig4Fixture fx;
  ASSERT_EQ(fx.assignments.size(), 3);
  EXPECT_EQ(fx.assignments.assignments[0].usage, (std::vector<Capacity>{0, 2}));
  EXPECT_EQ(fx.assignments.assignments[1].usage, (std::vector<Capacity>{1, 1}));
  EXPECT_EQ(fx.assignments.assignments[2].usage, (std::vector<Capacity>{2, 0}));
}

TEST(SideArray, Fig5ConfigurationsRealizeTheStatedSets) {
  Fig4Fixture fx;
  const SideProblem side =
      make_side_problem(fx.g.net, fx.demand, fx.partition, true);
  const std::vector<Mask> array =
      build_side_array(side, fx.assignments, fx.demand.rate);
  const Fig5Configs configs = fig5_source_side_configs();
  // Assignment bit order: 0 = (0,2), 1 = (1,1), 2 = (2,0).
  EXPECT_EQ(array[static_cast<std::size_t>(configs.a)], mask_of({0, 1}))
      << "config (a) must realize {(1,1),(0,2)}";
  EXPECT_EQ(array[static_cast<std::size_t>(configs.b)], mask_of({1}))
      << "config (b) must realize {(1,1)}";
  EXPECT_EQ(array[static_cast<std::size_t>(configs.c)], mask_of({0, 1, 2}))
      << "config (c) must realize all three assignments";
}

TEST(SideArray, EmptyConfigurationRealizesNothing) {
  Fig4Fixture fx;
  const SideProblem side =
      make_side_problem(fx.g.net, fx.demand, fx.partition, true);
  const std::vector<Mask> array =
      build_side_array(side, fx.assignments, fx.demand.rate);
  EXPECT_EQ(array[0], 0u);
}

TEST(SideArray, SinkSideArrayFullConfigRealizesAll) {
  Fig4Fixture fx;
  const SideProblem side =
      make_side_problem(fx.g.net, fx.demand, fx.partition, false);
  const std::vector<Mask> array =
      build_side_array(side, fx.assignments, fx.demand.rate);
  ASSERT_EQ(array.size(), 4u);            // 2 sink-side links
  EXPECT_EQ(array[0b11], mask_of({0, 1, 2}));
  // Only y1-t alive: (2,0) sends both units through y1.
  EXPECT_EQ(array[0b01], mask_of({2}));
  // Only y2-t alive: (0,2) only.
  EXPECT_EQ(array[0b10], mask_of({0}));
  EXPECT_EQ(array[0b00], 0u);
}

TEST(SideArray, PolymatroidMatchesPerAssignment) {
  Xoshiro256 rng(808);
  for (int trial = 0; trial < 25; ++trial) {
    ClusteredParams params;
    params.nodes_s = 4;
    params.nodes_t = 4;
    params.extra_edges_s = 2;
    params.extra_edges_t = 2;
    params.bottleneck_links = 1 + static_cast<int>(rng.uniform_below(3));
    const GeneratedNetwork g = clustered_bottleneck(rng, params);
    const BottleneckPartition partition =
        partition_from_sides(g.net, g.source, g.sink, g.side_s);
    const Capacity d = rng.uniform_int(1, 4);
    const AssignmentSet assignments = enumerate_assignments(
        g.net, partition, d, {AssignmentMode::kForwardOnly});
    if (assignments.size() == 0) continue;
    for (const bool source_side : {true, false}) {
      const SideProblem side = make_side_problem(
          g.net, {g.source, g.sink, d}, partition, source_side);
      SideArrayOptions per, poly;
      per.feasibility = FeasibilityMethod::kPerAssignment;
      poly.feasibility = FeasibilityMethod::kPolymatroid;
      EXPECT_EQ(build_side_array(side, assignments, d, per),
                build_side_array(side, assignments, d, poly))
          << "trial " << trial << " source_side=" << source_side;
    }
  }
}

TEST(SideArray, PolymatroidRejectsSignedAssignments) {
  Fig4Fixture fx;
  const SideProblem side =
      make_side_problem(fx.g.net, fx.demand, fx.partition, true);
  AssignmentSet signed_set = fx.assignments;
  signed_set.mode = AssignmentMode::kSigned;
  SideArrayOptions options;
  options.feasibility = FeasibilityMethod::kPolymatroid;
  EXPECT_THROW(build_side_array(side, signed_set, fx.demand.rate, options),
               std::invalid_argument);
}

TEST(SideArray, MaxflowCallCounterAdvances) {
  Fig4Fixture fx;
  const SideProblem side =
      make_side_problem(fx.g.net, fx.demand, fx.partition, true);
  std::uint64_t calls = 0;
  SideArrayOptions options;
  options.feasibility = FeasibilityMethod::kPerAssignment;
  build_side_array(side, fx.assignments, fx.demand.rate, options, &calls);
  // |D| * 2^{|E_s|} exactly, the paper's count.
  EXPECT_EQ(calls, 3u * 32u);
}

TEST(BucketDistribution, SumsToOneAndMatchesArray) {
  Fig4Fixture fx;
  const SideProblem side =
      make_side_problem(fx.g.net, fx.demand, fx.partition, true);
  const std::vector<Mask> array =
      build_side_array(side, fx.assignments, fx.demand.rate);
  const MaskDistribution dist = bucket_side_array(side, array);
  EXPECT_NEAR(dist.total, 1.0, 1e-12);
  double sum = 0.0;
  for (const auto& [mask, p] : dist.buckets) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Bucket masks are exactly the distinct array values.
  for (const auto& [mask, p] : dist.buckets) {
    EXPECT_NE(std::find(array.begin(), array.end(), mask), array.end());
  }
}

TEST(SideArray, RejectsOversizedSide) {
  FlowNetwork net(3);
  for (int i = 0; i < 64; ++i) net.add_undirected_edge(0, 1, 1, 0.1);
  net.add_undirected_edge(1, 2, 1, 0.1);
  const BottleneckPartition partition =
      partition_from_sides(net, 0, 2, {true, true, false});
  EXPECT_THROW(
      make_side_problem(net, {0, 2, 1}, partition, /*source_side=*/true),
      std::invalid_argument);
}

}  // namespace
}  // namespace streamrel
