#include "streamrel/core/accumulate.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

constexpr double kTol = 1e-12;

// Brute-force reference: expand the bucket distributions into explicit
// (mask, prob) pairs and sum over pairs with a common allowed assignment.
double reference_joint(const MaskDistribution& a, const MaskDistribution& b,
                       Mask allowed) {
  double sum = 0.0;
  for (const auto& [ms, ps] : a.buckets) {
    for (const auto& [mt, pt] : b.buckets) {
      if (ms & mt & allowed) sum += ps * pt;
    }
  }
  return sum;
}

MaskDistribution make_dist(std::vector<std::pair<Mask, double>> buckets) {
  MaskDistribution dist;
  dist.buckets = std::move(buckets);
  dist.total = 0.0;
  for (const auto& [m, p] : dist.buckets) dist.total += p;
  return dist;
}

// Paper Example 6 / Table I: two assignments b1 (bit 0), b2 (bit 1);
// configurations c1..c4 on the source side, c5..c8 on the sink side.
struct Example6 {
  // c1 -> {b1}, c2 -> {b2}, c3 -> {b1,b2}, c4 -> {b2}.
  // c5 -> {b1,b2}, c6 -> {b2}, c7 -> {b1}, c8 -> {}.
  std::vector<double> ps{0.4, 0.3, 0.2, 0.1};  // p(c1)..p(c4)
  std::vector<double> pt{0.25, 0.25, 0.3, 0.2};  // p(c5)..p(c8)

  MaskDistribution source() const {
    return make_dist({{mask_of({0}), ps[0]},
                      {mask_of({1}), ps[1] + ps[3]},
                      {mask_of({0, 1}), ps[2]}});
  }
  MaskDistribution sink() const {
    return make_dist({{mask_of({0, 1}), pt[0]},
                      {mask_of({1}), pt[1]},
                      {mask_of({0}), pt[2]},
                      {0, pt[3]}});
  }

  // The paper's hand calculation:
  //   p_{b1} = (p(c1)+p(c3)) * (p(c5)+p(c7))
  //   p_{b2} = (p(c2)+p(c3)+p(c4)) * (p(c5)+p(c6))
  //   p_{b1,b2} = p(c3) * p(c5)
  //   r = p_{b1} + p_{b2} - p_{b1,b2}
  double expected() const {
    const double p_b1 = (ps[0] + ps[2]) * (pt[0] + pt[2]);
    const double p_b2 = (ps[1] + ps[2] + ps[3]) * (pt[0] + pt[1]);
    const double p_b1b2 = ps[2] * pt[0];
    return p_b1 + p_b2 - p_b1b2;
  }
};

class AccumulateStrategyTest
    : public ::testing::TestWithParam<AccumulationStrategy> {};

TEST_P(AccumulateStrategyTest, ReproducesPaperExample6) {
  const Example6 ex;
  EXPECT_NEAR(joint_success_probability(ex.source(), ex.sink(),
                                        mask_of({0, 1}), GetParam()),
              ex.expected(), kTol);
}

TEST_P(AccumulateStrategyTest, RestrictingAllowedSetToOneAssignment) {
  const Example6 ex;
  // Only b1 allowed: r = p_{b1}.
  EXPECT_NEAR(joint_success_probability(ex.source(), ex.sink(), mask_of({0}),
                                        GetParam()),
              (ex.ps[0] + ex.ps[2]) * (ex.pt[0] + ex.pt[2]), kTol);
  // Only b2 allowed: r = p_{b2}.
  EXPECT_NEAR(joint_success_probability(ex.source(), ex.sink(), mask_of({1}),
                                        GetParam()),
              (ex.ps[1] + ex.ps[2] + ex.ps[3]) * (ex.pt[0] + ex.pt[1]), kTol);
}

TEST_P(AccumulateStrategyTest, EmptyAllowedSetIsZero) {
  const Example6 ex;
  EXPECT_DOUBLE_EQ(
      joint_success_probability(ex.source(), ex.sink(), 0, GetParam()), 0.0);
}

TEST_P(AccumulateStrategyTest, MatchesBruteForceOnRandomDistributions) {
  Xoshiro256 rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    const int num_assignments = static_cast<int>(rng.uniform_int(1, 8));
    auto random_dist = [&](int buckets) {
      std::vector<std::pair<Mask, double>> out;
      double remaining = 1.0;
      for (int i = 0; i < buckets; ++i) {
        const double p = (i + 1 == buckets)
                             ? remaining
                             : remaining * rng.uniform_real(0.0, 1.0);
        remaining -= p;
        out.emplace_back(
            rng.uniform_below(Mask{1} << num_assignments), p);
      }
      return make_dist(std::move(out));
    };
    const MaskDistribution a =
        random_dist(static_cast<int>(rng.uniform_int(1, 10)));
    const MaskDistribution b =
        random_dist(static_cast<int>(rng.uniform_int(1, 10)));
    const Mask allowed = rng.uniform_below(Mask{1} << num_assignments);
    EXPECT_NEAR(joint_success_probability(a, b, allowed, GetParam()),
                reference_joint(a, b, allowed), 1e-9)
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, AccumulateStrategyTest,
    ::testing::Values(AccumulationStrategy::kPaperInclusionExclusion,
                      AccumulationStrategy::kZetaTransform,
                      AccumulationStrategy::kBucketProduct,
                      AccumulationStrategy::kAuto),
    [](const ::testing::TestParamInfo<AccumulationStrategy>& param_info) {
      switch (param_info.param) {
        case AccumulationStrategy::kPaperInclusionExclusion:
          return "paper_inclusion_exclusion";
        case AccumulationStrategy::kZetaTransform:
          return "zeta_transform";
        case AccumulationStrategy::kBucketProduct:
          return "bucket_product";
        case AccumulationStrategy::kAuto:
          return "auto_choice";
      }
      return "unknown";
    });

TEST(Accumulate, AllStrategiesAgreeOnWideAllowedSets) {
  // 20 assignments: exercises the compress path with sparse allowed bits.
  Xoshiro256 rng(4242);
  MaskDistribution a = MaskDistribution{
      {{mask_of({0, 5, 19}), 0.5}, {mask_of({3, 7}), 0.3}, {0, 0.2}}, 1.0};
  MaskDistribution b = MaskDistribution{
      {{mask_of({5, 7}), 0.6}, {mask_of({19}), 0.4}}, 1.0};
  const Mask allowed = mask_of({0, 5, 7, 19});
  const double expected = reference_joint(a, b, allowed);
  EXPECT_NEAR(joint_success_probability(
                  a, b, allowed, AccumulationStrategy::kZetaTransform),
              expected, kTol);
  EXPECT_NEAR(joint_success_probability(
                  a, b, allowed, AccumulationStrategy::kBucketProduct),
              expected, kTol);
  EXPECT_NEAR(joint_success_probability(
                  a, b, allowed,
                  AccumulationStrategy::kPaperInclusionExclusion),
              expected, kTol);
}

TEST(Accumulate, PaperStrategyGuardsAgainstExplosion) {
  MaskDistribution a = MaskDistribution{{{full_mask(30), 1.0}}, 1.0};
  EXPECT_THROW(
      joint_success_probability(a, a, full_mask(30),
                                AccumulationStrategy::kPaperInclusionExclusion),
      std::invalid_argument);
  EXPECT_THROW(joint_success_probability(
                   a, a, full_mask(30), AccumulationStrategy::kZetaTransform),
               std::invalid_argument);
  // Bucket product handles any width.
  EXPECT_NEAR(joint_success_probability(a, a, full_mask(30),
                                        AccumulationStrategy::kBucketProduct),
              1.0, kTol);
}

}  // namespace
}  // namespace streamrel
