#include "streamrel/core/bottleneck_algorithm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "streamrel/core/reliability_facade.hpp"
#include "streamrel/graph/generators.hpp"
#include "streamrel/p2p/scenario.hpp"
#include "streamrel/reliability/factoring.hpp"
#include "streamrel/reliability/naive.hpp"
#include "test_support.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

using testing::kTol;

TEST(Bottleneck, Fig2BridgeMatchesNaiveAndEquationOne) {
  const GeneratedNetwork g = make_fig2_bridge_graph(0.15);
  const FlowDemand demand{g.source, g.sink, 1};
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const double naive = reliability_naive(g.net, demand).reliability;
  const BottleneckResult result =
      reliability_bottleneck(g.net, demand, partition);
  EXPECT_NEAR(result.reliability, naive, kTol);
  EXPECT_NEAR(reliability_bridge_formula(g.net, demand, 8), naive, kTol);
  EXPECT_EQ(result.num_assignments, 1);
  EXPECT_EQ(result.partition_stats.k, 1);
}

TEST(Bottleneck, Fig4MatchesNaive) {
  const GeneratedNetwork g = make_fig4_graph(0.2);
  const FlowDemand demand{g.source, g.sink, 2};
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const BottleneckResult result =
      reliability_bottleneck(g.net, demand, partition);
  EXPECT_NEAR(result.reliability,
              reliability_naive(g.net, demand).reliability, kTol);
  EXPECT_EQ(result.num_assignments, 3);  // the paper's D
}

TEST(Bottleneck, Fig4NaiveEquationOneStyleProductWouldBeWrong) {
  // Example 3's point: multiplying side reliabilities as in Eq. (1)
  // mishandles overlapping assignments. Check the wrong formula really is
  // wrong here, i.e. our algorithm is not secretly that product.
  const GeneratedNetwork g = make_fig4_graph(0.2);
  const FlowDemand demand{g.source, g.sink, 2};
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  // "Wrong" product: P_s(route 2 units to the cut) * P(both bottleneck
  // links up) * P_t(route 2 units from the cut).
  const SideProblem ss = make_side_problem(g.net, demand, partition, true);
  const SideProblem st = make_side_problem(g.net, demand, partition, false);
  const AssignmentSet assignments =
      enumerate_assignments(g.net, partition, 2, {});
  const auto as = build_side_array(ss, assignments, 2);
  const auto at = build_side_array(st, assignments, 2);
  const MaskDistribution ds = bucket_side_array(ss, as);
  const MaskDistribution dt = bucket_side_array(st, at);
  double p_s_any = 0.0, p_t_any = 0.0;
  for (const auto& [m, p] : ds.buckets) {
    if (m != 0) p_s_any += p;
  }
  for (const auto& [m, p] : dt.buckets) {
    if (m != 0) p_t_any += p;
  }
  const double wrong = p_s_any * (1 - 0.2) * (1 - 0.2) * p_t_any;
  const double right = reliability_naive(g.net, demand).reliability;
  EXPECT_GT(std::abs(wrong - right), 1e-3);
}

TEST(Bottleneck, InsufficientCrossingCapacityGivesZero) {
  const GeneratedNetwork g = make_fig4_graph(0.1);
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const BottleneckResult result =
      reliability_bottleneck(g.net, {g.source, g.sink, 5}, partition);
  EXPECT_DOUBLE_EQ(result.reliability, 0.0);
  EXPECT_EQ(result.num_assignments, 0);
}

TEST(Bottleneck, ValidatesPartitionAndDemand) {
  const GeneratedNetwork g = make_fig4_graph(0.1);
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  EXPECT_THROW(
      reliability_bottleneck(g.net, {g.sink, g.source, 1}, partition),
      std::invalid_argument);
  BottleneckPartition broken = partition;
  broken.side_s.pop_back();
  EXPECT_THROW(reliability_bottleneck(g.net, {g.source, g.sink, 1}, broken),
               std::invalid_argument);
}

TEST(BridgeFormula, ZeroCapacityBridgeShortCircuits) {
  GeneratedNetwork g = make_fig2_bridge_graph(0.1);
  g.net.set_capacity(8, 0);
  EXPECT_DOUBLE_EQ(reliability_bridge_formula(g.net, {g.source, g.sink, 1}, 8),
                   0.0);
}

TEST(BridgeFormula, RejectsNonBridge) {
  const GeneratedNetwork g = make_fig2_bridge_graph(0.1);
  EXPECT_THROW(reliability_bridge_formula(g.net, {g.source, g.sink, 1}, 0),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Property suite: the decomposition must agree with BOTH independent exact
// baselines on randomized clustered instances (paper Fig. 6 / experiment E9).
// ---------------------------------------------------------------------------

struct PropertyCase {
  int k;
  Capacity d;
  EdgeKind kind;
  AssignmentMode mode;
};

class BottleneckPropertyTest : public ::testing::TestWithParam<PropertyCase> {
};

TEST_P(BottleneckPropertyTest, AgreesWithNaiveAndFactoring) {
  const PropertyCase pc = GetParam();
  Xoshiro256 rng(mix_seed(static_cast<std::uint64_t>(pc.k),
                          static_cast<std::uint64_t>(pc.d) * 131 +
                              (pc.kind == EdgeKind::kDirected ? 7 : 0)));
  int evaluated = 0;
  for (int trial = 0; trial < 40 && evaluated < 25; ++trial) {
    ClusteredParams params;
    params.nodes_s = static_cast<int>(rng.uniform_int(3, 5));
    params.nodes_t = static_cast<int>(rng.uniform_int(3, 5));
    params.extra_edges_s = static_cast<int>(rng.uniform_int(0, 3));
    params.extra_edges_t = static_cast<int>(rng.uniform_int(0, 3));
    params.bottleneck_links = pc.k;
    params.cluster_caps = {1, 3};
    params.bottleneck_caps = {1, 3};
    params.cluster_probs = {0.05, 0.5};
    params.bottleneck_probs = {0.05, 0.5};
    params.kind = pc.kind;
    const GeneratedNetwork g = clustered_bottleneck(rng, params);
    const FlowDemand demand{g.source, g.sink, pc.d};
    const BottleneckPartition partition =
        partition_from_sides(g.net, g.source, g.sink, g.side_s);

    BottleneckOptions options;
    options.assignments.mode = pc.mode;
    const double decomposed =
        reliability_bottleneck(g.net, demand, partition, options).reliability;
    const double naive = reliability_naive(g.net, demand).reliability;
    const double factored = reliability_factoring(g.net, demand).reliability;
    ASSERT_NEAR(decomposed, naive, 1e-9)
        << "trial " << trial << " vs naive";
    ASSERT_NEAR(decomposed, factored, 1e-9)
        << "trial " << trial << " vs factoring";
    ++evaluated;
  }
  EXPECT_GT(evaluated, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BottleneckPropertyTest,
    ::testing::Values(
        // Undirected graphs, the paper's forward-only model. Exact for
        // k <= 2 on these seeds; k = 3 instances exist where it
        // under-counts (see ForwardOnlyIsOnlyALowerBound below), which is
        // why kAuto resolves undirected partitions to kSigned.
        PropertyCase{1, 1, EdgeKind::kUndirected, AssignmentMode::kForwardOnly},
        PropertyCase{2, 1, EdgeKind::kUndirected, AssignmentMode::kForwardOnly},
        PropertyCase{2, 2, EdgeKind::kUndirected, AssignmentMode::kForwardOnly},
        // Undirected, signed mode: exact everywhere (ablation E14).
        PropertyCase{2, 2, EdgeKind::kUndirected, AssignmentMode::kSigned},
        PropertyCase{3, 2, EdgeKind::kUndirected, AssignmentMode::kSigned},
        PropertyCase{3, 3, EdgeKind::kUndirected, AssignmentMode::kSigned},
        PropertyCase{3, 2, EdgeKind::kUndirected, AssignmentMode::kAuto},
        PropertyCase{3, 3, EdgeKind::kUndirected, AssignmentMode::kAuto},
        // Directed clustered graphs (crossing arcs all point S->T, so
        // forward-only is exact and kAuto picks it).
        PropertyCase{2, 1, EdgeKind::kDirected, AssignmentMode::kAuto},
        PropertyCase{2, 2, EdgeKind::kDirected, AssignmentMode::kAuto},
        PropertyCase{3, 2, EdgeKind::kDirected, AssignmentMode::kAuto}),
    [](const ::testing::TestParamInfo<PropertyCase>& param_info) {
      const PropertyCase& pc = param_info.param;
      std::string name = "k" + std::to_string(pc.k) + "_d" +
                         std::to_string(pc.d) + "_";
      name += pc.kind == EdgeKind::kDirected ? "dir" : "und";
      name += pc.mode == AssignmentMode::kSigned
                  ? "_signed"
                  : (pc.mode == AssignmentMode::kAuto ? "_auto" : "_fwd");
      return name;
    });

// The paper's forward-only model on undirected k = 3 bottlenecks: always
// a LOWER bound on the true reliability, and strictly below it on some
// instances (the optimal routing crosses the bottleneck backward). This
// is the empirical justification for kAuto resolving to kSigned.
TEST(BottleneckForwardOnly, ForwardOnlyIsOnlyALowerBound) {
  Xoshiro256 rng(mix_seed(3, 2 * 131));  // the seed that exposed the gap
  int strict_gaps = 0;
  for (int trial = 0; trial < 25; ++trial) {
    ClusteredParams params;
    params.nodes_s = static_cast<int>(rng.uniform_int(3, 5));
    params.nodes_t = static_cast<int>(rng.uniform_int(3, 5));
    params.extra_edges_s = static_cast<int>(rng.uniform_int(0, 3));
    params.extra_edges_t = static_cast<int>(rng.uniform_int(0, 3));
    params.bottleneck_links = 3;
    params.cluster_caps = {1, 3};
    params.bottleneck_caps = {1, 3};
    params.cluster_probs = {0.05, 0.5};
    params.bottleneck_probs = {0.05, 0.5};
    const GeneratedNetwork g = clustered_bottleneck(rng, params);
    const FlowDemand demand{g.source, g.sink, 2};
    const BottleneckPartition partition =
        partition_from_sides(g.net, g.source, g.sink, g.side_s);
    BottleneckOptions options;
    options.assignments.mode = AssignmentMode::kForwardOnly;
    const double forward =
        reliability_bottleneck(g.net, demand, partition, options).reliability;
    const double naive = reliability_naive(g.net, demand).reliability;
    ASSERT_LE(forward, naive + 1e-9) << "trial " << trial;
    if (forward < naive - 1e-6) ++strict_gaps;
  }
  EXPECT_GT(strict_gaps, 0)
      << "expected at least one instance where forward-only under-counts";
}

// Directed graphs with DELIBERATE backward crossing arcs: forward-only
// under-counts, signed mode stays exact (the soundness refinement in
// DESIGN.md).
TEST(BottleneckSigned, BackwardArcGraphNeedsSignedMode) {
  // A directed graph where the max flow MUST cross the bipartition
  // backward: the second unit travels s -> y1 (forward), y1 -> x2
  // (BACKWARD into the source side), x2 -> t (forward again).
  //   S side: {s, x2} (no internal links); T side: {y1, t}.
  //   Crossing: s->y1 (cap 2), y1->x2 (cap 1, backward), x2->t (cap 1).
  //   T-internal: y1->t (cap 1).
  FlowNetwork net(4);
  const NodeId s = 0, x2 = 1, y1 = 2, t = 3;
  net.add_directed_edge(s, y1, 2, 0.1);   // 0 crossing, forward
  net.add_directed_edge(y1, t, 1, 0.1);   // 1 T-internal
  net.add_directed_edge(y1, x2, 1, 0.1);  // 2 crossing, BACKWARD
  net.add_directed_edge(x2, t, 1, 0.1);   // 3 crossing, forward
  const FlowDemand demand{s, t, 2};
  ASSERT_EQ(max_flow(net, s, t), 2);  // needs the backward crossing
  const BottleneckPartition partition =
      partition_from_sides(net, s, t, {true, true, false, false});
  ASSERT_EQ(partition.k(), 3);

  const double naive = reliability_naive(net, demand).reliability;
  ASSERT_GT(naive, 0.0);

  // The paper's forward-only model cannot express the loop and
  // under-counts on this input.
  BottleneckOptions forward_opts;
  forward_opts.assignments.mode = AssignmentMode::kForwardOnly;
  EXPECT_LT(reliability_bottleneck(net, demand, partition, forward_opts)
                .reliability,
            naive - 1e-6);

  // Signed assignments restore exactness.
  BottleneckOptions signed_opts;
  signed_opts.assignments.mode = AssignmentMode::kSigned;
  EXPECT_NEAR(reliability_bottleneck(net, demand, partition, signed_opts)
                  .reliability,
              naive, kTol);

  // kAuto detects the backward arc and lands on signed by itself.
  const BottleneckResult auto_result =
      reliability_bottleneck(net, demand, partition, {});
  EXPECT_EQ(auto_result.mode_used, AssignmentMode::kSigned);
  EXPECT_NEAR(auto_result.reliability, naive, kTol);
}

class BottleneckStrategyMatrixTest
    : public ::testing::TestWithParam<
          std::tuple<AccumulationStrategy, FeasibilityMethod>> {};

TEST_P(BottleneckStrategyMatrixTest, EveryConfigurationAgreesOnFig4) {
  const auto [accumulation, feasibility] = GetParam();
  const GeneratedNetwork g = make_fig4_graph(0.25);
  const FlowDemand demand{g.source, g.sink, 2};
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  BottleneckOptions options;
  options.accumulation = accumulation;
  options.side.feasibility = feasibility;
  options.assignments.mode = AssignmentMode::kForwardOnly;
  EXPECT_NEAR(
      reliability_bottleneck(g.net, demand, partition, options).reliability,
      reliability_naive(g.net, demand).reliability, kTol);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, BottleneckStrategyMatrixTest,
    ::testing::Combine(
        ::testing::Values(AccumulationStrategy::kPaperInclusionExclusion,
                          AccumulationStrategy::kZetaTransform,
                          AccumulationStrategy::kBucketProduct),
        ::testing::Values(FeasibilityMethod::kPerAssignment,
                          FeasibilityMethod::kPolymatroid)));

TEST(Bottleneck, OversizedSidesReportTheLimitClearly) {
  // 130 total links split 64/64/2: naive enumeration is impossible
  // (> 63 links) and even the per-side sweeps exceed the 63-bit masks,
  // so the size guard must report kMaskOverflow before any enumeration
  // rather than silently shifting past the mask width.
  Xoshiro256 rng(99);
  ClusteredParams params;
  params.nodes_s = 25;
  params.nodes_t = 25;
  params.extra_edges_s = 40;  // 24 tree edges + 40 extras = 64 per side
  params.extra_edges_t = 40;
  params.bottleneck_links = 2;
  params.cluster_probs = {0.01, 0.05};
  params.bottleneck_probs = {0.01, 0.05};
  const GeneratedNetwork g = clustered_bottleneck(rng, params);
  ASSERT_EQ(g.net.num_edges(), 130);
  ASSERT_FALSE(g.net.fits_mask());
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const BottleneckResult result =
      reliability_bottleneck(g.net, {g.source, g.sink, 1}, partition);
  EXPECT_EQ(result.status, SolveStatus::kMaskOverflow);
  EXPECT_EQ(result.reliability, 0.0);
  // Direct misuse of the side-problem builder is still a usage error.
  EXPECT_THROW(
      make_side_problem(g.net, {g.source, g.sink, 1}, partition, true),
      std::invalid_argument);
}

TEST(Bottleneck, AutoFallsThroughToFrontierOnMaskOverflow) {
  // A 130-link path: every s-t cut leaves >= 64 links on one side, so
  // every candidate partition overflows the 63-bit masks. An explicit
  // kBottleneck request reports the capability limit as a status; the
  // kAuto chain treats it as "pick another method" and moves on to the
  // frontier DP, which handles paths of any length exactly.
  FlowNetwork net;
  constexpr int kLinks = 130;
  constexpr double kFail = 0.02;
  const NodeId first = net.add_node();
  NodeId prev = first;
  for (int i = 0; i < kLinks; ++i) {
    const NodeId next = net.add_node();
    net.add_edge(prev, next, 1, kFail, EdgeKind::kUndirected);
    prev = next;
  }
  const FlowDemand demand{first, prev, 1};

  SolveOptions options;
  options.use_reductions = false;  // keep the path from series-reducing away
  // Let the candidate search hand oversized sides to the engine; the
  // engine itself must then report the mask-width ceiling.
  options.partition_search.max_side_edges = 2 * kLinks;
  options.method = Method::kBottleneck;
  const SolveReport direct = compute_reliability(net, demand, options);
  EXPECT_EQ(direct.result.status, SolveStatus::kMaskOverflow);

  options.method = Method::kAuto;
  const SolveReport report = compute_reliability(net, demand, options);
  EXPECT_EQ(report.result.status, SolveStatus::kExact);
  EXPECT_EQ(report.engine, "frontier");
  EXPECT_NEAR(report.result.reliability, std::pow(1.0 - kFail, kLinks), kTol);
}

TEST(Bottleneck, HandlesNetworksBeyondTheNaiveMaskLimit) {
  // 66 total links split 32/32/2: the whole network exceeds the 63-link
  // naive mask limit, but each side fits, so the decomposition is the
  // only exact mask-based algorithm that can run at all. Cross-check
  // against factoring (which has no mask limit).
  Xoshiro256 rng(7);
  ClusteredParams params;
  params.nodes_s = 17;
  params.nodes_t = 17;
  params.extra_edges_s = 16;  // 16 tree edges + 16 extras = 32 per side
  params.extra_edges_t = 16;
  params.bottleneck_links = 2;
  params.cluster_probs = {0.0, 0.02};
  params.bottleneck_probs = {0.0, 0.02};
  const GeneratedNetwork g = clustered_bottleneck(rng, params);
  ASSERT_EQ(g.net.num_edges(), 66);
  ASSERT_FALSE(g.net.fits_mask());
  const FlowDemand demand{g.source, g.sink, 1};
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  // A full 2^32-per-side sweep is too slow for a unit test; this is a
  // structural smoke test that the side problems build correctly at a
  // size the naive algorithm cannot even represent. (The scaling bench
  // exercises the full run at intermediate sizes.)
  const SideProblem side_s = make_side_problem(g.net, demand, partition, true);
  const SideProblem side_t =
      make_side_problem(g.net, demand, partition, false);
  EXPECT_EQ(side_s.view.num_edges(), 32);
  EXPECT_EQ(side_t.view.num_edges(), 32);
}

TEST(Bottleneck, MediumClusteredInstanceAgreesWithFactoring) {
  // 26 links total: naive would need 2^26 max-flows; factoring and the
  // decomposition both handle it quickly and must agree.
  Xoshiro256 rng(123);
  ClusteredParams params;
  params.nodes_s = 7;
  params.nodes_t = 7;
  params.extra_edges_s = 6;
  params.extra_edges_t = 6;
  params.bottleneck_links = 2;
  params.cluster_probs = {0.02, 0.15};
  params.bottleneck_probs = {0.02, 0.15};
  const GeneratedNetwork g = clustered_bottleneck(rng, params);
  ASSERT_EQ(g.net.num_edges(), 26);
  const FlowDemand demand{g.source, g.sink, 2};
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  EXPECT_NEAR(reliability_bottleneck(g.net, demand, partition).reliability,
              reliability_factoring(g.net, demand).reliability, 1e-9);
}

}  // namespace
}  // namespace streamrel
