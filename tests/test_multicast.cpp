#include "streamrel/reliability/multicast.hpp"

#include <gtest/gtest.h>

#include "streamrel/p2p/overlay.hpp"
#include "streamrel/p2p/tree_builder.hpp"
#include "streamrel/reliability/naive.hpp"
#include "test_support.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

using testing::kTol;

TEST(Multicast, SingleSubscriberEqualsUnicast) {
  const FlowNetwork net = testing::diamond(0.2);
  const MulticastDemand demand{0, {3}, 1};
  EXPECT_NEAR(multicast_reliability(net, demand).reliability,
              reliability_naive(net, {0, 3, 1}).reliability, kTol);
}

TEST(Multicast, TreeClosedForm) {
  // Balanced binary tree, all 7 peers subscribed: every link must be up
  // for everyone to receive, so R = (1-p)^|E|.
  Overlay overlay(7);
  SingleTreeOptions opts;
  opts.link_failure_prob = 0.1;
  add_single_tree(overlay, opts);
  MulticastDemand demand;
  demand.source = overlay.server();
  for (int i = 0; i < 7; ++i) demand.subscribers.push_back(overlay.peer(i));
  demand.rate = 1;
  EXPECT_NEAR(multicast_reliability(overlay.net(), demand).reliability,
              std::pow(0.9, 7.0), kTol);
}

TEST(Multicast, SubsetOfSubscribersIsEasier) {
  Overlay overlay(7);
  SingleTreeOptions opts;
  opts.link_failure_prob = 0.1;
  add_single_tree(overlay, opts);
  MulticastDemand all{overlay.server(), {}, 1};
  for (int i = 0; i < 7; ++i) all.subscribers.push_back(overlay.peer(i));
  MulticastDemand shallow{overlay.server(),
                          {overlay.peer(0), overlay.peer(1)}, 1};
  EXPECT_GT(multicast_reliability(overlay.net(), shallow).reliability,
            multicast_reliability(overlay.net(), all).reliability);
}

TEST(Multicast, EqualsProductOfSidesOnDisjointBranches) {
  // Star: server feeds two peers over independent links.
  Overlay overlay(2);
  overlay.net().add_directed_edge(overlay.server(), overlay.peer(0), 1, 0.2);
  overlay.net().add_directed_edge(overlay.server(), overlay.peer(1), 1, 0.3);
  const MulticastDemand demand{
      overlay.server(), {overlay.peer(0), overlay.peer(1)}, 1};
  EXPECT_NEAR(multicast_reliability(overlay.net(), demand).reliability,
              0.8 * 0.7, kTol);
}

TEST(Multicast, MonteCarloAgreesWithExact) {
  Overlay overlay(6);
  StripedTreesOptions opts;
  opts.stripes = 2;
  opts.link_failure_prob = 0.1;
  add_striped_trees(overlay, opts);
  MulticastDemand demand{overlay.server(),
                         {overlay.peer(2), overlay.peer(5)}, 2};
  const double exact =
      multicast_reliability(overlay.net(), demand).reliability;
  MonteCarloOptions mc;
  mc.samples = 40'000;
  mc.seed = 7;
  const MonteCarloResult estimate =
      multicast_reliability_monte_carlo(overlay.net(), demand, mc);
  EXPECT_TRUE(estimate.wilson95.contains(exact))
      << estimate.estimate << " vs " << exact;
}

TEST(Quorum, FullQuorumEqualsMulticastAndOneIsAnycast) {
  Overlay overlay(5);
  SingleTreeOptions opts;
  opts.link_failure_prob = 0.15;
  add_single_tree(overlay, opts);
  MulticastDemand demand{overlay.server(),
                         {overlay.peer(2), overlay.peer(3), overlay.peer(4)},
                         1};
  const double all =
      multicast_reliability(overlay.net(), demand).reliability;
  EXPECT_NEAR(quorum_reliability(overlay.net(), demand, 3).reliability, all,
              1e-9);
  // Anycast >= majority >= all (monotone in the quorum size).
  const double any =
      quorum_reliability(overlay.net(), demand, 1).reliability;
  const double majority =
      quorum_reliability(overlay.net(), demand, 2).reliability;
  EXPECT_GE(any, majority - 1e-12);
  EXPECT_GE(majority, all - 1e-12);
  EXPECT_GT(any, all);  // strict on a lossy tree
}

TEST(Quorum, MatchesBruteForceOnIndependentBranches) {
  // Server feeds 3 peers over independent links with p = 0.2, 0.3, 0.4.
  Overlay overlay(3);
  overlay.net().add_directed_edge(overlay.server(), overlay.peer(0), 1, 0.2);
  overlay.net().add_directed_edge(overlay.server(), overlay.peer(1), 1, 0.3);
  overlay.net().add_directed_edge(overlay.server(), overlay.peer(2), 1, 0.4);
  MulticastDemand demand{
      overlay.server(),
      {overlay.peer(0), overlay.peer(1), overlay.peer(2)},
      1};
  // P(>= 2 of three independent links up).
  const double p2 = 0.8 * 0.7 * 0.4 + 0.8 * 0.3 * 0.6 + 0.2 * 0.7 * 0.6 +
                    0.8 * 0.7 * 0.6;
  EXPECT_NEAR(quorum_reliability(overlay.net(), demand, 2).reliability, p2,
              1e-9);
}

TEST(Quorum, ValidatesQuorumRange) {
  const FlowNetwork net = testing::diamond(0.1);
  const MulticastDemand demand{0, {2, 3}, 1};
  EXPECT_THROW(quorum_reliability(net, demand, 0), std::invalid_argument);
  EXPECT_THROW(quorum_reliability(net, demand, 3), std::invalid_argument);
}

TEST(Multicast, ValidatesInput) {
  const FlowNetwork net = testing::diamond(0.1);
  EXPECT_THROW(multicast_reliability(net, {0, {}, 1}), std::invalid_argument);
  EXPECT_THROW(multicast_reliability(net, {0, {0}, 1}),
               std::invalid_argument);  // subscriber == source
  EXPECT_THROW(multicast_reliability(net, {0, {9}, 1}),
               std::invalid_argument);
  MonteCarloOptions mc;
  mc.samples = 0;
  EXPECT_THROW(multicast_reliability_monte_carlo(net, {0, {3}, 1}, mc),
               std::invalid_argument);
}

}  // namespace
}  // namespace streamrel
