// The API-wide error contract: deadline, budget and cancellation stops
// NEVER throw out of a public entry point — they surface as SolveStatus
// values (with bounds attached at the facade/session layer). Every
// registered engine is exercised under an already-expired deadline and a
// pre-cancelled context; the facade, QuerySession and BatchEvaluator are
// checked on top.

#include <gtest/gtest.h>

#include <vector>

#include "streamrel/core/batch_evaluator.hpp"
#include "streamrel/core/engine.hpp"
#include "streamrel/core/query_session.hpp"
#include "streamrel/graph/generators.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

/// Rate-1-capable undirected clustered instance: applicable() holds for
/// every built-in engine, so each one actually runs under the stop.
GeneratedNetwork contract_instance() {
  Xoshiro256 rng(11);
  ClusteredParams params;
  params.nodes_s = 6;
  params.extra_edges_s = 4;
  params.nodes_t = 6;
  params.extra_edges_t = 4;
  params.bottleneck_links = 2;
  return clustered_bottleneck(rng, params);
}

TEST(ErrorContract, NoEngineThrowsUnderExpiredDeadline) {
  const GeneratedNetwork g = contract_instance();
  const FlowDemand demand{g.source, g.sink, 1};

  for (const Engine* engine : EngineRegistry::instance().engines()) {
    if (!engine->applicable(g.net, demand)) continue;
    ExecContext ctx = ExecContext::with_deadline_ms(0.0);  // already expired
    SolveOptions options;
    options.method = engine->method();
    SolveReport report;
    EXPECT_NO_THROW(report = engine->solve(g.net, demand, options, &ctx))
        << engine->name();
    EXPECT_NE(report.result.status, SolveStatus::kExact) << engine->name();
  }
}

TEST(ErrorContract, NoEngineThrowsUnderCancelledContext) {
  const GeneratedNetwork g = contract_instance();
  const FlowDemand demand{g.source, g.sink, 1};

  for (const Engine* engine : EngineRegistry::instance().engines()) {
    if (!engine->applicable(g.net, demand)) continue;
    ExecContext ctx;
    ctx.request_cancel();
    SolveOptions options;
    options.method = engine->method();
    SolveReport report;
    EXPECT_NO_THROW(report = engine->solve(g.net, demand, options, &ctx))
        << engine->name();
    EXPECT_EQ(report.result.status, SolveStatus::kCancelled) << engine->name();
  }
}

TEST(ErrorContract, FacadeUnderOneMillisecondDeadlineDegradesToBounds) {
  const GeneratedNetwork g = contract_instance();
  const FlowDemand demand{g.source, g.sink, 2};

  ExecContext ctx = ExecContext::with_deadline_ms(0.0);
  SolveOptions options;
  options.context = &ctx;
  SolveReport report;
  EXPECT_NO_THROW(report = compute_reliability(g.net, demand, options));
  EXPECT_NE(report.result.status, SolveStatus::kExact);
  ASSERT_TRUE(report.bounds.has_value());
  EXPECT_LE(report.bounds->lower, report.bounds->upper);
}

TEST(ErrorContract, QuerySessionNeverThrowsOnStops) {
  const GeneratedNetwork g = contract_instance();
  const FlowDemand demand{g.source, g.sink, 2};
  QuerySession session(g.net);

  ExecContext expired = ExecContext::with_deadline_ms(0.0);
  SolveOptions options;
  options.context = &expired;
  SolveReport report;
  EXPECT_NO_THROW(report = session.solve(demand, options));
  EXPECT_NE(report.result.status, SolveStatus::kExact);
  ASSERT_TRUE(report.bounds.has_value());

  ExecContext cancelled;
  cancelled.request_cancel();
  options.context = &cancelled;
  EXPECT_NO_THROW(report = session.solve(demand, options));
  EXPECT_EQ(report.result.status, SolveStatus::kCancelled);
}

TEST(ErrorContract, BatchEvaluatorNeverThrowsOnStops) {
  const GeneratedNetwork g = contract_instance();
  std::vector<WhatIfQuery> queries(3);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    queries[i].demand = {g.source, g.sink, 2};
    queries[i].deadline_ms = i == 1 ? 0.0001 : 0.0;  // one per-query stop
  }

  QuerySession session(g.net);
  BatchReport batch;
  EXPECT_NO_THROW(batch = BatchEvaluator(session).evaluate(queries));
  ASSERT_EQ(batch.reports.size(), queries.size());
  EXPECT_NE(batch.reports[1].result.status, SolveStatus::kExact);
  ASSERT_TRUE(batch.reports[1].bounds.has_value());
  // The stopped query did not poison its neighbours.
  EXPECT_EQ(batch.reports[0].result.status, SolveStatus::kExact);
  EXPECT_EQ(batch.reports[2].result.status, SolveStatus::kExact);
}

TEST(ErrorContract, UsageErrorsStillThrow) {
  const GeneratedNetwork g = contract_instance();
  // Bad demand throws std::invalid_argument — that half of the contract
  // is unchanged.
  EXPECT_THROW(compute_reliability(g.net, {g.source, g.source, 1}),
               std::invalid_argument);
  QuerySession session(g.net);
  EXPECT_THROW(session.solve({g.source, g.source, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace streamrel
