#include "streamrel/core/reliability_facade.hpp"

#include <gtest/gtest.h>

#include "streamrel/graph/generators.hpp"
#include "streamrel/p2p/scenario.hpp"
#include "streamrel/reliability/naive.hpp"
#include "test_support.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

using testing::kTol;

TEST(Facade, AutoPicksBottleneckOnBridgedGraph) {
  const GeneratedNetwork g = make_fig2_bridge_graph(0.1);
  const FlowDemand demand{g.source, g.sink, 1};
  // Disable the reductions so the routing decision itself is under test
  // (with them on, this series-parallel graph never reaches a solver).
  SolveOptions options;
  options.use_reductions = false;
  const SolveReport report = compute_reliability(g.net, demand, options);
  EXPECT_EQ(report.method_used, Method::kBottleneck);
  ASSERT_TRUE(report.partition.has_value());
  EXPECT_EQ(report.partition->stats.k, 1);
  EXPECT_NEAR(report.result.reliability,
              reliability_naive(g.net, demand).reliability, kTol);
}

TEST(Facade, AutoFallsBackOnDenseGraph) {
  // A complete-ish small graph has no small balanced cut worth taking.
  FlowNetwork net(5);
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) {
      net.add_undirected_edge(u, v, 1, 0.2);
    }
  }
  const FlowDemand demand{0, 4, 1};
  const SolveReport report = compute_reliability(net, demand);
  EXPECT_NE(report.method_used, Method::kBottleneck);
  EXPECT_NEAR(report.result.reliability,
              reliability_naive(net, demand).reliability, kTol);
}

TEST(Facade, ExplicitMethodsAgree) {
  Xoshiro256 rng(2468);
  for (int trial = 0; trial < 10; ++trial) {
    ClusteredParams params;
    params.nodes_s = 4;
    params.nodes_t = 4;
    params.bottleneck_links = 2;
    const GeneratedNetwork g = clustered_bottleneck(rng, params);
    const FlowDemand demand{g.source, g.sink, 1};
    SolveOptions naive_opts;
    naive_opts.method = Method::kNaive;
    SolveOptions factoring_opts;
    factoring_opts.method = Method::kFactoring;
    SolveOptions bottleneck_opts;
    bottleneck_opts.method = Method::kBottleneck;
    const double a =
        compute_reliability(g.net, demand, naive_opts).result.reliability;
    const double b =
        compute_reliability(g.net, demand, factoring_opts).result.reliability;
    const double c =
        compute_reliability(g.net, demand, bottleneck_opts).result.reliability;
    EXPECT_NEAR(a, b, kTol);
    EXPECT_NEAR(a, c, kTol);
  }
}

TEST(Facade, BottleneckRequestWithoutPartitionThrows) {
  // A single edge s - t: the only "cut" leaves a side empty of links but
  // IS a valid partition, so use a complete graph instead where the
  // search finds nothing within limits.
  FlowNetwork net(4);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) {
      net.add_undirected_edge(u, v, 1, 0.2);
      net.add_undirected_edge(u, v, 1, 0.2);
    }
  }
  SolveOptions options;
  options.method = Method::kBottleneck;
  options.partition_search.max_k = 2;  // every cut here needs >= 4 links
  EXPECT_THROW(compute_reliability(net, {0, 3, 1}, options),
               std::invalid_argument);
}

TEST(Facade, ExplicitFrontierMethod) {
  const GeneratedNetwork g = make_fig2_bridge_graph(0.1);
  const FlowDemand demand{g.source, g.sink, 1};
  SolveOptions options;
  options.method = Method::kFrontier;
  const SolveReport report = compute_reliability(g.net, demand, options);
  EXPECT_EQ(report.method_used, Method::kFrontier);
  EXPECT_NEAR(report.result.reliability,
              reliability_naive(g.net, demand).reliability, kTol);
}

TEST(Facade, AutoUsesFrontierOnHugeRateOneLadders) {
  // 40 rungs = 118 links: no mask-based method can run; factoring would
  // struggle; the frontier DP answers instantly. (Reductions off — with
  // them on, ladders are series-parallel and collapse before any solver.)
  const GeneratedNetwork g = ladder_network(40, 1, 0.05);
  const FlowDemand demand{g.source, g.sink, 1};
  SolveOptions options;
  options.use_reductions = false;
  const SolveReport report = compute_reliability(g.net, demand, options);
  EXPECT_EQ(report.method_used, Method::kFrontier);
  EXPECT_GT(report.result.reliability, 0.0);
  EXPECT_LT(report.result.reliability, 1.0);
}

TEST(Facade, ReductionsAndFrontierAgreeOnHugeLadders) {
  const GeneratedNetwork g = ladder_network(40, 1, 0.05);
  const FlowDemand demand{g.source, g.sink, 1};
  SolveOptions frontier_only;
  frontier_only.use_reductions = false;
  const double via_frontier =
      compute_reliability(g.net, demand, frontier_only).result.reliability;
  const SolveReport reduced = compute_reliability(g.net, demand);
  EXPECT_GT(reduced.links_reduced, 0);
  EXPECT_NEAR(reduced.result.reliability, via_frontier, 1e-9);
}

TEST(Facade, ReductionsSolveSeriesParallelGraphsOutright) {
  const GeneratedNetwork g = make_fig2_bridge_graph(0.1);
  const FlowDemand demand{g.source, g.sink, 1};
  const SolveReport report = compute_reliability(g.net, demand);
  // The whole Fig.-2 graph is series-parallel: fully reduced, no
  // exponential method ever ran.
  EXPECT_EQ(report.links_reduced, 8);
  EXPECT_NEAR(report.result.reliability,
              reliability_naive(g.net, demand).reliability, kTol);

  SolveOptions no_red;
  no_red.use_reductions = false;
  const SolveReport plain = compute_reliability(g.net, demand, no_red);
  EXPECT_EQ(plain.links_reduced, 0);
  EXPECT_NEAR(plain.result.reliability, report.result.reliability, kTol);
}

TEST(Facade, ReductionsPreserveExactnessOnRandomRateOneDemands) {
  Xoshiro256 rng(777777);
  for (int trial = 0; trial < 25; ++trial) {
    const GeneratedNetwork g = random_multigraph(
        rng, static_cast<int>(rng.uniform_int(2, 7)),
        static_cast<int>(rng.uniform_int(1, 12)), {0, 2}, {0.05, 0.5});
    const FlowDemand demand{g.source, g.sink, 1};
    EXPECT_NEAR(compute_reliability(g.net, demand).result.reliability,
                reliability_naive(g.net, demand).reliability, kTol)
        << "trial " << trial;
  }
}

TEST(Facade, FrontierMethodPropagatesItsPreconditions) {
  const GeneratedNetwork g = make_fig4_graph(0.1);
  SolveOptions options;
  options.method = Method::kFrontier;
  // d = 2 is outside the frontier oracle's scope.
  EXPECT_THROW(compute_reliability(g.net, {g.source, g.sink, 2}, options),
               std::invalid_argument);
  FlowNetwork directed(2);
  directed.add_directed_edge(0, 1, 1, 0.1);
  EXPECT_THROW(compute_reliability(directed, {0, 1, 1}, options),
               std::invalid_argument);
}

TEST(Facade, ChecksDemand) {
  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 1, 0.1);
  EXPECT_THROW(compute_reliability(net, {0, 0, 1}), std::invalid_argument);
}

TEST(Facade, TwoIspScenarioEndToEnd) {
  const GeneratedNetwork g = make_two_isp_scenario({});
  const FlowDemand demand{g.source, g.sink, 2};
  const SolveReport report = compute_reliability(g.net, demand);
  EXPECT_GT(report.result.reliability, 0.0);
  EXPECT_LT(report.result.reliability, 1.0);
  EXPECT_NEAR(report.result.reliability,
              reliability_naive(g.net, demand).reliability, kTol);
}

}  // namespace
}  // namespace streamrel
