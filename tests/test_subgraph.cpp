#include "streamrel/graph/subgraph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace streamrel {
namespace {

FlowNetwork make_net() {
  FlowNetwork net(5);
  net.add_undirected_edge(0, 1, 2, 0.1);  // inside
  net.add_undirected_edge(1, 2, 3, 0.2);  // inside
  net.add_undirected_edge(2, 3, 1, 0.3);  // crossing (3 outside)
  net.add_directed_edge(3, 4, 1, 0.4);    // outside
  net.add_undirected_edge(0, 2, 4, 0.5);  // inside
  return net;
}

TEST(Subgraph, KeepsOnlyInternalEdgesWithAttributes) {
  const FlowNetwork net = make_net();
  const Subgraph sub =
      induced_subgraph(net, {true, true, true, false, false});
  EXPECT_EQ(sub.net.num_nodes(), 3);
  EXPECT_EQ(sub.net.num_edges(), 3);
  // Edge attributes survive the copy.
  EXPECT_EQ(sub.net.edge(1).capacity, 3);
  EXPECT_DOUBLE_EQ(sub.net.edge(2).failure_prob, 0.5);
}

TEST(Subgraph, NodeAndEdgeMapsAreInverse) {
  const FlowNetwork net = make_net();
  const Subgraph sub =
      induced_subgraph(net, {true, true, true, false, false});
  for (std::size_t sid = 0; sid < sub.node_map.size(); ++sid) {
    const NodeId orig = sub.node_map[sid];
    EXPECT_EQ(sub.node_to_sub[static_cast<std::size_t>(orig)],
              static_cast<NodeId>(sid));
  }
  for (std::size_t sid = 0; sid < sub.edge_map.size(); ++sid) {
    const EdgeId orig = sub.edge_map[sid];
    EXPECT_EQ(sub.edge_to_sub[static_cast<std::size_t>(orig)],
              static_cast<EdgeId>(sid));
  }
  // Excluded entities map to invalid.
  EXPECT_EQ(sub.node_to_sub[3], kInvalidNode);
  EXPECT_EQ(sub.edge_to_sub[2], kInvalidEdge);
  EXPECT_EQ(sub.edge_to_sub[3], kInvalidEdge);
}

TEST(Subgraph, EndpointsRemapped) {
  const FlowNetwork net = make_net();
  const Subgraph sub =
      induced_subgraph(net, {false, false, true, true, true});
  // Kept edges: 2-3 and 3->4.
  EXPECT_EQ(sub.net.num_edges(), 2);
  const Edge& d = sub.net.edge(1);
  EXPECT_TRUE(d.directed());
  EXPECT_EQ(sub.node_map[static_cast<std::size_t>(d.u)], 3);
  EXPECT_EQ(sub.node_map[static_cast<std::size_t>(d.v)], 4);
}

TEST(Subgraph, ProjectAndLiftMasksRoundTrip) {
  const FlowNetwork net = make_net();
  const Subgraph sub =
      induced_subgraph(net, {true, true, true, false, false});
  // Original alive mask covering edges 0, 2 (crossing, dropped), 4.
  const Mask original = mask_of({0, 2, 4});
  const Mask projected = project_mask(sub, original);
  EXPECT_EQ(projected, mask_of({0, 2}));  // sub edges 0 (orig 0), 2 (orig 4)
  EXPECT_EQ(lift_mask(sub, projected), mask_of({0, 4}));
}

TEST(Subgraph, EmptySelection) {
  const FlowNetwork net = make_net();
  const Subgraph sub =
      induced_subgraph(net, {false, false, false, false, false});
  EXPECT_EQ(sub.net.num_nodes(), 0);
  EXPECT_EQ(sub.net.num_edges(), 0);
}

TEST(MergeSources, SuperSourceFeedsAllServers) {
  FlowNetwork net(4);
  net.add_undirected_edge(0, 2, 2, 0.1);
  net.add_undirected_edge(1, 2, 3, 0.1);
  net.add_undirected_edge(2, 3, 4, 0.1);
  const NodeId super = merge_sources(net, {0, 1});
  EXPECT_EQ(super, 4);
  EXPECT_EQ(net.num_edges(), 5);
  // Feed links are perfect and directed, appended after existing edges.
  for (EdgeId id = 3; id < 5; ++id) {
    EXPECT_TRUE(net.edge(id).directed());
    EXPECT_DOUBLE_EQ(net.edge(id).failure_prob, 0.0);
    EXPECT_EQ(net.edge(id).u, super);
  }
}

TEST(MergeSources, ValidatesInput) {
  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 1, 0.1);
  EXPECT_THROW(merge_sources(net, {}), std::invalid_argument);
  EXPECT_THROW(merge_sources(net, {5}), std::invalid_argument);
}

TEST(Subgraph, RejectsSizeMismatch) {
  const FlowNetwork net = make_net();
  EXPECT_THROW(induced_subgraph(net, {true, false}), std::invalid_argument);
}

}  // namespace
}  // namespace streamrel
