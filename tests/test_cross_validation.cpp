// Cross-oracle consistency matrix: one corpus of representative
// instances, EVERY applicable method checked against the naive reference
// on each. This is the suite that would catch a regression that happens
// to slip through a module's own unit tests.

#include <gtest/gtest.h>

#include "streamrel/core/reliability_facade.hpp"
#include "streamrel/graph/generators.hpp"
#include "streamrel/p2p/mesh_builder.hpp"
#include "streamrel/p2p/scenario.hpp"
#include "streamrel/p2p/tree_builder.hpp"
#include "streamrel/reliability/bounds.hpp"
#include "streamrel/reliability/frontier.hpp"
#include "streamrel/reliability/monte_carlo.hpp"
#include "streamrel/reliability/reductions.hpp"
#include "streamrel/reliability/throughput.hpp"
#include "test_support.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

struct Case {
  std::string name;
  FlowNetwork net;
  FlowDemand demand;
};

std::vector<Case> corpus() {
  std::vector<Case> cases;
  {
    const GeneratedNetwork g = make_fig2_bridge_graph(0.12);
    cases.push_back({"fig2_bridge_d1", g.net, {g.source, g.sink, 1}});
  }
  {
    const GeneratedNetwork g = make_fig4_graph(0.2);
    cases.push_back({"fig4_d2", g.net, {g.source, g.sink, 2}});
  }
  {
    TwoIspParams params;
    params.peers_per_isp = 4;
    params.seed = 5;
    const GeneratedNetwork g = make_two_isp_scenario(params);
    cases.push_back({"two_isp_d2", g.net, {g.source, g.sink, 2}});
  }
  {
    const GeneratedNetwork g = ladder_network(5, 1, 0.15);
    cases.push_back({"ladder5_d1", g.net, {g.source, g.sink, 1}});
  }
  {
    const GeneratedNetwork g = grid_network(3, 3, 1, 0.1);
    cases.push_back({"grid3x3_d1", g.net, {g.source, g.sink, 1}});
  }
  {
    cases.push_back({"diamond_d1", testing::diamond(0.3), {0, 3, 1}});
  }
  {
    const GeneratedNetwork g = parallel_links(5, 1, 0.25);
    cases.push_back({"parallel5_d3", g.net, {g.source, g.sink, 3}});
  }
  {
    Xoshiro256 rng(17);
    ClusteredParams params;
    params.bottleneck_links = 3;
    params.bottleneck_caps = {1, 2};
    params.kind = EdgeKind::kDirected;
    const GeneratedNetwork g = clustered_bottleneck(rng, params);
    cases.push_back({"directed_cluster_d2", g.net, {g.source, g.sink, 2}});
  }
  {
    Overlay overlay(6);
    StripedTreesOptions opts;
    opts.stripes = 2;
    opts.link_failure_prob = 0.12;
    add_striped_trees(overlay, opts);
    cases.push_back({"striped_trees_d2", overlay.net(),
                     overlay.demand_to(overlay.peer(5), 2)});
  }
  {
    Overlay overlay(7);
    Xoshiro256 rng(23);
    MeshOptions opts;
    opts.degree = 2;
    add_random_mesh(overlay, rng, opts);
    cases.push_back({"mesh_d1", overlay.net(),
                     overlay.demand_to(overlay.peer(6), 1)});
  }
  {
    Xoshiro256 rng(29);
    const GeneratedNetwork g = small_world(rng, 8, 2, 0.3, {1, 2},
                                           {0.1, 0.3});
    cases.push_back({"small_world_d1", g.net, {g.source, g.sink, 1}});
  }
  {
    Xoshiro256 rng(31);
    const GeneratedNetwork g =
        preferential_attachment(rng, 8, 2, {1, 2}, {0.1, 0.3});
    cases.push_back({"pref_attach_d2", g.net, {g.source, g.sink, 2}});
  }
  return cases;
}

class CrossValidationTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrossValidationTest, EveryApplicableMethodAgrees) {
  const Case c = corpus()[GetParam()];
  ASSERT_LE(c.net.num_edges(), 22) << "corpus instance too big for naive";
  const double reference = reliability_naive(c.net, c.demand).reliability;

  // Naive strategies.
  for (NaiveStrategy strategy :
       {NaiveStrategy::kGrayIncremental, NaiveStrategy::kParallel}) {
    NaiveOptions options;
    options.strategy = strategy;
    EXPECT_NEAR(reliability_naive(c.net, c.demand, options).reliability,
                reference, 1e-9)
        << "naive strategy " << static_cast<int>(strategy);
  }

  // Factoring.
  EXPECT_NEAR(reliability_factoring(c.net, c.demand).reliability, reference,
              1e-9);

  // Facade (auto routing, whatever it picks, including reductions).
  EXPECT_NEAR(compute_reliability(c.net, c.demand).result.reliability,
              reference, 1e-9);

  // Throughput distribution top level.
  const auto dist = throughput_distribution(c.net, c.demand);
  EXPECT_NEAR(dist.at_least.back(), reference, 1e-9);

  // Bounds envelope.
  EXPECT_TRUE(reliability_bounds(c.net, c.demand).contains(reference));

  // Monte Carlo: assert against a 99.99% interval so the matrix stays
  // deterministic-ish (a 95% check would be EXPECTED to fail for some
  // corpus member every few seeds).
  MonteCarloOptions mc;
  mc.samples = 30'000;
  mc.seed = 97 + GetParam();
  const MonteCarloResult estimate =
      reliability_monte_carlo(c.net, c.demand, mc);
  const Interval wide =
      wilson_interval(estimate.successes, estimate.samples, /*z=*/3.89);
  EXPECT_TRUE(wide.contains(reference))
      << "MC 99.99% interval missed: " << estimate.estimate << " vs "
      << reference;

  // Rate-1 extras: frontier DP and series-parallel reductions.
  bool undirected = true;
  for (const Edge& e : c.net.edges()) undirected &= !e.directed();
  if (c.demand.rate == 1 && undirected) {
    EXPECT_NEAR(reliability_connectivity(c.net, c.demand).reliability,
                reference, 1e-9);
    const ReducedNetwork red =
        reduce_for_connectivity(c.net, c.demand.source, c.demand.sink);
    const double reduced_r =
        red.net.num_edges() == 0
            ? 0.0
            : reliability_naive(red.net, {red.source, red.sink, 1})
                  .reliability;
    EXPECT_NEAR(reduced_r, reference, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, CrossValidationTest,
    ::testing::Range<std::size_t>(0, corpus().size()),
    [](const ::testing::TestParamInfo<std::size_t>& param_info) {
      return corpus()[param_info.param].name;
    });

}  // namespace
}  // namespace streamrel
