#include "streamrel/graph/dot_export.hpp"

#include <gtest/gtest.h>

#include "streamrel/p2p/scenario.hpp"

namespace streamrel {
namespace {

TEST(DotExport, UndirectedGraphUsesGraphSyntax) {
  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 3, 0.25);
  const std::string dot = to_dot(net);
  EXPECT_EQ(dot.rfind("graph ", 0), 0u);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("c=3"), std::string::npos);
  EXPECT_NE(dot.find("p=0.25"), std::string::npos);
}

TEST(DotExport, DirectedGraphUsesDigraphSyntax) {
  FlowNetwork net(2);
  net.add_directed_edge(0, 1, 1, 0.1);
  const std::string dot = to_dot(net);
  EXPECT_EQ(dot.rfind("digraph ", 0), 0u);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

TEST(DotExport, MixedGraphMarksUndirectedEdges) {
  FlowNetwork net(3);
  net.add_directed_edge(0, 1, 1, 0.1);
  net.add_undirected_edge(1, 2, 1, 0.1);
  const std::string dot = to_dot(net);
  EXPECT_EQ(dot.rfind("digraph ", 0), 0u);
  EXPECT_NE(dot.find("dir=none"), std::string::npos);
}

TEST(DotExport, OptionsRender) {
  const GeneratedNetwork g = make_fig2_bridge_graph(0.1);
  DotOptions options;
  options.source = g.source;
  options.sink = g.sink;
  options.side_s = g.side_s;
  options.highlight = {8};
  options.show_probabilities = false;
  const std::string dot = to_dot(g.net, options);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=lightgray"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  EXPECT_EQ(dot.find("p=0.1"), std::string::npos);
}

TEST(DotExport, EveryNodeAndEdgeAppears) {
  const GeneratedNetwork g = make_fig4_graph(0.1);
  const std::string dot = to_dot(g.net);
  for (NodeId n = 0; n < g.net.num_nodes(); ++n) {
    std::string token = "n";
    token += std::to_string(n);
    token += ' ';
    EXPECT_NE(dot.find(token), std::string::npos);
  }
  for (EdgeId id = 0; id < g.net.num_edges(); ++id) {
    std::string token = "e";
    token += std::to_string(id);
    token += ':';
    EXPECT_NE(dot.find(token), std::string::npos);
  }
}

}  // namespace
}  // namespace streamrel
