#include "streamrel/core/query_session.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "streamrel/graph/generators.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

/// Clustered instance with a genuine bottleneck, big enough that the
/// kAuto chain picks the decomposition but small enough for fast tests.
GeneratedNetwork test_instance(std::uint64_t seed = 5) {
  Xoshiro256 rng(seed);
  ClusteredParams params;
  params.nodes_s = 5;
  params.extra_edges_s = 3;
  params.nodes_t = 4;
  params.extra_edges_t = 2;
  params.bottleneck_links = 2;
  params.bottleneck_caps = {1, 3};
  return clustered_bottleneck(rng, params);
}

TEST(QuerySession, WarmAnswersAreBitwiseEqualToCold) {
  const GeneratedNetwork g = test_instance();
  const FlowDemand demand{g.source, g.sink, 2};

  QuerySession session(g.net);
  const SolveReport cold = session.solve(demand);
  EXPECT_EQ(session.cache_hits(), 0u);
  EXPECT_GT(session.cache_misses(), 0u);

  const SolveReport warm = session.solve(demand);
  EXPECT_GT(session.cache_hits(), 0u);
  // Bitwise, not approximate: the warm path reuses the cold arithmetic.
  EXPECT_EQ(warm.result.reliability, cold.result.reliability);
  EXPECT_EQ(warm.result.status, SolveStatus::kExact);
}

TEST(QuerySession, MatchesFacadeAnswerExactly) {
  const GeneratedNetwork g = test_instance();
  const FlowDemand demand{g.source, g.sink, 2};

  QuerySession session(g.net);
  const SolveReport facade = compute_reliability(g.net, demand);
  const SolveReport served = session.solve(demand);
  EXPECT_EQ(served.result.reliability, facade.result.reliability);
  EXPECT_EQ(served.method_used, facade.method_used);
}

TEST(QuerySession, OverridesMatchEditedNetworkSolve) {
  const GeneratedNetwork g = test_instance();
  const FlowDemand demand{g.source, g.sink, 2};
  const std::vector<ProbOverride> overrides{{0, 0.33}, {3, 0.05}};

  QuerySession session(g.net);
  session.solve(demand);  // warm the caches
  const SolveReport what_if = session.solve(demand, {}, overrides);

  FlowNetwork edited = g.net;
  for (const ProbOverride& o : overrides) {
    edited.set_failure_prob(o.edge, o.failure_prob);
  }
  const SolveReport facade = compute_reliability(edited, demand);
  EXPECT_EQ(what_if.result.reliability, facade.result.reliability);

  // The what-if left the session network untouched.
  EXPECT_EQ(session.network().edge(0).failure_prob, g.net.edge(0).failure_prob);
  const SolveReport base_again = session.solve(demand);
  EXPECT_EQ(base_again.result.reliability,
            compute_reliability(g.net, demand).result.reliability);
}

TEST(QuerySession, ProbabilityEditKeepsCaches) {
  const GeneratedNetwork g = test_instance();
  const FlowDemand demand{g.source, g.sink, 2};

  QuerySession session(g.net);
  session.solve(demand);
  const std::uint64_t misses_after_cold = session.cache_misses();

  session.set_failure_prob(0, 0.42);
  const SolveReport served = session.solve(demand);
  EXPECT_EQ(session.cache_misses(), misses_after_cold);  // no rebuild
  EXPECT_GT(session.cache_hits(), 0u);
  EXPECT_EQ(session.cache_invalidations(), 0u);

  FlowNetwork edited = g.net;
  edited.set_failure_prob(0, 0.42);
  EXPECT_EQ(served.result.reliability,
            compute_reliability(edited, demand).result.reliability);
}

TEST(QuerySession, CapacityEditInvalidatesAndRecomputes) {
  const GeneratedNetwork g = test_instance();
  const FlowDemand demand{g.source, g.sink, 2};

  QuerySession session(g.net);
  session.solve(demand);
  const std::uint64_t misses_after_cold = session.cache_misses();

  // Raising a bottleneck-link capacity changes the assignment set, so a
  // stale mask table would silently produce a wrong answer.
  EdgeId edge = 0;
  for (EdgeId e = 0; e < g.net.num_edges(); ++e) {
    const Edge& link = g.net.edge(e);
    if (g.side_s[static_cast<std::size_t>(link.u)] !=
        g.side_s[static_cast<std::size_t>(link.v)]) {
      edge = e;
      break;
    }
  }
  session.set_capacity(edge, session.network().edge(edge).capacity + 1);
  EXPECT_EQ(session.cache_invalidations(), 1u);

  const SolveReport served = session.solve(demand);
  EXPECT_GT(session.cache_misses(), misses_after_cold);  // rebuilt

  FlowNetwork edited = g.net;
  edited.set_capacity(edge, edited.edge(edge).capacity + 1);
  EXPECT_EQ(served.result.reliability,
            compute_reliability(edited, demand).result.reliability);
}

TEST(QuerySession, LruEvictsUnderTinyBound) {
  const GeneratedNetwork g = test_instance();

  QueryCacheOptions cache;
  cache.max_mask_tables = 1;
  QuerySession session(g.net, cache);

  // Two distinct demands -> two mask tables; bound 1 forces an eviction.
  // (Rates 2 and 3: rate-1 undirected queries are reduction-eligible and
  // bypass the caches.)
  session.solve({g.source, g.sink, 2});
  session.solve({g.source, g.sink, 3});
  EXPECT_GE(session.cache_evictions(), 1u);

  // The evicted demand still answers correctly (rebuild, not corruption).
  const SolveReport again = session.solve({g.source, g.sink, 2});
  EXPECT_EQ(again.result.reliability,
            compute_reliability(g.net, {g.source, g.sink, 2})
                .result.reliability);
}

TEST(QuerySession, InvalidOverridesThrow) {
  const GeneratedNetwork g = test_instance();
  QuerySession session(g.net);
  const FlowDemand demand{g.source, g.sink, 1};
  const std::vector<ProbOverride> bad_edge{{g.net.num_edges(), 0.1}};
  EXPECT_THROW(session.solve(demand, {}, bad_edge), std::invalid_argument);
  const std::vector<ProbOverride> bad_prob{{0, 1.5}};
  EXPECT_THROW(session.solve(demand, {}, bad_prob), std::invalid_argument);
}

TEST(QuerySession, DisabledCacheStillAnswersCorrectly) {
  const GeneratedNetwork g = test_instance();
  const FlowDemand demand{g.source, g.sink, 2};

  QueryCacheOptions cache;
  cache.enabled = false;
  QuerySession session(g.net, cache);
  const SolveReport a = session.solve(demand);
  const SolveReport b = session.solve(demand);
  EXPECT_EQ(session.cache_hits(), 0u);
  EXPECT_EQ(a.result.reliability, b.result.reliability);
  EXPECT_EQ(a.result.reliability,
            compute_reliability(g.net, demand).result.reliability);
}

TEST(QuerySession, TelemetryCountsQueries) {
  const GeneratedNetwork g = test_instance();
  QuerySession session(g.net);
  session.solve({g.source, g.sink, 1});
  session.solve({g.source, g.sink, 1});
  EXPECT_EQ(session.telemetry().counter_or(telemetry_keys::kQueries), 2u);
}

// Finds an edge strictly inside the source-side cluster (never crossing).
EdgeId side_internal_edge(const GeneratedNetwork& g, bool source_side) {
  for (EdgeId e = 0; e < g.net.num_edges(); ++e) {
    const Edge& link = g.net.edge(e);
    const bool u_s = g.side_s[static_cast<std::size_t>(link.u)];
    const bool v_s = g.side_s[static_cast<std::size_t>(link.v)];
    if (u_s == v_s && u_s == source_side) return e;
  }
  ADD_FAILURE() << "instance has no side-internal edge";
  return 0;
}

TEST(QuerySession, SideInternalCapacityEditSalvagesTheOtherSide) {
  const GeneratedNetwork g = test_instance();
  const FlowDemand demand{g.source, g.sink, 2};

  QuerySession session(g.net);
  session.solve(demand);  // warm: one cached mask entry

  const EdgeId inside_s = side_internal_edge(g, true);
  NetworkDelta delta;
  delta.set_capacity(inside_s, g.net.edge(inside_s).capacity + 1);
  const DeltaOutcome outcome = session.apply_delta(delta);

  // Touch confined to side s: the entry is dropped but side t is
  // salvaged — a partial invalidation, with the partition kept.
  EXPECT_EQ(outcome.applied, DeltaClass::kCapacityOnly);
  EXPECT_EQ(outcome.entries_partial, 1u);
  EXPECT_EQ(outcome.entries_full, 0u);
  EXPECT_GE(outcome.partitions_survived, 1u);
  EXPECT_GE(outcome.assignments_survived, 1u);
  EXPECT_EQ(session.cache_invalidations_partial(), 1u);
  EXPECT_EQ(session.cache_invalidations_full(), 0u);

  // The rebuild adopts the salvaged side and stays bitwise-correct.
  const SolveReport served = session.solve(demand);
  FlowNetwork edited = g.net;
  edited.set_capacity(inside_s, edited.edge(inside_s).capacity + 1);
  EXPECT_EQ(served.result.reliability,
            compute_reliability(edited, demand).result.reliability);
  const Telemetry* cache = session.telemetry().find_child("cache");
  ASSERT_NE(cache, nullptr);
  const Telemetry* masks = cache->find_child("masks");
  ASSERT_NE(masks, nullptr);
  EXPECT_EQ(masks->counter_or(telemetry_keys::kSideRepairs), 1u);
}

TEST(QuerySession, CrossingCapacityEditDropsEntryAndAssignments) {
  const GeneratedNetwork g = test_instance();
  const FlowDemand demand{g.source, g.sink, 2};

  QuerySession session(g.net);
  session.solve(demand);

  // A crossing edge joins the two clusters.
  EdgeId crossing = 0;
  for (EdgeId e = 0; e < g.net.num_edges(); ++e) {
    const Edge& link = g.net.edge(e);
    if (g.side_s[static_cast<std::size_t>(link.u)] !=
        g.side_s[static_cast<std::size_t>(link.v)]) {
      crossing = e;
      break;
    }
  }
  NetworkDelta delta;
  delta.set_capacity(crossing, g.net.edge(crossing).capacity + 1);
  const DeltaOutcome outcome = session.apply_delta(delta);

  EXPECT_EQ(outcome.entries_full, 1u);
  EXPECT_EQ(outcome.entries_partial, 0u);
  EXPECT_EQ(outcome.assignments_survived, 0u);  // assignment set was dropped
  EXPECT_GE(outcome.partitions_survived, 1u);   // candidates are kept

  const SolveReport served = session.solve(demand);
  FlowNetwork edited = g.net;
  edited.set_capacity(crossing, edited.edge(crossing).capacity + 1);
  EXPECT_EQ(served.result.reliability,
            compute_reliability(edited, demand).result.reliability);
}

TEST(QuerySession, ProbabilityDeltaSurvivesAllLayers) {
  const GeneratedNetwork g = test_instance();
  const FlowDemand demand{g.source, g.sink, 2};

  QuerySession session(g.net);
  session.solve(demand);

  NetworkDelta delta;
  delta.set_failure_prob(0, 0.42).set_failure_prob(1, 0.17);
  const DeltaOutcome outcome = session.apply_delta(delta);
  EXPECT_EQ(outcome.applied, DeltaClass::kProbabilityOnly);
  EXPECT_EQ(outcome.entries_survived, 1u);
  EXPECT_EQ(outcome.entries_full, 0u);
  EXPECT_EQ(session.cache_survived(), 1u);

  const std::uint64_t misses = session.cache_misses();
  const SolveReport served = session.solve(demand);
  EXPECT_EQ(session.cache_misses(), misses);  // no rebuild at all

  FlowNetwork edited = g.net;
  edited.set_failure_prob(0, 0.42);
  edited.set_failure_prob(1, 0.17);
  EXPECT_EQ(served.result.reliability,
            compute_reliability(edited, demand).result.reliability);
}

TEST(QuerySession, InvalidDeltaIsAtomic) {
  const GeneratedNetwork g = test_instance();
  const FlowDemand demand{g.source, g.sink, 2};
  QuerySession session(g.net);
  session.solve(demand);
  const std::uint64_t misses = session.cache_misses();

  NetworkDelta bad;
  bad.set_failure_prob(0, 0.3).set_capacity(g.net.num_edges(), 2);
  EXPECT_THROW(session.apply_delta(bad), std::invalid_argument);

  // Neither the network nor the caches moved.
  EXPECT_EQ(session.network().edge(0).failure_prob,
            g.net.edge(0).failure_prob);
  session.solve(demand);
  EXPECT_EQ(session.cache_misses(), misses);
}

TEST(QuerySession, AliasProbabilityEditFastPathKeepsCaches) {
  const GeneratedNetwork g = test_instance();
  const FlowDemand demand{g.source, g.sink, 2};

  QuerySession session(g.net);
  const SolveReport before = session.solve(demand);
  (void)before;
  const std::uint64_t misses = session.cache_misses();

  // The documented alias flow: edit probabilities directly, then declare
  // the edit class. Structural artifacts must survive.
  session.mutable_network().set_failure_prob(0, 0.37);
  session.invalidate(DeltaClass::kProbabilityOnly);
  EXPECT_EQ(session.cache_invalidations(), 0u);
  EXPECT_GE(session.cache_survived(), 1u);

  const SolveReport served = session.solve(demand);
  EXPECT_EQ(session.cache_misses(), misses);  // fast path: no rebuild

  FlowNetwork edited = g.net;
  edited.set_failure_prob(0, 0.37);
  EXPECT_EQ(served.result.reliability,
            compute_reliability(edited, demand).result.reliability);
}

TEST(QuerySession, AliasStructuralEditFlushesEverything) {
  const GeneratedNetwork g = test_instance();
  const FlowDemand demand{g.source, g.sink, 2};

  QuerySession session(g.net);
  session.solve(demand);

  session.mutable_network().set_capacity(0, g.net.edge(0).capacity + 1);
  session.invalidate(DeltaClass::kCapacityOnly);  // touched set unknown
  EXPECT_EQ(session.cache_invalidations(), 1u);
  EXPECT_GE(session.cache_invalidations_full(), 1u);

  const SolveReport served = session.solve(demand);
  FlowNetwork edited = g.net;
  edited.set_capacity(0, edited.edge(0).capacity + 1);
  EXPECT_EQ(served.result.reliability,
            compute_reliability(edited, demand).result.reliability);
}

TEST(QuerySession, TopologyDeltaTranslatesAndRecovers) {
  const GeneratedNetwork g = test_instance();
  FlowDemand demand{g.source, g.sink, 2};

  QuerySession session(g.net);
  session.solve(demand);

  NetworkDelta join;
  const NodeId peer = join.add_node(g.net.num_nodes());
  join.add_edge(g.source, peer, 1, 0.1);
  join.add_edge(peer, g.sink, 1, 0.1);
  const DeltaOutcome outcome = session.apply_delta(join);
  EXPECT_EQ(outcome.applied, DeltaClass::kTopology);
  EXPECT_EQ(outcome.entries_full, 1u);  // the warm entry was flushed

  demand.source = outcome.node_map[static_cast<std::size_t>(g.source)];
  demand.sink = outcome.node_map[static_cast<std::size_t>(g.sink)];
  const SolveReport served = session.solve(demand);
  EXPECT_EQ(served.result.reliability,
            compute_reliability(session.network(), demand)
                .result.reliability);
}

}  // namespace
}  // namespace streamrel
