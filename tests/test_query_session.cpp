#include "streamrel/core/query_session.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "streamrel/graph/generators.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

/// Clustered instance with a genuine bottleneck, big enough that the
/// kAuto chain picks the decomposition but small enough for fast tests.
GeneratedNetwork test_instance(std::uint64_t seed = 5) {
  Xoshiro256 rng(seed);
  ClusteredParams params;
  params.nodes_s = 5;
  params.extra_edges_s = 3;
  params.nodes_t = 4;
  params.extra_edges_t = 2;
  params.bottleneck_links = 2;
  params.bottleneck_caps = {1, 3};
  return clustered_bottleneck(rng, params);
}

TEST(QuerySession, WarmAnswersAreBitwiseEqualToCold) {
  const GeneratedNetwork g = test_instance();
  const FlowDemand demand{g.source, g.sink, 2};

  QuerySession session(g.net);
  const SolveReport cold = session.solve(demand);
  EXPECT_EQ(session.cache_hits(), 0u);
  EXPECT_GT(session.cache_misses(), 0u);

  const SolveReport warm = session.solve(demand);
  EXPECT_GT(session.cache_hits(), 0u);
  // Bitwise, not approximate: the warm path reuses the cold arithmetic.
  EXPECT_EQ(warm.result.reliability, cold.result.reliability);
  EXPECT_EQ(warm.result.status, SolveStatus::kExact);
}

TEST(QuerySession, MatchesFacadeAnswerExactly) {
  const GeneratedNetwork g = test_instance();
  const FlowDemand demand{g.source, g.sink, 2};

  QuerySession session(g.net);
  const SolveReport facade = compute_reliability(g.net, demand);
  const SolveReport served = session.solve(demand);
  EXPECT_EQ(served.result.reliability, facade.result.reliability);
  EXPECT_EQ(served.method_used, facade.method_used);
}

TEST(QuerySession, OverridesMatchEditedNetworkSolve) {
  const GeneratedNetwork g = test_instance();
  const FlowDemand demand{g.source, g.sink, 2};
  const std::vector<ProbOverride> overrides{{0, 0.33}, {3, 0.05}};

  QuerySession session(g.net);
  session.solve(demand);  // warm the caches
  const SolveReport what_if = session.solve(demand, {}, overrides);

  FlowNetwork edited = g.net;
  for (const ProbOverride& o : overrides) {
    edited.set_failure_prob(o.edge, o.failure_prob);
  }
  const SolveReport facade = compute_reliability(edited, demand);
  EXPECT_EQ(what_if.result.reliability, facade.result.reliability);

  // The what-if left the session network untouched.
  EXPECT_EQ(session.network().edge(0).failure_prob, g.net.edge(0).failure_prob);
  const SolveReport base_again = session.solve(demand);
  EXPECT_EQ(base_again.result.reliability,
            compute_reliability(g.net, demand).result.reliability);
}

TEST(QuerySession, ProbabilityEditKeepsCaches) {
  const GeneratedNetwork g = test_instance();
  const FlowDemand demand{g.source, g.sink, 2};

  QuerySession session(g.net);
  session.solve(demand);
  const std::uint64_t misses_after_cold = session.cache_misses();

  session.set_failure_prob(0, 0.42);
  const SolveReport served = session.solve(demand);
  EXPECT_EQ(session.cache_misses(), misses_after_cold);  // no rebuild
  EXPECT_GT(session.cache_hits(), 0u);
  EXPECT_EQ(session.cache_invalidations(), 0u);

  FlowNetwork edited = g.net;
  edited.set_failure_prob(0, 0.42);
  EXPECT_EQ(served.result.reliability,
            compute_reliability(edited, demand).result.reliability);
}

TEST(QuerySession, CapacityEditInvalidatesAndRecomputes) {
  const GeneratedNetwork g = test_instance();
  const FlowDemand demand{g.source, g.sink, 2};

  QuerySession session(g.net);
  session.solve(demand);
  const std::uint64_t misses_after_cold = session.cache_misses();

  // Raising a bottleneck-link capacity changes the assignment set, so a
  // stale mask table would silently produce a wrong answer.
  EdgeId edge = 0;
  for (EdgeId e = 0; e < g.net.num_edges(); ++e) {
    const Edge& link = g.net.edge(e);
    if (g.side_s[static_cast<std::size_t>(link.u)] !=
        g.side_s[static_cast<std::size_t>(link.v)]) {
      edge = e;
      break;
    }
  }
  session.set_capacity(edge, session.network().edge(edge).capacity + 1);
  EXPECT_EQ(session.cache_invalidations(), 1u);

  const SolveReport served = session.solve(demand);
  EXPECT_GT(session.cache_misses(), misses_after_cold);  // rebuilt

  FlowNetwork edited = g.net;
  edited.set_capacity(edge, edited.edge(edge).capacity + 1);
  EXPECT_EQ(served.result.reliability,
            compute_reliability(edited, demand).result.reliability);
}

TEST(QuerySession, LruEvictsUnderTinyBound) {
  const GeneratedNetwork g = test_instance();

  QueryCacheOptions cache;
  cache.max_mask_tables = 1;
  QuerySession session(g.net, cache);

  // Two distinct demands -> two mask tables; bound 1 forces an eviction.
  // (Rates 2 and 3: rate-1 undirected queries are reduction-eligible and
  // bypass the caches.)
  session.solve({g.source, g.sink, 2});
  session.solve({g.source, g.sink, 3});
  EXPECT_GE(session.cache_evictions(), 1u);

  // The evicted demand still answers correctly (rebuild, not corruption).
  const SolveReport again = session.solve({g.source, g.sink, 2});
  EXPECT_EQ(again.result.reliability,
            compute_reliability(g.net, {g.source, g.sink, 2})
                .result.reliability);
}

TEST(QuerySession, InvalidOverridesThrow) {
  const GeneratedNetwork g = test_instance();
  QuerySession session(g.net);
  const FlowDemand demand{g.source, g.sink, 1};
  const std::vector<ProbOverride> bad_edge{{g.net.num_edges(), 0.1}};
  EXPECT_THROW(session.solve(demand, {}, bad_edge), std::invalid_argument);
  const std::vector<ProbOverride> bad_prob{{0, 1.5}};
  EXPECT_THROW(session.solve(demand, {}, bad_prob), std::invalid_argument);
}

TEST(QuerySession, DisabledCacheStillAnswersCorrectly) {
  const GeneratedNetwork g = test_instance();
  const FlowDemand demand{g.source, g.sink, 2};

  QueryCacheOptions cache;
  cache.enabled = false;
  QuerySession session(g.net, cache);
  const SolveReport a = session.solve(demand);
  const SolveReport b = session.solve(demand);
  EXPECT_EQ(session.cache_hits(), 0u);
  EXPECT_EQ(a.result.reliability, b.result.reliability);
  EXPECT_EQ(a.result.reliability,
            compute_reliability(g.net, demand).result.reliability);
}

TEST(QuerySession, TelemetryCountsQueries) {
  const GeneratedNetwork g = test_instance();
  QuerySession session(g.net);
  session.solve({g.source, g.sink, 1});
  session.solve({g.source, g.sink, 1});
  EXPECT_EQ(session.telemetry().counter_or(telemetry_keys::kQueries), 2u);
}

}  // namespace
}  // namespace streamrel
