#include "streamrel/core/polynomial_decomposition.hpp"

#include <gtest/gtest.h>

#include "streamrel/graph/generators.hpp"
#include "streamrel/p2p/scenario.hpp"
#include "streamrel/reliability/naive.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

TEST(PolynomialDecomposition, MatchesNaivePolynomialOnFig4) {
  const GeneratedNetwork g = make_fig4_graph(0.1);
  const FlowDemand demand{g.source, g.sink, 2};
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const auto direct = reliability_polynomial(g.net, demand);
  const auto decomposed = polynomial_bottleneck(g.net, demand, partition);
  EXPECT_EQ(decomposed.counts(), direct.counts());
}

TEST(PolynomialDecomposition, MatchesNaiveOnRandomClusteredGraphs) {
  Xoshiro256 rng(246810);
  for (int trial = 0; trial < 20; ++trial) {
    ClusteredParams params;
    params.nodes_s = static_cast<int>(rng.uniform_int(3, 5));
    params.nodes_t = static_cast<int>(rng.uniform_int(3, 5));
    params.extra_edges_s = static_cast<int>(rng.uniform_int(0, 3));
    params.extra_edges_t = static_cast<int>(rng.uniform_int(0, 3));
    params.bottleneck_links = 1 + static_cast<int>(rng.uniform_below(3));
    params.cluster_caps = {1, 3};
    params.bottleneck_caps = {1, 3};
    const GeneratedNetwork g = clustered_bottleneck(rng, params);
    const FlowDemand demand{g.source, g.sink, rng.uniform_int(1, 3)};
    const BottleneckPartition partition =
        partition_from_sides(g.net, g.source, g.sink, g.side_s);
    const auto direct = reliability_polynomial(g.net, demand);
    const auto decomposed = polynomial_bottleneck(g.net, demand, partition);
    ASSERT_EQ(decomposed.counts(), direct.counts()) << "trial " << trial;
  }
}

TEST(PolynomialDecomposition, EvaluationMatchesBottleneckAtUniformP) {
  Xoshiro256 rng(5);
  ClusteredParams params;
  params.bottleneck_links = 2;
  params.bottleneck_caps = {2, 2};
  GeneratedNetwork g = clustered_bottleneck(rng, params);
  const FlowDemand demand{g.source, g.sink, 2};
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const auto poly = polynomial_bottleneck(g.net, demand, partition);
  for (double p : {0.0, 0.1, 0.35, 0.7}) {
    for (EdgeId id = 0; id < g.net.num_edges(); ++id) {
      g.net.set_failure_prob(id, p);
    }
    EXPECT_NEAR(poly.evaluate(p),
                reliability_bottleneck(g.net, demand, partition).reliability,
                1e-9)
        << "p=" << p;
  }
}

TEST(PolynomialDecomposition, InfeasibleDemandIsTheZeroPolynomial) {
  const GeneratedNetwork g = make_fig4_graph(0.1);
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const auto poly =
      polynomial_bottleneck(g.net, {g.source, g.sink, 9}, partition);
  for (std::uint64_t c : poly.counts()) EXPECT_EQ(c, 0u);
  EXPECT_DOUBLE_EQ(poly.evaluate(0.2), 0.0);
}

TEST(PolynomialDecomposition, TotalCountsBoundedByConfigurationSpace) {
  const GeneratedNetwork g = make_fig4_graph(0.1);
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const auto poly =
      polynomial_bottleneck(g.net, {g.source, g.sink, 1}, partition);
  std::uint64_t total = 0;
  for (std::uint64_t c : poly.counts()) total += c;
  EXPECT_LE(total, Mask{1} << g.net.num_edges());
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace streamrel
