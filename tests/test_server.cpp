// The daemon stack end to end, in process: service verbs over registered
// tenants, stream framing, shedding under a saturated scheduler, and the
// concurrent-tenant isolation the threading hardening promises. The TCP
// transport gets one loopback smoke (skipped if sockets are unavailable).

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "streamrel/api/wire.hpp"
#include "streamrel/core/batch_evaluator.hpp"
#include "streamrel/core/query_session.hpp"
#include "streamrel/graph/generators.hpp"
#include "streamrel/graph/io.hpp"
#include "streamrel/persist/store.hpp"
#include "streamrel/server/service.hpp"
#include "streamrel/server/transport.hpp"
#include "streamrel/util/json.hpp"
#include "streamrel/util/prng.hpp"
#include "streamrel/util/trace.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace streamrel {
namespace {

/// Minimal blocking loopback client: connects, writes `script`, shuts
/// down the write side, and reads until `expected` newline-terminated
/// replies (or EOF). Returns the reply lines.
std::vector<std::string> tcp_client_exchange(const char* host,
                                             std::uint16_t port,
                                             const std::string& script,
                                             std::size_t expected) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  // Network byte order by hand; the htons macro trips -Wold-style-cast.
  unsigned char* port_bytes = reinterpret_cast<unsigned char*>(&addr.sin_port);
  port_bytes[0] = static_cast<unsigned char>(port >> 8);
  port_bytes[1] = static_cast<unsigned char>(port & 0xFF);
  if (::inet_pton(AF_INET, host, &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  std::size_t sent = 0;
  while (sent < script.size()) {
    const ssize_t n =
        ::send(fd, script.data() + sent, script.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string buffer;
  std::vector<std::string> lines;
  char chunk[4096];
  while (lines.size() < expected) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos = 0;
    for (std::size_t nl = buffer.find('\n', pos); nl != std::string::npos;
         nl = buffer.find('\n', pos)) {
      lines.push_back(buffer.substr(pos, nl - pos));
      pos = nl + 1;
    }
    buffer.erase(0, pos);
  }
  ::close(fd);
  return lines;
}

GeneratedNetwork test_instance(std::uint64_t seed = 5) {
  Xoshiro256 rng(seed);
  ClusteredParams params;
  params.nodes_s = 5;
  params.extra_edges_s = 3;
  params.nodes_t = 4;
  params.extra_edges_t = 2;
  params.bottleneck_links = 2;
  params.bottleneck_caps = {1, 3};
  return clustered_bottleneck(rng, params);
}

WireRequest register_request(const GeneratedNetwork& g,
                             const std::string& tenant = "default",
                             const std::string& network_id = "default") {
  WireRequest reg;
  reg.verb = WireVerb::kRegisterNetwork;
  reg.tenant = tenant;
  reg.network_id = network_id;
  reg.network_text = network_to_string(g.net);
  reg.query.source = g.source;
  reg.query.sink = g.sink;
  reg.query.rate = 2;
  return reg;
}

WireRequest batch_request(const std::string& tenant = "default") {
  WireRequest req;
  req.verb = WireVerb::kBatch;
  req.lane = WireLane::kBulk;
  req.tenant = tenant;
  req.queries.resize(3);
  req.queries[1].rate = 1;
  req.queries[2].overrides.push_back(ProbOverride{0, 0.5});
  return req;
}

TEST(Server, WarmBatchIsBitwiseEqualToColdAndToInProcess) {
  const GeneratedNetwork g = test_instance();
  ReliabilityService service;
  ASSERT_TRUE(service.execute(register_request(g)).ok);

  const WireResponse cold = service.execute(batch_request());
  ASSERT_TRUE(cold.ok);
  ASSERT_EQ(cold.legacy_lines.size(), 3u);

  const WireResponse warm = service.execute(batch_request());
  ASSERT_TRUE(warm.ok);
  // Warm answers reuse the cold arithmetic: identical rendered lines.
  EXPECT_EQ(warm.legacy_lines, cold.legacy_lines);

  // And both match a fresh in-process QuerySession + BatchEvaluator.
  const FlowDemand demand{g.source, g.sink, 2};
  QuerySession session(g.net);
  BatchEvaluator evaluator(session);
  std::vector<WhatIfQuery> queries(3);
  for (WhatIfQuery& q : queries) q.demand = demand;
  queries[1].demand.rate = 1;
  queries[2].prob_overrides.push_back(ProbOverride{0, 0.5});
  const BatchReport batch = evaluator.evaluate(queries, {});
  ASSERT_EQ(batch.reports.size(), 3u);
  for (std::size_t i = 0; i < batch.reports.size(); ++i) {
    EXPECT_EQ(cold.legacy_lines[i],
              render_batch_query_line(i, queries[i].demand, batch.reports[i]));
  }
}

TEST(Server, DeltaInvalidatesAndWarmMatchesColdOnTheMutatedNetwork) {
  const GeneratedNetwork g = test_instance();
  ReliabilityService service;
  ASSERT_TRUE(service.execute(register_request(g)).ok);
  const WireResponse before = service.execute(batch_request());
  ASSERT_TRUE(before.ok);

  WireRequest delta;
  delta.verb = WireVerb::kApplyDelta;
  delta.delta.set_failure_prob(0, 0.9);
  const WireResponse applied = service.execute(delta);
  ASSERT_TRUE(applied.ok);
  EXPECT_NE(applied.result_json.find("\"class\""), std::string::npos);

  const WireResponse warm = service.execute(batch_request());
  ASSERT_TRUE(warm.ok);
  EXPECT_NE(warm.legacy_lines, before.legacy_lines);

  // Cold reference on the mutated network.
  FlowNetwork mutated = g.net;
  mutated.set_failure_prob(0, 0.9);
  const FlowDemand demand{g.source, g.sink, 2};
  QuerySession session(mutated);
  BatchEvaluator evaluator(session);
  std::vector<WhatIfQuery> queries(3);
  for (WhatIfQuery& q : queries) q.demand = demand;
  queries[1].demand.rate = 1;
  queries[2].prob_overrides.push_back(ProbOverride{0, 0.5});
  const BatchReport batch = evaluator.evaluate(queries, {});
  for (std::size_t i = 0; i < batch.reports.size(); ++i) {
    EXPECT_EQ(warm.legacy_lines[i],
              render_batch_query_line(i, queries[i].demand, batch.reports[i]));
  }
}

TEST(Server, DeadlineStopIsAStructuredResultNotAnError) {
  const GeneratedNetwork g = test_instance();
  ReliabilityService service;
  ASSERT_TRUE(service.execute(register_request(g)).ok);

  WireRequest solve;
  solve.verb = WireVerb::kSolve;
  solve.deadline_ms = 1e-7;
  const WireResponse resp = service.execute(solve);
  ASSERT_TRUE(resp.ok);  // the no-throw contract extends to the wire
  EXPECT_NE(resp.result_json.find("\"status\": \"deadline_expired\""),
            std::string::npos);
  EXPECT_NE(resp.result_json.find("\"bounds\""), std::string::npos);
}

TEST(Server, UnknownTenantAndVerbErrorsAreStructured) {
  ReliabilityService service;
  WireRequest solve;
  solve.verb = WireVerb::kSolve;
  solve.tenant = "ghost";
  const WireResponse resp = service.execute(solve);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.error_code, "unknown_network");
  EXPECT_NE(resp.error_message.find("ghost/default"), std::string::npos);
}

TEST(Server, StreamSurvivesMalformedLines) {
  const GeneratedNetwork g = test_instance();
  ReliabilityService service;
  std::stringstream in;
  in << serialize_wire_request(register_request(g)) << "\n"
     << "this is not json\n"
     << R"({"v": 1, "id": 2, "verb": "probe"})" << "\n"
     << R"({"v": 1, "id": 3, "verb": "solve"})" << "\n"
     << R"({"v": 1, "id": 4, "verb": "shutdown"})" << "\n"
     << R"({"v": 1, "id": 5, "verb": "stats"})" << "\n";  // after shutdown
  std::stringstream out;
  const StreamServeResult served = serve_stream(service, in, out);
  EXPECT_TRUE(served.shutdown);
  EXPECT_EQ(served.lines, 5u);  // the post-shutdown line is never read
  EXPECT_EQ(served.responses, 5u);

  std::vector<JsonValue> docs;
  std::string line;
  while (std::getline(out, line)) docs.push_back(parse_json(line));
  ASSERT_EQ(docs.size(), 5u);
  EXPECT_TRUE(docs[0].find("ok")->as_bool());
  EXPECT_FALSE(docs[1].find("ok")->as_bool());
  EXPECT_EQ(docs[1].find("error")->find("code")->as_string(), "parse_error");
  EXPECT_FALSE(docs[2].find("ok")->as_bool());
  EXPECT_EQ(docs[2].find("error")->find("code")->as_string(), "unknown_verb");
  EXPECT_EQ(docs[2].find("id")->as_number(), 2.0);
  EXPECT_TRUE(docs[3].find("ok")->as_bool());
  EXPECT_TRUE(docs[4].find("ok")->as_bool());
}

TEST(Server, SaturatedSchedulerShedsWithBoundsAttached) {
  const GeneratedNetwork g = test_instance();
  ServiceOptions options;
  options.start_workers = true;
  options.scheduler.workers = 1;
  ReliabilityService service(options);
  ASSERT_TRUE(service.execute(register_request(g)).ok);

  std::mutex mu;
  std::vector<WireResponse> responses;
  auto done = [&](WireResponse resp) {
    const std::lock_guard<std::mutex> lock(mu);
    responses.push_back(std::move(resp));
  };
  // One bulk batch to occupy the single worker, then interactive solves
  // whose microscopic deadlines are blown by the time a worker frees up.
  WireRequest bulk = batch_request();
  bulk.id_json = "\"bulk\"";
  service.handle_line(serialize_wire_request(bulk), done);
  for (int i = 0; i < 8; ++i) {
    WireRequest solve;
    solve.verb = WireVerb::kSolve;
    solve.id_json = std::to_string(100 + i);
    solve.deadline_ms = 1e-6;
    service.handle_line(serialize_wire_request(solve), done);
  }
  service.drain();

  const std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(responses.size(), 9u);  // every request got a response
  std::size_t shed = 0;
  for (const WireResponse& resp : responses) {
    if (resp.id_json == "\"bulk\"") continue;
    ASSERT_TRUE(resp.ok) << resp.error_message;
    if (resp.result_json.find("\"shed\": true") != std::string::npos) {
      ++shed;
      EXPECT_NE(resp.result_json.find("deadline_expired"), std::string::npos);
      EXPECT_NE(resp.result_json.find("\"bounds\""), std::string::npos);
    }
  }
  EXPECT_GT(shed, 0u);
  EXPECT_EQ(service.shed_count(), shed);
}

TEST(Server, ConcurrentTenantsStayIsolated) {
  constexpr int kTenants = 4;
  constexpr int kRoundsPerTenant = 12;
  std::vector<GeneratedNetwork> nets;
  ReliabilityService service;
  std::vector<WireResponse> baselines;
  for (int t = 0; t < kTenants; ++t) {
    nets.push_back(test_instance(static_cast<std::uint64_t>(7 + t)));
    const std::string tenant = "tenant" + std::to_string(t);
    ASSERT_TRUE(service.execute(register_request(nets.back(), tenant)).ok);
    baselines.push_back(service.execute(batch_request(tenant)));
    ASSERT_TRUE(baselines.back().ok);
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      const std::string tenant = "tenant" + std::to_string(t);
      for (int round = 0; round < kRoundsPerTenant; ++round) {
        // Readers: warm batches must keep answering the registered
        // network's question no matter what other tenants do.
        const WireResponse warm = service.execute(batch_request(tenant));
        if (!warm.ok || warm.legacy_lines != baselines[static_cast<std::size_t>(t)].legacy_lines) {
          failures.fetch_add(1);
        }
        // And a point query through the interactive path.
        WireRequest solve;
        solve.verb = WireVerb::kSolve;
        solve.tenant = tenant;
        solve.want_trace = true;
        if (!service.execute(solve).ok) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  const JsonValue stats = parse_json(service.stats_json());
  EXPECT_EQ(stats.find("sessions")->as_number(), 4.0);
  const JsonValue* tenants = stats.find("tenants");
  ASSERT_NE(tenants, nullptr);
  EXPECT_NE(tenants->find("tenant0/default"), nullptr);
}

TEST(Server, ConcurrentDeltasAndReadsOnOneTenant) {
  const GeneratedNetwork g = test_instance();
  ReliabilityService service;
  ASSERT_TRUE(service.execute(register_request(g)).ok);

  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 0; i < 20; ++i) {
      WireRequest delta;
      delta.verb = WireVerb::kApplyDelta;
      delta.delta.set_failure_prob(0, 0.05 + 0.01 * static_cast<double>(i % 5));
      if (!service.execute(delta).ok) failures.fetch_add(1);
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        WireRequest solve;
        solve.verb = WireVerb::kSolve;
        const WireResponse resp = service.execute(solve);
        if (!resp.ok) failures.fetch_add(1);
      }
    });
  }
  writer.join();
  for (std::thread& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Server, ReplayVerbMatchesTheStandaloneRenderers) {
  const GeneratedNetwork g = test_instance();
  ReliabilityService service;
  ASSERT_TRUE(service.execute(register_request(g)).ok);

  WireRequest replay;
  replay.verb = WireVerb::kReplay;
  replay.events.resize(2);
  replay.events[0].time = 1.0;
  replay.events[0].label = "degrade";
  replay.events[0].delta.set_failure_prob(0, 0.5);
  replay.events[1].time = 2.0;
  replay.events[1].delta.set_failure_prob(0, 0.1);
  const WireResponse warm = service.execute(replay);
  ASSERT_TRUE(warm.ok);
  ASSERT_EQ(warm.legacy_lines.size(), 3u);  // initial + 2 events

  replay.cold = true;
  const WireResponse cold = service.execute(replay);
  ASSERT_TRUE(cold.ok);
  ASSERT_EQ(cold.legacy_lines.size(), warm.legacy_lines.size());
  // Warm (session) and cold (recompile) replays agree on the R(t)
  // series; only the cache columns differ (cold has no cache to keep).
  for (std::size_t i = 0; i < warm.legacy_lines.size(); ++i) {
    const JsonValue w = parse_json(warm.legacy_lines[i]);
    const JsonValue c = parse_json(cold.legacy_lines[i]);
    EXPECT_EQ(w.find("reliability")->as_number(),
              c.find("reliability")->as_number());
  }
  EXPECT_NE(warm.legacy_summary.find("\"mode\": \"warm\""),
            std::string::npos);
  EXPECT_NE(cold.legacy_summary.find("\"mode\": \"cold\""),
            std::string::npos);
  // Replay is read-only: the registered session still answers cold.
  EXPECT_TRUE(service.execute(batch_request()).ok);
}

TEST(Server, PerRequestTraceCaptureDoesNotLeakAcrossThreads) {
  const GeneratedNetwork g = test_instance();
  ReliabilityService service;
  ASSERT_TRUE(service.execute(register_request(g)).ok);

  Tracer::clear();
  WireRequest traced;
  traced.verb = WireVerb::kSolve;
  traced.want_trace = true;
  const WireResponse resp = service.execute(traced);
  ASSERT_TRUE(resp.ok);
  EXPECT_NE(resp.result_json.find("\"trace\""), std::string::npos);
  EXPECT_NE(resp.result_json.find("query_prepare"), std::string::npos);
  // Captured spans were diverted, not published to the global rings.
  EXPECT_EQ(Tracer::event_count(), 0u);
}

TEST(Server, StatsExposesQueueEstimateAndPerLaneSheds) {
  const GeneratedNetwork g = test_instance();
  ServiceOptions options;
  options.start_workers = true;
  options.scheduler.workers = 1;
  ReliabilityService service(options);
  ASSERT_TRUE(service.execute(register_request(g)).ok);

  // Force interactive sheds: pin the worker, then blow deadlines.
  std::atomic<int> answered{0};
  auto done = [&](WireResponse) { answered.fetch_add(1); };
  service.handle_line(serialize_wire_request(batch_request()), done);
  for (int i = 0; i < 6; ++i) {
    WireRequest solve;
    solve.verb = WireVerb::kSolve;
    solve.deadline_ms = 1e-6;
    service.handle_line(serialize_wire_request(solve), done);
  }
  service.drain();
  ASSERT_EQ(answered.load(), 7);

  const JsonValue stats = parse_json(service.stats_json());
  const JsonValue* lanes = stats.find("lanes");
  ASSERT_NE(lanes, nullptr);
  for (const char* lane : {"interactive", "bulk"}) {
    const JsonValue* snap = lanes->find(lane);
    ASSERT_NE(snap, nullptr) << lane;
    ASSERT_NE(snap->find("queue_estimate_ms"), nullptr) << lane;
    ASSERT_NE(snap->find("shed"), nullptr) << lane;
  }
  const double interactive_shed =
      lanes->find("interactive")->find("shed")->as_number();
  EXPECT_GT(interactive_shed, 0.0);
  EXPECT_EQ(static_cast<std::uint64_t>(interactive_shed) +
                static_cast<std::uint64_t>(
                    lanes->find("bulk")->find("shed")->as_number()),
            service.shed_count());
}

TEST(Server, StatsStaysCoherentUnderConcurrentTenantsAndScrapes) {
  constexpr int kTenants = 4;
  std::vector<GeneratedNetwork> nets;
  ServiceOptions options;
  options.start_workers = true;
  options.scheduler.workers = 2;
  ReliabilityService service(options);
  for (int t = 0; t < kTenants; ++t) {
    nets.push_back(test_instance(static_cast<std::uint64_t>(11 + t)));
    const std::string tenant = "tenant" + std::to_string(t);
    ASSERT_TRUE(service.execute(register_request(nets.back(), tenant)).ok);
  }

  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> sent{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> load;
  for (int t = 0; t < kTenants; ++t) {
    load.emplace_back([&, t] {
      const std::string tenant = "tenant" + std::to_string(t);
      for (int round = 0; round < 16; ++round) {
        WireRequest solve;
        solve.verb = WireVerb::kSolve;
        solve.tenant = tenant;
        solve.deadline_ms = 10'000.0;
        sent.fetch_add(1);
        service.handle_line(serialize_wire_request(solve),
                            [&](WireResponse resp) {
                              if (!resp.ok) failures.fetch_add(1);
                            });
      }
    });
  }
  // Scrapers: the stats verb AND the Prometheus exposition, both racing
  // the load. Every snapshot must parse; neither may block a solve.
  std::vector<std::thread> scrapers;
  for (int s = 0; s < 2; ++s) {
    scrapers.emplace_back([&] {
      while (!stop.load()) {
        WireRequest statsv;
        statsv.verb = WireVerb::kStats;
        const WireResponse resp = service.execute(statsv);
        if (!resp.ok) failures.fetch_add(1);
        try {
          const JsonValue doc = parse_json(resp.result_json);
          if (doc.find("lanes") == nullptr ||
              doc.find("tenants") == nullptr) {
            failures.fetch_add(1);
          }
        } catch (const std::exception&) {
          failures.fetch_add(1);
        }
        if (service.metrics_text().empty()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& th : load) th.join();
  service.drain();
  stop.store(true);
  for (std::thread& th : scrapers) th.join();
  EXPECT_EQ(failures.load(), 0);

  // The stats scrapers themselves count as requests, so the total is a
  // lower bound, not an equality.
  const JsonValue stats = parse_json(service.stats_json());
  EXPECT_GE(stats.find("requests")->as_number(),
            static_cast<double>(sent.load()));
}

TEST(Server, MetricsVerbRendersValidExposition) {
  const GeneratedNetwork g = test_instance();
  ReliabilityService service;
  ASSERT_TRUE(service.execute(register_request(g)).ok);
  WireRequest solve;
  solve.verb = WireVerb::kSolve;
  solve.want_telemetry = true;  // feeds the telemetry -> metrics bridge
  ASSERT_TRUE(service.execute(solve).ok);

  WireRequest metrics;
  metrics.verb = WireVerb::kMetrics;
  const WireResponse resp = service.execute(metrics);
  ASSERT_TRUE(resp.ok);
  const JsonValue result = parse_json(resp.result_json);
  EXPECT_GT(result.find("series")->as_number(), 0.0);
  EXPECT_EQ(result.find("content_type")->as_string(),
            kPrometheusContentType);
  const std::string text = result.find("text")->as_string();
  EXPECT_NE(text.find("# TYPE streamrel_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE streamrel_request_latency_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("streamrel_sessions 1"), std::string::npos);
  EXPECT_NE(
      text.find(
          "streamrel_requests_total{code=\"ok\",lane=\"interactive\","
          "verb=\"solve\"} 1"),
      std::string::npos);
  // The engine telemetry bridge produced engine-labeled series (label
  // keys render sorted: counter before engine).
  EXPECT_NE(text.find("streamrel_engine_work_total{counter="),
            std::string::npos);
  // le="+Inf" closes every histogram series.
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

TEST(Server, DumpVerbReturnsFlightRecordsInline) {
  const GeneratedNetwork g = test_instance();
  ServiceOptions options;
  options.flight_capacity = 4;
  ReliabilityService service(options);
  ASSERT_TRUE(service.execute(register_request(g)).ok);
  for (int i = 0; i < 6; ++i) {
    WireRequest solve;
    solve.verb = WireVerb::kSolve;
    solve.id_json = std::to_string(i);
    ASSERT_TRUE(service.execute(solve).ok);
  }

  WireRequest dump;
  dump.verb = WireVerb::kDump;
  const WireResponse resp = service.execute(dump);
  ASSERT_TRUE(resp.ok);
  const JsonValue result = parse_json(resp.result_json);
  EXPECT_EQ(result.find("retained")->as_number(), 4.0);
  EXPECT_EQ(result.find("total_recorded")->as_number(), 7.0);
  const JsonValue* records = result.find("records");
  ASSERT_NE(records, nullptr);
  ASSERT_EQ(records->as_array().size(), 4u);
  // Oldest first, and the ring dropped the three earliest requests.
  EXPECT_EQ(records->as_array().front().find("seq")->as_number(), 4.0);
  EXPECT_EQ(records->as_array().back().find("seq")->as_number(), 7.0);
  EXPECT_EQ(records->as_array().back().find("verb")->as_string(), "solve");
  EXPECT_EQ(records->as_array().back().find("engine")->as_string().empty(),
            false);
}

TEST(Server, StreamTransportAnswersGetMetrics) {
  const GeneratedNetwork g = test_instance();
  ReliabilityService service;
  std::stringstream in;
  in << serialize_wire_request(register_request(g)) << "\n"
     << R"({"v": 1, "id": 1, "verb": "solve"})" << "\n"
     << "GET /metrics\n"
     << R"({"v": 1, "id": 2, "verb": "shutdown"})" << "\n";
  std::stringstream out;
  const StreamServeResult served = serve_stream(service, in, out);
  EXPECT_TRUE(served.shutdown);
  // The GET line is answered with raw exposition, not counted as a
  // wire request.
  EXPECT_EQ(served.lines, 3u);
  EXPECT_EQ(served.responses, 3u);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE streamrel_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("streamrel_request_latency_ms_bucket"),
            std::string::npos);
}

TEST(Server, RequestLogRecordsEveryRequestThroughTheService) {
  const GeneratedNetwork g = test_instance();
  std::ostringstream log;
  ServiceOptions options;
  options.request_log = &log;
  ReliabilityService service(options);
  ASSERT_TRUE(service.execute(register_request(g)).ok);
  WireRequest solve;
  solve.verb = WireVerb::kSolve;
  solve.id_json = "\"rq-1\"";
  ASSERT_TRUE(service.execute(solve).ok);
  WireRequest ghost;
  ghost.verb = WireVerb::kSolve;
  ghost.tenant = "ghost";
  EXPECT_FALSE(service.execute(ghost).ok);

  std::vector<JsonValue> lines;
  std::istringstream in(log.str());
  std::string line;
  while (std::getline(in, line)) lines.push_back(parse_json(line));
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].find("verb")->as_string(), "register_network");
  EXPECT_TRUE(lines[0].find("ok")->as_bool());
  EXPECT_EQ(lines[1].find("id")->as_string(), "rq-1");
  EXPECT_EQ(lines[1].find("verb")->as_string(), "solve");
  EXPECT_EQ(lines[1].find("status")->as_string(), "exact");
  EXPECT_FALSE(lines[1].find("engine")->as_string().empty());
  EXPECT_GT(lines[1].find("solve_us")->as_number(), 0.0);
  EXPECT_FALSE(lines[2].find("ok")->as_bool());
  EXPECT_EQ(lines[2].find("error_code")->as_string(), "unknown_network");
}

TEST(Server, SolveResultsAreIdenticalWithAndWithoutInstrumentation) {
  // The acceptance bar: metrics/logging must never perturb the
  // arithmetic. Same request, one service with every sink enabled and
  // one bare — bitwise-identical rendered results.
  const GeneratedNetwork g = test_instance();
  std::ostringstream log;
  ServiceOptions instrumented;
  instrumented.request_log = &log;
  instrumented.flight_capacity = 8;
  ReliabilityService with_obs(instrumented);
  ReliabilityService bare;
  ASSERT_TRUE(with_obs.execute(register_request(g)).ok);
  ASSERT_TRUE(bare.execute(register_request(g)).ok);

  for (int i = 0; i < 3; ++i) {
    WireRequest solve;
    solve.verb = WireVerb::kSolve;
    if (i == 2) solve.query.overrides.push_back(ProbOverride{0, 0.42});
    const WireResponse a = with_obs.execute(solve);
    const WireResponse b = bare.execute(solve);
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    // Everything but the wall-clock field must match bit for bit
    // (reliability is rendered to full precision).
    const JsonValue da = parse_json(a.result_json);
    const JsonValue db = parse_json(b.result_json);
    EXPECT_EQ(da.find("reliability")->as_number(),
              db.find("reliability")->as_number());
    EXPECT_EQ(da.find("status")->as_string(), db.find("status")->as_string());
    EXPECT_EQ(da.find("method")->as_string(), db.find("method")->as_string());
    EXPECT_EQ(da.find("engine")->as_string(), db.find("engine")->as_string());
  }
  const WireResponse batch_a = with_obs.execute(batch_request());
  const WireResponse batch_b = bare.execute(batch_request());
  ASSERT_TRUE(batch_a.ok);
  EXPECT_EQ(batch_a.legacy_lines, batch_b.legacy_lines);
}

TEST(Server, TcpLoopbackRoundTrip) {
  const GeneratedNetwork g = test_instance();
  ServiceOptions options;
  options.start_workers = true;
  options.scheduler.workers = 2;
  ReliabilityService service(options);

  std::unique_ptr<TcpServer> server;
  try {
    server = std::make_unique<TcpServer>(service, TcpServerOptions{});
  } catch (const std::exception& e) {
    GTEST_SKIP() << "no loopback TCP available: " << e.what();
  }
  std::thread runner([&] { server->run(); });

  std::stringstream script;
  WireRequest reg = register_request(g);
  reg.id_json = "1";
  script << serialize_wire_request(reg) << "\n";
  WireRequest solve;
  solve.verb = WireVerb::kSolve;
  solve.id_json = "2";
  script << serialize_wire_request(solve) << "\n";

  const std::vector<std::string> replies =
      tcp_client_exchange("127.0.0.1", server->port(), script.str(), 2);
  server->stop();
  runner.join();

  ASSERT_EQ(replies.size(), 2u);
  bool saw_solve = false;
  for (const std::string& line : replies) {
    const JsonValue doc = parse_json(line);
    EXPECT_TRUE(doc.find("ok")->as_bool());
    if (doc.find("id")->as_number() == 2.0) {
      saw_solve = true;
      EXPECT_NE(doc.find("result")->find("reliability"), nullptr);
    }
  }
  EXPECT_TRUE(saw_solve);
}

// --- durable sessions (--state-dir) ------------------------------------

namespace fs = std::filesystem;

/// Fresh scratch state root per test, removed on destruction.
struct ScratchStateDir {
  fs::path path;
  explicit ScratchStateDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("streamrel_server_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
  }
  ~ScratchStateDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

ServiceOptions durable_options(const ScratchStateDir& scratch) {
  ServiceOptions options;
  options.state_dir = scratch.path.string();
  options.state_fsync = false;  // scratch dirs; the crash test opts back in
  return options;
}

/// Extracts the rendered value of `key` from a flat JSON object string
/// (up to the next ',' or '}') — enough to pin a member bitwise.
std::string json_member(const std::string& object_json,
                        const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = object_json.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t start = at + needle.size();
  const std::size_t end = object_json.find_first_of(",}", start);
  return object_json.substr(start, end - start);
}

WireRequest solve_request() {
  WireRequest solve;
  solve.verb = WireVerb::kSolve;
  return solve;
}

TEST(ServerPersist, RestartFromStateDirAnswersBitwiseIdentically) {
  const ScratchStateDir scratch("restart");
  const GeneratedNetwork g = test_instance();
  std::string reliability_before;
  std::vector<std::string> batch_before;
  {
    ReliabilityService service(durable_options(scratch));
    const WireResponse reg = service.execute(register_request(g));
    ASSERT_TRUE(reg.ok);
    EXPECT_EQ(json_member(reg.result_json, "persisted"), "true");

    WireRequest delta;
    delta.verb = WireVerb::kApplyDelta;
    delta.delta.set_failure_prob(0, 0.35);
    delta.delta.set_capacity(1, 2);
    ASSERT_TRUE(service.execute(delta).ok);  // journaled to the WAL

    const WireResponse solve = service.execute(solve_request());
    ASSERT_TRUE(solve.ok);
    reliability_before = json_member(solve.result_json, "reliability");
    ASSERT_FALSE(reliability_before.empty());
    const WireResponse batch = service.execute(batch_request());
    ASSERT_TRUE(batch.ok);
    batch_before = batch.legacy_lines;

    // The shutdown verb checkpoints every session before stopping.
    WireRequest shutdown;
    shutdown.verb = WireVerb::kShutdown;
    const WireResponse stop = service.execute(shutdown);
    ASSERT_TRUE(stop.ok);
    EXPECT_EQ(json_member(stop.result_json, "checkpointed"), "1");
    EXPECT_EQ(json_member(stop.result_json, "checkpoint_failures"), "0");
  }

  ReliabilityService service(durable_options(scratch));
  EXPECT_EQ(service.boot_restore().restored, 1u);
  EXPECT_EQ(service.boot_restore().corrupt, 0u);

  // No re-register: the restored session answers, bitwise.
  const WireResponse solve = service.execute(solve_request());
  ASSERT_TRUE(solve.ok);
  EXPECT_EQ(json_member(solve.result_json, "reliability"),
            reliability_before);
  const WireResponse batch = service.execute(batch_request());
  ASSERT_TRUE(batch.ok);
  EXPECT_EQ(batch.legacy_lines, batch_before);

  // stats surfaces the durability counters.
  const std::string stats = service.stats_json();
  EXPECT_NE(stats.find("\"persist\""), std::string::npos);
  EXPECT_NE(stats.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(stats.find("\"restores\": 1"), std::string::npos);
  EXPECT_NE(stats.find("\"durable\": true"), std::string::npos);
}

TEST(ServerPersist, RestartAfterDtorCheckpointAlsoRestores) {
  const ScratchStateDir scratch("dtor");
  const GeneratedNetwork g = test_instance();
  std::string before;
  {
    ReliabilityService service(durable_options(scratch));
    ASSERT_TRUE(service.execute(register_request(g)).ok);
    WireRequest delta;
    delta.verb = WireVerb::kApplyDelta;
    delta.delta.set_failure_prob(2, 0.6);
    ASSERT_TRUE(service.execute(delta).ok);
    const WireResponse solve = service.execute(solve_request());
    ASSERT_TRUE(solve.ok);
    before = json_member(solve.result_json, "reliability");
  }  // no shutdown verb: the destructor checkpoints

  ReliabilityService service(durable_options(scratch));
  ASSERT_EQ(service.boot_restore().restored, 1u);
  const WireResponse solve = service.execute(solve_request());
  ASSERT_TRUE(solve.ok);
  EXPECT_EQ(json_member(solve.result_json, "reliability"), before);
}

TEST(ServerPersist, PersistAndRestoreVerbsRoundTrip) {
  const ScratchStateDir scratch("verbs");
  const GeneratedNetwork g = test_instance();
  ReliabilityService service(durable_options(scratch));
  ASSERT_TRUE(service.execute(register_request(g)).ok);

  WireRequest delta;
  delta.verb = WireVerb::kApplyDelta;
  delta.delta.set_failure_prob(1, 0.8);
  ASSERT_TRUE(service.execute(delta).ok);
  const WireResponse before = service.execute(solve_request());
  ASSERT_TRUE(before.ok);

  WireRequest persist;
  persist.verb = WireVerb::kPersist;
  const WireResponse persisted = service.execute(persist);
  ASSERT_TRUE(persisted.ok) << persisted.error_message;
  EXPECT_EQ(json_member(persisted.result_json, "checkpoints"), "2");

  WireRequest restore;
  restore.verb = WireVerb::kRestore;
  const WireResponse restored = service.execute(restore);
  ASSERT_TRUE(restored.ok) << restored.error_message;
  EXPECT_EQ(json_member(restored.result_json, "replayed_deltas"), "0");

  // The freshly restored session solves identically to the live one it
  // replaced (the WAL held every applied delta).
  const WireResponse after = service.execute(solve_request());
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(json_member(after.result_json, "reliability"),
            json_member(before.result_json, "reliability"));
}

TEST(ServerPersist, VerbsWithoutStateDirAreBadRequests) {
  ReliabilityService service;  // no state_dir
  const GeneratedNetwork g = test_instance();
  ASSERT_TRUE(service.execute(register_request(g)).ok);
  for (const WireVerb verb : {WireVerb::kPersist, WireVerb::kRestore}) {
    WireRequest req;
    req.verb = verb;
    const WireResponse resp = service.execute(req);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.error_code, "bad_request");
  }
}

TEST(ServerPersist, CorruptStateColdStartsAndRestoreSaysStateCorrupt) {
  const ScratchStateDir scratch("corrupt");
  const GeneratedNetwork g = test_instance();
  {
    ReliabilityService service(durable_options(scratch));
    ASSERT_TRUE(service.execute(register_request(g)).ok);
  }
  // Flip one byte of the snapshot: the boot must cold-start with a
  // warning, never crash, never adopt the bytes.
  const StateDir state(scratch.path);
  const fs::path snap = state.store_path("default", "default") / "snapshot.bin";
  {
    std::fstream file(snap,
                      std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.is_open());
    file.seekg(40);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    file.seekp(40);
    file.write(&byte, 1);
  }

  ReliabilityService service(durable_options(scratch));
  EXPECT_EQ(service.boot_restore().restored, 0u);
  EXPECT_EQ(service.boot_restore().corrupt, 1u);
  ASSERT_FALSE(service.boot_restore().warnings.empty());

  // Not restored: the session is gone until re-registered...
  const WireResponse missing = service.execute(solve_request());
  EXPECT_FALSE(missing.ok);
  EXPECT_EQ(missing.error_code, "unknown_network");

  // ...and an explicit restore reports the structured corruption error.
  WireRequest restore;
  restore.verb = WireVerb::kRestore;
  const WireResponse resp = service.execute(restore);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.error_code, "state_corrupt");

  // Re-registering heals the store (fresh checkpoint over the bad one).
  ASSERT_TRUE(service.execute(register_request(g)).ok);
  const WireResponse healed = service.execute(restore);
  EXPECT_TRUE(healed.ok) << healed.error_message;

  // Two refusals: the boot pass and the failed restore verb.
  const std::string metrics = service.metrics_text();
  EXPECT_NE(metrics.find("streamrel_state_corrupt_total 2"),
            std::string::npos);
}

TEST(ServerPersist, RejectOverloadedEchoesIdVerbAndCountsPerLane) {
  ReliabilityService service;
  const WireResponse resp = service.reject_overloaded(
      "{\"v\": 1, \"id\": 42, \"verb\": \"batch\", \"queries\": []}");
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.error_code, "overloaded");
  EXPECT_EQ(resp.id_json, "42");
  EXPECT_EQ(resp.verb, "batch");
  // batch defaults to the bulk lane; the reject is counted there.
  const std::string metrics = service.metrics_text();
  EXPECT_NE(
      metrics.find("streamrel_backpressure_rejects_total{lane=\"bulk\"} 1"),
      std::string::npos);
  EXPECT_NE(metrics.find(
                "streamrel_backpressure_rejects_total{lane=\"interactive\"} 0"),
            std::string::npos);

  // A line that cannot parse gets its parse error, not `overloaded`.
  const WireResponse garbage = service.reject_overloaded("{nope");
  EXPECT_FALSE(garbage.ok);
  EXPECT_EQ(garbage.error_code, "parse_error");
}

TEST(ServerPersist, StreamTransportCapsInflightRequests) {
  // With a zero-size worker pool... the inline path never queues, so the
  // cap is exercised through reject_overloaded by a saturated scheduler
  // instead: one worker, a queue of one, and a stream of batches.
  const ScratchStateDir scratch("inflight");
  const GeneratedNetwork g = test_instance();
  ServiceOptions options;
  options.start_workers = true;
  options.scheduler.workers = 1;
  ReliabilityService service(options);
  ASSERT_TRUE(service.execute(register_request(g)).ok);

  std::string script;
  for (int i = 0; i < 8; ++i) {
    WireRequest req = batch_request();
    req.id_json = std::to_string(i);
    script += serialize_wire_request(req);
    script += "\n";
  }
  std::istringstream in(script);
  std::ostringstream out;
  StreamServeOptions stream;
  stream.max_inflight = 1;
  const StreamServeResult result = serve_stream(service, in, out, stream);
  EXPECT_EQ(result.lines, 8u);
  EXPECT_EQ(result.responses, 8u);  // rejects are answered too
  // Every line got exactly one response; any line past the cap carries
  // the structured overloaded error.
  std::size_t overloaded = 0;
  std::istringstream replies(out.str());
  std::string line;
  while (std::getline(replies, line)) {
    if (line.find("\"overloaded\"") != std::string::npos) ++overloaded;
  }
  EXPECT_EQ(overloaded, result.backpressure_rejects);
}

}  // namespace
}  // namespace streamrel
