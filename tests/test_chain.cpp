#include "streamrel/core/chain.hpp"

#include <gtest/gtest.h>

#include "streamrel/core/bottleneck_algorithm.hpp"
#include "streamrel/graph/generators.hpp"
#include "streamrel/p2p/scenario.hpp"
#include "streamrel/reliability/naive.hpp"
#include "test_support.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

using testing::kTol;

TEST(Chain, TwoLayersEqualsBottleneckDecomposition) {
  const GeneratedNetwork g = make_fig4_graph(0.2);
  const FlowDemand demand{g.source, g.sink, 2};
  std::vector<int> layer;
  for (bool on_s : g.side_s) layer.push_back(on_s ? 0 : 1);
  EXPECT_NEAR(reliability_chain(g.net, demand, layer).reliability,
              reliability_naive(g.net, demand).reliability, kTol);
}

TEST(Chain, PurePathThreeLayers) {
  // s -0- a -1- b -2- t: layers {s}, {a, b}, {t}; boundaries are single
  // edges, the middle layer has one internal link.
  const GeneratedNetwork g = path_network(3, 1, 0.3);
  const std::vector<int> layer{0, 1, 1, 2};
  const FlowDemand demand{g.source, g.sink, 1};
  EXPECT_NEAR(reliability_chain(g.net, demand, layer).reliability,
              0.7 * 0.7 * 0.7, kTol);
}

TEST(Chain, LadderSplitIntoThreeLayers) {
  // 6-rung ladder cut at two rails: compare against naive enumeration.
  const GeneratedNetwork g = ladder_network(6, 1, 0.15);
  // Node layout: top row 0..5, bottom row 6..11. Layers by column pairs.
  std::vector<int> layer(12);
  for (int col = 0; col < 6; ++col) {
    const int l = col < 2 ? 0 : (col < 4 ? 1 : 2);
    layer[static_cast<std::size_t>(col)] = l;
    layer[static_cast<std::size_t>(6 + col)] = l;
  }
  const FlowDemand demand{g.source, g.sink, 1};
  EXPECT_NEAR(reliability_chain(g.net, demand, layer).reliability,
              reliability_naive(g.net, demand).reliability, kTol);
}

TEST(Chain, RandomThreeClusterChainsMatchNaive) {
  Xoshiro256 rng(606060);
  for (int trial = 0; trial < 12; ++trial) {
    // Three small clusters in a row joined by narrow boundaries.
    FlowNetwork net(9);
    auto cluster = [&](NodeId base) {
      net.add_undirected_edge(base, base + 1, 2, rng.uniform_real(0.05, 0.4));
      net.add_undirected_edge(base + 1, base + 2, 2,
                              rng.uniform_real(0.05, 0.4));
      net.add_undirected_edge(base, base + 2, 2, rng.uniform_real(0.05, 0.4));
    };
    cluster(0);
    cluster(3);
    cluster(6);
    // Boundaries: 2 links between layer 0 and 1, 2 links between 1 and 2.
    net.add_undirected_edge(1, 3, 1, rng.uniform_real(0.05, 0.4));
    net.add_undirected_edge(2, 4, 1, rng.uniform_real(0.05, 0.4));
    net.add_undirected_edge(4, 6, 1, rng.uniform_real(0.05, 0.4));
    net.add_undirected_edge(5, 7, 1, rng.uniform_real(0.05, 0.4));
    const std::vector<int> layer{0, 0, 0, 1, 1, 1, 2, 2, 2};
    const FlowDemand demand{0, 8, rng.uniform_int(1, 2)};
    EXPECT_NEAR(reliability_chain(net, demand, layer).reliability,
                reliability_naive(net, demand).reliability, 1e-9)
        << "trial " << trial;
  }
}

TEST(Chain, FourLayerPathChain) {
  const GeneratedNetwork g = path_network(6, 2, 0.2);
  const std::vector<int> layer{0, 0, 1, 1, 2, 2, 3};
  const FlowDemand demand{g.source, g.sink, 2};
  EXPECT_NEAR(reliability_chain(g.net, demand, layer).reliability,
              reliability_naive(g.net, demand).reliability, kTol);
}

TEST(Chain, DirectedThreeLayerChainMatchesNaive) {
  Xoshiro256 rng(202020);
  for (int trial = 0; trial < 8; ++trial) {
    // Directed relay cascade: layer cliques of 2 nodes, forward links.
    FlowNetwork net(6);
    auto p = [&] { return rng.uniform_real(0.05, 0.4); };
    net.add_directed_edge(0, 1, 2, p());  // layer 0 internal
    net.add_directed_edge(2, 3, 2, p());  // layer 1 internal
    net.add_directed_edge(4, 5, 2, p());  // layer 2 internal
    net.add_directed_edge(0, 2, 1, p());  // boundary 0
    net.add_directed_edge(1, 3, 1, p());
    net.add_directed_edge(2, 4, 1, p());  // boundary 1
    net.add_directed_edge(3, 5, 1, p());
    const std::vector<int> layer{0, 0, 1, 1, 2, 2};
    const FlowDemand demand{0, 5, rng.uniform_int(1, 2)};
    EXPECT_NEAR(reliability_chain(net, demand, layer).reliability,
                reliability_naive(net, demand).reliability, 1e-9)
        << "trial " << trial;
  }
}

TEST(Chain, InfeasibleBoundaryGivesZero) {
  const GeneratedNetwork g = path_network(3, 1, 0.1);
  const std::vector<int> layer{0, 1, 1, 2};
  EXPECT_DOUBLE_EQ(
      reliability_chain(g.net, {g.source, g.sink, 2}, layer).reliability,
      0.0);
}

TEST(Chain, LayersFromCutsRecoverTheLayering) {
  const GeneratedNetwork g = path_network(3, 1, 0.1);
  const auto layer = layers_from_cuts(g.net, g.source, g.sink, {{0}, {2}});
  EXPECT_EQ(layer, (std::vector<int>{0, 1, 1, 2}));
}

TEST(Chain, LayersFromCutsRejectsNonSeparating) {
  const GeneratedNetwork g = make_fig2_bridge_graph();
  EXPECT_THROW(layers_from_cuts(g.net, g.source, g.sink, {{0}}),
               std::invalid_argument);
}

TEST(Chain, ValidatesLayout) {
  const GeneratedNetwork g = path_network(3, 1, 0.1);
  const FlowDemand demand{g.source, g.sink, 1};
  // Wrong size.
  EXPECT_THROW(reliability_chain(g.net, demand, {0, 1, 2}),
               std::invalid_argument);
  // Source not in layer 0.
  EXPECT_THROW(reliability_chain(g.net, demand, {1, 1, 1, 1}),
               std::invalid_argument);
  // Sink not in the last layer.
  EXPECT_THROW(reliability_chain(g.net, demand, {0, 1, 2, 1}),
               std::invalid_argument);
  // Edge skipping a layer: s(0) - a(2) is illegal.
  EXPECT_THROW(reliability_chain(g.net, demand, {0, 2, 2, 3}),
               std::invalid_argument);
}

}  // namespace
}  // namespace streamrel
