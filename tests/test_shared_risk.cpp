#include "streamrel/core/shared_risk.hpp"

#include <gtest/gtest.h>

#include "streamrel/p2p/scenario.hpp"
#include "streamrel/reliability/naive.hpp"
#include "test_support.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

using testing::kTol;

TEST(SharedRisk, NoGroupsEqualsPlainReliability) {
  const GeneratedNetwork g = make_fig4_graph(0.2);
  const FlowDemand demand{g.source, g.sink, 2};
  EXPECT_NEAR(reliability_with_shared_risks(g.net, demand, {}).reliability,
              reliability_naive(g.net, demand).reliability, kTol);
}

TEST(SharedRisk, ZeroProbabilityGroupsChangeNothing) {
  const GeneratedNetwork g = make_fig4_graph(0.2);
  const FlowDemand demand{g.source, g.sink, 2};
  const std::vector<SharedRiskGroup> groups{{{7, 8}, 0.0}, {{0, 1}, 0.0}};
  EXPECT_NEAR(
      reliability_with_shared_risks(g.net, demand, groups).reliability,
      reliability_naive(g.net, demand).reliability, kTol);
}

TEST(SharedRisk, SingleConduitClosedForm) {
  // Both peering links share one conduit: R = (1 - pi) * R_plain, because
  // the conduit failing severs s from t entirely.
  const GeneratedNetwork g = make_fig4_graph(0.2);
  const FlowDemand demand{g.source, g.sink, 2};
  const double plain = reliability_naive(g.net, demand).reliability;
  const std::vector<SharedRiskGroup> groups{{{7, 8}, 0.25}};
  EXPECT_NEAR(
      reliability_with_shared_risks(g.net, demand, groups).reliability,
      0.75 * plain, kTol);
}

TEST(SharedRisk, MatchesManualConditioningOnTwoGroups) {
  const GeneratedNetwork g = make_fig4_graph(0.15);
  const FlowDemand demand{g.source, g.sink, 2};
  const std::vector<SharedRiskGroup> groups{{{7}, 0.2}, {{8}, 0.3}};

  // Manual conditioning: force links down by zero capacity.
  auto conditional = [&](bool up7, bool up8) {
    GeneratedNetwork copy = g;
    if (!up7) copy.net.set_capacity(7, 0);
    if (!up8) copy.net.set_capacity(8, 0);
    return reliability_naive(copy.net, demand).reliability;
  };
  const double expected = 0.8 * 0.7 * conditional(true, true) +
                          0.8 * 0.3 * conditional(true, false) +
                          0.2 * 0.7 * conditional(false, true) +
                          0.2 * 0.3 * conditional(false, false);
  EXPECT_NEAR(
      reliability_with_shared_risks(g.net, demand, groups).reliability,
      expected, kTol);
}

TEST(SharedRisk, CorrelationHurtsComparedToIndependentExtraRisk) {
  // Folding the same per-link extra failure probability in independently
  // is strictly better than failing both peering links together.
  const GeneratedNetwork g = make_fig4_graph(0.1);
  const FlowDemand demand{g.source, g.sink, 2};
  const double pi = 0.2;
  const double correlated =
      reliability_with_shared_risks(g.net, demand, {{{7, 8}, pi}})
          .reliability;
  GeneratedNetwork indep = g;
  for (EdgeId id : {7, 8}) {
    const double p = indep.net.edge(id).failure_prob;
    indep.net.set_failure_prob(id, 1.0 - (1.0 - p) * (1.0 - pi));
  }
  const double independent = reliability_naive(indep.net, demand).reliability;
  EXPECT_LT(correlated, independent - 1e-6);
}

TEST(SharedRisk, GroupStateCountReported) {
  const GeneratedNetwork g = make_fig4_graph(0.1);
  const auto result = reliability_with_shared_risks(
      g.net, {g.source, g.sink, 2}, {{{7}, 0.1}, {{8}, 0.1}, {{0}, 0.1}});
  EXPECT_EQ(result.group_states, 8u);
}

TEST(SharedRisk, ValidatesInput) {
  const GeneratedNetwork g = make_fig4_graph(0.1);
  const FlowDemand demand{g.source, g.sink, 2};
  EXPECT_THROW(reliability_with_shared_risks(g.net, demand, {{{99}, 0.1}}),
               std::invalid_argument);
  EXPECT_THROW(reliability_with_shared_risks(g.net, demand, {{{0}, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(reliability_with_shared_risks(
                   g.net, demand,
                   std::vector<SharedRiskGroup>(21, SharedRiskGroup{{0}, 0.1})),
               std::invalid_argument);
}

}  // namespace
}  // namespace streamrel
