#include "streamrel/reliability/polynomial.hpp"

#include <gtest/gtest.h>

#include "streamrel/graph/generators.hpp"
#include "streamrel/reliability/naive.hpp"
#include "test_support.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

using testing::kTol;

TEST(Polynomial, SingleLinkCounts) {
  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 1, 0.123);  // prob is ignored by counting
  const auto poly = reliability_polynomial(net, {0, 1, 1});
  // 0 failures: admits; 1 failure: does not.
  EXPECT_EQ(poly.counts(), (std::vector<std::uint64_t>{1, 0}));
  EXPECT_NEAR(poly.evaluate(0.3), 0.7, kTol);
  EXPECT_NEAR(poly.evaluate(0.0), 1.0, kTol);
}

TEST(Polynomial, ParallelPairCounts) {
  const FlowNetwork net = testing::parallel_pair(0.9, 0.9);
  const auto poly = reliability_polynomial(net, {0, 1, 1});
  // 0 failed: 1 config; 1 failed: 2 configs, both admit; 2 failed: none.
  EXPECT_EQ(poly.counts(), (std::vector<std::uint64_t>{1, 2, 0}));
  EXPECT_NEAR(poly.evaluate(0.5), 0.75, kTol);
}

TEST(Polynomial, MatchesNaiveAtManyProbabilities) {
  Xoshiro256 rng(606);
  for (int trial = 0; trial < 25; ++trial) {
    GeneratedNetwork g = random_multigraph(
        rng, static_cast<int>(rng.uniform_int(2, 6)),
        static_cast<int>(rng.uniform_int(1, 10)), {1, 3}, {0.1, 0.1});
    const FlowDemand demand{g.source, g.sink, rng.uniform_int(1, 3)};
    const auto poly = reliability_polynomial(g.net, demand);
    for (double p : {0.0, 0.05, 0.3, 0.5, 0.8, 0.99}) {
      for (EdgeId id = 0; id < g.net.num_edges(); ++id) {
        g.net.set_failure_prob(id, p);
      }
      EXPECT_NEAR(poly.evaluate(p),
                  reliability_naive(g.net, demand).reliability, 1e-9)
          << "trial " << trial << " p=" << p;
    }
  }
}

TEST(Polynomial, MonotoneDecreasingInP) {
  const GeneratedNetwork g = ladder_network(3, 1, 0.1);
  const auto poly = reliability_polynomial(g.net, {g.source, g.sink, 1});
  double prev = 1.1;
  for (double p = 0.0; p < 0.95; p += 0.05) {
    const double r = poly.evaluate(p);
    EXPECT_LE(r, prev + 1e-12);
    prev = r;
  }
}

TEST(Polynomial, CountsSumToBinomialTotals) {
  const FlowNetwork net = testing::diamond(0.2);
  const auto poly = reliability_polynomial(net, {0, 3, 1});
  // N_j cannot exceed C(5, j).
  const std::uint64_t binom[] = {1, 5, 10, 10, 5, 1};
  ASSERT_EQ(poly.counts().size(), 6u);
  for (std::size_t j = 0; j < 6; ++j) {
    EXPECT_LE(poly.counts()[j], binom[j]);
  }
  // With everything alive the diamond admits.
  EXPECT_EQ(poly.counts()[0], 1u);
}

TEST(Polynomial, EvaluateRejectsBadP) {
  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 1, 0.1);
  const auto poly = reliability_polynomial(net, {0, 1, 1});
  EXPECT_THROW(poly.evaluate(1.0), std::invalid_argument);
  EXPECT_THROW(poly.evaluate(-0.1), std::invalid_argument);
}

TEST(Polynomial, ConstructorValidatesShape) {
  EXPECT_THROW(ReliabilityPolynomial(3, {1, 2}), std::invalid_argument);
  EXPECT_NO_THROW(ReliabilityPolynomial(3, {1, 2, 3, 4}));
}

}  // namespace
}  // namespace streamrel
