#include "streamrel/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace streamrel {
namespace {

TEST(KahanSum, ExactForSmallIntegers) {
  KahanSum sum;
  for (int i = 1; i <= 100; ++i) sum.add(i);
  EXPECT_DOUBLE_EQ(sum.value(), 5050.0);
}

TEST(KahanSum, CompensatesTinyAddends) {
  // 1 + 2^-60 added 2^20 times: naive double summation loses everything,
  // compensated summation keeps the 2^-40 total.
  KahanSum sum;
  sum.add(1.0);
  const double tiny = std::ldexp(1.0, -60);
  for (int i = 0; i < (1 << 20); ++i) sum.add(tiny);
  EXPECT_NEAR(sum.value() - 1.0, std::ldexp(1.0, -40), 1e-18);
}

TEST(KahanSum, MergePreservesTotals) {
  KahanSum a, b, whole;
  for (int i = 0; i < 1000; ++i) {
    const double x = 1.0 / (i + 1.0);
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.value(), whole.value(), 1e-12);
}

TEST(KahanSum, ResetClears) {
  KahanSum sum;
  sum.add(3.0);
  sum.reset();
  EXPECT_DOUBLE_EQ(sum.value(), 0.0);
}

TEST(OnlineStats, MeanAndVariance) {
  OnlineStats st;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(x);
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(st.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(OnlineStats, FewSamplesHaveZeroVariance) {
  OnlineStats st;
  EXPECT_DOUBLE_EQ(st.variance(), 0.0);
  st.add(42.0);
  EXPECT_DOUBLE_EQ(st.variance(), 0.0);
}

TEST(ProportionCi, ShrinksWithSamples) {
  const double wide = proportion_ci_halfwidth(50, 100);
  const double narrow = proportion_ci_halfwidth(5000, 10000);
  EXPECT_GT(wide, narrow);
  EXPECT_NEAR(wide, 1.96 * std::sqrt(0.25 / 100.0), 1e-3);
}

TEST(ProportionCi, RejectsZeroSamples) {
  EXPECT_THROW(proportion_ci_halfwidth(0, 0), std::invalid_argument);
}

TEST(WilsonInterval, ContainsPointEstimate) {
  const Interval iv = wilson_interval(30, 100);
  EXPECT_LT(iv.lo, 0.3);
  EXPECT_GT(iv.hi, 0.3);
  EXPECT_TRUE(iv.contains(0.3));
}

TEST(WilsonInterval, BehavedAtExtremes) {
  const Interval zero = wilson_interval(0, 100);
  EXPECT_GE(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  const Interval one = wilson_interval(100, 100);
  EXPECT_LT(one.lo, 1.0);
  EXPECT_LE(one.hi, 1.0);
}

TEST(FitLine, RecoversExactLine) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{3, 5, 7, 9, 11};  // y = 2x + 1
  const LineFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLine, NoisyDataHasLowerR2) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{1, 3, 2, 4};
  const LineFit fit = fit_line(x, y);
  EXPECT_GT(fit.slope, 0.0);
  EXPECT_LT(fit.r_squared, 1.0);
}

TEST(FitLine, RejectsDegenerateInput) {
  EXPECT_THROW(fit_line({1.0}, {2.0}), std::invalid_argument);
  EXPECT_THROW(fit_line({1.0, 2.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(fit_line({2.0, 2.0}, {1.0, 3.0}), std::invalid_argument);
}

}  // namespace
}  // namespace streamrel
