#include "streamrel/reliability/reductions.hpp"

#include <gtest/gtest.h>

#include "streamrel/graph/generators.hpp"
#include "streamrel/p2p/scenario.hpp"
#include "streamrel/reliability/frontier.hpp"
#include "streamrel/reliability/naive.hpp"
#include "test_support.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

using testing::kTol;

TEST(Reductions, SeriesChainCollapsesToOneLink) {
  const GeneratedNetwork g = path_network(4, 1, 0.1);
  const ReducedNetwork red =
      reduce_for_connectivity(g.net, g.source, g.sink);
  ASSERT_TRUE(red.fully_reduced());
  EXPECT_EQ(red.series_steps, 3);
  EXPECT_NEAR(1.0 - red.net.edge(0).failure_prob, std::pow(0.9, 4.0), kTol);
}

TEST(Reductions, ParallelBundleCollapsesToOneLink) {
  const GeneratedNetwork g = parallel_links(5, 1, 0.3);
  const ReducedNetwork red =
      reduce_for_connectivity(g.net, g.source, g.sink);
  ASSERT_TRUE(red.fully_reduced());
  EXPECT_EQ(red.parallel_steps, 4);
  EXPECT_NEAR(red.net.edge(0).failure_prob, std::pow(0.3, 5.0), kTol);
}

TEST(Reductions, SeriesParallelLadderOfTwoRungsIsExact) {
  // Two disjoint 2-hop paths s-a-t and s-b-t: series within each path,
  // then parallel across them — fully reducible.
  FlowNetwork net(4);
  net.add_undirected_edge(0, 1, 1, 0.1);
  net.add_undirected_edge(1, 3, 1, 0.2);
  net.add_undirected_edge(0, 2, 1, 0.3);
  net.add_undirected_edge(2, 3, 1, 0.4);
  const ReducedNetwork red = reduce_for_connectivity(net, 0, 3);
  ASSERT_TRUE(red.fully_reduced());
  EXPECT_NEAR(1.0 - red.net.edge(0).failure_prob,
              reliability_naive(net, {0, 3, 1}).reliability, kTol);
}

TEST(Reductions, DeadEndsAndZeroCapacityLinksArePruned) {
  FlowNetwork net(5);
  net.add_undirected_edge(0, 1, 1, 0.1);   // s - t path piece
  net.add_undirected_edge(1, 2, 1, 0.1);
  net.add_undirected_edge(1, 3, 1, 0.2);   // dangling spur
  net.add_undirected_edge(3, 4, 1, 0.2);   // deeper spur
  net.add_undirected_edge(0, 2, 0, 0.2);   // capacity 0: useless
  const ReducedNetwork red = reduce_for_connectivity(net, 0, 2);
  EXPECT_GE(red.pruned_links, 3);
  ASSERT_TRUE(red.fully_reduced());
  EXPECT_NEAR(1.0 - red.net.edge(0).failure_prob, 0.81, kTol);
}

TEST(Reductions, BridgeGraphReducesToBridgeOnly) {
  // The Fig.-2 diamonds are series-parallel, so the whole graph
  // collapses to a single equivalent link.
  const GeneratedNetwork g = make_fig2_bridge_graph(0.1);
  const ReducedNetwork red =
      reduce_for_connectivity(g.net, g.source, g.sink);
  ASSERT_TRUE(red.fully_reduced());
  EXPECT_NEAR(1.0 - red.net.edge(0).failure_prob,
              reliability_naive(g.net, {g.source, g.sink, 1}).reliability,
              kTol);
}

TEST(Reductions, WheatstoneBridgeDoesNotFullyReduce) {
  // The classic non-series-parallel graph: the crossbar survives.
  const FlowNetwork net = testing::diamond(0.2);
  const ReducedNetwork red = reduce_for_connectivity(net, 0, 3);
  EXPECT_FALSE(red.fully_reduced());
  EXPECT_EQ(red.net.num_edges(), 5);
  // But the reduction must still preserve the reliability.
  EXPECT_NEAR(
      reliability_naive(red.net, {red.source, red.sink, 1}).reliability,
      reliability_naive(net, {0, 3, 1}).reliability, kTol);
}

TEST(Reductions, PreservesReliabilityOnRandomGraphs) {
  Xoshiro256 rng(987654);
  for (int trial = 0; trial < 40; ++trial) {
    const GeneratedNetwork g = random_multigraph(
        rng, static_cast<int>(rng.uniform_int(2, 8)),
        static_cast<int>(rng.uniform_int(1, 13)), {0, 2}, {0.05, 0.6});
    const ReducedNetwork red =
        reduce_for_connectivity(g.net, g.source, g.sink);
    const double before =
        reliability_naive(g.net, {g.source, g.sink, 1}).reliability;
    const double after =
        red.net.num_edges() == 0
            ? 0.0
            : reliability_naive(red.net, {red.source, red.sink, 1})
                  .reliability;
    ASSERT_NEAR(after, before, 1e-9)
        << "trial " << trial << " (" << g.net.num_edges() << " -> "
        << red.net.num_edges() << " links)";
    EXPECT_LE(red.net.num_edges(), g.net.num_edges());
  }
}

TEST(Reductions, SpeedsUpTheFrontierOracle) {
  // A 60-rung ladder with long series tails: the tails collapse, the
  // frontier answers on the reduced core, and both values agree.
  FlowNetwork net(0);
  const GeneratedNetwork ladder = ladder_network(6, 1, 0.1);
  net = ladder.net;
  NodeId prev = ladder.source;
  for (int i = 0; i < 30; ++i) {  // 30-hop tail on the source side
    const NodeId next = net.add_node();
    net.add_undirected_edge(prev, next, 1, 0.02);
    prev = next;
  }
  const ReducedNetwork red = reduce_for_connectivity(net, prev, ladder.sink);
  EXPECT_LT(red.net.num_edges(), 20);
  EXPECT_NEAR(
      reliability_connectivity(red.net, {red.source, red.sink, 1})
          .reliability,
      reliability_connectivity(net, {prev, ladder.sink, 1}).reliability,
      1e-9);
}

TEST(Reductions, RejectsDirectedNetworks) {
  FlowNetwork net(2);
  net.add_directed_edge(0, 1, 1, 0.1);
  EXPECT_THROW(reduce_for_connectivity(net, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace streamrel
