// Property tests for the CompiledNetwork snapshot and NetworkView
// zero-copy side views: the CSR columns must round-trip the builder
// exactly, views must reproduce the historical Subgraph numbering bit
// for bit, and every cached/uncached solve path must agree bitwise.

#include "streamrel/graph/compiled.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "streamrel/core/engine.hpp"
#include "streamrel/core/query_session.hpp"
#include "streamrel/cuts/bottleneck.hpp"
#include "streamrel/graph/generators.hpp"
#include "streamrel/graph/subgraph.hpp"
#include "streamrel/maxflow/config_residual.hpp"
#include "streamrel/maxflow/dinic.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

constexpr int kSeeds = 200;

// One graph per seed, cycling through the generator families and mixing
// directed and undirected link kinds.
GeneratedNetwork seeded_graph(int seed) {
  Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 7919u + 1);
  const EdgeKind kind =
      seed % 2 == 0 ? EdgeKind::kUndirected : EdgeKind::kDirected;
  const CapacityRange caps{1, 3};
  const ProbRange probs{0.01, 0.4};
  switch (seed % 4) {
    case 0:
      return random_multigraph(rng, 5 + seed % 5, 8 + seed % 7, caps, probs,
                               kind);
    case 1:
      return random_connected(rng, 6 + seed % 4, 2 + seed % 3, caps, probs,
                              kind);
    case 2: {
      ClusteredParams params;
      params.nodes_s = 4 + seed % 3;
      params.nodes_t = 4 + (seed / 4) % 3;
      params.bottleneck_links = 1 + seed % 3;
      params.kind = kind;
      return clustered_bottleneck(rng, params);
    }
    default:
      return small_world(rng, 8 + seed % 5, 4, 0.2, caps, probs);
  }
}

// A random node side containing at least one node; seeded per graph.
std::vector<bool> random_side(const FlowNetwork& net, int seed) {
  Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 104729u + 13);
  std::vector<bool> side(static_cast<std::size_t>(net.num_nodes()));
  for (std::size_t i = 0; i < side.size(); ++i) side[i] = rng.bernoulli(0.5);
  side[static_cast<std::size_t>(
      rng.uniform_below(static_cast<std::uint64_t>(net.num_nodes())))] = true;
  return side;
}

TEST(CompiledNetwork, CsrRoundTripMatchesBuilderAcrossSeededGraphs) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    const GeneratedNetwork g = seeded_graph(seed);
    const auto snapshot = g.net.compile();
    ASSERT_EQ(snapshot->num_nodes(), g.net.num_nodes()) << "seed " << seed;
    ASSERT_EQ(snapshot->num_edges(), g.net.num_edges()) << "seed " << seed;
    EXPECT_EQ(snapshot->fits_mask(), g.net.fits_mask());

    for (EdgeId id = 0; id < g.net.num_edges(); ++id) {
      const Edge& e = g.net.edge(id);
      EXPECT_EQ(snapshot->edge_u(id), e.u) << "seed " << seed;
      EXPECT_EQ(snapshot->edge_v(id), e.v);
      EXPECT_EQ(snapshot->edge_kind(id), e.kind);
      EXPECT_EQ(snapshot->edge_directed(id), e.directed());
      EXPECT_EQ(snapshot->edge_capacity(id), e.capacity);
      EXPECT_EQ(snapshot->failure_prob(id), e.failure_prob);
      EXPECT_EQ(snapshot->log_survival(id), std::log1p(-e.failure_prob));
      if (e.failure_prob > 0.0) {
        EXPECT_EQ(snapshot->log_failure(id), std::log(e.failure_prob));
      }
    }

    // The probability column is one contiguous span in edge-id order.
    const std::vector<double> expected_probs = g.net.failure_probs();
    const std::span<const double> probs = snapshot->failure_probs();
    ASSERT_EQ(probs.size(), expected_probs.size());
    for (std::size_t i = 0; i < probs.size(); ++i) {
      EXPECT_EQ(probs[i], expected_probs[i]) << "seed " << seed;
    }

    // CSR incidence mirrors the builder's adjacency order exactly.
    for (NodeId n = 0; n < g.net.num_nodes(); ++n) {
      const std::vector<EdgeId>& expected = g.net.incident_edges(n);
      const std::span<const EdgeId> got = snapshot->incident_edges(n);
      ASSERT_EQ(got.size(), expected.size()) << "seed " << seed;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], expected[i]) << "seed " << seed << " node " << n;
      }
    }
  }
}

TEST(CompiledNetwork, WithFailureProbOverlaysWithoutCopyingStructure) {
  const GeneratedNetwork g = seeded_graph(3);
  const auto base = g.net.compile();
  const auto overlay = base->with_failure_prob(0, 0.5);
  EXPECT_EQ(overlay->structure_id(), base->structure_id());
  EXPECT_EQ(&overlay->structure(), &base->structure());
  EXPECT_EQ(overlay->failure_prob(0), 0.5);
  EXPECT_EQ(overlay->log_survival(0), std::log1p(-0.5));
  EXPECT_EQ(base->failure_prob(0), g.net.edge(0).failure_prob);
  for (EdgeId id = 1; id < base->num_edges(); ++id) {
    EXPECT_EQ(overlay->failure_prob(id), base->failure_prob(id));
  }
  // A fresh compile of the same builder is a DIFFERENT structure: identity
  // is per snapshot lineage, never derived from contents.
  EXPECT_NE(g.net.compile()->structure_id(), base->structure_id());
  EXPECT_THROW((void)base->with_failure_prob(-1, 0.5), std::invalid_argument);
  EXPECT_THROW((void)base->with_failure_prob(0, 1.0), std::invalid_argument);
}

TEST(NetworkView, TranslationMatchesSubgraphAcrossSeededGraphs) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    const GeneratedNetwork g = seeded_graph(seed);
    const std::vector<bool> side = random_side(g.net, seed);
    const Subgraph sub = induced_subgraph(g.net, side);
    const NetworkView view(g.net.compile(), side);

    ASSERT_EQ(view.num_nodes(), sub.net.num_nodes()) << "seed " << seed;
    ASSERT_EQ(view.num_edges(), sub.net.num_edges()) << "seed " << seed;
    EXPECT_EQ(view.node_map(), sub.node_map);
    EXPECT_EQ(view.edge_map(), sub.edge_map);
    EXPECT_EQ(view.node_to_view(), sub.node_to_sub);
    EXPECT_EQ(view.edge_to_view(), sub.edge_to_sub);

    for (EdgeId id = 0; id < view.num_edges(); ++id) {
      const Edge& e = sub.net.edge(id);
      EXPECT_EQ(view.edge_u(id), e.u) << "seed " << seed;
      EXPECT_EQ(view.edge_v(id), e.v);
      EXPECT_EQ(view.edge_kind(id), e.kind);
      EXPECT_EQ(view.edge_capacity(id), e.capacity);
      EXPECT_EQ(view.failure_prob(id), e.failure_prob);
    }
    EXPECT_EQ(view.failure_probs(), sub.net.failure_probs());

    if (g.net.fits_mask()) {
      Xoshiro256 rng(static_cast<std::uint64_t>(seed) + 17);
      for (int trial = 0; trial < 16; ++trial) {
        const Mask original = rng() & full_mask(g.net.num_edges());
        const Mask projected = view.project_mask(original);
        EXPECT_EQ(projected, project_mask(sub, original)) << "seed " << seed;
        EXPECT_EQ(view.lift_mask(projected), lift_mask(sub, projected));
      }
    }
  }
}

TEST(NetworkView, ConfigResidualMatchesCopiedSubgraphMaxFlows) {
  // The residual built from a zero-copy view must lay out arcs exactly
  // as one built from the historical copied subnetwork: identical
  // max-flow values for every failure configuration.
  for (int seed = 0; seed < 40; ++seed) {
    const GeneratedNetwork g = seeded_graph(seed);
    const std::vector<bool> side = random_side(g.net, seed);
    const Subgraph sub = induced_subgraph(g.net, side);
    if (sub.net.num_edges() == 0 || !sub.net.fits_mask()) continue;

    ConfigResidual from_copy(sub.net);
    ConfigResidual from_view{NetworkView(g.net.compile(), side)};
    ASSERT_EQ(from_view.num_edges(), from_copy.num_edges());

    Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 31 + 5);
    DinicSolver solver;
    for (int trial = 0; trial < 8; ++trial) {
      const Mask alive = rng() & full_mask(from_copy.num_edges());
      const auto s = static_cast<NodeId>(
          rng.uniform_below(static_cast<std::uint64_t>(sub.net.num_nodes())));
      const auto t = static_cast<NodeId>(
          rng.uniform_below(static_cast<std::uint64_t>(sub.net.num_nodes())));
      if (s == t) continue;
      from_copy.reset(alive);
      from_view.reset(alive);
      EXPECT_EQ(solver.solve(from_copy.graph(), s, t),
                solver.solve(from_view.graph(), s, t))
          << "seed " << seed << " mask " << alive;
    }
  }
}

TEST(NetworkView, WholeNetworkViewIsTheIdentityTranslation) {
  const GeneratedNetwork g = seeded_graph(8);
  const NetworkView view(g.net.compile());
  ASSERT_EQ(view.num_nodes(), g.net.num_nodes());
  ASSERT_EQ(view.num_edges(), g.net.num_edges());
  for (NodeId n = 0; n < g.net.num_nodes(); ++n) {
    EXPECT_EQ(view.original_node(n), n);
    EXPECT_EQ(view.view_node(n), n);
  }
  for (EdgeId id = 0; id < g.net.num_edges(); ++id) {
    EXPECT_EQ(view.original_edge(id), id);
    EXPECT_EQ(view.view_edge(id), id);
  }
}

TEST(NetworkView, RejectsMismatchedSideVector) {
  const GeneratedNetwork g = seeded_graph(2);
  const std::vector<bool> wrong(
      static_cast<std::size_t>(g.net.num_nodes()) + 1);
  EXPECT_THROW(NetworkView(g.net.compile(), wrong), std::invalid_argument);
}

// Every deterministic registered engine must give the SAME bits when run
// twice on the same instance — the snapshot/view plumbing may not
// introduce any run-to-run or cached-vs-cold divergence.
TEST(CompiledNetwork, EnginesAndSessionAgreeBitwiseOnSeededGraphs) {
  const EngineRegistry& registry = EngineRegistry::instance();
  for (int seed = 0; seed < 30; ++seed) {
    const GeneratedNetwork g = seeded_graph(seed);
    if (g.net.num_edges() > 14) continue;  // keep the naive engine fast
    const Capacity rate = 1 + seed % 2;
    const FlowDemand demand{g.source, g.sink, rate};

    const SolveReport facade = compute_reliability(g.net, demand);
    QuerySession session(g.net);
    const SolveReport cold = session.solve(demand);
    const SolveReport warm = session.solve(demand);
    EXPECT_EQ(cold.result.reliability, facade.result.reliability)
        << "seed " << seed;
    EXPECT_EQ(warm.result.reliability, facade.result.reliability)
        << "seed " << seed;

    for (const Engine* engine : registry.engines()) {
      if (!engine->applicable(g.net, demand)) continue;
      SolveReport first;
      try {
        first = engine->solve(g.net, demand, {}, nullptr);
      } catch (const std::invalid_argument&) {
        continue;  // e.g. no usable partition for the bottleneck engine
      }
      const SolveReport second = engine->solve(g.net, demand, {}, nullptr);
      EXPECT_EQ(first.result.reliability, second.result.reliability)
          << "seed " << seed << " engine " << engine->name();
    }
  }
}

TEST(CompiledNetwork, SnapshotReuseIsBitwiseEqualToOnTheFlyCompile) {
  for (int seed = 0; seed < 30; ++seed) {
    Xoshiro256 rng(static_cast<std::uint64_t>(seed) + 1000);
    ClusteredParams params;
    params.nodes_s = 5;
    params.nodes_t = 5;
    params.bottleneck_links = 2;
    const GeneratedNetwork g = clustered_bottleneck(rng, params);
    const BottleneckPartition partition =
        partition_from_sides(g.net, g.source, g.sink, g.side_s);
    const FlowDemand demand{g.source, g.sink, 2};
    const BottleneckResult cold =
        reliability_bottleneck(g.net, demand, partition);
    const BottleneckResult pinned = reliability_bottleneck(
        g.net, demand, partition, {}, nullptr, g.net.compile());
    EXPECT_EQ(cold.reliability, pinned.reliability) << "seed " << seed;
  }
}

TEST(CompiledNetwork, MergedMultiOriginNetworksCompileAndAgree) {
  // Multi-origin deployments reduce to the single-source model through
  // merge_sources; the snapshot path must carry the p = 0 feed links and
  // answer bitwise-identically through the session caches.
  for (int seed = 0; seed < 20; ++seed) {
    Xoshiro256 rng(static_cast<std::uint64_t>(seed) * 13 + 7);
    GeneratedNetwork g = random_connected(rng, 8, 4, {1, 2}, {0.05, 0.3});
    const std::vector<NodeId> servers = {g.source,
                                         g.source == 1 ? NodeId{2} : NodeId{1}};
    const NodeId super = merge_sources(g.net, servers);
    const FlowDemand demand{super, g.sink, 1};

    const auto snapshot = g.net.compile();
    for (std::size_t i = 0; i < servers.size(); ++i) {
      const EdgeId feed =
          static_cast<EdgeId>(g.net.num_edges() - 1 -
                              static_cast<int>(servers.size() - 1 - i));
      EXPECT_EQ(snapshot->edge_u(feed), super);
      EXPECT_EQ(snapshot->failure_prob(feed), 0.0);
      EXPECT_TRUE(snapshot->edge_directed(feed));
    }

    SolveOptions options;
    options.use_reductions = false;  // p = 0 feed links would reduce away
    const SolveReport facade = compute_reliability(g.net, demand, options);
    QuerySession session(g.net);
    const SolveReport cached = session.solve(demand, options);
    EXPECT_EQ(cached.result.reliability, facade.result.reliability)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace streamrel
