#include "streamrel/graph/flow_network.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace streamrel {
namespace {

TEST(FlowNetwork, AddNodesAndEdges) {
  FlowNetwork net(3);
  EXPECT_EQ(net.num_nodes(), 3);
  const NodeId n = net.add_node();
  EXPECT_EQ(n, 3);
  const NodeId first = net.add_nodes(2);
  EXPECT_EQ(first, 4);
  EXPECT_EQ(net.num_nodes(), 6);

  const EdgeId e = net.add_undirected_edge(0, 1, 5, 0.25);
  EXPECT_EQ(e, 0);
  EXPECT_EQ(net.num_edges(), 1);
  EXPECT_EQ(net.edge(e).capacity, 5);
  EXPECT_DOUBLE_EQ(net.edge(e).failure_prob, 0.25);
  EXPECT_FALSE(net.edge(e).directed());
}

TEST(FlowNetwork, EdgeOtherEndpoint) {
  FlowNetwork net(2);
  net.add_directed_edge(0, 1, 1, 0.0);
  EXPECT_EQ(net.edge(0).other(0), 1);
  EXPECT_EQ(net.edge(0).other(1), 0);
}

TEST(FlowNetwork, IncidenceListsBothEndpoints) {
  FlowNetwork net(3);
  net.add_undirected_edge(0, 1, 1, 0.1);
  net.add_directed_edge(1, 2, 1, 0.1);
  EXPECT_EQ(net.incident_edges(0).size(), 1u);
  EXPECT_EQ(net.incident_edges(1).size(), 2u);
  EXPECT_EQ(net.incident_edges(2).size(), 1u);
}

TEST(FlowNetwork, RejectsBadEdges) {
  FlowNetwork net(2);
  EXPECT_THROW(net.add_undirected_edge(0, 0, 1, 0.1), std::invalid_argument);
  EXPECT_THROW(net.add_undirected_edge(0, 5, 1, 0.1), std::invalid_argument);
  EXPECT_THROW(net.add_undirected_edge(-1, 1, 1, 0.1), std::invalid_argument);
  EXPECT_THROW(net.add_undirected_edge(0, 1, -2, 0.1), std::invalid_argument);
  EXPECT_THROW(net.add_undirected_edge(0, 1, 1, 1.0), std::invalid_argument);
  EXPECT_THROW(net.add_undirected_edge(0, 1, 1, -0.1), std::invalid_argument);
}

TEST(FlowNetwork, SettersValidate) {
  FlowNetwork net(2);
  const EdgeId e = net.add_undirected_edge(0, 1, 1, 0.1);
  net.set_failure_prob(e, 0.9);
  EXPECT_DOUBLE_EQ(net.edge(e).failure_prob, 0.9);
  net.set_capacity(e, 7);
  EXPECT_EQ(net.edge(e).capacity, 7);
  EXPECT_THROW(net.set_failure_prob(e, 1.0), std::invalid_argument);
  EXPECT_THROW(net.set_capacity(e, -1), std::invalid_argument);
  EXPECT_THROW(net.set_failure_prob(99, 0.1), std::invalid_argument);
}

TEST(FlowNetwork, MaskLimits) {
  FlowNetwork small(2);
  for (int i = 0; i < 63; ++i) small.add_undirected_edge(0, 1, 1, 0.1);
  EXPECT_TRUE(small.fits_mask());
  EXPECT_EQ(small.all_edges_mask(), full_mask(63));
  small.add_undirected_edge(0, 1, 1, 0.1);
  EXPECT_FALSE(small.fits_mask());
  EXPECT_THROW(small.all_edges_mask(), std::invalid_argument);
}

TEST(FlowNetwork, FailureProbsVector) {
  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 1, 0.1);
  net.add_undirected_edge(0, 1, 1, 0.2);
  const auto probs = net.failure_probs();
  ASSERT_EQ(probs.size(), 2u);
  EXPECT_DOUBLE_EQ(probs[0], 0.1);
  EXPECT_DOUBLE_EQ(probs[1], 0.2);
}

TEST(FlowNetwork, TotalCapacity) {
  FlowNetwork net(3);
  net.add_undirected_edge(0, 1, 2, 0.1);
  net.add_undirected_edge(1, 2, 3, 0.1);
  EXPECT_EQ(net.total_capacity({0, 1}), 5);
  EXPECT_EQ(net.total_capacity({}), 0);
  EXPECT_THROW(net.total_capacity({5}), std::invalid_argument);
}

TEST(FlowNetwork, DemandValidation) {
  FlowNetwork net(3);
  net.add_undirected_edge(0, 1, 1, 0.1);
  EXPECT_NO_THROW(net.check_demand({0, 2, 1}));
  EXPECT_THROW(net.check_demand({0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(net.check_demand({0, 5, 1}), std::invalid_argument);
  EXPECT_THROW(net.check_demand({0, 2, 0}), std::invalid_argument);
  EXPECT_THROW(net.check_demand({0, 2, -1}), std::invalid_argument);
}

TEST(FlowNetwork, SummaryMentionsKinds) {
  FlowNetwork net(3);
  net.add_undirected_edge(0, 1, 1, 0.1);
  EXPECT_NE(net.summary().find("undirected"), std::string::npos);
  net.add_directed_edge(1, 2, 1, 0.1);
  EXPECT_NE(net.summary().find("1 directed"), std::string::npos);
}

}  // namespace
}  // namespace streamrel
