// Telemetry JSON edge cases (empty tree, key escaping, non-finite
// timers), LatencyHistogram percentiles and merge algebra, and the
// merge vs merge_parallel timer semantics that keep shard wall-clock
// honest (OpenMP shards overlap in time, so parallel merges take the
// max while sequential merges sum).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "streamrel/util/json.hpp"
#include "streamrel/util/telemetry.hpp"

using namespace streamrel;

namespace {

TEST(TelemetryJson, EmptyTreeRendersAsEmptyObject) {
  const Telemetry t;
  EXPECT_TRUE(t.empty());
  const JsonValue doc = parse_json(t.to_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.as_object().empty());
}

TEST(TelemetryJson, KeysWithQuotesBackslashesAndControlCharsRoundTrip) {
  Telemetry t;
  t.counter("quo\"te") = 1;
  t.counter("back\\slash") = 2;
  t.counter("new\nline\ttab") = 3;
  t.child("odd\"child").counter("x") = 4;

  const JsonValue doc = parse_json(t.to_json());
  ASSERT_NE(doc.find("quo\"te"), nullptr);
  EXPECT_EQ(doc.find("quo\"te")->as_number(), 1.0);
  ASSERT_NE(doc.find("back\\slash"), nullptr);
  EXPECT_EQ(doc.find("back\\slash")->as_number(), 2.0);
  ASSERT_NE(doc.find("new\nline\ttab"), nullptr);
  EXPECT_EQ(doc.find("new\nline\ttab")->as_number(), 3.0);
  const JsonValue* child = doc.find("odd\"child");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->find("x")->as_number(), 4.0);
}

TEST(TelemetryJson, NonFiniteTimersRenderAsNull) {
  Telemetry t;
  t.timer_ms("fine") = 1.5;
  t.timer_ms("nan") = std::numeric_limits<double>::quiet_NaN();
  t.timer_ms("inf") = std::numeric_limits<double>::infinity();
  t.timer_ms("ninf") = -std::numeric_limits<double>::infinity();

  const JsonValue doc = parse_json(t.to_json());
  EXPECT_EQ(doc.find("fine_ms")->as_number(), 1.5);
  ASSERT_NE(doc.find("nan_ms"), nullptr);
  EXPECT_TRUE(doc.find("nan_ms")->is_null());
  EXPECT_TRUE(doc.find("inf_ms")->is_null());
  EXPECT_TRUE(doc.find("ninf_ms")->is_null());
}

TEST(TelemetryJson, HistogramRendersSummaryObject) {
  Telemetry t;
  LatencyHistogram& h = t.histogram("query_latency");
  h.record_ms(1.0);
  h.record_ms(4.0);
  h.record_ms(16.0);

  const JsonValue doc = parse_json(t.to_json());
  const JsonValue* hist = doc.find("query_latency_hist");
  ASSERT_NE(hist, nullptr);
  ASSERT_TRUE(hist->is_object());
  EXPECT_EQ(hist->find("count")->as_number(), 3.0);
  EXPECT_EQ(hist->find("min_ms")->as_number(), 1.0);
  EXPECT_EQ(hist->find("max_ms")->as_number(), 16.0);
  // Percentile fields must be present, ordered, and within range.
  const double p50 = hist->find("p50_ms")->as_number();
  const double p95 = hist->find("p95_ms")->as_number();
  const double p99 = hist->find("p99_ms")->as_number();
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p99, 16.0);
}

TEST(LatencyHistogram, EmptyHistogramReportsZeros) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile_ms(50.0), 0.0);
  EXPECT_EQ(h.percentile_ms(99.0), 0.0);
  EXPECT_EQ(h.min_ms(), 0.0);
  EXPECT_EQ(h.max_ms(), 0.0);
}

TEST(LatencyHistogram, PercentilesPickTheNearestRankBucket) {
  // 50 samples at ~1 ms, 50 at ~100 ms. Nearest-rank: p50 is the 50th
  // smallest (the 1 ms group), p95/p99 fall in the 100 ms group. The
  // histogram quantises to quarter-power-of-two buckets and reports the
  // bucket LOWER bound, so compare against the bucket value, not the raw
  // sample.
  LatencyHistogram h;
  for (int i = 0; i < 50; ++i) h.record_ms(1.0);
  for (int i = 0; i < 50; ++i) h.record_ms(100.0);

  const double low = LatencyHistogram::bucket_value_ms(
      LatencyHistogram::bucket_index(1.0));
  const double high = LatencyHistogram::bucket_value_ms(
      LatencyHistogram::bucket_index(100.0));
  EXPECT_EQ(h.percentile_ms(50.0), low);
  EXPECT_EQ(h.percentile_ms(95.0), high);
  EXPECT_EQ(h.percentile_ms(99.0), high);
  EXPECT_EQ(h.percentile_ms(100.0), high);
  // Bucket lower bound never exceeds the sample, and the bucket is at
  // most a quarter power of two wide.
  EXPECT_LE(low, 1.0);
  EXPECT_GT(low, 1.0 / std::exp2(0.25));
  // Exact aggregates are tracked outside the buckets.
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min_ms(), 1.0);
  EXPECT_EQ(h.max_ms(), 100.0);
  EXPECT_DOUBLE_EQ(h.sum_ms(), 50.0 * 1.0 + 50.0 * 100.0);
}

TEST(LatencyHistogram, NonPositiveAndNonFiniteSamplesLandInBucketZero) {
  LatencyHistogram h;
  h.record_ms(0.0);
  h.record_ms(-5.0);
  h.record_ms(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.percentile_ms(50.0), 0.0);
  EXPECT_EQ(h.percentile_ms(100.0), 0.0);
}

TEST(LatencyHistogram, MergeIsAssociative) {
  LatencyHistogram a;
  a.record_ms(0.5);
  a.record_ms(3.0);
  LatencyHistogram b;
  b.record_ms(10.0);
  b.record_ms(0.02);
  LatencyHistogram c;
  c.record_ms(7.0);
  c.record_ms(1000.0);
  c.record_ms(0.001);

  LatencyHistogram left = a;   // (a ⊕ b) ⊕ c
  left.merge(b);
  left.merge(c);
  LatencyHistogram bc = b;     // a ⊕ (b ⊕ c)
  bc.merge(c);
  LatencyHistogram right = a;
  right.merge(bc);

  EXPECT_EQ(left, right);
  EXPECT_EQ(left.count(), 7u);
  EXPECT_EQ(left.percentile_ms(50.0), right.percentile_ms(50.0));
  EXPECT_EQ(left.min_ms(), 0.001);
  EXPECT_EQ(left.max_ms(), 1000.0);
}

TEST(LatencyHistogram, MergeIsCommutative) {
  LatencyHistogram a;
  a.record_ms(2.0);
  LatencyHistogram b;
  b.record_ms(64.0);
  LatencyHistogram ab = a;
  ab.merge(b);
  LatencyHistogram ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);
}

TEST(TelemetryMerge, SequentialMergeSumsTimersParallelTakesMax) {
  Telemetry shard_a;
  shard_a.timer_ms("sweep") = 5.0;
  shard_a.counter("configs") = 100;
  Telemetry shard_b;
  shard_b.timer_ms("sweep") = 3.0;
  shard_b.counter("configs") = 40;

  // Sequential phases: wall-clock adds up.
  Telemetry seq = shard_a;
  seq.merge(shard_b);
  EXPECT_DOUBLE_EQ(seq.timer_ms_or("sweep"), 8.0);
  EXPECT_EQ(seq.counter_or("configs"), 140u);

  // Concurrent shards: the intervals overlap, wall-clock is the longest
  // shard; counters still add.
  Telemetry par = shard_a;
  par.merge_parallel(shard_b);
  EXPECT_DOUBLE_EQ(par.timer_ms_or("sweep"), 5.0);
  EXPECT_EQ(par.counter_or("configs"), 140u);
}

TEST(TelemetryMerge, ParallelMergeRecursesIntoChildrenAndHistograms) {
  Telemetry shard_a;
  shard_a.child("side").timer_ms("build") = 9.0;
  shard_a.histogram("lat").record_ms(1.0);
  Telemetry shard_b;
  shard_b.child("side").timer_ms("build") = 11.0;
  shard_b.histogram("lat").record_ms(100.0);

  Telemetry par = shard_a;
  par.merge_parallel(shard_b);
  EXPECT_DOUBLE_EQ(par.child("side").timer_ms_or("build"), 11.0);
  ASSERT_NE(par.find_histogram("lat"), nullptr);
  EXPECT_EQ(par.find_histogram("lat")->count(), 2u);
  EXPECT_EQ(par.find_histogram("lat")->max_ms(), 100.0);
}

TEST(TelemetryMerge, CountersEqualIsTheDeterminismPredicate) {
  Telemetry a;
  a.counter("visited") = 7;
  a.timer_ms("sweep") = 1.0;
  Telemetry b;
  b.counter("visited") = 7;
  b.timer_ms("sweep") = 99.0;  // timing noise must not break determinism
  EXPECT_TRUE(a.counters_equal(b));
  b.counter("visited") = 8;
  EXPECT_FALSE(a.counters_equal(b));
}

}  // namespace
