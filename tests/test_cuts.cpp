#include <gtest/gtest.h>

#include <algorithm>

#include "streamrel/cuts/bottleneck.hpp"
#include "streamrel/cuts/cut_enumeration.hpp"
#include "streamrel/cuts/partition_search.hpp"
#include "streamrel/graph/generators.hpp"
#include "streamrel/graph/graph_algos.hpp"
#include "streamrel/p2p/scenario.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

TEST(PartitionFromSides, ComputesCrossingEdges) {
  const GeneratedNetwork g = make_fig4_graph();
  const BottleneckPartition p =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  EXPECT_EQ(p.crossing_edges, (std::vector<EdgeId>{7, 8}));
  EXPECT_EQ(p.k(), 2);
}

TEST(PartitionFromSides, ValidatesEndpoints) {
  const GeneratedNetwork g = make_fig4_graph();
  std::vector<bool> wrong(g.side_s);
  wrong[static_cast<std::size_t>(g.source)] = false;
  EXPECT_THROW(partition_from_sides(g.net, g.source, g.sink, wrong),
               std::invalid_argument);
  EXPECT_THROW(partition_from_sides(g.net, g.source, g.sink, {true, false}),
               std::invalid_argument);
}

TEST(PartitionFromCutEdges, RecoversPlantedBridge) {
  const GeneratedNetwork g = make_fig2_bridge_graph();
  const auto part = partition_from_cut_edges(g.net, g.source, g.sink, {8});
  ASSERT_TRUE(part.has_value());
  EXPECT_EQ(part->crossing_edges, std::vector<EdgeId>{8});
  EXPECT_EQ(part->side_s, g.side_s);
}

TEST(PartitionFromCutEdges, NonSeparatingSetReturnsNullopt) {
  const GeneratedNetwork g = make_fig2_bridge_graph();
  EXPECT_FALSE(partition_from_cut_edges(g.net, g.source, g.sink, {0}));
  EXPECT_FALSE(partition_from_cut_edges(g.net, g.source, g.sink, {}));
}

TEST(PartitionFromCutEdges, DropsRedundantEdgesFromCrossing) {
  // Giving the bridge plus an S-internal edge: the partition keeps only
  // the true crossing edge.
  const GeneratedNetwork g = make_fig2_bridge_graph();
  const auto part = partition_from_cut_edges(g.net, g.source, g.sink, {8, 0});
  ASSERT_TRUE(part.has_value());
  EXPECT_EQ(part->crossing_edges, std::vector<EdgeId>{8});
}

TEST(PartitionFromCutEdges, BalancesFloatingComponents) {
  // Path s - a - t plus an isolated pair {b, c}: removing the two path
  // edges leaves 4 components. The middle node and the floating pair get
  // assigned to the source side by the balance heuristic, so edge 0
  // becomes side-internal and the crossing set SHRINKS to the single
  // genuinely separating edge.
  FlowNetwork net(5);
  net.add_undirected_edge(0, 1, 1, 0.1);
  net.add_undirected_edge(1, 2, 1, 0.1);
  net.add_undirected_edge(3, 4, 1, 0.1);
  const auto part = partition_from_cut_edges(net, 0, 2, {0, 1});
  ASSERT_TRUE(part.has_value());
  EXPECT_EQ(part->crossing_edges, (std::vector<EdgeId>{1}));
  EXPECT_TRUE(removal_disconnects(net, 0, 2, part->crossing_edges));
}

TEST(AnalyzePartition, Fig4Stats) {
  const GeneratedNetwork g = make_fig4_graph();
  const BottleneckPartition p =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const PartitionStats stats = analyze_partition(g.net, g.source, g.sink, p);
  EXPECT_EQ(stats.k, 2);
  EXPECT_EQ(stats.edges_s, 5);
  EXPECT_EQ(stats.edges_t, 2);
  EXPECT_DOUBLE_EQ(stats.alpha, 5.0 / 9.0);
  EXPECT_TRUE(stats.minimal);
  EXPECT_TRUE(stats.two_components);
  EXPECT_EQ(stats.crossing_capacity, 4);
}

TEST(IsMinimalCutset, DetectsNonMinimal) {
  const GeneratedNetwork g = make_fig4_graph();
  EXPECT_TRUE(is_minimal_cutset(g.net, g.source, g.sink, {7, 8}));
  // Adding an extra edge breaks minimality.
  EXPECT_FALSE(is_minimal_cutset(g.net, g.source, g.sink, {7, 8, 4}));
  // A non-separating set is not a cut at all.
  EXPECT_FALSE(is_minimal_cutset(g.net, g.source, g.sink, {7}));
}

TEST(CutEnumeration, FindsAllMinimalCutsOnPath) {
  const GeneratedNetwork g = path_network(3, 1, 0.1);
  const auto cuts = enumerate_minimal_cutsets(g.net, g.source, g.sink);
  // Each single path edge is a minimal cut; no larger set is minimal.
  ASSERT_EQ(cuts.size(), 3u);
  for (const auto& cut : cuts) EXPECT_EQ(cut.size(), 1u);
}

TEST(CutEnumeration, DiamondHasSizeTwoCuts) {
  // s-a, s-b, a-t, b-t: minimal cuts are the 4 "one edge per path" pairs.
  FlowNetwork net(4);
  net.add_undirected_edge(0, 1, 1, 0.1);
  net.add_undirected_edge(0, 2, 1, 0.1);
  net.add_undirected_edge(1, 3, 1, 0.1);
  net.add_undirected_edge(2, 3, 1, 0.1);
  const auto cuts = enumerate_minimal_cutsets(net, 0, 3);
  EXPECT_EQ(cuts.size(), 4u);
  for (const auto& cut : cuts) {
    EXPECT_EQ(cut.size(), 2u);
    EXPECT_TRUE(is_minimal_cutset(net, 0, 3, cut));
  }
}

TEST(CutEnumeration, RespectsMaxSize) {
  const GeneratedNetwork g = parallel_links(4, 1, 0.1);
  CutEnumerationOptions opts;
  opts.max_size = 3;
  EXPECT_TRUE(enumerate_minimal_cutsets(g.net, g.source, g.sink, opts).empty());
  opts.max_size = 4;
  const auto cuts = enumerate_minimal_cutsets(g.net, g.source, g.sink, opts);
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0].size(), 4u);
}

TEST(CutEnumeration, DisconnectedInputYieldsNothing) {
  FlowNetwork net(3);
  net.add_undirected_edge(0, 1, 1, 0.1);
  EXPECT_TRUE(enumerate_minimal_cutsets(net, 0, 2).empty());
}

TEST(PartitionSearch, PicksThePlantedBridge) {
  const GeneratedNetwork g = make_fig2_bridge_graph();
  const auto choice = find_best_partition(g.net, g.source, g.sink);
  ASSERT_TRUE(choice.has_value());
  EXPECT_EQ(choice->partition.crossing_edges, std::vector<EdgeId>{8});
  EXPECT_EQ(choice->stats.k, 1);
  EXPECT_EQ(choice->stats.edges_s, 4);
  EXPECT_EQ(choice->stats.edges_t, 4);
}

TEST(PartitionSearch, PrefersBalanceOverCardinality) {
  const GeneratedNetwork g = make_fig4_graph();
  const auto choice = find_best_partition(g.net, g.source, g.sink);
  ASSERT_TRUE(choice.has_value());
  // The planted (5|2)-split with k=2 beats anything skinnier.
  EXPECT_LE(std::max(choice->stats.edges_s, choice->stats.edges_t), 5);
}

TEST(PartitionSearch, HonoursSideLimit) {
  const GeneratedNetwork g = make_fig2_bridge_graph();
  PartitionSearchOptions opts;
  opts.max_side_edges = 3;  // both diamond sides have 4 links
  EXPECT_FALSE(find_best_partition(g.net, g.source, g.sink, opts));
}

TEST(PartitionSearch, FindsCutsOnRandomClusteredGraphs) {
  Xoshiro256 rng(31337);
  for (int trial = 0; trial < 15; ++trial) {
    ClusteredParams params;
    params.bottleneck_links = 1 + static_cast<int>(rng.uniform_below(3));
    const GeneratedNetwork g = clustered_bottleneck(rng, params);
    const auto choice = find_best_partition(g.net, g.source, g.sink);
    ASSERT_TRUE(choice.has_value()) << "trial " << trial;
    // The search may prefer a wider cut with better balance than the
    // planted one, but it must stay within its own limits.
    EXPECT_LE(choice->stats.k, PartitionSearchOptions{}.max_k);
    // The found partition genuinely separates the demand endpoints.
    EXPECT_TRUE(removal_disconnects(g.net, g.source, g.sink,
                                    choice->partition.crossing_edges));
  }
}

}  // namespace
}  // namespace streamrel
