#pragma once
// Shared helpers for the test suite: tiny canonical networks, an
// INDEPENDENT brute-force reliability oracle (coded differently from
// src/reliability/naive.cpp on purpose), and float comparison tolerances.

#include <cmath>
#include <vector>

#include "streamrel/graph/flow_network.hpp"
#include "streamrel/maxflow/maxflow.hpp"
#include "streamrel/util/config_prob.hpp"

namespace streamrel::testing {

inline constexpr double kTol = 1e-9;

/// Brute-force reliability: direct sum over all alive masks using the
/// facade max_flow_masked with Edmonds-Karp (different code path from the
/// ConfigResidual-based algorithms under test).
inline double brute_force_reliability(const FlowNetwork& net,
                                      const FlowDemand& demand) {
  const Mask total = Mask{1} << net.num_edges();
  const std::vector<double> probs = net.failure_probs();
  double sum = 0.0;
  for (Mask alive = 0; alive < total; ++alive) {
    if (max_flow_masked(net, alive, demand.source, demand.sink,
                        MaxFlowAlgorithm::kEdmondsKarp) >= demand.rate) {
      sum += config_probability(probs, alive);
    }
  }
  return sum;
}

/// s - m - t two-hop path with distinct probabilities.
inline FlowNetwork series_pair(double p1, double p2, Capacity cap = 1) {
  FlowNetwork net(3);
  net.add_undirected_edge(0, 1, cap, p1);
  net.add_undirected_edge(1, 2, cap, p2);
  return net;
}

/// Two parallel s - t links.
inline FlowNetwork parallel_pair(double p1, double p2, Capacity cap = 1) {
  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, cap, p1);
  net.add_undirected_edge(0, 1, cap, p2);
  return net;
}

/// The classic 4-node diamond with a crossbar: s={0}, t={3}.
inline FlowNetwork diamond(double p, Capacity cap = 1) {
  FlowNetwork net(4);
  net.add_undirected_edge(0, 1, cap, p);
  net.add_undirected_edge(0, 2, cap, p);
  net.add_undirected_edge(1, 2, cap, p);
  net.add_undirected_edge(1, 3, cap, p);
  net.add_undirected_edge(2, 3, cap, p);
  return net;
}

}  // namespace streamrel::testing
