#include "streamrel/graph/graph_algos.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace streamrel {
namespace {

TEST(Reachability, RespectsDirection) {
  FlowNetwork net(3);
  net.add_directed_edge(0, 1, 1, 0.1);
  net.add_directed_edge(1, 2, 1, 0.1);
  const auto fwd = reachable_nodes(net, 0, /*respect_direction=*/true);
  EXPECT_TRUE(fwd[2]);
  const auto back = reachable_nodes(net, 2, /*respect_direction=*/true);
  EXPECT_FALSE(back[0]);
  const auto undirected = reachable_nodes(net, 2, /*respect_direction=*/false);
  EXPECT_TRUE(undirected[0]);
}

TEST(Reachability, MaskedEdgesBlockPaths) {
  FlowNetwork net(3);
  net.add_undirected_edge(0, 1, 1, 0.1);
  net.add_undirected_edge(1, 2, 1, 0.1);
  EXPECT_TRUE(reachable_nodes_masked(net, 0, 0b11)[2]);
  EXPECT_FALSE(reachable_nodes_masked(net, 0, 0b01)[2]);
  EXPECT_TRUE(reachable_nodes_masked(net, 0, 0b01)[1]);
  EXPECT_FALSE(reachable_nodes_masked(net, 0, 0b00)[1]);
}

TEST(Components, CountsAndLabels) {
  FlowNetwork net(5);
  net.add_undirected_edge(0, 1, 1, 0.1);
  net.add_directed_edge(2, 3, 1, 0.1);  // direction ignored for components
  const Components comps = connected_components(net);
  EXPECT_EQ(comps.count, 3);
  EXPECT_EQ(comps.id[0], comps.id[1]);
  EXPECT_EQ(comps.id[2], comps.id[3]);
  EXPECT_NE(comps.id[0], comps.id[2]);
  EXPECT_NE(comps.id[4], comps.id[0]);
}

TEST(Components, MaskedVariant) {
  FlowNetwork net(3);
  net.add_undirected_edge(0, 1, 1, 0.1);
  net.add_undirected_edge(1, 2, 1, 0.1);
  EXPECT_EQ(connected_components_masked(net, 0b11).count, 1);
  EXPECT_EQ(connected_components_masked(net, 0b01).count, 2);
  EXPECT_EQ(connected_components_masked(net, 0b00).count, 3);
}

TEST(RemovalDisconnects, DetectsSeparation) {
  FlowNetwork net(4);
  net.add_undirected_edge(0, 1, 1, 0.1);
  net.add_undirected_edge(1, 2, 1, 0.1);  // the pinch
  net.add_undirected_edge(2, 3, 1, 0.1);
  EXPECT_TRUE(removal_disconnects(net, 0, 3, {1}));
  EXPECT_FALSE(removal_disconnects(net, 0, 3, {}));
  EXPECT_FALSE(removal_disconnects(net, 0, 1, {1}));
}

TEST(RemovalDisconnects, DirectionalSeparation) {
  FlowNetwork net(2);
  net.add_directed_edge(0, 1, 1, 0.1);
  net.add_directed_edge(1, 0, 1, 0.1);
  EXPECT_TRUE(removal_disconnects(net, 0, 1, {0}));
  EXPECT_FALSE(removal_disconnects(net, 0, 1, {0}, /*respect_direction=*/false));
}

TEST(Bridges, PathIsAllBridges) {
  FlowNetwork net(4);
  net.add_undirected_edge(0, 1, 1, 0.1);
  net.add_undirected_edge(1, 2, 1, 0.1);
  net.add_undirected_edge(2, 3, 1, 0.1);
  EXPECT_EQ(find_bridges(net), (std::vector<EdgeId>{0, 1, 2}));
}

TEST(Bridges, CycleHasNone) {
  FlowNetwork net(3);
  net.add_undirected_edge(0, 1, 1, 0.1);
  net.add_undirected_edge(1, 2, 1, 0.1);
  net.add_undirected_edge(2, 0, 1, 0.1);
  EXPECT_TRUE(find_bridges(net).empty());
}

TEST(Bridges, ParallelEdgesAreNeverBridges) {
  FlowNetwork net(3);
  net.add_undirected_edge(0, 1, 1, 0.1);
  net.add_undirected_edge(0, 1, 1, 0.1);  // parallel pair
  net.add_undirected_edge(1, 2, 1, 0.1);  // genuine bridge
  EXPECT_EQ(find_bridges(net), (std::vector<EdgeId>{2}));
}

TEST(Bridges, BridgeBetweenTwoCycles) {
  FlowNetwork net(6);
  net.add_undirected_edge(0, 1, 1, 0.1);
  net.add_undirected_edge(1, 2, 1, 0.1);
  net.add_undirected_edge(2, 0, 1, 0.1);
  const EdgeId bridge = net.add_undirected_edge(2, 3, 1, 0.1);
  net.add_undirected_edge(3, 4, 1, 0.1);
  net.add_undirected_edge(4, 5, 1, 0.1);
  net.add_undirected_edge(5, 3, 1, 0.1);
  EXPECT_EQ(find_bridges(net), std::vector<EdgeId>{bridge});
}

TEST(Bridges, DisconnectedGraphHandled) {
  FlowNetwork net(4);
  net.add_undirected_edge(0, 1, 1, 0.1);
  net.add_undirected_edge(2, 3, 1, 0.1);
  const auto bridges = find_bridges(net);
  EXPECT_EQ(bridges.size(), 2u);
}

}  // namespace
}  // namespace streamrel
