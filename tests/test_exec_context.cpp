#include "streamrel/util/exec_context.hpp"

#include <gtest/gtest.h>

#include <string>

#include "streamrel/core/reliability_facade.hpp"
#include "streamrel/graph/generators.hpp"
#include "streamrel/reliability/factoring.hpp"
#include "streamrel/util/prng.hpp"
#include "streamrel/util/telemetry.hpp"

namespace streamrel {
namespace {

TEST(Telemetry, CountersStartAtZeroAndAccumulate) {
  Telemetry t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.counter_or("never"), 0u);
  EXPECT_EQ(t.counter_or("never", 7u), 7u);
  t.counter(telemetry_keys::kMaxflowCalls) += 3;
  t.add(telemetry_keys::kMaxflowCalls, 2);
  EXPECT_EQ(t.counter_or(telemetry_keys::kMaxflowCalls), 5u);
  EXPECT_FALSE(t.empty());
}

TEST(Telemetry, MergeSumsCountersTimersAndChildren) {
  Telemetry a;
  a.counter("calls") = 10;
  a.timer_ms("total") = 1.0;
  a.child("side_s").counter("calls") = 4;

  Telemetry b;
  b.counter("calls") = 5;
  b.counter("other") = 1;
  b.timer_ms("total") = 2.0;
  b.child("side_s").counter("calls") = 6;
  b.child("side_t").counter("calls") = 2;

  a.merge(b);
  EXPECT_EQ(a.counter_or("calls"), 15u);
  EXPECT_EQ(a.counter_or("other"), 1u);
  EXPECT_DOUBLE_EQ(a.timer_ms_or("total"), 3.0);
  ASSERT_NE(a.find_child("side_s"), nullptr);
  EXPECT_EQ(a.find_child("side_s")->counter_or("calls"), 10u);
  ASSERT_NE(a.find_child("side_t"), nullptr);
  EXPECT_EQ(a.find_child("side_t")->counter_or("calls"), 2u);
  EXPECT_EQ(a.find_child("absent"), nullptr);
}

TEST(Telemetry, CountersEqualIgnoresTimers) {
  Telemetry a;
  a.counter("calls") = 3;
  a.child("sub").counter("steps") = 9;
  a.timer_ms("total") = 1.0;

  Telemetry b;
  b.counter("calls") = 3;
  b.child("sub").counter("steps") = 9;
  b.timer_ms("total") = 250.0;  // wall clock differs; counters agree
  EXPECT_TRUE(a.counters_equal(b));

  b.child("sub").counter("steps") = 8;
  EXPECT_FALSE(a.counters_equal(b));

  Telemetry c;
  c.counter("calls") = 3;
  EXPECT_FALSE(a.counters_equal(c));  // child structure differs
}

TEST(Telemetry, ToJsonRendersCountersTimersAndNestedChildren) {
  Telemetry t;
  t.counter("configurations") = 3;
  t.timer_ms("total") = 1.5;
  t.child("side_s").counter("maxflow_calls") = 2;
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"configurations\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"total_ms\": 1.500"), std::string::npos);
  EXPECT_NE(json.find("\"side_s\": {\"maxflow_calls\": 2}"),
            std::string::npos);
}

TEST(ExecContext, DefaultHasNoDeadlineAndNeverStops) {
  ExecContext ctx;
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_FALSE(ctx.should_stop());
  EXPECT_EQ(ctx.stop_status(), SolveStatus::kExact);
  EXPECT_GT(ctx.remaining_ms(), 1e12);  // +inf
  EXPECT_NO_THROW(ctx.check());
  EXPECT_GE(ctx.resolved_threads(), 1);
}

TEST(ExecContext, ZeroDeadlineStopsImmediately) {
  const ExecContext ctx = ExecContext::with_deadline_ms(0.0);
  EXPECT_TRUE(ctx.has_deadline());
  EXPECT_TRUE(ctx.should_stop());
  EXPECT_EQ(ctx.stop_status(), SolveStatus::kDeadlineExpired);
  try {
    ctx.check();
    FAIL() << "check() must throw on an expired deadline";
  } catch (const ExecInterrupted& stop) {
    EXPECT_EQ(stop.status, SolveStatus::kDeadlineExpired);
  }
}

TEST(ExecContext, CancellationIsSharedAcrossCopiesAndBeatsTheDeadline) {
  ExecContext ctx = ExecContext::with_deadline_ms(0.0);
  ExecContext copy = ctx;
  EXPECT_FALSE(copy.cancel_requested());
  ctx.request_cancel();
  EXPECT_TRUE(copy.cancel_requested());
  // Both the deadline and the cancellation hold; cancellation wins.
  EXPECT_EQ(copy.stop_status(), SolveStatus::kCancelled);
}

TEST(ExecContext, SolveStatusNames) {
  EXPECT_EQ(to_string(SolveStatus::kExact), "exact");
  EXPECT_EQ(to_string(SolveStatus::kDeadlineExpired), "deadline_expired");
  EXPECT_EQ(to_string(SolveStatus::kBudgetExhausted), "budget_exhausted");
  EXPECT_EQ(to_string(SolveStatus::kCancelled), "cancelled");
}

TEST(ExecContext, ResultCountersAreViewsOverTelemetry) {
  Xoshiro256 rng(42);
  const GeneratedNetwork g = random_connected(rng, 6, 5, {1, 2}, {0.1, 0.4});
  const ReliabilityResult result =
      reliability_factoring(g.net, {g.source, g.sink, 1});
  EXPECT_GT(result.configurations(), 0u);
  EXPECT_EQ(result.configurations(),
            result.telemetry.counter_or(telemetry_keys::kConfigurations));
  EXPECT_EQ(result.maxflow_calls(),
            result.telemetry.counter_or(telemetry_keys::kMaxflowCalls));
}

TEST(ExecContext, PreCancelledContextStopsASolveBeforeItStarts) {
  // 25 links: the naive sweep would need 2^25 max-flow calls, so only the
  // cooperative stop makes this return promptly.
  const GeneratedNetwork g = ladder_network(9, 1, 0.05);
  SolveOptions options;
  options.method = Method::kNaive;
  ExecContext ctx;
  ctx.request_cancel();
  options.context = &ctx;
  const SolveReport report =
      compute_reliability(g.net, {g.source, g.sink, 1}, options);
  EXPECT_EQ(report.result.status, SolveStatus::kCancelled);
  EXPECT_FALSE(report.exact());
  ASSERT_TRUE(report.bounds.has_value());
  EXPECT_LE(report.bounds->lower, report.bounds->upper);
}

TEST(ExecContext, CallerContextCollectsTelemetryAcrossSolves) {
  Xoshiro256 rng(7);
  const GeneratedNetwork g = random_connected(rng, 6, 6, {1, 2}, {0.1, 0.4});
  SolveOptions options;
  options.method = Method::kFactoring;
  ExecContext ctx;
  options.context = &ctx;
  compute_reliability(g.net, {g.source, g.sink, 1}, options);
  const std::uint64_t after_one =
      ctx.telemetry.counter_or(telemetry_keys::kConfigurations);
  EXPECT_GT(after_one, 0u);
  compute_reliability(g.net, {g.source, g.sink, 1}, options);
  EXPECT_EQ(ctx.telemetry.counter_or(telemetry_keys::kConfigurations),
            2 * after_one);
}

TEST(ExecContext, TelemetryCountersIndependentOfThreadCount) {
  // Sides with 14 internal links each: big enough (2^14 configurations)
  // to engage the sharded parallel sweep. The determinism contract says
  // the counters depend on the instance, not on max_threads.
  Xoshiro256 rng(321);
  ClusteredParams params;
  params.nodes_s = 8;
  params.extra_edges_s = 7;
  params.nodes_t = 8;
  params.extra_edges_t = 7;
  params.bottleneck_links = 2;
  const GeneratedNetwork g = clustered_bottleneck(rng, params);
  const FlowDemand demand{g.source, g.sink, 1};

  SolveOptions options;
  options.method = Method::kBottleneck;
  SolveReport reference;
  bool first = true;
  for (int threads : {1, 2, 0}) {
    options.max_threads = threads;
    const SolveReport report = compute_reliability(g.net, demand, options);
    EXPECT_EQ(report.result.status, SolveStatus::kExact);
    // The slab sweep serves these sides (2^14 >= 1024 configurations via
    // kAuto), so its lane accounting is part of the determinism contract:
    // both per-side subtrees must report word-wide lanes and the scalar
    // residue, and every (configuration, assignment) decision is counted
    // exactly once between them.
    const std::uint64_t num_assignments =
        report.result.telemetry.counter_or(telemetry_keys::kAssignments);
    ASSERT_GT(num_assignments, 0u);
    for (const char* side : {"side_s", "side_t"}) {
      const Telemetry* sub = report.result.telemetry.find_child(side);
      ASSERT_NE(sub, nullptr) << side;
      const std::uint64_t wordwise =
          sub->counter_or(telemetry_keys::kLanesWordwise);
      const std::uint64_t residue =
          sub->counter_or(telemetry_keys::kScalarResidue);
      EXPECT_GT(wordwise, 0u) << side << " threads=" << threads;
      EXPECT_EQ(wordwise + residue,
                (std::uint64_t{1} << 14) * num_assignments)
          << side << " threads=" << threads;
    }
    if (first) {
      reference = report;
      first = false;
      continue;
    }
    EXPECT_EQ(report.result.reliability, reference.result.reliability)
        << "threads=" << threads;  // bitwise identical
    EXPECT_TRUE(
        report.result.telemetry.counters_equal(reference.result.telemetry))
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace streamrel
