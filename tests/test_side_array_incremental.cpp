// The Gray-code incremental side-array sweep must be an exact drop-in for
// the paper's from-scratch procedure: bitwise-identical arrays for both
// feasibility engines, both sides, signed (backflow) assignments, with
// and without monotone pruning — while issuing strictly fewer solver
// calls on non-trivial arrays.

#include "streamrel/core/side_array.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "streamrel/graph/generators.hpp"
#include "streamrel/maxflow/incremental_dinic.hpp"
#include "streamrel/maxflow/maxflow.hpp"
#include "streamrel/util/config_prob.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

SideArrayOptions sweep_options(SideSweepStrategy sweep, FeasibilityMethod f,
                               bool pruning) {
  SideArrayOptions o;
  o.feasibility = f;
  o.parallel = false;
  o.sweep = sweep;
  o.monotone_pruning = pruning;
  return o;
}

TEST(SideArrayIncremental, MatchesScratchOnRandomNetworks) {
  Xoshiro256 rng(20260806);
  bool saw_negative_usage = false;
  for (int trial = 0; trial < 20; ++trial) {
    ClusteredParams params;
    params.nodes_s = 4 + static_cast<int>(rng.uniform_below(3));
    params.nodes_t = 4 + static_cast<int>(rng.uniform_below(3));
    params.extra_edges_s = 1 + static_cast<int>(rng.uniform_below(3));
    params.extra_edges_t = 1 + static_cast<int>(rng.uniform_below(3));
    params.bottleneck_links = 1 + static_cast<int>(rng.uniform_below(3));
    params.bottleneck_caps = {1, 3};
    const GeneratedNetwork g = clustered_bottleneck(rng, params);
    const BottleneckPartition partition =
        partition_from_sides(g.net, g.source, g.sink, g.side_s);
    const Capacity d = rng.uniform_int(1, 3);

    for (const AssignmentMode mode :
         {AssignmentMode::kForwardOnly, AssignmentMode::kSigned}) {
      AssignmentSet assignments;
      try {
        assignments = enumerate_assignments(g.net, partition, d, {mode});
      } catch (const std::invalid_argument&) {
        continue;  // |D| guard tripped; irrelevant here
      }
      if (assignments.size() == 0) continue;
      for (const Assignment& a : assignments.assignments) {
        saw_negative_usage |=
            std::any_of(a.usage.begin(), a.usage.end(),
                        [](Capacity u) { return u < 0; });
      }

      for (const bool source_side : {true, false}) {
        const SideProblem side = make_side_problem(
            g.net, {g.source, g.sink, d}, partition, source_side);
        const std::vector<Mask> scratch = build_side_array(
            side, assignments, d,
            sweep_options(SideSweepStrategy::kScratch,
                          FeasibilityMethod::kPerAssignment, true));
        for (const bool pruning : {false, true}) {
          EXPECT_EQ(scratch,
                    build_side_array(
                        side, assignments, d,
                        sweep_options(SideSweepStrategy::kGrayIncremental,
                                      FeasibilityMethod::kPerAssignment,
                                      pruning)))
              << "trial " << trial << " mode " << static_cast<int>(mode)
              << " source_side " << source_side << " pruning " << pruning;
          if (mode == AssignmentMode::kForwardOnly) {
            EXPECT_EQ(scratch,
                      build_side_array(
                          side, assignments, d,
                          sweep_options(SideSweepStrategy::kGrayIncremental,
                                        FeasibilityMethod::kPolymatroid,
                                        pruning)))
                << "polymatroid trial " << trial << " source_side "
                << source_side << " pruning " << pruning;
          }
        }
      }
    }
  }
  // The signed trials must actually exercise backflow assignments.
  EXPECT_TRUE(saw_negative_usage);
}

TEST(SideArrayIncremental, ParallelShardsMatchSerial) {
  // A source side with >= 10 internal links crosses the parallel
  // threshold; Gray-aligned shards must reproduce the serial array.
  Xoshiro256 rng(7);
  ClusteredParams params;
  params.nodes_s = 8;
  params.extra_edges_s = 4;  // 11 source-side links
  params.nodes_t = 3;
  params.extra_edges_t = 1;
  params.bottleneck_links = 2;
  const GeneratedNetwork g = clustered_bottleneck(rng, params);
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const AssignmentSet assignments =
      enumerate_assignments(g.net, partition, 2, {AssignmentMode::kAuto});
  ASSERT_GT(assignments.size(), 0);
  const SideProblem side =
      make_side_problem(g.net, {g.source, g.sink, 2}, partition, true);
  ASSERT_GE(side.view.num_edges(), 10);

  SideArrayOptions serial = sweep_options(
      SideSweepStrategy::kGrayIncremental, FeasibilityMethod::kAuto, true);
  SideArrayOptions parallel = serial;
  parallel.parallel = true;
  EXPECT_EQ(build_side_array(side, assignments, 2, serial),
            build_side_array(side, assignments, 2, parallel));
}

TEST(SideArrayIncremental, PruningCutsSolverCallsAndCountsDecisions) {
  Xoshiro256 rng(99);
  ClusteredParams params;
  params.nodes_s = 9;
  params.extra_edges_s = 4;  // 12 source-side links -> 4096 configurations
  params.nodes_t = 3;
  params.extra_edges_t = 1;
  params.bottleneck_links = 2;
  const GeneratedNetwork g = clustered_bottleneck(rng, params);
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const AssignmentSet assignments =
      enumerate_assignments(g.net, partition, 2, {AssignmentMode::kAuto});
  ASSERT_GT(assignments.size(), 0);
  const SideProblem side =
      make_side_problem(g.net, {g.source, g.sink, 2}, partition, true);

  SideArrayStats scratch_stats, gray_stats, pruned_stats;
  const auto scratch = build_side_array(
      side, assignments, 2,
      sweep_options(SideSweepStrategy::kScratch,
                    FeasibilityMethod::kPerAssignment, true),
      &scratch_stats);
  const auto gray = build_side_array(
      side, assignments, 2,
      sweep_options(SideSweepStrategy::kGrayIncremental,
                    FeasibilityMethod::kPerAssignment, false),
      &gray_stats);
  const auto pruned = build_side_array(
      side, assignments, 2,
      sweep_options(SideSweepStrategy::kGrayIncremental,
                    FeasibilityMethod::kPerAssignment, true),
      &pruned_stats);
  EXPECT_EQ(scratch, gray);
  EXPECT_EQ(scratch, pruned);

  // The scratch sweep pays |D| solves per configuration; the Gray walk
  // must beat it, and pruning must beat the plain Gray walk.
  EXPECT_EQ(scratch_stats.maxflow_calls(),
            static_cast<std::uint64_t>(assignments.size()) * scratch.size());
  EXPECT_LT(gray_stats.maxflow_calls(), scratch_stats.maxflow_calls());
  EXPECT_LT(pruned_stats.maxflow_calls(), gray_stats.maxflow_calls());
  EXPECT_GT(pruned_stats.pruned_decisions(), 0u);
  EXPECT_GT(pruned_stats.engine_toggles(), 0u);
  EXPECT_EQ(scratch_stats.pruned_decisions(), 0u);
}

TEST(SideArrayIncremental, AutoStrategyStaysExactAcrossThreshold) {
  // 2^12 configurations: kAuto resolves to the Gray walk; the array must
  // match an explicit scratch run.
  Xoshiro256 rng(1234);
  ClusteredParams params;
  params.nodes_s = 9;
  params.extra_edges_s = 4;
  params.nodes_t = 3;
  params.extra_edges_t = 1;
  params.bottleneck_links = 2;
  const GeneratedNetwork g = clustered_bottleneck(rng, params);
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const AssignmentSet assignments =
      enumerate_assignments(g.net, partition, 2, {AssignmentMode::kAuto});
  ASSERT_GT(assignments.size(), 0);
  const SideProblem side =
      make_side_problem(g.net, {g.source, g.sink, 2}, partition, true);
  EXPECT_EQ(build_side_array(side, assignments, 2,
                             sweep_options(SideSweepStrategy::kScratch,
                                           FeasibilityMethod::kAuto, true)),
            build_side_array(side, assignments, 2));  // default options
}

TEST(BucketDistributionStreamed, MatchesDirectFold) {
  Xoshiro256 rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    ClusteredParams params;
    params.nodes_s = 4 + static_cast<int>(rng.uniform_below(4));
    params.extra_edges_s = 1 + static_cast<int>(rng.uniform_below(3));
    params.bottleneck_links = 2;
    const GeneratedNetwork g = clustered_bottleneck(rng, params);
    const BottleneckPartition partition =
        partition_from_sides(g.net, g.source, g.sink, g.side_s);
    const AssignmentSet assignments =
        enumerate_assignments(g.net, partition, 2, {AssignmentMode::kAuto});
    if (assignments.size() == 0) continue;
    const SideProblem side =
        make_side_problem(g.net, {g.source, g.sink, 2}, partition, true);
    const std::vector<Mask> array = build_side_array(side, assignments, 2);

    const MaskDistribution dist = bucket_side_array(side, array);
    // Reference fold: direct per-configuration products, numeric order.
    const std::vector<double> probs = side.view.failure_probs();
    std::unordered_map<Mask, double> reference;
    for (Mask config = 0; config < static_cast<Mask>(array.size());
         ++config) {
      reference[array[static_cast<std::size_t>(config)]] +=
          config_probability(probs, config);
    }
    ASSERT_EQ(dist.buckets.size(), reference.size()) << "trial " << trial;
    for (const auto& [mask, p] : dist.buckets) {
      ASSERT_TRUE(reference.count(mask));
      EXPECT_NEAR(p, reference[mask], 1e-12) << "trial " << trial;
    }
    EXPECT_NEAR(dist.total, 1.0, 1e-12);
  }
}

TEST(BucketDistributionStreamed, HandlesZeroFailureProbabilities) {
  // Perfect links make dead-configurations probability 0; the streamed
  // ratio update must not divide by zero.
  FlowNetwork net(3);
  net.add_undirected_edge(0, 1, 2, 0.0);  // perfect link
  net.add_undirected_edge(1, 2, 2, 0.25);
  net.add_undirected_edge(0, 1, 1, 0.0);  // second perfect link
  net.add_undirected_edge(1, 2, 1, 0.5);
  const BottleneckPartition partition =
      partition_from_sides(net, 0, 2, {true, true, false});
  const FlowDemand demand{0, 2, 1};
  const AssignmentSet assignments =
      enumerate_assignments(net, partition, 1, {AssignmentMode::kAuto});
  ASSERT_GT(assignments.size(), 0);
  const SideProblem side = make_side_problem(net, demand, partition, true);
  const std::vector<Mask> array = build_side_array(side, assignments, 1);
  const MaskDistribution dist = bucket_side_array(side, array);
  EXPECT_NEAR(dist.total, 1.0, 1e-12);
  for (const auto& [mask, p] : dist.buckets) EXPECT_GE(p, 0.0);
}

// ---------------------------------------------------------------------------
// External-mode IncrementalMaxFlow: the engine that powers the Gray sweep.

Capacity scratch_bounded_flow(const FlowNetwork& net,
                              const std::vector<ConfigResidual::SuperArc>&
                                  super_caps,
                              NodeId extra_u, NodeId extra_v, Mask alive,
                              Capacity limit) {
  // Rebuilds the same residual layout from scratch and solves bounded.
  ConfigResidual fresh(net);
  const NodeId s0 = fresh.add_super_node();
  const NodeId t1 = fresh.add_super_node();
  fresh.add_super_arc(s0, extra_u, 0, 0);
  fresh.add_super_arc(extra_v, t1, 0, 0);
  for (std::size_t i = 0; i < super_caps.size(); ++i) {
    fresh.set_super_arc(i, super_caps[i].cap_uv, super_caps[i].cap_vu);
  }
  fresh.reset(alive);
  DinicSolver dinic;
  return dinic.solve(fresh.graph(), s0, t1, limit);
}

TEST(IncrementalMaxFlowExternal, RandomTogglesAndSuperArcReconfigs) {
  Xoshiro256 rng(31337);
  for (int trial = 0; trial < 15; ++trial) {
    const GeneratedNetwork g = random_multigraph(
        rng, 5, 10, {1, 4}, {0.05, 0.3},
        trial % 2 == 0 ? EdgeKind::kUndirected : EdgeKind::kDirected);
    const int m = g.net.num_edges();
    const Capacity target = rng.uniform_int(1, 6);

    ConfigResidual residual(g.net);
    const NodeId s0 = residual.add_super_node();
    const NodeId t1 = residual.add_super_node();
    residual.add_super_arc(s0, g.source, 0, 0);
    residual.add_super_arc(g.sink, t1, 0, 0);
    residual.set_super_arc(0, target, 0);
    residual.set_super_arc(1, target, 0);

    Mask alive = full_mask(m);
    IncrementalMaxFlow inc(residual, s0, t1, target, alive);
    std::vector<ConfigResidual::SuperArc> caps{{0, target, 0},
                                               {0, target, 0}};
    for (int step = 0; step < 50; ++step) {
      if (rng.uniform_below(3) == 0) {
        // Reconfigure a super arc: grow, shrink, or zero it out.
        const std::size_t idx = rng.uniform_below(2);
        const Capacity cap = rng.uniform_int(0, target + 2);
        caps[idx].cap_uv = cap;
        inc.set_super_arc(idx, cap, 0);
      } else {
        const int e = static_cast<int>(
            rng.uniform_below(static_cast<std::uint64_t>(m)));
        alive ^= bit(e);
        inc.set_edge_alive(e, test_bit(alive, e));
      }
      const Capacity expect = scratch_bounded_flow(g.net, caps, g.source,
                                                   g.sink, alive, target);
      ASSERT_EQ(inc.flow_value(), expect)
          << "trial " << trial << " step " << step;
      ASSERT_EQ(inc.alive_mask(), alive);
    }
  }
}

TEST(IncrementalMaxFlowExternal, SyncToJumpsAcrossManyBits) {
  Xoshiro256 rng(555);
  const GeneratedNetwork g =
      random_multigraph(rng, 6, 12, {1, 3}, {0.05, 0.3});
  const int m = g.net.num_edges();
  const Capacity target = 3;

  ConfigResidual residual(g.net);
  const NodeId s0 = residual.add_super_node();
  const NodeId t1 = residual.add_super_node();
  residual.add_super_arc(s0, g.source, target, 0);
  residual.add_super_arc(g.sink, t1, target, 0);
  IncrementalMaxFlow inc(residual, s0, t1, target, full_mask(m));
  const std::vector<ConfigResidual::SuperArc> caps{{0, target, 0},
                                                   {0, target, 0}};
  for (int step = 0; step < 40; ++step) {
    const Mask config = rng() & full_mask(m);
    inc.sync_to(config);
    const Capacity expect =
        scratch_bounded_flow(g.net, caps, g.source, g.sink, config, target);
    ASSERT_EQ(inc.flow_value(), expect) << "step " << step;
  }
}

TEST(IncrementalMaxFlowExternal, SetTargetRaisesAndAdmitsStaysExact) {
  FlowNetwork net(3);
  net.add_undirected_edge(0, 1, 3, 0.1);
  net.add_undirected_edge(1, 2, 3, 0.1);
  ConfigResidual residual(net);
  const NodeId s0 = residual.add_super_node();
  const NodeId t1 = residual.add_super_node();
  residual.add_super_arc(s0, 0, 1, 0);
  residual.add_super_arc(2, t1, 1, 0);
  IncrementalMaxFlow inc(residual, s0, t1, 1, full_mask(2));
  EXPECT_TRUE(inc.admits());
  EXPECT_EQ(inc.flow_value(), 1);

  // Raising the target re-augments, but the super arcs cap the flow at 1.
  inc.set_target(2);
  EXPECT_FALSE(inc.admits());
  EXPECT_EQ(inc.flow_value(), 1);

  // Widening the super arcs makes the higher target feasible again.
  inc.set_super_arc(0, 3, 0);
  inc.set_super_arc(1, 3, 0);
  EXPECT_TRUE(inc.admits());
  EXPECT_EQ(inc.flow_value(), 2);

  // Lowering the target keeps admits() exact.
  inc.set_target(1);
  EXPECT_TRUE(inc.admits());
}

TEST(IncrementalMaxFlowExternal, RejectsOversizedNetworksAndOwnedSuperArcs) {
  FlowNetwork big(3);
  for (int i = 0; i < 64; ++i) big.add_undirected_edge(0, 1, 1, 0.1);
  big.add_undirected_edge(1, 2, 1, 0.1);
  ConfigResidual residual(big);
  EXPECT_THROW(IncrementalMaxFlow(residual, 0, 2, 1, 0),
               std::invalid_argument);

  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 1, 0.1);
  IncrementalMaxFlow owned(net, {0, 1, 1});
  EXPECT_THROW(owned.set_super_arc(0, 1, 0), std::logic_error);
}

}  // namespace
}  // namespace streamrel
