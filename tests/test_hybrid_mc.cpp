#include "streamrel/core/hybrid_mc.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "streamrel/graph/generators.hpp"
#include "streamrel/p2p/scenario.hpp"
#include "streamrel/reliability/naive.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

TEST(HybridMc, DeterministicForFixedSeed) {
  const GeneratedNetwork g = make_fig4_graph(0.2);
  const FlowDemand demand{g.source, g.sink, 2};
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  HybridMonteCarloOptions options;
  options.samples_per_side = 2000;
  const auto a = reliability_bottleneck_hybrid(g.net, demand, partition,
                                               options);
  const auto b = reliability_bottleneck_hybrid(g.net, demand, partition,
                                               options);
  EXPECT_DOUBLE_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.num_assignments, 3);
}

TEST(HybridMc, ConvergesToExactValue) {
  const GeneratedNetwork g = make_fig4_graph(0.2);
  const FlowDemand demand{g.source, g.sink, 2};
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const double exact =
      reliability_bottleneck(g.net, demand, partition).reliability;
  HybridMonteCarloOptions options;
  options.samples_per_side = 50'000;
  const auto result =
      reliability_bottleneck_hybrid(g.net, demand, partition, options);
  EXPECT_NEAR(result.estimate, exact, 0.01);
}

TEST(HybridMc, UnbiasedAcrossSeeds) {
  // Mean of independent estimates approaches the exact value.
  Xoshiro256 seeder(99);
  const GeneratedNetwork g = make_two_isp_scenario({});
  const FlowDemand demand{g.source, g.sink, 2};
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const double exact =
      reliability_bottleneck(g.net, demand, partition).reliability;
  double mean = 0.0;
  const int reps = 20;
  for (int i = 0; i < reps; ++i) {
    HybridMonteCarloOptions options;
    options.samples_per_side = 4000;
    options.seed = seeder();
    mean += reliability_bottleneck_hybrid(g.net, demand, partition, options)
                .estimate;
  }
  mean /= reps;
  EXPECT_NEAR(mean, exact, 0.01);
}

TEST(HybridMc, BottleneckStatesCarryNoSamplingNoise) {
  // A graph whose sides are PERFECT (p = 0) and whose bottleneck links
  // are flaky: the hybrid estimate is then exact regardless of sample
  // count, because only the exactly-enumerated bottleneck matters.
  GeneratedNetwork g = make_fig4_graph(0.0);
  g.net.set_failure_prob(7, 0.3);
  g.net.set_failure_prob(8, 0.4);
  const FlowDemand demand{g.source, g.sink, 2};
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const double exact =
      reliability_bottleneck(g.net, demand, partition).reliability;
  HybridMonteCarloOptions options;
  options.samples_per_side = 50;  // absurdly few — and still exact
  EXPECT_NEAR(
      reliability_bottleneck_hybrid(g.net, demand, partition, options)
          .estimate,
      exact, 1e-12);
}

TEST(HybridMc, InfeasibleDemandIsZero) {
  const GeneratedNetwork g = make_fig4_graph(0.1);
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  HybridMonteCarloOptions options;
  options.samples_per_side = 100;
  EXPECT_DOUBLE_EQ(
      reliability_bottleneck_hybrid(g.net, {g.source, g.sink, 9}, partition,
                                    options)
          .estimate,
      0.0);
}

TEST(HybridMc, RejectsZeroSamples) {
  const GeneratedNetwork g = make_fig4_graph(0.1);
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  HybridMonteCarloOptions options;
  options.samples_per_side = 0;
  EXPECT_THROW(reliability_bottleneck_hybrid(g.net, {g.source, g.sink, 2},
                                             partition, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace streamrel
