// Consolidated reproduction of every worked example, table, and figure in
// the paper (experiment rows E1-E8 of DESIGN.md). Each test states the
// paper artifact it reproduces.

#include <gtest/gtest.h>

#include "streamrel/core/accumulate.hpp"
#include "streamrel/core/assignments.hpp"
#include "streamrel/core/bottleneck_algorithm.hpp"
#include "streamrel/core/side_array.hpp"
#include "streamrel/graph/graph_algos.hpp"
#include "streamrel/maxflow/dinic.hpp"
#include "streamrel/maxflow/maxflow.hpp"
#include "streamrel/maxflow/residual_graph.hpp"
#include "streamrel/p2p/scenario.hpp"
#include "streamrel/reliability/naive.hpp"
#include "test_support.hpp"

namespace streamrel {
namespace {

using testing::kTol;

// --- E1: Fig. 1 — the naive method ---------------------------------------
TEST(PaperExamples, Fig1NaiveEnumerationAccountsEveryConfiguration) {
  const GeneratedNetwork g = make_fig4_graph(0.2);
  const FlowDemand demand{g.source, g.sink, 2};
  const auto result = reliability_naive(g.net, demand);
  // 2^|E| configurations, one max-flow each — exactly the Fig. 1 recipe.
  EXPECT_EQ(result.configurations(), Mask{1} << 9);
  EXPECT_EQ(result.maxflow_calls(), Mask{1} << 9);
  // And the sum of admitting-configuration probabilities matches an
  // independently coded brute force.
  EXPECT_NEAR(result.reliability,
              testing::brute_force_reliability(g.net, demand), kTol);
}

// --- E2: Fig. 2 + Equation (1) — graph with a bridge ----------------------
TEST(PaperExamples, Fig2BridgeEquationOne) {
  const GeneratedNetwork g = make_fig2_bridge_graph(0.1);
  const FlowDemand demand{g.source, g.sink, 1};
  // e9 (edge id 8) is a bridge whose removal separates s from t.
  EXPECT_EQ(find_bridges(g.net), std::vector<EdgeId>{8});
  EXPECT_TRUE(removal_disconnects(g.net, g.source, g.sink, {8}));

  // r = r(G_s) * (1 - p(e*)) * r(G_t)  (Equation 1).
  const double naive = reliability_naive(g.net, demand).reliability;
  EXPECT_NEAR(reliability_bridge_formula(g.net, demand, 8), naive, kTol);

  // The k = 1 decomposition reduces to the same expression.
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  EXPECT_NEAR(reliability_bottleneck(g.net, demand, partition).reliability,
              naive, kTol);
}

TEST(PaperExamples, Fig2BridgeCapacityBelowDemandIsTriviallyZero) {
  // Paper §III-A: "If c(e*) < d, the reliability ... is trivially zero."
  const GeneratedNetwork g = make_fig2_bridge_graph(0.1);
  EXPECT_DOUBLE_EQ(
      reliability_bridge_formula(g.net, {g.source, g.sink, 2}, 8), 0.0);
  EXPECT_DOUBLE_EQ(
      reliability_naive(g.net, {g.source, g.sink, 2}).reliability, 0.0);
}

// --- E3: Example 1 — the assignment set for d=5, c=(3,3,3) ---------------
TEST(PaperExamples, Example1TwelveAssignments) {
  FlowNetwork net(2);
  for (int i = 0; i < 3; ++i) net.add_undirected_edge(0, 1, 3, 0.1);
  const BottleneckPartition partition =
      partition_from_sides(net, 0, 1, {true, false});
  const AssignmentSet set = enumerate_assignments(
      net, partition, 5, {AssignmentMode::kForwardOnly});
  // The paper's D, all 12 tuples.
  const std::vector<std::vector<Capacity>> paper_d{
      {0, 2, 3}, {0, 3, 2}, {1, 1, 3}, {1, 2, 2}, {1, 3, 1}, {2, 0, 3},
      {2, 1, 2}, {2, 2, 1}, {2, 3, 0}, {3, 0, 2}, {3, 1, 1}, {3, 2, 0}};
  ASSERT_EQ(set.size(), 12);
  for (const auto& tuple : paper_d) {
    bool found = false;
    for (const Assignment& a : set.assignments) found |= a.usage == tuple;
    EXPECT_TRUE(found) << "missing paper assignment";
  }
}

// --- E4: Fig. 3 + Example 2 — the side-array data structure --------------
TEST(PaperExamples, Example2ArrayBitSemantics) {
  // "If the i-th element has value 110000000000, the i-th failure
  // configuration admits delivery under the first and second assignments."
  // Reproduce the structure on the Fig.-4 graph: the array has one
  // |D|-bit element per configuration, bit j set iff assignment j is
  // realized.
  const GeneratedNetwork g = make_fig4_graph(0.1);
  const FlowDemand demand{g.source, g.sink, 2};
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const AssignmentSet assignments =
      enumerate_assignments(g.net, partition, 2, {});
  const SideProblem side = make_side_problem(g.net, demand, partition, true);
  const std::vector<Mask> array = build_side_array(side, assignments, 2);
  ASSERT_EQ(array.size(), Mask{1} << 5);  // 2^|E_s| elements
  for (Mask config = 0; config < (Mask{1} << 5); ++config) {
    // Each element uses only |D| bits.
    EXPECT_EQ(array[static_cast<std::size_t>(config)] &
                  ~full_mask(assignments.size()),
              0u);
    // Bit j is an independent feasibility statement; verify against a
    // direct per-assignment max-flow for every configuration and bit.
    for (int j = 0; j < assignments.size(); ++j) {
      // Build the side check by hand: flow from s delivering usage[i] to
      // endpoint x_i must total d.
      ResidualGraph res(side.view.num_nodes() + 1);
      const NodeId super_sink = side.view.num_nodes();
      for (EdgeId id = 0; id < side.view.num_edges(); ++id) {
        if (!test_bit(config, id)) continue;
        const Capacity cap = side.view.edge_capacity(id);
        res.add_arc_pair(side.view.edge_u(id), side.view.edge_v(id), cap, cap);
      }
      const auto& usage =
          assignments.assignments[static_cast<std::size_t>(j)].usage;
      for (std::size_t i = 0; i < usage.size(); ++i) {
        res.add_arc_pair(side.endpoints[i], super_sink, usage[i], 0);
      }
      DinicSolver solver;
      const bool feasible = solver.solve(res, side.anchor, super_sink, 2) >= 2;
      EXPECT_EQ(test_bit(array[static_cast<std::size_t>(config)], j),
                feasible)
          << "config " << config << " assignment " << j;
    }
  }
}

// --- E5: Fig. 4 + Example 3 — the two-bottleneck graph --------------------
TEST(PaperExamples, Fig4GraphMatchesEveryStatementInTheText) {
  const GeneratedNetwork g = make_fig4_graph(0.1);
  // "a graph separated by two bottleneck links e1 and e2".
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  EXPECT_EQ(partition.k(), 2);
  EXPECT_TRUE(is_minimal_cutset(g.net, g.source, g.sink,
                                partition.crossing_edges));
  // "the graph admits a flow demand of amount two ... when all links are
  // available".
  EXPECT_GE(max_flow(g.net, g.source, g.sink), 2);
  // "we can consider three assignments ... D = {(2,0), (1,1), (0,2)}".
  const AssignmentSet assignments =
      enumerate_assignments(g.net, partition, 2, {});
  ASSERT_EQ(assignments.size(), 3);
}

TEST(PaperExamples, Example3DirectMultiplicationFailsButAlgorithmIsExact) {
  // The point of Example 3: assignment sets realized by configurations
  // "intersect with each other in a complicated manner", so Eq.-1-style
  // multiplication is wrong; the accumulation algorithm stays exact.
  const GeneratedNetwork g = make_fig4_graph(0.2);
  const FlowDemand demand{g.source, g.sink, 2};
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  EXPECT_NEAR(reliability_bottleneck(g.net, demand, partition).reliability,
              reliability_naive(g.net, demand).reliability, kTol);
}

// --- E6: Fig. 5 — three failure configurations ----------------------------
TEST(PaperExamples, Fig5ConfigurationsRealizeTheThreeStatedSets) {
  const GeneratedNetwork g = make_fig4_graph(0.1);
  const FlowDemand demand{g.source, g.sink, 2};
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const AssignmentSet assignments =
      enumerate_assignments(g.net, partition, 2, {});
  const SideProblem side = make_side_problem(g.net, demand, partition, true);
  const std::vector<Mask> array = build_side_array(side, assignments, 2);
  const Fig5Configs configs = fig5_source_side_configs();

  auto realized_set = [&](Mask config) {
    std::vector<std::vector<Capacity>> out;
    for (int j = 0; j < assignments.size(); ++j) {
      if (test_bit(array[static_cast<std::size_t>(config)], j)) {
        out.push_back(assignments.assignments[static_cast<std::size_t>(j)].usage);
      }
    }
    return out;
  };
  // "the first configuration realizes two assignments (1,1) and (0,2)".
  EXPECT_EQ(realized_set(configs.a),
            (std::vector<std::vector<Capacity>>{{0, 2}, {1, 1}}));
  // "the second configuration realizes one assignment (1,1)".
  EXPECT_EQ(realized_set(configs.b),
            (std::vector<std::vector<Capacity>>{{1, 1}}));
  // "the third ... realizes three assignments (1,1), (2,0) and (0,2)".
  EXPECT_EQ(realized_set(configs.c),
            (std::vector<std::vector<Capacity>>{{0, 2}, {1, 1}, {2, 0}}));
}

// --- E7: Definition 1 + Examples 4 & 5 — supporting subsets ---------------
TEST(PaperExamples, Example4SupportRelation) {
  // "{e1, e3} supports assignments (2,0,1) and (3,0,4) but does not
  // support assignment (1,1,0)".
  AssignmentSet set;
  set.assignments = {Assignment{{2, 0, 1}}, Assignment{{3, 0, 4}},
                     Assignment{{1, 1, 0}}};
  const Mask e1_e3 = mask_of({0, 2});
  EXPECT_EQ(set.supported_by(e1_e3), mask_of({0, 1}));
}

TEST(PaperExamples, Example5EightWayClassification) {
  AssignmentSet set;
  set.assignments = {Assignment{{1, 2, 0}}, Assignment{{2, 1, 0}},
                     Assignment{{1, 1, 1}}, Assignment{{0, 2, 1}},
                     Assignment{{2, 0, 1}}};
  // All eight subsets of {e1, e2, e3}, exactly as the paper lists them.
  EXPECT_EQ(set.supported_by(mask_of({0, 1, 2})), full_mask(5));  // = D
  EXPECT_EQ(set.supported_by(mask_of({0, 1})), mask_of({0, 1}));
  EXPECT_EQ(set.supported_by(mask_of({1, 2})), mask_of({3}));
  EXPECT_EQ(set.supported_by(mask_of({0, 2})), mask_of({4}));
  for (const Mask small : {mask_of({0}), mask_of({1}), mask_of({2}), Mask{0}}) {
    EXPECT_EQ(set.supported_by(small), 0u);  // "D_E = {} for |E| <= 1"
  }
}

// --- E8: Example 6 + Table I — the inclusion-exclusion accumulation -------
TEST(PaperExamples, Example6TableI) {
  // Table I: c1 -> {b1}, c2 -> {b2}, c3 -> {b1,b2}, c4 -> {b2},
  //          c5 -> {b1,b2}, c6 -> {b2}, c7 -> {b1}, c8 -> {}.
  // We give the configurations concrete probabilities and check the
  // paper's formulas digit for digit.
  const double pc[8] = {0.1, 0.2, 0.3, 0.4, 0.15, 0.25, 0.35, 0.25};
  MaskDistribution gs;
  gs.buckets = {{mask_of({0}), pc[0]},
                {mask_of({1}), pc[1] + pc[3]},
                {mask_of({0, 1}), pc[2]}};
  gs.total = 1.0;
  MaskDistribution gt;
  gt.buckets = {{mask_of({0, 1}), pc[4]},
                {mask_of({1}), pc[5]},
                {mask_of({0}), pc[6]},
                {0, pc[7]}};
  gt.total = 1.0;

  // p_{b1} = (p(c1)+p(c3)) (p(c5)+p(c7)).
  const double p_b1 = (pc[0] + pc[2]) * (pc[4] + pc[6]);
  // p_{b2} = (p(c2)+p(c3)+p(c4)) (p(c5)+p(c6)).
  const double p_b2 = (pc[1] + pc[2] + pc[3]) * (pc[4] + pc[5]);
  // p_{b1,b2} = p(c3) p(c5).
  const double p_b1b2 = pc[2] * pc[4];
  // r = p_{b1} + p_{b2} - p_{b1,b2}  (inclusion-exclusion).
  const double expected = p_b1 + p_b2 - p_b1b2;

  EXPECT_NEAR(joint_success_probability(
                  gs, gt, mask_of({0, 1}),
                  AccumulationStrategy::kPaperInclusionExclusion),
              expected, kTol);
  EXPECT_NEAR(joint_success_probability(gs, gt, mask_of({0, 1}),
                                        AccumulationStrategy::kZetaTransform),
              expected, kTol);
  EXPECT_NEAR(joint_success_probability(gs, gt, mask_of({0, 1}),
                                        AccumulationStrategy::kBucketProduct),
              expected, kTol);
}

// --- Equations (2) & (3) — the bottleneck configuration sum ---------------
TEST(PaperExamples, Equations2And3BottleneckSum) {
  // For the Fig.-4 graph, recompute R by hand from Eq. (3):
  //   R = sum over E'' of p_{E''} * r_{E''}
  // where p_{E''} comes from Eq. (2) and r_{E''} from the accumulation.
  const double p = 0.2;
  const GeneratedNetwork g = make_fig4_graph(p);
  const FlowDemand demand{g.source, g.sink, 2};
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const AssignmentSet assignments =
      enumerate_assignments(g.net, partition, 2, {});
  const SideProblem ss = make_side_problem(g.net, demand, partition, true);
  const SideProblem st = make_side_problem(g.net, demand, partition, false);
  const MaskDistribution ds =
      bucket_side_array(ss, build_side_array(ss, assignments, 2));
  const MaskDistribution dt =
      bucket_side_array(st, build_side_array(st, assignments, 2));

  double by_hand = 0.0;
  for (Mask alive = 0; alive < 4; ++alive) {
    // Eq. (2): p_{E''} for the two bottleneck links.
    double p_cfg = 1.0;
    for (int i = 0; i < 2; ++i) p_cfg *= test_bit(alive, i) ? (1 - p) : p;
    const Mask allowed = assignments.supported_by(alive);
    if (allowed == 0) continue;
    by_hand += p_cfg * joint_success_probability(ds, dt, allowed);
  }
  EXPECT_NEAR(by_hand,
              reliability_bottleneck(g.net, demand, partition).reliability,
              kTol);
  EXPECT_NEAR(by_hand, reliability_naive(g.net, demand).reliability, kTol);
}

}  // namespace
}  // namespace streamrel
