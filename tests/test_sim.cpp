#include <gtest/gtest.h>

#include <cmath>

#include "streamrel/graph/generators.hpp"
#include "streamrel/p2p/scenario.hpp"
#include "streamrel/reliability/naive.hpp"
#include "streamrel/sim/availability_sim.hpp"
#include "streamrel/sim/link_dynamics.hpp"
#include "test_support.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

TEST(LinkDynamics, UnavailabilityFormula) {
  LinkDynamics dyn;
  dyn.mean_uptime = 90.0;
  dyn.mean_downtime = 10.0;
  EXPECT_DOUBLE_EQ(dyn.unavailability(), 0.1);
  dyn.mean_uptime = -1.0;
  EXPECT_THROW(dyn.unavailability(), std::invalid_argument);
}

TEST(LinkDynamics, FromProbabilitiesRoundTrips) {
  const GeneratedNetwork g = make_fig4_graph(0.25);
  const auto dynamics = dynamics_from_probabilities(g.net, 7.0);
  ASSERT_EQ(dynamics.size(), 9u);
  for (std::size_t i = 0; i < dynamics.size(); ++i) {
    EXPECT_NEAR(dynamics[i].unavailability(),
                g.net.edge(static_cast<EdgeId>(i)).failure_prob, 1e-12);
    EXPECT_DOUBLE_EQ(dynamics[i].mean_downtime, 7.0);
  }
}

TEST(LinkDynamics, PerfectLinksNeverTransition) {
  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 1, 0.0);
  const auto dynamics = dynamics_from_probabilities(net);
  EXPECT_DOUBLE_EQ(dynamics[0].unavailability(), 0.0);
  SimulationOptions options;
  options.duration = 100.0;
  const SimulationReport report =
      simulate_availability(net, {0, 1, 1}, dynamics, options);
  EXPECT_DOUBLE_EQ(report.availability, 1.0);
  EXPECT_EQ(report.transitions, 0u);
  EXPECT_EQ(report.interruptions, 0u);
}

TEST(Simulation, DeterministicForFixedSeed) {
  const GeneratedNetwork g = make_fig4_graph(0.2);
  const auto dynamics = dynamics_from_probabilities(g.net);
  SimulationOptions options;
  options.duration = 2000.0;
  const auto a =
      simulate_availability(g.net, {g.source, g.sink, 2}, dynamics, options);
  const auto b =
      simulate_availability(g.net, {g.source, g.sink, 2}, dynamics, options);
  EXPECT_DOUBLE_EQ(a.availability, b.availability);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.interruptions, b.interruptions);
}

TEST(Simulation, SingleLinkAvailabilityMatchesStationaryValue) {
  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 1, 0.2);
  const auto dynamics = dynamics_from_probabilities(net, 3.0);
  SimulationOptions options;
  options.duration = 200'000.0;
  const SimulationReport report =
      simulate_availability(net, {0, 1, 1}, dynamics, options);
  EXPECT_NEAR(report.availability, 0.8, 0.01);
  // Outages on a single link ARE its down spells: mean ~ 3 time units.
  EXPECT_NEAR(report.mean_outage, 3.0, 0.3);
  EXPECT_GT(report.interruptions, 1000u);
}

TEST(Simulation, TimeAverageMatchesSnapshotReliability) {
  // The load-bearing validation: stationary availability of the dynamic
  // system equals the static reliability at matching probabilities.
  Xoshiro256 rng(777);
  for (int trial = 0; trial < 4; ++trial) {
    ClusteredParams params;
    params.bottleneck_links = 2;
    params.bottleneck_caps = {2, 2};
    params.cluster_probs = {0.05, 0.3};
    params.bottleneck_probs = {0.05, 0.3};
    const GeneratedNetwork g = clustered_bottleneck(rng, params);
    const FlowDemand demand{g.source, g.sink, 2};
    const double analytic = reliability_naive(g.net, demand).reliability;
    SimulationOptions options;
    options.duration = 150'000.0;
    options.seed = 1000 + static_cast<std::uint64_t>(trial);
    const SimulationReport report = simulate_availability(
        g.net, demand, dynamics_from_probabilities(g.net), options);
    EXPECT_NEAR(report.availability, analytic, 0.015) << "trial " << trial;
  }
}

TEST(Simulation, SpellAccountingIsConsistent) {
  const GeneratedNetwork g = make_fig2_bridge_graph(0.15);
  SimulationOptions options;
  options.duration = 50'000.0;
  const SimulationReport report = simulate_availability(
      g.net, {g.source, g.sink, 1}, dynamics_from_probabilities(g.net),
      options);
  // Mean outage * count can't exceed total infeasible time.
  const double infeasible_time =
      (1.0 - report.availability) * options.duration;
  EXPECT_LE(report.mean_outage * static_cast<double>(report.interruptions),
            infeasible_time * 1.05);
  EXPECT_GT(report.interruptions, 0u);
  EXPECT_GT(report.mean_uptime_spell, report.mean_outage);
}

TEST(Simulation, ValidatesInput) {
  const GeneratedNetwork g = make_fig4_graph(0.1);
  const auto dynamics = dynamics_from_probabilities(g.net);
  SimulationOptions bad;
  bad.duration = -1.0;
  EXPECT_THROW(
      simulate_availability(g.net, {g.source, g.sink, 2}, dynamics, bad),
      std::invalid_argument);
  EXPECT_THROW(simulate_availability(g.net, {g.source, g.sink, 2},
                                     std::vector<LinkDynamics>(2), {}),
               std::invalid_argument);
  EXPECT_THROW(dynamics_from_probabilities(g.net, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace streamrel
