#include "streamrel/core/importance.hpp"

#include <gtest/gtest.h>

#include "streamrel/graph/generators.hpp"
#include "streamrel/p2p/scenario.hpp"
#include "streamrel/reliability/naive.hpp"
#include "test_support.hpp"

namespace streamrel {
namespace {

using testing::kTol;

TEST(Importance, SeriesPairClosedForms) {
  // R = (1-p1)(1-p2). Birnbaum(e1) = R(e1 up) - R(e1 down) = (1-p2) - 0.
  const FlowNetwork net = testing::series_pair(0.1, 0.2);
  const auto imps = edge_importance(net, {0, 2, 1});
  ASSERT_EQ(imps.size(), 2u);
  EXPECT_NEAR(imps[0].birnbaum, 0.8, kTol);
  EXPECT_NEAR(imps[1].birnbaum, 0.9, kTol);
  // risk_achievement = (1-p2) - (1-p1)(1-p2) = p1 (1-p2).
  EXPECT_NEAR(imps[0].risk_achievement, 0.1 * 0.8, kTol);
  // risk_reduction = R - 0 = R.
  EXPECT_NEAR(imps[0].risk_reduction, 0.72, kTol);
}

TEST(Importance, ParallelPairClosedForms) {
  // R = 1 - p1 p2. Birnbaum(e1) = 1 - (1-p2) = p2.
  const FlowNetwork net = testing::parallel_pair(0.1, 0.2);
  const auto imps = edge_importance(net, {0, 1, 1});
  EXPECT_NEAR(imps[0].birnbaum, 0.2, kTol);
  EXPECT_NEAR(imps[1].birnbaum, 0.1, kTol);
}

TEST(Importance, BirnbaumMatchesPivotingIdentity) {
  // R = (1 - p(e)) R(e up) + p(e) R(e down), so
  // R - R(e down) = (1 - p(e)) * Birnbaum(e).
  const GeneratedNetwork g = make_fig4_graph(0.2);
  const FlowDemand demand{g.source, g.sink, 2};
  const double base = reliability_naive(g.net, demand).reliability;
  for (const EdgeImportance& imp : edge_importance(g.net, demand)) {
    const double p = g.net.edge(imp.edge).failure_prob;
    EXPECT_NEAR(imp.risk_reduction, (1.0 - p) * imp.birnbaum, 1e-9)
        << "edge " << imp.edge;
    EXPECT_NEAR(imp.risk_achievement, p * imp.birnbaum, 1e-9);
    (void)base;
  }
}

TEST(Importance, BridgeDominatesInBridgedGraph) {
  // The single bridge is the most Birnbaum-important link by far.
  const GeneratedNetwork g = make_fig2_bridge_graph(0.1);
  const auto ranked =
      ranked_by_birnbaum(edge_importance(g.net, {g.source, g.sink, 1}));
  EXPECT_EQ(ranked.front().edge, 8);
  EXPECT_GT(ranked.front().birnbaum, ranked[1].birnbaum + 0.05);
}

TEST(Importance, IrrelevantEdgeHasZeroImportance) {
  // A link dangling off the path contributes nothing.
  FlowNetwork net(4);
  net.add_undirected_edge(0, 1, 1, 0.1);
  const EdgeId dangler = net.add_undirected_edge(1, 3, 1, 0.2);
  net.add_undirected_edge(1, 2, 1, 0.1);
  const auto imps = edge_importance(net, {0, 2, 1});
  EXPECT_NEAR(imps[static_cast<std::size_t>(dangler)].birnbaum, 0.0, kTol);
}

TEST(Importance, NonNegativeForAllLinks) {
  // Flow reliability is a monotone system: every Birnbaum measure >= 0.
  const GeneratedNetwork g = make_two_isp_scenario({});
  for (const EdgeImportance& imp :
       edge_importance(g.net, {g.source, g.sink, 2})) {
    EXPECT_GE(imp.birnbaum, -1e-12);
    EXPECT_GE(imp.risk_achievement, -1e-12);
    EXPECT_GE(imp.risk_reduction, -1e-12);
  }
}

TEST(Importance, RankingIsStableAndSorted) {
  const GeneratedNetwork g = make_fig4_graph(0.3);
  const auto ranked =
      ranked_by_birnbaum(edge_importance(g.net, {g.source, g.sink, 2}));
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].birnbaum, ranked[i].birnbaum - 1e-15);
  }
}

}  // namespace
}  // namespace streamrel
