#include "streamrel/core/engine.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "streamrel/graph/generators.hpp"
#include "streamrel/p2p/scenario.hpp"
#include "streamrel/reliability/frontier.hpp"
#include "streamrel/reliability/naive.hpp"
#include "test_support.hpp"
#include "streamrel/util/prng.hpp"
#include "streamrel/util/stopwatch.hpp"

namespace streamrel {
namespace {

using testing::kTol;

TEST(EngineRegistry, SeedsTheFiveBuiltins) {
  const EngineRegistry& registry = EngineRegistry::instance();
  EXPECT_GE(registry.engines().size(), 5u);
  for (Method m : {Method::kBottleneck, Method::kNaive, Method::kFactoring,
                   Method::kFrontier, Method::kHybridMc}) {
    const Engine* engine = registry.find(m);
    ASSERT_NE(engine, nullptr) << to_string(m);
    EXPECT_EQ(engine->method(), m);
    EXPECT_EQ(engine->name(), to_string(m));
  }
}

TEST(EngineRegistry, AutoHasNoEngineOfItsOwn) {
  const EngineRegistry& registry = EngineRegistry::instance();
  EXPECT_EQ(registry.find(Method::kAuto), nullptr);
  EXPECT_THROW(registry.require(Method::kAuto), std::invalid_argument);
}

TEST(EngineRegistry, ApplicabilityMatchesEachEnginesPreconditions) {
  const EngineRegistry& registry = EngineRegistry::instance();
  const FlowNetwork small = testing::diamond(0.5);
  const FlowDemand rate1{0, 3, 1};
  EXPECT_TRUE(registry.require(Method::kNaive).applicable(small, rate1));
  EXPECT_TRUE(registry.require(Method::kFrontier).applicable(small, rate1));
  EXPECT_FALSE(registry.require(Method::kFrontier)
                   .applicable(small, {0, 3, 2}));  // rate > 1

  FlowNetwork huge(2);
  for (int i = 0; i < 70; ++i) huge.add_undirected_edge(0, 1, 1, 0.5);
  EXPECT_FALSE(registry.require(Method::kNaive).applicable(huge, {0, 1, 1}));
  EXPECT_TRUE(
      registry.require(Method::kFactoring).applicable(huge, {0, 1, 1}));

  // Estimates never substitute for exact answers: the hybrid engine must
  // be invisible to the kAuto chain.
  EXPECT_FALSE(registry.require(Method::kHybridMc).applicable(small, rate1));
}

TEST(EngineFallback, AutoPicksBottleneckOnClusteredGraph) {
  Xoshiro256 rng(1234);
  ClusteredParams params;
  params.nodes_s = 4;
  params.nodes_t = 4;
  params.bottleneck_links = 2;
  const GeneratedNetwork g = clustered_bottleneck(rng, params);
  const FlowDemand demand{g.source, g.sink, 1};
  SolveOptions options;
  options.use_reductions = false;
  const SolveReport report = compute_reliability(g.net, demand, options);
  EXPECT_EQ(report.method_used, Method::kBottleneck);
  EXPECT_EQ(report.engine, "bottleneck");
  EXPECT_TRUE(report.exact());
  ASSERT_TRUE(report.partition.has_value());
  EXPECT_NEAR(report.result.reliability,
              reliability_naive(g.net, demand).reliability, kTol);
}

TEST(EngineFallback, RateOneGiantWithoutPartitionGoesToFrontier) {
  // 118 links, no admissible bottleneck cut within the side limits: the
  // chain must land on the frontier DP and still answer exactly.
  const GeneratedNetwork g = ladder_network(40, 1, 0.05);
  const FlowDemand demand{g.source, g.sink, 1};
  SolveOptions options;
  options.use_reductions = false;
  const SolveReport report = compute_reliability(g.net, demand, options);
  EXPECT_EQ(report.method_used, Method::kFrontier);
  EXPECT_EQ(report.engine, "frontier");
  EXPECT_TRUE(report.exact());
  EXPECT_NEAR(report.result.reliability,
              reliability_connectivity(g.net, demand).reliability, kTol);
}

TEST(EngineFallback, FrontierBudgetStopFallsThroughToFactoring) {
  const GeneratedNetwork g = ladder_network(40, 1, 0.05);
  const FlowDemand demand{g.source, g.sink, 1};
  SolveOptions options;
  options.use_reductions = false;
  options.frontier.max_states = 1;      // frontier: kBudgetExhausted
  options.factoring.max_tree_nodes = 200;  // keep the 118-link run bounded
  const SolveReport report = compute_reliability(g.net, demand, options);
  EXPECT_EQ(report.method_used, Method::kFactoring);
  EXPECT_EQ(report.result.status, SolveStatus::kBudgetExhausted);
  // A budget stop still yields a usable answer: the polynomial envelope.
  ASSERT_TRUE(report.bounds.has_value());
  EXPECT_LE(report.bounds->lower, report.bounds->upper);
  EXPECT_GE(report.bounds->lower, 0.0);
  EXPECT_LE(report.bounds->upper, 1.0);
}

TEST(EngineFallback, TinyDeadlineOnNaiveEnumerationDegradesToBounds) {
  // 25 links: 2^25 max-flow calls would take far longer than 100 ms, so
  // only the cooperative deadline makes this return in time.
  const GeneratedNetwork g = ladder_network(9, 1, 0.05);
  const FlowDemand demand{g.source, g.sink, 1};
  const double exact =
      reliability_connectivity(g.net, demand).reliability;

  SolveOptions options;
  options.method = Method::kNaive;
  options.deadline_ms = 0.5;
  // Keep the degraded answer cheap too: a small cut family gives the
  // same envelope here at a fraction of the enumeration cost.
  options.bounds.max_cuts = 16;
  Stopwatch sw;
  const SolveReport report = compute_reliability(g.net, demand, options);
  const double elapsed = sw.elapsed_ms();
  EXPECT_EQ(report.result.status, SolveStatus::kDeadlineExpired);
  EXPECT_FALSE(report.exact());
  ASSERT_TRUE(report.bounds.has_value());
  EXPECT_TRUE(report.bounds->contains(exact))
      << "[" << report.bounds->lower << ", " << report.bounds->upper
      << "] vs " << exact;
  EXPECT_LT(elapsed, 100.0);
}

TEST(EngineFallback, DeadlineStopIsFinalInTheAutoChain) {
  // The deadline expires inside the bottleneck decomposition; kAuto must
  // NOT burn the (already spent) wall clock on further fallbacks.
  Xoshiro256 rng(321);
  ClusteredParams params;
  params.nodes_s = 8;
  params.extra_edges_s = 7;
  params.nodes_t = 8;
  params.extra_edges_t = 7;
  params.bottleneck_links = 2;
  const GeneratedNetwork g = clustered_bottleneck(rng, params);
  SolveOptions options;
  options.use_reductions = false;
  options.deadline_ms = 1e-3;
  options.bounds.max_cuts = 16;
  const SolveReport report =
      compute_reliability(g.net, {g.source, g.sink, 1}, options);
  EXPECT_EQ(report.result.status, SolveStatus::kDeadlineExpired);
  EXPECT_EQ(report.method_used, Method::kBottleneck);
  ASSERT_TRUE(report.bounds.has_value());
  EXPECT_LE(report.bounds->lower, report.bounds->upper);
}

TEST(EngineRegistry, ExplicitHybridRequestRunsTheEstimator) {
  const GeneratedNetwork g = make_fig4_graph(0.2);
  SolveOptions options;
  options.method = Method::kHybridMc;
  options.hybrid.samples_per_side = 2000;
  const SolveReport report =
      compute_reliability(g.net, {g.source, g.sink, 2}, options);
  EXPECT_EQ(report.method_used, Method::kHybridMc);
  EXPECT_EQ(report.engine, "hybrid-mc");
  EXPECT_GE(report.result.reliability, 0.0);
  EXPECT_LE(report.result.reliability, 1.0);
  EXPECT_GT(report.result.telemetry.counter_or(telemetry_keys::kSamples), 0u);
}

// Keep this last: it swaps an engine in the process-wide registry.
TEST(EngineRegistry, RegisteringAMethodAgainReplacesTheEngine) {
  class FixedAnswerEngine final : public Engine {
   public:
    std::string_view name() const noexcept override { return "fixed"; }
    Method method() const noexcept override { return Method::kHybridMc; }
    bool applicable(const FlowNetwork&, const FlowDemand&) const override {
      return false;
    }
    SolveReport solve(const FlowNetwork&, const FlowDemand&,
                      const SolveOptions&,
                      const ExecContext*) const override {
      SolveReport report;
      report.method_used = Method::kHybridMc;
      report.engine = name();
      report.result.reliability = 0.25;
      return report;
    }
  };

  EngineRegistry& registry = EngineRegistry::instance();
  const std::size_t before = registry.engines().size();
  registry.register_engine(std::make_unique<FixedAnswerEngine>());
  EXPECT_EQ(registry.engines().size(), before);  // replaced, not appended
  EXPECT_EQ(registry.require(Method::kHybridMc).name(), "fixed");

  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 1, 0.1);
  SolveOptions options;
  options.method = Method::kHybridMc;
  const SolveReport report = compute_reliability(net, {0, 1, 1}, options);
  EXPECT_EQ(report.engine, "fixed");
  EXPECT_DOUBLE_EQ(report.result.reliability, 0.25);

  EXPECT_THROW(registry.register_engine(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace streamrel
