// persist/store.hpp: the crash-safety contract. Checkpoint + WAL replay
// must restore a session bitwise; a torn journal tail (crash mid-append)
// repairs to the last complete record; any checksum-level corruption is
// kCorrupt, never a crash; and a real SIGKILL mid-append stream leaves a
// store whose restored solve state equals an uninterrupted twin that
// applied the same acknowledged deltas.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "streamrel/graph/compiled.hpp"
#include "streamrel/graph/delta.hpp"
#include "streamrel/graph/flow_network.hpp"
#include "streamrel/persist/store.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on destruction.
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("streamrel_persist_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

FlowNetwork base_network() {
  FlowNetwork net(5);
  net.add_undirected_edge(0, 1, 2, 0.1);
  net.add_undirected_edge(1, 2, 1, 0.2);
  net.add_directed_edge(0, 3, 3, 0.05);
  net.add_undirected_edge(3, 2, 2, 1.0 / 3.0);
  net.add_undirected_edge(1, 3, 1, 0.4);
  net.add_undirected_edge(2, 4, 2, 0.15);
  return net;
}

/// The deterministic delta stream both the crash child and the twin
/// regenerate independently: index -> delta, no shared state.
NetworkDelta scripted_delta(int i, int num_edges) {
  NetworkDelta delta;
  const EdgeId edge = static_cast<EdgeId>(i % num_edges);
  delta.set_failure_prob(edge, 0.01 + 0.9 * ((i * 37) % 100) / 100.0);
  if (i % 5 == 3) delta.set_capacity(edge, 1 + (i % 4));
  return delta;
}

void expect_bitwise_equal(const CompiledNetwork& a, const CompiledNetwork& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge_u(e), b.edge_u(e)) << "edge " << e;
    EXPECT_EQ(a.edge_v(e), b.edge_v(e)) << "edge " << e;
    EXPECT_EQ(a.edge_capacity(e), b.edge_capacity(e)) << "edge " << e;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.failure_prob(e)),
              std::bit_cast<std::uint64_t>(b.failure_prob(e)))
        << "p, edge " << e;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.log_failure(e)),
              std::bit_cast<std::uint64_t>(b.log_failure(e)))
        << "log p, edge " << e;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.log_survival(e)),
              std::bit_cast<std::uint64_t>(b.log_survival(e)))
        << "log1p(-p), edge " << e;
  }
}

std::string read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_bytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

StoreOptions test_options(std::size_t compact_threshold = 1000) {
  StoreOptions options;
  options.compact_threshold = compact_threshold;
  options.fsync = false;  // tmpfs scratch; crash tests opt back in
  return options;
}

TEST(SessionStore, LoadOnEmptyDirIsNotFound) {
  const ScratchDir scratch("notfound");
  SessionStore store(scratch.path / "s", test_options());
  RestoredSession restored;
  std::string error;
  EXPECT_EQ(store.load(restored, &error), StoreStatus::kNotFound);
}

TEST(SessionStore, CheckpointThenLoadRoundTripsBitwise) {
  const ScratchDir scratch("roundtrip");
  const auto snapshot = CompiledNetwork::compile(base_network());
  const FlowDemand demand{0, 4, 2};
  {
    SessionStore store(scratch.path / "s", test_options());
    ASSERT_EQ(store.checkpoint(*snapshot, demand, std::size_t{12}),
              StoreStatus::kOk);
  }
  SessionStore store(scratch.path / "s", test_options());
  RestoredSession restored;
  std::string error;
  ASSERT_EQ(store.load(restored, &error), StoreStatus::kOk) << error;
  expect_bitwise_equal(*snapshot, *restored.snapshot);
  EXPECT_EQ(restored.default_demand.source, demand.source);
  EXPECT_EQ(restored.default_demand.sink, demand.sink);
  EXPECT_EQ(restored.default_demand.rate, demand.rate);
  ASSERT_TRUE(restored.max_mask_tables.has_value());
  EXPECT_EQ(*restored.max_mask_tables, 12u);
  EXPECT_EQ(restored.replayed_deltas, 0u);
  // Builder and snapshot are consistent: recompiling the builder
  // reproduces the snapshot's arrays.
  expect_bitwise_equal(*restored.snapshot,
                       *CompiledNetwork::compile(restored.net));
}

TEST(SessionStore, WalReplayMatchesInMemoryTwinBitwise) {
  const ScratchDir scratch("replay");
  auto twin = CompiledNetwork::compile(base_network());
  const int num_edges = twin->num_edges();
  {
    SessionStore store(scratch.path / "s", test_options());
    ASSERT_EQ(store.checkpoint(*twin, FlowDemand{0, 4, 1}, std::nullopt),
              StoreStatus::kOk);
    for (int i = 0; i < 23; ++i) {
      const NetworkDelta delta = scripted_delta(i, num_edges);
      ASSERT_EQ(store.append(delta), StoreStatus::kOk) << "delta " << i;
      twin = twin->apply_delta(delta).snapshot;
    }
    EXPECT_EQ(store.stats().wal_records, 23u);
  }
  SessionStore store(scratch.path / "s", test_options());
  RestoredSession restored;
  std::string error;
  ASSERT_EQ(store.load(restored, &error), StoreStatus::kOk) << error;
  EXPECT_EQ(restored.replayed_deltas, 23u);
  EXPECT_EQ(restored.torn_bytes, 0u);
  expect_bitwise_equal(*twin, *restored.snapshot);
  expect_bitwise_equal(*restored.snapshot,
                       *CompiledNetwork::compile(restored.net));
}

TEST(SessionStore, CompactionFoldsWalIntoSnapshot) {
  const ScratchDir scratch("compact");
  auto twin = CompiledNetwork::compile(base_network());
  SessionStore store(scratch.path / "s", test_options(/*compact=*/4));
  ASSERT_EQ(store.checkpoint(*twin, FlowDemand{0, 4, 1}, std::nullopt),
            StoreStatus::kOk);
  for (int i = 0; i < 5; ++i) {
    const NetworkDelta delta = scripted_delta(i, twin->num_edges());
    ASSERT_EQ(store.append(delta), StoreStatus::kOk);
    twin = twin->apply_delta(delta).snapshot;
  }
  ASSERT_TRUE(store.needs_compaction());
  ASSERT_EQ(store.checkpoint(*twin, FlowDemand{0, 4, 1}, std::nullopt),
            StoreStatus::kOk);
  EXPECT_FALSE(store.needs_compaction());
  EXPECT_EQ(store.stats().wal_records, 0u);
  // Sequences survive compaction: post-compaction appends replay, the
  // pre-compaction ones are folded into the snapshot.
  const NetworkDelta tail = scripted_delta(99, twin->num_edges());
  ASSERT_EQ(store.append(tail), StoreStatus::kOk);
  twin = twin->apply_delta(tail).snapshot;

  SessionStore reopened(scratch.path / "s", test_options());
  RestoredSession restored;
  std::string error;
  ASSERT_EQ(reopened.load(restored, &error), StoreStatus::kOk) << error;
  EXPECT_EQ(restored.replayed_deltas, 1u);
  expect_bitwise_equal(*twin, *restored.snapshot);
}

TEST(SessionStore, TornWalTailIsRepairedToLastCompleteRecord) {
  const ScratchDir scratch("torn");
  auto twin = CompiledNetwork::compile(base_network());
  {
    SessionStore store(scratch.path / "s", test_options());
    ASSERT_EQ(store.checkpoint(*twin, FlowDemand{0, 4, 1}, std::nullopt),
              StoreStatus::kOk);
    for (int i = 0; i < 4; ++i) {
      ASSERT_EQ(store.append(scripted_delta(i, twin->num_edges())),
                StoreStatus::kOk);
    }
  }
  // Tear 5 bytes off the last record: a crash mid-write.
  const fs::path wal = scratch.path / "s" / "wal.bin";
  const std::string bytes = read_bytes(wal);
  write_bytes(wal, bytes.substr(0, bytes.size() - 5));

  SessionStore store(scratch.path / "s", test_options());
  RestoredSession restored;
  std::string error;
  ASSERT_EQ(store.load(restored, &error), StoreStatus::kOk) << error;
  EXPECT_EQ(restored.replayed_deltas, 3u);
  EXPECT_GT(restored.torn_bytes, 0u);
  for (int i = 0; i < 3; ++i) {
    twin = twin->apply_delta(scripted_delta(i, twin->num_edges())).snapshot;
  }
  expect_bitwise_equal(*twin, *restored.snapshot);

  // The repair truncated the file: a second open sees a clean journal.
  SessionStore again(scratch.path / "s", test_options());
  RestoredSession restored2;
  ASSERT_EQ(again.load(restored2, &error), StoreStatus::kOk) << error;
  EXPECT_EQ(restored2.torn_bytes, 0u);
  EXPECT_EQ(restored2.replayed_deltas, 3u);
}

TEST(SessionStore, EveryWalTruncationLoadsOrDiagnoses) {
  // Sweep every truncation point of the journal: each prefix must load
  // (torn tail) — never crash, never corrupt a record that is complete.
  const ScratchDir scratch("sweep");
  {
    SessionStore store(scratch.path / "s", test_options());
    const auto snapshot = CompiledNetwork::compile(base_network());
    ASSERT_EQ(store.checkpoint(*snapshot, FlowDemand{0, 4, 1}, std::nullopt),
              StoreStatus::kOk);
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(store.append(scripted_delta(i, snapshot->num_edges())),
                StoreStatus::kOk);
    }
  }
  const fs::path wal = scratch.path / "s" / "wal.bin";
  const std::string bytes = read_bytes(wal);
  std::uint64_t last_replayed = 0;
  for (std::size_t keep = bytes.size(); keep > 0; --keep) {
    write_bytes(wal, bytes.substr(0, keep));
    StoreOptions options = test_options();
    options.repair = false;  // keep the prefix intact for the next lap
    SessionStore store(scratch.path / "s", options);
    RestoredSession restored;
    std::string error;
    const StoreStatus status = store.load(restored, &error);
    ASSERT_TRUE(status == StoreStatus::kOk || status == StoreStatus::kCorrupt)
        << "kept " << keep << ": " << error;
    if (status == StoreStatus::kOk) last_replayed = restored.replayed_deltas;
  }
  EXPECT_EQ(last_replayed, 0u);  // by keep==1 nothing replays
}

TEST(SessionStore, SeededByteFlipsAreCorruptNeverACrash) {
  const ScratchDir scratch("fuzz");
  {
    SessionStore store(scratch.path / "s", test_options());
    const auto snapshot = CompiledNetwork::compile(base_network());
    ASSERT_EQ(store.checkpoint(*snapshot, FlowDemand{0, 4, 1}, std::size_t{8}),
              StoreStatus::kOk);
    for (int i = 0; i < 6; ++i) {
      ASSERT_EQ(store.append(scripted_delta(i, snapshot->num_edges())),
                StoreStatus::kOk);
    }
  }
  Xoshiro256 rng(0xC0FFEE);
  for (const char* file : {"snapshot.bin", "wal.bin"}) {
    const fs::path path = scratch.path / "s" / file;
    const std::string clean = read_bytes(path);
    ASSERT_FALSE(clean.empty());
    for (int trial = 0; trial < 40; ++trial) {
      const std::size_t pos =
          static_cast<std::size_t>(rng.uniform_below(clean.size()));
      std::string mutated = clean;
      mutated[pos] = static_cast<char>(
          static_cast<unsigned char>(mutated[pos]) ^
          (1u << rng.uniform_below(8)));
      write_bytes(path, mutated);
      StoreOptions options = test_options();
      options.repair = false;
      SessionStore store(scratch.path / "s", options);
      RestoredSession restored;
      std::string error;
      const StoreStatus status = store.load(restored, &error);
      EXPECT_EQ(status, StoreStatus::kCorrupt)
          << file << " byte " << pos << " -> " << to_string(status);
      EXPECT_FALSE(error.empty()) << file << " byte " << pos;
    }
    write_bytes(path, clean);
  }
}

TEST(SessionStore, TruncatedSnapshotIsCorrupt) {
  const ScratchDir scratch("snaptrunc");
  {
    SessionStore store(scratch.path / "s", test_options());
    const auto snapshot = CompiledNetwork::compile(base_network());
    ASSERT_EQ(store.checkpoint(*snapshot, FlowDemand{0, 4, 1}, std::nullopt),
              StoreStatus::kOk);
  }
  const fs::path snap = scratch.path / "s" / "snapshot.bin";
  const std::string bytes = read_bytes(snap);
  write_bytes(snap, bytes.substr(0, bytes.size() / 2));
  SessionStore store(scratch.path / "s", test_options());
  RestoredSession restored;
  std::string error;
  EXPECT_EQ(store.load(restored, &error), StoreStatus::kCorrupt);
  EXPECT_FALSE(error.empty());
}

TEST(SessionStore, MissingSnapshotWithLiveWalIsCorrupt) {
  const ScratchDir scratch("nosnap");
  {
    SessionStore store(scratch.path / "s", test_options());
    const auto snapshot = CompiledNetwork::compile(base_network());
    ASSERT_EQ(store.checkpoint(*snapshot, FlowDemand{0, 4, 1}, std::nullopt),
              StoreStatus::kOk);
    ASSERT_EQ(store.append(scripted_delta(0, snapshot->num_edges())),
              StoreStatus::kOk);
  }
  fs::remove(scratch.path / "s" / "snapshot.bin");
  SessionStore store(scratch.path / "s", test_options());
  RestoredSession restored;
  std::string error;
  EXPECT_EQ(store.load(restored, &error), StoreStatus::kCorrupt);
}

TEST(SessionStore, SigkillMidAppendRestoresBitwiseTwin) {
  const ScratchDir scratch("crash");
  const fs::path dir = scratch.path / "s";
  const auto base = CompiledNetwork::compile(base_network());
  const int num_edges = base->num_edges();
  {
    // The base checkpoint happens in the parent so the child only ever
    // appends — the crash lands inside the journaling path by design.
    SessionStore store(dir, test_options());
    ASSERT_EQ(store.checkpoint(*base, FlowDemand{0, 4, 1}, std::nullopt),
              StoreStatus::kOk);
  }

  int progress[2];
  ASSERT_EQ(::pipe(progress), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: append the scripted stream with real fdatasync, one pipe
    // byte per DURABLE append, until killed. _exit keeps gtest's atexit
    // machinery out of the forked copy.
    ::close(progress[0]);
    StoreOptions options;
    options.compact_threshold = 1000;
    options.fsync = true;
    SessionStore store(dir, options);
    for (int i = 0; i < 4000; ++i) {
      if (store.append(scripted_delta(i, num_edges)) != StoreStatus::kOk) {
        _exit(2);
      }
      const char byte = 1;
      if (::write(progress[1], &byte, 1) != 1) _exit(3);
    }
    _exit(0);
  }
  ::close(progress[1]);
  // Let a prefix of the stream become durable, then kill mid-flight.
  const int acknowledged = 25;
  char byte;
  int seen = 0;
  while (seen < acknowledged && ::read(progress[0], &byte, 1) == 1) ++seen;
  ASSERT_EQ(seen, acknowledged);
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  ::close(progress[0]);

  // Restart: every acknowledged delta must be there; a final
  // unacknowledged one may have landed too (killed after write, before
  // the pipe byte). The restored state must equal an uninterrupted twin
  // that applied exactly the replayed prefix.
  SessionStore store(dir, test_options());
  RestoredSession restored;
  std::string error;
  ASSERT_EQ(store.load(restored, &error), StoreStatus::kOk) << error;
  ASSERT_GE(restored.replayed_deltas,
            static_cast<std::uint64_t>(acknowledged));
  auto twin = base;
  for (std::uint64_t i = 0; i < restored.replayed_deltas; ++i) {
    twin = twin->apply_delta(scripted_delta(static_cast<int>(i), num_edges))
               .snapshot;
  }
  expect_bitwise_equal(*twin, *restored.snapshot);
  expect_bitwise_equal(*restored.snapshot,
                       *CompiledNetwork::compile(restored.net));
}

TEST(StateDir, EncodingIsInvertibleAndSandboxed) {
  const std::vector<std::string> names = {
      "default", "alpha-1", "a/b", "..", ".hidden", "", "sp ace",
      "per%cent", "uni\xC3\xA9", "CAPS.and_under-scores"};
  for (const std::string& name : names) {
    const std::string enc = StateDir::encode_component(name);
    // Encoded names never escape the store root or collide with
    // dotfiles: no separators, no leading dot, never empty.
    EXPECT_EQ(enc.find('/'), std::string::npos) << name;
    EXPECT_FALSE(enc.empty()) << name;
    EXPECT_NE(enc.front(), '.') << name;
    const auto dec = StateDir::decode_component(enc);
    ASSERT_TRUE(dec.has_value()) << name;
    EXPECT_EQ(*dec, name);
  }
  EXPECT_FALSE(StateDir::decode_component("%zz").has_value());
  EXPECT_FALSE(StateDir::decode_component("%4").has_value());
}

TEST(StateDir, EnumerateFindsStoresSorted) {
  const ScratchDir scratch("enumerate");
  const StateDir state(scratch.path);
  const auto snapshot = CompiledNetwork::compile(base_network());
  for (const auto& [tenant, network] :
       std::vector<std::pair<std::string, std::string>>{
           {"beta", "net/1"}, {"alpha", "x"}, {"alpha", "a"}}) {
    SessionStore store(state.store_path(tenant, network), test_options());
    ASSERT_EQ(store.checkpoint(*snapshot, FlowDemand{0, 4, 1}, std::nullopt),
              StoreStatus::kOk);
  }
  const std::vector<StateDir::Entry> entries = state.enumerate();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].tenant, "alpha");
  EXPECT_EQ(entries[0].network_id, "a");
  EXPECT_EQ(entries[1].tenant, "alpha");
  EXPECT_EQ(entries[1].network_id, "x");
  EXPECT_EQ(entries[2].tenant, "beta");
  EXPECT_EQ(entries[2].network_id, "net/1");
}

}  // namespace
}  // namespace streamrel
