#include "streamrel/cuts/chain_search.hpp"

#include <gtest/gtest.h>

#include "streamrel/core/chain.hpp"
#include "streamrel/graph/generators.hpp"
#include "streamrel/reliability/naive.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

TEST(ChainSearch, PathYieldsOneLayerPerNode) {
  const GeneratedNetwork g = path_network(5, 1, 0.1);
  const auto plan = find_chain_plan(g.net, g.source, g.sink);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->num_layers, 6);
  EXPECT_EQ(plan->layer, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(plan->cuts.size(), 5u);
  for (const auto& cut : plan->cuts) EXPECT_EQ(cut.size(), 1u);
}

TEST(ChainSearch, LadderYieldsRungwiseLayers) {
  const GeneratedNetwork g = ladder_network(6, 1, 0.1);
  ChainSearchOptions options;
  options.max_cut_size = 2;
  const auto plan = find_chain_plan(g.net, g.source, g.sink, options);
  ASSERT_TRUE(plan.has_value());
  EXPECT_GE(plan->num_layers, 3);
  EXPECT_LE(plan->max_layer_edges, options.max_layer_edges);
}

TEST(ChainSearch, PlanFeedsChainDecompositionExactly) {
  Xoshiro256 rng(31415);
  for (int trial = 0; trial < 10; ++trial) {
    // A chain of random 3-cliques joined by single links.
    FlowNetwork net(9);
    for (int c = 0; c < 3; ++c) {
      const NodeId base = 3 * c;
      net.add_undirected_edge(base, base + 1, 2,
                              rng.uniform_real(0.05, 0.4));
      net.add_undirected_edge(base + 1, base + 2, 2,
                              rng.uniform_real(0.05, 0.4));
      net.add_undirected_edge(base, base + 2, 2,
                              rng.uniform_real(0.05, 0.4));
      if (c > 0) {
        net.add_undirected_edge(base - 1, base, 2,
                                rng.uniform_real(0.05, 0.4));
      }
    }
    const FlowDemand demand{0, 8, 2};
    const auto plan = find_chain_plan(net, demand.source, demand.sink);
    ASSERT_TRUE(plan.has_value()) << "trial " << trial;
    EXPECT_NEAR(reliability_chain(net, demand, plan->layer).reliability,
                reliability_naive(net, demand).reliability, 1e-9)
        << "trial " << trial;
  }
}

TEST(ChainSearch, DenseGraphHasNoChain) {
  FlowNetwork net(6);
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) {
      net.add_undirected_edge(u, v, 1, 0.1);
    }
  }
  EXPECT_FALSE(find_chain_plan(net, 0, 5).has_value());
}

TEST(ChainSearch, MinLayersRespected) {
  const GeneratedNetwork g = path_network(3, 1, 0.1);
  ChainSearchOptions options;
  options.min_layers = 10;
  EXPECT_FALSE(find_chain_plan(g.net, g.source, g.sink, options).has_value());
}

TEST(ChainSearch, LayerBudgetRespected) {
  const GeneratedNetwork g = ladder_network(8, 1, 0.1);
  ChainSearchOptions options;
  options.max_layer_edges = 0;  // ladders always have in-layer rungs
  options.max_cut_size = 2;
  EXPECT_FALSE(find_chain_plan(g.net, g.source, g.sink, options).has_value());
}

TEST(ChainSearch, DisconnectedSinkReturnsNullopt) {
  FlowNetwork net(4);
  net.add_undirected_edge(0, 1, 1, 0.1);
  net.add_undirected_edge(2, 3, 1, 0.1);
  // t unreachable: the prefix never crosses anything toward t; depending
  // on ordering this either yields no layers or an invalid plan — both
  // must surface as nullopt, never a bogus layering.
  const auto plan = find_chain_plan(net, 0, 3);
  if (plan) {
    EXPECT_NO_THROW(reliability_chain(net, {0, 3, 1}, plan->layer));
  }
}

TEST(ChainSearch, ValidatesEndpoints) {
  const GeneratedNetwork g = path_network(3, 1, 0.1);
  EXPECT_THROW(find_chain_plan(g.net, 0, 0), std::invalid_argument);
  EXPECT_THROW(find_chain_plan(g.net, 0, 99), std::invalid_argument);
}

}  // namespace
}  // namespace streamrel
