#include "streamrel/api/wire.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "streamrel/util/json.hpp"

namespace streamrel {
namespace {

WireParseError capture_error(std::string_view line) {
  try {
    (void)parse_wire_request(line);
  } catch (const WireParseError& e) {
    return e;
  }
  ADD_FAILURE() << "expected WireParseError for: " << line;
  return WireParseError("", "");
}

TEST(Wire, ParsesMinimalSolveRequestWithDefaults) {
  const WireRequest req = parse_wire_request(R"({"v": 1, "verb": "solve"})");
  EXPECT_EQ(req.version, kWireSchemaVersion);
  EXPECT_EQ(req.id_json, "null");
  EXPECT_EQ(req.verb, WireVerb::kSolve);
  EXPECT_EQ(req.tenant, "default");
  EXPECT_EQ(req.network_id, "default");
  EXPECT_EQ(req.lane, WireLane::kInteractive);
  EXPECT_EQ(req.deadline_ms, 0.0);
  EXPECT_FALSE(req.query.source.has_value());
  EXPECT_FALSE(req.want_telemetry);
}

TEST(Wire, BatchAndReplayDefaultToBulkLane) {
  const WireRequest batch =
      parse_wire_request(R"({"v": 1, "verb": "batch", "queries": []})");
  EXPECT_EQ(batch.lane, WireLane::kBulk);
  const WireRequest replay = parse_wire_request(
      R"({"v": 1, "verb": "replay", "events": [], "cold": true})");
  EXPECT_EQ(replay.lane, WireLane::kBulk);
  EXPECT_TRUE(replay.cold);
  // An explicit lane wins over the verb default.
  const WireRequest pinned = parse_wire_request(
      R"({"v": 1, "verb": "batch", "queries": [], "lane": "interactive"})");
  EXPECT_EQ(pinned.lane, WireLane::kInteractive);
}

TEST(Wire, ParsesFullSolvePayload) {
  const WireRequest req = parse_wire_request(
      R"({"v": 1, "id": 7, "verb": "solve", "tenant": "alpha",)"
      R"( "network_id": "mesh", "deadline_ms": 50, "max_threads": 2,)"
      R"( "telemetry": true, "trace": true, "source": 0, "sink": 3,)"
      R"( "d": 2, "method": "frontier",)"
      R"( "overrides": [{"edge": 1, "p": 0.5}]})");
  EXPECT_EQ(req.id_json, "7");
  EXPECT_EQ(req.tenant, "alpha");
  EXPECT_EQ(req.network_id, "mesh");
  EXPECT_EQ(req.deadline_ms, 50.0);
  EXPECT_EQ(req.max_threads, 2);
  EXPECT_TRUE(req.want_telemetry);
  EXPECT_TRUE(req.want_trace);
  ASSERT_TRUE(req.query.source.has_value());
  EXPECT_EQ(*req.query.source, 0);
  ASSERT_TRUE(req.query.sink.has_value());
  EXPECT_EQ(*req.query.sink, 3);
  ASSERT_TRUE(req.query.rate.has_value());
  EXPECT_EQ(*req.query.rate, 2);
  EXPECT_EQ(req.query.method, Method::kFrontier);
  ASSERT_EQ(req.query.overrides.size(), 1u);
  EXPECT_EQ(req.query.overrides[0].edge, 1u);
  EXPECT_EQ(req.query.overrides[0].failure_prob, 0.5);
}

TEST(Wire, ErrorCodesMatchTheContract) {
  EXPECT_EQ(capture_error("not json").code(), "parse_error");
  EXPECT_EQ(capture_error("[1, 2]").code(), "bad_request");
  EXPECT_EQ(capture_error(R"({"verb": "solve"})").code(), "bad_request");
  EXPECT_EQ(capture_error(R"({"v": 2, "verb": "solve"})").code(),
            "unsupported_version");
  EXPECT_EQ(capture_error(R"({"v": 1, "verb": "explode"})").code(),
            "unknown_verb");
  EXPECT_EQ(capture_error(R"({"v": 1, "verb": "batch"})").code(),
            "bad_request");
  EXPECT_EQ(capture_error(R"({"v": 1, "verb": "replay"})").code(),
            "bad_request");
  EXPECT_EQ(
      capture_error(R"({"v": 1, "verb": "register_network"})").code(),
      "bad_request");
}

TEST(Wire, ErrorsStillEchoTheRequestId) {
  const WireParseError versioned =
      capture_error(R"({"v": 3, "id": "abc", "verb": "solve"})");
  EXPECT_EQ(versioned.code(), "unsupported_version");
  EXPECT_EQ(versioned.id_json(), "\"abc\"");
  EXPECT_EQ(std::string(versioned.what()),
            "unsupported wire schema version 3 (this build speaks 1)");

  const WireParseError payload = capture_error(
      R"({"v": 1, "id": 9, "verb": "solve", "method": "psychic"})");
  EXPECT_EQ(payload.id_json(), "9");
  EXPECT_EQ(payload.verb(), "solve");
}

TEST(Wire, IdMustBeAScalar) {
  const WireParseError e =
      capture_error(R"({"v": 1, "id": [1], "verb": "stats"})");
  EXPECT_EQ(e.code(), "bad_request");
}

TEST(Wire, IdRenderingPreservesScalarKinds) {
  EXPECT_EQ(parse_wire_request(R"({"v":1,"id":42,"verb":"stats"})").id_json,
            "42");
  EXPECT_EQ(
      parse_wire_request(R"({"v":1,"id":"q-1","verb":"stats"})").id_json,
      "\"q-1\"");
  EXPECT_EQ(parse_wire_request(R"({"v":1,"id":true,"verb":"stats"})").id_json,
            "true");
  EXPECT_EQ(parse_wire_request(R"({"v":1,"id":null,"verb":"stats"})").id_json,
            "null");
  // Non-integral numbers survive as numbers.
  const std::string fractional =
      parse_wire_request(R"({"v":1,"id":1.5,"verb":"stats"})").id_json;
  EXPECT_EQ(parse_json(fractional).as_number(), 1.5);
}

TEST(Wire, RoundTripsEveryVerb) {
  WireRequest solve;
  solve.verb = WireVerb::kSolve;
  solve.id_json = "11";
  solve.tenant = "alpha";
  solve.deadline_ms = 25.0;
  solve.max_threads = 3;
  solve.want_telemetry = true;
  solve.query.source = 0;
  solve.query.sink = 4;
  solve.query.rate = 2;
  solve.query.method = Method::kBottleneck;
  solve.query.overrides.push_back(ProbOverride{2, 0.25});

  const WireRequest solve2 = parse_wire_request(serialize_wire_request(solve));
  EXPECT_EQ(solve2.id_json, "11");
  EXPECT_EQ(solve2.tenant, "alpha");
  EXPECT_EQ(solve2.deadline_ms, 25.0);
  EXPECT_EQ(solve2.max_threads, 3);
  EXPECT_TRUE(solve2.want_telemetry);
  EXPECT_EQ(solve2.query.method, Method::kBottleneck);
  ASSERT_EQ(solve2.query.overrides.size(), 1u);
  EXPECT_EQ(solve2.query.overrides[0].failure_prob, 0.25);

  WireRequest reg;
  reg.verb = WireVerb::kRegisterNetwork;
  reg.network_text = "nodes 2\nedge 0 1 cap 1 p 0.1\n";
  reg.query.source = 0;
  reg.query.sink = 1;
  reg.query.rate = 1;
  reg.max_mask_tables = 16;
  const WireRequest reg2 = parse_wire_request(serialize_wire_request(reg));
  EXPECT_EQ(reg2.network_text, reg.network_text);
  ASSERT_TRUE(reg2.max_mask_tables.has_value());
  EXPECT_EQ(*reg2.max_mask_tables, 16u);

  WireRequest batch;
  batch.verb = WireVerb::kBatch;
  batch.lane = WireLane::kBulk;  // the verb default; stays implicit on the wire
  batch.queries.resize(2);
  batch.queries[1].rate = 3;
  batch.queries[1].deadline_ms = 1.5;
  const WireRequest batch2 = parse_wire_request(serialize_wire_request(batch));
  EXPECT_EQ(batch2.lane, WireLane::kBulk);
  ASSERT_EQ(batch2.queries.size(), 2u);
  EXPECT_FALSE(batch2.queries[0].rate.has_value());
  ASSERT_TRUE(batch2.queries[1].rate.has_value());
  EXPECT_EQ(*batch2.queries[1].rate, 3);
  EXPECT_EQ(batch2.queries[1].deadline_ms, 1.5);

  WireRequest delta;
  delta.verb = WireVerb::kApplyDelta;
  delta.delta.set_failure_prob(0, 0.75);
  delta.delta.set_capacity(1, 4);
  delta.delta.nodes_added = 1;
  delta.delta.add_edge(0, 2, 2, 0.1);
  delta.delta.remove_edge(3);
  const WireRequest delta2 = parse_wire_request(serialize_wire_request(delta));
  ASSERT_EQ(delta2.delta.prob_edits.size(), 1u);
  EXPECT_EQ(delta2.delta.prob_edits[0].failure_prob, 0.75);
  ASSERT_EQ(delta2.delta.capacity_edits.size(), 1u);
  EXPECT_EQ(delta2.delta.nodes_added, 1);
  ASSERT_EQ(delta2.delta.edge_adds.size(), 1u);
  ASSERT_EQ(delta2.delta.edge_removes.size(), 1u);
  EXPECT_EQ(delta2.delta.edge_removes[0], 3u);

  WireRequest replay;
  replay.verb = WireVerb::kReplay;
  replay.cold = true;
  replay.events.resize(2);
  replay.events[0].time = 0.5;
  replay.events[0].label = "link \"3\" degrades";
  replay.events[0].delta.set_failure_prob(3, 0.25);
  replay.events[1].time = 1.0;
  replay.events[1].delta.remove_node(5);
  const WireRequest replay2 =
      parse_wire_request(serialize_wire_request(replay));
  EXPECT_TRUE(replay2.cold);
  ASSERT_EQ(replay2.events.size(), 2u);
  EXPECT_EQ(replay2.events[0].time, 0.5);
  EXPECT_EQ(replay2.events[0].label, "link \"3\" degrades");
  ASSERT_EQ(replay2.events[1].delta.node_removes.size(), 1u);

  WireRequest stats;
  stats.verb = WireVerb::kStats;
  EXPECT_EQ(parse_wire_request(serialize_wire_request(stats)).verb,
            WireVerb::kStats);
}

TEST(Wire, BatchFileGrammarKeepsTheLegacyErrorStrings) {
  EXPECT_THROW((void)parse_batch_file("{\"nope\": 1}"), WireParseError);
  try {
    (void)parse_batch_file("{\"nope\": 1}");
  } catch (const WireParseError& e) {
    EXPECT_EQ(std::string(e.what()),
              "batch file needs a top-level array or a \"queries\" key");
  }
  try {
    (void)parse_batch_file(R"([{"method": "psychic"}])");
    ADD_FAILURE() << "unknown method accepted";
  } catch (const WireParseError& e) {
    EXPECT_EQ(std::string(e.what()), "unknown method 'psychic' in batch file");
  }
  try {
    (void)parse_batch_file(R"([{"overrides": [{"edge": 1}]}])");
    ADD_FAILURE() << "bad override accepted";
  } catch (const WireParseError& e) {
    EXPECT_EQ(std::string(e.what()),
              "override needs \"edge\" and \"p\" members");
  }
  // Malformed JSON propagates unwrapped, like the pre-wire parser.
  EXPECT_THROW((void)parse_batch_file("{"), std::invalid_argument);

  const WireRequest bare = parse_batch_file(R"([{"d": 2}, {}])");
  EXPECT_EQ(bare.verb, WireVerb::kBatch);
  EXPECT_EQ(bare.lane, WireLane::kBulk);
  ASSERT_EQ(bare.queries.size(), 2u);
  const WireRequest keyed = parse_batch_file(
      R"({"queries": [{}], "max_mask_tables": 8})");
  ASSERT_TRUE(keyed.max_mask_tables.has_value());
  EXPECT_EQ(*keyed.max_mask_tables, 8u);
}

TEST(Wire, ResponseEnvelopeAndErrors) {
  WireResponse ok;
  ok.id_json = "3";
  ok.verb = "solve";
  ok.result_json = R"({"reliability": 1})";
  const std::string line = serialize_wire_response(ok);
  const JsonValue doc = parse_json(line);
  EXPECT_EQ(doc.find("v")->as_number(), kWireSchemaVersion);
  EXPECT_EQ(doc.find("id")->as_number(), 3.0);
  EXPECT_TRUE(doc.find("ok")->as_bool());
  EXPECT_EQ(doc.find("result")->find("reliability")->as_number(), 1.0);

  const WireResponse err = make_wire_error(
      "\"q\"", "solve", "bad_request", "a \"quoted\"\nmessage");
  const JsonValue edoc = parse_json(serialize_wire_response(err));
  EXPECT_FALSE(edoc.find("ok")->as_bool());
  EXPECT_EQ(edoc.find("error")->find("code")->as_string(), "bad_request");
  EXPECT_EQ(edoc.find("error")->find("message")->as_string(),
            "a \"quoted\"\nmessage");
}

TEST(Wire, AppendJsonMemberSplicesBeforeTheBrace) {
  std::string empty = "{}";
  append_json_member(empty, "shed", "true");
  EXPECT_EQ(empty, "{\"shed\": true}");
  std::string populated = "{\"a\": 1}";
  append_json_member(populated, "b", "[2]");
  EXPECT_EQ(populated, "{\"a\": 1, \"b\": [2]}");
}

TEST(Wire, JsonQuoteEscapes) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
  // Control characters take the \u00XX form and parse back.
  const std::string quoted = json_quote(std::string("\x01", 1));
  EXPECT_EQ(parse_json(quoted).as_string(), std::string("\x01", 1));
}

}  // namespace
}  // namespace streamrel
