#include "streamrel/util/json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace streamrel {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-0.5").as_number(), -0.5);
  EXPECT_DOUBLE_EQ(parse_json("1.25e2").as_number(), 125.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesStringsWithEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\n\t")").as_string(), "a\"b\\c\n\t");
  EXPECT_EQ(parse_json(R"("A")").as_string(), "A");
}

TEST(Json, ParsesNestedStructures) {
  const JsonValue doc = parse_json(
      R"({"queries": [{"source": 0, "sink": 5, "d": 2,
                       "overrides": [{"edge": 3, "p": 0.25}]}],
          "max_mask_tables": 16})");
  const JsonValue* queries = doc.find("queries");
  ASSERT_NE(queries, nullptr);
  ASSERT_TRUE(queries->is_array());
  ASSERT_EQ(queries->as_array().size(), 1u);
  const JsonValue& q = queries->as_array().front();
  EXPECT_DOUBLE_EQ(q.find("source")->as_number(), 0.0);
  EXPECT_DOUBLE_EQ(q.find("d")->as_number(), 2.0);
  const JsonValue& o = q.find("overrides")->as_array().front();
  EXPECT_DOUBLE_EQ(o.find("edge")->as_number(), 3.0);
  EXPECT_DOUBLE_EQ(o.find("p")->as_number(), 0.25);
  EXPECT_DOUBLE_EQ(doc.find("max_mask_tables")->as_number(), 16.0);
  EXPECT_EQ(doc.find("absent"), nullptr);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  const JsonValue doc = parse_json(R"({"z": 1, "a": 2, "m": 3})");
  const JsonValue::Object& members = doc.as_object();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(Json, EmptyContainers) {
  EXPECT_TRUE(parse_json("[]").as_array().empty());
  EXPECT_TRUE(parse_json("{}").as_object().empty());
  EXPECT_TRUE(parse_json("  [ ]  ").as_array().empty());
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), std::invalid_argument);
  EXPECT_THROW(parse_json("{"), std::invalid_argument);
  EXPECT_THROW(parse_json("[1, 2,]"), std::invalid_argument);
  EXPECT_THROW(parse_json("{\"a\" 1}"), std::invalid_argument);
  EXPECT_THROW(parse_json("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(parse_json("12 34"), std::invalid_argument);
  EXPECT_THROW(parse_json("tru"), std::invalid_argument);
  EXPECT_THROW(parse_json("1.2.3"), std::invalid_argument);
}

TEST(Json, KindMismatchThrows) {
  const JsonValue v = parse_json("42");
  EXPECT_THROW(v.as_string(), std::invalid_argument);
  EXPECT_THROW(v.as_array(), std::invalid_argument);
  EXPECT_THROW(v.as_object(), std::invalid_argument);
  EXPECT_THROW(parse_json("\"s\"").as_number(), std::invalid_argument);
}

}  // namespace
}  // namespace streamrel
