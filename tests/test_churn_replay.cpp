#include "streamrel/sim/churn_replay.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "streamrel/graph/generators.hpp"
#include "streamrel/p2p/churn.hpp"
#include "streamrel/sim/event_stream.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

GeneratedNetwork replay_instance(std::uint64_t seed = 11) {
  Xoshiro256 rng(seed);
  ClusteredParams params;
  params.nodes_s = 5;
  params.extra_edges_s = 3;
  params.nodes_t = 4;
  params.extra_edges_t = 2;
  params.bottleneck_links = 2;
  params.bottleneck_caps = {1, 3};
  return clustered_bottleneck(rng, params);
}

TEST(EventStream, ParsesTheDocumentedFormat) {
  const EventStream events = parse_event_stream(R"({
    "events": [
      { "time": 0.5, "label": "link 1 degrades",
        "set_failure_prob": [ {"edge": 1, "p": 0.25} ] },
      { "time": 1.0, "set_capacity": [ {"edge": 2, "c": 3} ] },
      { "time": 2.0, "label": "peer joins", "add_nodes": 1,
        "add_edge": [ {"u": 0, "v": 4, "c": 2, "p": 0.05} ] },
      { "time": 3.0, "remove_node": [2], "remove_edge": [0] }
    ] })");
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].label, "link 1 degrades");
  ASSERT_EQ(events[0].delta.prob_edits.size(), 1u);
  EXPECT_EQ(events[0].delta.prob_edits[0].edge, 1);
  EXPECT_EQ(events[0].delta.prob_edits[0].failure_prob, 0.25);
  EXPECT_EQ(events[0].delta.classify(), DeltaClass::kProbabilityOnly);
  EXPECT_EQ(events[1].delta.classify(), DeltaClass::kCapacityOnly);
  EXPECT_EQ(events[2].delta.nodes_added, 1);
  ASSERT_EQ(events[2].delta.edge_adds.size(), 1u);
  EXPECT_EQ(events[2].delta.edge_adds[0].kind, EdgeKind::kUndirected);
  EXPECT_EQ(events[3].delta.classify(), DeltaClass::kTopology);
}

TEST(EventStream, RejectsMalformedDocuments) {
  EXPECT_THROW(parse_event_stream("[]"), std::invalid_argument);
  EXPECT_THROW(parse_event_stream(R"({"events": [ {"label": "no time"} ]})"),
               std::invalid_argument);
  EXPECT_THROW(parse_event_stream(
                   R"({"events": [ {"time": 1, "remove_edge": [-1]} ]})"),
               std::invalid_argument);
}

TEST(EventStream, SortIsStableByTime) {
  EventStream events;
  for (int i = 0; i < 4; ++i) {
    ChurnEvent e;
    e.time = i < 2 ? 2.0 : 1.0;
    e.label = std::to_string(i);
    events.push_back(std::move(e));
  }
  sort_event_stream(events);
  EXPECT_EQ(events[0].label, "2");
  EXPECT_EQ(events[1].label, "3");
  EXPECT_EQ(events[2].label, "0");
  EXPECT_EQ(events[3].label, "1");
}

TEST(EventStream, GeneratorIsDeterministicAndReplayable) {
  const GeneratedNetwork gen = replay_instance();
  ChurnEventOptions options;
  options.events = 24;
  options.protect_node = gen.sink;
  const EventStream a = random_churn_events(gen.net, gen.source, options);
  const EventStream b = random_churn_events(gen.net, gen.source, options);
  ASSERT_EQ(a.size(), 24u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].label, b[i].label);
  }
  // Times are strictly increasing (exponential gaps, not a shuffle).
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_GT(a[i].time, a[i - 1].time);
  }
  // Every delta is valid against the evolving state: a cold replay
  // walks the whole stream without throwing.
  ReplayOptions replay;
  replay.use_session = false;
  const ReplayReport report =
      replay_churn(gen.net, {gen.source, gen.sink, 2}, a, replay);
  EXPECT_EQ(report.series.size(), a.size());
}

TEST(ChurnReplay, WarmSeriesIsBitwiseEqualToColdRecompile) {
  const GeneratedNetwork gen = replay_instance();
  const FlowDemand demand{gen.source, gen.sink, 2};
  ChurnEventOptions options;
  options.events = 20;
  options.protect_node = gen.sink;
  options.seed = 0xA11CE;
  const EventStream events =
      random_churn_events(gen.net, gen.source, options);

  ReplayOptions warm;
  ReplayOptions cold;
  cold.use_session = false;
  const ReplayReport warm_report =
      replay_churn(gen.net, demand, events, warm);
  const ReplayReport cold_report =
      replay_churn(gen.net, demand, events, cold);

  EXPECT_EQ(warm_report.initial_reliability, cold_report.initial_reliability);
  ASSERT_EQ(warm_report.series.size(), cold_report.series.size());
  for (std::size_t i = 0; i < warm_report.series.size(); ++i) {
    EXPECT_EQ(warm_report.series[i].reliability,
              cold_report.series[i].reliability)
        << "event " << i << " (" << events[i].label << ")";
    EXPECT_EQ(warm_report.series[i].applied, cold_report.series[i].applied);
  }
  EXPECT_EQ(warm_report.final_reliability, cold_report.final_reliability);
  EXPECT_EQ(warm_report.worst_event, cold_report.worst_event);

  // The warm run actually reused artifacts across events.
  EXPECT_GE(warm_report.artifact_survival_rate, 0.0);
  EXPECT_LE(warm_report.artifact_survival_rate, 1.0);
  EXPECT_EQ(cold_report.artifact_survival_rate, 0.0);
}

TEST(ChurnReplay, ProbabilityOnlyStreamSurvivesEverything) {
  const GeneratedNetwork gen = replay_instance();
  const FlowDemand demand{gen.source, gen.sink, 2};
  ChurnEventOptions options;
  options.events = 8;
  options.weight_degrade = 1.0;
  options.weight_capacity = 0.0;
  options.weight_leave = 0.0;
  options.weight_join = 0.0;
  const EventStream events =
      random_churn_events(gen.net, gen.source, options);
  for (const ChurnEvent& e : events) {
    ASSERT_EQ(e.delta.classify(), DeltaClass::kProbabilityOnly);
  }

  const ReplayReport report = replay_churn(gen.net, demand, events);
  EXPECT_EQ(report.artifact_survival_rate, 1.0);
  for (const ReplayEventOutcome& out : report.series) {
    EXPECT_EQ(out.entries_full, 0u);
    EXPECT_EQ(out.entries_partial, 0u);
  }
  // The session-level counter agrees with the per-event outcomes.
  std::uint64_t survived = 0;
  for (const ReplayEventOutcome& out : report.series) {
    survived += out.entries_survived;
  }
  EXPECT_GT(survived, 0u);
}

TEST(ChurnReplay, RemovingADemandEndpointThrows) {
  FlowNetwork net(3);
  net.add_undirected_edge(0, 1, 1, 0.1);
  net.add_undirected_edge(1, 2, 1, 0.1);
  EventStream events;
  ChurnEvent leave;
  leave.time = 1.0;
  leave.label = "sink leaves";
  leave.delta.remove_node(2);
  events.push_back(std::move(leave));
  EXPECT_THROW(replay_churn(net, {0, 2, 1}, events), std::invalid_argument);
}

TEST(ChurnReplay, EventAttributionTracksWorstEvent) {
  const GeneratedNetwork gen = replay_instance();
  const FlowDemand demand{gen.source, gen.sink, 2};
  // One harmless event, then one that severs a bottleneck-adjacent link.
  EventStream events;
  ChurnEvent mild;
  mild.time = 1.0;
  mild.label = "mild";
  mild.delta.set_failure_prob(0, gen.net.edge(0).failure_prob);
  events.push_back(mild);
  ChurnEvent harsh;
  harsh.time = 2.0;
  harsh.label = "harsh";
  for (EdgeId e = 0; e < gen.net.num_edges(); ++e) {
    harsh.delta.set_failure_prob(e, 0.9);
  }
  events.push_back(harsh);

  const ReplayReport report = replay_churn(gen.net, demand, events);
  ASSERT_EQ(report.series.size(), 2u);
  EXPECT_EQ(report.series[0].delta_r, 0.0);  // a no-op edit moves nothing
  EXPECT_LT(report.series[1].delta_r, 0.0);
  EXPECT_EQ(report.worst_event, 1);
}

TEST(ChurnDelta, MatchesTheModelPerLink) {
  const GeneratedNetwork gen = replay_instance();
  ChurnModel model;
  const NetworkDelta delta = churn_delta(gen.net, gen.source, model);
  ASSERT_EQ(delta.prob_edits.size(),
            static_cast<std::size_t>(gen.net.num_edges()));
  EXPECT_EQ(delta.classify(), DeltaClass::kProbabilityOnly);
  for (const NetworkDelta::ProbEdit& edit : delta.prob_edits) {
    const Edge& e = gen.net.edge(edit.edge);
    const int churning =
        (e.u == gen.source || e.v == gen.source) ? 1 : 2;
    EXPECT_EQ(edit.failure_prob, link_failure_prob(model, churning));
  }
  // The delta leaves the source network untouched until applied.
  FlowNetwork applied = gen.net;
  apply_delta_in_place(applied, delta);
  EXPECT_NE(applied.edge(0).failure_prob, gen.net.edge(0).failure_prob);
}

}  // namespace
}  // namespace streamrel
