#include "streamrel/util/prng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace streamrel {
namespace {

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Xoshiro256, ZeroSeedStillProducesVariedOutput) {
  Xoshiro256 rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(rng());
  EXPECT_GT(seen.size(), 60u);
}

TEST(Xoshiro256, UniformBelowStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform_below(bound), bound);
    }
  }
}

TEST(Xoshiro256, UniformBelowOneIsAlwaysZero) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(Xoshiro256, UniformBelowHitsAllResidues) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro256, UniformIntInclusiveRange) {
  Xoshiro256 rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, Uniform01InHalfOpenInterval) {
  Xoshiro256 rng(17);
  double mean = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    mean += x;
  }
  mean /= n;
  EXPECT_NEAR(mean, 0.5, 0.01);
}

TEST(Xoshiro256, BernoulliExtremes) {
  Xoshiro256 rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Xoshiro256, BernoulliFrequency) {
  Xoshiro256 rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Xoshiro256, JumpedStreamsDiffer) {
  Xoshiro256 a(31);
  Xoshiro256 b(31);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(SplitMix, KnownFirstOutputDiffersByState) {
  std::uint64_t s1 = 0, s2 = 1;
  EXPECT_NE(splitmix64(s1), splitmix64(s2));
}

TEST(SplitMix, MixSeedSpreadsPairs) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) seen.insert(mix_seed(a, b));
  }
  EXPECT_EQ(seen.size(), 256u);
}

}  // namespace
}  // namespace streamrel
