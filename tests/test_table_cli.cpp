#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "streamrel/util/cli.hpp"
#include "streamrel/util/table.hpp"

namespace streamrel {
namespace {

TEST(TextTable, AlignsColumnsAndPrintsHeaderRule) {
  TextTable t({"name", "value"});
  t.new_row().add_cell("alpha").add_cell(std::int64_t{42});
  t.new_row().add_cell("b").add_cell(std::int64_t{7});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Numeric column is right-aligned: " 7" not "7 ".
  EXPECT_NE(out.find("    7"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.new_row().add_cell(std::int64_t{1}).add_cell(std::int64_t{2});
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(TextTable, DoubleFormatting) {
  TextTable t({"x"});
  t.new_row().add_cell(0.123456789, 4);
  EXPECT_NE(t.to_string().find("0.1235"), std::string::npos);
}

TEST(TextTable, RejectsTooManyCells) {
  TextTable t({"only"});
  t.new_row().add_cell("one");
  EXPECT_THROW(t.add_cell("two"), std::logic_error);
}

TEST(TextTable, RejectsEmptyHeaders) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(FormatDouble, SignificantDigits) {
  EXPECT_EQ(format_double(0.5, 6), "0.5");
  EXPECT_EQ(format_double(1234567.0, 3), "1.23e+06");
}

TEST(CliArgs, ParsesEqualsAndSpaceForms) {
  // Note --flag must come last (or use --flag=1): a bare flag followed by
  // a non-flag token would consume it as a value.
  const char* argv[] = {"prog", "--alpha=0.5", "--count", "12", "pos1",
                        "--flag"};
  const CliArgs args(6, argv);
  EXPECT_TRUE(args.has("alpha"));
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 0.5);
  EXPECT_EQ(args.get_int("count", 0), 12);
  EXPECT_TRUE(args.get_bool("flag"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(CliArgs, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  const CliArgs args(1, argv);
  EXPECT_FALSE(args.has("anything"));
  EXPECT_EQ(args.get("name", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("n", -3), -3);
  EXPECT_FALSE(args.get_bool("b", false));
  EXPECT_TRUE(args.get_bool("b", true));
}

TEST(CliArgs, ExplicitBooleanValues) {
  const char* argv[] = {"prog", "--on=true", "--off=false"};
  const CliArgs args(3, argv);
  EXPECT_TRUE(args.get_bool("on"));
  EXPECT_FALSE(args.get_bool("off", true));
}

TEST(CliArgs, RejectsBadBoolean) {
  const char* argv[] = {"prog", "--weird=maybe"};
  const CliArgs args(2, argv);
  EXPECT_THROW(args.get_bool("weird"), std::invalid_argument);
}

TEST(CliArgs, ConsecutiveFlagsDontConsumeEachOther) {
  const char* argv[] = {"prog", "--a", "--b=2"};
  const CliArgs args(3, argv);
  EXPECT_TRUE(args.get_bool("a"));
  EXPECT_EQ(args.get_int("b", 0), 2);
}

}  // namespace
}  // namespace streamrel
