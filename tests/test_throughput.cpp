#include "streamrel/reliability/throughput.hpp"

#include <gtest/gtest.h>

#include "streamrel/core/bottleneck_algorithm.hpp"
#include "streamrel/graph/generators.hpp"
#include "streamrel/p2p/overlay.hpp"
#include "streamrel/p2p/scenario.hpp"
#include "streamrel/p2p/tree_builder.hpp"
#include "streamrel/reliability/naive.hpp"
#include "test_support.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

using testing::kTol;

TEST(Throughput, SingleLinkTwoLevels) {
  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 2, 0.3);
  const auto dist = throughput_distribution(net, {0, 1, 2});
  ASSERT_EQ(dist.at_least.size(), 2u);
  EXPECT_NEAR(dist.at_least[0], 0.7, kTol);  // >= 1: link up
  EXPECT_NEAR(dist.at_least[1], 0.7, kTol);  // >= 2: same link carries both
  EXPECT_NEAR(dist.expected_rate(), 1.4, kTol);
}

TEST(Throughput, ParallelPairLevels) {
  const FlowNetwork net = testing::parallel_pair(0.2, 0.4);
  const auto dist = throughput_distribution(net, {0, 1, 2});
  EXPECT_NEAR(dist.at_least[0], 1.0 - 0.2 * 0.4, kTol);
  EXPECT_NEAR(dist.at_least[1], 0.8 * 0.6, kTol);
  const auto exact = dist.exactly();
  ASSERT_EQ(exact.size(), 3u);
  EXPECT_NEAR(exact[0], 0.2 * 0.4, kTol);
  EXPECT_NEAR(exact[1], 0.8 * 0.4 + 0.2 * 0.6, kTol);
  EXPECT_NEAR(exact[2], 0.8 * 0.6, kTol);
}

TEST(Throughput, TopLevelMatchesReliability) {
  Xoshiro256 rng(888);
  for (int trial = 0; trial < 25; ++trial) {
    const GeneratedNetwork g = random_multigraph(
        rng, static_cast<int>(rng.uniform_int(2, 6)),
        static_cast<int>(rng.uniform_int(1, 10)), {1, 3}, {0.05, 0.5});
    const Capacity d = rng.uniform_int(1, 4);
    const auto dist = throughput_distribution(g.net, {g.source, g.sink, d});
    // P(>= v) must equal the reliability of demand v, for every v.
    for (Capacity v = 1; v <= d; ++v) {
      EXPECT_NEAR(dist.at_least[static_cast<std::size_t>(v - 1)],
                  reliability_naive(g.net, {g.source, g.sink, v}).reliability,
                  1e-9)
          << "trial " << trial << " v=" << v;
    }
  }
}

TEST(Throughput, AtLeastIsNonIncreasingAndExactlySumsToOne) {
  const GeneratedNetwork g = make_fig4_graph(0.25);
  const auto dist = throughput_distribution(g.net, {g.source, g.sink, 4});
  for (std::size_t v = 1; v < dist.at_least.size(); ++v) {
    EXPECT_LE(dist.at_least[v], dist.at_least[v - 1] + 1e-12);
  }
  double sum = 0.0;
  for (double p : dist.exactly()) {
    EXPECT_GE(p, -1e-12);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Throughput, QuantifiesStripingTradeOff) {
  // The splitstream story in one call: with 2 stripes, expected rate is
  // decent even though P(full rate) is low.
  Overlay overlay(5);
  StripedTreesOptions opts;
  opts.stripes = 2;
  opts.link_failure_prob = 0.15;
  add_striped_trees(overlay, opts);
  const auto dist = throughput_distribution(
      overlay.net(), overlay.demand_to(overlay.peer(4), 2));
  EXPECT_GT(dist.at_least[0], dist.at_least[1]);
  EXPECT_GT(dist.expected_rate(), dist.at_least[1] * 2.0);
}

TEST(Throughput, BottleneckVariantMatchesNaive) {
  const GeneratedNetwork g = make_fig4_graph(0.2);
  const FlowDemand demand{g.source, g.sink, 3};
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const auto direct = throughput_distribution(g.net, demand);
  const auto decomposed = throughput_bottleneck(g.net, demand, partition);
  ASSERT_EQ(decomposed.at_least.size(), direct.at_least.size());
  for (std::size_t v = 0; v < direct.at_least.size(); ++v) {
    EXPECT_NEAR(decomposed.at_least[v], direct.at_least[v], 1e-9) << v;
  }
  EXPECT_NEAR(decomposed.expected_rate(), direct.expected_rate(), 1e-9);
}

TEST(Throughput, RejectsOversizedNetworks) {
  FlowNetwork net(2);
  for (int i = 0; i < 64; ++i) net.add_undirected_edge(0, 1, 1, 0.1);
  EXPECT_THROW(throughput_distribution(net, {0, 1, 1}),
               std::invalid_argument);
}

}  // namespace
}  // namespace streamrel
