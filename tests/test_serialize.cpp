// graph/serialize.hpp: the canonical binary forms. The load-bearing
// claims under test: every column of a compiled snapshot round-trips
// BITWISE (including the precomputed log columns), a delta-patched
// lineage round-trips through serialize/deserialize + builder rebuild,
// and EVERY single-byte corruption or truncation of a payload is
// rejected with BinReadError — never adopted, never UB.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "streamrel/graph/compiled.hpp"
#include "streamrel/graph/delta.hpp"
#include "streamrel/graph/flow_network.hpp"
#include "streamrel/graph/serialize.hpp"
#include "streamrel/util/binio.hpp"

namespace streamrel {
namespace {

/// A small mixed network: directed + undirected edges, a zero-probability
/// edge (log_failure = -inf), varied capacities, an isolated node.
FlowNetwork mixed_network() {
  FlowNetwork net(6);
  net.add_undirected_edge(0, 1, 3, 0.1);
  net.add_directed_edge(1, 2, 2, 0.2547829);
  net.add_undirected_edge(2, 3, 1, 0.0);  // never fails: log p = -inf
  net.add_directed_edge(0, 4, 5, 0.75);
  net.add_undirected_edge(4, 3, 2, 1.0 / 3.0);  // not exactly representable
  net.add_undirected_edge(1, 4, 1, 0.999999);
  return net;  // node 5 stays isolated (empty CSR row)
}

/// Bitwise equality over every persisted column of two snapshots.
void expect_bitwise_equal(const CompiledNetwork& a, const CompiledNetwork& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge_u(e), b.edge_u(e)) << "edge " << e;
    EXPECT_EQ(a.edge_v(e), b.edge_v(e)) << "edge " << e;
    EXPECT_EQ(a.edge_kind(e), b.edge_kind(e)) << "edge " << e;
    EXPECT_EQ(a.edge_capacity(e), b.edge_capacity(e)) << "edge " << e;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.failure_prob(e)),
              std::bit_cast<std::uint64_t>(b.failure_prob(e)))
        << "p, edge " << e;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.log_failure(e)),
              std::bit_cast<std::uint64_t>(b.log_failure(e)))
        << "log p, edge " << e;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.log_survival(e)),
              std::bit_cast<std::uint64_t>(b.log_survival(e)))
        << "log1p(-p), edge " << e;
  }
  for (NodeId n = 0; n < a.num_nodes(); ++n) {
    const auto ia = a.incident_edges(n);
    const auto ib = b.incident_edges(n);
    ASSERT_EQ(ia.size(), ib.size()) << "node " << n;
    for (std::size_t i = 0; i < ia.size(); ++i) {
      EXPECT_EQ(ia[i], ib[i]) << "node " << n << " slot " << i;
    }
  }
}

TEST(SerializeCompiled, RoundTripIsBitwise) {
  const auto snapshot = CompiledNetwork::compile(mixed_network());
  const std::string bytes = serialize_compiled(*snapshot);
  const auto restored = deserialize_compiled(bytes);
  expect_bitwise_equal(*snapshot, *restored);
}

TEST(SerializeCompiled, RestoredStructureIdIsFresh) {
  const auto snapshot = CompiledNetwork::compile(mixed_network());
  const std::string bytes = serialize_compiled(*snapshot);
  const auto restored = deserialize_compiled(bytes);
  EXPECT_NE(restored->structure_id(), snapshot->structure_id());
  EXPECT_EQ(restored->parent_structure_id(), 0u);
}

TEST(SerializeCompiled, BuilderFromCompiledRecompilesIdentically) {
  const auto snapshot = CompiledNetwork::compile(mixed_network());
  const FlowNetwork rebuilt = builder_from_compiled(*snapshot);
  ASSERT_EQ(rebuilt.num_nodes(), snapshot->num_nodes());
  ASSERT_EQ(rebuilt.num_edges(), snapshot->num_edges());
  const auto recompiled = CompiledNetwork::compile(rebuilt);
  expect_bitwise_equal(*snapshot, *recompiled);
}

TEST(SerializeCompiled, DeltaPatchedLineageRoundTrips) {
  // Walk a snapshot through every delta class, then persist and restore
  // the final member of the lineage: the restored arrays must match the
  // live successor bitwise, even though the successor was produced by
  // apply_delta patches rather than a fresh compile.
  auto snapshot = CompiledNetwork::compile(mixed_network());

  NetworkDelta prob;
  prob.set_failure_prob(1, 0.42);
  snapshot = snapshot->apply_delta(prob).snapshot;

  NetworkDelta cap;
  cap.set_capacity(0, 7);
  snapshot = snapshot->apply_delta(cap).snapshot;

  NetworkDelta topo;
  const NodeId fresh = topo.add_node(snapshot->num_nodes());
  topo.add_edge(5, fresh, 2, 0.31, EdgeKind::kUndirected);
  topo.remove_edge(2);
  snapshot = snapshot->apply_delta(topo).snapshot;

  const std::string bytes = serialize_compiled(*snapshot);
  const auto restored = deserialize_compiled(bytes);
  expect_bitwise_equal(*snapshot, *restored);

  // And the restored snapshot keeps working as a delta base.
  NetworkDelta again;
  again.set_failure_prob(0, 0.9);
  const auto successor = restored->apply_delta(again).snapshot;
  EXPECT_DOUBLE_EQ(successor->failure_prob(0), 0.9);
}

TEST(SerializeCompiled, EverySingleByteFlipIsRejected) {
  const auto snapshot = CompiledNetwork::compile(mixed_network());
  const std::string bytes = serialize_compiled(*snapshot);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    EXPECT_THROW(deserialize_compiled(mutated), BinReadError)
        << "byte " << i << " of " << bytes.size();
  }
}

TEST(SerializeCompiled, TruncationIsRejected) {
  const auto snapshot = CompiledNetwork::compile(mixed_network());
  const std::string bytes = serialize_compiled(*snapshot);
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{4}, bytes.size() / 2,
        bytes.size() - 1}) {
    EXPECT_THROW(deserialize_compiled(bytes.substr(0, keep)), BinReadError)
        << "kept " << keep << " of " << bytes.size();
  }
}

NetworkDelta full_delta() {
  NetworkDelta delta;
  delta.set_failure_prob(0, 0.25);
  delta.set_failure_prob(3, 1.0 / 7.0);
  delta.set_capacity(1, 9);
  const NodeId n6 = delta.add_node(6);
  const NodeId n7 = delta.add_node(6);
  delta.add_edge(0, n6, 4, 0.125, EdgeKind::kDirected);
  delta.add_edge(n6, n7, 1, 0.5, EdgeKind::kUndirected);
  delta.remove_edge(2);
  delta.remove_node(5);
  return delta;
}

TEST(SerializeDelta, RoundTripPreservesEveryField) {
  const NetworkDelta delta = full_delta();
  const NetworkDelta out = deserialize_delta(serialize_delta(delta));
  ASSERT_EQ(out.prob_edits.size(), delta.prob_edits.size());
  for (std::size_t i = 0; i < delta.prob_edits.size(); ++i) {
    EXPECT_EQ(out.prob_edits[i].edge, delta.prob_edits[i].edge);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out.prob_edits[i].failure_prob),
              std::bit_cast<std::uint64_t>(delta.prob_edits[i].failure_prob));
  }
  ASSERT_EQ(out.capacity_edits.size(), delta.capacity_edits.size());
  EXPECT_EQ(out.capacity_edits[0].edge, delta.capacity_edits[0].edge);
  EXPECT_EQ(out.capacity_edits[0].capacity, delta.capacity_edits[0].capacity);
  ASSERT_EQ(out.edge_adds.size(), delta.edge_adds.size());
  for (std::size_t i = 0; i < delta.edge_adds.size(); ++i) {
    EXPECT_EQ(out.edge_adds[i].u, delta.edge_adds[i].u);
    EXPECT_EQ(out.edge_adds[i].v, delta.edge_adds[i].v);
    EXPECT_EQ(out.edge_adds[i].capacity, delta.edge_adds[i].capacity);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out.edge_adds[i].failure_prob),
              std::bit_cast<std::uint64_t>(delta.edge_adds[i].failure_prob));
    EXPECT_EQ(out.edge_adds[i].kind, delta.edge_adds[i].kind);
  }
  EXPECT_EQ(out.edge_removes, delta.edge_removes);
  EXPECT_EQ(out.node_removes, delta.node_removes);
  EXPECT_EQ(out.nodes_added, delta.nodes_added);
}

TEST(SerializeDelta, EmptyDeltaRoundTrips) {
  const NetworkDelta out = deserialize_delta(serialize_delta(NetworkDelta{}));
  EXPECT_TRUE(out.empty());
}

TEST(SerializeDelta, EverySingleByteFlipIsRejected) {
  const std::string bytes = serialize_delta(full_delta());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    EXPECT_THROW(deserialize_delta(mutated), BinReadError)
        << "byte " << i << " of " << bytes.size();
  }
}

TEST(SerializeLineage, RoundTripsChain) {
  std::vector<DeltaRecord> lineage(3);
  lineage[0] = {301, 300, DeltaClass::kTopology, 0, 2, 1, 1, 0};
  lineage[1] = {300, 299, DeltaClass::kCapacityOnly, 4, 0, 0, 0, 0};
  lineage[2] = {299, 0, DeltaClass::kProbabilityOnly, 0, 0, 0, 0, 0};
  const std::vector<DeltaRecord> out =
      deserialize_lineage(serialize_lineage(lineage));
  ASSERT_EQ(out.size(), lineage.size());
  for (std::size_t i = 0; i < lineage.size(); ++i) {
    EXPECT_EQ(out[i].structure_id, lineage[i].structure_id);
    EXPECT_EQ(out[i].parent_structure_id, lineage[i].parent_structure_id);
    EXPECT_EQ(out[i].delta_class, lineage[i].delta_class);
    EXPECT_EQ(out[i].capacity_edits, lineage[i].capacity_edits);
    EXPECT_EQ(out[i].edges_added, lineage[i].edges_added);
    EXPECT_EQ(out[i].edges_removed, lineage[i].edges_removed);
    EXPECT_EQ(out[i].nodes_added, lineage[i].nodes_added);
    EXPECT_EQ(out[i].nodes_removed, lineage[i].nodes_removed);
  }
  EXPECT_TRUE(deserialize_lineage(serialize_lineage({})).empty());
}

TEST(BinIo, Crc32MatchesKnownVector) {
  // The ISO-HDLC check value: crc32("123456789") = 0xCBF43926.
  const char data[] = "123456789";
  EXPECT_EQ(crc32(data, 9), 0xCBF43926u);
  // Chaining across a split equals one pass.
  const std::uint32_t first = crc32(data, 4);
  EXPECT_EQ(crc32(data + 4, 5, first), 0xCBF43926u);
}

TEST(BinIo, DoubleRoundTripsBitwise) {
  BinaryWriter writer;
  const double values[] = {0.0, -0.0, 1.0 / 3.0,
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN()};
  for (const double v : values) writer.f64(v);
  BinaryReader reader(writer.bytes());
  for (const double v : values) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(reader.f64()),
              std::bit_cast<std::uint64_t>(v));
  }
  EXPECT_TRUE(reader.at_end());
}

}  // namespace
}  // namespace streamrel
