// The bit-parallel slab sweep must be an exact drop-in for the paper's
// from-scratch procedure: bitwise-identical side arrays and fold
// distributions across kScratch / kGrayIncremental / kBitParallel on a
// large population of seeded graphs, full decision accounting
// (word-wide lanes + scalar residue == configurations x |D|), and a
// strictly smaller solver bill than scratch on non-trivial arrays.
// Also covers the BitSlabs primitives: the Gray-slab fill identity,
// gray_rank, slab/config form roundtrips, and the dispatched lane
// product kernel against its portable reference.

#include "streamrel/core/bit_slabs.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "streamrel/core/side_array.hpp"
#include "streamrel/graph/generators.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

TEST(GrayRank, InvertsGrayCodeAcrossTheMaskRange) {
  for (Mask i = 0; i < 4096; ++i) {
    EXPECT_EQ(gray_rank(gray_code(i)), i);
    EXPECT_EQ(gray_code(gray_rank(i)), i);
  }
  for (const Mask i : {Mask{1} << 20, (Mask{1} << 40) + 12345,
                       (Mask{1} << 62) + 987654321, ~Mask{0} >> 1}) {
    EXPECT_EQ(gray_rank(gray_code(i)), i);
  }
}

TEST(BitSlabs, FillMatchesThePerLaneDefinition) {
  const int edges = 10;
  BitSlabs slabs(edges);
  for (const Mask base : {Mask{0}, Mask{64}, Mask{128}, Mask{1} << 9,
                          (Mask{1} << 9) - 64}) {
    slabs.fill(base);
    for (int e = 0; e < edges; ++e) {
      for (int lane = 0; lane < 64; ++lane) {
        const Mask config = gray_code(base + static_cast<Mask>(lane));
        EXPECT_EQ(test_bit(slabs.word(e), lane), test_bit(config, e))
            << "base " << base << " edge " << e << " lane " << lane;
      }
    }
  }
}

TEST(BitSlabs, LowPatternIsTheBaseZeroSlab) {
  BitSlabs slabs(kMaxMaskBits);
  slabs.fill(0);
  for (int e = 0; e < kMaxMaskBits; ++e) {
    EXPECT_EQ(slabs.word(e), BitSlabs::low_pattern(e));
  }
  EXPECT_EQ(BitSlabs::low_pattern(6), 0u);  // gray codes < 64 use bits 0..5
}

TEST(BitSlabs, RejectsUnalignedBaseAndBadEdgeCounts) {
  EXPECT_THROW(BitSlabs(-1), std::invalid_argument);
  EXPECT_THROW(BitSlabs(kMaxMaskBits + 1), std::invalid_argument);
  BitSlabs slabs(4);
  EXPECT_THROW(slabs.fill(1), std::invalid_argument);
  EXPECT_THROW(slabs.fill(63), std::invalid_argument);
  EXPECT_NO_THROW(slabs.fill(0));
}

TEST(SlabMaskTable, RoundTripsWithTheConfigIndexedForm) {
  Xoshiro256 rng(20260808);
  const int links = 7;
  std::vector<Mask> array(std::size_t{1} << links);
  for (Mask& m : array) m = rng() & 0xFF;

  const SlabMaskTable table = slab_form(array, links);
  EXPECT_EQ(table.num_links, links);
  EXPECT_EQ(config_form(table), array);
  for (Mask config = 0; config < (Mask{1} << links); ++config) {
    EXPECT_EQ(table.at_config(config),
              array[static_cast<std::size_t>(config)]);
  }
  for (Mask rank = 0; rank < (Mask{1} << links); ++rank) {
    EXPECT_EQ(table.at_rank(rank),
              array[static_cast<std::size_t>(gray_code(rank))]);
  }
  EXPECT_THROW(slab_form(array, links + 1), std::invalid_argument);
}

TEST(LaneProducts, DispatchedKernelIsBitwiseEqualToPortable) {
  Xoshiro256 rng(424242);
  for (int trial = 0; trial < 50; ++trial) {
    const int edges = 1 + static_cast<int>(rng.uniform_below(20));
    const int lanes = 1 + static_cast<int>(rng.uniform_below(64));
    std::vector<std::uint64_t> words(static_cast<std::size_t>(edges));
    std::vector<double> probs(static_cast<std::size_t>(edges));
    for (auto& w : words) w = rng();
    for (auto& p : probs) p = rng.uniform01();

    std::array<double, 64> dispatched{};
    std::array<double, 64> portable{};
    lane_config_products(words, probs, lanes, dispatched.data());
    lane_config_products_portable(words, probs, lanes, portable.data());
    EXPECT_EQ(0, std::memcmp(dispatched.data(), portable.data(),
                             static_cast<std::size_t>(lanes) *
                                 sizeof(double)))
        << "trial " << trial << " edges " << edges << " lanes " << lanes;
  }
}

SideArrayOptions sweep_options(SideSweepStrategy sweep,
                               FeasibilityMethod f = FeasibilityMethod::kPerAssignment) {
  SideArrayOptions o;
  o.feasibility = f;
  o.parallel = false;
  o.sweep = sweep;
  o.monotone_pruning = true;
  return o;
}

void expect_same_distribution(const MaskDistribution& a,
                              const MaskDistribution& b, const char* what) {
  ASSERT_EQ(a.buckets.size(), b.buckets.size()) << what;
  for (std::size_t i = 0; i < a.buckets.size(); ++i) {
    EXPECT_EQ(a.buckets[i].first, b.buckets[i].first) << what;
    EXPECT_EQ(a.buckets[i].second, b.buckets[i].second) << what;  // bitwise
  }
  EXPECT_EQ(a.total, b.total) << what;
}

// The heart of the contract: on 200 seeded clustered graphs (sides from
// a handful of links — partial slabs — up to ~2^10 configurations),
// every strategy produces the SAME bytes, the slab sweep answers
// every (configuration, assignment) decision exactly once between its
// word-wide kernels and the scalar residue, and never solves more
// max-flows than the from-scratch sweep.
TEST(BitParallelSweep, MatchesScratchOn200SeededGraphs) {
  Xoshiro256 rng(20260807);
  int nontrivial = 0;
  for (int trial = 0; trial < 200; ++trial) {
    ClusteredParams params;
    params.nodes_s = 3 + static_cast<int>(rng.uniform_below(4));
    params.nodes_t = 3 + static_cast<int>(rng.uniform_below(4));
    params.extra_edges_s = static_cast<int>(rng.uniform_below(4));
    params.extra_edges_t = static_cast<int>(rng.uniform_below(4));
    params.bottleneck_links = 1 + static_cast<int>(rng.uniform_below(3));
    params.bottleneck_caps = {1, 3};
    const GeneratedNetwork g = clustered_bottleneck(rng, params);
    const BottleneckPartition partition =
        partition_from_sides(g.net, g.source, g.sink, g.side_s);
    const Capacity d = rng.uniform_int(1, 3);

    for (const AssignmentMode mode :
         {AssignmentMode::kForwardOnly, AssignmentMode::kSigned}) {
      AssignmentSet assignments;
      try {
        assignments = enumerate_assignments(g.net, partition, d, {mode});
      } catch (const std::invalid_argument&) {
        continue;  // |D| guard tripped; irrelevant here
      }
      if (assignments.size() == 0) continue;

      for (const bool source_side : {true, false}) {
        const SideProblem side = make_side_problem(
            g.net, {g.source, g.sink, d}, partition, source_side);

        SideArrayStats scratch_stats;
        const std::vector<Mask> scratch = build_side_array(
            side, assignments, d,
            sweep_options(SideSweepStrategy::kScratch), &scratch_stats);
        SideArrayStats gray_stats;
        const std::vector<Mask> gray = build_side_array(
            side, assignments, d,
            sweep_options(SideSweepStrategy::kGrayIncremental), &gray_stats);
        SideArrayStats bit_stats;
        const std::vector<Mask> bit_parallel = build_side_array(
            side, assignments, d,
            sweep_options(SideSweepStrategy::kBitParallel), &bit_stats);

        ASSERT_EQ(scratch, gray)
            << "trial " << trial << " source_side " << source_side;
        ASSERT_EQ(scratch, bit_parallel)
            << "trial " << trial << " source_side " << source_side;

        // Full decision accounting: every (configuration, assignment)
        // pair is decided exactly once, word-wide or by the residue.
        const std::uint64_t decisions =
            static_cast<std::uint64_t>(scratch.size()) *
            static_cast<std::uint64_t>(assignments.size());
        EXPECT_EQ(bit_stats.lanes_decided_wordwise() +
                      bit_stats.scalar_residue(),
                  decisions)
            << "trial " << trial << " source_side " << source_side;
        EXPECT_LE(bit_stats.maxflow_calls(), scratch_stats.maxflow_calls());
        if (scratch.size() >= 64) ++nontrivial;

        // The fold is a pure function of (array, probabilities): every
        // strategy and both resting forms produce bitwise identical
        // distributions.
        const MaskDistribution dist = bucket_side_array(side, scratch);
        expect_same_distribution(dist, bucket_side_array(side, bit_parallel),
                                 "fold(bit_parallel)");
        expect_same_distribution(
            dist,
            bucket_side_array(side,
                              slab_form(scratch, side.view.num_edges())),
            "fold(slab form)");
      }
    }
  }
  EXPECT_GT(nontrivial, 50);  // the population exercises full slabs
}

TEST(BitParallelSweep, PolymatroidRequestDelegatesToGray) {
  Xoshiro256 rng(7);
  ClusteredParams params;
  params.nodes_s = 6;
  params.extra_edges_s = 3;
  params.nodes_t = 4;
  params.extra_edges_t = 1;
  params.bottleneck_links = 2;
  params.bottleneck_caps = {1, 3};
  const GeneratedNetwork g = clustered_bottleneck(rng, params);
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const Capacity d = 2;
  const AssignmentSet forward = enumerate_assignments(
      g.net, partition, d, {AssignmentMode::kForwardOnly});
  ASSERT_GT(forward.size(), 0);
  const SideProblem side =
      make_side_problem(g.net, {g.source, g.sink, d}, partition, true);

  SideArrayStats bit_stats;
  const std::vector<Mask> bit_parallel = build_side_array(
      side, forward, d,
      sweep_options(SideSweepStrategy::kBitParallel,
                    FeasibilityMethod::kPolymatroid),
      &bit_stats);
  const std::vector<Mask> gray = build_side_array(
      side, forward, d,
      sweep_options(SideSweepStrategy::kGrayIncremental,
                    FeasibilityMethod::kPolymatroid));
  EXPECT_EQ(bit_parallel, gray);
  // The delegation really ran the Gray engine bank: no slab lanes.
  EXPECT_EQ(bit_stats.lanes_decided_wordwise(), 0u);
  EXPECT_EQ(bit_stats.scalar_residue(), 0u);
}

TEST(BitParallelSweep, SlabBuilderMatchesTheVectorBuilder) {
  Xoshiro256 rng(99);
  ClusteredParams params;
  params.nodes_s = 5;
  params.extra_edges_s = 2;
  params.nodes_t = 4;
  params.extra_edges_t = 1;
  params.bottleneck_links = 2;
  params.bottleneck_caps = {1, 3};
  const GeneratedNetwork g = clustered_bottleneck(rng, params);
  const BottleneckPartition partition =
      partition_from_sides(g.net, g.source, g.sink, g.side_s);
  const Capacity d = 2;
  const AssignmentSet forward = enumerate_assignments(
      g.net, partition, d, {AssignmentMode::kForwardOnly});
  ASSERT_GT(forward.size(), 0);

  for (const bool source_side : {true, false}) {
    const SideProblem side = make_side_problem(
        g.net, {g.source, g.sink, d}, partition, source_side);
    SideArrayStats vec_stats;
    const std::vector<Mask> array =
        build_side_array(side, forward, d,
                         sweep_options(SideSweepStrategy::kBitParallel),
                         &vec_stats);
    SideArrayStats slab_stats;
    const SlabMaskTable table = build_side_array_slab(
        side, forward, d, sweep_options(SideSweepStrategy::kBitParallel),
        &slab_stats);
    EXPECT_EQ(config_form(table), array);
    EXPECT_EQ(table.num_links, side.view.num_edges());
    // Same sweep underneath: the counters agree exactly.
    EXPECT_TRUE(
        vec_stats.telemetry.counters_equal(slab_stats.telemetry));
    expect_same_distribution(bucket_side_array(side, array),
                             bucket_side_array(side, table), "slab builder");
  }
}

}  // namespace
}  // namespace streamrel
