#include "streamrel/core/batch_evaluator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "streamrel/graph/generators.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

GeneratedNetwork test_instance(std::uint64_t seed = 7) {
  Xoshiro256 rng(seed);
  ClusteredParams params;
  params.nodes_s = 5;
  params.extra_edges_s = 3;
  params.nodes_t = 4;
  params.extra_edges_t = 2;
  params.bottleneck_links = 2;
  params.bottleneck_caps = {1, 3};
  return clustered_bottleneck(rng, params);
}

TEST(BatchEvaluator, MatchesIndependentFacadeSolvesBitwise) {
  const GeneratedNetwork g = test_instance();
  const FlowDemand demand{g.source, g.sink, 2};

  Xoshiro256 rng(99);
  std::vector<WhatIfQuery> queries(16);
  for (WhatIfQuery& q : queries) {
    q.demand = demand;
    q.prob_overrides.push_back(ProbOverride{
        static_cast<EdgeId>(
            rng.uniform_below(static_cast<std::uint64_t>(g.net.num_edges()))),
        rng.uniform_real(0.01, 0.4)});
  }

  QuerySession session(g.net);
  BatchEvaluator evaluator(session);
  const BatchReport batch = evaluator.evaluate(queries);

  ASSERT_EQ(batch.reports.size(), queries.size());
  EXPECT_EQ(batch.exact_count, static_cast<int>(queries.size()));
  EXPECT_GT(session.cache_hits(), 0u);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    FlowNetwork edited = g.net;
    for (const ProbOverride& o : queries[i].prob_overrides) {
      edited.set_failure_prob(o.edge, o.failure_prob);
    }
    const SolveReport facade = compute_reliability(edited, demand);
    EXPECT_EQ(batch.reports[i].result.reliability, facade.result.reliability)
        << "query " << i;
  }
}

TEST(BatchEvaluator, SerialAndParallelAccumulationAgreeBitwise) {
  const GeneratedNetwork g = test_instance();
  std::vector<WhatIfQuery> queries(8);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    queries[i].demand = {g.source, g.sink, 2};
    queries[i].prob_overrides.push_back(
        ProbOverride{static_cast<EdgeId>(i % 4), 0.1 + 0.05 * static_cast<double>(i)});
  }

  QuerySession parallel_session(g.net);
  BatchOptions parallel_opts;
  parallel_opts.parallel_accumulate = true;
  const BatchReport parallel_batch =
      BatchEvaluator(parallel_session).evaluate(queries, parallel_opts);

  QuerySession serial_session(g.net);
  BatchOptions serial_opts;
  serial_opts.parallel_accumulate = false;
  const BatchReport serial_batch =
      BatchEvaluator(serial_session).evaluate(queries, serial_opts);

  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(parallel_batch.reports[i].result.reliability,
              serial_batch.reports[i].result.reliability);
  }
  // Counters are deterministic across thread policies.
  EXPECT_TRUE(parallel_batch.telemetry.counters_equal(serial_batch.telemetry));
}

TEST(BatchEvaluator, ExpiredBatchDeadlineDegradesWithoutThrowing) {
  const GeneratedNetwork g = test_instance();
  std::vector<WhatIfQuery> queries(4);
  for (WhatIfQuery& q : queries) q.demand = {g.source, g.sink, 2};

  QuerySession session(g.net);
  BatchOptions options;
  options.deadline_ms = 0.0001;  // expires before any work
  BatchReport batch;
  EXPECT_NO_THROW(batch = BatchEvaluator(session).evaluate(queries, options));
  ASSERT_EQ(batch.reports.size(), queries.size());
  for (const SolveReport& report : batch.reports) {
    EXPECT_NE(report.result.status, SolveStatus::kExact);
    ASSERT_TRUE(report.bounds.has_value());
    EXPECT_LE(report.bounds->lower, report.bounds->upper);
  }
  EXPECT_EQ(batch.exact_count, 0);
}

TEST(BatchEvaluator, MixedMethodsFallBackPerQuery) {
  const GeneratedNetwork g = test_instance();
  std::vector<WhatIfQuery> queries(2);
  queries[0].demand = {g.source, g.sink, 2};
  queries[0].method = Method::kAuto;
  queries[1].demand = {g.source, g.sink, 2};
  queries[1].method = Method::kNaive;  // not cache-served

  QuerySession session(g.net);
  const BatchReport batch = BatchEvaluator(session).evaluate(queries);
  EXPECT_EQ(batch.telemetry.counter_or(telemetry_keys::kFallbackSolves), 1u);
  // Both roads lead to the same exact number.
  EXPECT_DOUBLE_EQ(batch.reports[0].result.reliability,
                   batch.reports[1].result.reliability);
  EXPECT_EQ(batch.reports[1].method_used, Method::kNaive);
}

TEST(BatchEvaluator, InvalidQueryThrowsBeforeResults) {
  const GeneratedNetwork g = test_instance();
  std::vector<WhatIfQuery> queries(1);
  queries[0].demand = {g.source, g.sink, 1};
  queries[0].prob_overrides.push_back(ProbOverride{g.net.num_edges(), 0.5});

  QuerySession session(g.net);
  BatchEvaluator evaluator(session);
  EXPECT_THROW(evaluator.evaluate(queries), std::invalid_argument);
}

TEST(BatchEvaluator, EvictionDuringBatchKeepsPinnedEntriesAlive) {
  const GeneratedNetwork g = test_instance();

  // Bound 1 with two interleaved demands: every prepare evicts the other
  // demand's table, yet the pinned shared_ptrs must keep in-flight
  // accumulations valid.
  QueryCacheOptions cache;
  cache.max_mask_tables = 1;
  QuerySession session(g.net, cache);

  std::vector<WhatIfQuery> queries(8);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    // Rates 2 and 3: rate-1 undirected queries are reduction-eligible and
    // would bypass the caches entirely.
    queries[i].demand = {g.source, g.sink, static_cast<Capacity>(2 + i % 2)};
  }
  const BatchReport batch = BatchEvaluator(session).evaluate(queries);
  EXPECT_GE(session.cache_evictions(), 1u);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batch.reports[i].result.reliability,
              compute_reliability(g.net, queries[i].demand).result.reliability);
  }
}

}  // namespace
}  // namespace streamrel
