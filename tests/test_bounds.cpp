#include "streamrel/reliability/bounds.hpp"

#include <gtest/gtest.h>

#include "streamrel/graph/generators.hpp"
#include "streamrel/p2p/scenario.hpp"
#include "streamrel/reliability/naive.hpp"
#include "test_support.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

TEST(Bounds, TightOnSeriesPath) {
  // One routing covering everything; the single-edge cuts give the exact
  // upper bound only when one link dominates, but the envelope always
  // holds and the lower bound is exact for a path.
  const FlowNetwork net = testing::series_pair(0.1, 0.2);
  const FlowDemand demand{0, 2, 1};
  const ReliabilityBounds bounds = reliability_bounds(net, demand);
  const double exact = reliability_naive(net, demand).reliability;
  EXPECT_TRUE(bounds.contains(exact));
  EXPECT_NEAR(bounds.lower, exact, 1e-12);  // the path IS the routing
  EXPECT_NEAR(bounds.upper, 0.8, 1e-12);    // best single-edge cut
}

TEST(Bounds, TightOnParallelBundle) {
  const FlowNetwork net = testing::parallel_pair(0.3, 0.4);
  const FlowDemand demand{0, 1, 1};
  const ReliabilityBounds bounds = reliability_bounds(net, demand);
  const double exact = reliability_naive(net, demand).reliability;
  // The two parallel links are both the only cut (upper exact) and two
  // disjoint routings (lower exact).
  EXPECT_NEAR(bounds.lower, exact, 1e-12);
  EXPECT_NEAR(bounds.upper, exact, 1e-12);
}

TEST(Bounds, EnvelopeHoldsOnRandomNetworks) {
  Xoshiro256 rng(13579);
  int nontrivial = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const EdgeKind kind = (trial % 2 == 0) ? EdgeKind::kUndirected
                                           : EdgeKind::kDirected;
    const GeneratedNetwork g = random_multigraph(
        rng, static_cast<int>(rng.uniform_int(2, 7)),
        static_cast<int>(rng.uniform_int(1, 12)), {1, 3}, {0.05, 0.5}, kind);
    const FlowDemand demand{g.source, g.sink, rng.uniform_int(1, 2)};
    const ReliabilityBounds bounds = reliability_bounds(g.net, demand);
    const double exact = reliability_naive(g.net, demand).reliability;
    ASSERT_TRUE(bounds.contains(exact))
        << "trial " << trial << ": [" << bounds.lower << ", " << bounds.upper
        << "] vs " << exact;
    if (bounds.lower > 0.0 && bounds.upper < 1.0) ++nontrivial;
  }
  EXPECT_GT(nontrivial, 10);  // the bounds actually bite
}

TEST(Bounds, InfeasibleDemandCollapsesToZero) {
  const GeneratedNetwork g = path_network(3, 1, 0.1);
  const ReliabilityBounds bounds =
      reliability_bounds(g.net, {g.source, g.sink, 2});
  EXPECT_DOUBLE_EQ(bounds.upper, 0.0);
  EXPECT_DOUBLE_EQ(bounds.lower, 0.0);
}

TEST(Bounds, DisconnectedNetworkIsZero) {
  FlowNetwork net(4);
  net.add_undirected_edge(0, 1, 1, 0.1);
  net.add_undirected_edge(2, 3, 1, 0.1);
  const ReliabilityBounds bounds = reliability_bounds(net, {0, 3, 1});
  EXPECT_DOUBLE_EQ(bounds.upper, 0.0);
  EXPECT_DOUBLE_EQ(bounds.lower, 0.0);
}

TEST(Bounds, PerfectLinksGiveCertainty) {
  const GeneratedNetwork g = parallel_links(3, 1, 0.0);
  const ReliabilityBounds bounds =
      reliability_bounds(g.net, {g.source, g.sink, 1});
  EXPECT_DOUBLE_EQ(bounds.lower, 1.0);
  EXPECT_DOUBLE_EQ(bounds.upper, 1.0);
}

TEST(Bounds, WorksBeyondTheMaskLimit) {
  // 70 parallel links at p = 0.5: both bounds stay valid without any
  // exhaustive enumeration (cut of size 70 is skipped; min-capacity cut
  // keeps the upper bound at 1, routings push the lower bound up).
  FlowNetwork net(2);
  for (int i = 0; i < 70; ++i) net.add_undirected_edge(0, 1, 1, 0.5);
  const ReliabilityBounds bounds = reliability_bounds(net, {0, 1, 1});
  EXPECT_GT(bounds.lower, 0.9999);
  EXPECT_LE(bounds.lower, bounds.upper);
}

TEST(Bounds, ReportsFamilySizes) {
  const GeneratedNetwork g = make_fig2_bridge_graph(0.1);
  const ReliabilityBounds bounds =
      reliability_bounds(g.net, {g.source, g.sink, 1});
  EXPECT_GT(bounds.cuts_used, 0);
  EXPECT_EQ(bounds.routings_used, 1);  // the bridge blocks a second routing
}

TEST(Bounds, BridgeCutDominatesUpperBound) {
  // With a bridge at p = 0.3, the cut {bridge} bounds R above by 0.7.
  GeneratedNetwork g = make_fig2_bridge_graph(0.05);
  g.net.set_failure_prob(8, 0.3);
  const ReliabilityBounds bounds =
      reliability_bounds(g.net, {g.source, g.sink, 1});
  EXPECT_LE(bounds.upper, 0.7 + 1e-12);
}

}  // namespace
}  // namespace streamrel
