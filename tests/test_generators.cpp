#include "streamrel/graph/generators.hpp"

#include <gtest/gtest.h>

#include "streamrel/graph/graph_algos.hpp"

namespace streamrel {
namespace {

TEST(Generators, PathShape) {
  const GeneratedNetwork g = path_network(4, 2, 0.1);
  EXPECT_EQ(g.net.num_nodes(), 5);
  EXPECT_EQ(g.net.num_edges(), 4);
  EXPECT_EQ(g.source, 0);
  EXPECT_EQ(g.sink, 4);
  EXPECT_EQ(find_bridges(g.net).size(), 4u);
}

TEST(Generators, ParallelLinksShape) {
  const GeneratedNetwork g = parallel_links(5, 1, 0.2);
  EXPECT_EQ(g.net.num_nodes(), 2);
  EXPECT_EQ(g.net.num_edges(), 5);
  EXPECT_TRUE(find_bridges(g.net).empty());
}

TEST(Generators, LadderShape) {
  const GeneratedNetwork g = ladder_network(4, 1, 0.1);
  EXPECT_EQ(g.net.num_nodes(), 8);
  // 4 rungs + 2 rails of 3 = 10 edges.
  EXPECT_EQ(g.net.num_edges(), 10);
  EXPECT_EQ(connected_components(g.net).count, 1);
}

TEST(Generators, GridShape) {
  const GeneratedNetwork g = grid_network(3, 3, 1, 0.1);
  EXPECT_EQ(g.net.num_nodes(), 9);
  EXPECT_EQ(g.net.num_edges(), 12);
  EXPECT_EQ(connected_components(g.net).count, 1);
  EXPECT_TRUE(find_bridges(g.net).empty());
}

TEST(Generators, RandomConnectedIsConnectedWithExactEdgeCount) {
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const int nodes = 4 + trial;
    const int extra = trial % 4;
    const GeneratedNetwork g =
        random_connected(rng, nodes, extra, {1, 3}, {0.05, 0.3});
    EXPECT_EQ(g.net.num_nodes(), nodes);
    EXPECT_EQ(g.net.num_edges(), nodes - 1 + extra);
    EXPECT_EQ(connected_components(g.net).count, 1);
    EXPECT_NE(g.source, g.sink);
  }
}

TEST(Generators, RandomConnectedRespectsRanges) {
  Xoshiro256 rng(6);
  const GeneratedNetwork g =
      random_connected(rng, 10, 5, {2, 4}, {0.1, 0.2});
  for (const Edge& e : g.net.edges()) {
    EXPECT_GE(e.capacity, 2);
    EXPECT_LE(e.capacity, 4);
    EXPECT_GE(e.failure_prob, 0.1);
    EXPECT_LE(e.failure_prob, 0.2);
  }
}

TEST(Generators, ClusteredBottleneckPlantsPartition) {
  Xoshiro256 rng(7);
  ClusteredParams params;
  params.nodes_s = 5;
  params.nodes_t = 6;
  params.bottleneck_links = 3;
  const GeneratedNetwork g = clustered_bottleneck(rng, params);
  EXPECT_EQ(g.net.num_nodes(), 11);
  ASSERT_EQ(g.side_s.size(), 11u);
  EXPECT_TRUE(g.side_s[static_cast<std::size_t>(g.source)]);
  EXPECT_FALSE(g.side_s[static_cast<std::size_t>(g.sink)]);
  // Exactly k crossing edges.
  int crossing = 0;
  for (const Edge& e : g.net.edges()) {
    crossing += (g.side_s[static_cast<std::size_t>(e.u)] !=
                 g.side_s[static_cast<std::size_t>(e.v)])
                    ? 1
                    : 0;
  }
  EXPECT_EQ(crossing, 3);
  // Each cluster is internally connected.
  EXPECT_EQ(connected_components(g.net).count, 1);
}

TEST(Generators, ClusteredEdgeCountFormula) {
  Xoshiro256 rng(8);
  ClusteredParams params;
  params.nodes_s = 4;
  params.nodes_t = 4;
  params.extra_edges_s = 2;
  params.extra_edges_t = 1;
  params.bottleneck_links = 2;
  const GeneratedNetwork g = clustered_bottleneck(rng, params);
  // trees (3 + 3) + extras (2 + 1) + crossings (2).
  EXPECT_EQ(g.net.num_edges(), 11);
}

TEST(Generators, RandomMultigraphAllowsParallels) {
  Xoshiro256 rng(9);
  const GeneratedNetwork g = random_multigraph(rng, 3, 20, {1, 1}, {0.1, 0.1});
  EXPECT_EQ(g.net.num_edges(), 20);
  for (const Edge& e : g.net.edges()) EXPECT_NE(e.u, e.v);
}

TEST(Generators, RejectBadParameters) {
  Xoshiro256 rng(10);
  EXPECT_THROW(path_network(0, 1, 0.1), std::invalid_argument);
  EXPECT_THROW(parallel_links(0, 1, 0.1), std::invalid_argument);
  EXPECT_THROW(ladder_network(1, 1, 0.1), std::invalid_argument);
  EXPECT_THROW(grid_network(1, 5, 1, 0.1), std::invalid_argument);
  EXPECT_THROW(random_connected(rng, 1, 0, {1, 1}, {0.1, 0.1}),
               std::invalid_argument);
  ClusteredParams bad;
  bad.bottleneck_links = 0;
  EXPECT_THROW(clustered_bottleneck(rng, bad), std::invalid_argument);
}

TEST(Generators, SmallWorldShape) {
  Xoshiro256 rng(20);
  const GeneratedNetwork g = small_world(rng, 16, 4, 0.2, {1, 2}, {0.1, 0.2});
  // Ring lattice contributes n*k/2 links; rewiring may drop duplicates.
  EXPECT_LE(g.net.num_edges(), 32);
  EXPECT_GE(g.net.num_edges(), 24);
  EXPECT_EQ(g.source, 0);
  EXPECT_EQ(g.sink, 8);
  // beta = 0 keeps the pure lattice: exactly n*k/2 links, all short.
  Xoshiro256 rng2(21);
  const GeneratedNetwork lattice =
      small_world(rng2, 10, 2, 0.0, {1, 1}, {0.1, 0.1});
  EXPECT_EQ(lattice.net.num_edges(), 10);
  EXPECT_EQ(connected_components(lattice.net).count, 1);
}

TEST(Generators, SmallWorldRejectsBadParameters) {
  Xoshiro256 rng(22);
  EXPECT_THROW(small_world(rng, 10, 3, 0.1, {1, 1}, {0.1, 0.1}),
               std::invalid_argument);  // odd k
  EXPECT_THROW(small_world(rng, 4, 4, 0.1, {1, 1}, {0.1, 0.1}),
               std::invalid_argument);  // k >= nodes
  EXPECT_THROW(small_world(rng, 10, 2, 1.5, {1, 1}, {0.1, 0.1}),
               std::invalid_argument);  // beta out of range
}

TEST(Generators, PreferentialAttachmentShape) {
  Xoshiro256 rng(23);
  const int nodes = 30;
  const int attach = 2;
  const GeneratedNetwork g =
      preferential_attachment(rng, nodes, attach, {1, 2}, {0.1, 0.2});
  // Seed clique C(3,2)=3 links + 2 per subsequent node.
  EXPECT_EQ(g.net.num_edges(), 3 + (nodes - attach - 1) * attach);
  EXPECT_EQ(connected_components(g.net).count, 1);
  // Hubs: some early node's degree well above the attachment count.
  int max_degree = 0;
  for (NodeId n = 0; n < g.net.num_nodes(); ++n) {
    max_degree = std::max(
        max_degree, static_cast<int>(g.net.incident_edges(n).size()));
  }
  EXPECT_GT(max_degree, 2 * attach);
  // The newest node has exactly `attach` links.
  EXPECT_EQ(g.net.incident_edges(g.sink).size(),
            static_cast<std::size_t>(attach));
}

TEST(Generators, PreferentialAttachmentRejectsBadParameters) {
  Xoshiro256 rng(24);
  EXPECT_THROW(preferential_attachment(rng, 5, 0, {1, 1}, {0.1, 0.1}),
               std::invalid_argument);
  EXPECT_THROW(preferential_attachment(rng, 2, 2, {1, 1}, {0.1, 0.1}),
               std::invalid_argument);
}

TEST(Generators, DeterministicForSameSeed) {
  Xoshiro256 rng1(42), rng2(42);
  const GeneratedNetwork a = random_connected(rng1, 8, 4, {1, 3}, {0.1, 0.3});
  const GeneratedNetwork b = random_connected(rng2, 8, 4, {1, 3}, {0.1, 0.3});
  ASSERT_EQ(a.net.num_edges(), b.net.num_edges());
  for (EdgeId id = 0; id < a.net.num_edges(); ++id) {
    EXPECT_EQ(a.net.edge(id).u, b.net.edge(id).u);
    EXPECT_EQ(a.net.edge(id).v, b.net.edge(id).v);
    EXPECT_EQ(a.net.edge(id).capacity, b.net.edge(id).capacity);
    EXPECT_DOUBLE_EQ(a.net.edge(id).failure_prob, b.net.edge(id).failure_prob);
  }
}

}  // namespace
}  // namespace streamrel
