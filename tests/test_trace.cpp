// Tracer/TraceSpan/ProgressReporter: recording gated on the global
// enable flag, Chrome-trace export that parses with util/json, ring
// overflow accounting, the sampled-span macro's stride, and the
// progress/ETA arithmetic.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>

#include "streamrel/util/json.hpp"
#include "streamrel/util/trace.hpp"

using namespace streamrel;

namespace {

// The tracer is process-global; every test starts and ends from a clean,
// disabled state so ordering cannot leak events between tests.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::set_enabled(false);
    Tracer::clear();
  }
  void TearDown() override {
    Tracer::set_enabled(false);
    Tracer::clear();
  }
};

const JsonValue* find_event(const JsonValue& doc, std::string_view name) {
  const JsonValue* events = doc.find("traceEvents");
  if (!events) return nullptr;
  for (const JsonValue& e : events->as_array()) {
    if (const JsonValue* n = e.find("name")) {
      if (n->as_string() == name) return &e;
    }
  }
  return nullptr;
}

TEST_F(TraceTest, DisabledRecordsNothing) {
  EXPECT_FALSE(trace_enabled());
  {
    TraceSpan span("invisible", "test");
    span.arg("k", std::uint64_t{1});
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(Tracer::event_count(), 0u);
}

TEST_F(TraceTest, ExportWithNoEventsIsValidEmptyDocument) {
  const JsonValue doc = parse_json(Tracer::export_chrome_json());
  ASSERT_TRUE(doc.is_object());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->as_array().empty());
}

TEST_F(TraceTest, SpanRecordsNameCategoryAndArgs) {
  Tracer::set_enabled(true);
  {
    TraceSpan span("solve_x", "engine");
    EXPECT_TRUE(span.active());
    span.arg("links", std::uint64_t{8})
        .arg("note", "a\"b\\c")
        .arg("ratio", 0.5)
        .arg("neg", std::int64_t{-3})
        .arg("flag", true);
  }
  Tracer::set_enabled(false);
  EXPECT_EQ(Tracer::event_count(), 1u);

  const JsonValue doc = parse_json(Tracer::export_chrome_json());
  const JsonValue* e = find_event(doc, "solve_x");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->find("cat")->as_string(), "engine");
  EXPECT_EQ(e->find("ph")->as_string(), "X");
  EXPECT_GE(e->find("dur")->as_number(), 0.0);
  const JsonValue* args = e->find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->find("links")->as_number(), 8.0);
  EXPECT_EQ(args->find("note")->as_string(), "a\"b\\c");
  EXPECT_EQ(args->find("ratio")->as_number(), 0.5);
  EXPECT_EQ(args->find("neg")->as_number(), -3.0);
  EXPECT_TRUE(args->find("flag")->as_bool());

  // Envelope fields Perfetto relies on.
  EXPECT_EQ(doc.find("displayTimeUnit")->as_string(), "ms");
  EXPECT_EQ(doc.find("otherData")->find("dropped_events")->as_number(), 0.0);
}

TEST_F(TraceTest, RingOverflowDropsOldestAndCounts) {
  Tracer::set_enabled(true);
  const std::uint64_t extra = 100;
  for (std::uint64_t i = 0; i < Tracer::kRingCapacity + extra; ++i) {
    TraceEvent e;
    e.name = std::to_string(i);
    e.category = "test";
    Tracer::record(std::move(e));
  }
  Tracer::set_enabled(false);
  EXPECT_EQ(Tracer::event_count(), Tracer::kRingCapacity);
  EXPECT_EQ(Tracer::dropped_count(), extra);

  // The retained window is the newest kRingCapacity events, exported in
  // chronological order: the first event must now be `extra`.
  const JsonValue doc = parse_json(Tracer::export_chrome_json());
  const auto& events = doc.find("traceEvents")->as_array();
  ASSERT_EQ(events.size(), Tracer::kRingCapacity);
  EXPECT_EQ(events.front().find("name")->as_string(), std::to_string(extra));
  EXPECT_EQ(doc.find("otherData")->find("dropped_events")->as_number(),
            static_cast<double>(extra));
}

TEST_F(TraceTest, ClearDropsEventsAndResetsDropCounter) {
  Tracer::set_enabled(true);
  { TraceSpan span("gone", "test"); }
  Tracer::clear();
  EXPECT_EQ(Tracer::event_count(), 0u);
  EXPECT_EQ(Tracer::dropped_count(), 0u);
  EXPECT_TRUE(trace_enabled());  // clear() keeps enablement
}

TEST_F(TraceTest, SampledSpanMacroRecordsOncePerStride) {
  Tracer::set_enabled(true);
  for (std::uint64_t i = 0; i < 2 * kTraceSampleStride; ++i) {
    STREAMREL_TRACE_SAMPLED_SPAN(span, i, "hot_call", "maxflow");
  }
  Tracer::set_enabled(false);
  EXPECT_EQ(Tracer::event_count(), 2u);  // i == 0 and i == stride
}

TEST_F(TraceTest, SampledSpanMacroIsInertWhenDisabled) {
  for (std::uint64_t i = 0; i < 2 * kTraceSampleStride; ++i) {
    STREAMREL_TRACE_SAMPLED_SPAN(span, i, "hot_call", "maxflow");
  }
  EXPECT_EQ(Tracer::event_count(), 0u);
}

TEST_F(TraceTest, MoveTransfersTheOpenSpan) {
  Tracer::set_enabled(true);
  {
    TraceSpan a("moved", "test");
    TraceSpan b(std::move(a));
    EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): testing it
    EXPECT_TRUE(b.active());
  }  // exactly one event, from b
  Tracer::set_enabled(false);
  EXPECT_EQ(Tracer::event_count(), 1u);
}

TEST_F(TraceTest, MoveAssignmentFinishesTheDestinationFirst) {
  Tracer::set_enabled(true);
  {
    TraceSpan span("first", "test");
    span = TraceSpan("second", "test");  // "first" must finish here
    EXPECT_TRUE(span.active());
  }
  Tracer::set_enabled(false);
  EXPECT_EQ(Tracer::event_count(), 2u);
  const JsonValue doc = parse_json(Tracer::export_chrome_json());
  EXPECT_NE(find_event(doc, "first"), nullptr);
  EXPECT_NE(find_event(doc, "second"), nullptr);
}

TEST(ProgressReporter, SnapshotTracksVisitedTotalRateAndEta) {
  std::ostringstream out;
  ProgressReporter progress(&out);
  progress.add_total(100);
  progress.add(50);
  const ProgressReporter::Snapshot s = progress.snapshot();
  EXPECT_EQ(s.visited, 50u);
  EXPECT_EQ(s.total, 100u);
  EXPECT_GT(s.elapsed_s, 0.0);
  EXPECT_GT(s.rate_per_s, 0.0);
  EXPECT_GT(s.eta_s, 0.0);  // half the work left at a positive rate
  EXPECT_NE(progress.render_line().find("50/100"), std::string::npos);
  EXPECT_NE(progress.render_line().find("50.0%"), std::string::npos);
}

TEST(ProgressReporter, NoTotalRendersRateOnly) {
  std::ostringstream out;
  ProgressOptions options;
  options.label = "walk";
  ProgressReporter progress(&out, options);
  progress.add(7);
  const std::string line = progress.render_line();
  EXPECT_NE(line.find("walk: 7 visited"), std::string::npos);
  EXPECT_EQ(progress.snapshot().eta_s, 0.0);  // unknowable without a total
}

TEST(ProgressReporter, FinishPrintsOnceAndIsIdempotent) {
  std::ostringstream out;
  ProgressReporter progress(&out);
  progress.add_total(4);
  progress.add(4);
  progress.finish();
  const std::string after_first = out.str();
  progress.finish();
  progress.add(1);  // post-finish adds must not print
  EXPECT_EQ(out.str(), after_first);
  EXPECT_NE(after_first.find("4/4"), std::string::npos);
  EXPECT_EQ(after_first.back(), '\n');
}

TEST(ProgressMarker, ReportsDeltasAndIgnoresNonMonotonePositions) {
  std::ostringstream out;
  ProgressReporter progress(&out);
  ProgressMarker marker(&progress);
  marker.at(10);
  EXPECT_EQ(progress.visited(), 10u);
  marker.at(10);  // no new progress
  EXPECT_EQ(progress.visited(), 10u);
  marker.at(4);  // going backwards must not underflow
  EXPECT_EQ(progress.visited(), 10u);
  marker.at(25);
  EXPECT_EQ(progress.visited(), 25u);
}

TEST(ProgressMarker, NullReporterIsANoop) {
  ProgressMarker marker(nullptr);
  marker.at(1000);  // must not crash
}

}  // namespace
