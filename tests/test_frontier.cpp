#include "streamrel/reliability/frontier.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "streamrel/graph/generators.hpp"
#include "streamrel/reliability/factoring.hpp"
#include "streamrel/reliability/naive.hpp"
#include "test_support.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

using testing::kTol;

TEST(Frontier, SeriesAndParallelClosedForms) {
  EXPECT_NEAR(
      reliability_connectivity(testing::series_pair(0.1, 0.2), {0, 2, 1})
          .reliability,
      0.9 * 0.8, kTol);
  EXPECT_NEAR(
      reliability_connectivity(testing::parallel_pair(0.1, 0.2), {0, 1, 1})
          .reliability,
      1.0 - 0.1 * 0.2, kTol);
}

TEST(Frontier, DiamondAtHalf) {
  EXPECT_NEAR(
      reliability_connectivity(testing::diamond(0.5), {0, 3, 1}).reliability,
      0.5, kTol);
}

TEST(Frontier, MatchesNaiveOnRandomGraphs) {
  Xoshiro256 rng(515151);
  for (int trial = 0; trial < 60; ++trial) {
    const GeneratedNetwork g = random_multigraph(
        rng, static_cast<int>(rng.uniform_int(2, 8)),
        static_cast<int>(rng.uniform_int(1, 14)), {1, 2}, {0.0, 0.7});
    const FlowDemand demand{g.source, g.sink, 1};
    EXPECT_NEAR(reliability_connectivity(g.net, demand).reliability,
                reliability_naive(g.net, demand).reliability, kTol)
        << "trial " << trial;
  }
}

TEST(Frontier, CapacityZeroEdgesAreAbsent) {
  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 0, 0.1);  // unusable
  net.add_undirected_edge(0, 1, 1, 0.3);
  EXPECT_NEAR(reliability_connectivity(net, {0, 1, 1}).reliability, 0.7,
              kTol);
}

TEST(Frontier, LongPathBeyondMaskLimit) {
  // 120-link path: impossible for 2^|E| enumeration, trivial here.
  const GeneratedNetwork g = path_network(120, 1, 0.01);
  EXPECT_NEAR(reliability_connectivity(g.net, {g.source, g.sink, 1})
                  .reliability,
              std::pow(0.99, 120.0), 1e-12);
}

TEST(Frontier, WideParallelBundleBeyondMaskLimit) {
  FlowNetwork net(2);
  for (int i = 0; i < 100; ++i) net.add_undirected_edge(0, 1, 1, 0.5);
  EXPECT_NEAR(reliability_connectivity(net, {0, 1, 1}).reliability,
              1.0 - std::pow(0.5, 100.0), kTol);
}

TEST(Frontier, BigLadderMatchesFactoring) {
  // 10-rung ladder (28 links): naive would need 2^28 max-flows; both the
  // frontier DP and pruned factoring are fast and must agree.
  const GeneratedNetwork g = ladder_network(10, 1, 0.1);
  const FlowDemand demand{g.source, g.sink, 1};
  EXPECT_NEAR(reliability_connectivity(g.net, demand).reliability,
              reliability_factoring(g.net, demand).reliability, 1e-9);
}

TEST(Frontier, HugeLadderRuns) {
  // 40-rung ladder: 118 links. State count stays tiny (frontier width 4).
  const GeneratedNetwork g = ladder_network(40, 1, 0.05);
  const auto result =
      reliability_connectivity(g.net, {g.source, g.sink, 1});
  EXPECT_GT(result.reliability, 0.0);
  EXPECT_LT(result.reliability, 1.0);
  EXPECT_EQ(result.maxflow_calls(), 0u);
}

TEST(Frontier, GridMatchesFactoring) {
  const GeneratedNetwork g = grid_network(4, 3, 1, 0.15);
  const FlowDemand demand{g.source, g.sink, 1};
  EXPECT_NEAR(reliability_connectivity(g.net, demand).reliability,
              reliability_factoring(g.net, demand).reliability, 1e-9);
}

TEST(Frontier, DisconnectedPairIsZero) {
  FlowNetwork net(4);
  net.add_undirected_edge(0, 1, 1, 0.1);
  net.add_undirected_edge(2, 3, 1, 0.1);
  EXPECT_DOUBLE_EQ(reliability_connectivity(net, {0, 3, 1}).reliability, 0.0);
}

TEST(Frontier, RejectsUnsupportedInputs) {
  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 2, 0.1);
  EXPECT_THROW(reliability_connectivity(net, {0, 1, 2}),
               std::invalid_argument);  // d > 1
  FlowNetwork directed(2);
  directed.add_directed_edge(0, 1, 1, 0.1);
  EXPECT_THROW(reliability_connectivity(directed, {0, 1, 1}),
               std::invalid_argument);
}

TEST(Frontier, StateBudgetGuard) {
  Xoshiro256 rng(8);
  // A dense-ish random graph with a wide frontier.
  const GeneratedNetwork g = random_connected(rng, 24, 60, {1, 1}, {0.1, 0.3});
  FrontierOptions options;
  options.max_states = 4;
  const auto result =
      reliability_connectivity(g.net, {g.source, g.sink, 1}, options);
  EXPECT_EQ(result.status, SolveStatus::kBudgetExhausted);
  // The folded-so-far mass is a valid lower bound, never more than R.
  EXPECT_GE(result.reliability, 0.0);
  EXPECT_LE(result.reliability, 1.0);
}

}  // namespace
}  // namespace streamrel
