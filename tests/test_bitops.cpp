#include "streamrel/util/bitops.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace streamrel {
namespace {

TEST(Bitops, FullMask) {
  EXPECT_EQ(full_mask(0), 0u);
  EXPECT_EQ(full_mask(1), 1u);
  EXPECT_EQ(full_mask(3), 0b111u);
  EXPECT_EQ(full_mask(63), (Mask{1} << 63) - 1);
}

TEST(Bitops, BitHelpers) {
  EXPECT_EQ(bit(0), 1u);
  EXPECT_EQ(bit(5), 32u);
  EXPECT_TRUE(test_bit(0b1010, 1));
  EXPECT_FALSE(test_bit(0b1010, 0));
  EXPECT_EQ(popcount(0b1011), 3);
  EXPECT_EQ(lowest_bit(0b1000), 3);
}

TEST(Bitops, BitsOfRoundTrip) {
  const std::vector<int> idx{0, 3, 7, 62};
  const Mask m = mask_of(idx);
  EXPECT_EQ(bits_of(m), idx);
  EXPECT_EQ(bits_of(0), std::vector<int>{});
}

TEST(Bitops, GrayCodeAdjacentDifferByOneBit) {
  for (Mask i = 0; i < 1024; ++i) {
    const Mask diff = gray_code(i) ^ gray_code(i + 1);
    EXPECT_EQ(popcount(diff), 1) << "at i=" << i;
    EXPECT_EQ(lowest_bit(diff), gray_flip_bit(i));
  }
}

TEST(Bitops, GrayCodeIsPermutation) {
  std::set<Mask> seen;
  for (Mask i = 0; i < 256; ++i) seen.insert(gray_code(i));
  EXPECT_EQ(seen.size(), 256u);
  for (Mask g : seen) EXPECT_LT(g, 256u);
}

TEST(Bitops, SubmaskRangeVisitsExactlyAllSubsets) {
  const Mask sup = 0b101100;
  std::set<Mask> seen;
  for (SubmaskRange r(sup); !r.done(); r.next()) {
    EXPECT_EQ(r.value() & ~sup, 0u);
    seen.insert(r.value());
  }
  EXPECT_EQ(seen.size(), std::size_t{1} << popcount(sup));
  EXPECT_TRUE(seen.count(0));
  EXPECT_TRUE(seen.count(sup));
}

TEST(Bitops, SubmaskRangeOfZero) {
  SubmaskRange r(0);
  EXPECT_FALSE(r.done());
  EXPECT_EQ(r.value(), 0u);
  r.next();
  EXPECT_TRUE(r.done());
}

TEST(Bitops, CombinationRangeCountsBinomials) {
  auto count = [](int n, int k) {
    std::size_t c = 0;
    for (CombinationRange r(n, k); !r.done(); r.next()) {
      EXPECT_EQ(popcount(r.value()), k);
      EXPECT_LT(r.value(), Mask{1} << n);
      ++c;
    }
    return c;
  };
  EXPECT_EQ(count(5, 0), 1u);
  EXPECT_EQ(count(5, 1), 5u);
  EXPECT_EQ(count(5, 2), 10u);
  EXPECT_EQ(count(5, 3), 10u);
  EXPECT_EQ(count(5, 5), 1u);
  EXPECT_EQ(count(10, 4), 210u);
}

TEST(Bitops, CombinationRangeDegenerateCases) {
  CombinationRange too_big(3, 4);
  EXPECT_TRUE(too_big.done());
  CombinationRange negative(3, -1);
  EXPECT_TRUE(negative.done());
}

TEST(Bitops, CombinationRangeVisitsDistinctMasks) {
  std::set<Mask> seen;
  for (CombinationRange r(8, 3); !r.done(); r.next()) seen.insert(r.value());
  EXPECT_EQ(seen.size(), 56u);
}

}  // namespace
}  // namespace streamrel
