#include "streamrel/graph/delta.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "streamrel/core/bottleneck_algorithm.hpp"
#include "streamrel/core/query_session.hpp"
#include "streamrel/core/side_array.hpp"
#include "streamrel/cuts/partition_search.hpp"
#include "streamrel/graph/compiled.hpp"
#include "streamrel/graph/generators.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

// ---------------------------------------------------------------- unit

TEST(NetworkDelta, ClassifiesByStrongestEdit) {
  NetworkDelta d;
  EXPECT_EQ(d.classify(), DeltaClass::kProbabilityOnly);
  d.set_failure_prob(0, 0.1);
  EXPECT_EQ(d.classify(), DeltaClass::kProbabilityOnly);
  d.set_capacity(0, 2);
  EXPECT_EQ(d.classify(), DeltaClass::kCapacityOnly);
  d.remove_edge(1);
  EXPECT_EQ(d.classify(), DeltaClass::kTopology);
}

TEST(NetworkDelta, ValidationLeavesNetworkUntouched) {
  FlowNetwork net(3);
  net.add_undirected_edge(0, 1, 1, 0.1);
  net.add_undirected_edge(1, 2, 1, 0.2);
  const FlowNetwork before = net;

  NetworkDelta bad_edge;
  bad_edge.set_failure_prob(9, 0.5);
  EXPECT_THROW(apply_delta_in_place(net, bad_edge), std::invalid_argument);

  NetworkDelta bad_prob;
  bad_prob.set_failure_prob(0, 1.0);
  EXPECT_THROW(apply_delta_in_place(net, bad_prob), std::invalid_argument);

  NetworkDelta bad_cap;
  bad_cap.set_capacity(0, -1);
  EXPECT_THROW(apply_delta_in_place(net, bad_cap), std::invalid_argument);

  NetworkDelta dup_remove;
  dup_remove.remove_edge(0).remove_edge(0);
  EXPECT_THROW(apply_delta_in_place(net, dup_remove), std::invalid_argument);

  NetworkDelta edit_removed;
  edit_removed.remove_edge(0).set_capacity(0, 3);
  EXPECT_THROW(apply_delta_in_place(net, edit_removed), std::invalid_argument);

  for (EdgeId e = 0; e < net.num_edges(); ++e) {
    EXPECT_EQ(net.edge(e).failure_prob, before.edge(e).failure_prob);
    EXPECT_EQ(net.edge(e).capacity, before.edge(e).capacity);
  }
}

TEST(NetworkDelta, NodeJoinWiresEdgesToTheNewNode) {
  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 1, 0.1);

  NetworkDelta join;
  const NodeId peer = join.add_node(net.num_nodes());
  EXPECT_EQ(peer, 2);
  join.add_edge(0, peer, 2, 0.05);
  join.add_edge(peer, 1, 2, 0.05);

  const DeltaApplication app = apply_delta_in_place(net, join);
  EXPECT_EQ(app.applied, DeltaClass::kTopology);
  EXPECT_EQ(net.num_nodes(), 3);
  EXPECT_EQ(net.num_edges(), 3);
  EXPECT_EQ(net.edge(1).u, 0);
  EXPECT_EQ(net.edge(1).v, 2);
  EXPECT_EQ(net.edge(2).u, 2);
  EXPECT_EQ(net.edge(2).v, 1);
}

TEST(NetworkDelta, NodeLeaveRemovesIncidentEdgesIncludingSameDeltaAdds) {
  FlowNetwork net(4);
  net.add_undirected_edge(0, 1, 1, 0.1);  // survives
  net.add_undirected_edge(1, 2, 1, 0.1);  // dies with node 2
  net.add_undirected_edge(2, 3, 1, 0.1);  // dies with node 2

  NetworkDelta leave;
  leave.add_edge(2, 3, 1, 0.2);  // added AND killed by the same delta
  leave.add_edge(0, 3, 1, 0.3);  // added and survives
  leave.remove_node(2);

  const DeltaApplication app = apply_delta_in_place(net, leave);
  EXPECT_EQ(net.num_nodes(), 3);
  ASSERT_EQ(net.num_edges(), 2);
  // Survivors keep relative order and renumber densely; node 3 -> 2.
  EXPECT_EQ(app.node_map, (std::vector<NodeId>{0, 1, kInvalidNode, 2}));
  EXPECT_EQ(app.edge_map,
            (std::vector<EdgeId>{0, kInvalidEdge, kInvalidEdge}));
  EXPECT_EQ(net.edge(1).u, 0);
  EXPECT_EQ(net.edge(1).v, 2);
  EXPECT_EQ(net.edge(1).failure_prob, 0.3);
}

TEST(DeltaJournal, LinksSuccessorsToParents) {
  FlowNetwork net(3);
  net.add_undirected_edge(0, 1, 2, 0.1);
  net.add_undirected_edge(1, 2, 2, 0.1);
  const auto root = net.compile();

  NetworkDelta cap;
  cap.set_capacity(0, 5);
  const CompiledDelta first = root->apply_delta(cap);
  NetworkDelta topo;
  topo.remove_edge(1);
  const CompiledDelta second = first.snapshot->apply_delta(topo);

  EXPECT_EQ(first.snapshot->parent_structure_id(), root->structure_id());
  EXPECT_EQ(second.snapshot->parent_structure_id(),
            first.snapshot->structure_id());

  const auto record =
      DeltaJournal::instance().lookup(second.snapshot->structure_id());
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->delta_class, DeltaClass::kTopology);
  EXPECT_EQ(record->edges_removed, 1);

  const auto chain =
      DeltaJournal::instance().chain(second.snapshot->structure_id());
  ASSERT_GE(chain.size(), 2u);
  EXPECT_EQ(chain[0].structure_id, second.snapshot->structure_id());
  EXPECT_EQ(chain[1].structure_id, first.snapshot->structure_id());
}

TEST(DeltaSolveHint, SmallAndAccumulationOnly) {
  DeltaSolveHint hint;
  hint.delta_class = DeltaClass::kProbabilityOnly;
  hint.touched_edges = {0, 1};
  EXPECT_TRUE(hint.accumulation_only());
  EXPECT_TRUE(hint.small());
  hint.delta_class = DeltaClass::kCapacityOnly;
  EXPECT_FALSE(hint.accumulation_only());
  EXPECT_TRUE(hint.small());
  hint.touched_edges.assign(9, 0);
  EXPECT_FALSE(hint.small());
  hint.delta_class = DeltaClass::kTopology;
  hint.touched_edges.clear();
  EXPECT_FALSE(hint.small());
}

// ------------------------------------------------------ sharing rules

TEST(CompiledDelta, ProbabilityDeltaSharesTheWholeStructure) {
  FlowNetwork net(3);
  net.add_undirected_edge(0, 1, 1, 0.1);
  net.add_undirected_edge(1, 2, 1, 0.2);
  const auto root = net.compile();

  NetworkDelta d;
  d.set_failure_prob(1, 0.33);
  const CompiledDelta out = root->apply_delta(d);
  EXPECT_EQ(out.applied, DeltaClass::kProbabilityOnly);
  EXPECT_EQ(out.snapshot->structure_id(), root->structure_id());
  EXPECT_EQ(&out.snapshot->structure(), &root->structure());
  EXPECT_EQ(out.snapshot->failure_prob(1), 0.33);
  EXPECT_EQ(root->failure_prob(1), 0.2);  // the parent is immutable
  EXPECT_TRUE(out.touched_edges.empty());
}

TEST(CompiledDelta, CapacityDeltaSharesTopologyAndReportsTouched) {
  FlowNetwork net(3);
  net.add_undirected_edge(0, 1, 1, 0.1);
  net.add_undirected_edge(1, 2, 1, 0.2);
  const auto root = net.compile();

  NetworkDelta d;
  d.set_capacity(1, 4);
  const CompiledDelta out = root->apply_delta(d);
  EXPECT_EQ(out.applied, DeltaClass::kCapacityOnly);
  EXPECT_NE(out.snapshot->structure_id(), root->structure_id());
  EXPECT_EQ(&out.snapshot->topology(), &root->topology());  // CSR shared
  EXPECT_EQ(out.snapshot->edge_capacity(1), 4);
  EXPECT_EQ(root->edge_capacity(1), 1);
  EXPECT_EQ(out.touched_edges, (std::vector<EdgeId>{1}));
}

// ------------------------------------------- the 200-graph bitwise sweep

void expect_bitwise_equal(const CompiledNetwork& a, const CompiledNetwork& b) {
  ASSERT_EQ(a.topology().num_nodes, b.topology().num_nodes);
  EXPECT_EQ(a.topology().u, b.topology().u);
  EXPECT_EQ(a.topology().v, b.topology().v);
  EXPECT_EQ(a.topology().kind, b.topology().kind);
  EXPECT_EQ(a.topology().offsets, b.topology().offsets);
  EXPECT_EQ(a.topology().incident, b.topology().incident);
  EXPECT_EQ(a.structure().capacity, b.structure().capacity);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    // Bitwise on all three probability columns, including the
    // precomputed logs (copied, never recomputed, for untouched edges).
    EXPECT_EQ(a.failure_prob(e), b.failure_prob(e));
    EXPECT_EQ(a.log_failure(e), b.log_failure(e));
    EXPECT_EQ(a.log_survival(e), b.log_survival(e));
  }
}

// One random edit batch valid against `net`, never touching s or t.
NetworkDelta random_delta(Xoshiro256& rng, const FlowNetwork& net, NodeId s,
                          NodeId t) {
  NetworkDelta d;
  const auto random_edge = [&] {
    return static_cast<EdgeId>(
        rng.uniform_below(static_cast<std::uint64_t>(net.num_edges())));
  };
  const double roll = rng.uniform01();
  if (roll < 0.40) {
    const int edits = 1 + static_cast<int>(rng.uniform_below(2));
    for (int i = 0; i < edits; ++i) {
      d.set_failure_prob(random_edge(), rng.uniform_real(0.0, 0.5));
    }
  } else if (roll < 0.70) {
    d.set_capacity(random_edge(),
                   static_cast<Capacity>(1 + rng.uniform_below(3)));
  } else if (roll < 0.85) {
    NodeId u = static_cast<NodeId>(
        rng.uniform_below(static_cast<std::uint64_t>(net.num_nodes())));
    NodeId v = rng.bernoulli(0.3) ? d.add_node(net.num_nodes())
                                  : static_cast<NodeId>(rng.uniform_below(
                                        static_cast<std::uint64_t>(
                                            net.num_nodes())));
    if (u == v) v = d.add_node(net.num_nodes());
    d.add_edge(u, v, static_cast<Capacity>(1 + rng.uniform_below(2)),
               rng.uniform_real(0.01, 0.4));
  } else if (net.num_nodes() > 4 && rng.bernoulli(0.5)) {
    NodeId victim = s;
    while (victim == s || victim == t) {
      victim = static_cast<NodeId>(
          rng.uniform_below(static_cast<std::uint64_t>(net.num_nodes())));
    }
    d.remove_node(victim);
  } else if (net.num_edges() > 2) {
    d.remove_edge(random_edge());
  } else {
    d.set_failure_prob(random_edge(), rng.uniform_real(0.0, 0.5));
  }
  return d;
}

TEST(DeltaSweep, TwoHundredSeededGraphsStayBitwiseEqualToFromScratch) {
  for (int trial = 0; trial < 200; ++trial) {
    Xoshiro256 rng(mix_seed(0xDE17A, static_cast<std::uint64_t>(trial)));
    const int nodes = 5 + trial % 4;
    GeneratedNetwork gen =
        random_connected(rng, nodes, 2 + trial % 3, {1, 2}, {0.02, 0.3});
    FlowNetwork ref = gen.net;  // evolved from scratch every step
    NodeId s = gen.source;
    NodeId t = gen.sink;
    auto snap = ref.compile();          // evolved via CSR patches
    QuerySession session(ref);          // evolved via cut-scoped deltas

    for (int step = 0; step < 6; ++step) {
      const NetworkDelta delta = random_delta(rng, ref, s, t);

      // Snapshot patch vs from-scratch rebuild + compile.
      const CompiledDelta patched = snap->apply_delta(delta);
      const DeltaApplication rebuilt = apply_delta_in_place(ref, delta);
      ASSERT_EQ(patched.applied, rebuilt.applied);
      ASSERT_EQ(patched.node_map, rebuilt.node_map);
      ASSERT_EQ(patched.edge_map, rebuilt.edge_map);
      const auto cold = ref.compile();
      {
        SCOPED_TRACE("trial " + std::to_string(trial) + " step " +
                     std::to_string(step));
        expect_bitwise_equal(*patched.snapshot, *cold);
      }
      if (patched.applied == DeltaClass::kProbabilityOnly) {
        EXPECT_EQ(patched.snapshot->structure_id(), snap->structure_id());
      } else {
        EXPECT_EQ(patched.snapshot->parent_structure_id(),
                  snap->structure_id());
      }
      snap = patched.snapshot;

      // Session path: scoped invalidation must answer bitwise-equal to a
      // cold solve on the rebuilt network, at every step.
      const DeltaOutcome outcome = session.apply_delta(delta);
      ASSERT_EQ(outcome.applied, rebuilt.applied);
      if (outcome.applied == DeltaClass::kTopology) {
        s = outcome.node_map[static_cast<std::size_t>(s)];
        t = outcome.node_map[static_cast<std::size_t>(t)];
        ASSERT_NE(s, kInvalidNode);
        ASSERT_NE(t, kInvalidNode);
      }
      const FlowDemand demand{s, t, 1 + step % 2};
      const double warm = session.solve(demand).result.reliability;
      const double cold_r =
          compute_reliability(ref, demand).result.reliability;
      ASSERT_EQ(warm, cold_r)
          << "trial " << trial << " step " << step;
    }
  }
}

// ---------------------------------------------- salvage bitwise equality

TEST(SideReuse, AdoptedSideArraysAndDistributionsAreBitwise) {
  Xoshiro256 rng(7);
  ClusteredParams params;
  params.nodes_s = 5;
  params.extra_edges_s = 3;
  params.nodes_t = 4;
  params.extra_edges_t = 2;
  params.bottleneck_links = 2;
  params.bottleneck_caps = {1, 3};
  const GeneratedNetwork gen = clustered_bottleneck(rng, params);
  const FlowDemand demand{gen.source, gen.sink, 2};

  const auto choice =
      find_best_partition(gen.net, demand.source, demand.sink);
  ASSERT_TRUE(choice.has_value());
  const BottleneckArtifacts fresh =
      build_bottleneck_artifacts(gen.net, demand, choice->partition);
  ASSERT_TRUE(fresh.usable());

  // Offer side_s back as a salvage: the rebuild must adopt it verbatim
  // and still produce a bitwise-identical sink side and distributions.
  SideReuse reuse{fresh.side_s, fresh.array_s, Telemetry{}};
  const BottleneckArtifacts adopted = build_bottleneck_artifacts(
      gen.net, demand, choice->partition, {}, nullptr, nullptr, nullptr,
      &reuse, nullptr);
  ASSERT_TRUE(adopted.usable());
  EXPECT_EQ(adopted.array_s, fresh.array_s);
  EXPECT_EQ(adopted.array_t, fresh.array_t);

  const MaskDistribution fresh_s =
      bucket_side_array(fresh.side_s, fresh.array_s);
  const MaskDistribution adopted_s =
      bucket_side_array(adopted.side_s, adopted.array_s);
  EXPECT_EQ(fresh_s.buckets, adopted_s.buckets);
  EXPECT_EQ(fresh_s.total, adopted_s.total);
}

}  // namespace
}  // namespace streamrel
