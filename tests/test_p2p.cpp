#include <gtest/gtest.h>

#include <cmath>

#include "streamrel/core/reliability_facade.hpp"
#include "streamrel/graph/graph_algos.hpp"
#include "streamrel/maxflow/maxflow.hpp"
#include "streamrel/p2p/churn.hpp"
#include "streamrel/p2p/mesh_builder.hpp"
#include "streamrel/p2p/overlay.hpp"
#include "streamrel/p2p/scenario.hpp"
#include "streamrel/p2p/tree_builder.hpp"
#include "streamrel/reliability/naive.hpp"
#include "test_support.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

using testing::kTol;

TEST(Overlay, NodeLayout) {
  Overlay overlay(5);
  EXPECT_EQ(overlay.server(), 0);
  EXPECT_EQ(overlay.num_peers(), 5);
  EXPECT_EQ(overlay.peer(0), 1);
  EXPECT_EQ(overlay.peer(4), 5);
  EXPECT_THROW(overlay.peer(5), std::invalid_argument);
  EXPECT_THROW(Overlay(0), std::invalid_argument);
}

TEST(Overlay, DemandConstruction) {
  Overlay overlay(3);
  const FlowDemand d = overlay.demand_to(overlay.peer(2), 4);
  EXPECT_EQ(d.source, overlay.server());
  EXPECT_EQ(d.sink, overlay.peer(2));
  EXPECT_EQ(d.rate, 4);
  EXPECT_THROW(overlay.demand_to(overlay.server(), 1), std::invalid_argument);
}

TEST(SingleTree, ShapeAndReliability) {
  Overlay overlay(7);
  SingleTreeOptions options;
  options.fanout = 2;
  options.link_failure_prob = 0.1;
  const auto edges = add_single_tree(overlay, options);
  EXPECT_EQ(edges.size(), 7u);
  // Every peer reachable from the server.
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(max_flow(overlay.net(), overlay.server(), overlay.peer(i)), 1);
  }
  // Peer 6's delivery path is server -> p0 -> p2 -> p6 (fanout 2):
  // reliability = 0.9^3.
  const double r =
      reliability_naive(overlay.net(), overlay.demand_to(overlay.peer(6), 1))
          .reliability;
  EXPECT_NEAR(r, 0.9 * 0.9 * 0.9, kTol);
}

TEST(SingleTree, DepthMatchesFanout) {
  Overlay overlay(12);
  SingleTreeOptions options;
  options.fanout = 3;
  add_single_tree(overlay, options);
  // Peer 11's parent chain: (11-1)/3 = 3, (3-1)/3 = 0, root.
  // Path length 3 -> reliability 0.9^3 at p=0.1.
  const double r =
      reliability_naive(overlay.net(), overlay.demand_to(overlay.peer(11), 1))
          .reliability;
  EXPECT_NEAR(r, std::pow(0.9, 3.0), kTol);
}

TEST(StripedTrees, EachStripeSpansAllPeers) {
  Overlay overlay(6);
  StripedTreesOptions options;
  options.stripes = 3;
  const auto stripes = add_striped_trees(overlay, options);
  ASSERT_EQ(stripes.size(), 3u);
  for (const auto& stripe : stripes) EXPECT_EQ(stripe.size(), 6u);
  EXPECT_EQ(overlay.net().num_edges(), 18);
  // With all stripes alive every peer can receive all 3 sub-streams.
  for (int i = 0; i < 6; ++i) {
    EXPECT_GE(max_flow(overlay.net(), overlay.server(), overlay.peer(i)), 3);
  }
}

TEST(StripedTrees, GracefulDegradationSemantics) {
  // The multiple-tree design trades full-rate reliability for graceful
  // degradation: each stripe is its own single point of failure, so
  // receiving ALL stripes is harder than receiving the whole stream down
  // one tree — but receiving at least SOME video (>= 1 stripe) is easier
  // than the all-or-nothing single tree. The flow model quantifies both.
  const double p = 0.15;

  Overlay single(5);
  SingleTreeOptions tree_opts;
  tree_opts.stream_rate = 2;
  tree_opts.link_failure_prob = p;
  add_single_tree(single, tree_opts);

  Overlay striped(5);
  StripedTreesOptions stripe_opts;
  stripe_opts.stripes = 2;
  stripe_opts.link_failure_prob = p;
  add_striped_trees(striped, stripe_opts);

  const double r_single_full =
      reliability_naive(single.net(), single.demand_to(single.peer(4), 2))
          .reliability;
  const double r_striped_full =
      reliability_naive(striped.net(), striped.demand_to(striped.peer(4), 2))
          .reliability;
  const double r_striped_partial =
      reliability_naive(striped.net(), striped.demand_to(striped.peer(4), 1))
          .reliability;
  EXPECT_LE(r_striped_full, r_single_full + kTol);
  EXPECT_GE(r_striped_partial, r_single_full - kTol);
  EXPECT_GT(r_striped_partial, r_striped_full);
}

TEST(Mesh, ConnectsAndBoundsDegree) {
  Overlay overlay(10);
  Xoshiro256 rng(55);
  MeshOptions options;
  options.degree = 3;
  options.server_links = 2;
  const auto edges = add_random_mesh(overlay, rng, options);
  EXPECT_FALSE(edges.empty());
  EXPECT_LE(overlay.net().num_edges(), 2 + 10 * 3);
  int server_degree = 0;
  for (const Edge& e : overlay.net().edges()) {
    server_degree +=
        (e.u == overlay.server() || e.v == overlay.server()) ? 1 : 0;
  }
  EXPECT_EQ(server_degree, 2);
}

TEST(Mesh, RejectsBadOptions) {
  Overlay overlay(3);
  Xoshiro256 rng(1);
  MeshOptions options;
  options.server_links = 5;
  EXPECT_THROW(add_random_mesh(overlay, rng, options), std::invalid_argument);
}

TEST(Churn, DepartureProbability) {
  ChurnModel model;
  model.mean_session_minutes = 60;
  model.window_minutes = 5;
  EXPECT_NEAR(peer_departure_prob(model), 1.0 - std::exp(-5.0 / 60.0), kTol);
  model.window_minutes = 0;
  EXPECT_DOUBLE_EQ(peer_departure_prob(model), 0.0);
  model.mean_session_minutes = -1;
  EXPECT_THROW(peer_departure_prob(model), std::invalid_argument);
}

TEST(Churn, LinkFailureComposesEndpoints) {
  ChurnModel model;
  model.base_link_loss = 0.0;
  const double depart = peer_departure_prob(model);
  EXPECT_NEAR(link_failure_prob(model, 0), 0.0, kTol);
  EXPECT_NEAR(link_failure_prob(model, 1), depart, kTol);
  EXPECT_NEAR(link_failure_prob(model, 2),
              1.0 - (1.0 - depart) * (1.0 - depart), kTol);
  EXPECT_THROW(link_failure_prob(model, 3), std::invalid_argument);
}

TEST(Churn, ApplyDistinguishesServerLinks) {
  Overlay overlay(3);
  add_single_tree(overlay, {});
  ChurnModel model;
  apply_delta_in_place(overlay.net(),
                        churn_delta(overlay.net(), overlay.server(), model));
  // Edge 0 is server -> peer0 (one churning endpoint); edge 1 is
  // peer -> peer (two churning endpoints) and must be less reliable.
  EXPECT_LT(overlay.net().edge(0).failure_prob,
            overlay.net().edge(1).failure_prob);
}

TEST(Churn, LongerSessionsImproveReliability) {
  ChurnModel flaky;
  flaky.mean_session_minutes = 10;
  ChurnModel stable;
  stable.mean_session_minutes = 600;
  EXPECT_GT(link_failure_prob(flaky), link_failure_prob(stable));
}

TEST(Scenario, Fig2GraphProperties) {
  const GeneratedNetwork g = make_fig2_bridge_graph(0.1);
  EXPECT_EQ(g.net.num_edges(), 9);
  EXPECT_EQ(max_flow(g.net, g.source, g.sink), 1);
  // The bridge is edge 8 and disconnects s from t.
  EXPECT_TRUE(removal_disconnects(g.net, g.source, g.sink, {8}));
}

TEST(Scenario, Fig4GraphProperties) {
  const GeneratedNetwork g = make_fig4_graph(0.1);
  EXPECT_EQ(g.net.num_edges(), 9);
  // The paper's statement: the full graph admits a flow of amount two.
  EXPECT_GE(max_flow(g.net, g.source, g.sink), 2);
}

TEST(Scenario, TwoIspRespectsParameters) {
  TwoIspParams params;
  params.peers_per_isp = 4;
  params.peering_links = 3;
  params.extra_links_per_isp = 1;
  const GeneratedNetwork g = make_two_isp_scenario(params);
  EXPECT_EQ(g.net.num_nodes(), 8);
  // 2 trees of 3 + 2 extras + 3 peering.
  EXPECT_EQ(g.net.num_edges(), 11);
  int crossing = 0;
  for (const Edge& e : g.net.edges()) {
    crossing += (g.side_s[static_cast<std::size_t>(e.u)] !=
                 g.side_s[static_cast<std::size_t>(e.v)])
                    ? 1
                    : 0;
  }
  EXPECT_EQ(crossing, 3);
}

}  // namespace
}  // namespace streamrel
