// Cross-cutting invariants of flow reliability, checked against the
// exact algorithms on randomized instances (DESIGN.md §6 item 3). These
// are the properties a DOWNSTREAM user reasons with; if any algorithm
// violated one, the library would be lying even if internally
// "consistent".

#include <gtest/gtest.h>

#include "streamrel/core/reliability_facade.hpp"
#include "streamrel/graph/generators.hpp"
#include "streamrel/reliability/naive.hpp"
#include "test_support.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

GeneratedNetwork random_case(Xoshiro256& rng, int trial) {
  const EdgeKind kind =
      (trial % 2 == 0) ? EdgeKind::kUndirected : EdgeKind::kDirected;
  return random_multigraph(rng, static_cast<int>(rng.uniform_int(2, 6)),
                           static_cast<int>(rng.uniform_int(1, 11)), {1, 3},
                           {0.05, 0.6}, kind);
}

TEST(Invariants, ReliabilityLiesInUnitInterval) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 40; ++trial) {
    const GeneratedNetwork g = random_case(rng, trial);
    const double r =
        reliability_naive(g.net, {g.source, g.sink, rng.uniform_int(1, 3)})
            .reliability;
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0 + 1e-12);
  }
}

TEST(Invariants, MonotoneNonIncreasingInEachFailureProbability) {
  Xoshiro256 rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    GeneratedNetwork g = random_case(rng, trial);
    const FlowDemand demand{g.source, g.sink, rng.uniform_int(1, 2)};
    const double before = reliability_naive(g.net, demand).reliability;
    const EdgeId victim = static_cast<EdgeId>(
        rng.uniform_below(static_cast<std::uint64_t>(g.net.num_edges())));
    const double old_p = g.net.edge(victim).failure_prob;
    g.net.set_failure_prob(victim, std::min(0.95, old_p + 0.3));
    const double after = reliability_naive(g.net, demand).reliability;
    EXPECT_LE(after, before + 1e-12) << "trial " << trial;
  }
}

TEST(Invariants, MonotoneNonIncreasingInDemand) {
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const GeneratedNetwork g = random_case(rng, trial);
    double prev = 1.0;
    for (Capacity d = 1; d <= 4; ++d) {
      const double r =
          reliability_naive(g.net, {g.source, g.sink, d}).reliability;
      EXPECT_LE(r, prev + 1e-12) << "trial " << trial << " d=" << d;
      prev = r;
    }
  }
}

TEST(Invariants, AddingAParallelLinkNeverHurts) {
  Xoshiro256 rng(4);
  for (int trial = 0; trial < 30; ++trial) {
    GeneratedNetwork g = random_case(rng, trial);
    const FlowDemand demand{g.source, g.sink, rng.uniform_int(1, 2)};
    const double before = reliability_naive(g.net, demand).reliability;
    // Duplicate a random existing link.
    const Edge e = g.net.edge(static_cast<EdgeId>(
        rng.uniform_below(static_cast<std::uint64_t>(g.net.num_edges()))));
    g.net.add_edge(e.u, e.v, e.capacity, e.failure_prob, e.kind);
    const double after = reliability_naive(g.net, demand).reliability;
    EXPECT_GE(after, before - 1e-12) << "trial " << trial;
  }
}

TEST(Invariants, RaisingACapacityNeverHurts) {
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    GeneratedNetwork g = random_case(rng, trial);
    const FlowDemand demand{g.source, g.sink, rng.uniform_int(1, 3)};
    const double before = reliability_naive(g.net, demand).reliability;
    const EdgeId victim = static_cast<EdgeId>(
        rng.uniform_below(static_cast<std::uint64_t>(g.net.num_edges())));
    g.net.set_capacity(victim, g.net.edge(victim).capacity + 1);
    const double after = reliability_naive(g.net, demand).reliability;
    EXPECT_GE(after, before - 1e-12) << "trial " << trial;
  }
}

TEST(Invariants, PerfectLinksFactorOutOfTheProbabilitySpace) {
  // Setting p(e) = 0 must equal conditioning on e alive: computing on
  // the same graph gives identical results through every method.
  Xoshiro256 rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    GeneratedNetwork g = random_case(rng, trial);
    const FlowDemand demand{g.source, g.sink, 1};
    for (EdgeId id = 0; id < g.net.num_edges(); id += 2) {
      g.net.set_failure_prob(id, 0.0);
    }
    const SolveReport report = compute_reliability(g.net, demand);
    EXPECT_NEAR(report.result.reliability,
                reliability_naive(g.net, demand).reliability, 1e-9);
  }
}

TEST(Invariants, DemandAboveTotalCapacityIsZeroEverywhere) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const GeneratedNetwork g = random_case(rng, trial);
    Capacity total = 0;
    for (const Edge& e : g.net.edges()) total += e.capacity;
    const FlowDemand demand{g.source, g.sink, total + 1};
    EXPECT_DOUBLE_EQ(reliability_naive(g.net, demand).reliability, 0.0);
    EXPECT_DOUBLE_EQ(
        compute_reliability(g.net, demand).result.reliability, 0.0);
  }
}

TEST(Invariants, ReversingTheDemandOnUndirectedGraphsIsSymmetric) {
  Xoshiro256 rng(8);
  for (int trial = 0; trial < 25; ++trial) {
    const GeneratedNetwork g =
        random_multigraph(rng, static_cast<int>(rng.uniform_int(2, 6)),
                          static_cast<int>(rng.uniform_int(1, 10)), {1, 3},
                          {0.05, 0.5}, EdgeKind::kUndirected);
    const Capacity d = rng.uniform_int(1, 3);
    EXPECT_NEAR(
        reliability_naive(g.net, {g.source, g.sink, d}).reliability,
        reliability_naive(g.net, {g.sink, g.source, d}).reliability, 1e-9)
        << "trial " << trial;
  }
}

TEST(Invariants, FacadeAlwaysAgreesWithNaiveOnMaskSizedInputs) {
  Xoshiro256 rng(9);
  for (int trial = 0; trial < 40; ++trial) {
    const GeneratedNetwork g = random_case(rng, trial);
    const FlowDemand demand{g.source, g.sink, rng.uniform_int(1, 3)};
    EXPECT_NEAR(compute_reliability(g.net, demand).result.reliability,
                reliability_naive(g.net, demand).reliability, 1e-9)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace streamrel
