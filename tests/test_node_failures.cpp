#include "streamrel/reliability/node_failures.hpp"

#include <gtest/gtest.h>

#include "streamrel/maxflow/maxflow.hpp"
#include "streamrel/reliability/naive.hpp"
#include "test_support.hpp"
#include "streamrel/util/config_prob.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

using testing::kTol;

// Independent oracle: enumerate edge states AND node states directly on
// the original network (a node failure removes all incident edges).
double brute_force_with_node_failures(const FlowNetwork& net,
                                      const FlowDemand& demand,
                                      const std::vector<NodeReliability>& nodes) {
  const int m = net.num_edges();
  const int n = net.num_nodes();
  double sum = 0.0;
  for (Mask edge_cfg = 0; edge_cfg < (Mask{1} << m); ++edge_cfg) {
    for (Mask node_cfg = 0; node_cfg < (Mask{1} << n); ++node_cfg) {
      double p = config_probability(net.failure_probs(), edge_cfg);
      for (int v = 0; v < n; ++v) {
        const double q = nodes[static_cast<std::size_t>(v)].failure_prob;
        p *= test_bit(node_cfg, v) ? (1.0 - q) : q;
      }
      if (p == 0.0) continue;
      // An edge is usable iff it and both endpoints are alive.
      Mask usable = 0;
      for (EdgeId id = 0; id < m; ++id) {
        const Edge& e = net.edge(id);
        if (test_bit(edge_cfg, id) && test_bit(node_cfg, e.u) &&
            test_bit(node_cfg, e.v)) {
          usable |= bit(id);
        }
      }
      // Demand endpoints must themselves be alive.
      if (!test_bit(node_cfg, demand.source) ||
          !test_bit(node_cfg, demand.sink)) {
        continue;
      }
      if (max_flow_masked(net, usable, demand.source, demand.sink,
                          MaxFlowAlgorithm::kEdmondsKarp,
                          demand.rate) >= demand.rate) {
        sum += p;
      }
    }
  }
  return sum;
}

FlowNetwork directed_diamond(double p) {
  FlowNetwork net(4);
  net.add_directed_edge(0, 1, 1, p);
  net.add_directed_edge(0, 2, 1, p);
  net.add_directed_edge(1, 3, 1, p);
  net.add_directed_edge(2, 3, 1, p);
  return net;
}

TEST(NodeSplitting, ShapeOfTransformedNetwork) {
  const FlowNetwork net = directed_diamond(0.1);
  const std::vector<NodeReliability> nodes(4, NodeReliability{0.2, 5});
  const SplitNetwork split = split_unreliable_nodes(net, {0, 3, 1}, nodes);
  EXPECT_EQ(split.net.num_nodes(), 8);
  EXPECT_EQ(split.net.num_edges(), 8);  // 4 internal + 4 original
  // Internal edges carry the node failure probability and relay capacity.
  for (NodeId v = 0; v < 4; ++v) {
    const Edge& internal =
        split.net.edge(split.node_edge[static_cast<std::size_t>(v)]);
    EXPECT_DOUBLE_EQ(internal.failure_prob, 0.2);
    EXPECT_EQ(internal.capacity, 5);
    EXPECT_TRUE(internal.directed());
  }
  // Demand enters at the source's v_in and leaves at the sink's v_out.
  EXPECT_EQ(split.demand.source, split.in_node[0]);
  EXPECT_EQ(split.demand.sink, split.out_node[3]);
}

TEST(NodeSplitting, ReliabilityMatchesJointBruteForce) {
  Xoshiro256 rng(12);
  for (int trial = 0; trial < 12; ++trial) {
    // Small random DAG-ish directed graph.
    const int n = static_cast<int>(rng.uniform_int(3, 5));
    FlowNetwork net(n);
    const int m = static_cast<int>(rng.uniform_int(2, 6));
    for (int i = 0; i < m; ++i) {
      NodeId u = 0, v = 0;
      while (u == v) {
        u = static_cast<NodeId>(rng.uniform_below(static_cast<std::uint64_t>(n)));
        v = static_cast<NodeId>(rng.uniform_below(static_cast<std::uint64_t>(n)));
      }
      net.add_directed_edge(u, v, rng.uniform_int(1, 2),
                            rng.uniform_real(0.0, 0.5));
    }
    std::vector<NodeReliability> nodes;
    for (int v = 0; v < n; ++v) {
      nodes.push_back(NodeReliability{rng.uniform_real(0.0, 0.4),
                                      NodeReliability::kNoRelayLimit});
    }
    const FlowDemand demand{0, static_cast<NodeId>(n - 1),
                            rng.uniform_int(1, 2)};
    const SplitNetwork split = split_unreliable_nodes(net, demand, nodes);
    EXPECT_NEAR(reliability_naive(split.net, split.demand).reliability,
                brute_force_with_node_failures(net, demand, nodes), kTol)
        << "trial " << trial;
  }
}

TEST(NodeSplitting, RelayCapacityLimitsThroughput) {
  FlowNetwork net(3);
  net.add_directed_edge(0, 1, 2, 0.0);
  net.add_directed_edge(1, 2, 2, 0.0);
  std::vector<NodeReliability> nodes(3, NodeReliability{0.0, 2});
  nodes[1].relay_capacity = 1;  // the middle peer can only relay 1 unit
  const SplitNetwork split = split_unreliable_nodes(net, {0, 2, 2}, nodes);
  EXPECT_NEAR(reliability_naive(split.net, split.demand).reliability, 0.0,
              kTol);
  const SplitNetwork split1 = split_unreliable_nodes(net, {0, 2, 1}, nodes);
  EXPECT_NEAR(reliability_naive(split1.net, split1.demand).reliability, 1.0,
              kTol);
}

TEST(NodeSplitting, SourceFailureCountsAgainstReliability) {
  FlowNetwork net(2);
  net.add_directed_edge(0, 1, 1, 0.0);
  std::vector<NodeReliability> nodes(2, NodeReliability{0.0});
  nodes[0].failure_prob = 0.25;
  const SplitNetwork split = split_unreliable_nodes(net, {0, 1, 1}, nodes);
  EXPECT_NEAR(reliability_naive(split.net, split.demand).reliability, 0.75,
              kTol);
}

TEST(NodeSplitting, RejectsUndirectedNetworks) {
  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 1, 0.1);
  EXPECT_THROW(
      split_unreliable_nodes(net, {0, 1, 1}, std::vector<NodeReliability>(2)),
      std::invalid_argument);
}

TEST(NodeSplitting, RejectsMismatchedNodeVector) {
  FlowNetwork net(3);
  net.add_directed_edge(0, 1, 1, 0.1);
  EXPECT_THROW(
      split_unreliable_nodes(net, {0, 1, 1}, std::vector<NodeReliability>(2)),
      std::invalid_argument);
}

}  // namespace
}  // namespace streamrel
