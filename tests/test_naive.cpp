#include "streamrel/reliability/naive.hpp"

#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "streamrel/graph/generators.hpp"
#include "test_support.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

using testing::brute_force_reliability;
using testing::kTol;

TEST(NaiveReliability, SingleLink) {
  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 1, 0.3);
  const auto result = reliability_naive(net, {0, 1, 1});
  EXPECT_NEAR(result.reliability, 0.7, kTol);
  EXPECT_EQ(result.configurations(), 2u);
}

TEST(NaiveReliability, SeriesMultiplies) {
  const FlowNetwork net = testing::series_pair(0.1, 0.2);
  EXPECT_NEAR(reliability_naive(net, {0, 2, 1}).reliability, 0.9 * 0.8, kTol);
}

TEST(NaiveReliability, ParallelComplements) {
  const FlowNetwork net = testing::parallel_pair(0.1, 0.2);
  // 1 - P(both down).
  EXPECT_NEAR(reliability_naive(net, {0, 1, 1}).reliability,
              1.0 - 0.1 * 0.2, kTol);
}

TEST(NaiveReliability, ParallelDemandTwoNeedsBoth) {
  const FlowNetwork net = testing::parallel_pair(0.1, 0.2);
  EXPECT_NEAR(reliability_naive(net, {0, 1, 2}).reliability, 0.9 * 0.8, kTol);
}

TEST(NaiveReliability, CapacityGatesDemand) {
  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 2, 0.25);
  EXPECT_NEAR(reliability_naive(net, {0, 1, 2}).reliability, 0.75, kTol);
  EXPECT_NEAR(reliability_naive(net, {0, 1, 3}).reliability, 0.0, kTol);
}

TEST(NaiveReliability, DiamondHandComputed) {
  // All links p = 0.5, demand 1: reliability = (# admitting configs)/32.
  const FlowNetwork net = testing::diamond(0.5);
  const auto result = reliability_naive(net, {0, 3, 1});
  EXPECT_NEAR(result.reliability, brute_force_reliability(net, {0, 3, 1}),
              kTol);
  // Two-terminal reliability of this bridge network at p=1/2 is 16/32.
  EXPECT_NEAR(result.reliability, 0.5, kTol);
}

TEST(NaiveReliability, ZeroFailureProbabilityGivesCertainty) {
  const FlowNetwork net = testing::series_pair(0.0, 0.0);
  EXPECT_NEAR(reliability_naive(net, {0, 2, 1}).reliability, 1.0, kTol);
}

TEST(NaiveReliability, DisconnectedDemandIsZero) {
  FlowNetwork net(3);
  net.add_undirected_edge(0, 1, 1, 0.1);
  EXPECT_DOUBLE_EQ(reliability_naive(net, {0, 2, 1}).reliability, 0.0);
}

TEST(NaiveReliability, MatchesBruteForceOnRandomGraphs) {
  Xoshiro256 rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    const EdgeKind kind = (trial % 2 == 0) ? EdgeKind::kUndirected
                                           : EdgeKind::kDirected;
    const GeneratedNetwork g = random_multigraph(
        rng, static_cast<int>(rng.uniform_int(2, 6)),
        static_cast<int>(rng.uniform_int(1, 10)), {1, 3}, {0.0, 0.6}, kind);
    const FlowDemand demand{g.source, g.sink, rng.uniform_int(1, 3)};
    EXPECT_NEAR(reliability_naive(g.net, demand).reliability,
                brute_force_reliability(g.net, demand), kTol)
        << "trial " << trial;
  }
}

class NaiveStrategyTest : public ::testing::TestWithParam<NaiveStrategy> {};

TEST_P(NaiveStrategyTest, AllStrategiesAgree) {
  Xoshiro256 rng(4096);
  NaiveOptions options;
  options.strategy = GetParam();
  for (int trial = 0; trial < 30; ++trial) {
    const EdgeKind kind = (trial % 2 == 0) ? EdgeKind::kUndirected
                                           : EdgeKind::kDirected;
    const GeneratedNetwork g = random_multigraph(
        rng, static_cast<int>(rng.uniform_int(2, 6)),
        static_cast<int>(rng.uniform_int(1, 11)), {1, 3}, {0.0, 0.5}, kind);
    const FlowDemand demand{g.source, g.sink, rng.uniform_int(1, 3)};
    const double reference = reliability_naive(g.net, demand).reliability;
    EXPECT_NEAR(reliability_naive(g.net, demand, options).reliability,
                reference, kTol)
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, NaiveStrategyTest,
    ::testing::Values(NaiveStrategy::kFromScratch,
                      NaiveStrategy::kGrayIncremental,
                      NaiveStrategy::kParallel),
    [](const ::testing::TestParamInfo<NaiveStrategy>& param_info) {
      switch (param_info.param) {
        case NaiveStrategy::kFromScratch:
          return "from_scratch";
        case NaiveStrategy::kGrayIncremental:
          return "gray_incremental";
        case NaiveStrategy::kParallel:
          return "parallel";
      }
      return "unknown";
    });

class NaiveAlgorithmTest : public ::testing::TestWithParam<MaxFlowAlgorithm> {
};

TEST_P(NaiveAlgorithmTest, SolverChoiceDoesNotChangeTheAnswer) {
  Xoshiro256 rng(512);
  NaiveOptions options;
  options.algorithm = GetParam();
  for (int trial = 0; trial < 20; ++trial) {
    const GeneratedNetwork g = random_multigraph(
        rng, static_cast<int>(rng.uniform_int(2, 5)),
        static_cast<int>(rng.uniform_int(1, 9)), {1, 3}, {0.0, 0.5});
    const FlowDemand demand{g.source, g.sink, rng.uniform_int(1, 2)};
    EXPECT_NEAR(reliability_naive(g.net, demand, options).reliability,
                brute_force_reliability(g.net, demand), kTol);
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, NaiveAlgorithmTest,
                         ::testing::Values(MaxFlowAlgorithm::kDinic,
                                           MaxFlowAlgorithm::kEdmondsKarp,
                                           MaxFlowAlgorithm::kPushRelabel));

#ifdef _OPENMP
TEST(NaiveReliability, ParallelPathIsExactWithForcedThreadCount) {
  // Even on a single-core host, force several OpenMP threads so the
  // parallel range split and per-thread merge actually execute.
  const int saved = omp_get_max_threads();
  omp_set_num_threads(4);
  Xoshiro256 rng(1212);
  NaiveOptions options;
  options.strategy = NaiveStrategy::kParallel;
  for (int trial = 0; trial < 10; ++trial) {
    const GeneratedNetwork g = random_multigraph(
        rng, static_cast<int>(rng.uniform_int(3, 6)),
        static_cast<int>(rng.uniform_int(10, 14)), {1, 3}, {0.05, 0.5});
    const FlowDemand demand{g.source, g.sink, 2};
    EXPECT_NEAR(reliability_naive(g.net, demand, options).reliability,
                reliability_naive(g.net, demand).reliability, kTol);
  }
  omp_set_num_threads(saved);
}
#endif

TEST(NaiveReliability, RejectsOversizedNetworks) {
  FlowNetwork net(2);
  for (int i = 0; i < 64; ++i) net.add_undirected_edge(0, 1, 1, 0.1);
  EXPECT_THROW(reliability_naive(net, {0, 1, 1}), std::invalid_argument);
}

TEST(NaiveReliability, RejectsBadDemands) {
  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 1, 0.1);
  EXPECT_THROW(reliability_naive(net, {0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(reliability_naive(net, {0, 1, 0}), std::invalid_argument);
}

TEST(NaiveReliability, CountersReported) {
  const FlowNetwork net = testing::diamond(0.3);
  const auto result = reliability_naive(net, {0, 3, 1});
  EXPECT_EQ(result.configurations(), 32u);
  EXPECT_EQ(result.maxflow_calls(), 32u);
}

}  // namespace
}  // namespace streamrel
