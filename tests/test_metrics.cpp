// The obs metrics subsystem: registry semantics (find-or-create, kind
// mismatch, node stability), Prometheus text-format exposition pinned
// against golden strings (escaping, sorted labels, counter/_total and
// histogram _bucket/+Inf/_count conventions, cumulativity), and the
// concurrency contract — scrapes under writers always render a
// well-formed document with monotonic counters.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "streamrel/obs/flight_recorder.hpp"
#include "streamrel/obs/metrics.hpp"
#include "streamrel/obs/request_log.hpp"
#include "streamrel/util/json.hpp"

#include <sstream>

namespace streamrel {
namespace {

TEST(MetricLabels, SortsByKeyAndRendersEscaped) {
  MetricLabels labels{{"zeta", "z"}, {"alpha", "a"}};
  labels.set("mid", "value with \"quotes\"\nand\\slash");
  EXPECT_EQ(labels.render(),
            "{alpha=\"a\",mid=\"value with \\\"quotes\\\"\\nand\\\\slash\","
            "zeta=\"z\"}");
  // Insertion order never matters: same logical set, same key.
  const MetricLabels swapped{{"alpha", "a"}, {"zeta", "z"}};
  const MetricLabels original{{"zeta", "z"}, {"alpha", "a"}};
  EXPECT_EQ(swapped.render(), original.render());
  EXPECT_EQ(MetricLabels{}.render(), "");
}

TEST(MetricsRegistry, GoldenExposition) {
  MetricsRegistry registry;
  registry.counter("app_requests_total", "Requests served").inc(3);
  registry
      .counter("app_requests_total", "", MetricLabels{{"verb", "solve"}})
      .inc(2);
  registry.gauge("app_depth", "Queue depth").set(1.5);
  registry
      .histogram("app_latency_ms", "Latency", {1.0, 10.0},
                 MetricLabels{{"lane", "fast"}})
      .observe(0.5);
  registry
      .histogram("app_latency_ms", "", {1.0, 10.0},
                 MetricLabels{{"lane", "fast"}})
      .observe(5.0);

  // Families in name order, series in label order, histogram buckets
  // cumulative and closed by +Inf == _count.
  EXPECT_EQ(registry.render_prometheus(),
            "# HELP app_depth Queue depth\n"
            "# TYPE app_depth gauge\n"
            "app_depth 1.5\n"
            "# HELP app_latency_ms Latency\n"
            "# TYPE app_latency_ms histogram\n"
            "app_latency_ms_bucket{lane=\"fast\",le=\"1\"} 1\n"
            "app_latency_ms_bucket{lane=\"fast\",le=\"10\"} 2\n"
            "app_latency_ms_bucket{lane=\"fast\",le=\"+Inf\"} 2\n"
            "app_latency_ms_sum{lane=\"fast\"} 5.5\n"
            "app_latency_ms_count{lane=\"fast\"} 2\n"
            "# HELP app_requests_total Requests served\n"
            "# TYPE app_requests_total counter\n"
            "app_requests_total 3\n"
            "app_requests_total{verb=\"solve\"} 2\n");
  EXPECT_EQ(registry.series_count(), 4u);
}

TEST(MetricsRegistry, HandlesAreNodeStableAndSharedAcrossLabelOrder) {
  MetricsRegistry registry;
  MetricCounter& a = registry.counter(
      "x_total", "h", MetricLabels{{"k1", "v1"}, {"k2", "v2"}});
  MetricCounter& b = registry.counter(
      "x_total", "", MetricLabels{{"k2", "v2"}, {"k1", "v1"}});
  EXPECT_EQ(&a, &b);  // same logical series, same node
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  // Creating more series does not move existing handles.
  for (int i = 0; i < 100; ++i) {
    registry.counter("x_total", "",
                     MetricLabels{{"k1", std::to_string(i)}});
  }
  a.inc();
  EXPECT_EQ(b.value(), 2u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("dual_total", "h");
  EXPECT_THROW(registry.gauge("dual_total", "h"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("dual_total", "h", {1.0}),
               std::invalid_argument);
}

TEST(MetricCounter, SetAtLeastIsMonotonic) {
  MetricCounter c;
  c.set_at_least(10);
  EXPECT_EQ(c.value(), 10u);
  c.set_at_least(4);  // never backwards
  EXPECT_EQ(c.value(), 10u);
  c.set_at_least(12);
  EXPECT_EQ(c.value(), 12u);
}

TEST(MetricHistogram, BucketBoundariesAreInclusive) {
  MetricsRegistry registry;
  MetricHistogram& h = registry.histogram("h_ms", "h", {1.0, 2.0});
  h.observe(1.0);  // le="1" is inclusive per the Prometheus spec
  h.observe(2.5);  // overflow cell
  EXPECT_EQ(h.bucket_value(0), 1u);
  EXPECT_EQ(h.bucket_value(1), 0u);
  EXPECT_EQ(h.bucket_value(2), 1u);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.sum(), 3.5);
}

TEST(MetricsRegistry, HelpTextIsEscaped) {
  MetricsRegistry registry;
  registry.counter("esc_total", "line one\nline two \\ backslash");
  const std::string text = registry.render_prometheus();
  EXPECT_NE(
      text.find("# HELP esc_total line one\\nline two \\\\ backslash\n"),
      std::string::npos);
}

// Joins on scope exit so a failing ASSERT below cannot destroy
// joinable threads (std::terminate).
struct WriterPool {
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  void join() {
    stop.store(true);
    for (std::thread& th : writers) {
      if (th.joinable()) th.join();
    }
  }
  ~WriterPool() { join(); }
};

TEST(MetricsRegistry, ScrapesUnderConcurrentWritersStayWellFormed) {
  MetricsRegistry registry;
  // On a loaded machine the first scrape can beat every writer thread
  // to its first registration; a base series keeps it non-empty.
  registry.counter("writer_total", "per-writer");
  WriterPool pool;
  std::atomic<bool>& stop = pool.stop;
  std::vector<std::thread>& writers = pool.writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&registry, &stop, w] {
      MetricCounter& mine = registry.counter(
          "writer_total", "per-writer",
          MetricLabels{{"writer", std::to_string(w)}});
      MetricHistogram& lat = registry.histogram(
          "lat_ms", "latency", default_latency_buckets_ms(),
          MetricLabels{{"writer", std::to_string(w)}});
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        mine.inc();
        lat.observe(static_cast<double>(i % 97));
        // Fresh series mid-scrape exercise the create path too.
        registry.gauge("spot", "g",
                       MetricLabels{{"slot", std::to_string(i % 16)}});
        ++i;
      }
    });
  }

  std::uint64_t last_total = 0;
  for (int scrape = 0; scrape < 50; ++scrape) {
    const std::string text = registry.render_prometheus();
    ASSERT_FALSE(text.empty());
    // Every sample line must end in a parseable value; counters are
    // monotonic across scrapes.
    std::uint64_t total = 0;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty() || line[0] == '#') continue;
      const std::size_t space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos) << line;
      ASSERT_NO_THROW(static_cast<void>(std::stod(line.substr(space + 1))))
          << line;
      if (line.rfind("writer_total", 0) == 0) {
        total += static_cast<std::uint64_t>(std::stod(line.substr(space + 1)));
      }
    }
    EXPECT_GE(total, last_total);
    last_total = total;
  }
  // A final post-join scrape must still be monotone against the last
  // concurrent one (no writes lost, no counter going backwards).
  pool.join();
  std::uint64_t final_total = 0;
  const std::string text = registry.render_prometheus();
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("writer_total{", 0) == 0) {
      const std::size_t space = line.rfind(' ');
      final_total +=
          static_cast<std::uint64_t>(std::stod(line.substr(space + 1)));
    }
  }
  EXPECT_GE(final_total, last_total);
}

TEST(RequestLogger, WritesOneJsonLinePerRecord) {
  std::ostringstream out;
  RequestLogger logger(&out);
  ASSERT_TRUE(logger.enabled());

  RequestRecord record;
  record.seq = 7;
  record.unix_ms = 123;
  record.id_json = "42";
  record.tenant = "acme\"inc";  // exercises escaping
  record.network_id = "default";
  record.verb = "solve";
  record.lane = "interactive";
  record.engine = "adaptive";
  record.status = "ok";
  record.ok = true;
  record.queue_us = 12.25;
  record.solve_us = 1000.5;
  logger.log(record);

  RequestRecord shed;
  shed.seq = 8;
  shed.verb = "solve";
  shed.lane = "interactive";
  shed.shed = true;
  shed.error_code = "overloaded";
  logger.log(shed);

  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  const JsonValue first = parse_json(line);
  EXPECT_EQ(first.find("seq")->as_number(), 7.0);
  EXPECT_EQ(first.find("id")->as_number(), 42.0);
  EXPECT_EQ(first.find("tenant")->as_string(), "acme\"inc");
  EXPECT_EQ(first.find("verb")->as_string(), "solve");
  EXPECT_EQ(first.find("engine")->as_string(), "adaptive");
  EXPECT_TRUE(first.find("ok")->as_bool());
  EXPECT_EQ(first.find("queue_us")->as_number(), 12.2);  // %.1f rendering
  ASSERT_TRUE(std::getline(lines, line));
  const JsonValue second = parse_json(line);
  EXPECT_TRUE(second.find("id")->is_null());
  EXPECT_TRUE(second.find("shed")->as_bool());
  EXPECT_EQ(second.find("error_code")->as_string(), "overloaded");
  EXPECT_FALSE(std::getline(lines, line));

  RequestLogger disabled(nullptr);
  EXPECT_FALSE(disabled.enabled());
  disabled.log(record);  // no-op, no crash
}

TEST(FlightRecorder, RingKeepsTheLastNOldestFirst) {
  FlightRecorder recorder(3);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    RequestRecord record;
    record.seq = i;
    record.verb = "solve";
    recorder.record(record, {}, 0);
  }
  EXPECT_EQ(recorder.total_recorded(), 5u);
  const std::vector<FlightEntry> entries = recorder.snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].record.seq, 3u);
  EXPECT_EQ(entries[1].record.seq, 4u);
  EXPECT_EQ(entries[2].record.seq, 5u);
}

TEST(FlightRecorder, ChromeTraceSeparatesRequestsByPid) {
  FlightRecorder recorder(4);
  for (std::uint64_t i = 1; i <= 2; ++i) {
    RequestRecord record;
    record.seq = i;
    record.verb = "solve";
    std::vector<TraceEvent> spans(1);
    spans[0].name = "query_prepare";
    spans[0].category = "cache";
    spans[0].dur_ns = 1000;
    recorder.record(record, std::move(spans), 0);
  }
  const JsonValue doc = parse_json(recorder.dump_chrome_trace());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::vector<double> pids;
  for (const JsonValue& e : events->as_array()) {
    if (const JsonValue* ph = e.find("ph");
        ph != nullptr && ph->as_string() == "X") {
      pids.push_back(e.find("pid")->as_number());
    }
  }
  ASSERT_EQ(pids.size(), 2u);
  EXPECT_NE(pids[0], pids[1]);  // one track per request
}

}  // namespace
}  // namespace streamrel
