#include "streamrel/core/assignments.hpp"

#include <gtest/gtest.h>

#include "streamrel/p2p/scenario.hpp"

namespace streamrel {
namespace {

// Builds a star network where k parallel-ish crossing links join s-side
// node 0 to t-side node 1, with the given capacities.
struct CrossingFixture {
  FlowNetwork net{2};
  BottleneckPartition partition;

  explicit CrossingFixture(const std::vector<Capacity>& caps,
                           EdgeKind kind = EdgeKind::kUndirected) {
    for (Capacity c : caps) net.add_edge(0, 1, c, 0.1, kind);
    partition = partition_from_sides(net, 0, 1, {true, false});
  }
};

TEST(Assignments, PaperExample1ExactSetAndOrder) {
  // d = 5, three bottleneck links of capacity 3 (paper Example 1).
  CrossingFixture fx({3, 3, 3});
  const AssignmentSet set = enumerate_assignments(
      fx.net, fx.partition, 5, {AssignmentMode::kForwardOnly});
  ASSERT_EQ(set.size(), 12);
  const std::vector<std::vector<Capacity>> expected{
      {0, 2, 3}, {0, 3, 2}, {1, 1, 3}, {1, 2, 2}, {1, 3, 1}, {2, 0, 3},
      {2, 1, 2}, {2, 2, 1}, {2, 3, 0}, {3, 0, 2}, {3, 1, 1}, {3, 2, 0}};
  for (int j = 0; j < 12; ++j) {
    EXPECT_EQ(set.assignments[static_cast<std::size_t>(j)].usage,
              expected[static_cast<std::size_t>(j)])
        << "assignment " << j;
  }
}

TEST(Assignments, CapacityBoundsRespected) {
  CrossingFixture fx({1, 4});
  const AssignmentSet set = enumerate_assignments(
      fx.net, fx.partition, 3, {AssignmentMode::kForwardOnly});
  // (0,3) and (1,2) only.
  ASSERT_EQ(set.size(), 2);
  EXPECT_EQ(set.assignments[0].usage, (std::vector<Capacity>{0, 3}));
  EXPECT_EQ(set.assignments[1].usage, (std::vector<Capacity>{1, 2}));
}

TEST(Assignments, EmptyWhenCapacityInsufficient) {
  CrossingFixture fx({1, 1});
  EXPECT_EQ(enumerate_assignments(fx.net, fx.partition, 3,
                                  {AssignmentMode::kForwardOnly})
                .size(),
            0);
}

TEST(Assignments, SupportMatchesDefinition1) {
  // Paper Example 4: {e1, e3} supports (2,0,1) and (3,0,4) but not (1,1,0).
  const Assignment a{{2, 0, 1}};
  const Assignment b{{3, 0, 4}};
  const Assignment c{{1, 1, 0}};
  const Mask e1_e3 = mask_of({0, 2});
  EXPECT_EQ(a.support() & ~e1_e3, 0u);
  EXPECT_EQ(b.support() & ~e1_e3, 0u);
  EXPECT_NE(c.support() & ~e1_e3, 0u);
}

TEST(Assignments, SupportedByClassifiesExample5) {
  // Paper Example 5: D = {(1,2,0),(2,1,0),(1,1,1),(0,2,1),(2,0,1)}.
  AssignmentSet set;
  set.assignments = {Assignment{{1, 2, 0}}, Assignment{{2, 1, 0}},
                     Assignment{{1, 1, 1}}, Assignment{{0, 2, 1}},
                     Assignment{{2, 0, 1}}};
  // D_{e1,e2,e3} = D.
  EXPECT_EQ(set.supported_by(mask_of({0, 1, 2})), full_mask(5));
  // D_{e1,e2} = {(1,2,0),(2,1,0)}.
  EXPECT_EQ(set.supported_by(mask_of({0, 1})), mask_of({0, 1}));
  // D_{e2,e3} = {(0,2,1)}.
  EXPECT_EQ(set.supported_by(mask_of({1, 2})), mask_of({3}));
  // D_{e1,e3} = {(2,0,1)}.
  EXPECT_EQ(set.supported_by(mask_of({0, 2})), mask_of({4}));
  // Size <= 1 subsets support nothing.
  EXPECT_EQ(set.supported_by(mask_of({0})), 0u);
  EXPECT_EQ(set.supported_by(mask_of({1})), 0u);
  EXPECT_EQ(set.supported_by(mask_of({2})), 0u);
  EXPECT_EQ(set.supported_by(0), 0u);
}

TEST(Assignments, SignedModeIncludesNegativeUsage) {
  CrossingFixture fx({2, 2});
  const AssignmentSet set =
      enumerate_assignments(fx.net, fx.partition, 1, {AssignmentMode::kSigned});
  // Net sum 1. Outer bounds: hi = min(2, d + back_other) = 2,
  // lo = -min(2, fwd_other - d) = -1. Valid tuples in lex order:
  // (-1,2), (0,1), (1,0), (2,-1).
  ASSERT_EQ(set.size(), 4);
  EXPECT_EQ(set.assignments[0].usage, (std::vector<Capacity>{-1, 2}));
  EXPECT_EQ(set.assignments[1].usage, (std::vector<Capacity>{0, 1}));
  EXPECT_EQ(set.assignments[2].usage, (std::vector<Capacity>{1, 0}));
  EXPECT_EQ(set.assignments[3].usage, (std::vector<Capacity>{2, -1}));
}

TEST(Assignments, SignedModeWithHigherDemandAllowsBackflow) {
  CrossingFixture fx({3, 3});
  const AssignmentSet fwd = enumerate_assignments(
      fx.net, fx.partition, 2, {AssignmentMode::kForwardOnly});
  const AssignmentSet sgn =
      enumerate_assignments(fx.net, fx.partition, 2, {AssignmentMode::kSigned});
  EXPECT_EQ(fwd.size(), 3);  // (0,2) (1,1) (2,0)
  // Signed adds the circulating patterns (-1,3) and (3,-1): a link may
  // carry more than d forward when another carries the excess back.
  EXPECT_EQ(sgn.size(), 5);
}

TEST(Assignments, DirectedBackwardArcForcesSignedAuto) {
  FlowNetwork net(2);
  net.add_directed_edge(0, 1, 2, 0.1);  // S -> T
  net.add_directed_edge(1, 0, 2, 0.1);  // T -> S (backward)
  const BottleneckPartition p =
      partition_from_sides(net, 0, 1, {true, false});
  EXPECT_EQ(resolve_assignment_mode(net, p, AssignmentMode::kAuto),
            AssignmentMode::kSigned);
  const AssignmentSet set = enumerate_assignments(net, p, 1, {});
  EXPECT_EQ(set.mode, AssignmentMode::kSigned);
  // Forward arc usage in [0, min(2, d + 2) = 2]; backward arc usage in
  // [-min(2, fwd_other - d) = -1, 0]: tuples (1, 0) and (2, -1).
  ASSERT_EQ(set.size(), 2);
  EXPECT_EQ(set.assignments[0].usage, (std::vector<Capacity>{1, 0}));
  EXPECT_EQ(set.assignments[1].usage, (std::vector<Capacity>{2, -1}));
}

TEST(Assignments, DirectedForwardOnlyAutoStaysForward) {
  FlowNetwork net(2);
  net.add_directed_edge(0, 1, 2, 0.1);
  net.add_directed_edge(0, 1, 2, 0.1);
  const BottleneckPartition p =
      partition_from_sides(net, 0, 1, {true, false});
  EXPECT_EQ(resolve_assignment_mode(net, p, AssignmentMode::kAuto),
            AssignmentMode::kForwardOnly);
}

TEST(Assignments, DirectedBackwardArcCarriesNothingForward) {
  FlowNetwork net(2);
  net.add_directed_edge(1, 0, 5, 0.1);  // only a backward arc
  const BottleneckPartition p =
      partition_from_sides(net, 0, 1, {true, false});
  EXPECT_EQ(enumerate_assignments(net, p, 1, {AssignmentMode::kForwardOnly})
                .size(),
            0);
}

TEST(Assignments, GuardRejectsExplosiveSets) {
  CrossingFixture fx({9, 9, 9, 9});
  AssignmentOptions options;
  options.mode = AssignmentMode::kForwardOnly;
  options.max_assignments = 10;
  EXPECT_THROW(enumerate_assignments(fx.net, fx.partition, 9, options),
               std::invalid_argument);
}

TEST(Assignments, CountMatchesStarsAndBars) {
  // Unbounded capacities: |D| = C(d + k - 1, k - 1).
  CrossingFixture fx({10, 10, 10});
  const AssignmentSet set = enumerate_assignments(
      fx.net, fx.partition, 4, {AssignmentMode::kForwardOnly});
  EXPECT_EQ(set.size(), 15);  // C(6, 2)
}

TEST(Assignments, RejectsNonPositiveDemand) {
  CrossingFixture fx({2});
  EXPECT_THROW(enumerate_assignments(fx.net, fx.partition, 0, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace streamrel
