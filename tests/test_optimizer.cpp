#include "streamrel/p2p/optimizer.hpp"

#include <gtest/gtest.h>

#include "streamrel/p2p/scenario.hpp"
#include "streamrel/reliability/naive.hpp"
#include "test_support.hpp"

namespace streamrel {
namespace {

TEST(Optimizer, BacksUpTheBridgeFirst) {
  // In a bridged graph, a parallel backup for the bridge is by far the
  // best single upgrade — better than any intra-cluster candidate.
  const GeneratedNetwork g = make_fig2_bridge_graph(0.1);
  const FlowDemand demand{g.source, g.sink, 1};
  std::vector<UpgradeCandidate> candidates{
      {0, 1, 1, 0.1, EdgeKind::kUndirected},  // duplicate a cluster link
      {3, 4, 1, 0.1, EdgeKind::kUndirected},  // backup bridge (x - y)
      {5, 6, 1, 0.1, EdgeKind::kUndirected},  // cluster shortcut
  };
  const UpgradePlan plan =
      plan_overlay_upgrade(g.net, demand, candidates, 1);
  ASSERT_EQ(plan.chosen.size(), 1u);
  EXPECT_EQ(plan.chosen[0].u, 3);
  EXPECT_EQ(plan.chosen[0].v, 4);
  EXPECT_GT(plan.reliability_after, plan.reliability_before + 0.05);
}

TEST(Optimizer, TrajectoryIsNonDecreasingAndMatchesRecomputation) {
  const GeneratedNetwork g = make_fig2_bridge_graph(0.15);
  const FlowDemand demand{g.source, g.sink, 1};
  const UpgradePlan plan = plan_overlay_upgrade(
      g.net, demand, all_missing_links(g.net, 1, 0.15), 3);
  ASSERT_EQ(plan.trajectory.size(), plan.chosen.size());
  double prev = plan.reliability_before;
  for (double r : plan.trajectory) {
    EXPECT_GE(r, prev - 1e-12);
    prev = r;
  }
  EXPECT_DOUBLE_EQ(plan.trajectory.back(), plan.reliability_after);

  // Re-apply the chosen links and recompute from scratch.
  GeneratedNetwork upgraded = g;
  for (const UpgradeCandidate& c : plan.chosen) {
    upgraded.net.add_edge(c.u, c.v, c.capacity, c.failure_prob, c.kind);
  }
  EXPECT_NEAR(reliability_naive(upgraded.net, demand).reliability,
              plan.reliability_after, 1e-9);
}

TEST(Optimizer, ZeroBudgetChangesNothing) {
  const GeneratedNetwork g = make_fig4_graph(0.1);
  const FlowDemand demand{g.source, g.sink, 2};
  const UpgradePlan plan = plan_overlay_upgrade(
      g.net, demand, all_missing_links(g.net, 2, 0.1), 0);
  EXPECT_TRUE(plan.chosen.empty());
  EXPECT_DOUBLE_EQ(plan.reliability_before, plan.reliability_after);
}

TEST(Optimizer, StopsEarlyWhenNothingHelps) {
  // Perfect network: no candidate can improve reliability 1.
  FlowNetwork net(3);
  net.add_undirected_edge(0, 1, 2, 0.0);
  net.add_undirected_edge(1, 2, 2, 0.0);
  const UpgradePlan plan = plan_overlay_upgrade(
      net, {0, 2, 1}, all_missing_links(net, 1, 0.1), 5);
  EXPECT_TRUE(plan.chosen.empty());
  EXPECT_DOUBLE_EQ(plan.reliability_after, 1.0);
}

TEST(Optimizer, AllMissingLinksEnumerates) {
  FlowNetwork net(4);
  net.add_undirected_edge(0, 1, 1, 0.1);
  const auto candidates = all_missing_links(net, 2, 0.2);
  EXPECT_EQ(candidates.size(), 5u);  // C(4,2) - 1 existing
  for (const auto& c : candidates) {
    EXPECT_FALSE(c.u == 0 && c.v == 1);  // the existing link is excluded
    EXPECT_EQ(c.capacity, 2);
  }
}

TEST(Optimizer, ValidatesInput) {
  const GeneratedNetwork g = make_fig4_graph(0.1);
  const FlowDemand demand{g.source, g.sink, 2};
  EXPECT_THROW(plan_overlay_upgrade(g.net, demand, {}, -1),
               std::invalid_argument);
  EXPECT_THROW(
      plan_overlay_upgrade(g.net, demand, {{0, 0, 1, 0.1}}, 1),
      std::invalid_argument);
  EXPECT_THROW(
      plan_overlay_upgrade(g.net, demand, {{0, 99, 1, 0.1}}, 1),
      std::invalid_argument);
}

}  // namespace
}  // namespace streamrel
