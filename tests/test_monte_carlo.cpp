#include "streamrel/reliability/monte_carlo.hpp"

#include <gtest/gtest.h>

#include "streamrel/graph/generators.hpp"
#include "streamrel/reliability/naive.hpp"
#include "test_support.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

TEST(MonteCarlo, DeterministicForFixedSeed) {
  const FlowNetwork net = testing::diamond(0.2);
  MonteCarloOptions options;
  options.samples = 5000;
  options.seed = 99;
  const auto a = reliability_monte_carlo(net, {0, 3, 1}, options);
  const auto b = reliability_monte_carlo(net, {0, 3, 1}, options);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_DOUBLE_EQ(a.estimate, b.estimate);
}

TEST(MonteCarlo, CertainAndImpossibleEvents) {
  FlowNetwork certain(2);
  certain.add_undirected_edge(0, 1, 1, 0.0);
  MonteCarloOptions options;
  options.samples = 1000;
  EXPECT_DOUBLE_EQ(
      reliability_monte_carlo(certain, {0, 1, 1}, options).estimate, 1.0);
  EXPECT_DOUBLE_EQ(
      reliability_monte_carlo(certain, {0, 1, 2}, options).estimate, 0.0);
}

TEST(MonteCarlo, WilsonIntervalCoversExactValue) {
  Xoshiro256 rng(31);
  MonteCarloOptions options;
  options.samples = 20'000;
  int covered = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    const GeneratedNetwork g = random_multigraph(
        rng, static_cast<int>(rng.uniform_int(2, 6)),
        static_cast<int>(rng.uniform_int(1, 9)), {1, 3}, {0.05, 0.5});
    const FlowDemand demand{g.source, g.sink, rng.uniform_int(1, 2)};
    const double exact = reliability_naive(g.net, demand).reliability;
    options.seed = 1000 + static_cast<std::uint64_t>(trial);
    const auto mc = reliability_monte_carlo(g.net, demand, options);
    if (mc.wilson95.contains(exact)) ++covered;
  }
  // 95% interval: expect at most a couple of misses in 20 trials.
  EXPECT_GE(covered, 17);
}

TEST(MonteCarlo, EstimateConvergesWithSamples) {
  const FlowNetwork net = testing::diamond(0.3);
  const double exact = reliability_naive(net, {0, 3, 1}).reliability;
  MonteCarloOptions coarse;
  coarse.samples = 200;
  MonteCarloOptions fine;
  fine.samples = 100'000;
  const auto fine_result = reliability_monte_carlo(net, {0, 3, 1}, fine);
  EXPECT_NEAR(fine_result.estimate, exact, 0.01);
  EXPECT_LT(fine_result.ci95_halfwidth,
            reliability_monte_carlo(net, {0, 3, 1}, coarse).ci95_halfwidth);
}

TEST(MonteCarlo, HandlesNetworksBeyondMaskLimit) {
  FlowNetwork net(2);
  for (int i = 0; i < 80; ++i) net.add_undirected_edge(0, 1, 1, 0.5);
  MonteCarloOptions options;
  options.samples = 2000;
  const auto result = reliability_monte_carlo(net, {0, 1, 1}, options);
  EXPECT_GT(result.estimate, 0.99);  // 1 - 0.5^80
}

TEST(MonteCarlo, RejectsZeroSamples) {
  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 1, 0.1);
  MonteCarloOptions options;
  options.samples = 0;
  EXPECT_THROW(reliability_monte_carlo(net, {0, 1, 1}, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace streamrel
