#include "streamrel/maxflow/incremental_dinic.hpp"

#include <gtest/gtest.h>

#include "streamrel/graph/generators.hpp"
#include "streamrel/maxflow/maxflow.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

TEST(IncrementalMaxFlow, StartsWithAllEdgesAlive) {
  FlowNetwork net(3);
  net.add_undirected_edge(0, 1, 2, 0.1);
  net.add_undirected_edge(1, 2, 2, 0.1);
  IncrementalMaxFlow inc(net, {0, 2, 2});
  EXPECT_TRUE(inc.admits());
  EXPECT_EQ(inc.flow_value(), 2);
}

TEST(IncrementalMaxFlow, DisableAndRestoreBridge) {
  FlowNetwork net(3);
  net.add_undirected_edge(0, 1, 1, 0.1);
  net.add_undirected_edge(1, 2, 1, 0.1);
  IncrementalMaxFlow inc(net, {0, 2, 1});
  EXPECT_TRUE(inc.admits());
  inc.set_edge_alive(0, false);
  EXPECT_FALSE(inc.admits());
  EXPECT_EQ(inc.flow_value(), 0);
  inc.set_edge_alive(0, true);
  EXPECT_TRUE(inc.admits());
}

TEST(IncrementalMaxFlow, ReroutesAroundRemovedEdge) {
  // Two disjoint s-t paths; killing one path's edge must keep admitting.
  FlowNetwork net(4);
  net.add_undirected_edge(0, 1, 1, 0.1);
  net.add_undirected_edge(1, 3, 1, 0.1);
  net.add_undirected_edge(0, 2, 1, 0.1);
  net.add_undirected_edge(2, 3, 1, 0.1);
  IncrementalMaxFlow inc(net, {0, 3, 1});
  EXPECT_TRUE(inc.admits());
  inc.set_edge_alive(0, false);
  EXPECT_TRUE(inc.admits());
  inc.set_edge_alive(2, false);
  EXPECT_FALSE(inc.admits());
  inc.set_edge_alive(0, true);
  EXPECT_TRUE(inc.admits());
}

TEST(IncrementalMaxFlow, ToggleIsIdempotent) {
  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 1, 0.1);
  IncrementalMaxFlow inc(net, {0, 1, 1});
  inc.set_edge_alive(0, true);  // no-op
  EXPECT_TRUE(inc.admits());
  inc.set_edge_alive(0, false);
  inc.set_edge_alive(0, false);  // no-op
  EXPECT_FALSE(inc.admits());
}

TEST(IncrementalMaxFlow, EdgeIncidentToSourceAndSink) {
  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 3, 0.1);
  net.add_undirected_edge(0, 1, 3, 0.1);
  IncrementalMaxFlow inc(net, {0, 1, 5});
  EXPECT_TRUE(inc.admits());  // 6 >= 5
  inc.set_edge_alive(0, false);
  EXPECT_FALSE(inc.admits());
  EXPECT_EQ(inc.flow_value(), 3);
  inc.set_edge_alive(0, true);
  EXPECT_TRUE(inc.admits());
}

TEST(IncrementalMaxFlow, RejectsBadEdgeId) {
  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 1, 0.1);
  IncrementalMaxFlow inc(net, {0, 1, 1});
  EXPECT_THROW(inc.set_edge_alive(5, false), std::invalid_argument);
}

// The load-bearing property: arbitrary toggle sequences must always agree
// with a from-scratch bounded max-flow of the current configuration.
class IncrementalRandomTest
    : public ::testing::TestWithParam<std::tuple<int, int, EdgeKind>> {};

TEST_P(IncrementalRandomTest, MatchesFromScratchUnderRandomToggles) {
  const auto [nodes, edges, kind] = GetParam();
  Xoshiro256 rng(mix_seed(static_cast<std::uint64_t>(nodes),
                          static_cast<std::uint64_t>(edges)));
  for (int trial = 0; trial < 25; ++trial) {
    // High-capacity trials exercise multi-unit repairs through the
    // fictitious value channel (including value-increasing deletions).
    const Capacity cap_hi = (trial % 3 == 0) ? 6 : 3;
    const GeneratedNetwork g =
        random_multigraph(rng, nodes, edges, {1, cap_hi}, {0.0, 0.4}, kind);
    const Capacity rate = rng.uniform_int(1, 2 * cap_hi);
    const FlowDemand demand{g.source, g.sink, rate};
    IncrementalMaxFlow inc(g.net, demand);
    Mask alive = full_mask(g.net.num_edges());
    for (int step = 0; step < 60; ++step) {
      const int e = static_cast<int>(rng.uniform_below(
          static_cast<std::uint64_t>(g.net.num_edges())));
      const bool to_alive = !test_bit(alive, e);
      alive ^= bit(e);
      inc.set_edge_alive(e, to_alive);
      const Capacity expect = max_flow_masked(g.net, alive, g.source, g.sink,
                                              MaxFlowAlgorithm::kDinic, rate);
      ASSERT_EQ(inc.flow_value(), expect)
          << "trial " << trial << " step " << step << " alive=" << alive;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IncrementalRandomTest,
    ::testing::Values(std::tuple{3, 6, EdgeKind::kUndirected},
                      std::tuple{5, 10, EdgeKind::kUndirected},
                      std::tuple{7, 14, EdgeKind::kUndirected},
                      std::tuple{3, 6, EdgeKind::kDirected},
                      std::tuple{5, 10, EdgeKind::kDirected},
                      std::tuple{7, 14, EdgeKind::kDirected}));

}  // namespace
}  // namespace streamrel
