#include "streamrel/maxflow/maxflow.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "streamrel/graph/generators.hpp"
#include "streamrel/maxflow/config_residual.hpp"
#include "streamrel/maxflow/dinic.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

class MaxFlowAlgoTest : public ::testing::TestWithParam<MaxFlowAlgorithm> {};

TEST_P(MaxFlowAlgoTest, SingleDirectedEdge) {
  FlowNetwork net(2);
  net.add_directed_edge(0, 1, 5, 0.0);
  EXPECT_EQ(max_flow(net, 0, 1, GetParam()), 5);
  EXPECT_EQ(max_flow(net, 1, 0, GetParam()), 0);  // no reverse capacity
}

TEST_P(MaxFlowAlgoTest, SingleUndirectedEdgeFlowsBothWays) {
  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 5, 0.0);
  EXPECT_EQ(max_flow(net, 0, 1, GetParam()), 5);
  EXPECT_EQ(max_flow(net, 1, 0, GetParam()), 5);
}

TEST_P(MaxFlowAlgoTest, SeriesTakesMinimum) {
  FlowNetwork net(3);
  net.add_directed_edge(0, 1, 7, 0.0);
  net.add_directed_edge(1, 2, 3, 0.0);
  EXPECT_EQ(max_flow(net, 0, 2, GetParam()), 3);
}

TEST_P(MaxFlowAlgoTest, ParallelAddsUp) {
  FlowNetwork net(2);
  net.add_directed_edge(0, 1, 2, 0.0);
  net.add_directed_edge(0, 1, 3, 0.0);
  net.add_undirected_edge(0, 1, 4, 0.0);
  EXPECT_EQ(max_flow(net, 0, 1, GetParam()), 9);
}

TEST_P(MaxFlowAlgoTest, ClassicCLRSInstance) {
  // Cormen et al. Fig. 26.6 flow network, max flow 23.
  FlowNetwork net(6);
  net.add_directed_edge(0, 1, 16, 0.0);
  net.add_directed_edge(0, 2, 13, 0.0);
  net.add_directed_edge(1, 3, 12, 0.0);
  net.add_directed_edge(2, 1, 4, 0.0);
  net.add_directed_edge(2, 4, 14, 0.0);
  net.add_directed_edge(3, 2, 9, 0.0);
  net.add_directed_edge(3, 5, 20, 0.0);
  net.add_directed_edge(4, 3, 7, 0.0);
  net.add_directed_edge(4, 5, 4, 0.0);
  EXPECT_EQ(max_flow(net, 0, 5, GetParam()), 23);
}

TEST_P(MaxFlowAlgoTest, RequiresBackwardCancellation) {
  // The crossing pattern that defeats greedy path routing: the optimal
  // solution must cancel flow sent across the diagonal.
  FlowNetwork net(4);
  net.add_directed_edge(0, 1, 1, 0.0);
  net.add_directed_edge(0, 2, 1, 0.0);
  net.add_directed_edge(1, 2, 1, 0.0);
  net.add_directed_edge(1, 3, 1, 0.0);
  net.add_directed_edge(2, 3, 1, 0.0);
  EXPECT_EQ(max_flow(net, 0, 3, GetParam()), 2);
}

TEST_P(MaxFlowAlgoTest, DisconnectedSinkGivesZero) {
  FlowNetwork net(4);
  net.add_undirected_edge(0, 1, 5, 0.0);
  net.add_undirected_edge(2, 3, 5, 0.0);
  EXPECT_EQ(max_flow(net, 0, 3, GetParam()), 0);
}

TEST_P(MaxFlowAlgoTest, MaskedEdgesExcluded) {
  FlowNetwork net(3);
  net.add_directed_edge(0, 1, 2, 0.0);
  net.add_directed_edge(1, 2, 2, 0.0);
  net.add_directed_edge(0, 2, 1, 0.0);
  EXPECT_EQ(max_flow_masked(net, 0b111, 0, 2, GetParam()), 3);
  EXPECT_EQ(max_flow_masked(net, 0b100, 0, 2, GetParam()), 1);
  EXPECT_EQ(max_flow_masked(net, 0b011, 0, 2, GetParam()), 2);
  EXPECT_EQ(max_flow_masked(net, 0b000, 0, 2, GetParam()), 0);
}

TEST_P(MaxFlowAlgoTest, BoundedSolveReachesLimit) {
  FlowNetwork net(2);
  for (int i = 0; i < 6; ++i) net.add_directed_edge(0, 1, 1, 0.0);
  // Bounded runs report at least the limit when more is available.
  EXPECT_GE(max_flow(net, 0, 1, GetParam(), /*limit=*/3), 3);
  EXPECT_EQ(max_flow(net, 0, 1, GetParam(), /*limit=*/100), 6);
}

TEST_P(MaxFlowAlgoTest, AdmitsDemand) {
  FlowNetwork net(3);
  net.add_undirected_edge(0, 1, 2, 0.1);
  net.add_undirected_edge(1, 2, 2, 0.1);
  EXPECT_TRUE(admits_demand(net, 0b11, {0, 2, 2}, GetParam()));
  EXPECT_FALSE(admits_demand(net, 0b11, {0, 2, 3}, GetParam()));
  EXPECT_FALSE(admits_demand(net, 0b01, {0, 2, 1}, GetParam()));
}

TEST_P(MaxFlowAlgoTest, AgreesWithEdmondsKarpOnRandomNetworks) {
  Xoshiro256 rng(1234);
  for (int trial = 0; trial < 120; ++trial) {
    const int nodes = static_cast<int>(rng.uniform_int(2, 9));
    const int edges = static_cast<int>(rng.uniform_int(1, 18));
    const EdgeKind kind = (trial % 2 == 0) ? EdgeKind::kUndirected
                                           : EdgeKind::kDirected;
    const GeneratedNetwork g =
        random_multigraph(rng, nodes, edges, {1, 4}, {0.0, 0.5}, kind);
    const Capacity reference =
        max_flow(g.net, g.source, g.sink, MaxFlowAlgorithm::kEdmondsKarp);
    EXPECT_EQ(max_flow(g.net, g.source, g.sink, GetParam()), reference)
        << "trial " << trial;
  }
}

TEST_P(MaxFlowAlgoTest, ResidualStateIsAValidFlowAfterSolve) {
  // After solve, net flow out of s equals the returned value and every
  // interior node conserves flow — required for min-cut extraction.
  Xoshiro256 rng(555);
  for (int trial = 0; trial < 60; ++trial) {
    const GeneratedNetwork g = random_multigraph(
        rng, static_cast<int>(rng.uniform_int(2, 7)),
        static_cast<int>(rng.uniform_int(1, 12)), {1, 3}, {0.0, 0.4});
    ResidualGraph res = ResidualGraph::from_network_all(g.net);
    auto solver = make_solver(GetParam());
    const Capacity value = solver->solve(res, g.source, g.sink);

    std::vector<Capacity> balance(static_cast<std::size_t>(g.net.num_nodes()),
                                  0);
    for (EdgeId id = 0; id < g.net.num_edges(); ++id) {
      // Forward arcs come first per edge in insertion order (2*id).
      const ResidualArc& fwd = res.arc(2 * id);
      const Capacity net_flow = g.net.edge(id).capacity - fwd.cap;
      balance[static_cast<std::size_t>(g.net.edge(id).u)] -= net_flow;
      balance[static_cast<std::size_t>(g.net.edge(id).v)] += net_flow;
    }
    for (NodeId n = 0; n < g.net.num_nodes(); ++n) {
      if (n == g.source) {
        EXPECT_EQ(balance[static_cast<std::size_t>(n)], -value);
      } else if (n == g.sink) {
        EXPECT_EQ(balance[static_cast<std::size_t>(n)], value);
      } else {
        EXPECT_EQ(balance[static_cast<std::size_t>(n)], 0) << "node " << n;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, MaxFlowAlgoTest,
    ::testing::Values(MaxFlowAlgorithm::kDinic, MaxFlowAlgorithm::kEdmondsKarp,
                      MaxFlowAlgorithm::kPushRelabel),
    [](const ::testing::TestParamInfo<MaxFlowAlgorithm>& param_info) {
      std::string name(algorithm_name(param_info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(MinCut, ValueMatchesMaxFlowAndEdgesDisconnect) {
  Xoshiro256 rng(77);
  for (int trial = 0; trial < 80; ++trial) {
    const GeneratedNetwork g = random_multigraph(
        rng, static_cast<int>(rng.uniform_int(2, 7)),
        static_cast<int>(rng.uniform_int(1, 12)), {1, 3}, {0.0, 0.4});
    const MinCut cut = min_cut(g.net, g.source, g.sink);
    EXPECT_EQ(cut.value, max_flow(g.net, g.source, g.sink));
    Capacity cut_cap = 0;
    for (EdgeId id : cut.edges) cut_cap += g.net.edge(id).capacity;
    EXPECT_EQ(cut_cap, cut.value);
    EXPECT_TRUE(cut.source_side[static_cast<std::size_t>(g.source)]);
    EXPECT_FALSE(cut.source_side[static_cast<std::size_t>(g.sink)]);
  }
}

TEST(MinCardinalityCut, PrefersFewEdgesOverCapacity) {
  // s ==2x== m --1-- t : capacity min cut is the two parallel cap-1 edges?
  // No: cardinality cut is the single right edge even though its capacity
  // (5) exceeds the left pair's total (2).
  FlowNetwork net(3);
  net.add_undirected_edge(0, 1, 1, 0.1);
  net.add_undirected_edge(0, 1, 1, 0.1);
  const EdgeId right = net.add_undirected_edge(1, 2, 5, 0.1);
  const MinCut cut = min_cardinality_cut(net, 0, 2);
  EXPECT_EQ(cut.value, 1);
  EXPECT_EQ(cut.edges, std::vector<EdgeId>{right});
}

TEST(MinCut, RejectsBadEndpoints) {
  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 1, 0.1);
  EXPECT_THROW(min_cut(net, 0, 0), std::invalid_argument);
  EXPECT_THROW(max_flow(net, 0, 7), std::invalid_argument);
}

TEST(ConfigResidualTest, ResetRestoresPristineCapacities) {
  FlowNetwork net(3);
  net.add_undirected_edge(0, 1, 2, 0.1);
  net.add_directed_edge(1, 2, 3, 0.1);
  ConfigResidual res(net);
  DinicSolver solver;
  res.reset(0b11);
  EXPECT_EQ(solver.solve(res.graph(), 0, 2), 2);
  // Solve mutated capacities; reset must restore them.
  res.reset(0b11);
  EXPECT_EQ(solver.solve(res.graph(), 0, 2), 2);
  res.reset(0b01);
  EXPECT_EQ(solver.solve(res.graph(), 0, 2), 0);
  res.reset(0b10);
  EXPECT_EQ(solver.solve(res.graph(), 1, 2), 3);
}

TEST(ConfigResidualTest, SuperArcsSurviveResets) {
  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 1, 0.1);
  ConfigResidual res(net);
  const NodeId super = res.add_super_node();
  res.add_super_arc(1, super, 4, 0);
  DinicSolver solver;
  res.reset(0b1);
  EXPECT_EQ(solver.solve(res.graph(), 0, super), 1);
  res.set_super_arc(0, 0, 0);
  res.reset(0b1);
  EXPECT_EQ(solver.solve(res.graph(), 0, super), 0);
}

}  // namespace
}  // namespace streamrel
