#include "streamrel/reliability/factoring.hpp"

#include <gtest/gtest.h>

#include "streamrel/graph/generators.hpp"
#include "streamrel/reliability/naive.hpp"
#include "test_support.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

using testing::kTol;

TEST(Factoring, HandComputedBasics) {
  EXPECT_NEAR(
      reliability_factoring(testing::series_pair(0.1, 0.2), {0, 2, 1})
          .reliability,
      0.72, kTol);
  EXPECT_NEAR(
      reliability_factoring(testing::parallel_pair(0.1, 0.2), {0, 1, 1})
          .reliability,
      0.98, kTol);
  EXPECT_NEAR(reliability_factoring(testing::diamond(0.5), {0, 3, 1})
                  .reliability,
              0.5, kTol);
}

TEST(Factoring, MatchesNaiveOnRandomGraphs) {
  Xoshiro256 rng(9001);
  for (int trial = 0; trial < 80; ++trial) {
    const EdgeKind kind = (trial % 2 == 0) ? EdgeKind::kUndirected
                                           : EdgeKind::kDirected;
    const GeneratedNetwork g = random_multigraph(
        rng, static_cast<int>(rng.uniform_int(2, 7)),
        static_cast<int>(rng.uniform_int(1, 12)), {1, 3}, {0.0, 0.6}, kind);
    const FlowDemand demand{g.source, g.sink, rng.uniform_int(1, 3)};
    EXPECT_NEAR(reliability_factoring(g.net, demand).reliability,
                reliability_naive(g.net, demand).reliability, kTol)
        << "trial " << trial;
  }
}

TEST(Factoring, PrunesAggressively) {
  // A 12-link parallel bundle with demand 1: the pessimistic prune fires
  // as soon as one edge is conditioned up, so the recursion tree is far
  // smaller than 2^12.
  const GeneratedNetwork g = parallel_links(12, 1, 0.3);
  const auto result = reliability_factoring(g.net, {g.source, g.sink, 1});
  EXPECT_NEAR(result.reliability, 1.0 - std::pow(0.3, 12.0), 1e-9);
  EXPECT_LT(result.configurations(), 100u);
}

TEST(Factoring, ZeroProbabilityEdgesSkipTheDownBranch) {
  const GeneratedNetwork g = path_network(10, 1, 0.0);
  const auto result = reliability_factoring(g.net, {g.source, g.sink, 1});
  EXPECT_NEAR(result.reliability, 1.0, kTol);
  // p = 0 edges never branch down, so the tree is a single up-chain:
  // linear in |E| instead of 2^|E|.
  EXPECT_LE(result.configurations(), 11u);
}

TEST(Factoring, InfeasibleDemandShortCircuits) {
  const GeneratedNetwork g = path_network(5, 2, 0.1);
  const auto result = reliability_factoring(g.net, {g.source, g.sink, 3});
  EXPECT_DOUBLE_EQ(result.reliability, 0.0);
  EXPECT_EQ(result.configurations(), 1u);  // optimistic prune at the root
}

TEST(Factoring, WorksBeyondMaskLimit) {
  // 70 links — naive enumeration is impossible, factoring is fine.
  FlowNetwork net(2);
  for (int i = 0; i < 70; ++i) net.add_undirected_edge(0, 1, 1, 0.5);
  const auto result = reliability_factoring(net, {0, 1, 1});
  EXPECT_NEAR(result.reliability, 1.0 - std::pow(0.5, 70.0), kTol);
}

TEST(Factoring, BudgetGuardReportsStatus) {
  Xoshiro256 rng(5);
  const GeneratedNetwork g =
      random_connected(rng, 8, 8, {1, 2}, {0.3, 0.5});
  FactoringOptions options;
  options.max_tree_nodes = 2;
  const auto result =
      reliability_factoring(g.net, {g.source, g.sink, 1}, options);
  EXPECT_EQ(result.status, SolveStatus::kBudgetExhausted);
  EXPECT_FALSE(result.exact());
}

TEST(Factoring, RejectsBadDemand) {
  FlowNetwork net(2);
  net.add_undirected_edge(0, 1, 1, 0.1);
  EXPECT_THROW(reliability_factoring(net, {0, 0, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace streamrel
