#include "streamrel/util/config_prob.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "streamrel/util/prng.hpp"
#include "streamrel/util/stats.hpp"

namespace streamrel {
namespace {

TEST(ConfigProb, MatchesDirectProductOnAllMasks) {
  const std::vector<double> probs{0.1, 0.25, 0.5, 0.0, 0.9};
  const ConfigProbTable table(probs);
  for (Mask m = 0; m < (Mask{1} << probs.size()); ++m) {
    EXPECT_NEAR(table.prob(m), config_probability(probs, m), 1e-15);
  }
}

TEST(ConfigProb, AllConfigurationsSumToOne) {
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    std::vector<double> probs;
    for (int i = 0; i < n; ++i) probs.push_back(rng.uniform_real(0.0, 0.99));
    const ConfigProbTable table(probs);
    KahanSum sum;
    for (Mask m = 0; m < (Mask{1} << n); ++m) sum.add(table.prob(m));
    EXPECT_NEAR(sum.value(), 1.0, 1e-12);
  }
}

TEST(ConfigProb, EmptyNetworkHasUnitProbability) {
  const ConfigProbTable table({});
  EXPECT_DOUBLE_EQ(table.prob(0), 1.0);
}

TEST(ConfigProb, SingleLink) {
  const ConfigProbTable table({0.3});
  EXPECT_DOUBLE_EQ(table.prob(0b1), 0.7);
  EXPECT_DOUBLE_EQ(table.prob(0b0), 0.3);
}

TEST(ConfigProb, ZeroFailureLinkForcesAliveMass) {
  const ConfigProbTable table({0.0, 0.5});
  EXPECT_DOUBLE_EQ(table.prob(0b00), 0.0);
  EXPECT_DOUBLE_EQ(table.prob(0b10), 0.0);
  EXPECT_DOUBLE_EQ(table.prob(0b01), 0.5);
  EXPECT_DOUBLE_EQ(table.prob(0b11), 0.5);
}

TEST(ConfigProb, RejectsOutOfRangeProbabilities) {
  EXPECT_THROW(ConfigProbTable({1.0}), std::invalid_argument);
  EXPECT_THROW(ConfigProbTable({-0.1}), std::invalid_argument);
  EXPECT_THROW(ConfigProbTable({0.5, 2.0}), std::invalid_argument);
}

TEST(ConfigProb, RejectsTooManyLinks) {
  EXPECT_THROW(ConfigProbTable(std::vector<double>(64, 0.1)),
               std::invalid_argument);
}

TEST(ConfigProb, LargeLinkCountsUseTheDirectPath) {
  // 63 links: half tables would need 2^31 doubles, so the table falls
  // back to per-query products. Spot-check against the one-off helper.
  const std::vector<double> probs(63, 0.25);
  const ConfigProbTable table(probs);
  for (Mask m : {Mask{0}, full_mask(63), mask_of({0, 31, 62})}) {
    EXPECT_NEAR(table.prob(m), config_probability(probs, m), 1e-300);
  }
}

}  // namespace
}  // namespace streamrel
