#include "streamrel/graph/io.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "streamrel/graph/generators.hpp"
#include "streamrel/reliability/naive.hpp"
#include "streamrel/util/prng.hpp"

namespace streamrel {
namespace {

TEST(NetworkIo, ParsesMinimalFile) {
  const NetworkFile file = read_network_from_string(R"(
# a comment
nodes 3
edge 0 1 2 0.25
edge 1 2 3 0.5 directed
demand 0 2 2
)");
  EXPECT_EQ(file.net.num_nodes(), 3);
  EXPECT_EQ(file.net.num_edges(), 2);
  EXPECT_EQ(file.net.edge(0).capacity, 2);
  EXPECT_DOUBLE_EQ(file.net.edge(0).failure_prob, 0.25);
  EXPECT_FALSE(file.net.edge(0).directed());
  EXPECT_TRUE(file.net.edge(1).directed());
  ASSERT_TRUE(file.demand.has_value());
  EXPECT_EQ(file.demand->source, 0);
  EXPECT_EQ(file.demand->sink, 2);
  EXPECT_EQ(file.demand->rate, 2);
}

TEST(NetworkIo, InlineCommentsAndBlankLines) {
  const NetworkFile file = read_network_from_string(
      "nodes 2   # two peers\n"
      "\n"
      "edge 0 1 1 0.1 # the link\n");
  EXPECT_EQ(file.net.num_edges(), 1);
  EXPECT_FALSE(file.demand.has_value());
}

TEST(NetworkIo, RoundTripPreservesEverything) {
  Xoshiro256 rng(2026);
  for (int trial = 0; trial < 10; ++trial) {
    const EdgeKind kind = (trial % 2 == 0) ? EdgeKind::kUndirected
                                           : EdgeKind::kDirected;
    const GeneratedNetwork g = random_multigraph(
        rng, static_cast<int>(rng.uniform_int(2, 8)),
        static_cast<int>(rng.uniform_int(1, 15)), {1, 5}, {0.0, 0.9}, kind);
    const FlowDemand demand{g.source, g.sink, 2};
    const NetworkFile back =
        read_network_from_string(network_to_string(g.net, demand));
    ASSERT_EQ(back.net.num_nodes(), g.net.num_nodes());
    ASSERT_EQ(back.net.num_edges(), g.net.num_edges());
    for (EdgeId id = 0; id < g.net.num_edges(); ++id) {
      EXPECT_EQ(back.net.edge(id).u, g.net.edge(id).u);
      EXPECT_EQ(back.net.edge(id).v, g.net.edge(id).v);
      EXPECT_EQ(back.net.edge(id).capacity, g.net.edge(id).capacity);
      EXPECT_DOUBLE_EQ(back.net.edge(id).failure_prob,
                       g.net.edge(id).failure_prob);
      EXPECT_EQ(back.net.edge(id).kind, g.net.edge(id).kind);
    }
    ASSERT_TRUE(back.demand.has_value());
    EXPECT_EQ(back.demand->rate, demand.rate);
    // The semantics survive too.
    if (g.net.fits_mask()) {
      EXPECT_DOUBLE_EQ(
          reliability_naive(back.net, *back.demand).reliability,
          reliability_naive(g.net, demand).reliability);
    }
  }
}

TEST(NetworkIo, ErrorsNameTheLine) {
  try {
    read_network_from_string("nodes 2\nedge 0 5 1 0.1\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(NetworkIo, RejectsMalformedInput) {
  EXPECT_THROW(read_network_from_string(""), std::invalid_argument);
  EXPECT_THROW(read_network_from_string("edge 0 1 1 0.1\n"),
               std::invalid_argument);  // edge before nodes
  EXPECT_THROW(read_network_from_string("nodes 2\nnodes 3\n"),
               std::invalid_argument);  // duplicate nodes
  EXPECT_THROW(read_network_from_string("nodes 2\nedge 0 1\n"),
               std::invalid_argument);  // truncated edge
  EXPECT_THROW(read_network_from_string("nodes 2\nedge 0 1 1 0.1 sideways\n"),
               std::invalid_argument);  // bad kind
  EXPECT_THROW(read_network_from_string("nodes 2\nfrobnicate\n"),
               std::invalid_argument);  // unknown directive
  EXPECT_THROW(read_network_from_string("nodes 2\ndemand 0 0 1\n"),
               std::invalid_argument);  // invalid demand
  EXPECT_THROW(
      read_network_from_string("nodes 2\ndemand 0 1 1\ndemand 0 1 1\n"),
      std::invalid_argument);  // duplicate demand
  EXPECT_THROW(read_network_from_string("nodes -1\n"), std::invalid_argument);
}

TEST(NetworkIo, FuzzedInputThrowsButNeverCrashes) {
  // Random token soup must always surface as std::invalid_argument.
  Xoshiro256 rng(0xF422);
  const char* vocab[] = {"nodes", "edge",  "demand", "3",    "-7",
                         "0.5",   "1.5",   "#",      "\n",   "directed",
                         "x",     "1e308", "nan",    "0",    " "};
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const int tokens = static_cast<int>(rng.uniform_int(1, 25));
    for (int i = 0; i < tokens; ++i) {
      text += vocab[rng.uniform_below(std::size(vocab))];
      text += ' ';
      if (rng.bernoulli(0.3)) text += '\n';
    }
    try {
      const NetworkFile file = read_network_from_string(text);
      // Accepted inputs must at least be internally consistent.
      if (file.demand) {
        EXPECT_NO_THROW(file.net.check_demand(*file.demand));
      }
    } catch (const std::invalid_argument&) {
      // expected for most soups
    }
  }
}

TEST(NetworkIo, MissingFileThrows) {
  EXPECT_THROW(read_network_from_file("/nonexistent/net.txt"),
               std::invalid_argument);
}

TEST(NetworkIo, FileRoundTrip) {
  const GeneratedNetwork g = path_network(3, 2, 0.125);
  const std::string path = ::testing::TempDir() + "streamrel_io_test.net";
  {
    std::ofstream out(path);
    write_network(out, g.net, FlowDemand{g.source, g.sink, 1});
  }
  const NetworkFile back = read_network_from_file(path);
  EXPECT_EQ(back.net.num_edges(), 3);
  EXPECT_TRUE(back.demand.has_value());
}

}  // namespace
}  // namespace streamrel
