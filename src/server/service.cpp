#include "streamrel/server/service.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "streamrel/graph/io.hpp"
#include "streamrel/util/stopwatch.hpp"
#include "streamrel/util/table.hpp"
#include "streamrel/version.hpp"

namespace streamrel {

namespace {

/// Resolves a wire query against the session's registered default
/// demand: unset members inherit.
FlowDemand resolve_demand(const FlowDemand& fallback, const WireQuery& query) {
  FlowDemand demand = fallback;
  if (query.source) demand.source = *query.source;
  if (query.sink) demand.sink = *query.sink;
  if (query.rate) demand.rate = *query.rate;
  return demand;
}

std::string lane_json(const LaneSnapshot& snap) {
  std::string out = "{}";
  append_json_member(out, "submitted", std::to_string(snap.submitted));
  append_json_member(out, "completed", std::to_string(snap.completed));
  append_json_member(out, "rejected", std::to_string(snap.rejected));
  append_json_member(out, "queued", std::to_string(snap.queued));
  append_json_member(out, "running", std::to_string(snap.running));
  append_json_member(out, "ewma_service_ms",
                     format_double(snap.ewma_service_ms, 4));
  append_json_member(out, "queue_p50_ms", format_double(snap.queue_p50_ms, 4));
  append_json_member(out, "queue_p95_ms", format_double(snap.queue_p95_ms, 4));
  append_json_member(out, "queue_p99_ms", format_double(snap.queue_p99_ms, 4));
  append_json_member(out, "service_p50_ms",
                     format_double(snap.service_p50_ms, 4));
  append_json_member(out, "service_p95_ms",
                     format_double(snap.service_p95_ms, 4));
  append_json_member(out, "service_p99_ms",
                     format_double(snap.service_p99_ms, 4));
  return out;
}

}  // namespace

ReliabilityService::ReliabilityService(const ServiceOptions& options)
    : options_(options),
      registry_(options.default_cache, options.global_mask_tables) {
  if (options_.start_workers) {
    scheduler_ = std::make_unique<RequestScheduler>(options_.scheduler);
  }
}

ReliabilityService::~ReliabilityService() {
  if (scheduler_) scheduler_->stop();
}

double ReliabilityService::lane_budget_ms(WireLane lane) const noexcept {
  return lane == WireLane::kInteractive ? options_.interactive_budget_ms
                                        : options_.bulk_budget_ms;
}

void ReliabilityService::drain() {
  if (scheduler_) scheduler_->drain();
}

std::shared_ptr<TenantSession> ReliabilityService::find_session(
    const WireRequest& request, WireResponse* error) const {
  std::shared_ptr<TenantSession> session =
      registry_.find(request.tenant, request.network_id);
  if (!session) {
    *error = make_wire_error(
        request.id_json, to_string(request.verb), "unknown_network",
        "unknown tenant/network '" + request.tenant + "/" +
            request.network_id + "' (register_network first)");
  }
  return session;
}

WireResponse ReliabilityService::do_register(const WireRequest& request) {
  const NetworkFile file = read_network_from_string(request.network_text);
  FlowDemand demand = file.demand.value_or(FlowDemand{0, 0, 1});
  demand = resolve_demand(demand, request.query);

  const RegisterOutcome outcome = registry_.register_network(
      request.tenant, request.network_id, file.net, demand,
      request.max_mask_tables);

  WireResponse resp;
  resp.id_json = request.id_json;
  resp.verb.assign(to_string(request.verb));
  std::string result = "{}";
  append_json_member(result, "tenant", json_quote(request.tenant));
  append_json_member(result, "network_id", json_quote(request.network_id));
  append_json_member(result, "nodes", std::to_string(outcome.nodes));
  append_json_member(result, "edges", std::to_string(outcome.edges));
  append_json_member(result, "cache_budget",
                     std::to_string(outcome.cache_budget));
  append_json_member(result, "replaced", outcome.replaced ? "true" : "false");
  resp.result_json = std::move(result);
  return resp;
}

WireResponse ReliabilityService::do_solve(const WireRequest& request,
                                          const RequestHooks& hooks,
                                          bool force_expired) {
  WireResponse resp;
  const std::shared_ptr<TenantSession> session = find_session(request, &resp);
  if (!session) return resp;
  resp.id_json = request.id_json;
  resp.verb.assign(to_string(request.verb));

  const FlowDemand demand =
      resolve_demand(session->default_demand(), request.query);

  ExecContext ctx;
  ctx.max_threads = request.max_threads;
  ctx.progress = hooks.progress;
  if (force_expired) {
    ctx.set_deadline_ms(0.0);
  } else {
    ctx.apply_deadline_budgets(request.deadline_ms,
                               lane_budget_ms(request.lane));
  }

  SolveOptions options;
  options.method = request.query.method;
  options.context = &ctx;

  const Stopwatch timer;
  const SolveReport report =
      session->solve(demand, options, request.query.overrides);
  resp.result_json = render_solve_result(
      report, timer.elapsed_ms(), request.want_telemetry,
      force_expired ? std::string_view(", \"shed\": true")
                    : std::string_view());
  return resp;
}

WireResponse ReliabilityService::do_batch(const WireRequest& request,
                                          const RequestHooks& hooks,
                                          bool force_expired) {
  WireResponse resp;
  const std::shared_ptr<TenantSession> session = find_session(request, &resp);
  if (!session) return resp;
  resp.id_json = request.id_json;
  resp.verb.assign(to_string(request.verb));

  const FlowDemand base_demand = session->default_demand();
  std::vector<WhatIfQuery> queries;
  std::vector<FlowDemand> demands;
  queries.reserve(request.queries.size());
  demands.reserve(request.queries.size());
  for (const WireQuery& wq : request.queries) {
    WhatIfQuery q;
    q.demand = resolve_demand(base_demand, wq);
    q.prob_overrides = wq.overrides;
    q.method = wq.method;
    q.deadline_ms = wq.deadline_ms;
    demands.push_back(q.demand);
    queries.push_back(std::move(q));
  }

  BatchOptions options;
  options.max_threads = request.max_threads;
  options.progress = hooks.progress;
  if (force_expired) {
    options.deadline_ms = 1e-9;  // already shed: bounds-only pass
  } else {
    double effective = request.deadline_ms;
    const double budget = lane_budget_ms(request.lane);
    if (budget > 0.0 && (effective <= 0.0 || budget < effective)) {
      effective = budget;
    }
    options.deadline_ms = effective;
  }

  const Stopwatch timer;
  const BatchReport batch = session->batch(queries, options);
  const double elapsed_ms = timer.elapsed_ms();

  const TenantSession::Stats stats = session->stats();
  resp.legacy_lines.reserve(batch.reports.size());
  std::string results = "[";
  for (std::size_t i = 0; i < batch.reports.size(); ++i) {
    std::string line =
        render_batch_query_line(i, demands[i], batch.reports[i]);
    if (i) results += ", ";
    results += line;
    resp.legacy_lines.push_back(std::move(line));
  }
  results += "]";
  resp.legacy_summary =
      render_batch_summary(batch, stats.cache_hits, stats.cache_misses,
                           stats.cache_evictions, elapsed_ms);

  std::string result = "{}";
  append_json_member(result, "queries",
                     std::to_string(batch.reports.size()));
  append_json_member(result, "exact", std::to_string(batch.exact_count));
  append_json_member(result, "elapsed_ms", format_double(elapsed_ms, 4));
  append_json_member(result, "results", results);
  if (request.want_telemetry) {
    append_json_member(result, "telemetry", batch.telemetry.to_json());
  }
  if (force_expired) append_json_member(result, "shed", "true");
  resp.result_json = std::move(result);
  return resp;
}

WireResponse ReliabilityService::do_apply_delta(const WireRequest& request) {
  WireResponse resp;
  const std::shared_ptr<TenantSession> session = find_session(request, &resp);
  if (!session) return resp;
  resp.id_json = request.id_json;
  resp.verb.assign(to_string(request.verb));

  const DeltaOutcome outcome = session->apply_delta(request.delta);
  std::string result = "{}";
  append_json_member(result, "class",
                     json_quote(to_string(outcome.applied)));
  append_json_member(result, "entries_full",
                     std::to_string(outcome.entries_full));
  append_json_member(result, "entries_partial",
                     std::to_string(outcome.entries_partial));
  append_json_member(result, "entries_survived",
                     std::to_string(outcome.entries_survived));
  append_json_member(result, "partitions_survived",
                     std::to_string(outcome.partitions_survived));
  append_json_member(result, "assignments_survived",
                     std::to_string(outcome.assignments_survived));
  resp.result_json = std::move(result);
  return resp;
}

WireResponse ReliabilityService::do_replay(const WireRequest& request,
                                           const RequestHooks& hooks,
                                           bool force_expired) {
  (void)hooks;
  WireResponse resp;
  const std::shared_ptr<TenantSession> session = find_session(request, &resp);
  if (!session) return resp;
  resp.id_json = request.id_json;
  resp.verb.assign(to_string(request.verb));

  const FlowNetwork net = session->network_copy();
  const FlowDemand demand = session->default_demand();
  EventStream events = request.events;
  sort_event_stream(events);

  ReplayOptions options;
  options.cache = options_.default_cache;
  options.use_session = !request.cold;
  if (force_expired) {
    options.solve.deadline_ms = 1e-9;
  } else {
    double effective = request.deadline_ms;
    const double budget = lane_budget_ms(request.lane);
    if (budget > 0.0 && (effective <= 0.0 || budget < effective)) {
      effective = budget;
    }
    options.solve.deadline_ms = effective;
  }
  options.solve.max_threads = request.max_threads;

  const Stopwatch timer;
  const ReplayReport report = replay_churn(net, demand, events, options);
  const double elapsed_ms = timer.elapsed_ms();

  resp.legacy_lines.reserve(report.series.size() + 1);
  resp.legacy_lines.push_back(
      render_replay_initial_line(report.initial_reliability));
  for (const ReplayEventOutcome& outcome : report.series) {
    resp.legacy_lines.push_back(render_replay_event_line(outcome));
  }
  resp.legacy_summary =
      render_replay_summary(report, !request.cold, elapsed_ms);

  std::string result = "{}";
  append_json_member(result, "events", std::to_string(report.series.size()));
  append_json_member(result, "initial_reliability",
                     format_double(report.initial_reliability, 10));
  append_json_member(result, "final_reliability",
                     format_double(report.final_reliability, 10));
  append_json_member(result, "artifact_survival_rate",
                     format_double(report.artifact_survival_rate, 6));
  append_json_member(result, "mode",
                     request.cold ? "\"cold\"" : "\"warm\"");
  if (request.want_telemetry) {
    append_json_member(result, "telemetry", report.telemetry.to_json());
  }
  if (force_expired) append_json_member(result, "shed", "true");
  resp.result_json = std::move(result);
  return resp;
}

std::string ReliabilityService::stats_json() const {
  std::string out = "{}";
  append_json_member(out, "wire_schema", std::to_string(kWireSchemaVersion));
  append_json_member(out, "api_version",
                     std::to_string(STREAMREL_API_VERSION));
  append_json_member(out, "sessions", std::to_string(registry_.size()));
  append_json_member(
      out, "requests",
      std::to_string(requests_total_.load(std::memory_order_relaxed)));
  append_json_member(
      out, "errors",
      std::to_string(errors_total_.load(std::memory_order_relaxed)));
  append_json_member(
      out, "shed",
      std::to_string(shed_total_.load(std::memory_order_relaxed)));
  if (scheduler_) {
    std::string lanes = "{}";
    append_json_member(
        lanes, "interactive",
        lane_json(scheduler_->lane_snapshot(WireLane::kInteractive)));
    append_json_member(lanes, "bulk",
                       lane_json(scheduler_->lane_snapshot(WireLane::kBulk)));
    append_json_member(out, "lanes", lanes);
  }
  std::string tenants = "{}";
  for (const auto& [name, session] : registry_.snapshot()) {
    const TenantSession::Stats s = session->stats();
    std::string t = "{}";
    append_json_member(t, "queries", std::to_string(s.queries));
    append_json_member(t, "cache_hits", std::to_string(s.cache_hits));
    append_json_member(t, "cache_misses", std::to_string(s.cache_misses));
    append_json_member(t, "cache_evictions",
                       std::to_string(s.cache_evictions));
    append_json_member(t, "mask_tables", std::to_string(s.mask_tables));
    append_json_member(t, "budget", std::to_string(s.budget));
    append_json_member(tenants, name, t);
  }
  append_json_member(out, "tenants", tenants);
  return out;
}

WireResponse ReliabilityService::execute_impl(const WireRequest& request,
                                              const RequestHooks& hooks,
                                              bool force_expired) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  if (force_expired) shed_total_.fetch_add(1, std::memory_order_relaxed);
  WireResponse resp;
  try {
    std::optional<TraceCapture> capture;
    if (request.want_trace) capture.emplace();
    switch (request.verb) {
      case WireVerb::kRegisterNetwork:
        resp = do_register(request);
        break;
      case WireVerb::kSolve:
        resp = do_solve(request, hooks, force_expired);
        break;
      case WireVerb::kBatch:
        resp = do_batch(request, hooks, force_expired);
        break;
      case WireVerb::kApplyDelta:
        resp = do_apply_delta(request);
        break;
      case WireVerb::kReplay:
        resp = do_replay(request, hooks, force_expired);
        break;
      case WireVerb::kStats:
        resp.id_json = request.id_json;
        resp.verb.assign(to_string(request.verb));
        resp.result_json = stats_json();
        break;
      case WireVerb::kShutdown:
        shutdown_.store(true, std::memory_order_relaxed);
        resp.id_json = request.id_json;
        resp.verb.assign(to_string(request.verb));
        resp.result_json = "{\"stopping\": true}";
        break;
    }
    if (capture && resp.ok) {
      append_json_member(resp.result_json, "trace", capture->summary_json());
    }
  } catch (const WireParseError& e) {
    resp = make_wire_error(request.id_json, to_string(request.verb), e.code(),
                           e.what());
  } catch (const std::invalid_argument& e) {
    resp = make_wire_error(request.id_json, to_string(request.verb),
                           "bad_request", e.what());
  } catch (const std::exception& e) {
    resp = make_wire_error(request.id_json, to_string(request.verb),
                           "internal", e.what());
  }
  if (!resp.ok) errors_total_.fetch_add(1, std::memory_order_relaxed);
  return resp;
}

void ReliabilityService::handle_line(std::string_view line,
                                     std::function<void(WireResponse)> done,
                                     const RequestHooks& hooks) {
  WireRequest request;
  try {
    request = parse_wire_request(line);
  } catch (const WireParseError& e) {
    errors_total_.fetch_add(1, std::memory_order_relaxed);
    done(make_wire_error(e.id_json(), e.verb(), e.code(), e.what()));
    return;
  }

  const bool compute = request.verb == WireVerb::kSolve ||
                       request.verb == WireVerb::kBatch ||
                       request.verb == WireVerb::kReplay;
  if (!compute || !scheduler_) {
    done(execute(request, hooks));
    return;
  }

  // Effective admission deadline: the request budget tightened by the
  // lane budget. The scheduler sorts by it; we shed up front when the
  // estimated queue wait alone would blow it, and again at pick-up time
  // when the wait actually did.
  double effective_ms = request.deadline_ms;
  const double budget = lane_budget_ms(request.lane);
  if (budget > 0.0 && (effective_ms <= 0.0 || budget < effective_ms)) {
    effective_ms = budget;
  }
  const bool shed_hint =
      effective_ms > 0.0 &&
      scheduler_->estimate_queue_ms(request.lane) > effective_ms;

  using Clock = std::chrono::steady_clock;
  const bool has_deadline = effective_ms > 0.0;
  const Clock::time_point admitted = Clock::now();
  const Clock::duration budget_dur =
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double, std::milli>(
              has_deadline ? effective_ms : 0.0));

  // std::function requires copyable callables: share the request and
  // completion across the copies.
  auto shared_request = std::make_shared<WireRequest>(std::move(request));
  auto shared_done =
      std::make_shared<std::function<void(WireResponse)>>(std::move(done));
  auto shared_hooks = std::make_shared<RequestHooks>(hooks);
  const bool admitted_ok = scheduler_->submit(
      shared_request->lane, effective_ms,
      [this, shared_request, shared_done, shared_hooks, shed_hint,
       has_deadline, admitted, budget_dur] {
        const bool expired_in_queue =
            has_deadline && Clock::now() >= admitted + budget_dur;
        (*shared_done)(execute_impl(*shared_request, *shared_hooks,
                                    shed_hint || expired_in_queue));
      });
  if (!admitted_ok) {
    errors_total_.fetch_add(1, std::memory_order_relaxed);
    shed_total_.fetch_add(1, std::memory_order_relaxed);
    (*shared_done)(make_wire_error(
        shared_request->id_json, to_string(shared_request->verb), "overloaded",
        "lane '" + std::string(to_string(shared_request->lane)) +
            "' queue is full"));
  }
}

}  // namespace streamrel
