#include "streamrel/server/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>
#include <vector>

#include "streamrel/graph/io.hpp"
#include "streamrel/util/stopwatch.hpp"
#include "streamrel/util/table.hpp"
#include "streamrel/version.hpp"

namespace streamrel {

namespace {

/// Resolves a wire query against the session's registered default
/// demand: unset members inherit.
FlowDemand resolve_demand(const FlowDemand& fallback, const WireQuery& query) {
  FlowDemand demand = fallback;
  if (query.source) demand.source = *query.source;
  if (query.sink) demand.sink = *query.sink;
  if (query.rate) demand.rate = *query.rate;
  return demand;
}

std::string lane_json(const LaneSnapshot& snap, std::uint64_t shed) {
  std::string out = "{}";
  append_json_member(out, "submitted", std::to_string(snap.submitted));
  append_json_member(out, "completed", std::to_string(snap.completed));
  append_json_member(out, "rejected", std::to_string(snap.rejected));
  append_json_member(out, "shed", std::to_string(shed));
  append_json_member(out, "queued", std::to_string(snap.queued));
  append_json_member(out, "running", std::to_string(snap.running));
  append_json_member(out, "ewma_service_ms",
                     format_double(snap.ewma_service_ms, 4));
  append_json_member(out, "queue_estimate_ms",
                     format_double(snap.queue_estimate_ms, 4));
  append_json_member(out, "queue_p50_ms", format_double(snap.queue_p50_ms, 4));
  append_json_member(out, "queue_p95_ms", format_double(snap.queue_p95_ms, 4));
  append_json_member(out, "queue_p99_ms", format_double(snap.queue_p99_ms, 4));
  append_json_member(out, "service_p50_ms",
                     format_double(snap.service_p50_ms, 4));
  append_json_member(out, "service_p95_ms",
                     format_double(snap.service_p95_ms, 4));
  append_json_member(out, "service_p99_ms",
                     format_double(snap.service_p99_ms, 4));
  return out;
}

/// Splits the registry's "tenant/network_id" snapshot key back into its
/// halves (tenant names may not contain '/'; network ids may).
std::pair<std::string, std::string> split_session_key(
    const std::string& name) {
  const std::size_t slash = name.find('/');
  if (slash == std::string::npos) return {name, std::string()};
  return {name.substr(0, slash), name.substr(slash + 1)};
}

std::uint64_t unix_millis_now() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ReliabilityService::ReliabilityService(const ServiceOptions& options)
    : options_(options),
      registry_(options.default_cache, options.global_mask_tables,
                RegistryPersistOptions{options.state_dir,
                                       options.wal_compact_threshold,
                                       options.state_fsync}),
      flight_(options.flight_capacity),
      logger_(options.request_log) {
  // Pre-register the families a quiet daemon must still expose
  // (metrics_check --require runs before any overload or persist verb).
  for (const WireLane lane : {WireLane::kInteractive, WireLane::kBulk}) {
    metrics_
        .counter("streamrel_backpressure_rejects_total",
                 "Request lines refused by the connection in-flight cap",
                 MetricLabels{{"lane", std::string(to_string(lane))}})
        .inc(0);
  }
  if (registry_.persistent()) {
    metrics_.histogram("streamrel_checkpoint_duration_ms",
                       "Durable checkpoint wall time (snapshot + WAL reset)",
                       default_latency_buckets_ms());
    auto& restore_hist =
        metrics_.histogram("streamrel_restore_duration_ms",
                           "Durable restore wall time (snapshot + WAL replay)",
                           default_latency_buckets_ms());
    const Stopwatch timer;
    boot_restore_ = registry_.restore_all();
    if (boot_restore_.restored > 0) restore_hist.observe(timer.elapsed_ms());
  }
  if (options_.start_workers) {
    scheduler_ = std::make_unique<RequestScheduler>(options_.scheduler);
  }
}

ReliabilityService::~ReliabilityService() {
  if (scheduler_) scheduler_->stop();
  // Workers are quiesced: a final checkpoint catches journal tails that
  // never hit the compaction threshold. Failures only cost warm-restore
  // depth (the WAL already holds every delta).
  if (registry_.persistent()) registry_.checkpoint_all();
}

double ReliabilityService::lane_budget_ms(WireLane lane) const noexcept {
  return lane == WireLane::kInteractive ? options_.interactive_budget_ms
                                        : options_.bulk_budget_ms;
}

void ReliabilityService::drain() {
  if (scheduler_) scheduler_->drain();
}

std::shared_ptr<TenantSession> ReliabilityService::find_session(
    const WireRequest& request, WireResponse* error) const {
  std::shared_ptr<TenantSession> session =
      registry_.find(request.tenant, request.network_id);
  if (!session) {
    *error = make_wire_error(
        request.id_json, to_string(request.verb), "unknown_network",
        "unknown tenant/network '" + request.tenant + "/" +
            request.network_id + "' (register_network first)");
  }
  return session;
}

WireResponse ReliabilityService::do_register(const WireRequest& request) {
  const NetworkFile file = read_network_from_string(request.network_text);
  FlowDemand demand = file.demand.value_or(FlowDemand{0, 0, 1});
  demand = resolve_demand(demand, request.query);

  const RegisterOutcome outcome = registry_.register_network(
      request.tenant, request.network_id, file.net, demand,
      request.max_mask_tables);

  WireResponse resp;
  resp.id_json = request.id_json;
  resp.verb.assign(to_string(request.verb));
  std::string result = "{}";
  append_json_member(result, "tenant", json_quote(request.tenant));
  append_json_member(result, "network_id", json_quote(request.network_id));
  append_json_member(result, "nodes", std::to_string(outcome.nodes));
  append_json_member(result, "edges", std::to_string(outcome.edges));
  append_json_member(result, "cache_budget",
                     std::to_string(outcome.cache_budget));
  append_json_member(result, "replaced", outcome.replaced ? "true" : "false");
  if (registry_.persistent()) {
    append_json_member(result, "persisted",
                       outcome.persisted ? "true" : "false");
    if (!outcome.persist_error.empty()) {
      append_json_member(result, "persist_error",
                         json_quote(outcome.persist_error));
    }
  }
  resp.result_json = std::move(result);
  return resp;
}

WireResponse ReliabilityService::do_solve(const WireRequest& request,
                                          const RequestHooks& hooks,
                                          bool force_expired,
                                          RequestRecord* record) {
  WireResponse resp;
  const std::shared_ptr<TenantSession> session = find_session(request, &resp);
  if (!session) return resp;
  resp.id_json = request.id_json;
  resp.verb.assign(to_string(request.verb));

  const FlowDemand demand =
      resolve_demand(session->default_demand(), request.query);

  ExecContext ctx;
  ctx.max_threads = request.max_threads;
  ctx.progress = hooks.progress;
  if (force_expired) {
    ctx.set_deadline_ms(0.0);
  } else {
    ctx.apply_deadline_budgets(request.deadline_ms,
                               lane_budget_ms(request.lane));
  }

  SolveOptions options;
  options.method = request.query.method;
  options.context = &ctx;

  const Stopwatch timer;
  const SolveReport report =
      session->solve(demand, options, request.query.overrides);
  if (record != nullptr) {
    record->engine.assign(report.engine);
    record->status.assign(to_string(report.result.status));
  }
  bridge_solve_telemetry(report.engine, report.result.telemetry);
  resp.result_json = render_solve_result(
      report, timer.elapsed_ms(), request.want_telemetry,
      force_expired ? std::string_view(", \"shed\": true")
                    : std::string_view());
  return resp;
}

WireResponse ReliabilityService::do_batch(const WireRequest& request,
                                          const RequestHooks& hooks,
                                          bool force_expired) {
  WireResponse resp;
  const std::shared_ptr<TenantSession> session = find_session(request, &resp);
  if (!session) return resp;
  resp.id_json = request.id_json;
  resp.verb.assign(to_string(request.verb));

  const FlowDemand base_demand = session->default_demand();
  std::vector<WhatIfQuery> queries;
  std::vector<FlowDemand> demands;
  queries.reserve(request.queries.size());
  demands.reserve(request.queries.size());
  for (const WireQuery& wq : request.queries) {
    WhatIfQuery q;
    q.demand = resolve_demand(base_demand, wq);
    q.prob_overrides = wq.overrides;
    q.method = wq.method;
    q.deadline_ms = wq.deadline_ms;
    demands.push_back(q.demand);
    queries.push_back(std::move(q));
  }

  BatchOptions options;
  options.max_threads = request.max_threads;
  options.progress = hooks.progress;
  if (force_expired) {
    options.deadline_ms = 1e-9;  // already shed: bounds-only pass
  } else {
    double effective = request.deadline_ms;
    const double budget = lane_budget_ms(request.lane);
    if (budget > 0.0 && (effective <= 0.0 || budget < effective)) {
      effective = budget;
    }
    options.deadline_ms = effective;
  }

  const Stopwatch timer;
  const BatchReport batch = session->batch(queries, options);
  const double elapsed_ms = timer.elapsed_ms();

  const TenantSession::Stats stats = session->stats();
  resp.legacy_lines.reserve(batch.reports.size());
  std::string results = "[";
  for (std::size_t i = 0; i < batch.reports.size(); ++i) {
    std::string line =
        render_batch_query_line(i, demands[i], batch.reports[i]);
    if (i) results += ", ";
    results += line;
    resp.legacy_lines.push_back(std::move(line));
  }
  results += "]";
  resp.legacy_summary =
      render_batch_summary(batch, stats.cache_hits, stats.cache_misses,
                           stats.cache_evictions, elapsed_ms);

  std::string result = "{}";
  append_json_member(result, "queries",
                     std::to_string(batch.reports.size()));
  append_json_member(result, "exact", std::to_string(batch.exact_count));
  append_json_member(result, "elapsed_ms", format_double(elapsed_ms, 4));
  append_json_member(result, "results", results);
  if (request.want_telemetry) {
    append_json_member(result, "telemetry", batch.telemetry.to_json());
  }
  if (force_expired) append_json_member(result, "shed", "true");
  resp.result_json = std::move(result);
  return resp;
}

WireResponse ReliabilityService::do_apply_delta(const WireRequest& request) {
  WireResponse resp;
  const std::shared_ptr<TenantSession> session = find_session(request, &resp);
  if (!session) return resp;
  resp.id_json = request.id_json;
  resp.verb.assign(to_string(request.verb));

  const DeltaOutcome outcome = session->apply_delta(request.delta);
  std::string result = "{}";
  append_json_member(result, "class",
                     json_quote(to_string(outcome.applied)));
  append_json_member(result, "entries_full",
                     std::to_string(outcome.entries_full));
  append_json_member(result, "entries_partial",
                     std::to_string(outcome.entries_partial));
  append_json_member(result, "entries_survived",
                     std::to_string(outcome.entries_survived));
  append_json_member(result, "partitions_survived",
                     std::to_string(outcome.partitions_survived));
  append_json_member(result, "assignments_survived",
                     std::to_string(outcome.assignments_survived));
  resp.result_json = std::move(result);
  return resp;
}

WireResponse ReliabilityService::do_replay(const WireRequest& request,
                                           const RequestHooks& hooks,
                                           bool force_expired) {
  (void)hooks;
  WireResponse resp;
  const std::shared_ptr<TenantSession> session = find_session(request, &resp);
  if (!session) return resp;
  resp.id_json = request.id_json;
  resp.verb.assign(to_string(request.verb));

  const FlowNetwork net = session->network_copy();
  const FlowDemand demand = session->default_demand();
  EventStream events = request.events;
  sort_event_stream(events);

  ReplayOptions options;
  options.cache = options_.default_cache;
  options.use_session = !request.cold;
  if (force_expired) {
    options.solve.deadline_ms = 1e-9;
  } else {
    double effective = request.deadline_ms;
    const double budget = lane_budget_ms(request.lane);
    if (budget > 0.0 && (effective <= 0.0 || budget < effective)) {
      effective = budget;
    }
    options.solve.deadline_ms = effective;
  }
  options.solve.max_threads = request.max_threads;

  const Stopwatch timer;
  const ReplayReport report = replay_churn(net, demand, events, options);
  const double elapsed_ms = timer.elapsed_ms();

  resp.legacy_lines.reserve(report.series.size() + 1);
  resp.legacy_lines.push_back(
      render_replay_initial_line(report.initial_reliability));
  for (const ReplayEventOutcome& outcome : report.series) {
    resp.legacy_lines.push_back(render_replay_event_line(outcome));
  }
  resp.legacy_summary =
      render_replay_summary(report, !request.cold, elapsed_ms);

  std::string result = "{}";
  append_json_member(result, "events", std::to_string(report.series.size()));
  append_json_member(result, "initial_reliability",
                     format_double(report.initial_reliability, 10));
  append_json_member(result, "final_reliability",
                     format_double(report.final_reliability, 10));
  append_json_member(result, "artifact_survival_rate",
                     format_double(report.artifact_survival_rate, 6));
  append_json_member(result, "mode",
                     request.cold ? "\"cold\"" : "\"warm\"");
  if (request.want_telemetry) {
    append_json_member(result, "telemetry", report.telemetry.to_json());
  }
  if (force_expired) append_json_member(result, "shed", "true");
  resp.result_json = std::move(result);
  return resp;
}

std::string ReliabilityService::stats_json() const {
  std::string out = "{}";
  append_json_member(out, "wire_schema", std::to_string(kWireSchemaVersion));
  append_json_member(out, "api_version",
                     std::to_string(STREAMREL_API_VERSION));
  append_json_member(out, "sessions", std::to_string(registry_.size()));
  append_json_member(
      out, "requests",
      std::to_string(requests_total_.load(std::memory_order_relaxed)));
  append_json_member(
      out, "errors",
      std::to_string(errors_total_.load(std::memory_order_relaxed)));
  append_json_member(
      out, "shed",
      std::to_string(shed_total_.load(std::memory_order_relaxed)));
  if (scheduler_) {
    std::string lanes = "{}";
    append_json_member(
        lanes, "interactive",
        lane_json(scheduler_->lane_snapshot(WireLane::kInteractive),
                  shed_lane_[static_cast<int>(WireLane::kInteractive)].load(
                      std::memory_order_relaxed)));
    append_json_member(
        lanes, "bulk",
        lane_json(scheduler_->lane_snapshot(WireLane::kBulk),
                  shed_lane_[static_cast<int>(WireLane::kBulk)].load(
                      std::memory_order_relaxed)));
    append_json_member(out, "lanes", lanes);
  }
  const PersistTotals persist = registry_.persist_totals();
  std::string pjson = "{}";
  append_json_member(pjson, "enabled", persist.enabled ? "true" : "false");
  append_json_member(pjson, "checkpoints", std::to_string(persist.checkpoints));
  append_json_member(pjson, "wal_appends", std::to_string(persist.wal_appends));
  append_json_member(pjson, "wal_records", std::to_string(persist.wal_records));
  append_json_member(pjson, "bytes_written",
                     std::to_string(persist.bytes_written));
  append_json_member(pjson, "journal_errors",
                     std::to_string(persist.journal_errors));
  append_json_member(pjson, "restores", std::to_string(persist.restores));
  append_json_member(pjson, "corrupt", std::to_string(persist.corrupt));
  append_json_member(pjson, "replayed_deltas",
                     std::to_string(persist.replayed_deltas));
  append_json_member(out, "persist", pjson);
  std::string tenants = "{}";
  for (const auto& [name, session] : registry_.snapshot()) {
    const TenantSession::Stats s = session->stats();
    std::string t = "{}";
    append_json_member(t, "queries", std::to_string(s.queries));
    append_json_member(t, "cache_hits", std::to_string(s.cache_hits));
    append_json_member(t, "cache_misses", std::to_string(s.cache_misses));
    append_json_member(t, "cache_evictions",
                       std::to_string(s.cache_evictions));
    append_json_member(t, "invalidations_full",
                       std::to_string(s.invalidations_full));
    append_json_member(t, "invalidations_partial",
                       std::to_string(s.invalidations_partial));
    append_json_member(t, "invalidations_survived",
                       std::to_string(s.invalidations_survived));
    append_json_member(t, "mask_tables", std::to_string(s.mask_tables));
    append_json_member(t, "mask_bytes", std::to_string(s.mask_bytes));
    append_json_member(t, "budget", std::to_string(s.budget));
    append_json_member(t, "durable", s.durable ? "true" : "false");
    if (s.durable) {
      append_json_member(t, "restored", s.restored ? "true" : "false");
      append_json_member(t, "wal_records", std::to_string(s.wal_records));
      append_json_member(t, "checkpoints", std::to_string(s.checkpoints));
      append_json_member(t, "journal_errors",
                         std::to_string(s.journal_errors));
    }
    append_json_member(tenants, name, t);
  }
  append_json_member(out, "tenants", tenants);
  return out;
}

void ReliabilityService::bridge_solve_telemetry(std::string_view engine,
                                                const Telemetry& telemetry) {
  // Top-level counters only: the engine's own root counters are the
  // bounded, stable vocabulary (maxflow_calls, configurations, ...);
  // child subtrees would multiply series cardinality per tenant.
  MetricLabels labels{{"engine", std::string(engine)}, {"counter", ""}};
  for (const auto& [name, value] : telemetry.counters()) {
    labels.set("counter", name);
    metrics_
        .counter("streamrel_engine_work_total",
                 "Engine telemetry counters, bridged per solve", labels)
        .inc(value);
  }
}

void ReliabilityService::note_request(const RequestRecord& record,
                                      double queue_us) {
  MetricLabels by_code{{"verb", record.verb},
                       {"lane", record.lane},
                       {"code", record.error_code.empty()
                                    ? (record.shed ? "shed" : "ok")
                                    : record.error_code}};
  metrics_
      .counter("streamrel_requests_total",
               "Finished wire requests by verb, lane and outcome code",
               by_code)
      .inc();
  if (!record.error_code.empty()) {
    metrics_
        .counter("streamrel_errors_total", "Error responses by wire code",
                 MetricLabels{{"code", record.error_code}})
        .inc();
  }
  MetricLabels by_verb{{"verb", record.verb}, {"lane", record.lane}};
  metrics_
      .histogram("streamrel_request_latency_ms",
                 "Request execution latency (pickup to response rendered)",
                 default_latency_buckets_ms(), by_verb)
      .observe(record.solve_us / 1000.0);
  if (queue_us >= 0.0) {
    metrics_
        .histogram("streamrel_queue_time_ms",
                   "Actual time in the scheduler queue",
                   default_latency_buckets_ms(),
                   MetricLabels{{"lane", record.lane}})
        .observe(queue_us / 1000.0);
  }
}

void ReliabilityService::refresh_scrape_gauges() {
  if (scheduler_) {
    for (const WireLane lane : {WireLane::kInteractive, WireLane::kBulk}) {
      const LaneSnapshot snap = scheduler_->lane_snapshot(lane);
      MetricLabels labels{{"lane", std::string(to_string(lane))}};
      metrics_
          .gauge("streamrel_queue_depth", "Jobs waiting in the lane queue",
                 labels)
          .set(static_cast<double>(snap.queued));
      metrics_
          .gauge("streamrel_lane_running", "Jobs executing on the lane",
                 labels)
          .set(static_cast<double>(snap.running));
      metrics_
          .gauge("streamrel_queue_estimate_ms",
                 "EWMA-based expected queue wait for new work", labels)
          .set(snap.queue_estimate_ms);
      metrics_
          .gauge("streamrel_lane_ewma_service_ms",
                 "EWMA of per-job service time", labels)
          .set(snap.ewma_service_ms);
      metrics_
          .counter("streamrel_lane_submitted_total",
                   "Jobs admitted to the lane", labels)
          .set_at_least(snap.submitted);
      metrics_
          .counter("streamrel_lane_completed_total",
                   "Jobs finished on the lane", labels)
          .set_at_least(snap.completed);
      metrics_
          .counter("streamrel_lane_rejected_total",
                   "Jobs refused at admission (queue full)", labels)
          .set_at_least(snap.rejected);
      metrics_
          .counter("streamrel_sheds_total",
                   "Requests shed (deadline blown in queue or pre-admission)",
                   labels)
          .set_at_least(
              shed_lane_[static_cast<int>(lane)].load(std::memory_order_relaxed));
    }
  }
  metrics_
      .gauge("streamrel_sessions", "Registered tenant/network sessions")
      .set(static_cast<double>(registry_.size()));
  for (const auto& [name, session] : registry_.snapshot()) {
    const TenantSession::Stats s = session->stats();
    const auto [tenant, network] = split_session_key(name);
    MetricLabels labels{{"tenant", tenant}, {"network", network}};
    metrics_
        .counter("streamrel_session_queries_total",
                 "Queries answered by the session", labels)
        .set_at_least(s.queries);
    metrics_
        .counter("streamrel_cache_hits_total",
                 "Session cache hits (all layers)", labels)
        .set_at_least(s.cache_hits);
    metrics_
        .counter("streamrel_cache_misses_total",
                 "Session cache misses (all layers)", labels)
        .set_at_least(s.cache_misses);
    metrics_
        .counter("streamrel_cache_evictions_total",
                 "Mask-table LRU evictions", labels)
        .set_at_least(s.cache_evictions);
    MetricLabels outcome = labels;
    outcome.set("outcome", "full");
    metrics_
        .counter("streamrel_cache_invalidations_total",
                 "Per-entry invalidation outcomes of delta application",
                 outcome)
        .set_at_least(s.invalidations_full);
    outcome.set("outcome", "partial");
    metrics_
        .counter("streamrel_cache_invalidations_total", "", outcome)
        .set_at_least(s.invalidations_partial);
    outcome.set("outcome", "survived");
    metrics_
        .counter("streamrel_cache_invalidations_total", "", outcome)
        .set_at_least(s.invalidations_survived);
    metrics_
        .gauge("streamrel_cache_mask_tables", "Cached mask-table entries",
               labels)
        .set(static_cast<double>(s.mask_tables));
    metrics_
        .gauge("streamrel_cache_mask_table_budget",
               "Mask-table entry budget granted to the session", labels)
        .set(static_cast<double>(s.budget));
    metrics_
        .gauge("streamrel_cache_mask_bytes",
               "Resident bytes of cached slab mask tables", labels)
        .set(static_cast<double>(s.mask_bytes));
  }
  const PersistTotals persist = registry_.persist_totals();
  if (persist.enabled) {
    metrics_
        .counter("streamrel_checkpoints_total",
                 "Durable checkpoints written (snapshot + journal reset)")
        .set_at_least(persist.checkpoints);
    metrics_
        .counter("streamrel_wal_appends_total",
                 "Delta records appended to write-ahead journals")
        .set_at_least(persist.wal_appends);
    metrics_
        .counter("streamrel_state_bytes_written_total",
                 "Bytes committed to durable state (snapshots + WAL records)")
        .set_at_least(persist.bytes_written);
    metrics_
        .counter("streamrel_restores_total",
                 "Sessions restored from durable state (boot + restore verb)")
        .set_at_least(persist.restores);
    metrics_
        .counter("streamrel_state_corrupt_total",
                 "Durable stores refused as corrupt (cold-started instead)")
        .set_at_least(persist.corrupt);
    metrics_
        .counter("streamrel_replayed_deltas_total",
                 "WAL delta records replayed during restores")
        .set_at_least(persist.replayed_deltas);
    metrics_
        .counter("streamrel_journal_errors_total",
                 "Journal append/compaction failures (durability degraded)")
        .set_at_least(persist.journal_errors);
    metrics_
        .gauge("streamrel_wal_records",
               "Current write-ahead journal depth summed over sessions")
        .set(static_cast<double>(persist.wal_records));
  }
  metrics_
      .counter("streamrel_flight_records_total",
               "Requests recorded by the flight recorder")
      .set_at_least(flight_.total_recorded());
}

std::string ReliabilityService::metrics_text() {
  const Stopwatch timer;
  refresh_scrape_gauges();
  std::string text = metrics_.render_prometheus();
  // The scrape that reports this value is already rendered; the gauge
  // lands in the NEXT scrape, the usual client-library behavior.
  metrics_
      .gauge("streamrel_scrape_duration_ms",
             "Wall time of the previous metrics scrape")
      .set(timer.elapsed_ms());
  return text;
}

WireResponse ReliabilityService::do_metrics(const WireRequest& request) {
  WireResponse resp;
  resp.id_json = request.id_json;
  resp.verb.assign(to_string(request.verb));
  const std::string text = metrics_text();
  std::string result = "{}";
  append_json_member(result, "series",
                     std::to_string(metrics_.series_count()));
  append_json_member(result, "content_type",
                     json_quote(kPrometheusContentType));
  append_json_member(result, "text", json_quote(text));
  resp.result_json = std::move(result);
  return resp;
}

WireResponse ReliabilityService::do_dump(const WireRequest& request) {
  WireResponse resp;
  resp.id_json = request.id_json;
  resp.verb.assign(to_string(request.verb));
  const std::vector<FlightEntry> entries = flight_.snapshot();
  std::string records = "[";
  std::size_t spans = 0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i) records += ", ";
    records += entries[i].record.to_json();
    spans += entries[i].spans.size();
  }
  records += "]";
  std::string result = "{}";
  append_json_member(result, "records", records);
  append_json_member(result, "retained", std::to_string(entries.size()));
  append_json_member(result, "total_recorded",
                     std::to_string(flight_.total_recorded()));
  append_json_member(result, "spans", std::to_string(spans));
  if (!request.dump_path.empty()) {
    if (!flight_.dump_to_files(request.dump_path)) {
      return make_wire_error(request.id_json, to_string(request.verb),
                             "internal",
                             "cannot write flight bundle to prefix '" +
                                 request.dump_path + "'");
    }
    std::string files = "[";
    files += json_quote(request.dump_path + ".jsonl");
    files += ", ";
    files += json_quote(request.dump_path + ".trace.json");
    files += "]";
    append_json_member(result, "files", files);
  }
  resp.result_json = std::move(result);
  return resp;
}

WireResponse ReliabilityService::do_persist(const WireRequest& request) {
  if (!registry_.persistent()) {
    return make_wire_error(request.id_json, to_string(request.verb),
                           "bad_request",
                           "persistence is off (start the daemon with "
                           "--state-dir)");
  }
  WireResponse resp;
  const std::shared_ptr<TenantSession> session = find_session(request, &resp);
  if (!session) return resp;
  resp.id_json = request.id_json;
  resp.verb.assign(to_string(request.verb));

  const Stopwatch timer;
  std::string error;
  const StoreStatus status =
      registry_.persist_session(request.tenant, request.network_id, &error);
  const double elapsed_ms = timer.elapsed_ms();
  if (status != StoreStatus::kOk) {
    return make_wire_error(
        request.id_json, to_string(request.verb), "state_corrupt",
        error.empty() ? std::string(to_string(status)) : error);
  }
  metrics_
      .histogram("streamrel_checkpoint_duration_ms",
                 "Durable checkpoint wall time (snapshot + WAL reset)",
                 default_latency_buckets_ms())
      .observe(elapsed_ms);

  const TenantSession::Stats stats = session->stats();
  std::string result = "{}";
  append_json_member(result, "tenant", json_quote(request.tenant));
  append_json_member(result, "network_id", json_quote(request.network_id));
  append_json_member(result, "checkpoints", std::to_string(stats.checkpoints));
  append_json_member(result, "state_bytes_written",
                     std::to_string(stats.state_bytes_written));
  append_json_member(result, "elapsed_ms", format_double(elapsed_ms, 4));
  resp.result_json = std::move(result);
  return resp;
}

WireResponse ReliabilityService::do_restore(const WireRequest& request) {
  if (!registry_.persistent()) {
    return make_wire_error(request.id_json, to_string(request.verb),
                           "bad_request",
                           "persistence is off (start the daemon with "
                           "--state-dir)");
  }
  const Stopwatch timer;
  const RestoreOutcome outcome =
      registry_.restore_session(request.tenant, request.network_id);
  const double elapsed_ms = timer.elapsed_ms();
  if (outcome.status == StoreStatus::kNotFound) {
    return make_wire_error(request.id_json, to_string(request.verb),
                           "unknown_network",
                           "no durable state for '" + request.tenant + "/" +
                               request.network_id + "'");
  }
  if (outcome.status != StoreStatus::kOk) {
    return make_wire_error(
        request.id_json, to_string(request.verb), "state_corrupt",
        outcome.error.empty() ? std::string(to_string(outcome.status))
                              : outcome.error);
  }
  metrics_
      .histogram("streamrel_restore_duration_ms",
                 "Durable restore wall time (snapshot + WAL replay)",
                 default_latency_buckets_ms())
      .observe(elapsed_ms);

  WireResponse resp;
  resp.id_json = request.id_json;
  resp.verb.assign(to_string(request.verb));
  std::string result = "{}";
  append_json_member(result, "tenant", json_quote(request.tenant));
  append_json_member(result, "network_id", json_quote(request.network_id));
  append_json_member(result, "nodes", std::to_string(outcome.nodes));
  append_json_member(result, "edges", std::to_string(outcome.edges));
  append_json_member(result, "replayed_deltas",
                     std::to_string(outcome.replayed_deltas));
  append_json_member(result, "cache_budget",
                     std::to_string(outcome.cache_budget));
  append_json_member(result, "elapsed_ms", format_double(elapsed_ms, 4));
  resp.result_json = std::move(result);
  return resp;
}

WireResponse ReliabilityService::reject_overloaded(std::string_view line) {
  errors_total_.fetch_add(1, std::memory_order_relaxed);
  RequestRecord record;
  record.seq = request_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  record.ok = false;
  record.unix_ms = unix_millis_now();

  std::string id_json = "null";
  std::string verb;
  WireLane lane = WireLane::kInteractive;
  try {
    const WireRequest request = parse_wire_request(line);
    id_json = request.id_json;
    verb.assign(to_string(request.verb));
    lane = request.lane;
    record.id_json = request.id_json;
    record.tenant = request.tenant;
    record.network_id = request.network_id;
  } catch (const WireParseError& e) {
    // A line that does not even parse is refused for what it is — the
    // in-flight cap only shapes well-formed traffic.
    record.id_json = e.id_json() == "null" ? std::string() : e.id_json();
    record.verb = e.verb().empty() ? "?" : e.verb();
    record.lane.assign(to_string(WireLane::kInteractive));
    record.error_code = e.code();
    RequestRecord metric_view = record;
    metric_view.verb = "?";
    note_request(metric_view, -1.0);
    logger_.log(record);
    flight_.record(record);
    return make_wire_error(e.id_json(), e.verb(), e.code(), e.what());
  }

  metrics_
      .counter("streamrel_backpressure_rejects_total",
               "Request lines refused by the connection in-flight cap",
               MetricLabels{{"lane", std::string(to_string(lane))}})
      .inc();
  record.verb = verb;
  record.lane.assign(to_string(lane));
  record.error_code = "overloaded";
  note_request(record, -1.0);
  logger_.log(record);
  flight_.record(record);
  return make_wire_error(id_json, verb, "overloaded",
                         "connection has too many in-flight requests; retry "
                         "after a response drains");
}

WireResponse ReliabilityService::execute_impl(const WireRequest& request,
                                              const RequestHooks& hooks,
                                              bool force_expired,
                                              double queue_us) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  if (force_expired) {
    shed_total_.fetch_add(1, std::memory_order_relaxed);
    lane_shed(request.lane).fetch_add(1, std::memory_order_relaxed);
  }
  RequestRecord record;
  record.seq = request_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  record.id_json = request.id_json;
  record.tenant = request.tenant;
  record.network_id = request.network_id;
  record.verb.assign(to_string(request.verb));
  record.lane.assign(to_string(request.lane));
  record.shed = force_expired;
  record.queue_us = queue_us > 0.0 ? queue_us : 0.0;

  WireResponse resp;
  const Stopwatch exec_timer;
  std::optional<TraceCapture> capture;
  try {
    if (request.want_trace) capture.emplace();
    switch (request.verb) {
      case WireVerb::kRegisterNetwork:
        resp = do_register(request);
        break;
      case WireVerb::kSolve:
        resp = do_solve(request, hooks, force_expired, &record);
        break;
      case WireVerb::kBatch:
        resp = do_batch(request, hooks, force_expired);
        break;
      case WireVerb::kApplyDelta:
        resp = do_apply_delta(request);
        break;
      case WireVerb::kReplay:
        resp = do_replay(request, hooks, force_expired);
        break;
      case WireVerb::kStats:
        resp.id_json = request.id_json;
        resp.verb.assign(to_string(request.verb));
        resp.result_json = stats_json();
        break;
      case WireVerb::kMetrics:
        resp = do_metrics(request);
        break;
      case WireVerb::kDump:
        resp = do_dump(request);
        break;
      case WireVerb::kPersist:
        resp = do_persist(request);
        break;
      case WireVerb::kRestore:
        resp = do_restore(request);
        break;
      case WireVerb::kShutdown: {
        std::string result = "{\"stopping\": true}";
        if (registry_.persistent()) {
          // Checkpoint BEFORE acknowledging the stop: the client's next
          // boot restores exactly what it saw acknowledged.
          const Stopwatch timer;
          const std::size_t failures = registry_.checkpoint_all();
          metrics_
              .histogram("streamrel_checkpoint_duration_ms",
                         "Durable checkpoint wall time (snapshot + WAL reset)",
                         default_latency_buckets_ms())
              .observe(timer.elapsed_ms());
          append_json_member(
              result, "checkpointed",
              std::to_string(registry_.size() -
                             std::min(failures, registry_.size())));
          append_json_member(result, "checkpoint_failures",
                             std::to_string(failures));
        }
        shutdown_.store(true, std::memory_order_relaxed);
        resp.id_json = request.id_json;
        resp.verb.assign(to_string(request.verb));
        resp.result_json = std::move(result);
        break;
      }
    }
    if (capture && resp.ok) {
      append_json_member(resp.result_json, "trace", capture->summary_json());
    }
  } catch (const WireParseError& e) {
    resp = make_wire_error(request.id_json, to_string(request.verb), e.code(),
                           e.what());
  } catch (const std::invalid_argument& e) {
    resp = make_wire_error(request.id_json, to_string(request.verb),
                           "bad_request", e.what());
  } catch (const std::exception& e) {
    resp = make_wire_error(request.id_json, to_string(request.verb),
                           "internal", e.what());
  }
  if (!resp.ok) errors_total_.fetch_add(1, std::memory_order_relaxed);

  record.ok = resp.ok;
  record.error_code = resp.error_code;
  record.solve_us = exec_timer.elapsed_ms() * 1000.0;
  record.unix_ms = unix_millis_now();
  note_request(record, queue_us);
  std::vector<TraceEvent> spans;
  std::uint64_t dropped_spans = 0;
  if (capture) {
    spans = capture->events();
    dropped_spans = capture->dropped();
  }
  logger_.log(record);
  flight_.record(std::move(record), std::move(spans), dropped_spans);
  return resp;
}

void ReliabilityService::handle_line(std::string_view line,
                                     std::function<void(WireResponse)> done,
                                     const RequestHooks& hooks) {
  WireRequest request;
  try {
    request = parse_wire_request(line);
  } catch (const WireParseError& e) {
    errors_total_.fetch_add(1, std::memory_order_relaxed);
    // Protocol rejects never reach execute_impl, but they are still
    // requests the operator wants on dashboards and in the flight
    // recorder (a client suddenly speaking garbage is an incident).
    RequestRecord record;
    record.seq = request_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    record.id_json = e.id_json() == "null" ? std::string() : e.id_json();
    record.verb = e.verb().empty() ? "?" : e.verb();
    record.lane.assign(to_string(WireLane::kInteractive));
    record.ok = false;
    record.error_code = e.code();
    record.unix_ms = unix_millis_now();
    // The verb label must stay bounded: a client-supplied verb string
    // would mint a fresh series per typo. The log/flight record keeps
    // the raw verb for debugging; the metric gets the catch-all.
    RequestRecord metric_view = record;
    metric_view.verb = "?";
    note_request(metric_view, -1.0);
    logger_.log(record);
    flight_.record(record);
    done(make_wire_error(e.id_json(), e.verb(), e.code(), e.what()));
    return;
  }

  const bool compute = request.verb == WireVerb::kSolve ||
                       request.verb == WireVerb::kBatch ||
                       request.verb == WireVerb::kReplay;
  if (!compute || !scheduler_) {
    done(execute(request, hooks));
    return;
  }

  // Effective admission deadline: the request budget tightened by the
  // lane budget. The scheduler sorts by it; we shed up front when the
  // estimated queue wait alone would blow it, and again at pick-up time
  // when the wait actually did.
  double effective_ms = request.deadline_ms;
  const double budget = lane_budget_ms(request.lane);
  if (budget > 0.0 && (effective_ms <= 0.0 || budget < effective_ms)) {
    effective_ms = budget;
  }
  const double estimate_ms = scheduler_->estimate_queue_ms(request.lane);
  const bool shed_hint = effective_ms > 0.0 && estimate_ms > effective_ms;
  metrics_
      .gauge("streamrel_queue_estimate_ms",
             "EWMA-based expected queue wait for new work",
             MetricLabels{{"lane", std::string(to_string(request.lane))}})
      .set(estimate_ms);

  using Clock = std::chrono::steady_clock;
  const bool has_deadline = effective_ms > 0.0;
  const Clock::time_point admitted = Clock::now();
  const Clock::duration budget_dur =
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double, std::milli>(
              has_deadline ? effective_ms : 0.0));

  // std::function requires copyable callables: share the request and
  // completion across the copies.
  auto shared_request = std::make_shared<WireRequest>(std::move(request));
  auto shared_done =
      std::make_shared<std::function<void(WireResponse)>>(std::move(done));
  auto shared_hooks = std::make_shared<RequestHooks>(hooks);
  const bool admitted_ok = scheduler_->submit(
      shared_request->lane, effective_ms,
      [this, shared_request, shared_done, shared_hooks, shed_hint,
       has_deadline, admitted, budget_dur, estimate_ms, effective_ms] {
        const Clock::time_point picked_up = Clock::now();
        const bool expired_in_queue =
            has_deadline && picked_up >= admitted + budget_dur;
        const double queue_ms =
            std::chrono::duration<double, std::milli>(picked_up - admitted)
                .count();
        const MetricLabels lane_labels{
            {"lane", std::string(to_string(shared_request->lane))}};
        // Queue-time EWMA vs. actual: the estimator's absolute error,
        // the signal that tells an operator whether shedding decisions
        // are being made on good predictions.
        metrics_
            .histogram("streamrel_queue_estimate_error_ms",
                       "Absolute error of the queue-wait estimate at admission",
                       default_latency_buckets_ms(), lane_labels)
            .observe(std::abs(queue_ms - estimate_ms));
        if (has_deadline) {
          metrics_
              .histogram(
                  "streamrel_deadline_margin_ms",
                  "Effective deadline remaining when a worker picked the job "
                  "up (zero = shed in queue)",
                  default_latency_buckets_ms(), lane_labels)
              .observe(std::max(0.0, effective_ms - queue_ms));
        }
        (*shared_done)(execute_impl(*shared_request, *shared_hooks,
                                    shed_hint || expired_in_queue,
                                    queue_ms * 1000.0));
      });
  if (!admitted_ok) {
    errors_total_.fetch_add(1, std::memory_order_relaxed);
    shed_total_.fetch_add(1, std::memory_order_relaxed);
    lane_shed(shared_request->lane)
        .fetch_add(1, std::memory_order_relaxed);
    // Refused before admission: execute_impl never runs, so record the
    // outcome here — overload is exactly the signal the metrics exist
    // to make visible.
    RequestRecord record;
    record.seq = request_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    record.id_json = shared_request->id_json;
    record.tenant = shared_request->tenant;
    record.network_id = shared_request->network_id;
    record.verb.assign(to_string(shared_request->verb));
    record.lane.assign(to_string(shared_request->lane));
    record.ok = false;
    record.shed = true;
    record.error_code = "overloaded";
    record.unix_ms = unix_millis_now();
    note_request(record, -1.0);
    logger_.log(record);
    flight_.record(record);
    (*shared_done)(make_wire_error(
        shared_request->id_json, to_string(shared_request->verb), "overloaded",
        "lane '" + std::string(to_string(shared_request->lane)) +
            "' queue is full"));
  }
}

}  // namespace streamrel
