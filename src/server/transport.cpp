#include "streamrel/server/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <istream>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <vector>

namespace streamrel {

namespace {

/// True for an HTTP-style "GET <path> ..." request line; fills `path`.
/// The daemon's transports accept `GET /metrics` next to the JSON
/// protocol so a Prometheus scraper (or curl) needs no JSON client.
bool parse_get_line(std::string_view line, std::string_view* path) {
  // HTTP request lines end CRLF; tolerate bare LF from hand-typed
  // clients too.
  while (line.ends_with('\r')) line.remove_suffix(1);
  constexpr std::string_view kGet = "GET ";
  if (!line.starts_with(kGet)) return false;
  line.remove_prefix(kGet.size());
  const std::size_t space = line.find(' ');
  *path = space == std::string_view::npos ? line : line.substr(0, space);
  return true;
}

}  // namespace

StreamServeResult serve_stream(ReliabilityService& service, std::istream& in,
                               std::ostream& out,
                               const StreamServeOptions& options) {
  StreamServeResult result;
  std::mutex write_mu;
  // Submitted-but-unanswered requests on this stream. done callbacks may
  // fire on worker threads; drain() below fences every decrement before
  // the function returns.
  std::atomic<std::size_t> inflight{0};
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string_view path;
    if (parse_get_line(line, &path)) {
      // Plaintext scrape on the stream transport: the Prometheus text
      // body, no HTTP framing (stdio has no headers to honor).
      if (path == "/metrics") {
        const std::string text = service.metrics_text();
        const std::lock_guard<std::mutex> lock(write_mu);
        out << text;
      }
      continue;
    }
    result.lines += 1;
    if (options.max_inflight > 0 &&
        inflight.load(std::memory_order_relaxed) >= options.max_inflight) {
      const WireResponse resp = service.reject_overloaded(line);
      result.backpressure_rejects += 1;
      const std::lock_guard<std::mutex> lock(write_mu);
      out << serialize_wire_response(resp) << "\n";
      result.responses += 1;
      continue;
    }
    inflight.fetch_add(1, std::memory_order_relaxed);
    service.handle_line(line, [&](WireResponse resp) {
      {
        const std::lock_guard<std::mutex> lock(write_mu);
        out << serialize_wire_response(resp) << "\n";
        result.responses += 1;
      }
      inflight.fetch_sub(1, std::memory_order_relaxed);
    });
    if (service.shutdown_requested()) {
      result.shutdown = true;
      break;
    }
  }
  service.drain();
  out.flush();
  return result;
}

namespace {

/// htons without the glibc macro (whose expansion contains old-style
/// casts that trip -Wold-style-cast at the use site).
std::uint16_t host_to_net16(std::uint16_t value) {
  std::uint16_t out = 0;
  unsigned char* bytes = reinterpret_cast<unsigned char*>(&out);
  bytes[0] = static_cast<unsigned char>(value >> 8);
  bytes[1] = static_cast<unsigned char>(value & 0xFF);
  return out;
}

std::uint16_t net_to_host16(std::uint16_t value) {
  const unsigned char* bytes = reinterpret_cast<const unsigned char*>(&value);
  return static_cast<std::uint16_t>((bytes[0] << 8) | bytes[1]);
}

bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// One accepted connection, shared with every in-flight response writer
/// so the fd outlives the reader thread while scheduled work completes.
struct Connection {
  int fd = -1;
  std::mutex write_mu;
  std::atomic<bool> open{true};
  /// Requests submitted on this connection whose response has not been
  /// written yet (the backpressure counter).
  std::atomic<std::size_t> inflight{0};

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  void write_line(const std::string& line) {
    const std::lock_guard<std::mutex> lock(write_mu);
    if (!open.load(std::memory_order_relaxed)) return;
    std::string framed = line;
    framed += '\n';
    if (!send_all(fd, framed)) open.store(false, std::memory_order_relaxed);
  }

  void write_raw(std::string_view data) {
    const std::lock_guard<std::mutex> lock(write_mu);
    if (!open.load(std::memory_order_relaxed)) return;
    if (!send_all(fd, data)) open.store(false, std::memory_order_relaxed);
  }
};

}  // namespace

struct TcpServer::Impl {
  ReliabilityService& service;
  TcpServerOptions options;
  int listen_fd = -1;
  int wake_read = -1;   ///< internal stop() self-pipe
  int wake_write = -1;
  std::uint16_t bound_port = 0;
  std::atomic<bool> stopping{false};
  std::mutex conn_mu;
  std::vector<std::shared_ptr<Connection>> connections;
  std::vector<std::thread> readers;

  explicit Impl(ReliabilityService& svc, const TcpServerOptions& opts)
      : service(svc), options(opts) {}

  ~Impl() {
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_read >= 0) ::close(wake_read);
    if (wake_write >= 0) ::close(wake_write);
  }

  void listen_or_throw() {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) throw std::runtime_error("socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = host_to_net16(options.port);
    if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
        1) {
      throw std::runtime_error("bad bind address '" + options.bind_address +
                               "'");
    }
    if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw std::runtime_error("bind() failed on " + options.bind_address +
                               ":" + std::to_string(options.port));
    }
    if (::listen(listen_fd, 64) != 0) {
      throw std::runtime_error("listen() failed");
    }

    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    std::memset(&bound, 0, sizeof(bound));
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      bound_port = net_to_host16(bound.sin_port);
    }

    int pipe_fds[2];
    if (::pipe(pipe_fds) == 0) {
      wake_read = pipe_fds[0];
      wake_write = pipe_fds[1];
    }
  }

  void reader_loop(std::shared_ptr<Connection> conn) {
    std::string buffer;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (;;) {
        const std::size_t nl = buffer.find('\n', start);
        if (nl == std::string::npos) break;
        const std::string_view line(buffer.data() + start, nl - start);
        std::string_view get_path;
        if (parse_get_line(line, &get_path)) {
          // `GET /metrics` on the JSON port: answer as a one-shot
          // HTTP/1.0 exchange (what a Prometheus scraper or curl
          // speaks) and close — remaining header lines are moot.
          std::string body;
          const char* status = "200 OK";
          if (get_path == "/metrics") {
            body = service.metrics_text();
          } else {
            status = "404 Not Found";
            body = "only /metrics is served here\n";
          }
          std::string http = "HTTP/1.0 ";
          http += status;
          http += "\r\nContent-Type: ";
          http += kPrometheusContentType;
          http += "\r\nContent-Length: ";
          http += std::to_string(body.size());
          http += "\r\nConnection: close\r\n\r\n";
          http += body;
          conn->write_raw(http);
          ::shutdown(conn->fd, SHUT_RDWR);
          conn->open.store(false, std::memory_order_relaxed);
          return;
        }
        if (!line.empty()) {
          if (options.max_inflight > 0 &&
              conn->inflight.load(std::memory_order_relaxed) >=
                  options.max_inflight) {
            conn->write_line(
                serialize_wire_response(service.reject_overloaded(line)));
          } else {
            conn->inflight.fetch_add(1, std::memory_order_relaxed);
            service.handle_line(line, [conn](WireResponse resp) {
              conn->write_line(serialize_wire_response(resp));
              conn->inflight.fetch_sub(1, std::memory_order_relaxed);
            });
          }
          if (service.shutdown_requested()) wake();
        }
        start = nl + 1;
      }
      buffer.erase(0, start);
    }
    conn->open.store(false, std::memory_order_relaxed);
  }

  void wake() {
    if (wake_write >= 0) {
      const char byte = 1;
      [[maybe_unused]] const ssize_t n = ::write(wake_write, &byte, 1);
    }
  }

  void accept_loop() {
    for (;;) {
      pollfd fds[3];
      nfds_t nfds = 0;
      fds[nfds++] = pollfd{listen_fd, POLLIN, 0};
      if (wake_read >= 0) fds[nfds++] = pollfd{wake_read, POLLIN, 0};
      if (options.shutdown_fd >= 0) {
        fds[nfds++] = pollfd{options.shutdown_fd, POLLIN, 0};
      }
      const int ready = ::poll(fds, nfds, -1);
      if (ready < 0) {
        if (errno == EINTR) {
          if (stopping.load(std::memory_order_relaxed)) return;
          continue;
        }
        return;
      }
      if (stopping.load(std::memory_order_relaxed)) return;
      for (nfds_t i = 1; i < nfds; ++i) {
        if (fds[i].revents & POLLIN) return;  // wake pipe or signal pipe
      }
      if (!(fds[0].revents & POLLIN)) continue;

      const int client = ::accept(listen_fd, nullptr, nullptr);
      if (client < 0) {
        if (errno == EINTR) continue;
        return;
      }
      auto conn = std::make_shared<Connection>();
      conn->fd = client;
      const std::lock_guard<std::mutex> lock(conn_mu);
      connections.push_back(conn);
      readers.emplace_back([this, conn] { reader_loop(conn); });
    }
  }

  void shut_down() {
    if (stopping.exchange(true)) return;
    wake();
    {
      const std::lock_guard<std::mutex> lock(conn_mu);
      // SHUT_RD unblocks the reader threads without racing in-flight
      // writers, which still hold the shared Connection.
      for (auto& conn : connections) ::shutdown(conn->fd, SHUT_RD);
    }
    for (;;) {
      std::thread reader;
      {
        const std::lock_guard<std::mutex> lock(conn_mu);
        if (readers.empty()) break;
        reader = std::move(readers.back());
        readers.pop_back();
      }
      if (reader.joinable()) reader.join();
    }
    service.drain();
    {
      const std::lock_guard<std::mutex> lock(conn_mu);
      connections.clear();
    }
  }
};

TcpServer::TcpServer(ReliabilityService& service,
                     const TcpServerOptions& options)
    : impl_(std::make_unique<Impl>(service, options)) {
  impl_->listen_or_throw();
}

TcpServer::~TcpServer() { stop(); }

std::uint16_t TcpServer::port() const noexcept { return impl_->bound_port; }

void TcpServer::run() {
  impl_->accept_loop();
  impl_->shut_down();
}

void TcpServer::stop() { impl_->shut_down(); }

namespace {
std::atomic<int> g_signal_pipe_write{-1};
std::atomic<int> g_usr1_pipe_write{-1};

extern "C" void streamrel_signal_handler(int) {
  const int fd = g_signal_pipe_write.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

extern "C" void streamrel_usr1_handler(int) {
  const int fd = g_usr1_pipe_write.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}
}  // namespace

int install_signal_shutdown_pipe() {
  int fds[2];
  if (::pipe(fds) != 0) return -1;
  g_signal_pipe_write.store(fds[1], std::memory_order_relaxed);
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = streamrel_signal_handler;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  return fds[0];
}

int install_sigusr1_pipe() {
  int fds[2];
  if (::pipe(fds) != 0) return -1;
  g_usr1_pipe_write.store(fds[1], std::memory_order_relaxed);
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = streamrel_usr1_handler;
  ::sigemptyset(&action.sa_mask);
  // Restart interrupted syscalls: a flight dump must never surface as
  // an EINTR error in the serving path.
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGUSR1, &action, nullptr);
  return fds[0];
}

}  // namespace streamrel
