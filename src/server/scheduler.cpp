#include "streamrel/server/scheduler.hpp"

#include <algorithm>
#include <utility>

namespace streamrel {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

RequestScheduler::RequestScheduler(const SchedulerOptions& options)
    : workers_(std::max(options.workers, 1)),
      bulk_share_(std::max(options.bulk_share, 1)),
      max_queue_(std::max<std::size_t>(options.max_queue, 1)),
      ewma_alpha_(options.ewma_alpha > 0.0 && options.ewma_alpha <= 1.0
                      ? options.ewma_alpha
                      : 0.2) {
  threads_.reserve(static_cast<std::size_t>(workers_));
  for (int i = 0; i < workers_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

RequestScheduler::~RequestScheduler() { stop(); }

std::size_t RequestScheduler::bulk_cap() const noexcept {
  return static_cast<std::size_t>(std::max(workers_ / bulk_share_, 1));
}

bool RequestScheduler::submit(WireLane lane, double deadline_ms, Job job) {
  const Clock::time_point now = Clock::now();
  Entry entry;
  entry.enqueued = now;
  if (deadline_ms > 0.0) {
    entry.has_deadline = true;
    entry.deadline = now + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   deadline_ms));
  }
  entry.job = std::move(job);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    Lane& l = lane_of(lane);
    if (stopping_ || l.queue.size() >= max_queue_) {
      l.rejected += 1;
      return false;
    }
    entry.seq = next_seq_++;
    l.submitted += 1;
    l.queue.push_back(std::move(entry));
  }
  work_cv_.notify_one();
  return true;
}

double RequestScheduler::estimate_queue_ms(WireLane lane) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const Lane& l = lane_of(lane);
  if (!l.ewma_primed) return 0.0;
  const double effective =
      lane == WireLane::kBulk ? static_cast<double>(bulk_cap())
                              : static_cast<double>(workers_);
  return static_cast<double>(l.queue.size()) * l.ewma_service_ms / effective;
}

LaneSnapshot RequestScheduler::lane_snapshot(WireLane lane) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const Lane& l = lane_of(lane);
  LaneSnapshot snap;
  snap.submitted = l.submitted;
  snap.completed = l.completed;
  snap.rejected = l.rejected;
  snap.queued = l.queue.size();
  snap.running = l.running;
  snap.ewma_service_ms = l.ewma_service_ms;
  if (l.ewma_primed) {
    const double effective =
        lane == WireLane::kBulk ? static_cast<double>(bulk_cap())
                                : static_cast<double>(workers_);
    snap.queue_estimate_ms =
        static_cast<double>(l.queue.size()) * l.ewma_service_ms / effective;
  }
  snap.queue_p50_ms = l.queue_hist.percentile_ms(50.0);
  snap.queue_p95_ms = l.queue_hist.percentile_ms(95.0);
  snap.queue_p99_ms = l.queue_hist.percentile_ms(99.0);
  snap.service_p50_ms = l.service_hist.percentile_ms(50.0);
  snap.service_p95_ms = l.service_hist.percentile_ms(95.0);
  snap.service_p99_ms = l.service_hist.percentile_ms(99.0);
  return snap;
}

bool RequestScheduler::pick(Entry* out, WireLane* out_lane) {
  // Linear scan: queues are bounded (max_queue_) and small relative to
  // the cost of the jobs they hold.
  int best_lane = -1;
  std::size_t best_index = 0;
  for (int li = 0; li < 2; ++li) {
    Lane& l = lanes_[li];
    if (l.queue.empty()) continue;
    if (li == static_cast<int>(WireLane::kBulk) && l.running >= bulk_cap()) {
      continue;  // bulk lane at its worker-share cap
    }
    for (std::size_t i = 0; i < l.queue.size(); ++i) {
      if (best_lane < 0) {
        best_lane = li;
        best_index = i;
        continue;
      }
      const Entry& a = l.queue[i];
      const Entry& b = lanes_[best_lane].queue[best_index];
      const bool earlier =
          a.has_deadline
              ? (!b.has_deadline || a.deadline < b.deadline ||
                 (a.deadline == b.deadline && a.seq < b.seq))
              : (!b.has_deadline && a.seq < b.seq);
      if (earlier) {
        best_lane = li;
        best_index = i;
      }
    }
  }
  if (best_lane < 0) return false;
  Lane& l = lanes_[best_lane];
  *out = std::move(l.queue[best_index]);
  l.queue.erase(l.queue.begin() +
                static_cast<std::vector<Entry>::difference_type>(best_index));
  *out_lane = static_cast<WireLane>(best_lane);
  return true;
}

void RequestScheduler::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Entry entry;
    WireLane lane = WireLane::kInteractive;
    while (!pick(&entry, &lane)) {
      if (stopping_) return;
      work_cv_.wait(lock);
    }
    Lane& l = lane_of(lane);
    l.running += 1;
    active_ += 1;
    const Clock::time_point start = Clock::now();
    l.queue_hist.record_ms(ms_between(entry.enqueued, start));
    lock.unlock();

    entry.job();

    const double service_ms = ms_between(start, Clock::now());
    lock.lock();
    l.running -= 1;
    active_ -= 1;
    l.completed += 1;
    l.service_hist.record_ms(service_ms);
    l.ewma_service_ms = l.ewma_primed
                            ? (1.0 - ewma_alpha_) * l.ewma_service_ms +
                                  ewma_alpha_ * service_ms
                            : service_ms;
    l.ewma_primed = true;
    // Finishing a bulk job may unblock a capped bulk queue; finishing
    // anything may complete a drain().
    if (active_ == 0 && lanes_[0].queue.empty() && lanes_[1].queue.empty()) {
      drain_cv_.notify_all();
    }
    work_cv_.notify_one();
  }
}

void RequestScheduler::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] {
    return active_ == 0 && lanes_[0].queue.empty() && lanes_[1].queue.empty();
  });
}

void RequestScheduler::stop() {
  drain();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

}  // namespace streamrel
