#include "streamrel/server/session_registry.hpp"

#include <algorithm>
#include <chrono>

#include "streamrel/util/telemetry.hpp"
#include "streamrel/util/trace.hpp"

namespace streamrel {

TenantSession::TenantSession(FlowNetwork net, FlowDemand default_demand,
                             const QueryCacheOptions& cache_options,
                             bool explicit_budget)
    : session_(std::move(net), cache_options),
      default_demand_(default_demand),
      explicit_budget_(explicit_budget) {}

SolveReport TenantSession::solve(const FlowDemand& demand,
                                 const SolveOptions& options,
                                 std::span<const ProbOverride> overrides) {
  ExecContext* ctx = options.context;
  // The service always provides the context; a bare local keeps the
  // QuerySession contract for direct (test) callers.
  ExecContext local;
  if (!ctx) {
    if (options.deadline_ms > 0.0) local.set_deadline_ms(options.deadline_ms);
    local.max_threads = options.max_threads;
    ctx = &local;
  }

  const auto query_start = std::chrono::steady_clock::now();
  SolveReport report;
  QuerySession::PreparedQuery prepared;
  SolveOptions effective = options;
  // The pending hint must be COPIED out: the member can be rewritten by
  // a concurrent apply_delta once the writer lock is released.
  std::optional<DeltaSolveHint> hint_copy;

  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    session_.validate_overrides(overrides);
    if (!effective.delta_hint && session_.pending_hint_) {
      hint_copy = *session_.pending_hint_;
      effective.delta_hint = &*hint_copy;
    }
    session_.telemetry_.counter(telemetry_keys::kQueries) += 1;
    {
      TraceSpan span("query_prepare", "cache");
      const std::uint64_t hits = span.active() ? session_.cache_hits() : 0;
      const std::uint64_t misses = span.active() ? session_.cache_misses() : 0;
      prepared = session_.prepare_cached(demand, effective, *ctx);
      if (span.active()) {
        span.arg("cache_hits", session_.cache_hits() - hits)
            .arg("cache_misses", session_.cache_misses() - misses)
            .arg("bottleneck_path", prepared.bottleneck_path);
      }
    }
    if (!prepared.bottleneck_path) {
      // The fallback solves against net_ (override guard mutates it):
      // stay under the writer lock for the whole solve.
      session_.telemetry_.counter(telemetry_keys::kFallbackSolves) += 1;
      report = session_.solve_fallback(demand, effective, overrides, *ctx);
      session_.telemetry_.child("solves").merge(report.result.telemetry);
      session_.telemetry_.histogram("query_latency")
          .record_ms(std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - query_start)
                         .count());
      session_.telemetry_.timer_ms("query_ms") +=
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - query_start)
              .count();
      return report;
    }
  }

  {
    // The warm path only reads the cached artifacts and the partition
    // entry — concurrent solves of the same tenant share this lock.
    std::shared_lock<std::shared_mutex> lock(mu_);
    report = session_.finish_prepared(prepared, effective, overrides, ctx);
  }
  if (report.result.status != SolveStatus::kExact && !report.bounds) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    report.bounds =
        session_.bounds_with_overrides(demand, effective.bounds, overrides);
  }
  ctx->telemetry.merge(report.result.telemetry);

  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    session_.telemetry_.child("solves").merge(report.result.telemetry);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - query_start)
            .count();
    session_.telemetry_.histogram("query_latency").record_ms(elapsed_ms);
    session_.telemetry_.timer_ms("query_ms") += elapsed_ms;
  }
  return report;
}

BatchReport TenantSession::batch(std::span<const WhatIfQuery> queries,
                                 const BatchOptions& options) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  BatchEvaluator evaluator(session_);
  return evaluator.evaluate(queries, options);
}

DeltaOutcome TenantSession::apply_delta(const NetworkDelta& delta) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const DeltaOutcome outcome = session_.apply_delta(delta);
  // Keep the default demand anchored across topology renumbering.
  if (outcome.applied == DeltaClass::kTopology) {
    const auto remap = [&outcome](NodeId id) {
      return id >= 0 && static_cast<std::size_t>(id) < outcome.node_map.size()
                 ? outcome.node_map[static_cast<std::size_t>(id)]
                 : id;
    };
    default_demand_.source = remap(default_demand_.source);
    default_demand_.sink = remap(default_demand_.sink);
  }
  return outcome;
}

FlowNetwork TenantSession::network_copy() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return session_.network();
}

FlowDemand TenantSession::default_demand() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return default_demand_;
}

void TenantSession::set_cache_budget(std::size_t max_mask_tables) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  session_.set_cache_budget(max_mask_tables);
}

TenantSession::Stats TenantSession::stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  Stats s;
  s.queries = session_.telemetry().counter_or(telemetry_keys::kQueries);
  s.cache_hits = session_.cache_hits();
  s.cache_misses = session_.cache_misses();
  s.cache_evictions = session_.cache_evictions();
  s.invalidations_full = session_.cache_invalidations_full();
  s.invalidations_partial = session_.cache_invalidations_partial();
  s.invalidations_survived = session_.cache_survived();
  s.mask_tables = session_.cached_mask_tables();
  s.mask_bytes = session_.cached_mask_bytes();
  s.budget = session_.cache_budget();
  return s;
}

SessionRegistry::SessionRegistry(QueryCacheOptions default_cache,
                                 std::size_t global_mask_tables)
    : default_cache_(default_cache),
      global_mask_tables_(std::max<std::size_t>(global_mask_tables, 1)) {}

RegisterOutcome SessionRegistry::register_network(
    const std::string& tenant, const std::string& network_id, FlowNetwork net,
    FlowDemand default_demand, std::optional<std::size_t> max_mask_tables) {
  const std::lock_guard<std::mutex> lock(mu_);
  RegisterOutcome outcome;
  outcome.nodes = net.num_nodes();
  outcome.edges = net.num_edges();

  QueryCacheOptions cache = default_cache_;
  const bool explicit_budget = max_mask_tables.has_value();
  if (explicit_budget) {
    cache.max_mask_tables = std::min(*max_mask_tables, global_mask_tables_);
  }
  auto session = std::make_shared<TenantSession>(
      std::move(net), default_demand, cache, explicit_budget);

  const auto key = std::make_pair(tenant, network_id);
  const auto it = sessions_.find(key);
  if (it != sessions_.end()) {
    outcome.replaced = true;
    if (!it->second->explicit_budget()) implicit_count_ -= 1;
    it->second = session;
  } else {
    sessions_.emplace(key, session);
  }
  if (!explicit_budget) implicit_count_ += 1;
  rebalance_locked();
  outcome.cache_budget = session->stats().budget;
  return outcome;
}

void SessionRegistry::rebalance_locked() {
  if (implicit_count_ == 0) return;
  // Implicit sessions split the global cap evenly; explicit budgets were
  // clamped at registration and are left alone.
  const std::size_t share =
      std::max<std::size_t>(global_mask_tables_ / implicit_count_, 1);
  for (auto& [key, session] : sessions_) {
    if (!session->explicit_budget()) session->set_cache_budget(share);
  }
}

std::shared_ptr<TenantSession> SessionRegistry::find(
    const std::string& tenant, const std::string& network_id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(std::make_pair(tenant, network_id));
  return it != sessions_.end() ? it->second : nullptr;
}

std::size_t SessionRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

std::vector<std::pair<std::string, std::shared_ptr<TenantSession>>>
SessionRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::shared_ptr<TenantSession>>> out;
  out.reserve(sessions_.size());
  for (const auto& [key, session] : sessions_) {
    out.emplace_back(key.first + "/" + key.second, session);
  }
  return out;
}

}  // namespace streamrel
