#include "streamrel/server/session_registry.hpp"

#include <algorithm>
#include <chrono>

#include "streamrel/util/telemetry.hpp"
#include "streamrel/util/trace.hpp"

namespace streamrel {

TenantSession::TenantSession(FlowNetwork net, FlowDemand default_demand,
                             const QueryCacheOptions& cache_options,
                             bool explicit_budget)
    : session_(std::move(net), cache_options),
      default_demand_(default_demand),
      explicit_budget_(explicit_budget) {}

TenantSession::TenantSession(RestoredSession restored,
                             const QueryCacheOptions& cache_options,
                             bool explicit_budget)
    : session_(std::move(restored.net), std::move(restored.snapshot),
               cache_options),
      default_demand_(restored.default_demand),
      explicit_budget_(explicit_budget),
      replayed_deltas_(restored.replayed_deltas),
      restored_(true) {}

void TenantSession::attach_store(std::unique_ptr<SessionStore> store) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  store_ = std::move(store);
}

bool TenantSession::durable() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return store_ != nullptr;
}

StoreStatus TenantSession::checkpoint_now(std::string* error) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return checkpoint_locked(error);
}

StoreStatus TenantSession::checkpoint_locked(std::string* error) {
  if (!store_) {
    if (error) *error = "no durable store attached";
    return StoreStatus::kNotFound;
  }
  // snapshot() mints the compiled form lazily — checkpointing a freshly
  // registered session doubles as warming its first compile.
  const std::shared_ptr<const CompiledNetwork>& snapshot = session_.snapshot();
  const std::optional<std::size_t> budget =
      explicit_budget_ ? std::optional<std::size_t>(session_.cache_budget())
                       : std::nullopt;
  return store_->checkpoint(*snapshot, default_demand_, budget, error);
}

SolveReport TenantSession::solve(const FlowDemand& demand,
                                 const SolveOptions& options,
                                 std::span<const ProbOverride> overrides) {
  ExecContext* ctx = options.context;
  // The service always provides the context; a bare local keeps the
  // QuerySession contract for direct (test) callers.
  ExecContext local;
  if (!ctx) {
    if (options.deadline_ms > 0.0) local.set_deadline_ms(options.deadline_ms);
    local.max_threads = options.max_threads;
    ctx = &local;
  }

  const auto query_start = std::chrono::steady_clock::now();
  SolveReport report;
  QuerySession::PreparedQuery prepared;
  SolveOptions effective = options;
  // The pending hint must be COPIED out: the member can be rewritten by
  // a concurrent apply_delta once the writer lock is released.
  std::optional<DeltaSolveHint> hint_copy;

  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    session_.validate_overrides(overrides);
    if (!effective.delta_hint && session_.pending_hint_) {
      hint_copy = *session_.pending_hint_;
      effective.delta_hint = &*hint_copy;
    }
    session_.telemetry_.counter(telemetry_keys::kQueries) += 1;
    {
      TraceSpan span("query_prepare", "cache");
      const std::uint64_t hits = span.active() ? session_.cache_hits() : 0;
      const std::uint64_t misses = span.active() ? session_.cache_misses() : 0;
      prepared = session_.prepare_cached(demand, effective, *ctx);
      if (span.active()) {
        span.arg("cache_hits", session_.cache_hits() - hits)
            .arg("cache_misses", session_.cache_misses() - misses)
            .arg("bottleneck_path", prepared.bottleneck_path);
      }
    }
    if (!prepared.bottleneck_path) {
      // The fallback solves against net_ (override guard mutates it):
      // stay under the writer lock for the whole solve.
      session_.telemetry_.counter(telemetry_keys::kFallbackSolves) += 1;
      report = session_.solve_fallback(demand, effective, overrides, *ctx);
      session_.telemetry_.child("solves").merge(report.result.telemetry);
      session_.telemetry_.histogram("query_latency")
          .record_ms(std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - query_start)
                         .count());
      session_.telemetry_.timer_ms("query_ms") +=
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - query_start)
              .count();
      return report;
    }
  }

  {
    // The warm path only reads the cached artifacts and the partition
    // entry — concurrent solves of the same tenant share this lock.
    std::shared_lock<std::shared_mutex> lock(mu_);
    report = session_.finish_prepared(prepared, effective, overrides, ctx);
  }
  if (report.result.status != SolveStatus::kExact && !report.bounds) {
    std::unique_lock<std::shared_mutex> lock(mu_);
    report.bounds =
        session_.bounds_with_overrides(demand, effective.bounds, overrides);
  }
  ctx->telemetry.merge(report.result.telemetry);

  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    session_.telemetry_.child("solves").merge(report.result.telemetry);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - query_start)
            .count();
    session_.telemetry_.histogram("query_latency").record_ms(elapsed_ms);
    session_.telemetry_.timer_ms("query_ms") += elapsed_ms;
  }
  return report;
}

BatchReport TenantSession::batch(std::span<const WhatIfQuery> queries,
                                 const BatchOptions& options) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  BatchEvaluator evaluator(session_);
  return evaluator.evaluate(queries, options);
}

DeltaOutcome TenantSession::apply_delta(const NetworkDelta& delta) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const DeltaOutcome outcome = session_.apply_delta(delta);
  // Keep the default demand anchored across topology renumbering.
  if (outcome.applied == DeltaClass::kTopology) {
    const auto remap = [&outcome](NodeId id) {
      return id >= 0 && static_cast<std::size_t>(id) < outcome.node_map.size()
                 ? outcome.node_map[static_cast<std::size_t>(id)]
                 : id;
    };
    default_demand_.source = remap(default_demand_.source);
    default_demand_.sink = remap(default_demand_.sink);
  }
  if (store_) {
    // Journal inside the same writer critical section that applied the
    // delta: WAL order == application order, the property bitwise replay
    // rests on. Failures degrade durability, not availability.
    std::string err;
    if (store_->append(delta, &err) != StoreStatus::kOk) {
      ++journal_errors_;
    } else if (store_->needs_compaction() &&
               checkpoint_locked(&err) != StoreStatus::kOk) {
      ++journal_errors_;
    }
  }
  return outcome;
}

FlowNetwork TenantSession::network_copy() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return session_.network();
}

FlowDemand TenantSession::default_demand() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return default_demand_;
}

void TenantSession::set_cache_budget(std::size_t max_mask_tables) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  session_.set_cache_budget(max_mask_tables);
}

TenantSession::Stats TenantSession::stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  Stats s;
  s.queries = session_.telemetry().counter_or(telemetry_keys::kQueries);
  s.cache_hits = session_.cache_hits();
  s.cache_misses = session_.cache_misses();
  s.cache_evictions = session_.cache_evictions();
  s.invalidations_full = session_.cache_invalidations_full();
  s.invalidations_partial = session_.cache_invalidations_partial();
  s.invalidations_survived = session_.cache_survived();
  s.mask_tables = session_.cached_mask_tables();
  s.mask_bytes = session_.cached_mask_bytes();
  s.budget = session_.cache_budget();
  s.durable = store_ != nullptr;
  s.restored = restored_;
  if (store_) {
    const StoreStats& st = store_->stats();
    s.wal_records = st.wal_records;
    s.checkpoints = st.checkpoints;
    s.wal_appends = st.appends;
    s.state_bytes_written = st.bytes_written;
  }
  s.journal_errors = journal_errors_;
  s.replayed_deltas = replayed_deltas_;
  return s;
}

SessionRegistry::SessionRegistry(QueryCacheOptions default_cache,
                                 std::size_t global_mask_tables,
                                 RegistryPersistOptions persist)
    : default_cache_(default_cache),
      global_mask_tables_(std::max<std::size_t>(global_mask_tables, 1)),
      persist_(std::move(persist)) {}

StoreOptions SessionRegistry::store_options() const {
  StoreOptions options;
  options.compact_threshold = persist_.wal_compact_threshold;
  options.fsync = persist_.fsync;
  options.repair = true;
  return options;
}

std::unique_ptr<SessionStore> SessionRegistry::make_store(
    const std::string& tenant, const std::string& network_id) const {
  const StateDir state_dir(persist_.state_dir);
  return std::make_unique<SessionStore>(
      state_dir.store_path(tenant, network_id), store_options());
}

bool SessionRegistry::adopt_session(const std::string& tenant,
                                    const std::string& network_id,
                                    std::shared_ptr<TenantSession> session,
                                    bool explicit_budget) {
  const std::lock_guard<std::mutex> lock(mu_);
  bool replaced = false;
  const auto key = std::make_pair(tenant, network_id);
  const auto it = sessions_.find(key);
  if (it != sessions_.end()) {
    replaced = true;
    if (!it->second->explicit_budget()) implicit_count_ -= 1;
    it->second = std::move(session);
  } else {
    sessions_.emplace(key, std::move(session));
  }
  if (!explicit_budget) implicit_count_ += 1;
  rebalance_locked();
  return replaced;
}

RegisterOutcome SessionRegistry::register_network(
    const std::string& tenant, const std::string& network_id, FlowNetwork net,
    FlowDemand default_demand, std::optional<std::size_t> max_mask_tables) {
  RegisterOutcome outcome;
  outcome.nodes = net.num_nodes();
  outcome.edges = net.num_edges();

  QueryCacheOptions cache = default_cache_;
  const bool explicit_budget = max_mask_tables.has_value();
  if (explicit_budget) {
    cache.max_mask_tables = std::min(*max_mask_tables, global_mask_tables_);
  }
  auto session = std::make_shared<TenantSession>(
      std::move(net), default_demand, cache, explicit_budget);
  if (persistent()) session->attach_store(make_store(tenant, network_id));

  outcome.replaced = adopt_session(tenant, network_id, session,
                                   explicit_budget);
  if (persistent()) {
    std::string err;
    outcome.persisted =
        session->checkpoint_now(&err) == StoreStatus::kOk;
    if (!outcome.persisted) outcome.persist_error = err;
  }
  outcome.cache_budget = session->stats().budget;
  return outcome;
}

BootRestoreReport SessionRegistry::restore_all() {
  BootRestoreReport report;
  if (!persistent()) return report;
  const StateDir state_dir(persist_.state_dir);
  for (const StateDir::Entry& entry : state_dir.enumerate()) {
    auto store = std::make_unique<SessionStore>(entry.path, store_options());
    RestoredSession restored;
    std::string err;
    const StoreStatus status = store->load(restored, &err);
    if (status == StoreStatus::kNotFound) continue;
    if (status != StoreStatus::kOk) {
      report.warnings.push_back(entry.tenant + "/" + entry.network_id + ": " +
                                std::string(to_string(status)) +
                                (err.empty() ? "" : " (" + err + ")"));
      ++report.corrupt;
      const std::lock_guard<std::mutex> lock(mu_);
      ++corrupt_;
      continue;
    }
    QueryCacheOptions cache = default_cache_;
    const bool explicit_budget = restored.max_mask_tables.has_value();
    if (explicit_budget) {
      cache.max_mask_tables =
          std::min(*restored.max_mask_tables, global_mask_tables_);
    }
    report.replayed_deltas += restored.replayed_deltas;
    auto session = std::make_shared<TenantSession>(std::move(restored), cache,
                                                   explicit_budget);
    session->attach_store(std::move(store));
    adopt_session(entry.tenant, entry.network_id, std::move(session),
                  explicit_budget);
    ++report.restored;
    const std::lock_guard<std::mutex> lock(mu_);
    ++restores_;
  }
  return report;
}

RestoreOutcome SessionRegistry::restore_session(const std::string& tenant,
                                                const std::string& network_id) {
  RestoreOutcome outcome;
  if (!persistent()) {
    outcome.status = StoreStatus::kNotFound;
    outcome.error = "persistence disabled (no --state-dir)";
    return outcome;
  }
  auto store = make_store(tenant, network_id);
  RestoredSession restored;
  outcome.status = store->load(restored, &outcome.error);
  if (outcome.status != StoreStatus::kOk) {
    if (outcome.status == StoreStatus::kCorrupt ||
        outcome.status == StoreStatus::kIoError) {
      const std::lock_guard<std::mutex> lock(mu_);
      ++corrupt_;
    }
    return outcome;
  }
  QueryCacheOptions cache = default_cache_;
  const bool explicit_budget = restored.max_mask_tables.has_value();
  if (explicit_budget) {
    cache.max_mask_tables =
        std::min(*restored.max_mask_tables, global_mask_tables_);
  }
  outcome.replayed_deltas = restored.replayed_deltas;
  auto session = std::make_shared<TenantSession>(std::move(restored), cache,
                                                 explicit_budget);
  session->attach_store(std::move(store));
  outcome.nodes = session->network_copy().num_nodes();
  outcome.edges = session->network_copy().num_edges();
  adopt_session(tenant, network_id, session, explicit_budget);
  outcome.cache_budget = session->stats().budget;
  const std::lock_guard<std::mutex> lock(mu_);
  ++restores_;
  return outcome;
}

StoreStatus SessionRegistry::persist_session(const std::string& tenant,
                                             const std::string& network_id,
                                             std::string* error) {
  if (!persistent()) {
    if (error) *error = "persistence disabled (no --state-dir)";
    return StoreStatus::kNotFound;
  }
  const std::shared_ptr<TenantSession> session = find(tenant, network_id);
  if (!session) {
    if (error) *error = "no session registered under this key";
    return StoreStatus::kNotFound;
  }
  return session->checkpoint_now(error);
}

std::size_t SessionRegistry::checkpoint_all() {
  std::size_t failures = 0;
  for (const auto& [key, session] : snapshot()) {
    if (!session->durable()) continue;
    if (session->checkpoint_now() != StoreStatus::kOk) ++failures;
  }
  return failures;
}

PersistTotals SessionRegistry::persist_totals() const {
  PersistTotals totals;
  totals.enabled = persistent();
  for (const auto& [key, session] : snapshot()) {
    const TenantSession::Stats s = session->stats();
    totals.checkpoints += s.checkpoints;
    totals.wal_appends += s.wal_appends;
    totals.wal_records += s.wal_records;
    totals.bytes_written += s.state_bytes_written;
    totals.journal_errors += s.journal_errors;
    totals.replayed_deltas += s.replayed_deltas;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  totals.restores = restores_;
  totals.corrupt = corrupt_;
  return totals;
}

void SessionRegistry::rebalance_locked() {
  if (implicit_count_ == 0) return;
  // Implicit sessions split the global cap evenly; explicit budgets were
  // clamped at registration and are left alone.
  const std::size_t share =
      std::max<std::size_t>(global_mask_tables_ / implicit_count_, 1);
  for (auto& [key, session] : sessions_) {
    if (!session->explicit_budget()) session->set_cache_budget(share);
  }
}

std::shared_ptr<TenantSession> SessionRegistry::find(
    const std::string& tenant, const std::string& network_id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(std::make_pair(tenant, network_id));
  return it != sessions_.end() ? it->second : nullptr;
}

std::size_t SessionRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

std::vector<std::pair<std::string, std::shared_ptr<TenantSession>>>
SessionRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::shared_ptr<TenantSession>>> out;
  out.reserve(sessions_.size());
  for (const auto& [key, session] : sessions_) {
    out.emplace_back(key.first + "/" + key.second, session);
  }
  return out;
}

}  // namespace streamrel
