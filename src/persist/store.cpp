#include "streamrel/persist/store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <system_error>
#include <tuple>

#include "streamrel/graph/serialize.hpp"
#include "streamrel/util/binio.hpp"

namespace streamrel {

namespace {

constexpr char kSnapshotMagic[9] = "SRELSNP1";
constexpr char kWalMagic[9] = "SRELWAL1";
constexpr std::uint32_t kStoreFormatVersion = 1;
constexpr std::size_t kWalFileHeaderSize = 16;  // magic + version + flags
constexpr std::size_t kWalRecordHeaderSize = 20;
constexpr std::uint32_t kMaxWalPayload = 1u << 26;

constexpr std::uint32_t kTagMeta = 0x4154454D;     // "META"
constexpr std::uint32_t kTagNetwork = 0x5754454E;  // "NETW"
constexpr std::uint32_t kTagHistory = 0x54534948;  // "HIST"

const char* kSnapshotFile = "snapshot.bin";
const char* kWalFile = "wal.bin";

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

void fsync_directory(const std::filesystem::path& dir) {
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

/// write-temp + fsync + rename + fsync(dir): the rename is the commit.
StoreStatus write_file_atomic(const std::filesystem::path& path,
                              const std::string& bytes, bool do_fsync,
                              std::string* error) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error) *error = errno_message("open temp file");
    return StoreStatus::kIoError;
  }
  if (!write_all(fd, bytes.data(), bytes.size())) {
    if (error) *error = errno_message("write temp file");
    ::close(fd);
    ::unlink(tmp.c_str());
    return StoreStatus::kIoError;
  }
  if (do_fsync && ::fsync(fd) != 0) {
    if (error) *error = errno_message("fsync temp file");
    ::close(fd);
    ::unlink(tmp.c_str());
    return StoreStatus::kIoError;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error) *error = errno_message("rename into place");
    ::unlink(tmp.c_str());
    return StoreStatus::kIoError;
  }
  if (do_fsync) fsync_directory(path.parent_path());
  return StoreStatus::kOk;
}

bool read_file(const std::filesystem::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return in.good() || in.eof();
}

std::string wal_header_bytes() {
  BinaryWriter w;
  write_file_header(w, kWalMagic, kStoreFormatVersion);
  w.u32(0);  // flags, reserved
  return std::move(w).take();
}

std::string encode_meta(std::uint64_t base_seq, const FlowDemand& demand,
                        std::optional<std::size_t> max_mask_tables) {
  BinaryWriter w;
  w.u64(base_seq);
  w.i32(demand.source);
  w.i32(demand.sink);
  w.i64(demand.rate);
  w.u8(max_mask_tables.has_value() ? 1 : 0);
  w.u64(max_mask_tables.value_or(0));
  return std::move(w).take();
}

}  // namespace

std::string_view to_string(StoreStatus status) noexcept {
  switch (status) {
    case StoreStatus::kOk:
      return "ok";
    case StoreStatus::kNotFound:
      return "not_found";
    case StoreStatus::kCorrupt:
      return "corrupt";
    case StoreStatus::kIoError:
      return "io_error";
  }
  return "unknown";
}

SessionStore::SessionStore(std::filesystem::path dir, StoreOptions options)
    : dir_(std::move(dir)), options_(options) {}

SessionStore::~SessionStore() { close_wal(); }

void SessionStore::close_wal() noexcept {
  if (wal_fd_ >= 0) {
    ::close(wal_fd_);
    wal_fd_ = -1;
  }
}

StoreStatus SessionStore::load(RestoredSession& out, std::string* error) {
  const std::filesystem::path snap_path = dir_ / kSnapshotFile;
  const std::filesystem::path wal_path = dir_ / kWalFile;
  std::error_code ec;

  std::string snap_bytes;
  if (!read_file(snap_path, snap_bytes)) {
    if (std::filesystem::exists(wal_path, ec)) {
      // A journal with no base snapshot can never replay to anything.
      if (error) *error = "journal present but snapshot missing";
      return StoreStatus::kCorrupt;
    }
    return StoreStatus::kNotFound;
  }

  RestoredSession restored;
  std::uint64_t base_seq = 0;
  try {
    BinaryReader in(snap_bytes);
    read_file_header(in, kSnapshotMagic, kStoreFormatVersion);

    BinaryReader meta(read_section(in, kTagMeta));
    base_seq = meta.u64();
    restored.default_demand.source = meta.i32();
    restored.default_demand.sink = meta.i32();
    restored.default_demand.rate = meta.i64();
    const bool has_budget = meta.u8() != 0;
    const std::uint64_t budget = meta.u64();
    if (has_budget) {
      restored.max_mask_tables = static_cast<std::size_t>(budget);
    }
    if (!meta.at_end()) throw BinReadError("meta section has trailing bytes");

    restored.snapshot = deserialize_compiled(read_section(in, kTagNetwork));
    restored.lineage = deserialize_lineage(read_section(in, kTagHistory));
    if (!in.at_end()) throw BinReadError("snapshot file has trailing bytes");
  } catch (const BinReadError& e) {
    if (error) *error = std::string("snapshot: ") + e.what();
    return StoreStatus::kCorrupt;
  }
  restored.net = builder_from_compiled(*restored.snapshot);

  // --- WAL replay -----------------------------------------------------
  std::uint64_t last_seq = base_seq;
  std::uint64_t wal_records = 0;
  std::string wal_bytes;
  const bool have_wal = read_file(wal_path, wal_bytes);
  if (have_wal) {
    BinaryReader in(wal_bytes);
    try {
      read_file_header(in, kWalMagic, kStoreFormatVersion);
      in.u32();  // flags
    } catch (const BinReadError& e) {
      if (error) *error = std::string("journal header: ") + e.what();
      return StoreStatus::kCorrupt;
    }
    std::uint64_t prev_record_seq = 0;
    std::size_t valid_end = in.pos();
    for (;;) {
      if (in.remaining() == 0) break;
      if (in.remaining() < kWalRecordHeaderSize) {
        // Torn tail: crash mid-append left a partial header.
        break;
      }
      const std::string_view header16 = in.view(16);
      BinaryReader hr(header16);
      const std::uint32_t len = hr.u32();
      const std::uint64_t seq = hr.u64();
      const std::uint32_t payload_crc = hr.u32();
      const std::uint32_t header_crc = in.u32();
      if (crc32(header16.data(), header16.size()) != header_crc) {
        if (error) *error = "journal record header checksum mismatch";
        return StoreStatus::kCorrupt;
      }
      // Header authenticated from here on: inconsistencies are real
      // corruption, not a torn write.
      if (len > kMaxWalPayload) {
        if (error) *error = "journal record length out of range";
        return StoreStatus::kCorrupt;
      }
      if (in.remaining() < len) {
        // Torn tail: the payload never finished hitting the disk.
        break;
      }
      const std::string_view payload = in.view(len);
      if (crc32(payload.data(), payload.size()) != payload_crc) {
        if (error) *error = "journal record payload checksum mismatch";
        return StoreStatus::kCorrupt;
      }
      if (seq <= prev_record_seq) {
        if (error) *error = "journal sequence numbers not monotone";
        return StoreStatus::kCorrupt;
      }
      prev_record_seq = seq;
      valid_end = in.pos();
      if (seq <= base_seq) {
        // Stale record from before the last checkpoint (crash between
        // snapshot rename and journal reset) — already folded in.
        continue;
      }
      try {
        const NetworkDelta delta = deserialize_delta(payload);
        CompiledDelta applied = restored.snapshot->apply_delta(delta);
        restored.snapshot = std::move(applied.snapshot);
        apply_delta_in_place(restored.net, delta);
      } catch (const BinReadError& e) {
        if (error) *error = std::string("journal record: ") + e.what();
        return StoreStatus::kCorrupt;
      } catch (const std::invalid_argument& e) {
        if (error) *error = std::string("journal replay rejected: ") + e.what();
        return StoreStatus::kCorrupt;
      }
      last_seq = seq;
      ++wal_records;
      ++restored.replayed_deltas;
    }
    restored.torn_bytes = wal_bytes.size() - valid_end;
    if (restored.torn_bytes > 0 && options_.repair) {
      std::error_code trunc_ec;
      std::filesystem::resize_file(wal_path, valid_end, trunc_ec);
      if (trunc_ec) {
        if (error) *error = "truncating torn journal tail: " + trunc_ec.message();
        return StoreStatus::kIoError;
      }
    }
  }

  close_wal();  // any previously open fd points past state we just re-read
  stats_.last_seq = std::max(last_seq, stats_.last_seq);
  stats_.wal_records = wal_records;
  out = std::move(restored);
  return StoreStatus::kOk;
}

StoreStatus SessionStore::checkpoint(const CompiledNetwork& snapshot,
                                     const FlowDemand& demand,
                                     std::optional<std::size_t> max_mask_tables,
                                     std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    if (error) *error = "create store directory: " + ec.message();
    return StoreStatus::kIoError;
  }

  BinaryWriter out;
  write_file_header(out, kSnapshotMagic, kStoreFormatVersion);
  write_section(out, kTagMeta,
                encode_meta(stats_.last_seq, demand, max_mask_tables));
  write_section(out, kTagNetwork, serialize_compiled(snapshot));
  write_section(
      out, kTagHistory,
      serialize_lineage(DeltaJournal::instance().chain(snapshot.structure_id())));
  const std::string snap_bytes = std::move(out).take();

  StoreStatus status = write_file_atomic(dir_ / kSnapshotFile, snap_bytes,
                                         options_.fsync, error);
  if (status != StoreStatus::kOk) return status;

  // Snapshot committed; reset the journal. A crash before this point
  // leaves stale records with seq <= the new base — load() skips them.
  close_wal();
  const std::string wal_bytes = wal_header_bytes();
  status = write_file_atomic(dir_ / kWalFile, wal_bytes, options_.fsync, error);
  if (status != StoreStatus::kOk) return status;

  stats_.wal_records = 0;
  ++stats_.checkpoints;
  stats_.bytes_written += snap_bytes.size() + wal_bytes.size();
  return StoreStatus::kOk;
}

StoreStatus SessionStore::open_wal_for_append(std::string* error) {
  if (wal_fd_ >= 0) return StoreStatus::kOk;
  const std::filesystem::path wal_path = dir_ / kWalFile;
  wal_fd_ = ::open(wal_path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (wal_fd_ < 0) {
    if (error) *error = errno_message("open journal");
    return StoreStatus::kIoError;
  }
  struct stat st{};
  if (::fstat(wal_fd_, &st) == 0 && st.st_size == 0) {
    const std::string header = wal_header_bytes();
    if (!write_all(wal_fd_, header.data(), header.size())) {
      if (error) *error = errno_message("write journal header");
      close_wal();
      return StoreStatus::kIoError;
    }
    stats_.bytes_written += header.size();
  }
  return StoreStatus::kOk;
}

StoreStatus SessionStore::append(const NetworkDelta& delta,
                                 std::string* error) {
  const StoreStatus open_status = open_wal_for_append(error);
  if (open_status != StoreStatus::kOk) return open_status;

  const std::string payload = serialize_delta(delta);
  if (payload.size() > kMaxWalPayload) {
    if (error) *error = "delta payload exceeds journal record limit";
    return StoreStatus::kIoError;
  }
  const std::uint64_t seq = stats_.last_seq + 1;
  BinaryWriter record;
  record.u32(static_cast<std::uint32_t>(payload.size()));
  record.u64(seq);
  record.u32(crc32(payload.data(), payload.size()));
  record.u32(crc32(record.bytes().data(), record.bytes().size()));
  record.raw(payload.data(), payload.size());

  // One write() for header + payload: a crash can only truncate the
  // record (a torn tail load() repairs), never interleave it.
  const std::string& bytes = record.bytes();
  if (!write_all(wal_fd_, bytes.data(), bytes.size())) {
    if (error) *error = errno_message("append journal record");
    return StoreStatus::kIoError;
  }
  if (options_.fsync && ::fdatasync(wal_fd_) != 0) {
    if (error) *error = errno_message("fdatasync journal");
    return StoreStatus::kIoError;
  }
  stats_.last_seq = seq;
  ++stats_.wal_records;
  ++stats_.appends;
  stats_.bytes_written += bytes.size();
  return StoreStatus::kOk;
}

bool SessionStore::needs_compaction() const noexcept {
  return stats_.wal_records > options_.compact_threshold;
}

// --- StateDir ----------------------------------------------------------

namespace {

bool plain_component_char(char c) {
  const auto u = static_cast<unsigned char>(c);
  return std::isalnum(u) != 0 || c == '.' || c == '_' || c == '-';
}

char hex_digit(unsigned v) {
  return static_cast<char>(v < 10 ? '0' + v : 'A' + (v - 10));
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

}  // namespace

std::string StateDir::encode_component(std::string_view name) {
  if (name.empty()) return "%";  // unambiguous: bare '%' never otherwise occurs
  std::string out;
  out.reserve(name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    // A leading '.' is escaped too: no store directory may masquerade
    // as a dotfile, "." or "..".
    if (plain_component_char(c) && !(i == 0 && c == '.')) {
      out.push_back(c);
    } else {
      const auto u = static_cast<unsigned char>(c);
      out.push_back('%');
      out.push_back(hex_digit(u >> 4));
      out.push_back(hex_digit(u & 0xF));
    }
  }
  return out;
}

std::optional<std::string> StateDir::decode_component(std::string_view enc) {
  if (enc == "%") return std::string();
  std::string out;
  out.reserve(enc.size());
  for (std::size_t i = 0; i < enc.size(); ++i) {
    const char c = enc[i];
    if (c == '%') {
      if (i + 2 >= enc.size()) return std::nullopt;
      const int hi = hex_value(enc[i + 1]);
      const int lo = hex_value(enc[i + 2]);
      if (hi < 0 || lo < 0) return std::nullopt;
      out.push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
    } else if (plain_component_char(c)) {
      out.push_back(c);
    } else {
      return std::nullopt;
    }
  }
  return out;
}

std::filesystem::path StateDir::store_path(std::string_view tenant,
                                           std::string_view network_id) const {
  return root_ / encode_component(tenant) / encode_component(network_id);
}

std::vector<StateDir::Entry> StateDir::enumerate() const {
  std::vector<Entry> entries;
  std::error_code ec;
  std::filesystem::directory_iterator tenants(root_, ec);
  if (ec) return entries;
  for (const auto& tenant_dir : tenants) {
    if (!tenant_dir.is_directory(ec) || ec) continue;
    const auto tenant = decode_component(tenant_dir.path().filename().string());
    if (!tenant) continue;
    std::filesystem::directory_iterator networks(tenant_dir.path(), ec);
    if (ec) continue;
    for (const auto& net_dir : networks) {
      if (!net_dir.is_directory(ec) || ec) continue;
      const auto network = decode_component(net_dir.path().filename().string());
      if (!network) continue;
      entries.push_back({*tenant, *network, net_dir.path()});
    }
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.tenant, a.network_id) < std::tie(b.tenant, b.network_id);
  });
  return entries;
}

}  // namespace streamrel
