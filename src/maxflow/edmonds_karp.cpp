#include "streamrel/maxflow/edmonds_karp.hpp"

#include <limits>

namespace streamrel {

Capacity EdmondsKarpSolver::solve(ResidualGraph& g, NodeId s, NodeId t,
                                  Capacity limit) {
  const Capacity target =
      limit == kUnbounded ? std::numeric_limits<Capacity>::max() : limit;
  Capacity flow = 0;
  while (flow < target) {
    parent_arc_.assign(static_cast<std::size_t>(g.num_nodes()), -1);
    queue_.clear();
    queue_.push_back(s);
    bool reached = false;
    for (std::size_t head = 0; head < queue_.size() && !reached; ++head) {
      const NodeId n = queue_[head];
      for (std::int32_t ai : g.out_arcs(n)) {
        const ResidualArc& a = g.arc(ai);
        if (a.cap <= 0 || a.to == s ||
            parent_arc_[static_cast<std::size_t>(a.to)] != -1) {
          continue;
        }
        parent_arc_[static_cast<std::size_t>(a.to)] = ai;
        if (a.to == t) {
          reached = true;
          break;
        }
        queue_.push_back(a.to);
      }
    }
    if (!reached) break;

    // Bottleneck along the parent chain, capped at the remaining target.
    Capacity push = target - flow;
    for (NodeId n = t; n != s;) {
      const ResidualArc& a =
          g.arc(parent_arc_[static_cast<std::size_t>(n)]);
      if (a.cap < push) push = a.cap;
      n = g.arc(a.rev).to;
    }
    for (NodeId n = t; n != s;) {
      const std::int32_t ai = parent_arc_[static_cast<std::size_t>(n)];
      g.push(ai, push);
      n = g.arc(g.arc(ai).rev).to;
    }
    flow += push;
  }
  return flow;
}

}  // namespace streamrel
