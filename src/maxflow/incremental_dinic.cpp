#include "maxflow/incremental_dinic.hpp"

#include <stdexcept>

namespace streamrel {

IncrementalMaxFlow::IncrementalMaxFlow(const FlowNetwork& net,
                                       FlowDemand demand)
    : net_(&net),
      s_(demand.source),
      t_(demand.sink),
      target_(demand.rate),
      g_(net.num_nodes()) {
  net.check_demand(demand);
  fwd_arc_.reserve(static_cast<std::size_t>(net.num_edges()));
  for (EdgeId id = 0; id < net.num_edges(); ++id) {
    const Edge& e = net.edge(id);
    fwd_arc_.push_back(g_.add_arc_pair(
        e.u, e.v, e.capacity, e.directed() ? 0 : e.capacity, id));
  }
  alive_.assign(static_cast<std::size_t>(net.num_edges()), true);
  reaugment();
}

Capacity IncrementalMaxFlow::augment(NodeId from, NodeId to, Capacity limit) {
  if (limit <= 0) return 0;
  return dinic_.solve(g_, from, to, limit);
}

void IncrementalMaxFlow::reaugment() {
  flow_ += augment(s_, t_, target_ - flow_);
}

void IncrementalMaxFlow::set_edge_alive(EdgeId id, bool alive) {
  if (!net_->valid_edge(id)) throw std::invalid_argument("bad edge id");
  if (alive_[static_cast<std::size_t>(id)] == alive) return;
  alive_[static_cast<std::size_t>(id)] = alive;

  const Edge& e = net_->edge(id);
  const std::int32_t fi = fwd_arc_[static_cast<std::size_t>(id)];

  if (alive) {
    // Dead edges always hold (0, 0); restore pristine capacities.
    g_.arc(fi).cap = e.capacity;
    g_.arc(g_.arc(fi).rev).cap = e.directed() ? 0 : e.capacity;
    reaugment();
    return;
  }

  // Net flow currently on the edge: positive means u -> v.
  const Capacity net_flow = e.capacity - g_.arc(fi).cap;
  g_.arc(fi).cap = 0;
  g_.arc(g_.arc(fi).rev).cap = 0;
  if (net_flow == 0) return;

  // Orient as tail -> head in flow direction.
  const NodeId tail = net_flow > 0 ? e.u : e.v;
  const NodeId head = net_flow > 0 ? e.v : e.u;
  const Capacity carried = net_flow > 0 ? net_flow : -net_flow;

  // Unified repair: conservation now fails at `tail` (surplus incoming)
  // and `head` (missing incoming). Open a temporary bidirectional s <-> t
  // "value channel" of capacity `carried`, then push the full `carried`
  // units tail -> head through the residual graph. Real reroutes restore
  // the flow; repair units crossing the channel s -> t correspond to a
  // reduction of the global flow value, units crossing t -> s to an
  // increase (possible when the removed edge carried a value-wasting
  // circulation). Flow decomposition of the broken units guarantees the
  // combined augmentation always succeeds in full.
  const std::int32_t channel = g_.add_arc_pair(s_, t_, carried, carried);
  const Capacity repaired = augment(tail, head, carried);
  if (repaired != carried) {
    throw std::logic_error(
        "IncrementalMaxFlow: flow repair failed; invariant violated");
  }
  const Capacity value_drop = carried - g_.arc(channel).cap;  // net s->t use
  flow_ -= value_drop;
  g_.remove_last_arc_pair();

  // The cancellation may have exposed alternative routes.
  reaugment();
}

}  // namespace streamrel
