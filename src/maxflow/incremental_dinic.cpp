#include "streamrel/maxflow/incremental_dinic.hpp"

#include <stdexcept>

namespace streamrel {

IncrementalMaxFlow::IncrementalMaxFlow(const FlowNetwork& net,
                                       FlowDemand demand)
    : owned_(std::make_unique<ConfigResidual>(net)),
      cfg_(owned_.get()),
      s_(demand.source),
      t_(demand.sink),
      target_(demand.rate) {
  net.check_demand(demand);
  alive_.assign(static_cast<std::size_t>(net.num_edges()), true);
  mask_valid_ = net.fits_mask();
  if (mask_valid_) alive_mask_ = full_mask(net.num_edges());
  reaugment();
}

IncrementalMaxFlow::IncrementalMaxFlow(ConfigResidual& residual, NodeId s,
                                       NodeId t, Capacity target,
                                       Mask initial_alive)
    : cfg_(&residual), s_(s), t_(t), target_(target) {
  if (!cfg_->fits_mask()) {
    throw std::invalid_argument(
        "IncrementalMaxFlow external mode requires a mask-sized network");
  }
  cfg_->reset(initial_alive);
  alive_.assign(static_cast<std::size_t>(cfg_->num_edges()), false);
  for (EdgeId id = 0; id < cfg_->num_edges(); ++id) {
    alive_[static_cast<std::size_t>(id)] = test_bit(initial_alive, id);
  }
  mask_valid_ = true;
  alive_mask_ = initial_alive;
  reaugment();
}

Capacity IncrementalMaxFlow::augment(NodeId from, NodeId to, Capacity limit) {
  if (limit <= 0) return 0;
  ++solver_calls_;
  return dinic_.solve(cfg_->graph(), from, to, limit);
}

void IncrementalMaxFlow::reaugment() {
  flow_ += augment(s_, t_, target_ - flow_);
}

void IncrementalMaxFlow::drain(NodeId tail, NodeId head, Capacity carried) {
  // Conservation is broken: `tail` has `carried` surplus units and `head`
  // is missing them. Open a temporary bidirectional s <-> t "value
  // channel" of capacity `carried`, then push the full amount tail ->
  // head through the residual graph. Real reroutes restore the flow;
  // repair units crossing the channel s -> t correspond to a reduction of
  // the global flow value, units crossing t -> s to an increase (possible
  // when the removed capacity carried a value-wasting circulation). Flow
  // decomposition of the broken units guarantees the combined
  // augmentation always succeeds in full.
  ResidualGraph& g = cfg_->graph();
  const std::int32_t channel = g.add_arc_pair(s_, t_, carried, carried);
  const Capacity repaired = augment(tail, head, carried);
  if (repaired != carried) {
    throw std::logic_error(
        "IncrementalMaxFlow: flow repair failed; invariant violated");
  }
  const Capacity value_drop = carried - g.arc(channel).cap;  // net s->t use
  flow_ -= value_drop;
  g.remove_last_arc_pair();
}

void IncrementalMaxFlow::apply_toggle(EdgeId id, bool alive) {
  alive_[static_cast<std::size_t>(id)] = alive;
  if (mask_valid_) alive_mask_ ^= bit(id);
  ++toggles_;

  ResidualGraph& g = cfg_->graph();
  const Capacity cap = cfg_->edge_capacity(id);
  const bool directed = cfg_->edge_directed(id);
  const std::int32_t fi = cfg_->forward_arc(id);

  if (alive) {
    // Dead edges always hold (0, 0); restore pristine capacities.
    g.arc(fi).cap = cap;
    g.arc(g.arc(fi).rev).cap = directed ? 0 : cap;
    return;
  }

  // Net flow currently on the edge: positive means u -> v.
  const Capacity net_flow = cap - g.arc(fi).cap;
  g.arc(fi).cap = 0;
  g.arc(g.arc(fi).rev).cap = 0;
  if (net_flow == 0) return;

  // Orient as tail -> head in flow direction, then repair conservation.
  const NodeId tail = net_flow > 0 ? cfg_->edge_u(id) : cfg_->edge_v(id);
  const NodeId head = net_flow > 0 ? cfg_->edge_v(id) : cfg_->edge_u(id);
  const Capacity carried = net_flow > 0 ? net_flow : -net_flow;
  drain(tail, head, carried);
}

void IncrementalMaxFlow::set_edge_alive(EdgeId id, bool alive) {
  if (!cfg_->valid_edge(id)) throw std::invalid_argument("bad edge id");
  if (alive_[static_cast<std::size_t>(id)] == alive) return;
  apply_toggle(id, alive);
  // Cancellation (deletions) or restored capacity (insertions) may have
  // exposed alternative routes.
  reaugment();
}

void IncrementalMaxFlow::sync_to(Mask config) {
  if (!mask_valid_) {
    throw std::logic_error("sync_to requires a mask-sized network");
  }
  // Batch: enable edges first (free capacity gives drains more rerouting
  // room), then clamp-and-drain deletions, and re-augment ONCE at the end.
  // Each drain restores conservation, so the flow stays valid between
  // toggles; the per-toggle re-augmentations of set_edge_alive are pure
  // progress steps and can be deferred.
  const Mask delta = alive_mask_ ^ config;
  if (delta == 0) return;
  Mask enables = delta & config;
  Mask disables = delta & ~config;
  while (enables != 0) {
    const int b = lowest_bit(enables);
    enables &= enables - 1;
    apply_toggle(b, true);
  }
  while (disables != 0) {
    const int b = lowest_bit(disables);
    disables &= disables - 1;
    apply_toggle(b, false);
  }
  reaugment();
}

void IncrementalMaxFlow::set_super_arc(std::size_t index, Capacity cap_uv,
                                       Capacity cap_vu) {
  if (owned_) {
    throw std::logic_error("set_super_arc requires EXTERNAL mode");
  }
  const ConfigResidual::SuperArc before = cfg_->super_arc(index);
  cfg_->set_super_arc(index, cap_uv, cap_vu);  // pristine record
  ResidualGraph& g = cfg_->graph();
  const std::int32_t fi = before.arc;
  const std::int32_t ri = g.arc(fi).rev;
  // Net flow the pair carries in the u -> v direction.
  const Capacity x = before.cap_uv - g.arc(fi).cap;
  const NodeId u = g.arc(ri).to;
  const NodeId v = g.arc(fi).to;

  if (x > cap_uv) {
    // Forward flow exceeds the shrunk capacity: clamp to cap_uv and drain
    // the excess from u (which now over-sends) to v (which under-receives).
    const Capacity excess = x - cap_uv;
    g.arc(fi).cap = 0;
    g.arc(ri).cap = cap_vu + cap_uv;
    drain(u, v, excess);
  } else if (-x > cap_vu) {
    // Mirror case: reverse flow exceeds the shrunk reverse capacity.
    const Capacity excess = -x - cap_vu;
    g.arc(fi).cap = cap_uv + cap_vu;
    g.arc(ri).cap = 0;
    drain(v, u, excess);
  } else {
    g.arc(fi).cap = cap_uv - x;
    g.arc(ri).cap = cap_vu + x;
  }
  reaugment();
}

Mask IncrementalMaxFlow::support_mask() const {
  if (!mask_valid_) {
    throw std::logic_error("support_mask requires a mask-sized network");
  }
  Mask support = 0;
  for (EdgeId id = 0; id < cfg_->num_edges(); ++id) {
    if (!alive_[static_cast<std::size_t>(id)]) continue;  // dead: carries 0
    const std::int32_t fi = cfg_->forward_arc(id);
    if (cfg_->edge_capacity(id) != cfg_->graph().arc(fi).cap) {
      support |= bit(id);
    }
  }
  return support;
}

Mask IncrementalMaxFlow::cut_mask() const {
  if (!mask_valid_) {
    throw std::logic_error("cut_mask requires a mask-sized network");
  }
  const std::vector<bool> reach = cfg_->graph().residual_reachable(s_);
  Mask cut = 0;
  for (EdgeId id = 0; id < cfg_->num_edges(); ++id) {
    const bool ru = reach[static_cast<std::size_t>(cfg_->edge_u(id))];
    const bool rv = reach[static_cast<std::size_t>(cfg_->edge_v(id))];
    // Only orientations with pristine capacity can carry flow out of the
    // reachable set: both for undirected links, u -> v for directed ones.
    if (cfg_->edge_directed(id) ? (ru && !rv) : (ru != rv)) cut |= bit(id);
  }
  return cut;
}

void IncrementalMaxFlow::set_target(Capacity target) {
  target_ = target;
  reaugment();
}

}  // namespace streamrel
