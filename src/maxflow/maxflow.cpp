#include "streamrel/maxflow/maxflow.hpp"

#include <stdexcept>

#include "streamrel/maxflow/dinic.hpp"
#include "streamrel/maxflow/edmonds_karp.hpp"
#include "streamrel/maxflow/push_relabel.hpp"

namespace streamrel {

std::unique_ptr<MaxFlowSolver> make_solver(MaxFlowAlgorithm algorithm) {
  switch (algorithm) {
    case MaxFlowAlgorithm::kDinic:
      return std::make_unique<DinicSolver>();
    case MaxFlowAlgorithm::kEdmondsKarp:
      return std::make_unique<EdmondsKarpSolver>();
    case MaxFlowAlgorithm::kPushRelabel:
      return std::make_unique<PushRelabelSolver>();
  }
  throw std::invalid_argument("unknown max-flow algorithm");
}

std::string_view algorithm_name(MaxFlowAlgorithm algorithm) {
  switch (algorithm) {
    case MaxFlowAlgorithm::kDinic:
      return "dinic";
    case MaxFlowAlgorithm::kEdmondsKarp:
      return "edmonds-karp";
    case MaxFlowAlgorithm::kPushRelabel:
      return "push-relabel";
  }
  return "unknown";
}

Capacity max_flow(const FlowNetwork& net, NodeId s, NodeId t,
                  MaxFlowAlgorithm algorithm, Capacity limit) {
  if (!net.valid_node(s) || !net.valid_node(t) || s == t) {
    throw std::invalid_argument("bad max-flow endpoints");
  }
  ResidualGraph g = ResidualGraph::from_network_all(net);
  return make_solver(algorithm)->solve(g, s, t, limit);
}

Capacity max_flow_masked(const FlowNetwork& net, Mask alive, NodeId s,
                         NodeId t, MaxFlowAlgorithm algorithm,
                         Capacity limit) {
  if (!net.valid_node(s) || !net.valid_node(t) || s == t) {
    throw std::invalid_argument("bad max-flow endpoints");
  }
  ResidualGraph g = ResidualGraph::from_network(net, alive);
  return make_solver(algorithm)->solve(g, s, t, limit);
}

bool admits_demand(const FlowNetwork& net, Mask alive, const FlowDemand& demand,
                   MaxFlowAlgorithm algorithm) {
  net.check_demand(demand);
  return max_flow_masked(net, alive, demand.source, demand.sink, algorithm,
                         demand.rate) >= demand.rate;
}

namespace {

MinCut extract_cut(const FlowNetwork& net, const ResidualGraph& g, NodeId s,
                   Capacity value) {
  MinCut cut;
  cut.value = value;
  cut.source_side = g.residual_reachable(s);
  // Pad for any super nodes the residual graph added beyond the network.
  cut.source_side.resize(static_cast<std::size_t>(net.num_nodes()));
  for (EdgeId id = 0; id < net.num_edges(); ++id) {
    const Edge& e = net.edge(id);
    const bool u_in = cut.source_side[static_cast<std::size_t>(e.u)];
    const bool v_in = cut.source_side[static_cast<std::size_t>(e.v)];
    if (u_in == v_in) continue;
    // A directed edge only separates when it leaves the source side; an
    // undirected edge separates either way.
    if (!e.directed() || (u_in && !v_in)) cut.edges.push_back(id);
  }
  return cut;
}

}  // namespace

MinCut min_cut(const FlowNetwork& net, NodeId s, NodeId t,
               MaxFlowAlgorithm algorithm) {
  if (!net.valid_node(s) || !net.valid_node(t) || s == t) {
    throw std::invalid_argument("bad min-cut endpoints");
  }
  ResidualGraph g = ResidualGraph::from_network_all(net);
  const Capacity value = make_solver(algorithm)->solve(g, s, t);
  return extract_cut(net, g, s, value);
}

MinCut min_cardinality_cut(const FlowNetwork& net, NodeId s, NodeId t) {
  if (!net.valid_node(s) || !net.valid_node(t) || s == t) {
    throw std::invalid_argument("bad min-cut endpoints");
  }
  // Same network with all capacities forced to one: max-flow counts
  // edge-disjoint paths, so the min cut minimizes the NUMBER of edges.
  ResidualGraph g(net.num_nodes());
  for (EdgeId id = 0; id < net.num_edges(); ++id) {
    const Edge& e = net.edge(id);
    g.add_arc_pair(e.u, e.v, 1, e.directed() ? 0 : 1, id);
  }
  DinicSolver solver;
  const Capacity value = solver.solve(g, s, t);
  return extract_cut(net, g, s, value);
}

}  // namespace streamrel
