#pragma once
// Incremental bounded max-flow under single-edge insertions and deletions.
//
// The naive reliability algorithm visits all 2^|E| failure configurations;
// visiting them in Gray-code order changes exactly one edge per step, and
// this class repairs the existing flow instead of recomputing from
// scratch:
//
//  * enabling an edge restores its residual capacities and re-augments
//    s -> t (bounded by the demand);
//  * disabling an edge that carries f units first tries to REROUTE the f
//    units from the edge's flow-tail to its flow-head through the residual
//    graph; any irreparable remainder d is cancelled end-to-end by pushing
//    d units tail -> s and t -> head along reverse-flow residual arcs
//    (both succeed by flow decomposition once rerouting is exhausted),
//    after which s -> t is re-augmented.
//
// Invariant after every toggle: flow_value() == min(demand.rate,
// maxflow(alive configuration)), so admits() answers the reliability
// feasibility question exactly.

#include <vector>

#include "maxflow/dinic.hpp"
#include "maxflow/residual_graph.hpp"

namespace streamrel {

class IncrementalMaxFlow {
 public:
  /// Starts with every edge alive. Requires a valid demand.
  IncrementalMaxFlow(const FlowNetwork& net, FlowDemand demand);

  /// Toggles one edge and repairs the flow. No-op if already in `alive`.
  void set_edge_alive(EdgeId id, bool alive);

  bool edge_alive(EdgeId id) const {
    return alive_[static_cast<std::size_t>(id)];
  }

  /// Current bounded flow value: min(demand rate, max-flow of the alive
  /// configuration).
  Capacity flow_value() const noexcept { return flow_; }

  /// True iff the alive configuration admits the demand.
  bool admits() const noexcept { return flow_ >= target_; }

 private:
  Capacity augment(NodeId from, NodeId to, Capacity limit);
  void reaugment();

  const FlowNetwork* net_;
  NodeId s_;
  NodeId t_;
  Capacity target_;
  Capacity flow_ = 0;
  ResidualGraph g_;
  std::vector<std::int32_t> fwd_arc_;  ///< per edge: its forward arc index
  std::vector<bool> alive_;
  DinicSolver dinic_;
};

}  // namespace streamrel
