#include "streamrel/maxflow/dinic.hpp"

#include <limits>

namespace streamrel {

bool DinicSolver::build_levels(const ResidualGraph& g, NodeId s, NodeId t) {
  level_.assign(static_cast<std::size_t>(g.num_nodes()), -1);
  queue_.clear();
  queue_.push_back(s);
  level_[static_cast<std::size_t>(s)] = 0;
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const NodeId n = queue_[head];
    for (std::int32_t ai : g.out_arcs(n)) {
      const ResidualArc& a = g.arc(ai);
      if (a.cap > 0 && level_[static_cast<std::size_t>(a.to)] == -1) {
        level_[static_cast<std::size_t>(a.to)] =
            level_[static_cast<std::size_t>(n)] + 1;
        queue_.push_back(a.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(t)] != -1;
}

Capacity DinicSolver::blocking_dfs(ResidualGraph& g, NodeId n, NodeId t,
                                   Capacity cap) {
  if (n == t) return cap;
  const auto& arcs = g.out_arcs(n);
  for (std::size_t& i = iter_[static_cast<std::size_t>(n)]; i < arcs.size();
       ++i) {
    const std::int32_t ai = arcs[i];
    const ResidualArc& a = g.arc(ai);
    if (a.cap <= 0 || level_[static_cast<std::size_t>(a.to)] !=
                          level_[static_cast<std::size_t>(n)] + 1) {
      continue;
    }
    const Capacity pushed =
        blocking_dfs(g, a.to, t, cap < a.cap ? cap : a.cap);
    if (pushed > 0) {
      g.push(ai, pushed);
      return pushed;
    }
  }
  return 0;
}

Capacity DinicSolver::solve(ResidualGraph& g, NodeId s, NodeId t,
                            Capacity limit) {
  const Capacity target =
      limit == kUnbounded ? std::numeric_limits<Capacity>::max() : limit;
  Capacity flow = 0;
  while (flow < target && build_levels(g, s, t)) {
    iter_.assign(static_cast<std::size_t>(g.num_nodes()), 0);
    while (flow < target) {
      const Capacity pushed = blocking_dfs(g, s, t, target - flow);
      if (pushed == 0) break;
      flow += pushed;
    }
  }
  return flow;
}

}  // namespace streamrel
